package repro

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/streamfmt"
	"repro/internal/testutil"
)

// Tests for the seekable decode subsystem (seek.go): OpenStream must
// serve any row range byte-identically to the full-stream decode while
// fetching only the touched chunk extents, enforce limits before
// allocation, honor cancellation without leaking, and refuse a
// container whose sealing index cannot be verified.

// seekContainer compresses data (shape dims) into a stream container
// with the given chunking and returns the container bytes.
func seekContainer(t testing.TB, data []float64, dims []int, chunkRows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &buf, dims, 1e-3, SZT,
		&StreamOptions{Workers: 2, ChunkRows: chunkRows}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countingReadSeeker counts the bytes actually fetched from the
// underlying source, so locality tests can prove a range read does not
// scan the container.
type countingReadSeeker struct {
	r *bytes.Reader
	n int64
}

func (c *countingReadSeeker) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReadSeeker) Seek(offset int64, whence int) (int64, error) {
	return c.r.Seek(offset, whence)
}

func seekField(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = 40*math.Cos(float64(i)/7) + 90
	}
	return data
}

func TestOpenStreamBasics(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := seekField(28 * 5)
	dims := []int{28, 5}
	stream := seekContainer(t, data, dims, 3) // 10 chunks, last clipped to 1 row
	h, err := OpenStream(bytes.NewReader(stream), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 28 || h.Chunks() != 10 || h.RowStride() != 5 {
		t.Fatalf("geometry: rows=%d chunks=%d stride=%d", h.Rows(), h.Chunks(), h.RowStride())
	}
	if d := h.Dims(); len(d) != 2 || d[0] != 28 || d[1] != 5 {
		t.Fatalf("dims: %v", d)
	}
	if h.Algorithm() != SZT {
		t.Fatalf("algorithm: %v", h.Algorithm())
	}
	full := fromLE(rawLEOfDecoded(t, stream))
	got := make([]float64, len(full))
	if err := h.ReadRows(got, 0, 28); err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if math.Float64bits(got[i]) != math.Float64bits(full[i]) {
			t.Fatalf("full-range ReadRows differs from DecompressStream at %d: %g vs %g", i, got[i], full[i])
		}
	}
	st := h.Stats()
	if st.Chunks != 10 || st.BytesOut != int64(len(full))*8 {
		t.Fatalf("stats after full read: %+v", st)
	}
}

// TestReadRowsAdversarialRanges sweeps range shapes against the full
// decode: chunk-aligned, chunk-straddling, first and last row, single
// row, full span, and empty.
func TestReadRowsAdversarialRanges(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := seekField(28 * 5)
	dims := []int{28, 5}
	stream := seekContainer(t, data, dims, 3)
	full := fromLE(rawLEOfDecoded(t, stream))
	h, err := OpenStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	stride := h.RowStride()
	ranges := []struct{ start, count uint64 }{
		{0, 3}, {3, 3}, {24, 3}, // chunk-aligned
		{2, 3}, {1, 9}, {5, 20}, // straddling
		{0, 1}, {27, 1}, {13, 1}, // first/last/single
		{0, 28},                 // full span
		{0, 0}, {28, 0}, {9, 0}, // empty
	}
	for _, r := range ranges {
		dst := make([]float64, r.count*uint64(stride))
		for i := range dst {
			dst[i] = -1e300 // poison: untouched elements must not leak through
		}
		if err := h.ReadRows(dst, r.start, r.count); err != nil {
			t.Fatalf("[%d,+%d): %v", r.start, r.count, err)
		}
		want := full[r.start*uint64(stride) : (r.start+r.count)*uint64(stride)]
		for i := range want {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("[%d,+%d): element %d = %g, want %g", r.start, r.count, i, dst[i], want[i])
			}
		}
	}
}

func TestReadRowsArgumentErrors(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(12*4), []int{12, 4}, 5)
	h, err := OpenStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 12*4)
	if err := h.ReadRows(dst, 13, 0); err == nil {
		t.Error("start past the field accepted")
	}
	if err := h.ReadRows(dst, 8, 5); err == nil {
		t.Error("range overrunning the field accepted")
	}
	if err := h.ReadRows(dst[:3], 0, 1); err == nil {
		t.Error("short destination accepted")
	}
	// A range that wraps uint64 must not pass the bounds check.
	if err := h.ReadRows(dst, 2, ^uint64(0)); err == nil {
		t.Error("wrapping count accepted")
	}
}

// TestReadRowsLocality proves the random-access promise: a 1% row range
// of a 10k-chunk container fetches less than twice its own chunk
// extents — not the container.
func TestReadRowsLocality(t *testing.T) {
	defer testutil.NoLeak(t)()
	rows := 10000
	if testutil.RaceEnabled {
		rows = 2000 // same sub-1% geometry, affordable under the race detector
	}
	const stride = 4
	data := seekField(rows * stride)
	stream := seekContainer(t, data, []int{rows, stride}, 1) // one chunk per row
	ix, err := streamfmt.OpenIndex(bytes.NewReader(stream), streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Chunks() != rows {
		t.Fatalf("chunks = %d, want %d", ix.Chunks(), rows)
	}

	src := &countingReadSeeker{r: bytes.NewReader(stream)}
	h, err := OpenStream(src)
	if err != nil {
		t.Fatal(err)
	}
	start, count := uint64(rows)*2/5, uint64(rows)/100 // a 1% range, mid-container
	src.n = 0                                          // count only what the range read fetches
	dst := make([]float64, count*stride)
	if err := h.ReadRows(dst, start, count); err != nil {
		t.Fatal(err)
	}
	extent := ix.ExtentBytes(int(start), int(start+count))
	if src.n > 2*extent {
		t.Errorf("1%% range read fetched %d bytes, more than 2x its %d-byte chunk extents", src.n, extent)
	}
	if src.n >= int64(len(stream))/10 {
		t.Errorf("1%% range read fetched %d of %d container bytes — that is a scan, not a seek", src.n, len(stream))
	}
	if st := h.Stats(); st.Chunks != int(count) || st.BytesIn != extent {
		t.Errorf("stats: %d chunks / %d bytes in, want %d / %d", st.Chunks, st.BytesIn, count, extent)
	}
	// Spot-check correctness against the in-memory slice.
	full := fromLE(rawLEOfDecoded(t, stream))
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(full[int(start)*stride+i]) {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestReadRowsCancellation(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(64*8), []int{64, 8}, 2)
	h, err := OpenStream(bytes.NewReader(stream), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, 64*8)
	if err := h.ReadRowsCtx(ctx, dst, 0, 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled read: err = %v, want context.Canceled", err)
	}
	// A handle opened with a cancelled default context refuses reads too.
	h2, err := OpenStream(bytes.NewReader(stream), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.ReadRows(dst, 0, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("handle-context read: err = %v, want context.Canceled", err)
	}
}

func TestOpenStreamLimits(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(16*4), []int{16, 4}, 4)
	if _, err := OpenStream(bytes.NewReader(stream), WithLimits(&DecodeLimits{MaxElements: 8})); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("MaxElements: err = %v", err)
	}
	if _, err := OpenStream(bytes.NewReader(stream), WithLimits(&DecodeLimits{MaxChunkBytes: 3})); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("MaxChunkBytes: err = %v", err)
	}
	if _, err := OpenStream(bytes.NewReader(stream), WithLimits(&DecodeLimits{MaxElements: 1 << 20, MaxChunkBytes: 1 << 20})); err != nil {
		t.Errorf("generous limits rejected a valid container: %v", err)
	}
}

// TestOpenStreamUnverifiableIndex: unlike salvage, the seekable path
// must refuse — with a typed error — any container whose sealing index
// does not verify, rather than silently scanning the prefix.
func TestOpenStreamUnverifiableIndex(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(16*4), []int{16, 4}, 4)
	for _, cut := range []int{1, 2, 5} { // shear off (part of) the index frame
		trunc := stream[:len(stream)-cut]
		if _, err := OpenStream(bytes.NewReader(trunc)); !errors.Is(err, ErrCorrupted) {
			t.Errorf("truncated by %d: err = %v, want ErrCorrupted", cut, err)
		}
	}
	mut := append([]byte(nil), stream...) // break the index CRC
	mut[len(mut)-1] ^= 0xFF
	if _, err := OpenStream(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupted) {
		t.Errorf("index CRC damage: err = %v, want ErrCorrupted", err)
	}
	// A container too short for its declared chunk count is truncation.
	hdr := stream[:7]
	if _, err := OpenStream(bytes.NewReader(hdr)); !errors.Is(err, ErrCorrupted) {
		t.Errorf("header-only prefix: err = %v, want ErrCorrupted", err)
	}
	// Non-stream containers are ErrUnsupportedFormat.
	plain, err := Compress(seekField(8), []int{8}, 1e-2, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(bytes.NewReader(plain)); !errors.Is(err, ErrUnsupportedFormat) {
		t.Errorf("plain container: err = %v, want ErrUnsupportedFormat", err)
	}
}

// TestReadRowsRepeated exercises the handle across many sequential
// reads (stats accumulate; buffers recycle; seeks rewind correctly).
func TestReadRowsRepeated(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(30*3), []int{30, 3}, 4)
	full := fromLE(rawLEOfDecoded(t, stream))
	h, err := OpenStream(bytes.NewReader(stream), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 30*3)
	for pass := 0; pass < 3; pass++ {
		for start := uint64(0); start < 30; start += 7 {
			count := uint64(5)
			if 30-start < count {
				count = 30 - start
			}
			if err := h.ReadRows(dst[:count*3], start, count); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < count*3; i++ {
				if math.Float64bits(dst[i]) != math.Float64bits(full[start*3+i]) {
					t.Fatalf("pass %d [%d,+%d): element %d differs", pass, start, count, i)
				}
			}
		}
	}
}

// TestStreamIndexExtents pins the index→offset arithmetic itself: the
// extents must tile the container between header and index exactly.
func TestStreamIndexExtents(t *testing.T) {
	stream := seekContainer(t, seekField(10*2), []int{10, 2}, 3)
	ix, err := streamfmt.OpenIndex(bytes.NewReader(stream), streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	off, _ := ix.FrameExtent(0)
	if off != ix.HeaderLen {
		t.Errorf("chunk 0 starts at %d, header ends at %d", off, ix.HeaderLen)
	}
	for i := 0; i < ix.Chunks(); i++ {
		lo, hi := ix.FrameExtent(i)
		if hi <= lo || hi > ix.IndexOff {
			t.Errorf("chunk %d extent [%d,%d) out of bounds (index at %d)", i, lo, hi, ix.IndexOff)
		}
		if i > 0 {
			if _, prevHi := ix.FrameExtent(i - 1); prevHi != lo {
				t.Errorf("gap between chunk %d and %d", i-1, i)
			}
		}
		if stream[lo] != 0x01 { // tagChunk
			t.Errorf("chunk %d offset %d does not land on a chunk tag (byte 0x%02x)", i, lo, stream[lo])
		}
	}
	if _, last := ix.FrameExtent(ix.Chunks() - 1); last != ix.IndexOff {
		t.Errorf("last chunk ends at %d, index begins at %d", last, ix.IndexOff)
	}
	if ix.ExtentBytes(0, ix.Chunks()) != ix.IndexOff-ix.HeaderLen {
		t.Errorf("ExtentBytes(all) = %d, want %d", ix.ExtentBytes(0, ix.Chunks()), ix.IndexOff-ix.HeaderLen)
	}
	if stream[ix.IndexOff] != 0x02 { // tagIndex
		t.Errorf("IndexOff %d does not land on the index tag", ix.IndexOff)
	}
}

// An io.ReadSeeker whose Seek fails must surface its own error, not a
// relabeled corruption.
type failSeeker struct {
	io.ReadSeeker
	fail bool
}

var errSeek = errors.New("seek refused")

func (f *failSeeker) Seek(offset int64, whence int) (int64, error) {
	if f.fail {
		return 0, errSeek
	}
	return f.ReadSeeker.Seek(offset, whence)
}

func TestReadRowsSeekFailure(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := seekContainer(t, seekField(12*2), []int{12, 2}, 3)
	fs := &failSeeker{ReadSeeker: bytes.NewReader(stream)}
	h, err := OpenStream(fs)
	if err != nil {
		t.Fatal(err)
	}
	fs.fail = true
	dst := make([]float64, 12*2)
	if err := h.ReadRows(dst, 0, 12); !errors.Is(err, errSeek) {
		t.Fatalf("err = %v, want the seeker's own error", err)
	}
}
