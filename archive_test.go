package repro

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitio"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func TestArchiveRoundTrip(t *testing.T) {
	fields := datagen.NYX(16, 40)
	w := NewArchiveWriter()
	rel := 1e-2
	for i := range fields {
		f := &fields[i]
		if err := w.Add(f.Name, f.Data, f.Dims, rel, SZT, nil); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	buf := w.Bytes()

	r, err := OpenArchive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fields()) != len(fields) {
		t.Fatalf("fields %v", r.Fields())
	}
	for i := range fields {
		f := &fields[i]
		dec, dims, err := r.Field(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !grid.EqualDims(dims, f.Dims) {
			t.Fatalf("%s dims %v", f.Name, dims)
		}
		st, err := metrics.RelError(f.Data, dec, rel)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max > rel {
			t.Fatalf("%s: max %g", f.Name, st.Max)
		}
	}
	if _, _, err := r.Field("nope"); err == nil {
		t.Fatal("missing field accepted")
	}
	if got := r.SortedFields(); got[0] > got[len(got)-1] {
		t.Fatal("SortedFields not sorted")
	}
}

func TestArchiveMixedAlgorithmsAndModes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64())
	}
	w := NewArchiveWriter()
	if err := w.Add("szt", data, []int{1000}, 1e-3, SZT, nil); err != nil {
		t.Fatal(err)
	}
	abs, err := CompressAbs(data, []int{1000}, 0.01, SZABS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("abs", abs); err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(data, []int{1000}, 1e-2, FPZIP, &ParallelOptions{Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("par", par); err != nil {
		t.Fatal(err)
	}

	r, err := OpenArchive(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"szt", "abs", "par"} {
		dec, _, err := r.Field(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dec) != 1000 {
			t.Fatalf("%s: length %d", name, len(dec))
		}
	}
	// Raw access returns the stream unmodified.
	raw, err := r.Raw("abs")
	if err != nil || len(raw) != len(abs) {
		t.Fatalf("Raw: %v len %d vs %d", err, len(raw), len(abs))
	}
}

func TestArchiveWriterValidation(t *testing.T) {
	w := NewArchiveWriter()
	if err := w.AddCompressed("", []byte{1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.AddCompressed("x", []byte{0xde, 0xad}); err == nil {
		t.Fatal("garbage stream accepted")
	}
	buf, err := Compress([]float64{1, 2}, []int{2}, 0.1, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("a", buf); err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("a", buf); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestArchiveEmpty(t *testing.T) {
	buf := NewArchiveWriter().Bytes()
	r, err := OpenArchive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fields()) != 0 {
		t.Fatal("phantom fields")
	}
}

func TestArchiveCorrupt(t *testing.T) {
	w := NewArchiveWriter()
	if err := w.Add("f", []float64{1, 2, 3, 4}, []int{4}, 0.1, SZT, nil); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	for _, cut := range []int{0, 1, 3, len(buf) - 1} {
		if _, err := OpenArchive(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Any bit flip in the blob region must be caught by the archive CRC.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		mut := append([]byte(nil), buf...)
		mut[len(mut)-1-rng.Intn(8)] ^= byte(1 << rng.Intn(8))
		if _, err := OpenArchive(mut); err == nil {
			t.Fatal("blob corruption not detected")
		}
	}
}

// buildArchiveV2 hand-assembles a v2 archive from an explicit directory,
// with a correct area CRC, so tests can craft geometries the writer
// would never emit.
func buildArchiveV2(entries []struct {
	name    string
	off, ln uint64
}, area []byte) []byte {
	out := []byte{archiveMagicV2, archiveV2Ver}
	out = bitio.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = bitio.AppendUvarint(out, uint64(len(e.name)))
		out = append(out, e.name...)
		out = bitio.AppendUvarint(out, e.off)
		out = bitio.AppendUvarint(out, e.ln)
	}
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(area))
	return append(out, area...)
}

// TestArchiveOverlappingEntries is the regression test for directory
// validation: a crafted v2 archive whose entries alias the same blob
// bytes must be rejected, not silently served.
func TestArchiveOverlappingEntries(t *testing.T) {
	blob, err := Compress([]float64{1, 2, 3, 4}, []int{4}, 0.1, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	type entry = struct {
		name    string
		off, ln uint64
	}
	n := uint64(len(blob))

	// Full aliasing: both fields claim the same extent.
	buf := buildArchiveV2([]entry{{"a", 0, n}, {"b", 0, n}}, blob)
	if _, err := OpenArchive(buf); !errors.Is(err, ErrCorrupted) || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("aliased entries: err = %v, want ErrCorrupted overlap", err)
	}

	// Partial overlap.
	area := append(append([]byte(nil), blob...), blob...)
	buf = buildArchiveV2([]entry{{"a", 0, n}, {"b", n - 1, n}}, area[:2*n-1])
	if _, err := OpenArchive(buf); !errors.Is(err, ErrCorrupted) || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("partial overlap: err = %v, want ErrCorrupted overlap", err)
	}

	// Out of range: the entry reaches past the blob area.
	buf = buildArchiveV2([]entry{{"a", 1, n}}, blob)
	if _, err := OpenArchive(buf); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("out-of-range entry: err = %v, want ErrCorrupted", err)
	}

	// The same blobs laid out back to back are fine.
	buf = buildArchiveV2([]entry{{"a", 0, n}, {"b", n, n}}, area)
	r, err := OpenArchive(buf)
	if err != nil {
		t.Fatalf("valid crafted archive rejected: %v", err)
	}
	for _, name := range []string{"a", "b"} {
		if _, _, err := r.Field(name); err != nil {
			t.Fatalf("field %q: %v", name, err)
		}
	}
}

// TestArchiveV1Compat pins the reader's support for the legacy implicit-
// offset layout.
func TestArchiveV1Compat(t *testing.T) {
	blob, err := Compress([]float64{5, 6, 7, 8}, []int{2, 2}, 0.1, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := []byte{archiveMagic}
	out = bitio.AppendUvarint(out, 2)
	for _, name := range []string{"x", "y"} {
		out = bitio.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		out = bitio.AppendUvarint(out, uint64(len(blob)))
	}
	crc := crc32.Update(crc32.ChecksumIEEE(blob), crc32.IEEETable, blob)
	out = binary.BigEndian.AppendUint32(out, crc)
	out = append(out, blob...)
	out = append(out, blob...)

	r, err := OpenArchive(out)
	if err != nil {
		t.Fatalf("v1 archive rejected: %v", err)
	}
	for _, name := range []string{"x", "y"} {
		data, dims, err := r.Field(name)
		if err != nil || len(data) != 4 || len(dims) != 2 {
			t.Fatalf("v1 field %q: data=%d dims=%v err=%v", name, len(data), dims, err)
		}
	}
}

// TestArchiveHostileCount rejects a directory count the container could
// not possibly hold, before it sizes any allocation.
func TestArchiveHostileCount(t *testing.T) {
	for _, magic := range []byte{archiveMagic, archiveMagicV2} {
		hostile := []byte{magic, archiveV2Ver}
		if magic == archiveMagic {
			hostile = hostile[:1]
		}
		hostile = bitio.AppendUvarint(hostile, 1<<19) // huge count, no bytes behind it
		if _, err := OpenArchive(hostile); !errors.Is(err, ErrCorrupted) {
			t.Fatalf("magic %#x: hostile count gave %v, want ErrCorrupted", magic, err)
		}
	}
}
