package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func TestArchiveRoundTrip(t *testing.T) {
	fields := datagen.NYX(16, 40)
	w := NewArchiveWriter()
	rel := 1e-2
	for i := range fields {
		f := &fields[i]
		if err := w.Add(f.Name, f.Data, f.Dims, rel, SZT, nil); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	buf := w.Bytes()

	r, err := OpenArchive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fields()) != len(fields) {
		t.Fatalf("fields %v", r.Fields())
	}
	for i := range fields {
		f := &fields[i]
		dec, dims, err := r.Field(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !grid.EqualDims(dims, f.Dims) {
			t.Fatalf("%s dims %v", f.Name, dims)
		}
		st, err := metrics.RelError(f.Data, dec, rel)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max > rel {
			t.Fatalf("%s: max %g", f.Name, st.Max)
		}
	}
	if _, _, err := r.Field("nope"); err == nil {
		t.Fatal("missing field accepted")
	}
	if got := r.SortedFields(); got[0] > got[len(got)-1] {
		t.Fatal("SortedFields not sorted")
	}
}

func TestArchiveMixedAlgorithmsAndModes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64())
	}
	w := NewArchiveWriter()
	if err := w.Add("szt", data, []int{1000}, 1e-3, SZT, nil); err != nil {
		t.Fatal(err)
	}
	abs, err := CompressAbs(data, []int{1000}, 0.01, SZABS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("abs", abs); err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(data, []int{1000}, 1e-2, FPZIP, &ParallelOptions{Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("par", par); err != nil {
		t.Fatal(err)
	}

	r, err := OpenArchive(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"szt", "abs", "par"} {
		dec, _, err := r.Field(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dec) != 1000 {
			t.Fatalf("%s: length %d", name, len(dec))
		}
	}
	// Raw access returns the stream unmodified.
	raw, err := r.Raw("abs")
	if err != nil || len(raw) != len(abs) {
		t.Fatalf("Raw: %v len %d vs %d", err, len(raw), len(abs))
	}
}

func TestArchiveWriterValidation(t *testing.T) {
	w := NewArchiveWriter()
	if err := w.AddCompressed("", []byte{1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.AddCompressed("x", []byte{0xde, 0xad}); err == nil {
		t.Fatal("garbage stream accepted")
	}
	buf, err := Compress([]float64{1, 2}, []int{2}, 0.1, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("a", buf); err != nil {
		t.Fatal(err)
	}
	if err := w.AddCompressed("a", buf); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestArchiveEmpty(t *testing.T) {
	buf := NewArchiveWriter().Bytes()
	r, err := OpenArchive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fields()) != 0 {
		t.Fatal("phantom fields")
	}
}

func TestArchiveCorrupt(t *testing.T) {
	w := NewArchiveWriter()
	if err := w.Add("f", []float64{1, 2, 3, 4}, []int{4}, 0.1, SZT, nil); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	for _, cut := range []int{0, 1, 3, len(buf) - 1} {
		if _, err := OpenArchive(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Any bit flip in the blob region must be caught by the archive CRC.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		mut := append([]byte(nil), buf...)
		mut[len(mut)-1-rng.Intn(8)] ^= byte(1 << rng.Intn(8))
		if _, err := OpenArchive(mut); err == nil {
			t.Fatal("blob corruption not detected")
		}
	}
}
