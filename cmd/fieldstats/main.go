// Command fieldstats summarizes a raw float array: value distribution,
// dynamic range, entropy and smoothness — the statistics that determine
// which compressor and error bound make sense — and recommends a starting
// point-wise relative bound.
//
// Example:
//
//	fieldstats -in snap.f64 -dims 512,512,512
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/stats"
)

func main() {
	var (
		in       = flag.String("in", "", "input raw file")
		dimsFlag = flag.String("dims", "", "comma-separated dimensions (optional; default flat)")
		f32      = flag.Bool("f32", false, "raw data is float32")
	)
	flag.Parse()
	if *in == "" {
		fatalf("-in is required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fatalf("%v", err)
	}
	var data []float64
	if *f32 {
		if len(raw)%4 != 0 {
			fatalf("size %d not multiple of 4", len(raw))
		}
		data = make([]float64, len(raw)/4)
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	} else {
		if len(raw)%8 != 0 {
			fatalf("size %d not multiple of 8", len(raw))
		}
		data = make([]float64, len(raw)/8)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	var dims []int
	if *dimsFlag != "" {
		for _, p := range strings.Split(*dimsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				fatalf("bad dimension %q", p)
			}
			dims = append(dims, v)
		}
	}
	s, err := stats.Compute(data, dims)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("points        %d (finite %d, NaN %d, Inf %d)\n", s.N, s.Finite, s.NaNs, s.Infs)
	fmt.Printf("signs         %d positive / %d negative / %d zero (%.2f%% zeros)\n",
		s.Positives, s.Negatives, s.Zeros, 100*float64(s.Zeros)/float64(s.N))
	fmt.Printf("range         [%g, %g]  mean %g  std %g\n", s.Min, s.Max, s.Mean, s.Std)
	fmt.Printf("percentiles   1%%=%g 25%%=%g 50%%=%g 75%%=%g 99%%=%g\n", s.P1, s.P25, s.P50, s.P75, s.P99)
	fmt.Printf("min |v|>0     %g  (dynamic range %.1f decades)\n", s.MinAbsNonzero, s.DynamicRangeDecades)
	fmt.Printf("entropy       %.2f bits/value (8-bit quantized)\n", s.EntropyBits)
	fmt.Printf("smoothness    %.3f (1=smooth, 0=noise)\n", s.Smoothness)
	fmt.Printf("suggested     -rel %g (starting point; validate against your analysis)\n", s.SuggestRelBound())
	if s.DynamicRangeDecades > 3 {
		fmt.Println("note          wide dynamic range: point-wise relative bounds (sz_t) will preserve far more detail than absolute bounds")
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fieldstats: "+format+"\n", args...)
	os.Exit(1)
}
