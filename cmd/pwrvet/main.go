// Command pwrvet runs the repository's domain-specific static-analysis
// suite (internal/lint) over the module: the floating-point, panic-path,
// error-handling, log-base and benchmark-clock invariants that the
// point-wise relative error guarantee depends on, plus the flow-sensitive
// checks built on the per-function CFG/dataflow engine — intnarrow
// (truncating conversions and over-wide shifts in the bit-level codecs),
// decodebound (taint: input-derived lengths must be range-guarded before
// indexing, sizing an allocation, or bounding a loop), goroleak
// (WaitGroup pairing and channel close-on-all-paths), allochot
// (per-iteration allocation in hot codec loops), encdecpair
// (Encode/Compress API symmetry), and ctxflow (worker-pool goroutines
// whose channel sends select on neither a cancellation receive nor a
// default, so the pool cannot be torn down) — and the interprocedural
// summary layer: limitreach (decode-entry-tainted allocation sizes must
// pass a DecodeLimits/range guard on every call path), wrapreach
// (narrowing conversions of unvalidated decoder input across call
// boundaries), boundconst (raw log2(1+b) error bounds reaching quantizer
// sinks without the Lemma-2 tightening), and purity (package-level writes
// in worker-pool-reachable functions).
//
// Usage:
//
//	pwrvet [flags] [dir ...]
//
// Each dir (default ".") is a directory inside the module; the whole
// module is always analyzed, and when directories are given only the
// findings whose file lives under one of them are reported. Exit status
// is 0 when clean, 1 when there are unsuppressed findings, 2 on usage or
// load errors.
//
// With -json, findings are emitted as NDJSON: one JSON object per line
// with the check name, position, message, and (for interprocedural
// findings) the witness call chain.
//
// With -baseline file, findings matching an entry of the NDJSON baseline
// (same check, file, and message; line numbers are ignored so unrelated
// edits do not invalidate it) are accepted and do not affect the exit
// status. Regenerate the baseline with: pwrvet -json > file.
//
// With -cache file, per-function analysis summaries are cached keyed by
// a content-hash manifest of the tracked sources: an unchanged tree
// replays the previous run's findings without re-analysis, a partially
// changed tree re-analyzes only the changed functions, their transitive
// callers and field-fact readers, and the cache is refreshed after every
// run. -cache-verify just reports freshness (exit 1 when stale), which
// is how CI insists the committed cache matches the tracked sources.
//
// With -stats, per-check wall times and the cache hit rate are printed
// after the summary (as NDJSON records carrying a "stat" key with -json).
//
// Findings are suppressed inline with:
//
//	//lint:allow <check>[,<check>...] <one-line justification>
//
// on the offending line or the line above.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pwrvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as NDJSON (one object per line)")
		baseline  = fs.String("baseline", "", "NDJSON file of accepted findings (matched by check+file+message)")
		checks    = fs.String("checks", "", "comma-separated checks to run (default: all)")
		disable   = fs.String("disable", "", "comma-separated checks to skip")
		list      = fs.Bool("list", false, "list available checks and exit")
		quiet     = fs.Bool("q", false, "suppress the summary line")
		stats     = fs.Bool("stats", false, "print per-check wall time and cache reuse (NDJSON records with -json)")
		cachePath = fs.String("cache", "", "incremental summary cache file (read if fresh enough, refreshed after the run)")
		cacheVfy  = fs.Bool("cache-verify", false, "with -cache: report whether the cache is fresh vs the tracked sources and exit (1 = stale)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pwrvet [flags] [dir ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.AllChecks()
	if *list {
		for _, c := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	selected, err := selectChecks(all, *checks, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	// Accept "./..." suffixes so the tool composes with go-tool habits.
	dirs := make([]string, 0, fs.NArg())
	for _, a := range fs.Args() {
		d := strings.TrimSuffix(a, "...")
		if d == "" {
			d = "."
		}
		dirs = append(dirs, d)
	}
	if len(dirs) == 0 {
		dirs = []string{"."}
	}

	root, err := lint.FindModuleRoot(dirs[0])
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	names := make([]string, 0, len(selected))
	for _, c := range selected {
		names = append(names, c.Name())
	}

	// Incremental cache: hash the tracked sources, diff against the cache
	// manifest, and decide between replay (nothing changed: reuse the
	// cached findings without even loading the module), warm (prime
	// unchanged function summaries) and cold.
	var (
		manifest  map[string]string
		cache     *lint.CacheFile
		changed   []string
		cacheMode = "off"
	)
	if *cachePath != "" {
		manifest, err = lint.HashTree(root)
		if err != nil {
			fmt.Fprintln(stderr, "pwrvet:", err)
			return 2
		}
		cache, err = lint.LoadCacheFile(*cachePath)
		if err != nil {
			if *cacheVfy {
				fmt.Fprintf(stderr, "pwrvet: cache %s unusable: %v\n", *cachePath, err)
				fmt.Fprintf(stderr, "regenerate: go run ./cmd/pwrvet -cache %s ./... and commit the result\n", *cachePath)
				return 1
			}
			cache = nil // fall back to a cold run that writes a fresh cache
		}
		if cache != nil {
			changed = lint.DiffFiles(cache.Files, manifest)
		}
		if *cacheVfy {
			if len(changed) > 0 {
				fmt.Fprintf(stderr, "pwrvet: cache %s is stale: %d tracked file(s) differ\n", *cachePath, len(changed))
				for _, f := range changed {
					fmt.Fprintf(stderr, "\t%s\n", f)
				}
				fmt.Fprintf(stderr, "regenerate: go run ./cmd/pwrvet -cache %s ./... and commit the result\n", *cachePath)
				return 1
			}
			if !*quiet {
				fmt.Fprintf(stdout, "pwrvet: cache %s is fresh (%d tracked files)\n", *cachePath, len(manifest))
			}
			return 0
		}
	}

	var (
		findings   []lint.Finding
		suppressed int
		times      []lint.CheckTime
		cstats     lint.CacheStats
		packages   int
	)
	if cache != nil && len(changed) == 0 && sameStrings(cache.Checks, names) {
		// Full hit: the previous run's findings are byte-for-byte valid.
		cacheMode = "replay"
		findings = append(findings, cache.Findings...)
		suppressed = cache.Suppressed
		packages = cache.Packages
		cstats = lint.CacheStats{FilesTotal: len(manifest), FilesReused: len(manifest)}
		// Count per-layer summaries, matching the warm-mode counters.
		for _, cf := range cache.Funcs {
			if cf.IP != nil {
				cstats.FuncsTotal++
			}
			if cf.BC != nil {
				cstats.FuncsTotal++
			}
		}
		cstats.FuncsReused = cstats.FuncsTotal
	} else {
		mod, err := lint.LoadModule(root)
		if err != nil {
			fmt.Fprintln(stderr, "pwrvet:", err)
			return 2
		}
		if cache != nil {
			cacheMode = "warm"
			mod.ApplyCache(cache, changed)
		} else if *cachePath != "" {
			cacheMode = "cold"
		}
		findings, suppressed, times = mod.RunTimed(selected)
		packages = len(mod.Packages)
		if *cachePath != "" {
			// Refresh the cache before the findings slice is relativized
			// and filtered in place below.
			if err := lint.WriteCacheFile(*cachePath, mod.BuildCache(manifest, names, findings, suppressed)); err != nil {
				fmt.Fprintln(stderr, "pwrvet:", err)
				return 2
			}
			mod.Stats.FilesTotal = len(manifest)
			if cache != nil {
				inManifest := 0
				for _, f := range changed {
					if _, ok := manifest[f]; ok {
						inManifest++
					}
				}
				mod.Stats.FilesReused = len(manifest) - inManifest
			}
		}
		cstats = mod.Stats
	}

	for i := range findings {
		// Report module-relative paths. (Replayed findings are already
		// relative; Rel fails and leaves them untouched.)
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	findings, err = filterDirs(findings, root, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	baselined := 0
	if *baseline != "" {
		accepted, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "pwrvet:", err)
			return 2
		}
		kept := findings[:0]
		for _, f := range findings {
			if accepted[baselineKey(f)] {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout) // no indent: one object per line
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(stderr, "pwrvet:", err)
				return 2
			}
		}
		if *stats {
			// The "stat" key distinguishes these records from findings,
			// so regenerated baselines that include them stay loadable.
			if err := enc.Encode(statCache{Stat: "cache", Mode: cacheMode, CacheStats: cstats}); err != nil {
				fmt.Fprintln(stderr, "pwrvet:", err)
				return 2
			}
			for _, t := range times {
				rec := statTime{Stat: "check_time", Name: t.Name, WallMS: float64(t.Wall) / 1e6}
				if err := enc.Encode(rec); err != nil {
					fmt.Fprintln(stderr, "pwrvet:", err)
					return 2
				}
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
			for _, hop := range f.Chain {
				fmt.Fprintf(stdout, "\tvia %s\n", hop)
			}
		}
		if !*quiet {
			fmt.Fprintf(stdout, "pwrvet: %d finding(s), %d suppressed, %d baselined, %d check(s) over %d package(s)\n",
				len(findings), suppressed, baselined, len(selected), packages)
		}
		if *stats {
			if cacheMode != "off" {
				fmt.Fprintf(stdout, "pwrvet: cache %s: %d/%d files reused, %d/%d func summaries reused\n",
					cacheMode, cstats.FilesReused, cstats.FilesTotal, cstats.FuncsReused, cstats.FuncsTotal)
			}
			for _, t := range times {
				fmt.Fprintf(stdout, "pwrvet: %-12s %8.1fms\n", t.Name, float64(t.Wall)/1e6)
			}
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// statCache / statTime are the -stats NDJSON records; the "stat" field
// keeps them distinguishable from findings.
type statCache struct {
	Stat string `json:"stat"`
	Mode string `json:"mode"`
	lint.CacheStats
}

type statTime struct {
	Stat   string  `json:"stat"`
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// filterDirs keeps the findings whose (module-relative) file lives under
// one of the given directories. A "." directory keeps everything.
func filterDirs(findings []lint.Finding, root string, dirs []string) ([]lint.Finding, error) {
	prefixes := make([]string, 0, len(dirs))
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			return findings, nil
		}
		prefixes = append(prefixes, rel+string(filepath.Separator))
	}
	kept := findings[:0]
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.File, p) {
				kept = append(kept, f)
				break
			}
		}
	}
	return kept, nil
}

// baselineKey identifies a finding for baseline matching: the line and
// column are deliberately excluded so edits elsewhere in the file do not
// invalidate accepted findings.
func baselineKey(f lint.Finding) string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

// loadBaseline reads an NDJSON findings file (as written by -json). Blank
// lines and lines starting with '#' are ignored.
func loadBaseline(path string) (map[string]bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = fh.Close() }() // read-only file; close error carries nothing
	accepted := map[string]bool{}
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var f lint.Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		if f.Check == "" || f.Message == "" {
			// Not a finding — e.g. a -stats record captured when the
			// baseline was regenerated from a -json -stats run.
			continue
		}
		accepted[baselineKey(f)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return accepted, nil
}

// selectChecks applies -checks / -disable to the registered set.
func selectChecks(all []lint.Check, enable, disable string) ([]lint.Check, error) {
	byName := map[string]lint.Check{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []lint.Check
	if enable != "" {
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			out = append(out, c)
		}
	} else {
		out = all
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			skip[name] = true
		}
		var kept []lint.Check
		for _, c := range out {
			if !skip[c.Name()] {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}
