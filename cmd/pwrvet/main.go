// Command pwrvet runs the repository's domain-specific static-analysis
// suite (internal/lint) over the module: the floating-point, panic-path,
// error-handling, log-base and benchmark-clock invariants that the
// point-wise relative error guarantee depends on, plus the flow-sensitive
// checks built on the per-function CFG/dataflow engine — intnarrow
// (truncating conversions and over-wide shifts in the bit-level codecs),
// decodebound (taint: input-derived lengths must be range-guarded before
// indexing, sizing an allocation, or bounding a loop), goroleak
// (WaitGroup pairing and channel close-on-all-paths), allochot
// (per-iteration allocation in hot codec loops), encdecpair
// (Encode/Compress API symmetry), and ctxflow (worker-pool goroutines
// whose channel sends select on neither a cancellation receive nor a
// default, so the pool cannot be torn down) — and the interprocedural
// summary layer: limitreach (decode-entry-tainted allocation sizes must
// pass a DecodeLimits/range guard on every call path), wrapreach
// (narrowing conversions of unvalidated decoder input across call
// boundaries), boundconst (raw log2(1+b) error bounds reaching quantizer
// sinks without the Lemma-2 tightening), and purity (package-level writes
// in worker-pool-reachable functions).
//
// Usage:
//
//	pwrvet [flags] [dir ...]
//
// Each dir (default ".") is a directory inside the module; the whole
// module is always analyzed, and when directories are given only the
// findings whose file lives under one of them are reported. Exit status
// is 0 when clean, 1 when there are unsuppressed findings, 2 on usage or
// load errors.
//
// With -json, findings are emitted as NDJSON: one JSON object per line
// with the check name, position, message, and (for interprocedural
// findings) the witness call chain.
//
// With -baseline file, findings matching an entry of the NDJSON baseline
// (same check, file, and message; line numbers are ignored so unrelated
// edits do not invalidate it) are accepted and do not affect the exit
// status. Regenerate the baseline with: pwrvet -json > file.
//
// Findings are suppressed inline with:
//
//	//lint:allow <check>[,<check>...] <one-line justification>
//
// on the offending line or the line above.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pwrvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as NDJSON (one object per line)")
		baseline = fs.String("baseline", "", "NDJSON file of accepted findings (matched by check+file+message)")
		checks   = fs.String("checks", "", "comma-separated checks to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated checks to skip")
		list     = fs.Bool("list", false, "list available checks and exit")
		quiet    = fs.Bool("q", false, "suppress the summary line")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pwrvet [flags] [dir ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.AllChecks()
	if *list {
		for _, c := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	selected, err := selectChecks(all, *checks, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	// Accept "./..." suffixes so the tool composes with go-tool habits.
	dirs := make([]string, 0, fs.NArg())
	for _, a := range fs.Args() {
		d := strings.TrimSuffix(a, "...")
		if d == "" {
			d = "."
		}
		dirs = append(dirs, d)
	}
	if len(dirs) == 0 {
		dirs = []string{"."}
	}

	root, err := lint.FindModuleRoot(dirs[0])
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	findings, suppressed := mod.Run(selected)
	for i := range findings {
		// Report module-relative paths.
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}
	findings, err = filterDirs(findings, root, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	baselined := 0
	if *baseline != "" {
		accepted, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "pwrvet:", err)
			return 2
		}
		kept := findings[:0]
		for _, f := range findings {
			if accepted[baselineKey(f)] {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout) // no indent: one object per line
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(stderr, "pwrvet:", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
			for _, hop := range f.Chain {
				fmt.Fprintf(stdout, "\tvia %s\n", hop)
			}
		}
		if !*quiet {
			fmt.Fprintf(stdout, "pwrvet: %d finding(s), %d suppressed, %d baselined, %d check(s) over %d package(s)\n",
				len(findings), suppressed, baselined, len(selected), len(mod.Packages))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// filterDirs keeps the findings whose (module-relative) file lives under
// one of the given directories. A "." directory keeps everything.
func filterDirs(findings []lint.Finding, root string, dirs []string) ([]lint.Finding, error) {
	prefixes := make([]string, 0, len(dirs))
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			return findings, nil
		}
		prefixes = append(prefixes, rel+string(filepath.Separator))
	}
	kept := findings[:0]
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.File, p) {
				kept = append(kept, f)
				break
			}
		}
	}
	return kept, nil
}

// baselineKey identifies a finding for baseline matching: the line and
// column are deliberately excluded so edits elsewhere in the file do not
// invalidate accepted findings.
func baselineKey(f lint.Finding) string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

// loadBaseline reads an NDJSON findings file (as written by -json). Blank
// lines and lines starting with '#' are ignored.
func loadBaseline(path string) (map[string]bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = fh.Close() }() // read-only file; close error carries nothing
	accepted := map[string]bool{}
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var f lint.Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		accepted[baselineKey(f)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return accepted, nil
}

// selectChecks applies -checks / -disable to the registered set.
func selectChecks(all []lint.Check, enable, disable string) ([]lint.Check, error) {
	byName := map[string]lint.Check{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []lint.Check
	if enable != "" {
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			out = append(out, c)
		}
	} else {
		out = all
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			skip[name] = true
		}
		var kept []lint.Check
		for _, c := range out {
			if !skip[c.Name()] {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}
