// Command pwrvet runs the repository's domain-specific static-analysis
// suite (internal/lint) over the module: the floating-point, panic-path,
// error-handling, log-base and benchmark-clock invariants that the
// point-wise relative error guarantee depends on, plus the flow-sensitive
// checks built on the per-function CFG/dataflow engine — intnarrow
// (truncating conversions and over-wide shifts in the bit-level codecs),
// decodebound (taint: input-derived lengths must be range-guarded before
// indexing, sizing an allocation, or bounding a loop), goroleak
// (WaitGroup pairing and channel close-on-all-paths), allochot
// (per-iteration allocation in hot codec loops), encdecpair
// (Encode/Compress API symmetry), and ctxflow (worker-pool goroutines
// whose channel sends select on neither a cancellation receive nor a
// default, so the pool cannot be torn down).
//
// Usage:
//
//	pwrvet [flags] [dir]
//
// dir (default ".") is any directory inside the module; the whole module
// is always analyzed. Exit status is 0 when clean, 1 when there are
// unsuppressed findings, 2 on usage or load errors.
//
// Findings are suppressed inline with:
//
//	//lint:allow <check>[,<check>...] <one-line justification>
//
// on the offending line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pwrvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		checks  = fs.String("checks", "", "comma-separated checks to run (default: all)")
		disable = fs.String("disable", "", "comma-separated checks to skip")
		list    = fs.Bool("list", false, "list available checks and exit")
		quiet   = fs.Bool("q", false, "suppress the summary line")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pwrvet [flags] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.AllChecks()
	if *list {
		for _, c := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		return 0
	}

	selected, err := selectChecks(all, *checks, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		// Accept a "./..." suffix so the tool composes with go-tool habits.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		if dir == "" {
			dir = "."
		}
	default:
		fs.Usage()
		return 2
	}

	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "pwrvet:", err)
		return 2
	}

	findings, suppressed := mod.Run(selected)
	for i := range findings {
		// Report module-relative paths.
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "pwrvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		if !*quiet {
			fmt.Fprintf(stdout, "pwrvet: %d finding(s), %d suppressed, %d check(s) over %d package(s)\n",
				len(findings), suppressed, len(selected), len(mod.Packages))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectChecks applies -checks / -disable to the registered set.
func selectChecks(all []lint.Check, enable, disable string) ([]lint.Check, error) {
	byName := map[string]lint.Check{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []lint.Check
	if enable != "" {
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			c, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			out = append(out, c)
		}
	} else {
		out = all
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown check %q (try -list)", name)
			}
			skip[name] = true
		}
		var kept []lint.Check
		for _, c := range out {
			if !skip[c.Name()] {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}
