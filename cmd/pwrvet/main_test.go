package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

func TestBaselineKeyIgnoresPosition(t *testing.T) {
	a := lint.Finding{Check: "wrapreach", File: "x.go", Line: 10, Col: 3, Message: "m"}
	b := lint.Finding{Check: "wrapreach", File: "x.go", Line: 99, Col: 7, Message: "m"}
	if baselineKey(a) != baselineKey(b) {
		t.Error("baseline key changed with line/col, want position-independent match")
	}
	c := lint.Finding{Check: "wrapreach", File: "y.go", Line: 10, Col: 3, Message: "m"}
	if baselineKey(a) == baselineKey(c) {
		t.Error("baseline key collided across files")
	}
}

func TestLoadBaselineSkipsCommentsAndBlanks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	content := "# header comment\n\n" +
		`{"check":"limitreach","file":"a.go","line":3,"col":1,"message":"msg"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	accepted, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}
	if len(accepted) != 1 {
		t.Fatalf("got %d accepted entries, want 1", len(accepted))
	}
	want := baselineKey(lint.Finding{Check: "limitreach", File: "a.go", Message: "msg"})
	if !accepted[want] {
		t.Error("baseline entry not matchable by check+file+message key")
	}
}

func TestLoadBaselineRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil {
		t.Error("loadBaseline accepted a malformed line, want error")
	}
}

func TestFilterDirs(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "internal", "lint")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	findings := []lint.Finding{
		{Check: "c", File: filepath.Join("internal", "lint", "a.go"), Message: "in"},
		{Check: "c", File: filepath.Join("cmd", "pwrvet", "b.go"), Message: "out"},
	}

	kept, err := filterDirs(append([]lint.Finding(nil), findings...), root, []string{sub})
	if err != nil {
		t.Fatalf("filterDirs: %v", err)
	}
	if len(kept) != 1 || kept[0].Message != "in" {
		t.Errorf("dir filter kept %v, want only the internal/lint finding", kept)
	}

	all, err := filterDirs(append([]lint.Finding(nil), findings...), root, []string{root})
	if err != nil {
		t.Fatalf("filterDirs: %v", err)
	}
	if len(all) != 2 {
		t.Errorf("module-root dir filtered findings: got %d, want 2", len(all))
	}
}
