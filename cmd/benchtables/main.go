// Command benchtables regenerates every table and figure of the paper's
// evaluation section from the synthetic datasets and prints them as text.
//
// Examples:
//
//	benchtables                  # everything at bench scale
//	benchtables -exp table4      # just the strict-bound table
//	benchtables -exp fig2,fig3   # the ratio and rate sweeps
//	benchtables -scale test      # quick smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma list: table2,table3,table4,fig1,fig2,fig3,fig4,fig5,fig6,ablation,seek,parity or all")
		scale   = flag.String("scale", "bench", "dataset scale: test, bench, large")
		seed    = flag.Int64("seed", 20180704, "workload seed")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	switch *scale {
	case "test":
		cfg.Scale = datagen.ScaleTest
	case "bench":
		cfg.Scale = datagen.ScaleBench
	case "large":
		cfg.Scale = datagen.ScaleLarge
	default:
		fatalf("unknown scale %q", *scale)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	ran := 0

	runExp := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		t0 := time.Now()
		if err := fn(); err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runExp("table2", func() error {
		r, err := experiments.TableII(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("fig1", func() error {
		r, err := experiments.Figure1(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("table3", func() error {
		r, err := experiments.TableIII(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("table4", func() error {
		rows, err := experiments.TableIV(cfg)
		if err != nil {
			return err
		}
		experiments.PrintTableIV(os.Stdout, rows)
		return nil
	})
	// fig2 and fig3 share their sweep; run once if either requested.
	if all || want["fig2"] || want["fig3"] {
		ran++
		t0 := time.Now()
		r2, r3, err := experiments.Figure23(cfg)
		if err != nil {
			fatalf("fig2/3: %v", err)
		}
		if all || want["fig2"] {
			r2.Print(os.Stdout)
		}
		if all || want["fig3"] {
			r3.Print(os.Stdout)
		}
		fmt.Printf("[fig2+fig3 completed in %v]\n\n", time.Since(t0).Round(time.Millisecond))
	}
	runExp("fig4", func() error {
		r, err := experiments.Figure4(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("fig5", func() error {
		r, err := experiments.Figure5(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("fig6", func() error {
		r, err := experiments.Figure6(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("ablation", func() error {
		r, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("seek", func() error {
		r, err := experiments.SeekAccess(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	runExp("parity", func() error {
		r, err := experiments.ParityOverhead(cfg)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})

	if ran == 0 {
		fatalf("no experiment matched %q", *expFlag)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchtables: "+format+"\n", args...)
	os.Exit(1)
}
