// Command datagen writes the synthetic application datasets used by the
// experiments to raw little-endian float64 files, one per field, plus a
// MANIFEST.txt describing dimensions (usable directly with cmd/pwrc).
//
// Example:
//
//	datagen -out /tmp/fields -scale bench -seed 42
//	pwrc -c -algo sz_t -rel 1e-3 -dims $(grep velocity_x /tmp/fields/MANIFEST.txt | cut -f2) \
//	     -in /tmp/fields/HACC.velocity_x.f64 -out /tmp/vx.szt
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
)

func main() {
	var (
		out   = flag.String("out", "fields", "output directory")
		scale = flag.String("scale", "bench", "dataset scale: test, bench, large")
		seed  = flag.Int64("seed", 20180704, "generator seed")
		app   = flag.String("app", "", "only this application (HACC, CESM-ATM, NYX, Hurricane)")
	)
	flag.Parse()

	var s datagen.Scale
	switch *scale {
	case "test":
		s = datagen.ScaleTest
	case "bench":
		s = datagen.ScaleBench
	case "large":
		s = datagen.ScaleLarge
	default:
		fatalf("unknown scale %q", *scale)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	fields := datagen.Suite(s, *seed)
	var manifest strings.Builder
	total := 0
	for _, f := range fields {
		if *app != "" && f.App != *app {
			continue
		}
		name := fmt.Sprintf("%s.%s.f64", f.App, f.Name)
		path := filepath.Join(*out, name)
		raw := make([]byte, len(f.Data)*8)
		for i, v := range f.Data {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			fatalf("%v", err)
		}
		dims := make([]string, len(f.Dims))
		for i, d := range f.Dims {
			dims[i] = fmt.Sprint(d)
		}
		fmt.Fprintf(&manifest, "%s\t%s\t%d bytes\n", name, strings.Join(dims, ","), len(raw))
		total += len(raw)
		fmt.Printf("wrote %s (%v, %.1f MB)\n", path, f.Dims, float64(len(raw))/1e6)
	}
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest.String()), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("total %.1f MB in %s\n", float64(total)/1e6, *out)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
