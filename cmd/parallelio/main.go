// Command parallelio runs the Figure 6 parallel dumping/loading experiment
// with a configurable cluster model: compression rates are measured with
// the real compressors on local cores; the parallel file system is the
// shared-bandwidth model from internal/pfs.
//
// Example:
//
//	parallelio -cores 1024,2048,4096 -rel 1e-2 -per-rank-gb 3 -peak-write-gbs 8
//
// With -stream the per-core rates are measured through the bounded-memory
// streaming pipeline (CompressStream/DecompressStream) instead of the
// in-memory compressors — the regime a rank dumping a field larger than
// its memory budget actually runs in.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro"
	"repro/internal/datagen"
	"repro/internal/pfs"
)

func main() {
	var (
		coresFlag    = flag.String("cores", "1024,2048,4096", "comma list of core counts")
		rel          = flag.Float64("rel", 1e-2, "point-wise relative error bound")
		perRankGB    = flag.Float64("per-rank-gb", 3, "raw data per rank (GB)")
		peakWriteGBs = flag.Float64("peak-write-gbs", 8, "aggregate write bandwidth (GB/s)")
		peakReadGBs  = flag.Float64("peak-read-gbs", 10, "aggregate read bandwidth (GB/s)")
		side         = flag.Int("side", 64, "NYX cube side for the rate measurement")
		seed         = flag.Int64("seed", 20180704, "workload seed")
		stream       = flag.Bool("stream", false, "measure rates through the bounded-memory streaming pipeline")
		workers      = flag.Int("workers", 0, "streaming worker count (default GOMAXPROCS)")
	)
	flag.Parse()

	var coresList []int
	for _, c := range strings.Split(*coresFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || v <= 0 {
			fatalf("bad core count %q", c)
		}
		coresList = append(coresList, v)
	}

	fields := datagen.NYX(*side, *seed)
	bytesPerRank := int64(*perRankGB * float64(1<<30))
	algos := []repro.Algorithm{repro.SZPWR, repro.FPZIP, repro.SZT}

	mode := "in-memory"
	if *stream {
		mode = "streaming"
	}
	fmt.Printf("parallel I/O model: %.0f GB/rank, pwr_eb=%g, NYX %d^3 sample (%d fields, %s rates)\n",
		*perRankGB, *rel, *side, len(fields), mode)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cores\tcompressor\tCR\tcomp MB/s\tdecomp MB/s\tdump(s)\tload(s)\tvs raw dump")
	for _, algo := range algos {
		var totalRaw int
		var compSec, decSec, compBytes float64
		for i := range fields {
			f := &fields[i]
			compressFn := func() ([]byte, error) { return repro.Compress(f.Data, f.Dims, *rel, algo, nil) }
			decompressFn := func(buf []byte) error { _, _, err := repro.Decompress(buf); return err }
			if *stream {
				raw := rawLE(f.Data)
				opts := &repro.StreamOptions{Workers: *workers}
				compressFn = func() ([]byte, error) {
					var out bytes.Buffer
					_, err := repro.CompressStream(bytes.NewReader(raw), &out, f.Dims, *rel, algo, opts)
					return out.Bytes(), err
				}
				decompressFn = func(buf []byte) error {
					_, err := repro.DecompressStream(bytes.NewReader(buf), io.Discard)
					return err
				}
			}
			rates, err := pfs.Measure(f.Bytes(), compressFn, decompressFn)
			if err != nil {
				fatalf("%v: %v", algo, err)
			}
			totalRaw += f.Bytes()
			compBytes += float64(f.Bytes()) / rates.Ratio
			compSec += float64(f.Bytes()) / rates.CompressRate
			decSec += float64(f.Bytes()) / rates.DecompressRate
		}
		ratio := float64(totalRaw) / compBytes
		compressRate := float64(totalRaw) / compSec
		decompressRate := float64(totalRaw) / decSec

		for _, cores := range coresList {
			sys := pfs.DefaultSystem(cores)
			sys.PeakWrite = *peakWriteGBs * 1e9
			sys.PeakRead = *peakReadGBs * 1e9
			dump, err := sys.DumpTime(bytesPerRank, int64(float64(bytesPerRank)/ratio), compressRate)
			if err != nil {
				fatalf("%v", err)
			}
			load, err := sys.LoadTime(bytesPerRank, int64(float64(bytesPerRank)/ratio), decompressRate)
			if err != nil {
				fatalf("%v", err)
			}
			raw, err := sys.RawDumpTime(bytesPerRank)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.0f\t%.0f\t%.1f\t%.1f\t%.1fx\n",
				cores, algo, ratio, compressRate/1e6, decompressRate/1e6,
				dump.Total().Seconds(), load.Total().Seconds(),
				raw.Total().Seconds()/dump.Total().Seconds())
		}
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}

// rawLE serializes a field to the little-endian float64 layout the
// streaming pipeline reads.
func rawLE(data []float64) []byte {
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return raw
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "parallelio: "+format+"\n", args...)
	os.Exit(1)
}
