// Command pwrc is the point-wise-relative compressor CLI: it compresses and
// decompresses raw binary float arrays with any of the repository's
// algorithms.
//
// Raw input is a little-endian array of float64 (or float32 with -f32).
//
// Examples:
//
//	pwrc -c -algo sz_t -rel 1e-3 -dims 512,512,512 -in snap.f64 -out snap.szt
//	pwrc -d -in snap.szt -out snap.out.f64
//	pwrc -c -algo sz_abs -abs 0.01 -dims 1048576 -in v.f64 -out v.sz
//
// With -stream the file is compressed (or decompressed) through the
// bounded-memory pipeline: the input is never loaded whole, so fields
// far larger than RAM stream through O(workers × chunk) memory:
//
//	pwrc -c -stream -algo sz_t -rel 1e-3 -dims 4096,512,512 -in huge.f64 -out huge.szs
//	pwrc -d -stream -in huge.szs -out huge.out.f64
//
// -mem-budget caps the streaming pipeline's resident buffer memory,
// deriving chunk size and worker count from the byte budget. Combined
// with -archive, -stream bundles a whole manifest into one v3 streaming
// archive (or serves single fields out of one without touching the
// rest):
//
//	pwrc -c -archive -stream -manifest fields/MANIFEST.txt -rel 1e-3 -out snap.arcs -mem-budget 67108864
//	pwrc -d -archive -stream -in snap.arcs -outdir restored/
//	pwrc -d -archive -stream -in snap.arcs -field baryon_density -out baryon.f64
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/atomicio"
	"repro/internal/faultio"
	"repro/internal/floatbits"
	"repro/internal/metrics"
)

// inputRetries is the bounded retry budget applied to streaming input
// reads: transient I/O hiccups (flaky network mounts) are absorbed,
// persistent failures propagate wrapped after this many extra attempts.
const inputRetries = 3

func main() {
	var (
		compress   = flag.Bool("c", false, "compress")
		decompress = flag.Bool("d", false, "decompress")
		algoName   = flag.String("algo", "sz_t", "algorithm: sz_t zfp_t sz_pwr zfp_p fpzip isabela sz_abs zfp_acc")
		rel        = flag.Float64("rel", 0, "point-wise relative error bound (0,1)")
		abs        = flag.Float64("abs", 0, "absolute error bound (sz_abs / zfp_acc)")
		dimsFlag   = flag.String("dims", "", "comma-separated dimensions, slowest first (e.g. 512,512,512)")
		in         = flag.String("in", "", "input file")
		out        = flag.String("out", "", "output file")
		f32        = flag.Bool("f32", false, "raw data is float32 instead of float64")
		verify     = flag.Bool("verify", false, "after compressing, decompress and report error stats; with -stream, decode-verify every chunk before the container commits")
		base       = flag.String("base", "2", "log base for sz_t/zfp_t: 2, e, 10")
		archive    = flag.Bool("archive", false, "archive mode: bundle/extract a whole manifest of fields")
		manifest   = flag.String("manifest", "", "MANIFEST.txt path (archive compression)")
		outdir     = flag.String("outdir", "", "output directory (archive extraction)")
		stream     = flag.Bool("stream", false, "bounded-memory streaming mode (float64 raw only)")
		salvage    = flag.Bool("salvage", false, "with -d -stream: recover what survives of a damaged container, NaN-filling lost rows")
		rowRange   = flag.String("range", "", "with -d -stream: decode only rows start:count (e.g. 4096:128) via the seekable index")
		workers    = flag.Int("workers", 0, "streaming worker count (default GOMAXPROCS)")
		chunkRows  = flag.Int("chunk-rows", 0, "rows of the slowest dimension per streamed chunk (default ~256Ki elements)")
		parity     = flag.Int("parity", 0, "with -c -stream: emit one XOR parity frame per k data chunks so salvage can repair a lost chunk per group (~1/k size overhead; 0 = no parity)")
		maxElems   = flag.Int64("max-elements", 1<<33, "with -d -stream: refuse containers declaring more than n field elements — a hostile header cannot demand unbounded output (0 = unlimited)")
		memBudget  = flag.Int64("mem-budget", 0, "with -stream: target peak resident buffer memory in bytes; unset chunk-rows/worker knobs are derived from it (0 = no budget)")
		field      = flag.String("field", "", "with -d -archive -stream: extract only this field (manifest name or full entry)")
	)
	flag.Parse()

	if *compress == *decompress {
		fatalf("exactly one of -c or -d is required")
	}
	if *salvage && !(*stream && *decompress) {
		fatalf("-salvage requires -d -stream")
	}
	if *rowRange != "" && !(*stream && *decompress) {
		fatalf("-range requires -d -stream")
	}
	if *rowRange != "" && *salvage {
		fatalf("-range cannot be combined with -salvage (a range read refuses damaged containers)")
	}
	if *parity != 0 && !(*stream && *compress) {
		fatalf("-parity requires -c -stream")
	}
	if *memBudget != 0 && !*stream {
		fatalf("-mem-budget requires -stream")
	}
	if *field != "" && !(*archive && *stream && *decompress) {
		fatalf("-field requires -d -archive -stream")
	}

	if *archive {
		switch {
		case *compress:
			algo, err := parseAlgo(*algoName)
			check(err)
			if *manifest == "" || *out == "" {
				fatalf("archive compression needs -manifest and -out")
			}
			if !(*rel > 0 && *rel < 1) {
				fatalf("archive compression needs -rel in (0,1)")
			}
			if *stream {
				copts, err := parseBase(*base)
				check(err)
				sopts := append(streamFlagOptions(*workers, *chunkRows, *parity, *verify, *memBudget),
					repro.WithCompressorOptions(copts))
				check(streamCompressArchive(*manifest, algo, *rel, sopts, *out, *f32))
			} else {
				check(compressArchive(*manifest, algo, *rel, nil, *out, *f32))
			}
		default:
			if *in == "" {
				fatalf("archive extraction needs -in")
			}
			if *stream {
				if *outdir == "" && (*field == "" || *out == "") {
					fatalf("streaming archive extraction needs -outdir, or -field with -out")
				}
				check(streamExtractArchive(*in, *outdir, *field, *out,
					streamFlagOptions(*workers, 0, 0, false, *memBudget),
					decodeLimits(*maxElems), *f32))
			} else {
				if *outdir == "" {
					fatalf("archive extraction needs -in and -outdir")
				}
				check(extractArchive(*in, *outdir, *f32))
			}
		}
		return
	}

	if *in == "" || *out == "" {
		fatalf("-in and -out are required")
	}

	if *stream {
		if *f32 {
			fatalf("-stream supports float64 raw data only")
		}
		if *decompress {
			lim := decodeLimits(*maxElems)
			dopts := streamFlagOptions(*workers, 0, 0, false, *memBudget)
			switch {
			case *salvage:
				streamSalvageFile(*in, *out, lim)
			case *rowRange != "":
				start, count, err := parseRange(*rowRange)
				check(err)
				streamReadRangeFile(*in, *out, start, count, lim, dopts)
			default:
				streamDecompressFile(*in, *out, lim, dopts)
			}
			return
		}
		dims, err := parseDims(*dimsFlag)
		check(err)
		algo, err := parseAlgo(*algoName)
		check(err)
		copts, err := parseBase(*base)
		check(err)
		if !(*rel > 0 && *rel < 1) {
			fatalf("%v needs -rel in (0,1)", algo)
		}
		sopts := append(streamFlagOptions(*workers, *chunkRows, *parity, *verify, *memBudget),
			repro.WithCompressorOptions(copts))
		streamCompressFile(*in, *out, dims, *rel, algo, sopts, *parity, *verify)
		return
	}

	if *decompress {
		buf, err := os.ReadFile(*in)
		check(err)
		t0 := time.Now()
		data, dims, err := repro.Decompress(buf)
		check(err)
		elapsed := time.Since(t0)
		check(writeRaw(*out, data, *f32))
		algo, _ := repro.AlgorithmOf(buf)
		fmt.Printf("decompressed %s: %d points dims=%v in %v (%.1f MB/s)\n",
			algo, len(data), dims, elapsed.Round(time.Millisecond),
			float64(len(data)*8)/1e6/elapsed.Seconds())
		return
	}

	dims, err := parseDims(*dimsFlag)
	check(err)
	data, err := readRaw(*in, *f32)
	check(err)

	algo, err := parseAlgo(*algoName)
	check(err)
	opts, err := parseBase(*base)
	check(err)

	var buf []byte
	t0 := time.Now()
	switch algo {
	case repro.SZABS, repro.ZFPACC:
		if !(*abs > 0) {
			fatalf("%v needs -abs > 0", algo)
		}
		buf, err = repro.CompressAbs(data, dims, *abs, algo, opts)
	default:
		if !(*rel > 0 && *rel < 1) {
			fatalf("%v needs -rel in (0,1)", algo)
		}
		buf, err = repro.Compress(data, dims, *rel, algo, opts)
	}
	check(err)
	elapsed := time.Since(t0)
	check(atomicio.WriteFile(*out, buf, 0o644))

	rawBytes := len(data) * 8
	fmt.Printf("compressed with %v: %d -> %d bytes (CR %.2f, %.2f bits/pt) in %v (%.1f MB/s)\n",
		algo, rawBytes, len(buf),
		metrics.CompressionRatio(rawBytes, len(buf)),
		metrics.BitRate(len(buf), len(data)),
		elapsed.Round(time.Millisecond),
		float64(rawBytes)/1e6/elapsed.Seconds())

	if *verify {
		dec, _, err := repro.Decompress(buf)
		check(err)
		bound := *rel
		if floatbits.IsZero(bound) {
			bound = math.Inf(1)
		}
		st, err := metrics.RelError(data, dec, bound)
		check(err)
		fmt.Printf("verify: bounded=%.4f%% avg_rel=%.3g max_rel=%.3g max_abs=%.3g zeros_perturbed=%d\n",
			st.BoundedFrac*100, st.Avg, st.Max, st.MaxAbs, st.ZeroPerturbed)
	}
}

func parseBase(s string) (*repro.Options, error) {
	opts := &repro.Options{}
	switch s {
	case "2":
	case "e":
		opts.Base = repro.BaseE
	case "10":
		opts.Base = repro.Base10
	default:
		return nil, fmt.Errorf("unknown base %q", s)
	}
	return opts, nil
}

// streamFlagOptions translates the streaming CLI knobs into the shared
// functional-options form every streaming entry point consumes; zero
// values stay unset so library defaults (or a -mem-budget derivation)
// apply.
func streamFlagOptions(workers, chunkRows, parityK int, verify bool, memBudget int64) []repro.StreamOption {
	var o []repro.StreamOption
	if workers > 0 {
		o = append(o, repro.WithWorkers(workers))
	}
	if chunkRows > 0 {
		o = append(o, repro.WithChunkRows(chunkRows))
	}
	if parityK != 0 {
		o = append(o, repro.WithParity(parityK))
	}
	if verify {
		o = append(o, repro.WithVerifyOnWrite())
	}
	if memBudget != 0 {
		o = append(o, repro.WithMemoryBudget(memBudget))
	}
	return o
}

// streamCompressFile compresses in -> out through the bounded-memory
// pipeline without ever loading the field. The container is written to
// a same-directory temporary and only renamed over out once sealed, so
// a crash or I/O failure mid-stream never leaves a torn container.
func streamCompressFile(in, out string, dims []int, rel float64, algo repro.Algorithm, opts []repro.StreamOption, parityK int, verifyOn bool) {
	src, err := os.Open(in)
	check(err)
	defer src.Close() //lint:allow errdrop read-only input
	dst, err := atomicio.Create(out)
	check(err)
	defer dst.Abort()
	t0 := time.Now()
	r := faultio.Retry(bufio.NewReaderSize(src, 1<<20), inputRetries)
	st, err := repro.CompressStreamOpts(r, dst, dims, rel, algo, opts...)
	if err != nil {
		dst.Abort() // fatalf exits without running defers
		fatalf("stream compress: %v", err)
	}
	check(dst.Commit())
	elapsed := time.Since(t0)
	fmt.Printf("stream-compressed with %v: %d -> %d bytes (CR %.2f) in %v (%.1f MB/s)\n",
		algo, st.BytesIn, st.BytesOut,
		metrics.CompressionRatio(int(st.BytesIn), int(st.BytesOut)),
		elapsed.Round(time.Millisecond),
		float64(st.BytesIn)/1e6/elapsed.Seconds())
	fmt.Printf("stream stats: chunks=%d max_in_flight=%d buffers=%d read=%v codec=%v write=%v\n",
		st.Chunks, st.MaxInFlight, st.BuffersAllocated,
		st.ReadWall.Round(time.Millisecond), st.CodecWall.Round(time.Millisecond),
		st.WriteWall.Round(time.Millisecond))
	if parityK > 0 {
		fmt.Printf("parity: %d frames (1 per %d chunks)\n", st.ParityFrames, parityK)
	}
	if verifyOn {
		fmt.Printf("verify: %d chunks decode-verified before commit\n", st.VerifiedChunks)
	}
}

// streamDecompressFile decodes a stream container in -> out, committing
// the raw output atomically.
// decodeLimits builds the opt-in decode ceilings from -max-elements;
// 0 opts out entirely (the library treats nil as unlimited).
func decodeLimits(maxElems int64) *repro.DecodeLimits {
	if maxElems <= 0 {
		return nil
	}
	return &repro.DecodeLimits{MaxElements: maxElems}
}

func streamDecompressFile(in, out string, lim *repro.DecodeLimits, opts []repro.StreamOption) {
	src, err := os.Open(in)
	check(err)
	defer src.Close() //lint:allow errdrop read-only input
	dst, err := atomicio.Create(out)
	check(err)
	w := bufio.NewWriterSize(dst, 1<<20)
	t0 := time.Now()
	st, err := repro.DecompressStreamOpts(faultio.Retry(src, inputRetries), w,
		append(opts, repro.WithLimits(lim))...)
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		dst.Abort() // fatalf exits without running defers
		fatalf("stream decompress: %v", err)
	}
	check(dst.Commit())
	elapsed := time.Since(t0)
	fmt.Printf("stream-decompressed: %d -> %d bytes (%d chunks) in %v (%.1f MB/s)\n",
		st.BytesIn, st.BytesOut, st.Chunks,
		elapsed.Round(time.Millisecond),
		float64(st.BytesOut)/1e6/elapsed.Seconds())
}

// parseRange parses the -range argument "start:count" (rows).
func parseRange(s string) (start, count uint64, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -range %q: want start:count", s)
	}
	if start, err = strconv.ParseUint(strings.TrimSpace(lo), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -range start %q: %v", lo, err)
	}
	if count, err = strconv.ParseUint(strings.TrimSpace(hi), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -range count %q: %v", hi, err)
	}
	return start, count, nil
}

// streamReadRangeFile serves rows [start, start+count) of a sealed
// stream container through the seekable index: only the touched chunks
// are fetched and decoded, so the cost scales with the range, not the
// container.
func streamReadRangeFile(in, out string, start, count uint64, lim *repro.DecodeLimits, opts []repro.StreamOption) {
	src, err := os.Open(in)
	check(err)
	defer src.Close() //lint:allow errdrop read-only input
	h, err := repro.OpenStream(src, append(opts, repro.WithLimits(lim))...)
	if err != nil {
		fatalf("open stream: %v", err)
	}
	dst := make([]float64, count*uint64(h.RowStride()))
	t0 := time.Now()
	if err := h.ReadRows(dst, start, count); err != nil {
		fatalf("read rows [%d,+%d): %v", start, count, err)
	}
	elapsed := time.Since(t0)
	check(writeRaw(out, dst, false))
	st := h.Stats()
	fmt.Printf("read rows [%d,%d) of %d (dims=%v): %d chunks of %d, %d container bytes fetched, %d bytes out in %v\n",
		start, start+count, h.Rows(), h.Dims(), st.Chunks, h.Chunks(), st.BytesIn, st.BytesOut,
		elapsed.Round(time.Millisecond))
	if st.RepairedChunks > 0 {
		fmt.Printf("repaired %d damaged chunk(s) from parity during the read\n", st.RepairedChunks)
	}
}

// streamSalvageFile recovers the intact chunks of a damaged stream
// container — repairing single losses from parity where the container
// carries it — and reports exactly what was lost.
func streamSalvageFile(in, out string, lim *repro.DecodeLimits) {
	src, err := os.Open(in)
	check(err)
	defer src.Close() //lint:allow errdrop read-only input
	dst, err := atomicio.Create(out)
	check(err)
	w := bufio.NewWriterSize(dst, 1<<20)
	rep, err := repro.DecompressStreamSalvage(faultio.Retry(src, inputRetries), w, lim)
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		dst.Abort() // fatalf exits without running defers
		fatalf("salvage: %v", err)
	}
	check(dst.Commit())
	fmt.Printf("salvaged %d of %d chunks (dims=%v, %d -> %d bytes)\n",
		rep.Recovered, rep.Chunks, rep.Dims, rep.BytesIn, rep.BytesOut)
	if n := rep.Repaired(); n > 0 {
		fmt.Printf("repaired %d damaged chunk(s) from parity: %v\n", n, rep.RepairedChunks)
	}
	if len(rep.DamagedParity) > 0 {
		fmt.Printf("damaged parity frames (groups %v): repair degraded to skip\n", rep.DamagedParity)
	}
	if !rep.IndexOK {
		fmt.Println("index frame damaged: recovery relied on forward scan")
	}
	if rep.Truncated {
		fmt.Println("container is truncated")
	}
	for _, rr := range rep.LostRows {
		fmt.Printf("lost rows [%d,%d): filled with NaN\n", rr.Lo, rr.Hi)
	}
	for _, br := range rep.LostBytes {
		fmt.Printf("damaged container bytes [%d,%d)\n", br.Lo, br.Hi)
	}
	if rep.Lost() == 0 {
		fmt.Println("no data lost")
	}
}

func parseAlgo(s string) (repro.Algorithm, error) {
	switch strings.ToLower(s) {
	case "sz_t", "szt":
		return repro.SZT, nil
	case "zfp_t", "zfpt":
		return repro.ZFPT, nil
	case "sz_pwr", "szpwr":
		return repro.SZPWR, nil
	case "zfp_p", "zfpp":
		return repro.ZFPP, nil
	case "fpzip":
		return repro.FPZIP, nil
	case "isabela":
		return repro.ISABELA, nil
	case "sz_abs", "szabs":
		return repro.SZABS, nil
	case "zfp_acc", "zfpacc":
		return repro.ZFPACC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required for compression")
	}
	parts := strings.Split(s, ",")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func readRaw(path string, f32 bool) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f32 {
		if len(raw)%4 != 0 {
			return nil, fmt.Errorf("file size %d not a multiple of 4", len(raw))
		}
		out := make([]float64, len(raw)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
		return out, nil
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("file size %d not a multiple of 8", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

func writeRaw(path string, data []float64, f32 bool) error {
	var raw []byte
	if f32 {
		raw = make([]byte, len(data)*4)
		for i, v := range data {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v)))
		}
	} else {
		raw = make([]byte, len(data)*8)
		for i, v := range data {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
	}
	return atomicio.WriteFile(path, raw, 0o644)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pwrc: "+format+"\n", args...)
	os.Exit(1)
}
