package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/atomicio"
	"repro/internal/faultio"
)

// Archive mode: bundle every field of a MANIFEST.txt (as written by
// cmd/datagen) into one compressed archive, or extract an archive back to
// raw files.
//
//	pwrc -c -archive -manifest fields/MANIFEST.txt -algo sz_t -rel 1e-3 -out snap.arc
//	pwrc -d -archive -in snap.arc -outdir restored/
//
// With -stream the bundle is a v3 streaming archive: each field flows
// through the bounded-memory chunk pipeline straight into the container
// (no field is ever held whole), and extraction serves fields through
// the seekable index — -field pulls one field without touching the rest.

func compressArchive(manifest string, algo repro.Algorithm, rel float64, opts *repro.Options, out string, f32 bool) error {
	dir := filepath.Dir(manifest)
	mf, err := os.Open(manifest)
	if err != nil {
		return err
	}
	defer mf.Close() //lint:allow errdrop read-only file; scanner errors are checked

	w := repro.NewArchiveWriter()
	scanner := bufio.NewScanner(mf)
	totalRaw := 0
	t0 := time.Now()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			return fmt.Errorf("malformed manifest line %q", line)
		}
		name, dimsStr := parts[0], parts[1]
		dims, err := parseDims(dimsStr)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		data, err := readRaw(filepath.Join(dir, name), f32)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		buf, err := repro.Compress(data, dims, rel, algo, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := w.AddCompressed(name+"|"+dimsStr, buf); err != nil {
			return err
		}
		totalRaw += len(data) * 8
		fmt.Printf("  %s: %d -> %d bytes\n", name, len(data)*8, len(buf))
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	arc := w.Bytes()
	if err := os.WriteFile(out, arc, 0o644); err != nil {
		return err
	}
	fmt.Printf("archive %s: %d -> %d bytes (CR %.2f) in %v\n",
		out, totalRaw, len(arc), float64(totalRaw)/float64(len(arc)),
		time.Since(t0).Round(time.Millisecond))
	return nil
}

// streamCompressArchive bundles every manifest field into one v3
// streaming archive. Each field file streams through the bounded-memory
// pipeline directly into the container — peak memory is set by the
// chunking knobs (or -mem-budget), not by the largest field — and the
// archive is committed atomically only after the directory seals.
func streamCompressArchive(manifest string, algo repro.Algorithm, rel float64, opts []repro.StreamOption, out string, f32 bool) error {
	dir := filepath.Dir(manifest)
	mf, err := os.Open(manifest)
	if err != nil {
		return err
	}
	defer mf.Close() //lint:allow errdrop read-only file; scanner errors are checked

	dst, err := atomicio.Create(out)
	if err != nil {
		return err
	}
	defer dst.Abort()
	bw := bufio.NewWriterSize(dst, 1<<20)
	aw, err := repro.NewArchiveStreamWriter(bw, opts...)
	if err != nil {
		return err
	}

	var totalRaw, totalBlob int64
	t0 := time.Now()
	scanner := bufio.NewScanner(mf)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			return fmt.Errorf("malformed manifest line %q", line)
		}
		name, dimsStr := parts[0], parts[1]
		dims, err := parseDims(dimsStr)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		st, err := streamArchiveField(aw, filepath.Join(dir, name), name+"|"+dimsStr, dims, rel, algo, f32)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		totalRaw += st.BytesIn
		totalBlob += st.BytesOut
		fmt.Printf("  %s: %d -> %d bytes (%d chunks)\n", name, st.BytesIn, st.BytesOut, st.Chunks)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if err := aw.Close(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := dst.Commit(); err != nil {
		return err
	}
	fmt.Printf("stream archive %s: %d -> %d blob bytes (CR %.2f) in %v\n",
		out, totalRaw, totalBlob, float64(totalRaw)/float64(totalBlob),
		time.Since(t0).Round(time.Millisecond))
	return nil
}

// streamArchiveField streams one raw field file into the archive writer,
// scoping the input file's lifetime to the call.
func streamArchiveField(aw *repro.ArchiveStreamWriter, path, entry string, dims []int, rel float64, algo repro.Algorithm, f32 bool) (*repro.StreamStats, error) {
	src, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer src.Close() //lint:allow errdrop read-only input
	r := faultio.Retry(bufio.NewReaderSize(src, 1<<20), inputRetries)
	if f32 {
		return aw.AddField32(entry, r, dims, rel, algo)
	}
	return aw.AddField(entry, r, dims, rel, algo)
}

// streamExtractArchive restores fields from a v3 streaming archive via
// the seekable per-field index. With field set, only that field's
// extent is read (to outFile when given, else outdir); otherwise every
// field lands in outdir. Rows stream out in bounded batches, so
// extraction memory stays flat no matter the field size.
func streamExtractArchive(in, outdir, field, outFile string, opts []repro.StreamOption, lim *repro.DecodeLimits, f32 bool) error {
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close() //lint:allow errdrop read-only input
	as, err := repro.OpenArchiveStream(src, append(opts, repro.WithLimits(lim))...)
	if err != nil {
		return err
	}

	entries := as.SortedFields()
	if field != "" {
		match := ""
		for _, e := range entries {
			if e == field || fieldBaseName(e) == field {
				match = e
				break
			}
		}
		if match == "" {
			return fmt.Errorf("field %q not in archive (have %v)", field, entries)
		}
		entries = entries[:0]
		entries = append(entries, match)
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
	}
	for _, entry := range entries {
		path := outFile
		if path == "" {
			path = filepath.Join(outdir, fieldBaseName(entry))
		}
		if err := streamExtractField(as, entry, path, f32); err != nil {
			return fmt.Errorf("%s: %w", fieldBaseName(entry), err)
		}
	}
	return nil
}

// fieldBaseName strips the "|dims" suffix archive entries carry.
func fieldBaseName(entry string) string {
	if i := strings.IndexByte(entry, '|'); i >= 0 {
		return entry[:i]
	}
	return entry
}

// streamExtractField decodes one archived field to path in row batches
// of at most ~8 MiB of raw output, committing the file atomically.
func streamExtractField(as *repro.ArchiveStream, entry, path string, f32 bool) error {
	h, err := as.Field(entry)
	if err != nil {
		return err
	}
	dst, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer dst.Abort()
	w := bufio.NewWriterSize(dst, 1<<20)

	rows := h.Rows()
	stride := uint64(h.RowStride())
	batch := uint64(8<<20) / (stride * 8)
	if batch == 0 {
		batch = 1
	}
	vals := make([]float64, batch*stride)
	for start := uint64(0); start < rows; start += batch {
		n := batch
		if rows-start < n {
			n = rows - start
		}
		chunk := vals[:n*stride]
		if err := h.ReadRows(chunk, start, n); err != nil {
			return err
		}
		if err := writeValsLE(w, chunk, f32); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := dst.Commit(); err != nil {
		return err
	}
	st := h.Stats()
	fmt.Printf("  %s: %d rows dims=%v (%d container bytes fetched)\n",
		path, rows, h.Dims(), st.BytesIn)
	return nil
}

// writeValsLE appends vals to w as little-endian float64 (or narrowed
// float32) raw bytes.
func writeValsLE(w io.Writer, vals []float64, f32 bool) error {
	if f32 {
		raw := make([]byte, len(vals)*4)
		for i, v := range vals {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v)))
		}
		_, err := w.Write(raw)
		return err
	}
	raw := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(raw)
	return err
}

func extractArchive(in, outdir string, f32 bool) error {
	buf, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	r, err := repro.OpenArchive(buf)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	for _, entry := range r.Fields() {
		name := entry
		if i := strings.IndexByte(entry, '|'); i >= 0 {
			name = entry[:i]
		}
		data, dims, err := r.Field(entry)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(outdir, name)
		if err := writeRaw(path, data, f32); err != nil {
			return err
		}
		fmt.Printf("  %s: %d points dims=%v\n", path, len(data), dims)
	}
	return nil
}
