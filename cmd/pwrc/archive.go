package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

// Archive mode: bundle every field of a MANIFEST.txt (as written by
// cmd/datagen) into one compressed archive, or extract an archive back to
// raw files.
//
//	pwrc -c -archive -manifest fields/MANIFEST.txt -algo sz_t -rel 1e-3 -out snap.arc
//	pwrc -d -archive -in snap.arc -outdir restored/

func compressArchive(manifest string, algo repro.Algorithm, rel float64, opts *repro.Options, out string, f32 bool) error {
	dir := filepath.Dir(manifest)
	mf, err := os.Open(manifest)
	if err != nil {
		return err
	}
	defer mf.Close() //lint:allow errdrop read-only file; scanner errors are checked

	w := repro.NewArchiveWriter()
	scanner := bufio.NewScanner(mf)
	totalRaw := 0
	t0 := time.Now()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			return fmt.Errorf("malformed manifest line %q", line)
		}
		name, dimsStr := parts[0], parts[1]
		dims, err := parseDims(dimsStr)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		data, err := readRaw(filepath.Join(dir, name), f32)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		buf, err := repro.Compress(data, dims, rel, algo, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := w.AddCompressed(name+"|"+dimsStr, buf); err != nil {
			return err
		}
		totalRaw += len(data) * 8
		fmt.Printf("  %s: %d -> %d bytes\n", name, len(data)*8, len(buf))
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	arc := w.Bytes()
	if err := os.WriteFile(out, arc, 0o644); err != nil {
		return err
	}
	fmt.Printf("archive %s: %d -> %d bytes (CR %.2f) in %v\n",
		out, totalRaw, len(arc), float64(totalRaw)/float64(len(arc)),
		time.Since(t0).Round(time.Millisecond))
	return nil
}

func extractArchive(in, outdir string, f32 bool) error {
	buf, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	r, err := repro.OpenArchive(buf)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	for _, entry := range r.Fields() {
		name := entry
		if i := strings.IndexByte(entry, '|'); i >= 0 {
			name = entry[:i]
		}
		data, dims, err := r.Field(entry)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path := filepath.Join(outdir, name)
		if err := writeRaw(path, data, f32); err != nil {
			return err
		}
		fmt.Printf("  %s: %d points dims=%v\n", path, len(data), dims)
	}
	return nil
}
