package repro

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/streamfmt"
)

// Salvage decode: best-effort recovery from a damaged stream container.
// Where DecompressStream aborts at the first bad frame, salvage uses the
// container's redundant geometry — per-chunk CRCs plus the sealing index
// frame — to verify each chunk independently, skip the damaged ones, and
// resynchronize at the next intact frame. Rows covered by lost chunks
// are filled with NaN so the output keeps the field's exact shape and
// downstream analysis can mask the holes.
//
// Salvage is the one deliberately permissive reader. The seekable path
// (OpenStream) takes the opposite stance: an index that is missing or
// fails verification is a typed ErrTruncated/ErrCorrupted refusal, and
// callers who want whatever survives are pointed here.

// RowRange is a half-open range [Lo, Hi) of dims[0]-rows.
type RowRange struct{ Lo, Hi int }

// ByteRange is a half-open range [Lo, Hi) of container byte offsets.
type ByteRange struct{ Lo, Hi int64 }

// SalvageReport accounts for what DecompressStreamSalvage recovered.
type SalvageReport struct {
	// Dims is the field geometry from the container header.
	Dims []int
	// Chunks and Recovered count the chunk frames the header promised
	// and the ones that decoded cleanly (repaired chunks included).
	Chunks, Recovered int
	// ParityK is the container's parity group size (zero: no parity).
	ParityK int
	// RepairedChunks lists the field-order indices of chunks that were
	// damaged in the container but reconstructed byte-identically from
	// their group's parity frame and siblings; they are counted in
	// Recovered, not Lost.
	RepairedChunks []int
	// DamagedParity lists parity groups whose parity frame itself was
	// damaged; chunks in those groups degrade to skip-and-report.
	DamagedParity []int
	// LostChunks lists the field-order indices of unrecoverable chunks.
	LostChunks []int
	// LostRows lists the dims[0]-row ranges filled with NaN, merged
	// across adjacent lost chunks.
	LostRows []RowRange
	// LostBytes lists the damaged container regions, where the scan
	// could still delimit them; a region reaching the end of the
	// container means frame boundaries were lost from there on.
	LostBytes []ByteRange
	// IndexOK reports that the sealing index frame verified, in which
	// case damage to one chunk cannot desynchronize its successors.
	IndexOK bool
	// Truncated reports that the container ended before its structure
	// did.
	Truncated bool
	// BytesIn and BytesOut count container bytes read and field bytes
	// written (NaN fill included).
	BytesIn, BytesOut int64
}

// Lost reports the number of unrecoverable chunks.
func (r *SalvageReport) Lost() int { return len(r.LostChunks) }

// Repaired reports the number of chunks reconstructed from parity.
func (r *SalvageReport) Repaired() int { return len(r.RepairedChunks) }

// DecompressStreamSalvage reads a (possibly damaged) stream container
// from r and writes the field to w as raw little-endian float64 bytes,
// in full: every row of the header's geometry is emitted, with rows from
// unrecoverable chunks filled with NaN. The report says exactly what was
// lost. The whole container is buffered in memory (resynchronization
// needs the tail index), so limits.MaxElements should be set when r is
// untrusted.
//
// An error is returned only when salvage is impossible (unreadable
// source, unusable header, or a limit violation) or when w fails; damage
// to chunk frames is never an error, it is the condition this function
// exists to survive.
func DecompressStreamSalvage(r io.Reader, w io.Writer, limits *DecodeLimits) (_ *SalvageReport, err error) {
	defer recoverDecode(&err)
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("repro: reading container: %w", err)
	}
	scan, err := streamfmt.ScanSalvage(buf, limits.streamLimits())
	if err != nil {
		return nil, err
	}
	hdr := scan.Header
	rowStride := hdr.RowStride()
	rep := &SalvageReport{
		Dims:      append([]int(nil), hdr.Dims...),
		Chunks:    len(scan.Frames),
		ParityK:   hdr.ParityK,
		IndexOK:   scan.IndexOK,
		Truncated: scan.Truncated,
		BytesIn:   int64(len(buf)),
	}
	for g := range scan.Parity {
		if scan.Parity[g].Damaged {
			rep.DamagedParity = append(rep.DamagedParity, g)
		}
	}

	var out []byte
	emit := func(vals []float64) error {
		need := len(vals) * 8
		if cap(out) < need {
			//lint:allow allochot grows once to the largest chunk, then reused across all chunks
			out = make([]byte, need)
		}
		out = out[:need]
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(out); err != nil {
			return err
		}
		rep.BytesOut += int64(need)
		return nil
	}

	var nanRow []float64
	row := 0
	lastEnd := scan.HeaderLen
	for i := range scan.Frames {
		f := &scan.Frames[i]
		rows := hdr.ChunkRowCount(i)
		var dec []float64
		if f.Payload != nil {
			d, subDims, derr := Decompress(f.Payload)
			switch {
			case derr != nil:
				f.Damaged, f.Reason = true, fmt.Sprintf("payload does not decode: %v", derr)
			case len(subDims) == 0 || subDims[0] != rows || len(d) != rows*rowStride:
				f.Damaged, f.Reason = true, fmt.Sprintf("payload decodes to shape %v, want %d rows of stride %d", subDims, rows, rowStride)
			default:
				dec = d
			}
		}
		if dec != nil {
			rep.Recovered++
			if f.Repaired {
				rep.RepairedChunks = append(rep.RepairedChunks, i)
			}
			if err := emit(dec); err != nil {
				return rep, err
			}
		} else {
			rep.LostChunks = append(rep.LostChunks, i)
			rep.addLostRows(row, row+rows)
			rep.addLostBytes(f.Offset, f.End, lastEnd, int64(len(buf)))
			if nanRow == nil {
				// The fill buffer is capped: a hostile header can claim an
				// astronomical row stride, and salvage (the permissive
				// reader) must stream the NaN fill rather than allocate a
				// whole row of it up front.
				const maxFillElems = 1 << 16
				n := rowStride
				if n > maxFillElems {
					n = maxFillElems
				}
				//lint:allow allochot nil-guarded: one bounded NaN buffer allocated for the whole scan
				nanRow = make([]float64, n)
				for j := range nanRow {
					nanRow[j] = math.NaN()
				}
			}
			for j := 0; j < rows; j++ {
				for left := rowStride; left > 0; {
					n := left
					if n > len(nanRow) {
						n = len(nanRow)
					}
					if err := emit(nanRow[:n]); err != nil {
						return rep, err
					}
					left -= n
				}
			}
		}
		if f.End > 0 {
			lastEnd = f.End
		}
		row += rows
	}
	return rep, nil
}

// addLostRows appends [lo,hi), merging with an adjacent previous range.
func (r *SalvageReport) addLostRows(lo, hi int) {
	if n := len(r.LostRows); n > 0 && r.LostRows[n-1].Hi == lo {
		r.LostRows[n-1].Hi = hi
		return
	}
	r.LostRows = append(r.LostRows, RowRange{lo, hi})
}

// addLostBytes appends the damaged region for a frame. A frame with an
// unknown extent (End == 0: structure lost) damages everything from the
// last known frame boundary to the end of the container.
func (r *SalvageReport) addLostBytes(off, end, lastEnd, total int64) {
	if end == 0 {
		off, end = lastEnd, total
		if off > end {
			off = end
		}
	}
	if n := len(r.LostBytes); n > 0 {
		last := &r.LostBytes[n-1]
		if off <= last.Hi {
			if end > last.Hi {
				last.Hi = end
			}
			return
		}
	}
	r.LostBytes = append(r.LostBytes, ByteRange{off, end})
}
