package repro

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/faultio"
	"repro/internal/streamfmt"
	"repro/internal/testutil"
)

// The fault-injection harness: every container format is swept with
// every fault class at every byte offset, and every decode entry point
// must respond with a clean typed error from the taxonomy in errors.go —
// never a panic, never a hang, never a goroutine leak, and never a
// silently wrong answer (success is allowed only with a self-consistent
// shape, since a fault that flips the unchecksummed algorithm byte can
// legitimately decode through a different codec).

// faultCorpus builds one small instance of every container format.
func faultCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	data := make([]float64, 40)
	for i := range data {
		data[i] = 30*math.Sin(float64(i)/4) + 50
	}
	dims := []int{8, 5}
	corpus := map[string][]byte{}

	plain, err := Compress(data, dims, 1e-2, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus["plain"] = plain

	par, err := CompressParallel(data, dims, 1e-2, SZT, &ParallelOptions{Chunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	corpus["parallel"] = par

	var sb bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &sb, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 2}); err != nil {
		t.Fatal(err)
	}
	corpus["stream"] = sb.Bytes()

	var pb bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &pb, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 2, ParityK: 2}); err != nil {
		t.Fatal(err)
	}
	corpus["stream_parity"] = pb.Bytes()

	aw := NewArchiveWriter()
	if err := aw.AddCompressed("f0", plain); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddCompressed("f1", par); err != nil {
		t.Fatal(err)
	}
	corpus["archive"] = aw.Bytes()

	var v3 bytes.Buffer
	av3, err := NewArchiveStreamWriter(&v3, WithChunkRows(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := av3.AddField("f0", bytes.NewReader(rawLE(data)), dims, 1e-2, SZT); err != nil {
		t.Fatal(err)
	}
	if _, err := av3.AddField("f1", bytes.NewReader(rawLE(data)), dims, 1e-2, SZT); err != nil {
		t.Fatal(err)
	}
	if err := av3.Close(); err != nil {
		t.Fatal(err)
	}
	corpus["archive_v3"] = v3.Bytes()
	return corpus
}

// typedOK reports whether err belongs to the decode-error taxonomy (or
// is the fault we injected, propagated without relabeling).
func typedOK(err error) bool {
	return errors.Is(err, ErrCorrupted) ||
		errors.Is(err, ErrUnsupportedFormat) ||
		errors.Is(err, ErrLimitExceeded) ||
		errors.Is(err, faultio.ErrInjected)
}

// shapeConsistent asserts dims are positive and multiply to len(data).
func shapeConsistent(t *testing.T, desc string, data []float64, dims []int) {
	t.Helper()
	n := 1
	for _, d := range dims {
		if d <= 0 {
			t.Fatalf("%s: nonpositive dim in %v", desc, dims)
		}
		n *= d
	}
	if n != len(data) {
		t.Fatalf("%s: dims %v product %d != len %d", desc, dims, n, len(data))
	}
}

// decodeEntry is one decode path under test, applied to a (possibly
// mutated) in-memory container.
type decodeEntry struct {
	name string
	run  func(t *testing.T, desc string, buf []byte) error
}

func bufEntries() []decodeEntry {
	return []decodeEntry{
		{"Decompress", func(t *testing.T, desc string, buf []byte) error {
			data, dims, err := Decompress(buf)
			if err == nil {
				shapeConsistent(t, desc, data, dims)
			}
			return err
		}},
		{"DecompressParallel", func(t *testing.T, desc string, buf []byte) error {
			data, dims, err := DecompressParallel(buf, 2)
			if err == nil {
				shapeConsistent(t, desc, data, dims)
			}
			return err
		}},
		{"DecompressAny", func(t *testing.T, desc string, buf []byte) error {
			data, dims, err := DecompressAny(buf)
			if err == nil {
				shapeConsistent(t, desc, data, dims)
			}
			return err
		}},
		{"DecompressStream", func(t *testing.T, desc string, buf []byte) error {
			_, err := DecompressStream(bytes.NewReader(buf), io.Discard)
			return err
		}},
		{"OpenStream", func(t *testing.T, desc string, buf []byte) error {
			// Limits bound the allocations a mutated header or index could
			// otherwise demand before the damage is detected.
			h, err := OpenStream(bytes.NewReader(buf),
				WithLimits(&DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}))
			if err != nil {
				return err
			}
			dst := make([]float64, h.Rows()*uint64(h.RowStride()))
			return h.ReadRows(dst, 0, h.Rows())
		}},
		{"OpenArchive", func(t *testing.T, desc string, buf []byte) error {
			r, err := OpenArchive(buf)
			if err != nil {
				return err
			}
			for _, name := range r.Fields() {
				data, dims, ferr := r.Field(name)
				if ferr == nil {
					shapeConsistent(t, desc+"/"+name, data, dims)
				} else if !typedOK(ferr) {
					t.Fatalf("%s: field %q: untyped error %v", desc, name, ferr)
				}
			}
			return nil
		}},
		{"OpenArchiveStream", func(t *testing.T, desc string, buf []byte) error {
			as, err := OpenArchiveStream(bytes.NewReader(buf),
				WithLimits(&DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}))
			if err != nil {
				return err
			}
			for _, name := range as.Fields() {
				h, ferr := as.Field(name)
				if ferr != nil {
					if !typedOK(ferr) {
						t.Fatalf("%s: field %q: untyped error %v", desc, name, ferr)
					}
					continue
				}
				dst := make([]float64, h.Rows()*uint64(h.RowStride()))
				if rerr := h.ReadRows(dst, 0, h.Rows()); rerr != nil && !typedOK(rerr) {
					t.Fatalf("%s: field %q read: untyped error %v", desc, name, rerr)
				}
			}
			return nil
		}},
	}
}

// runEntry executes one decode with a panic trap (the recoverDecode
// boundary should make this unreachable; the trap proves it).
func runEntry(t *testing.T, e decodeEntry, desc string, buf []byte) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic escaped the decode boundary: %v", desc, r)
		}
	}()
	return e.run(t, desc, buf)
}

// TestFaultSweepTruncation truncates every container at every byte
// offset and feeds the prefix to every decode entry point.
func TestFaultSweepTruncation(t *testing.T) {
	defer testutil.NoLeak(t)()
	corpus := faultCorpus(t)
	entries := bufEntries()
	for name, buf := range corpus {
		for cut := 0; cut < len(buf); cut++ {
			mut := buf[:cut]
			for _, e := range entries {
				desc := name + "/" + e.name + "/trunc@" + itoa(cut)
				if err := runEntry(t, e, desc, mut); err != nil && !typedOK(err) {
					t.Fatalf("%s: untyped error %v", desc, err)
				}
			}
		}
	}
}

// TestFaultSweepBitFlips flips a low and a high bit at every byte offset
// of every container. Every decode either fails with a typed error or
// succeeds with a self-consistent shape.
func TestFaultSweepBitFlips(t *testing.T) {
	defer testutil.NoLeak(t)()
	corpus := faultCorpus(t)
	entries := bufEntries()
	for name, buf := range corpus {
		mut := make([]byte, len(buf))
		for pos := 0; pos < len(buf); pos++ {
			for _, mask := range []byte{0x01, 0x80} {
				copy(mut, buf)
				mut[pos] ^= mask
				for _, e := range entries {
					desc := name + "/" + e.name + "/flip@" + itoa(pos)
					if err := runEntry(t, e, desc, mut); err != nil && !typedOK(err) {
						t.Fatalf("%s: untyped error %v", desc, err)
					}
				}
			}
		}
	}
}

// TestFaultSweepZeroFill zeroes an 8-byte run at every offset of every
// container.
func TestFaultSweepZeroFill(t *testing.T) {
	defer testutil.NoLeak(t)()
	corpus := faultCorpus(t)
	entries := bufEntries()
	for name, buf := range corpus {
		mut := make([]byte, len(buf))
		for pos := 0; pos < len(buf); pos++ {
			copy(mut, buf)
			for i := pos; i < pos+8 && i < len(mut); i++ {
				mut[i] = 0
			}
			for _, e := range entries {
				desc := name + "/" + e.name + "/zero@" + itoa(pos)
				if err := runEntry(t, e, desc, mut); err != nil && !typedOK(err) {
					t.Fatalf("%s: untyped error %v", desc, err)
				}
			}
		}
	}
}

// TestFaultSweepReaderFailure drives DecompressStream from a source that
// fails with an injected I/O error at every byte offset. The pipeline
// must return the injected error itself (wrapped, never relabeled as
// corruption) and leave no goroutines behind.
func TestFaultSweepReaderFailure(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream"]
	for cut := 0; cut <= len(stream); cut++ {
		r := faultio.FailAfter(bytes.NewReader(stream), int64(cut))
		_, err := DecompressStream(r, io.Discard)
		if cut == len(stream) {
			// The whole container was delivered; the fault lands after
			// the sealed index and is never observed.
			if err != nil {
				t.Fatalf("fault after container end: %v", err)
			}
			continue
		}
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("fail@%d: err = %v, want the injected I/O error to propagate", cut, err)
		}
	}
}

// TestFaultSweepReaderCorruption drives DecompressStream through
// flip/zero-fill fault readers (rather than pre-mutated buffers) with
// short reads layered on, exercising the buffered-reader resumption
// paths.
func TestFaultSweepReaderCorruption(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream"]
	clean := rawLEOfDecoded(t, stream)
	for pos := 0; pos < len(stream); pos++ {
		r := faultio.FlipByte(faultio.ShortReads(bytes.NewReader(stream), 13), int64(pos), 0x10)
		var out bytes.Buffer
		_, err := DecompressStream(r, &out)
		if err == nil {
			if !bytes.Equal(out.Bytes(), clean) {
				t.Fatalf("flip@%d: silently changed output", pos)
			}
			continue
		}
		if !typedOK(err) {
			t.Fatalf("flip@%d: untyped error %v", pos, err)
		}
	}
	for pos := 0; pos < len(stream); pos += 3 {
		r := faultio.ZeroFill(bytes.NewReader(stream), int64(pos), 6)
		_, err := DecompressStream(r, io.Discard)
		if err != nil && !typedOK(err) {
			t.Fatalf("zero@%d: untyped error %v", pos, err)
		}
	}
}

// TestFaultStalledReader proves a stalling source neither hangs the
// pipeline past its stall nor leaks its goroutines.
func TestFaultStalledReader(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream"]
	for _, cut := range []int64{0, 5, int64(len(stream) / 2), int64(len(stream) - 1)} {
		start := time.Now()
		r := faultio.StallThenFail(bytes.NewReader(stream), cut, 10*time.Millisecond)
		_, err := DecompressStream(r, io.Discard)
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("stall@%d: err = %v, want injected", cut, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("stall@%d: decode took %v, pipeline is hanging", cut, d)
		}
	}
}

// TestFaultFailingWriter proves DecompressStream stops reading promptly
// when the output writer fails: the error surfaces, and the reader side
// does not consume the whole container first.
func TestFaultFailingWriter(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i%97) + 1
	}
	var sb bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &sb, []int{256, 16}, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 8}); err != nil {
		t.Fatal(err)
	}
	stream := sb.Bytes()
	src := bytes.NewReader(stream)
	w := faultio.FailWriter(io.Discard, 64) // dies during the first chunk's output
	stats, err := DecompressStream(src, w)
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("err = %v, want the writer's injected error", err)
	}
	// The pipeline may have a bounded read-ahead (the chunks in flight),
	// but must not have drained the source: with 32 chunks and a
	// first-chunk write failure, most of the container stays unread.
	if src.Len() == 0 {
		t.Errorf("writer failed on chunk 0 but the reader consumed the whole container")
	}
	if stats.BytesIn >= int64(len(stream)) {
		t.Errorf("stats report %d bytes read of %d; want an early stop", stats.BytesIn, len(stream))
	}
}

// TestFaultSweepSalvage runs the salvage decoder over every single-byte
// truncation and bit flip of a stream container: it must never error on
// frame damage (only on an unusable header), and its output must always
// match the geometry it reports.
func TestFaultSweepSalvage(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream"]
	check := func(desc string, buf []byte) {
		var out bytes.Buffer
		rep, err := DecompressStreamSalvage(bytes.NewReader(buf), &out, nil)
		if err != nil {
			if !typedOK(err) {
				t.Fatalf("%s: untyped error %v", desc, err)
			}
			return
		}
		n := 1
		for _, d := range rep.Dims {
			n *= d
		}
		if int64(out.Len()) != rep.BytesOut || out.Len() != n*8 {
			t.Fatalf("%s: wrote %d bytes, report says %d, geometry %v implies %d",
				desc, out.Len(), rep.BytesOut, rep.Dims, n*8)
		}
		if rep.Recovered+len(rep.LostChunks) != rep.Chunks {
			t.Fatalf("%s: %d recovered + %d lost != %d chunks",
				desc, rep.Recovered, len(rep.LostChunks), rep.Chunks)
		}
	}
	for cut := 0; cut < len(stream); cut++ {
		check("trunc@"+itoa(cut), stream[:cut])
	}
	mut := make([]byte, len(stream))
	for pos := 0; pos < len(stream); pos++ {
		copy(mut, stream)
		mut[pos] ^= 0x20
		check("flip@"+itoa(pos), mut)
	}
}

// TestFaultSweepParityRepair is the self-healing acceptance sweep: over
// a parity container, any single damaged byte inside a chunk frame must
// decode byte-identically through both the salvage path and the seekable
// path (repair, not NaN fill); a damaged parity frame costs nothing; and
// damage anywhere else still keeps the books consistent.
func TestFaultSweepParityRepair(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream_parity"] // dims {8,5}, ChunkRows 2, K=2 → 4 chunks, 2 groups
	clean := rawLEOfDecoded(t, stream)
	scan, err := streamfmt.ScanSalvage(stream, streamfmt.Limits{})
	if err != nil || !scan.IndexOK {
		t.Fatalf("clean parity container: %v (IndexOK=%v)", err, scan.IndexOK)
	}
	region := func(pos int64, frames []streamfmt.FrameInfo) int {
		for i := range frames {
			if pos >= frames[i].Offset && pos < frames[i].End {
				return i
			}
		}
		return -1
	}
	mut := make([]byte, len(stream))
	for pos := 0; pos < len(stream); pos++ {
		copy(mut, stream)
		mut[pos] ^= 0x20
		inChunk := region(int64(pos), scan.Frames)
		inParity := region(int64(pos), scan.Parity)

		var out bytes.Buffer
		rep, err := DecompressStreamSalvage(bytes.NewReader(mut), &out, nil)
		if err != nil {
			if !typedOK(err) {
				t.Fatalf("flip@%d: untyped salvage error %v", pos, err)
			}
		} else {
			if rep.Recovered+rep.Lost() != rep.Chunks {
				t.Fatalf("flip@%d: books off: %d + %d != %d", pos, rep.Recovered, rep.Lost(), rep.Chunks)
			}
			if (inChunk >= 0 || inParity >= 0) && (rep.Lost() != 0 || !bytes.Equal(out.Bytes(), clean)) {
				t.Fatalf("flip@%d (chunk %d, parity %d): lost=%v; single in-frame damage must repair byte-identically",
					pos, inChunk, inParity, rep.LostChunks)
			}
		}

		h, err := OpenStream(bytes.NewReader(mut),
			WithLimits(&DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}))
		if err != nil {
			if !typedOK(err) {
				t.Fatalf("flip@%d: untyped OpenStream error %v", pos, err)
			}
			if inChunk >= 0 || inParity >= 0 {
				t.Fatalf("flip@%d: OpenStream rejected damage outside header and index: %v", pos, err)
			}
			continue
		}
		dst := make([]float64, h.Rows()*uint64(h.RowStride()))
		rerr := h.ReadRows(dst, 0, h.Rows())
		if inChunk >= 0 || inParity >= 0 {
			if rerr != nil {
				t.Fatalf("flip@%d (chunk %d, parity %d): ReadRows did not repair: %v", pos, inChunk, inParity, rerr)
			}
			if !bytes.Equal(rawLE(dst), clean) {
				t.Fatalf("flip@%d: repaired range read differs from clean decode", pos)
			}
			want := 0
			if inChunk >= 0 {
				want = 1
			}
			if st := h.Stats(); st.RepairedChunks != want {
				t.Fatalf("flip@%d: stats.RepairedChunks = %d, want %d", pos, st.RepairedChunks, want)
			}
		} else if rerr != nil && !typedOK(rerr) {
			t.Fatalf("flip@%d: untyped ReadRows error %v", pos, rerr)
		}
	}

	// Truncation: salvage must stay book-consistent at every cut, and a
	// cut mid-container loses whole groups gracefully (NaN fill), never
	// fabricating repaired data.
	for cut := 0; cut < len(stream); cut++ {
		var out bytes.Buffer
		rep, err := DecompressStreamSalvage(bytes.NewReader(stream[:cut]), &out, nil)
		if err != nil {
			if !typedOK(err) {
				t.Fatalf("trunc@%d: untyped error %v", cut, err)
			}
			continue
		}
		if rep.Recovered+rep.Lost() != rep.Chunks {
			t.Fatalf("trunc@%d: books off", cut)
		}
		if int64(out.Len()) != rep.BytesOut {
			t.Fatalf("trunc@%d: wrote %d, report says %d", cut, out.Len(), rep.BytesOut)
		}
	}
}

// TestFaultSeekUntouchedChunks proves fault isolation in the seekable
// path: damage confined to one chunk's frame extent never disturbs a
// range read that avoids that chunk, while any range read touching it
// fails with a typed corruption error.
func TestFaultSeekUntouchedChunks(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream := faultCorpus(t)["stream"] // dims {8,5}, ChunkRows 2 → 4 chunks
	clean := fromLE(rawLEOfDecoded(t, stream))
	ix, err := streamfmt.OpenIndex(bytes.NewReader(stream), streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Chunks() != 4 {
		t.Fatalf("corpus stream has %d chunks, want 4", ix.Chunks())
	}
	lo, hi := ix.FrameExtent(2) // rows [4,6)
	mut := make([]byte, len(stream))
	for pos := lo; pos < hi; pos++ {
		copy(mut, stream)
		mut[pos] ^= 0x10
		h, err := OpenStream(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("flip@%d: OpenStream rejected damage outside the index: %v", pos, err)
		}
		// Chunks 0 and 1 (rows [0,4)) avoid the damaged extent entirely.
		dst := make([]float64, 4*5)
		if err := h.ReadRows(dst, 0, 4); err != nil {
			t.Fatalf("flip@%d: read of untouched chunks failed: %v", pos, err)
		}
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(clean[i]) {
				t.Fatalf("flip@%d: untouched range altered at element %d", pos, i)
			}
		}
		// Any range that touches chunk 2 must hit the damage and fail typed.
		if err := h.ReadRows(dst[:2*5], 4, 2); !errors.Is(err, ErrCorrupted) {
			t.Fatalf("flip@%d: read of damaged chunk: err = %v, want ErrCorrupted", pos, err)
		}
	}
}

// TestDecodeLimits exercises every limit against containers that exceed
// it; the error must be ErrLimitExceeded before a large decode happens.
func TestDecodeLimits(t *testing.T) {
	defer testutil.NoLeak(t)()
	corpus := faultCorpus(t)
	tiny := &DecodeLimits{MaxElements: 4}
	if _, err := DecompressStreamCtx(context.Background(), bytes.NewReader(corpus["stream"]), io.Discard, tiny); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("stream MaxElements: err = %v", err)
	}
	if _, _, err := DecompressParallelCtx(context.Background(), corpus["parallel"], 0, tiny); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("parallel MaxElements: err = %v", err)
	}
	if _, _, err := DecompressAnyLimits(corpus["plain"], tiny); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("plain MaxElements: err = %v", err)
	}
	small := &DecodeLimits{MaxChunkBytes: 3}
	if _, err := DecompressStreamCtx(context.Background(), bytes.NewReader(corpus["stream"]), io.Discard, small); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("stream MaxChunkBytes: err = %v", err)
	}
	if _, err := OpenArchiveLimits(corpus["archive"], small); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("archive MaxChunkBytes: err = %v", err)
	}
	if _, err := OpenArchiveLimits(corpus["archive"], &DecodeLimits{MaxFields: 1}); !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("archive MaxFields: err = %v", err)
	}
	// Generous limits must not reject valid containers.
	big := &DecodeLimits{MaxElements: 1 << 20, MaxChunkBytes: 1 << 20, MaxFields: 64}
	if _, err := DecompressStreamCtx(context.Background(), bytes.NewReader(corpus["stream"]), io.Discard, big); err != nil {
		t.Errorf("stream under generous limits: %v", err)
	}
	if r, err := OpenArchiveLimits(corpus["archive"], big); err != nil {
		t.Errorf("archive under generous limits: %v", err)
	} else if _, _, err := r.Field("f0"); err != nil {
		t.Errorf("archive field under generous limits: %v", err)
	}
}

// itoa avoids pulling strconv into the hot sweep loops' fmt usage.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
