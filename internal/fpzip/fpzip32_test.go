package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkRel32(t *testing.T, orig, dec []float32, rel float64) {
	t.Helper()
	for i := range orig {
		if orig[i] == 0 {
			if dec[i] != 0 {
				t.Fatalf("index %d: zero became %g", i, dec[i])
			}
			continue
		}
		r := math.Abs(float64(dec[i]-orig[i])) / math.Abs(float64(orig[i]))
		if r > rel {
			t.Fatalf("index %d: rel error %g > %g (orig %g dec %g)", i, r, rel, orig[i], dec[i])
		}
	}
}

func TestPrecision32MatchesPaperSettings(t *testing.T) {
	// The paper's Table IV column "settings" for FPZIP on float32 data.
	cases := map[float64]int{1e-1: 13, 1e-2: 16, 1e-3: 19}
	for rel, want := range cases {
		p, err := PrecisionForRelBound32(rel)
		if err != nil {
			t.Fatal(err)
		}
		if p != want {
			t.Errorf("PrecisionForRelBound32(%g) = %d, want %d (paper)", rel, p, want)
		}
		if MaxRelError32(p) > rel {
			t.Errorf("MaxRelError32(%d) = %g > %g", p, MaxRelError32(p), rel)
		}
	}
}

func TestOrderedInt32Monotone(t *testing.T) {
	vals := []float32{float32(math.Inf(-1)), -1e30, -1, -1e-30, 0, 1e-30, 1, 1e30, float32(math.Inf(1))}
	for i := 1; i < len(vals); i++ {
		if toOrderedInt32(vals[i-1]) >= toOrderedInt32(vals[i]) {
			t.Fatalf("order violated at %v < %v", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if fromOrderedInt32(toOrderedInt32(v)) != v {
			t.Fatalf("round trip %v", v)
		}
	}
}

func TestRoundTrip32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 5000)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5)))
	}
	for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
		p, err := PrecisionForRelBound32(rel)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := Compress32(data, []int{len(data)}, p)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress32(buf)
		if err != nil {
			t.Fatal(err)
		}
		checkRel32(t, data, dec, rel)
	}
}

func TestLossless32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 2000)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	data[0] = 0
	buf, err := Compress32(data, []int{2000}, 32)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress32(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float32bits(dec[i]) != math.Float32bits(data[i]) {
			t.Fatalf("index %d: lossless mismatch", i)
		}
	}
}

func TestRoundTrip32MultiDim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{10, 12, 14}
	data := make([]float32, 10*12*14)
	v := float32(100)
	for i := range data {
		v *= 1 + float32(rng.NormFloat64())*0.01
		data[i] = v
	}
	buf, err := Compress32(data, dims, 16)
	if err != nil {
		t.Fatal(err)
	}
	dec, gotDims, err := Decompress32(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDims) != 3 || gotDims[0] != 10 {
		t.Fatalf("dims %v", gotDims)
	}
	checkRel32(t, data, dec, MaxRelError32(16))
}

func TestCompress32SmallerThan64Path(t *testing.T) {
	// At the same guaranteed bound, the native float32 path should emit
	// fewer bytes than widening to float64 (fewer mantissa bits to code).
	rng := rand.New(rand.NewSource(4))
	n := 8192
	d32 := make([]float32, n)
	d64 := make([]float64, n)
	for i := range d32 {
		d32[i] = float32(50 + rng.NormFloat64())
		d64[i] = float64(d32[i])
	}
	rel := 1e-3
	p32, _ := PrecisionForRelBound32(rel)
	p64, _ := PrecisionForRelBound(rel)
	b32, err := Compress32(d32, []int{n}, p32)
	if err != nil {
		t.Fatal(err)
	}
	b64, err := Compress(d64, []int{n}, p64)
	if err != nil {
		t.Fatal(err)
	}
	if len(b32) >= len(b64) {
		t.Fatalf("native float32 path (%d) not smaller than widened (%d)", len(b32), len(b64))
	}
}

func TestBadInputs32(t *testing.T) {
	if _, err := Compress32([]float32{1}, []int{1}, 1); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := Compress32([]float32{1}, []int{1}, 33); err == nil {
		t.Fatal("p=33 accepted")
	}
	if _, err := Compress32([]float32{1, 2}, []int{3}, 16); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestDecompress32Corrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, 500)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	buf, err := Compress32(data, []int{500}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 5, len(buf) / 2} {
		if _, _, err := Decompress32(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < 150; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress32(mut) // must not panic
	}
}

func TestQuick32RelBound(t *testing.T) {
	f := func(seed int64, pSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 1
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4)))
		}
		p := 11 + int(pSel%21)
		buf, err := Compress32(data, []int{n}, p)
		if err != nil {
			return false
		}
		dec, _, err := Decompress32(buf)
		if err != nil || len(dec) != n {
			return false
		}
		rel := MaxRelError32(p)
		for i := range data {
			if data[i] == 0 {
				if dec[i] != 0 {
					return false
				}
				continue
			}
			if math.Abs(float64(dec[i]-data[i]))/math.Abs(float64(data[i])) > rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
