package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func checkRel(t *testing.T, orig, dec []float64, rel float64) {
	t.Helper()
	for i := range orig {
		if orig[i] == 0 {
			if dec[i] != 0 {
				t.Fatalf("index %d: zero became %g", i, dec[i])
			}
			continue
		}
		r := math.Abs(dec[i]-orig[i]) / math.Abs(orig[i])
		if r > rel {
			t.Fatalf("index %d: rel error %g > %g (orig %g dec %g)", i, r, rel, orig[i], dec[i])
		}
	}
}

func TestPrecisionForRelBound(t *testing.T) {
	cases := map[float64]int{
		1e-1: 12 + 4,  // 2^-4 = 0.0625 <= 0.1
		1e-2: 12 + 7,  // 2^-7 ≈ 0.0078
		1e-3: 12 + 10, // 2^-10 ≈ 0.00098
	}
	for rel, want := range cases {
		p, err := PrecisionForRelBound(rel)
		if err != nil {
			t.Fatal(err)
		}
		if p != want {
			t.Errorf("PrecisionForRelBound(%g) = %d, want %d", rel, p, want)
		}
		if MaxRelError(p) > rel {
			t.Errorf("MaxRelError(%d) = %g > %g", p, MaxRelError(p), rel)
		}
	}
	if _, err := PrecisionForRelBound(0); err == nil {
		t.Error("rel=0 accepted")
	}
	if _, err := PrecisionForRelBound(1); err == nil {
		t.Error("rel=1 accepted")
	}
}

func TestRoundTripRelBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		p, err := PrecisionForRelBound(rel)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := Compress(data, []int{len(data)}, p)
		if err != nil {
			t.Fatal(err)
		}
		dec, dims, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !grid.EqualDims(dims, []int{len(data)}) {
			t.Fatalf("dims = %v", dims)
		}
		checkRel(t, data, dec, rel)
	}
}

func TestRoundTrip2D3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []float64 {
		d := make([]float64, n)
		v := 100.0
		for i := range d {
			v *= 1 + rng.NormFloat64()*0.01
			d[i] = v
		}
		return d
	}
	for _, dims := range [][]int{{40, 50}, {12, 15, 18}} {
		data := mk(grid.Size(dims))
		buf, err := Compress(data, dims, 22)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		checkRel(t, data, dec, MaxRelError(22))
	}
}

func TestLosslessAtP64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	data[0], data[1] = 0, math.Copysign(0, -1)
	buf, err := Compress(data, []int{len(data)}, 64)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float64bits(dec[i]) != math.Float64bits(data[i]) {
			t.Fatalf("index %d: lossless mismatch %x vs %x", i,
				math.Float64bits(dec[i]), math.Float64bits(data[i]))
		}
	}
}

func TestZerosPreserved(t *testing.T) {
	data := []float64{0, 1, 0, 2, 0, 3, 0, 0}
	buf, err := Compress(data, []int{8}, 20)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v == 0 && dec[i] != 0 {
			t.Fatalf("index %d: zero perturbed to %g", i, dec[i])
		}
	}
}

func TestCompressionOnSmoothData(t *testing.T) {
	n := 10000
	data := make([]float64, n)
	for i := range data {
		data[i] = 1000 + math.Sin(float64(i)*0.01)*100
	}
	buf, err := Compress(data, []int{n}, 22)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(n*8) / float64(len(buf))
	if cr < 5 {
		t.Fatalf("compression ratio %.2f too low for smooth data", cr)
	}
}

func TestPiecewiseRatioBehaviour(t *testing.T) {
	// FPZIP's ratio only improves in steps of whole bits — verify that p
	// and p-1 give different sizes, reproducing the "piecewise" feature the
	// paper mentions.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 8192)
	for i := range data {
		data[i] = 50 + rng.NormFloat64()
	}
	b20, err := Compress(data, []int{len(data)}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b28, err := Compress(data, []int{len(data)}, 28)
	if err != nil {
		t.Fatal(err)
	}
	if len(b20) >= len(b28) {
		t.Fatalf("lower precision should compress better: %d vs %d", len(b20), len(b28))
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Compress([]float64{1}, []int{1}, 1); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := Compress([]float64{1}, []int{1}, 65); err == nil {
		t.Fatal("p=65 accepted")
	}
	if _, err := Compress([]float64{1, 2}, []int{3}, 20); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	buf, err := Compress(data, []int{500}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 5, 10, len(buf) / 2} {
		if _, _, err := Decompress(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress(mut) // must not panic
	}
}

func TestQuickRelBoundInvariant(t *testing.T) {
	f := func(seed int64, pSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
		}
		p := 14 + int(pSel%40)
		buf, err := Compress(data, []int{n}, p)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != n {
			return false
		}
		rel := MaxRelError(p)
		for i := range data {
			if data[i] == 0 {
				if dec[i] != 0 {
					return false
				}
				continue
			}
			if math.Abs(dec[i]-data[i])/math.Abs(data[i]) > rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = 100 + rng.NormFloat64()
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, []int{len(data)}, 22); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTrip4D(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []int{3, 5, 6, 7}
	data := make([]float64, 3*5*6*7)
	v := 100.0
	for i := range data {
		v *= 1 + rng.NormFloat64()*0.01
		data[i] = v
	}
	buf, err := Compress(data, dims, 22)
	if err != nil {
		t.Fatal(err)
	}
	dec, gotDims, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !grid.EqualDims(gotDims, dims) {
		t.Fatalf("dims %v", gotDims)
	}
	checkRel(t, data, dec, MaxRelError(22))
}
