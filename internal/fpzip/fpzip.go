// Package fpzip is a clean-room Go re-implementation of the FPZIP
// predictive floating-point coder (Lindstrom & Isenburg, TVCG 2006), one of
// the paper's point-wise-relative baselines.
//
// FPZIP's lossy mode is parameterized by a precision p: each float is
// mapped to an order-preserving integer and its low 64−p bits are
// discarded, after which the Lorenzo predictor runs losslessly in the
// truncated integer domain and the residuals are entropy coded with an
// adaptive range coder (bit-length symbols through an adaptive model,
// magnitude bits raw), matching the original's fast range coder design.
//
// Discarding mantissa bits yields a *relative* error bound: for the float64
// layout (1 sign + 11 exponent bits) the maximum point-wise relative error
// is 2^(12−p), so p = 12 + ceil(log2(1/b_r)) meets a relative bound b_r.
// This is the "accepts only precision as a parameter" behaviour the paper
// critiques in Section II: the achievable bounds are quantized to powers of
// two (the "piecewise features over error bounds" of FPZIP's ratio curve).
package fpzip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/floatbits"
	"repro/internal/grid"
	"repro/internal/predictor"
	"repro/internal/rangecoder"
)

const (
	magic   = 0x46505A31 // "FPZ1"
	maxRank = 4
	// signExpBits is the number of non-mantissa bits in a float64; the
	// relative error of p-bit truncation is 2^(signExpBits+1-p-1).
	signExpBits = 12
)

var (
	// ErrCorrupt reports a malformed stream.
	ErrCorrupt = errors.New("fpzip: corrupt stream")
	// ErrBadPrecision reports an out-of-range precision parameter.
	ErrBadPrecision = errors.New("fpzip: precision must be in [2, 64]")
)

// PrecisionForRelBound returns the smallest precision p whose guaranteed
// maximum relative error 2^(12−p) is ≤ relBound.
func PrecisionForRelBound(relBound float64) (int, error) {
	if !(relBound > 0) || relBound >= 1 {
		return 0, fmt.Errorf("fpzip: relative bound %v out of (0,1)", relBound)
	}
	p := signExpBits + int(math.Ceil(math.Log2(1/relBound)))
	if p > 64 {
		p = 64
	}
	if p < 2 {
		p = 2
	}
	return p, nil
}

// MaxRelError returns the guaranteed maximum point-wise relative error for
// precision p (normal values; denormals flush toward zero).
func MaxRelError(p int) float64 {
	if p >= 64 {
		return 0
	}
	return math.Exp2(float64(signExpBits - p))
}

// Compress encodes data with the given precision p in [2, 64]. p = 64 is
// lossless for non-NaN input.
func Compress(data []float64, dims []int, p int) ([]byte, error) {
	if p < 2 || p > 64 {
		return nil, ErrBadPrecision
	}
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if len(dims) > maxRank {
		return nil, fmt.Errorf("fpzip: rank %d unsupported", len(dims))
	}
	shift := uint(64 - p)

	// Truncate into the ordered-integer domain. Prediction operates on the
	// truncated values themselves, so compression is lossless from here on.
	n := len(data)
	tr := make([]int64, n)
	for i, v := range data {
		tr[i] = floatbits.ToOrderedInt(v) >> shift
	}
	field, err := predictor.NewIntField(tr, dims)
	if err != nil {
		return nil, err
	}

	// Residuals, encoded as (bit-length symbol through an adaptive model,
	// raw magnitude bits). Bit-length 0 means residual 0; the top bit of an
	// l-bit value is implicit.
	enc := rangecoder.NewEncoder(n)
	model := rangecoder.NewAdaptiveModel(65)
	field.Walk(func(lin int, coord []int) {
		pred := field.Predict(lin, coord)
		r := bitio.ZigZag(tr[lin] - pred)
		l := bitlen(r)
		model.EncodeSymbol(enc, l)
		if l > 1 {
			enc.EncodeBits(r, uint(l-1))
		}
	})
	payload := enc.Finish()

	out := make([]byte, 0, len(payload)+64)
	out = binary.BigEndian.AppendUint32(out, magic)
	out = append(out, byte(p))
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress decodes a stream produced by Compress.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != magic {
		return nil, nil, ErrCorrupt
	}
	p := int(buf[4])
	if p < 2 || p > 64 {
		return nil, nil, ErrCorrupt
	}
	off := 5
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > maxRank {
		return nil, nil, ErrCorrupt
	}
	off += k
	dims := make([]int, rankU)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, ErrCorrupt
	}
	plen, k := bitio.Uvarint(buf[off:])
	if k == 0 || plen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	dec := rangecoder.NewDecoder(buf[off : off+int(plen)])
	model := rangecoder.NewAdaptiveModel(65)

	n := grid.Size(dims)
	tr := make([]int64, n)
	field, err := predictor.NewIntField(tr, dims)
	if err != nil {
		return nil, nil, err
	}
	shift := uint(64 - p)
	out := make([]float64, n)
	var werr error
	field.Walk(func(lin int, coord []int) {
		if werr != nil {
			return
		}
		sym, err := model.DecodeSymbol(dec)
		if err != nil {
			werr = err
			return
		}
		var z uint64
		switch {
		case sym == 1:
			z = 1
		case sym > 1:
			z = 1<<uint(sym-1) | dec.DecodeBits(uint(sym-1))
		}
		pred := field.Predict(lin, coord)
		tr[lin] = pred + bitio.UnZigZag(z)
		out[lin] = floatbits.FromOrderedInt(tr[lin] << shift)
	})
	if werr != nil {
		return nil, nil, werr
	}
	if dec.Overrun() {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}

func bitlen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}
