package fpzip

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/grid"
	"repro/internal/predictor"
	"repro/internal/rangecoder"
)

// Float32 layout: 1 sign + 8 exponent bits, so truncating to p bits keeps
// p−9 mantissa bits and the guaranteed relative error is 2^(9−p). This is
// the layout behind the paper's Table IV settings (-p 13/16/19 for bounds
// 1e-1/1e-2/1e-3), which this file reproduces natively rather than through
// the float64 widening path.

const (
	magic32       = 0x46505A32 // "FPZ2"
	signExpBits32 = 9
)

// PrecisionForRelBound32 returns the smallest float32 precision whose
// guaranteed maximum relative error 2^(9−p) is ≤ relBound. The returned
// values match the paper's Table IV settings column.
func PrecisionForRelBound32(relBound float64) (int, error) {
	if !(relBound > 0) || relBound >= 1 {
		return 0, fmt.Errorf("fpzip: relative bound %v out of (0,1)", relBound)
	}
	p := signExpBits32 + int(math.Ceil(math.Log2(1/relBound)))
	if p > 32 {
		p = 32
	}
	if p < 2 {
		p = 2
	}
	return p, nil
}

// MaxRelError32 returns the guaranteed maximum relative error of float32
// precision p.
func MaxRelError32(p int) float64 {
	if p >= 32 {
		return 0
	}
	return math.Exp2(float64(signExpBits32 - p))
}

// toOrderedInt32 maps a float32 to an order-preserving int32.
func toOrderedInt32(f float32) int32 {
	i := int32(math.Float32bits(f))
	if i < 0 {
		i ^= 0x7fffffff
	}
	return i
}

func fromOrderedInt32(v int32) float32 {
	if v < 0 {
		v ^= 0x7fffffff
	}
	return math.Float32frombits(uint32(v))
}

// Compress32 encodes float32 data with precision p in [2, 32]; p = 32 is
// lossless.
func Compress32(data []float32, dims []int, p int) ([]byte, error) {
	if p < 2 || p > 32 {
		return nil, ErrBadPrecision
	}
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if len(dims) > maxRank {
		return nil, fmt.Errorf("fpzip: rank %d unsupported", len(dims))
	}
	shift := uint(32 - p)
	n := len(data)
	tr := make([]int64, n)
	for i, v := range data {
		tr[i] = int64(toOrderedInt32(v) >> shift)
	}
	field, err := predictor.NewIntField(tr, dims)
	if err != nil {
		return nil, err
	}
	enc := rangecoder.NewEncoder(n / 2)
	model := rangecoder.NewAdaptiveModel(65)
	field.Walk(func(lin int, coord []int) {
		pred := field.Predict(lin, coord)
		r := bitio.ZigZag(tr[lin] - pred)
		l := bitlen(r)
		model.EncodeSymbol(enc, l)
		if l > 1 {
			enc.EncodeBits(r, uint(l-1))
		}
	})
	payload := enc.Finish()

	out := make([]byte, 0, len(payload)+32)
	out = binary.BigEndian.AppendUint32(out, magic32)
	out = append(out, byte(p))
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress32 decodes a stream produced by Compress32.
func Decompress32(buf []byte) ([]float32, []int, error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != magic32 {
		return nil, nil, ErrCorrupt
	}
	p := int(buf[4])
	if p < 2 || p > 32 {
		return nil, nil, ErrCorrupt
	}
	off := 5
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > maxRank {
		return nil, nil, ErrCorrupt
	}
	off += k
	dims := make([]int, rankU)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, ErrCorrupt
	}
	plen, k := bitio.Uvarint(buf[off:])
	if k == 0 || plen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	dec := rangecoder.NewDecoder(buf[off : off+int(plen)])
	model := rangecoder.NewAdaptiveModel(65)

	n := grid.Size(dims)
	tr := make([]int64, n)
	field, err := predictor.NewIntField(tr, dims)
	if err != nil {
		return nil, nil, err
	}
	shift := uint(32 - p)
	out := make([]float32, n)
	var werr error
	field.Walk(func(lin int, coord []int) {
		if werr != nil {
			return
		}
		sym, err := model.DecodeSymbol(dec)
		if err != nil {
			werr = err
			return
		}
		var z uint64
		switch {
		case sym == 1:
			z = 1
		case sym > 1:
			z = 1<<uint(sym-1) | dec.DecodeBits(uint(sym-1))
		}
		pred := field.Predict(lin, coord)
		tr[lin] = pred + bitio.UnZigZag(z)
		v := tr[lin] << shift
		if v > math.MaxInt32 || v < math.MinInt32 {
			werr = ErrCorrupt
			return
		}
		out[lin] = fromOrderedInt32(int32(v))
	})
	if werr != nil {
		return nil, nil, werr
	}
	if dec.Overrun() {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}
