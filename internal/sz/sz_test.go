package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// smooth3D generates a smooth 3D field plus mild noise, the easy case for
// Lorenzo prediction.
func smooth3D(nz, ny, nx int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				data[i] = 10*math.Sin(float64(x)*0.2)*math.Cos(float64(y)*0.15) +
					5*math.Sin(float64(z)*0.1) + rng.NormFloat64()*0.01
				i++
			}
		}
	}
	return data, []int{nz, ny, nx}
}

func checkAbsBound(t *testing.T, orig, dec []float64, bound float64) {
	t.Helper()
	for i := range orig {
		if math.IsNaN(orig[i]) {
			if !math.IsNaN(dec[i]) {
				t.Fatalf("index %d: NaN not preserved (%v)", i, dec[i])
			}
			continue
		}
		if math.IsInf(orig[i], 0) {
			if dec[i] != orig[i] {
				t.Fatalf("index %d: Inf not preserved (%v)", i, dec[i])
			}
			continue
		}
		if d := math.Abs(dec[i] - orig[i]); d > bound {
			t.Fatalf("index %d: |%g - %g| = %g > bound %g", i, dec[i], orig[i], d, bound)
		}
	}
}

func TestAbsRoundTrip3D(t *testing.T) {
	data, dims := smooth3D(16, 20, 24, 1)
	for _, bound := range []float64{1e-6, 1e-3, 1e-1} {
		buf, err := CompressAbs(data, dims, bound, nil)
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		dec, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		if !grid.EqualDims(gotDims, dims) {
			t.Fatalf("dims = %v, want %v", gotDims, dims)
		}
		checkAbsBound(t, data, dec, bound)
	}
}

func TestAbsRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 5000)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64()
		data[i] = v // random walk: 1D-Lorenzo friendly
	}
	bound := 0.01
	buf, err := CompressAbs(data, []int{len(data)}, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
	if len(buf) >= len(data)*8 {
		t.Fatalf("no compression: %d >= %d", len(buf), len(data)*8)
	}
}

func TestAbsRoundTrip2D(t *testing.T) {
	ny, nx := 50, 60
	data := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			data[y*nx+x] = math.Exp(-((float64(x)-30)*(float64(x)-30) + (float64(y)-25)*(float64(y)-25)) / 200)
		}
	}
	bound := 1e-4
	buf, err := CompressAbs(data, []int{ny, nx}, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
}

func TestAbsCompressionRatioOnSmoothData(t *testing.T) {
	data, dims := smooth3D(32, 32, 32, 3)
	buf, err := CompressAbs(data, dims, 1e-2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(len(data)*8) / float64(len(buf))
	if cr < 4 {
		t.Fatalf("compression ratio %.2f too low for smooth data", cr)
	}
}

func TestAbsSpikyData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	bound := 1e-3
	buf, err := CompressAbs(data, []int{4096}, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
}

func TestAbsNaNInf(t *testing.T) {
	data := []float64{1, 2, math.NaN(), 4, math.Inf(1), 6, math.Inf(-1), 8}
	bound := 0.01
	buf, err := CompressAbs(data, []int{8}, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
}

func TestAbsAllZero(t *testing.T) {
	data := make([]float64, 1000)
	buf, err := CompressAbs(data, []int{10, 100}, 1e-5, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, 1e-5)
	if len(buf) > 200 {
		t.Fatalf("all-zero field should compress tiny, got %d bytes", len(buf))
	}
}

func TestAbsSingleElement(t *testing.T) {
	data := []float64{3.14159}
	buf, err := CompressAbs(data, []int{1}, 1e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, 1e-3)
}

func TestAbsBadInputs(t *testing.T) {
	if _, err := CompressAbs([]float64{1, 2}, []int{3}, 0.1, nil); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	if _, err := CompressAbs([]float64{1}, []int{1}, 0, nil); err == nil {
		t.Fatal("expected bad bound error")
	}
	if _, err := CompressAbs([]float64{1}, []int{1}, math.NaN(), nil); err == nil {
		t.Fatal("expected NaN bound error")
	}
	if _, err := CompressAbs([]float64{1}, []int{1}, -1, nil); err == nil {
		t.Fatal("expected negative bound error")
	}
}

func TestLosslessModes(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 5)
	for _, mode := range []Lossless{LosslessAuto, LosslessOff, LosslessOn} {
		buf, err := CompressAbs(data, dims, 1e-3, &Options{Lossless: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		checkAbsBound(t, data, dec, 1e-3)
	}
}

func TestIntervalsOption(t *testing.T) {
	data, dims := smooth3D(8, 8, 8, 6)
	for _, iv := range []int{16, 256, 65536} {
		buf, err := CompressAbs(data, dims, 1e-3, &Options{Intervals: iv})
		if err != nil {
			t.Fatalf("intervals %d: %v", iv, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("intervals %d: %v", iv, err)
		}
		checkAbsBound(t, data, dec, 1e-3)
	}
}

func checkRelBound(t *testing.T, orig, dec []float64, rel float64, allowZeroPerturb bool) (maxRel float64) {
	t.Helper()
	for i := range orig {
		if orig[i] == 0 {
			if !allowZeroPerturb && dec[i] != 0 {
				t.Fatalf("index %d: zero perturbed to %g", i, dec[i])
			}
			continue
		}
		if math.IsNaN(orig[i]) || math.IsInf(orig[i], 0) {
			continue
		}
		r := math.Abs(dec[i]-orig[i]) / math.Abs(orig[i])
		if r > rel*(1+1e-9) {
			t.Fatalf("index %d: relative error %g > bound %g (orig %g dec %g)",
				i, r, rel, orig[i], dec[i])
		}
		if r > maxRel {
			maxRel = r
		}
	}
	return maxRel
}

func TestPWRRoundTrip(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 7)
	// Shift to strictly positive with wide dynamic range.
	for i := range data {
		data[i] = math.Exp(data[i] / 4)
	}
	for _, rel := range []float64{1e-3, 1e-2, 1e-1} {
		buf, err := CompressPWR(data, dims, rel, nil)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		checkRelBound(t, data, dec, rel, true)
	}
}

func TestPWRZeroBlocks(t *testing.T) {
	data := make([]float64, 1024)
	for i := 512; i < 1024; i++ {
		data[i] = float64(i) * 1.5
	}
	buf, err := CompressPWR(data, []int{1024}, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Fully-zero blocks must reconstruct exactly.
	for i := 0; i < 504; i++ { // inside all-zero blocks (block side 8)
		if dec[i] != 0 {
			t.Fatalf("index %d: zero block perturbed to %g", i, dec[i])
		}
	}
	checkRelBound(t, data, dec, 0.01, true)
}

func TestPWRDegradesOnSpikyBlocks(t *testing.T) {
	// A block whose min is far smaller than the rest forces a tiny bound on
	// the whole block — the design weakness the paper calls out. Verify the
	// bound still holds (correctness) and CR is worse than for uniform data.
	rng := rand.New(rand.NewSource(8))
	spiky := make([]float64, 8192)
	uniform := make([]float64, 8192)
	for i := range spiky {
		uniform[i] = 100 + rng.Float64()
		spiky[i] = 100 + rng.Float64()
		if i%64 == 0 {
			spiky[i] = 1e-8 // one tiny value per block
		}
	}
	rel := 0.01
	bs, err := CompressPWR(spiky, []int{8192}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := CompressPWR(uniform, []int{8192}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(bs)
	if err != nil {
		t.Fatal(err)
	}
	checkRelBound(t, spiky, dec, rel, true)
	if len(bs) <= len(bu) {
		t.Fatalf("expected spiky blocks to compress worse: %d vs %d", len(bs), len(bu))
	}
}

func TestPWRMixedSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 2048)
	for i := range data {
		data[i] = rng.NormFloat64() * 1000
	}
	rel := 0.05
	buf, err := CompressPWR(data, []int{2048}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRelBound(t, data, dec, rel, true)
}

func TestPWRBadBound(t *testing.T) {
	if _, err := CompressPWR([]float64{1}, []int{1}, 0, nil); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := CompressPWR([]float64{1}, []int{1}, 1.5, nil); err == nil {
		t.Fatal("expected error for bound >= 1")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data, dims := smooth3D(8, 8, 8, 10)
	buf, err := CompressAbs(data, dims, 1e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error, never panic.
	for _, cut := range []int{0, 1, 4, 5, 10, len(buf) / 2, len(buf) - 1} {
		if _, _, err := Decompress(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d did not error", cut)
		}
	}
	// Bad magic.
	mut := append([]byte(nil), buf...)
	mut[0] ^= 0xff
	if _, _, err := Decompress(mut); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Random bit flips anywhere must not panic (may or may not error).
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress(mut)
	}
}

func TestQuickAbsBoundInvariant(t *testing.T) {
	f := func(seed int64, boundSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		bound := math.Pow(10, -float64(boundSel%8)-1)
		buf, err := CompressAbs(data, []int{n}, bound, nil)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range data {
			if math.Abs(dec[i]-data[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPWRBoundInvariant(t *testing.T) {
	f := func(seed int64, boundSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = (rng.Float64() + 0.001) * math.Pow(10, float64(rng.Intn(8)-4))
			if rng.Intn(2) == 0 {
				data[i] = -data[i]
			}
		}
		rel := math.Pow(10, -float64(boundSel%4)-1)
		buf, err := CompressPWR(data, []int{n}, rel, nil)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range data {
			if data[i] == 0 {
				continue
			}
			if math.Abs(dec[i]-data[i])/math.Abs(data[i]) > rel*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoIntervals(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 20)
	bound := 1e-3
	auto, err := CompressAbs(data, dims, bound, &Options{Intervals: IntervalsAuto})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(auto)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
	// Smooth data has tiny residuals: auto capacity should not be larger
	// than the fixed default's stream.
	fixed, err := CompressAbs(data, dims, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) > len(fixed)*11/10 {
		t.Fatalf("auto intervals stream %d much larger than fixed %d", len(auto), len(fixed))
	}
}

func TestAutoIntervalsSpiky(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64() * 1000
	}
	bound := 1e-6 // residuals far exceed any capacity: mostly unpredictable
	buf, err := CompressAbs(data, []int{4096}, bound, &Options{Intervals: IntervalsAuto})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbsBound(t, data, dec, bound)
}

func TestAutoIntervalsPWRFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]float64, 2048)
	for i := range data {
		data[i] = 1 + rng.Float64()
	}
	buf, err := CompressPWR(data, []int{2048}, 0.01, &Options{Intervals: IntervalsAuto})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRelBound(t, data, dec, 0.01, true)
}

func TestAbsRoundTrip4D(t *testing.T) {
	// 4D: a stack of time steps of a smooth 3D field (the time-series use
	// case the generic Lorenzo predictor enables).
	nt, nz, ny, nx := 4, 8, 10, 12
	data := make([]float64, nt*nz*ny*nx)
	i := 0
	for ts := 0; ts < nt; ts++ {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					data[i] = 10*math.Sin(float64(x)*0.2+float64(ts)*0.1)*
						math.Cos(float64(y)*0.15) + 5*math.Sin(float64(z)*0.1)
					i++
				}
			}
		}
	}
	dims := []int{nt, nz, ny, nx}
	bound := 1e-3
	buf, err := CompressAbs(data, dims, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, gotDims, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !grid.EqualDims(gotDims, dims) {
		t.Fatalf("dims %v", gotDims)
	}
	checkAbsBound(t, data, dec, bound)
	// Temporal coherence should compress well below raw.
	if len(buf)*4 > len(data)*8 {
		t.Fatalf("poor 4D compression: %d bytes", len(buf))
	}
}

func TestPWRRoundTrip4D(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	dims := []int{3, 6, 6, 6}
	data := make([]float64, grid.Size(dims))
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64())
	}
	buf, err := CompressPWR(data, dims, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRelBound(t, data, dec, 0.01, true)
}
