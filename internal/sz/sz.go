// Package sz is a clean-room Go re-implementation of the SZ 1.4-style
// error-bounded lossy compressor (Tao et al., IPDPS'17; Di & Cappello,
// IPDPS'16), the prediction-based absolute-error-bound backend used by the
// paper's transformation scheme.
//
// Compression runs in the paper's three stages:
//
//  1. Lorenzo prediction over reconstructed values + linear-scaling
//     quantization of the prediction error into integer codes (code 0 is
//     reserved for unpredictable points, which are stored verbatim with
//     error-bounded mantissa truncation).
//  2. A canonical Huffman encoder over the quantization codes.
//  3. An optional lossless stage (DEFLATE, standing in for SZ's GZIP pass),
//     kept only when it actually shrinks the stream.
//
// The package also implements the block-wise point-wise-relative mode
// (SZ_PWR, Di/Tao/Cappello DRBSD-2'17) that the paper uses as a baseline:
// the field is split into blocks and each block is compressed with an
// absolute bound derived from the minimum nonzero magnitude in the block.
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bitio"
	"repro/internal/floatbits"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
	"repro/internal/quant"
)

// Stream format constants.
const (
	magic       = 0x535A4731 // "SZG1"
	modeAbs     = 1
	modePWR     = 2
	flagFlate   = 1 << 0
	maxRank     = 4
	minBlockExp = -1060
)

// Lossless selects the stage-III lossless pass behaviour.
type Lossless int

const (
	// LosslessAuto applies DEFLATE and keeps it only if it shrinks the
	// stream (the default, mirroring SZ's optional GZIP stage).
	LosslessAuto Lossless = iota
	// LosslessOff disables the stage entirely.
	LosslessOff
	// LosslessOn always stores the DEFLATE-compressed payload.
	LosslessOn
)

// IntervalsAuto selects the quantization capacity by sampling the data
// (SZ's "optimize interval number" step): the smallest power of two whose
// code range covers ~99% of sampled prediction residuals.
const IntervalsAuto = -1

// Options tunes the compressor. The zero value selects SZ defaults.
type Options struct {
	// Intervals is the linear-scaling quantization interval count
	// (default 65536, the SZ default capacity; IntervalsAuto samples the
	// data to pick a smaller capacity when possible, shrinking the
	// Huffman alphabet).
	Intervals int
	// BlockSide is the per-dimension block edge for the PWR mode
	// (default 8).
	BlockSide int
	// Lossless controls the stage-III DEFLATE pass.
	Lossless Lossless
}

func (o *Options) withDefaults() Options {
	opt := Options{Intervals: 65536, BlockSide: 8, Lossless: LosslessAuto}
	if o != nil {
		if o.Intervals >= 2 || o.Intervals == IntervalsAuto {
			opt.Intervals = o.Intervals
		}
		if o.BlockSide > 0 {
			opt.BlockSide = o.BlockSide
		}
		opt.Lossless = o.Lossless
	}
	return opt
}

// estimateIntervals samples prediction residuals (predicting from original
// neighbors, a good proxy for the reconstruction-based predictor) and
// returns the smallest power-of-two capacity covering the 99th percentile.
func estimateIntervals(data []float64, dims []int, bound float64) int {
	const (
		maxSamples   = 4096
		minIntervals = 32
		maxIntervals = 65536
	)
	n := len(data)
	stride := n / maxSamples
	if stride < 1 {
		stride = 1
	}
	field, err := predictor.NewField(data, dims)
	if err != nil {
		return maxIntervals
	}
	var mags []float64
	field.Walk(func(lin int, coord []int) {
		if lin%stride != 0 {
			return
		}
		v := data[lin]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		diff := v - field.Predict(lin, coord)
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return
		}
		mags = append(mags, math.Abs(diff)/(2*bound))
	})
	if len(mags) == 0 {
		return minIntervals
	}
	sort.Float64s(mags)
	p99 := mags[len(mags)*99/100]
	need := 2 * (int(p99) + 2)
	iv := minIntervals
	for iv < need && iv < maxIntervals {
		iv *= 2
	}
	return iv
}

var (
	// ErrCorrupt reports a malformed or truncated compressed stream.
	ErrCorrupt = errors.New("sz: corrupt stream")
	// ErrBadBound reports a nonpositive error bound.
	ErrBadBound = errors.New("sz: error bound must be positive")
)

// CompressAbs compresses data (row-major, shape dims) under the absolute
// error bound `bound`: every decompressed value differs from its original
// by at most bound. NaN and infinite values are stored verbatim.
func CompressAbs(data []float64, dims []int, bound float64, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if len(dims) > maxRank {
		return nil, fmt.Errorf("sz: rank %d unsupported", len(dims))
	}
	if !(bound > 0) || math.IsInf(bound, 0) || math.IsNaN(bound) {
		return nil, ErrBadBound
	}
	opt := opts.withDefaults()
	if opt.Intervals == IntervalsAuto {
		opt.Intervals = estimateIntervals(data, dims, bound)
	}

	n := len(data)
	recon := make([]float64, n)
	field, err := predictor.NewField(recon, dims)
	if err != nil {
		return nil, err
	}
	q := quant.New(bound, opt.Intervals)
	codes := make([]int, n)
	raw := newRawEncoder(bound)

	field.Walk(func(lin int, coord []int) {
		v := data[lin]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			codes[lin] = quant.Unpredictable
			recon[lin] = v
			raw.add(v)
			return
		}
		pred := field.Predict(lin, coord)
		code, rec, ok := q.Quantize(v, pred)
		if !ok {
			codes[lin] = quant.Unpredictable
			tv := raw.add(v)
			recon[lin] = tv
			return
		}
		codes[lin] = code
		recon[lin] = rec
	})

	payload, err := encodePayload(codes, q.Alphabet(), raw)
	if err != nil {
		return nil, err
	}
	return assemble(modeAbs, dims, bound, opt, payload, nil)
}

// CompressPWR compresses data under a point-wise relative error bound using
// the *block-wise* baseline strategy (SZ_PWR): per block of side
// Options.BlockSide, the absolute bound is relBound × min|v| over nonzero
// values in the block, rounded down to a power of two so it serializes as
// one byte per block. Zero values inside nonzero blocks may be perturbed
// (the behaviour the paper marks with * in Table IV).
func CompressPWR(data []float64, dims []int, relBound float64, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if len(dims) > maxRank {
		return nil, fmt.Errorf("sz: rank %d unsupported", len(dims))
	}
	if !(relBound > 0) || relBound >= 1 || math.IsNaN(relBound) {
		return nil, ErrBadBound
	}
	opt := opts.withDefaults()
	if opt.Intervals == IntervalsAuto {
		// Block-wise bounds vary; fall back to the full capacity.
		opt.Intervals = 65536
	}
	n := len(data)

	// Pass 1: per-block bound exponents.
	blockExps, pointBin, err := blockBounds(data, dims, relBound, opt.BlockSide)
	if err != nil {
		return nil, err
	}

	recon := make([]float64, n)
	field, err := predictor.NewField(recon, dims)
	if err != nil {
		return nil, err
	}
	codes := make([]int, n)
	raw := newRawEncoder(0) // per-point tolerance set on each add
	radius := opt.Intervals / 2

	field.Walk(func(lin int, coord []int) {
		v := data[lin]
		bin := pointBin[lin]
		if math.IsNaN(v) || math.IsInf(v, 0) || bin <= 0 {
			codes[lin] = quant.Unpredictable
			recon[lin] = v
			raw.addTol(v, 0)
			return
		}
		bound := bin / 2
		pred := field.Predict(lin, coord)
		diff := v - pred
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			codes[lin] = quant.Unpredictable
			recon[lin] = raw.addTol(v, bound)
			return
		}
		var idx int
		if diff >= 0 {
			idx = int(diff/bin + 0.5)
		} else {
			idx = -int(-diff/bin + 0.5)
		}
		if idx > radius-1 || idx < -(radius-1) {
			codes[lin] = quant.Unpredictable
			recon[lin] = raw.addTol(v, bound)
			return
		}
		rec := pred + float64(idx)*bin
		if d := rec - v; d > bound || d < -bound {
			codes[lin] = quant.Unpredictable
			recon[lin] = raw.addTol(v, bound)
			return
		}
		codes[lin] = idx + radius + 1
		recon[lin] = rec
	})

	payload, err := encodePayload(codes, 2*radius+1, raw)
	if err != nil {
		return nil, err
	}
	return assemble(modePWR, dims, relBound, opt, payload, blockExps)
}

// blockBounds computes the per-block bound exponent e (so that the block's
// absolute bound 2^e <= relBound × min nonzero |v| — rounding down to a
// power of two keeps the bound valid and serializes compactly) and expands
// it to a per-point quantization bin width (2×bound). The sentinel
// zeroBlockExp marks blocks with no finite nonzero value, which are stored
// verbatim.
func blockBounds(data []float64, dims []int, relBound float64, side int) ([]int, []float64, error) {
	strides := grid.Strides(dims)
	var exps []int
	pointBin := make([]float64, len(data))
	err := grid.Blocks(dims, side, func(b grid.Block) error {
		minAbs := math.Inf(1)
		hasFinite := false
		b.ForEach(strides, func(lin int) {
			v := math.Abs(data[lin])
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				hasFinite = true
				if v < minAbs {
					minAbs = v
				}
			}
		})
		e := zeroBlockExp
		bin := 0.0
		if hasFinite {
			fe := int(math.Floor(math.Log2(relBound * minAbs)))
			if fe < minBlockExp {
				fe = minBlockExp
			}
			if fe > 60 {
				fe = 60
			}
			bin = math.Exp2(float64(fe)) * 2 // bin = 2*bound'
			e = fe
		}
		b.ForEach(strides, func(lin int) { pointBin[lin] = bin })
		exps = append(exps, e)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return exps, pointBin, nil
}

// rawEncoder accumulates verbatim ("unpredictable") values with
// error-bounded truncation, exactly as SZ's binary-representation analysis
// stores outliers.
type rawEncoder struct {
	tol   float64
	buf   []byte
	count int
}

func newRawEncoder(tol float64) *rawEncoder { return &rawEncoder{tol: tol} }

// add stores v truncated to the encoder-wide tolerance, returning the
// truncated value actually stored.
func (r *rawEncoder) add(v float64) float64 { return r.addTol(v, r.tol) }

// addTol stores v truncated to the given tolerance (0 = exact).
func (r *rawEncoder) addTol(v, tol float64) float64 {
	tv, nb := floatbits.TruncateToError(v, tol)
	bits := math.Float64bits(tv)
	// Drop trailing zero bytes; nb from TruncateToError already reflects
	// this but recompute defensively for the tol==0 path.
	nb = 8
	for nb > 0 && bits&0xff == 0 {
		bits >>= 8
		nb--
	}
	r.buf = append(r.buf, byte(nb))
	full := math.Float64bits(tv)
	for i := 0; i < nb; i++ {
		r.buf = append(r.buf, byte(full>>(56-8*i)))
	}
	r.count++
	return tv
}

// rawDecoder reads back the verbatim stream.
type rawDecoder struct {
	buf []byte
	pos int
}

func (r *rawDecoder) next() (float64, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrCorrupt
	}
	nb := int(r.buf[r.pos])
	r.pos++
	if nb > 8 || r.pos+nb > len(r.buf) {
		return 0, ErrCorrupt
	}
	var bits uint64
	for i := 0; i < nb; i++ {
		bits |= uint64(r.buf[r.pos+i]) << (56 - 8*i)
	}
	r.pos += nb
	return math.Float64frombits(bits), nil
}

// encodePayload serializes the Huffman-coded quantization codes followed by
// the raw-value stream.
func encodePayload(codes []int, alphabet int, raw *rawEncoder) ([]byte, error) {
	hbuf, err := huffman.EncodeAll(codes, alphabet)
	if err != nil {
		return nil, err
	}
	out := bitio.AppendUvarint(nil, uint64(len(hbuf)))
	out = append(out, hbuf...)
	out = bitio.AppendUvarint(out, uint64(raw.count))
	out = bitio.AppendUvarint(out, uint64(len(raw.buf)))
	out = append(out, raw.buf...)
	return out, nil
}

func decodePayload(payload []byte) (codes []int, raw *rawDecoder, err error) {
	hlen, k := bitio.Uvarint(payload)
	if k == 0 || hlen > uint64(len(payload)-k) {
		return nil, nil, ErrCorrupt
	}
	off := k
	codes, used, err := huffman.DecodeAll(payload[off : off+int(hlen)])
	if err != nil {
		return nil, nil, err
	}
	if used != int(hlen) {
		return nil, nil, ErrCorrupt
	}
	off += int(hlen)
	_, k = bitio.Uvarint(payload[off:])
	if k == 0 {
		return nil, nil, ErrCorrupt
	}
	off += k
	blen, k := bitio.Uvarint(payload[off:])
	if k == 0 || blen > uint64(len(payload)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	return codes, &rawDecoder{buf: payload[off : off+int(blen)]}, nil
}

// assemble builds the final self-describing stream and applies the lossless
// stage. blockExps is non-nil only for PWR mode.
func assemble(mode int, dims []int, bound float64, opt Options, payload []byte, blockExps []int) ([]byte, error) {
	head := make([]byte, 0, 64)
	head = binary.BigEndian.AppendUint32(head, magic)
	head = append(head, byte(mode))
	head = bitio.AppendUvarint(head, uint64(len(dims)))
	for _, d := range dims {
		head = bitio.AppendUvarint(head, uint64(d))
	}
	head = binary.BigEndian.AppendUint64(head, math.Float64bits(bound))
	head = bitio.AppendUvarint(head, uint64(opt.Intervals))
	head = bitio.AppendUvarint(head, uint64(opt.BlockSide))

	body := payload
	if blockExps != nil {
		// Serialize block exponent list ahead of the payload.
		bb := bitio.AppendUvarint(nil, uint64(len(blockExps)))
		bb = append(bb, encodeBlockExps(blockExps)...)
		body = append(bb, payload...)
	}

	flags := byte(0)
	switch opt.Lossless {
	case LosslessOff:
	default:
		var zbuf bytes.Buffer
		zw, err := flate.NewWriter(&zbuf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(body); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		if opt.Lossless == LosslessOn || zbuf.Len() < len(body)*97/100 {
			body = zbuf.Bytes()
			flags |= flagFlate
		}
	}
	out := append(head, flags)
	out = bitio.AppendUvarint(out, uint64(len(body)))
	return append(out, body...), nil
}

// Decompress decodes any stream produced by CompressAbs or CompressPWR,
// returning the reconstructed data and its dimensions.
func Decompress(buf []byte) ([]float64, []int, error) {
	mode, dims, bound, intervals, blockSide, body, err := parseHeader(buf)
	if err != nil {
		return nil, nil, err
	}
	n := grid.Size(dims)
	switch mode {
	case modeAbs:
		return decompressAbs(dims, n, bound, intervals, body)
	case modePWR:
		return decompressPWR(dims, n, bound, intervals, blockSide, body)
	default:
		return nil, nil, ErrCorrupt
	}
}

func parseHeader(buf []byte) (mode int, dims []int, bound float64, intervals, blockSide int, body []byte, err error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != magic {
		err = ErrCorrupt
		return
	}
	mode = int(buf[4])
	off := 5
	rank, k := bitio.Uvarint(buf[off:])
	if k == 0 || rank == 0 || rank > maxRank {
		err = ErrCorrupt
		return
	}
	off += k
	dims = make([]int, rank)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			err = ErrCorrupt
			return
		}
		dims[i] = int(d)
		off += k
	}
	if err2 := grid.Validate(dims, -1); err2 != nil {
		err = ErrCorrupt
		return
	}
	if off+8 > len(buf) {
		err = ErrCorrupt
		return
	}
	bound = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	iv, k := bitio.Uvarint(buf[off:])
	if k == 0 || iv < 2 || iv > 1<<24 {
		err = ErrCorrupt
		return
	}
	intervals = int(iv)
	off += k
	bs, k := bitio.Uvarint(buf[off:])
	if k == 0 || bs == 0 || bs > 1<<20 {
		err = ErrCorrupt
		return
	}
	blockSide = int(bs)
	off += k
	if off >= len(buf) {
		err = ErrCorrupt
		return
	}
	flags := buf[off]
	off++
	blen, k := bitio.Uvarint(buf[off:])
	if k == 0 || blen > uint64(len(buf)-off-k) {
		err = ErrCorrupt
		return
	}
	off += k
	body = buf[off : off+int(blen)]
	if flags&flagFlate != 0 {
		zr := flate.NewReader(bytes.NewReader(body))
		dec, err2 := io.ReadAll(io.LimitReader(zr, 1<<34))
		if err2 != nil {
			err = fmt.Errorf("%w: %v", ErrCorrupt, err2)
			return
		}
		_ = zr.Close() // nothing to report: body was fully read above
		body = dec
	}
	if !(bound > 0) || math.IsNaN(bound) || math.IsInf(bound, 0) {
		err = ErrCorrupt
	}
	return
}

func decompressAbs(dims []int, n int, bound float64, intervals int, body []byte) ([]float64, []int, error) {
	codes, raw, err := decodePayload(body)
	if err != nil {
		return nil, nil, err
	}
	if len(codes) != n {
		return nil, nil, ErrCorrupt
	}
	recon := make([]float64, n)
	field, err := predictor.NewField(recon, dims)
	if err != nil {
		return nil, nil, err
	}
	q := quant.New(bound, intervals)
	alphabet := q.Alphabet()
	var werr error
	field.Walk(func(lin int, coord []int) {
		if werr != nil {
			return
		}
		code := codes[lin]
		if code == quant.Unpredictable {
			v, err := raw.next()
			if err != nil {
				werr = err
				return
			}
			recon[lin] = v
			return
		}
		if code < 0 || code >= alphabet {
			werr = ErrCorrupt
			return
		}
		recon[lin] = q.Reconstruct(code, field.Predict(lin, coord))
	})
	if werr != nil {
		return nil, nil, werr
	}
	return recon, dims, nil
}

func decompressPWR(dims []int, n int, relBound float64, intervals, blockSide int, body []byte) ([]float64, []int, error) {
	nblocks, k := bitio.Uvarint(body)
	if k == 0 || nblocks > uint64(n) {
		return nil, nil, ErrCorrupt
	}
	off := k
	exps, used, err := decodeBlockExps(body[off:], int(nblocks))
	if err != nil {
		return nil, nil, err
	}
	off += used
	codes, raw, err := decodePayload(body[off:])
	if err != nil {
		return nil, nil, err
	}
	if len(codes) != n {
		return nil, nil, ErrCorrupt
	}
	// Expand per-point bins.
	strides := grid.Strides(dims)
	pointBin := make([]float64, n)
	bi := 0
	err = grid.Blocks(dims, blockSide, func(b grid.Block) error {
		if bi >= len(exps) {
			return ErrCorrupt
		}
		bin := 0.0
		if e := exps[bi]; e != zeroBlockExp {
			bin = math.Exp2(float64(e)) * 2
		}
		b.ForEach(strides, func(lin int) { pointBin[lin] = bin })
		bi++
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if bi != len(exps) {
		return nil, nil, ErrCorrupt
	}

	recon := make([]float64, n)
	field, err := predictor.NewField(recon, dims)
	if err != nil {
		return nil, nil, err
	}
	radius := intervals / 2
	var werr error
	field.Walk(func(lin int, coord []int) {
		if werr != nil {
			return
		}
		code := codes[lin]
		if code == quant.Unpredictable {
			v, err := raw.next()
			if err != nil {
				werr = err
				return
			}
			recon[lin] = v
			return
		}
		if code < 1 || code > 2*radius {
			werr = ErrCorrupt
			return
		}
		recon[lin] = field.Predict(lin, coord) + float64(code-radius-1)*pointBin[lin]
	})
	if werr != nil {
		return nil, nil, werr
	}
	return recon, dims, nil
}

// Block exponents are small signed integers in [-1060, 60] plus an all-zero
// sentinel; serialize as zigzag uvarints.
const zeroBlockExp = 1 << 20

func encodeBlockExps(exps []int) []byte {
	out := make([]byte, 0, len(exps)*2)
	for _, e := range exps {
		out = bitio.AppendUvarint(out, bitio.ZigZag(int64(e)))
	}
	return out
}

func decodeBlockExps(data []byte, n int) ([]int, int, error) {
	exps := make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		u, k := bitio.Uvarint(data[off:])
		if k == 0 {
			return nil, 0, ErrCorrupt
		}
		off += k
		v := bitio.UnZigZag(u)
		if v != zeroBlockExp && (v < minBlockExp || v > 62) {
			return nil, 0, ErrCorrupt
		}
		exps[i] = int(v)
	}
	return exps, off, nil
}
