// Package floatbits supplies bit-level IEEE-754 utilities used across the
// compressors: the order-preserving mapping between float64 and int64 that
// FPZIP predicts in, error-bounded mantissa truncation for SZ's
// unpredictable-value encoder, and exponent helpers for ZFP's block
// floating-point alignment.
package floatbits

import (
	"math"
)

// IsZero reports whether v is exactly ±0. It is the named form of the
// exact zero test the zero-sentinel logic depends on: a value is either
// encoded as a sentinel or transformed, never approximately compared.
func IsZero(v float64) bool {
	return v == 0 //lint:allow floatcmp exact zero test is this helper's contract
}

// Equal reports whether a and b are exactly the same float64 value
// (IEEE-754 ==, so NaN != NaN and -0 == +0). Use it where bit-for-bit
// agreement after a round trip is the requirement.
func Equal(a, b float64) bool {
	return a == b //lint:allow floatcmp exact equality is this helper's contract
}

// ToOrderedInt maps a float64 to an int64 such that the integer order
// matches the floating-point order (including -0 < +0 treated as equal
// neighbors and negative values mapping below positives). NaNs map to the
// extremes of their sign and are order-stable but carry no semantics.
func ToOrderedInt(f float64) int64 {
	//lint:allow intnarrow intentional reinterpretation: the IEEE sign bit must land in int64's sign position
	i := int64(math.Float64bits(f))
	if i < 0 {
		// Negative floats compare in reverse bit order: flip the non-sign
		// bits so that more-negative values map to more-negative integers.
		i ^= 0x7fffffffffffffff
	}
	return i
}

// FromOrderedInt inverts ToOrderedInt.
func FromOrderedInt(v int64) float64 {
	if v < 0 {
		v ^= 0x7fffffffffffffff
	}
	return math.Float64frombits(uint64(v))
}

// Exponent returns the unbiased base-2 exponent e such that
// 2^e <= |f| < 2^(e+1) for normal f. For zero it returns MinExp; denormals
// return their true exponent computed from the leading mantissa bit.
func Exponent(f float64) int {
	if IsZero(f) {
		return MinExp
	}
	e := math.Ilogb(f)
	return e
}

// MinExp is a sentinel exponent below every representable float64 exponent
// (denormals reach -1074).
const MinExp = -1100

// MaxExponent returns the largest Exponent(v) over data, or MinExp when all
// values are zero (or data is empty).
func MaxExponent(data []float64) int {
	maxE := MinExp
	maxAbs := 0.0
	for _, v := range data {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		maxE = math.Ilogb(maxAbs)
	}
	return maxE
}

// TruncateToError clears low-order mantissa bits of f such that the
// introduced error is at most tol, returning the truncated value and the
// number of significant leading bytes of its big-endian representation
// (trailing zero bytes can be dropped from storage).
//
// This mirrors SZ's "binary representation analysis" storage of
// unpredictable values: the value is stored with only as much mantissa as
// the absolute error bound requires.
func TruncateToError(f, tol float64) (float64, int) {
	if tol <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return f, 8
	}
	e := Exponent(f)
	if IsZero(f) {
		return 0, 0
	}
	// Mantissa bit i (from the top, 0-based) has weight 2^(e-1-i).
	// Keeping bits with weight >= tol/2 bounds the truncation error by tol.
	te := math.Ilogb(tol)
	keep := e - te + 1 // number of mantissa bits to keep (may be <=0)
	if keep <= 0 {
		// The whole value is below the tolerance: snap to zero is fine but
		// SZ stores the leading exponent anyway; keep sign+exponent only.
		keep = 0
	}
	if keep >= 52 {
		return f, 8
	}
	bits := math.Float64bits(f)
	mask := ^uint64(0) << (52 - uint(keep))
	tb := bits & mask
	tf := math.Float64frombits(tb)
	// Count significant bytes: sign+exponent occupy the top 12 bits, so at
	// least 2 bytes are always meaningful.
	nbytes := 8
	for nbytes > 2 && tb&0xff == 0 {
		tb >>= 8
		nbytes--
	}
	return tf, nbytes
}

// Log2Abs returns log2(|x|). It is the forward mapping of the paper's
// transformation scheme (base 2 fixed per Section IV/VI-B). x must be
// nonzero and finite.
func Log2Abs(x float64) float64 {
	return math.Log2(math.Abs(x))
}

// Exp2 is the inverse mapping 2^x.
func Exp2(x float64) float64 {
	return math.Exp2(x)
}

// MachineEpsilon is the double-precision unit roundoff used in Lemma 2's
// bound adjustment (2^-52).
const MachineEpsilon = 0x1p-52

// NextAfterZero reports whether v is so small that exp2 of its logarithm
// would underflow to zero; used in zero-sentinel handling.
func IsDenormalOrZero(v float64) bool {
	return math.Abs(v) < 0x1p-1022
}
