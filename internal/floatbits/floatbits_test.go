package floatbits

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderedIntRoundTrip(t *testing.T) {
	cases := []float64{0, math.Copysign(0, -1), 1, -1, 1e300, -1e300,
		5e-324, -5e-324, math.MaxFloat64, -math.MaxFloat64, 0.1, -0.1}
	for _, f := range cases {
		got := FromOrderedInt(ToOrderedInt(f))
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
}

func TestOrderedIntMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1e10, -2, -1, -0.5,
		-5e-324, 0, 5e-324, 0.5, 1, 2, 1e10, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := ToOrderedInt(vals[i-1]), ToOrderedInt(vals[i])
		if a >= b {
			t.Errorf("order violated: %v (%d) !< %v (%d)", vals[i-1], a, vals[i], b)
		}
	}
}

func TestQuickOrderedIntRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return FromOrderedInt(ToOrderedInt(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrderedIntMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ia, ib := ToOrderedInt(a), ToOrderedInt(b)
		switch {
		case a < b:
			return ia < ib
		case a > b:
			return ia > ib
		default:
			return true // ±0 pair allowed either order between themselves
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedIntSortMatchesFloatSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	ints := make([]int64, len(vals))
	for i, v := range vals {
		ints[i] = ToOrderedInt(v)
	}
	sort.Float64s(vals)
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	for i := range vals {
		if FromOrderedInt(ints[i]) != vals[i] {
			t.Fatalf("index %d: %v vs %v", i, FromOrderedInt(ints[i]), vals[i])
		}
	}
}

func TestExponent(t *testing.T) {
	cases := map[float64]int{1: 0, 2: 1, 3: 1, 0.5: -1, 0.75: -1, 1024: 10}
	for v, want := range cases {
		if got := Exponent(v); got != want {
			t.Errorf("Exponent(%v) = %d, want %d", v, got, want)
		}
	}
	if Exponent(0) != MinExp {
		t.Error("Exponent(0) should be MinExp")
	}
	if Exponent(-8) != 3 {
		t.Error("Exponent(-8) should be 3")
	}
}

func TestMaxExponent(t *testing.T) {
	if got := MaxExponent([]float64{0, 0.25, -7, 0.5}); got != 2 {
		t.Fatalf("MaxExponent = %d, want 2", got)
	}
	if got := MaxExponent([]float64{0, 0}); got != MinExp {
		t.Fatalf("MaxExponent zeros = %d, want MinExp", got)
	}
	if got := MaxExponent(nil); got != MinExp {
		t.Fatalf("MaxExponent(nil) = %d, want MinExp", got)
	}
}

func TestTruncateToErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
		tol := math.Pow(10, float64(rng.Intn(8)-8)) * math.Abs(v)
		if tol == 0 {
			continue
		}
		tv, nb := TruncateToError(v, tol)
		if math.Abs(tv-v) > tol {
			t.Fatalf("truncation error %g > tol %g for v=%g", math.Abs(tv-v), tol, v)
		}
		if nb < 0 || nb > 8 {
			t.Fatalf("byte count %d out of range", nb)
		}
	}
}

func TestTruncateToErrorEdgeCases(t *testing.T) {
	if v, n := TruncateToError(0, 1e-3); v != 0 || n != 0 {
		t.Fatalf("zero: got %v,%d", v, n)
	}
	if v, _ := TruncateToError(5.0, 0); v != 5.0 {
		t.Fatal("tol=0 must pass value through")
	}
	inf := math.Inf(1)
	if v, _ := TruncateToError(inf, 1e-3); !math.IsInf(v, 1) {
		t.Fatal("inf must pass through")
	}
	if v, _ := TruncateToError(math.NaN(), 1e-3); !math.IsNaN(v) {
		t.Fatal("nan must pass through")
	}
	// Value far below tolerance truncates to (near) zero with small storage.
	v, _ := TruncateToError(1e-20, 1.0)
	if math.Abs(v-1e-20) > 1.0 {
		t.Fatal("sub-tolerance truncation out of bound")
	}
}

func TestTruncationSavesBytes(t *testing.T) {
	// Coarse tolerance should need far fewer than 8 bytes.
	_, nb := TruncateToError(123.456789, 1.0)
	if nb > 3 {
		t.Fatalf("coarse truncation kept %d bytes", nb)
	}
	_, nb = TruncateToError(123.456789, 1e-12)
	if nb < 6 {
		t.Fatalf("fine truncation kept only %d bytes", nb)
	}
}

func TestLog2Exp2Inverse(t *testing.T) {
	vals := []float64{1, 2, 0.5, 3.7, 1e-300, 1e300, 0.1}
	for _, v := range vals {
		// The round-trip relative error grows with |log2 v|*eps — this is
		// precisely the round-off effect Lemma 2 of the paper guards against.
		tol := (math.Abs(Log2Abs(v)) + 2) * 4 * MachineEpsilon
		if got := Exp2(Log2Abs(v)); math.Abs(got-v)/v > tol {
			t.Errorf("Exp2(Log2Abs(%v)) = %v (tol %g)", v, got, tol)
		}
	}
	if got := Exp2(Log2Abs(-4)); got != 4 {
		t.Errorf("Log2Abs drops sign: got %v", got)
	}
}

func TestIsDenormalOrZero(t *testing.T) {
	if !IsDenormalOrZero(0) || !IsDenormalOrZero(1e-320) {
		t.Fatal("zero/denormal misclassified")
	}
	if IsDenormalOrZero(1e-300) || IsDenormalOrZero(-1) {
		t.Fatal("normal misclassified")
	}
}
