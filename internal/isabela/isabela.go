// Package isabela is a clean-room Go re-implementation of the ISABELA
// in-situ sort-and-spline compressor (Lakshminarasimhan et al., CCPE 2013),
// the oldest of the paper's point-wise-relative baselines.
//
// ISABELA splits the stream into fixed windows, sorts each window (storing
// the permutation index explicitly — the large "index overhead" the paper
// cites), fits a cubic B-spline to the now-monotone data, and stores
// per-point error-quantization corrections so that each value respects the
// requested point-wise relative error bound. The sort makes compression
// slow and the per-point index bits cap the achievable ratio — both
// weaknesses the paper's evaluation reproduces.
package isabela

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitio"
	"repro/internal/bspline"
	"repro/internal/floatbits"
	"repro/internal/grid"
	"repro/internal/huffman"
)

const (
	magic = 0x49534131 // "ISA1"
	// symExact flags a value stored verbatim (64 raw bits follow).
	symExact = 65
	alphabet = 66
)

var (
	// ErrCorrupt reports a malformed stream.
	ErrCorrupt = errors.New("isabela: corrupt stream")
	// ErrBadBound reports an out-of-range relative bound.
	ErrBadBound = errors.New("isabela: relative bound must be in (0, 1)")
)

// Options tunes the compressor; the zero value selects the defaults used in
// the ISABELA paper (1024-point windows, 30 spline coefficients).
type Options struct {
	Window int // window length (default 1024)
	Coeffs int // spline control points per window (default 30)
}

func (o *Options) withDefaults() Options {
	opt := Options{Window: 1024, Coeffs: 30}
	if o != nil {
		if o.Window >= 16 {
			opt.Window = o.Window
		}
		if o.Coeffs >= 4 {
			opt.Coeffs = o.Coeffs
		}
	}
	return opt
}

// Compress encodes data under the point-wise relative bound relBound.
// ISABELA treats the field as a 1D stream regardless of rank (dims is kept
// for the container only). Zero values are stored exactly.
func Compress(data []float64, dims []int, relBound float64, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if !(relBound > 0) || relBound >= 1 {
		return nil, ErrBadBound
	}
	opt := opts.withDefaults()
	n := len(data)
	ba := math.Log2(1+relBound) * 0.999 // slack absorbs log/exp round-off

	type window struct {
		start, length int
		nctrl         int
		perm          []int
		coeffs        []float64
		syms          []int    // bit-length symbol (or symExact) per point
		resid         []uint64 // zigzag correction per point (when not exact)
		exact         []uint64 // raw bits for exact points in order
	}
	windows := make([]window, 0, (n+opt.Window-1)/opt.Window)
	freqs := make([]uint64, alphabet)
	sortbuf := make([]float64, min(opt.Window, n))

	for start := 0; start < n; start += opt.Window {
		wlen := opt.Window
		if start+wlen > n {
			wlen = n - start
		}
		wd := window{start: start, length: wlen}
		vals := data[start : start+wlen]

		// Sort by value, keeping the permutation. perm[j] is the original
		// offset of the j-th smallest value.
		//lint:allow allochot retained by the window record until serialization
		wd.perm = make([]int, wlen)
		for i := range wd.perm {
			wd.perm[i] = i
		}
		sort.SliceStable(wd.perm, func(a, b int) bool { return vals[wd.perm[a]] < vals[wd.perm[b]] })
		sorted := sortbuf[:wlen]
		for j, p := range wd.perm {
			sorted[j] = vals[p]
		}

		// Spline fit of the monotone curve (skip for tiny windows).
		wd.nctrl = opt.Coeffs
		if wd.nctrl > wlen {
			wd.nctrl = wlen
		}
		var approx []float64
		if wd.nctrl >= 4 {
			curve, err := bspline.Fit(sorted, wd.nctrl)
			if err == nil {
				wd.coeffs = curve.Ctrl
				approx = curve.EvalAll(wlen, nil)
			}
		}
		if wd.coeffs == nil {
			wd.nctrl = 0 // all points exact
		}

		//lint:allow allochot retained by the window record until serialization
		wd.syms = make([]int, wlen)
		//lint:allow allochot retained by the window record until serialization
		wd.resid = make([]uint64, wlen)
		for j := 0; j < wlen; j++ {
			v := sorted[j]
			ok := false
			var c int64
			if wd.coeffs != nil && !floatbits.IsZero(v) && !math.IsNaN(v) && !math.IsInf(v, 0) {
				a := approx[j]
				if !floatbits.IsZero(a) && math.Signbit(a) == math.Signbit(v) && !math.IsInf(a, 0) && !math.IsNaN(a) {
					la := math.Log2(math.Abs(a))
					lv := math.Log2(math.Abs(v))
					c = int64(math.Round((lv - la) / ba))
					rec := math.Copysign(math.Exp2(la+float64(c)*ba), a)
					if math.Abs(rec-v) <= relBound*math.Abs(v) {
						ok = true
					}
				}
			}
			if ok {
				z := bitio.ZigZag(c)
				wd.resid[j] = z
				wd.syms[j] = bitlen(z)
			} else {
				wd.syms[j] = symExact
				wd.exact = append(wd.exact, math.Float64bits(v))
			}
			freqs[wd.syms[j]]++
		}
		windows = append(windows, wd)
	}

	codec, err := huffman.Build(freqs)
	if err != nil {
		return nil, err
	}

	w := bitio.NewWriter(n)
	for _, wd := range windows {
		// Permutation indices.
		pb := permBits(wd.length)
		for _, p := range wd.perm {
			w.WriteBits(uint64(p), pb)
		}
		// Spline coefficients.
		w.WriteBits(uint64(wd.nctrl), 16)
		for _, cf := range wd.coeffs {
			w.WriteBits(math.Float64bits(cf), 64)
		}
		// Corrections.
		ei := 0
		for j := 0; j < wd.length; j++ {
			if err := codec.Encode(w, wd.syms[j]); err != nil {
				return nil, err
			}
			switch {
			case wd.syms[j] == symExact:
				w.WriteBits(wd.exact[ei], 64)
				ei++
			case wd.syms[j] > 0:
				w.WriteBits(wd.resid[j], uint(wd.syms[j]-1))
			}
		}
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(payload)+64)
	out = binary.BigEndian.AppendUint32(out, magic)
	out = bitio.AppendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = bitio.AppendUvarint(out, uint64(d))
	}
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(relBound))
	out = bitio.AppendUvarint(out, uint64(opt.Window))
	out = codec.AppendTable(out)
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress decodes a stream produced by Compress.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != magic {
		return nil, nil, ErrCorrupt
	}
	off := 4
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > grid.MaxDims {
		return nil, nil, ErrCorrupt
	}
	off += k
	dims := make([]int, rankU)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, ErrCorrupt
	}
	if off+8 > len(buf) {
		return nil, nil, ErrCorrupt
	}
	relBound := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	if !(relBound > 0) || relBound >= 1 {
		return nil, nil, ErrCorrupt
	}
	windowU, k := bitio.Uvarint(buf[off:])
	if k == 0 || windowU < 1 || windowU > 1<<30 {
		return nil, nil, ErrCorrupt
	}
	off += k
	codec, used, err := huffman.ParseTable(buf[off:])
	if err != nil {
		return nil, nil, err
	}
	off += used
	plen, k := bitio.Uvarint(buf[off:])
	if k == 0 || plen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	r := bitio.NewReader(buf[off : off+int(plen)])

	n := grid.Size(dims)
	windowLen := int(windowU)
	ba := math.Log2(1+relBound) * 0.999
	out := make([]float64, n)
	// Scratch shared across windows; wlen <= windowLen and nctrl <= wlen,
	// and the min() keeps a huge header window from pre-allocating more
	// than the (already validated) field size.
	scratch := min(windowLen, n)
	permBuf := make([]int, scratch)
	ctrlBuf := make([]float64, scratch)

	for start := 0; start < n; start += windowLen {
		wlen := windowLen
		if start+wlen > n {
			wlen = n - start
		}
		pb := permBits(wlen)
		perm := permBuf[:wlen]
		for i := range perm {
			p, err := r.ReadBits(pb)
			if err != nil {
				return nil, nil, err
			}
			if p >= uint64(wlen) {
				return nil, nil, ErrCorrupt
			}
			perm[i] = int(p)
		}
		nctrlU, err := r.ReadBits(16)
		if err != nil {
			return nil, nil, err
		}
		nctrl := int(nctrlU) //lint:allow wrapreach ReadBits(16) caps the value at 2^16-1, well inside int
		if nctrl != 0 && (nctrl < 4 || nctrl > wlen) {
			return nil, nil, ErrCorrupt
		}
		var approx []float64
		if nctrl > 0 {
			ctrl := ctrlBuf[:nctrl]
			for i := range ctrl {
				bits, err := r.ReadBits(64)
				if err != nil {
					return nil, nil, err
				}
				ctrl[i] = math.Float64frombits(bits)
			}
			curve := &bspline.Curve{Ctrl: ctrl}
			approx = curve.EvalAll(wlen, nil)
		}
		for j := 0; j < wlen; j++ {
			sym, err := codec.Decode(r)
			if err != nil {
				return nil, nil, err
			}
			var v float64
			switch {
			case sym == symExact:
				bits, err := r.ReadBits(64)
				if err != nil {
					return nil, nil, err
				}
				v = math.Float64frombits(bits)
			case sym >= 0 && sym <= 64:
				var z uint64
				if sym > 0 {
					low, err := r.ReadBits(uint(sym - 1))
					if err != nil {
						return nil, nil, err
					}
					z = 1<<uint(sym-1) | low
				}
				if approx == nil {
					return nil, nil, ErrCorrupt
				}
				c := bitio.UnZigZag(z)
				a := approx[j]
				la := math.Log2(math.Abs(a))
				v = math.Copysign(math.Exp2(la+float64(c)*ba), a)
			default:
				return nil, nil, ErrCorrupt
			}
			out[start+perm[j]] = v
		}
	}
	return out, dims, nil
}

func permBits(wlen int) uint {
	b := uint(1)
	for (1 << b) < wlen {
		b++
	}
	return b
}

func bitlen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// String describes the compressor configuration (for experiment tables).
func (o Options) String() string {
	o = (&o).withDefaults()
	return fmt.Sprintf("isabela(W=%d,C=%d)", o.Window, o.Coeffs)
}
