package isabela

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func checkRel(t *testing.T, orig, dec []float64, rel float64) {
	t.Helper()
	for i := range orig {
		if orig[i] == 0 {
			if dec[i] != 0 {
				t.Fatalf("index %d: zero perturbed to %g", i, dec[i])
			}
			continue
		}
		if math.IsNaN(orig[i]) {
			if !math.IsNaN(dec[i]) {
				t.Fatalf("index %d: NaN lost", i)
			}
			continue
		}
		r := math.Abs(dec[i]-orig[i]) / math.Abs(orig[i])
		if r > rel*(1+1e-9) {
			t.Fatalf("index %d: rel err %g > %g (orig %g dec %g)", i, r, rel, orig[i], dec[i])
		}
	}
}

func TestRoundTripSmooth(t *testing.T) {
	n := 4096
	data := make([]float64, n)
	for i := range data {
		data[i] = 100 + 50*math.Sin(float64(i)*0.01)
	}
	for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
		buf, err := Compress(data, []int{n}, rel, nil)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		dec, dims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		if !grid.EqualDims(dims, []int{n}) {
			t.Fatalf("dims %v", dims)
		}
		checkRel(t, data, dec, rel)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
	}
	rel := 0.01
	buf, err := Compress(data, []int{n}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, rel)
}

func TestRoundTripMixedSignsAndZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	data := make([]float64, n)
	for i := range data {
		switch rng.Intn(4) {
		case 0:
			data[i] = 0
		case 1:
			data[i] = -math.Abs(rng.NormFloat64() * 100)
		default:
			data[i] = math.Abs(rng.NormFloat64() * 100)
		}
	}
	rel := 0.05
	buf, err := Compress(data, []int{n}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, rel)
}

func TestShortWindowTail(t *testing.T) {
	// n not a multiple of window, with a tiny tail.
	n := 1024 + 3
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, n)
	for i := range data {
		data[i] = 1 + rng.Float64()
	}
	rel := 0.01
	buf, err := Compress(data, []int{n}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, rel)
}

func TestTinyInput(t *testing.T) {
	data := []float64{3.7}
	buf, err := Compress(data, []int{1}, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, 0.01)
}

func TestMultiDimFlattened(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := []int{20, 30, 10}
	data := make([]float64, grid.Size(dims))
	for i := range data {
		data[i] = 1000 * (1 + rng.NormFloat64()*0.1)
	}
	buf, err := Compress(data, dims, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, gotDims, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !grid.EqualDims(gotDims, dims) {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	checkRel(t, data, dec, 0.01)
}

func TestIndexOverheadCapsRatio(t *testing.T) {
	// Even on perfectly compressible data, the permutation index bits cap
	// the ratio — the structural weakness the paper describes.
	n := 8192
	data := make([]float64, n)
	for i := range data {
		data[i] = 42.0
	}
	buf, err := Compress(data, []int{n}, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(n*8) / float64(len(buf))
	if cr > 8 {
		t.Fatalf("CR %.1f implausibly high for ISABELA (index overhead missing?)", cr)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, 0.01)
}

func TestOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2048
	data := make([]float64, n)
	for i := range data {
		data[i] = 5 + rng.Float64()
	}
	for _, opt := range []*Options{
		{Window: 256, Coeffs: 16},
		{Window: 2048, Coeffs: 60},
		{Window: 10, Coeffs: 2}, // clamped to minimums
	} {
		buf, err := Compress(data, []int{n}, 0.01, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		checkRel(t, data, dec, 0.01)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Compress([]float64{1}, []int{1}, 0, nil); err == nil {
		t.Fatal("rel=0 accepted")
	}
	if _, err := Compress([]float64{1}, []int{1}, 1, nil); err == nil {
		t.Fatal("rel=1 accepted")
	}
	if _, err := Compress([]float64{1, 2}, []int{3}, 0.1, nil); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]float64, 600)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	buf, err := Compress(data, []int{600}, 0.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 8, 20, len(buf) / 2} {
		if _, _, err := Decompress(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < 150; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress(mut) // must not panic
	}
}

func TestQuickRelBoundInvariant(t *testing.T) {
	f := func(seed int64, relSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		rel := math.Pow(10, -float64(relSel%4)-1)
		buf, err := Compress(data, []int{n}, rel, nil)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range data {
			if data[i] == 0 {
				if dec[i] != 0 {
					return false
				}
				continue
			}
			if math.Abs(dec[i]-data[i])/math.Abs(data[i]) > rel*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 1<<15)
	for i := range data {
		data[i] = 100 + rng.NormFloat64()
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, []int{len(data)}, 0.01, nil); err != nil {
			b.Fatal(err)
		}
	}
}
