// Package predictor implements the Lorenzo predictor family used by the SZ
// and FPZIP re-implementations. The Lorenzo predictor estimates a point from
// its already-visited neighbors by inclusion–exclusion over the unit cube
// corner opposite the point: 1 neighbor in 1D, 3 in 2D, 7 in 3D (the
// neighbor counts quoted in the paper's footnote 1).
//
// During compression the neighbors must be *reconstructed* values (not the
// originals) so that decompression, which only has reconstructed values,
// applies the identical prediction and errors do not propagate (paper
// footnote 2). The Field type therefore operates over a caller-maintained
// reconstruction buffer.
package predictor

import (
	"repro/internal/grid"
)

// Field predicts values over an N-d row-major array backed by buf. The
// caller writes reconstructed values into Buf as it advances; Predict(i)
// only reads indices smaller than i in row-major order.
type Field struct {
	Buf     []float64
	dims    []int
	strides []int
	rank    int
}

// NewField constructs a predictor over a reconstruction buffer with the
// given dimensions. len(buf) must equal the product of dims.
func NewField(buf []float64, dims []int) (*Field, error) {
	if err := grid.Validate(dims, len(buf)); err != nil {
		return nil, err
	}
	return &Field{Buf: buf, dims: dims, strides: grid.Strides(dims), rank: len(dims)}, nil
}

// Dims returns the field dimensions.
func (f *Field) Dims() []int { return f.dims }

// Predict returns the Lorenzo prediction for linear index lin, given the
// multi-index coordinates coord (which must correspond to lin). Border
// points fall back to lower-order Lorenzo predictions with missing
// neighbors treated as zero, matching SZ's handling of array boundaries.
func (f *Field) Predict(lin int, coord []int) float64 {
	switch f.rank {
	case 1:
		if coord[0] == 0 {
			return 0
		}
		return f.Buf[lin-1]
	case 2:
		i, j := coord[0], coord[1]
		sj := f.strides[0]
		var a, b, c float64 // a = left, b = up, c = up-left
		if j > 0 {
			a = f.Buf[lin-1]
		}
		if i > 0 {
			b = f.Buf[lin-sj]
		}
		if i > 0 && j > 0 {
			c = f.Buf[lin-sj-1]
		}
		return a + b - c
	case 3:
		i, j, k := coord[0], coord[1], coord[2]
		si, sj := f.strides[0], f.strides[1]
		var v100, v010, v001, v110, v101, v011, v111 float64
		if k > 0 {
			v001 = f.Buf[lin-1]
		}
		if j > 0 {
			v010 = f.Buf[lin-sj]
		}
		if i > 0 {
			v100 = f.Buf[lin-si]
		}
		if j > 0 && k > 0 {
			v011 = f.Buf[lin-sj-1]
		}
		if i > 0 && k > 0 {
			v101 = f.Buf[lin-si-1]
		}
		if i > 0 && j > 0 {
			v110 = f.Buf[lin-si-sj]
		}
		if i > 0 && j > 0 && k > 0 {
			v111 = f.Buf[lin-si-sj-1]
		}
		return v001 + v010 + v100 - v011 - v101 - v110 + v111
	default:
		return f.predictGeneric(lin, coord)
	}
}

// predictGeneric applies the inclusion–exclusion Lorenzo formula for any
// rank (used for rank 4, e.g. time-series snapshot stacks): the predictor
// sums the values at every nonempty corner subset with sign (−1)^(|S|+1).
func (f *Field) predictGeneric(lin int, coord []int) float64 {
	var p float64
	for mask := 1; mask < 1<<f.rank; mask++ {
		off := 0
		ok := true
		bits := 0
		for d := 0; d < f.rank; d++ {
			if mask&(1<<d) != 0 {
				if coord[d] == 0 {
					ok = false
					break
				}
				off += f.strides[d]
				bits++
			}
		}
		if !ok {
			continue
		}
		if bits%2 == 1 {
			p += f.Buf[lin-off]
		} else {
			p -= f.Buf[lin-off]
		}
	}
	return p
}

// Walk iterates the field in row-major order, calling fn with the linear
// index and coordinates. The coord slice is reused between calls.
func (f *Field) Walk(fn func(lin int, coord []int)) {
	coord := make([]int, f.rank)
	n := grid.Size(f.dims)
	for lin := 0; lin < n; lin++ {
		fn(lin, coord)
		for d := f.rank - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < f.dims[d] {
				break
			}
			coord[d] = 0
		}
	}
}

// IntField is the integer-domain Lorenzo predictor used by FPZIP, which
// predicts in the order-preserving integer mapping of the floats. Same
// border conventions as Field.
type IntField struct {
	Buf     []int64
	dims    []int
	strides []int
	rank    int
}

// NewIntField constructs an integer predictor; len(buf) must match dims.
func NewIntField(buf []int64, dims []int) (*IntField, error) {
	if err := grid.Validate(dims, len(buf)); err != nil {
		return nil, err
	}
	return &IntField{Buf: buf, dims: dims, strides: grid.Strides(dims), rank: len(dims)}, nil
}

// Predict returns the integer Lorenzo prediction at lin/coord.
func (f *IntField) Predict(lin int, coord []int) int64 {
	switch f.rank {
	case 1:
		if coord[0] == 0 {
			return 0
		}
		return f.Buf[lin-1]
	case 2:
		i, j := coord[0], coord[1]
		sj := f.strides[0]
		var a, b, c int64
		if j > 0 {
			a = f.Buf[lin-1]
		}
		if i > 0 {
			b = f.Buf[lin-sj]
		}
		if i > 0 && j > 0 {
			c = f.Buf[lin-sj-1]
		}
		return a + b - c
	case 3:
		i, j, k := coord[0], coord[1], coord[2]
		si, sj := f.strides[0], f.strides[1]
		var v100, v010, v001, v110, v101, v011, v111 int64
		if k > 0 {
			v001 = f.Buf[lin-1]
		}
		if j > 0 {
			v010 = f.Buf[lin-sj]
		}
		if i > 0 {
			v100 = f.Buf[lin-si]
		}
		if j > 0 && k > 0 {
			v011 = f.Buf[lin-sj-1]
		}
		if i > 0 && k > 0 {
			v101 = f.Buf[lin-si-1]
		}
		if i > 0 && j > 0 {
			v110 = f.Buf[lin-si-sj]
		}
		if i > 0 && j > 0 && k > 0 {
			v111 = f.Buf[lin-si-sj-1]
		}
		return v001 + v010 + v100 - v011 - v101 - v110 + v111
	default:
		return f.predictGeneric(lin, coord)
	}
}

// predictGeneric mirrors Field.predictGeneric in the integer domain.
func (f *IntField) predictGeneric(lin int, coord []int) int64 {
	var p int64
	for mask := 1; mask < 1<<f.rank; mask++ {
		off := 0
		ok := true
		bits := 0
		for d := 0; d < f.rank; d++ {
			if mask&(1<<d) != 0 {
				if coord[d] == 0 {
					ok = false
					break
				}
				off += f.strides[d]
				bits++
			}
		}
		if !ok {
			continue
		}
		if bits%2 == 1 {
			p += f.Buf[lin-off]
		} else {
			p -= f.Buf[lin-off]
		}
	}
	return p
}

// Walk iterates in row-major order like Field.Walk.
func (f *IntField) Walk(fn func(lin int, coord []int)) {
	coord := make([]int, f.rank)
	n := grid.Size(f.dims)
	for lin := 0; lin < n; lin++ {
		fn(lin, coord)
		for d := f.rank - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < f.dims[d] {
				break
			}
			coord[d] = 0
		}
	}
}
