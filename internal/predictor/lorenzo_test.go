package predictor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewFieldValidates(t *testing.T) {
	if _, err := NewField(make([]float64, 5), []int{2, 3}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestPredict4DMultilinear(t *testing.T) {
	// 4D Lorenzo (15-corner inclusion–exclusion) is exact on any function
	// with no 4th-order cross term; use a sum of pairwise products.
	dims := []int{3, 4, 3, 5}
	buf := make([]float64, 3*4*3*5)
	val := func(t4, z, y, x int) float64 {
		a, b, c, d := float64(t4), float64(z), float64(y), float64(x)
		return 1 + 2*a + 3*b + 4*c + 5*d + a*b + 0.5*a*c + 0.25*b*d + 0.125*c*d
	}
	i := 0
	for t4 := 0; t4 < 3; t4++ {
		for z := 0; z < 4; z++ {
			for y := 0; y < 3; y++ {
				for x := 0; x < 5; x++ {
					buf[i] = val(t4, z, y, x)
					i++
				}
			}
		}
	}
	f, err := NewField(buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	f.Walk(func(lin int, coord []int) {
		for _, c := range coord {
			if c == 0 {
				return
			}
		}
		if p := f.Predict(lin, coord); math.Abs(p-buf[lin]) > 1e-9 {
			t.Fatalf("4D prediction at %v = %v, want %v", coord, p, buf[lin])
		}
	})
}

func TestPredict1D(t *testing.T) {
	buf := []float64{3, 5, 0, 0}
	f, err := NewField(buf, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Predict(0, []int{0}); p != 0 {
		t.Fatalf("border prediction = %v", p)
	}
	if p := f.Predict(2, []int{2}); p != 5 {
		t.Fatalf("Predict(2) = %v, want 5", p)
	}
}

func TestPredict2DPlane(t *testing.T) {
	// On an exact plane v = 2x + 3y + 1 the 2D Lorenzo prediction is exact
	// for all interior points.
	dims := []int{6, 7}
	buf := make([]float64, 42)
	for y := 0; y < 6; y++ {
		for x := 0; x < 7; x++ {
			buf[y*7+x] = 2*float64(x) + 3*float64(y) + 1
		}
	}
	f, err := NewField(buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	f.Walk(func(lin int, coord []int) {
		if coord[0] == 0 || coord[1] == 0 {
			return
		}
		if p := f.Predict(lin, coord); math.Abs(p-buf[lin]) > 1e-12 {
			t.Fatalf("interior prediction at %v = %v, want %v", coord, p, buf[lin])
		}
	})
}

func TestPredict3DTrilinear(t *testing.T) {
	// 3D Lorenzo is exact on any function of the form
	// a + bx + cy + dz + exy + fxz + gyz (no xyz term).
	dims := []int{4, 5, 6}
	buf := make([]float64, 4*5*6)
	val := func(z, y, x int) float64 {
		fz, fy, fx := float64(z), float64(y), float64(x)
		return 1 + 2*fx + 3*fy + 4*fz + 0.5*fx*fy + 0.25*fx*fz + 0.125*fy*fz
	}
	i := 0
	for z := 0; z < 4; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 6; x++ {
				buf[i] = val(z, y, x)
				i++
			}
		}
	}
	f, err := NewField(buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	f.Walk(func(lin int, coord []int) {
		if coord[0] == 0 || coord[1] == 0 || coord[2] == 0 {
			return
		}
		if p := f.Predict(lin, coord); math.Abs(p-buf[lin]) > 1e-9 {
			t.Fatalf("3D prediction at %v = %v, want %v", coord, p, buf[lin])
		}
	})
}

func TestWalkVisitsAllInOrder(t *testing.T) {
	dims := []int{3, 4}
	f, err := NewField(make([]float64, 12), dims)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	var lastCoord []int
	f.Walk(func(lin int, coord []int) {
		if lin != next {
			t.Fatalf("lin = %d, want %d", lin, next)
		}
		next++
		lastCoord = append(lastCoord[:0], coord...)
	})
	if next != 12 {
		t.Fatalf("visited %d, want 12", next)
	}
	if lastCoord[0] != 2 || lastCoord[1] != 3 {
		t.Fatalf("last coord = %v", lastCoord)
	}
}

func TestIntFieldMatchesFloatOnIntegers(t *testing.T) {
	dims := []int{5, 5, 5}
	n := 125
	rng := rand.New(rand.NewSource(1))
	fbuf := make([]float64, n)
	ibuf := make([]int64, n)
	for i := range fbuf {
		v := int64(rng.Intn(2000) - 1000)
		fbuf[i] = float64(v)
		ibuf[i] = v
	}
	ff, err := NewField(fbuf, dims)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewIntField(ibuf, dims)
	if err != nil {
		t.Fatal(err)
	}
	ff.Walk(func(lin int, coord []int) {
		pf := ff.Predict(lin, coord)
		pi := fi.Predict(lin, coord)
		if int64(pf) != pi {
			t.Fatalf("mismatch at %v: float %v vs int %d", coord, pf, pi)
		}
	})
}

func TestIntFieldValidates(t *testing.T) {
	if _, err := NewIntField(make([]int64, 3), []int{4}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func BenchmarkPredict3D(b *testing.B) {
	dims := []int{64, 64, 64}
	buf := make([]float64, 64*64*64)
	rng := rand.New(rand.NewSource(2))
	for i := range buf {
		buf[i] = rng.Float64()
	}
	f, err := NewField(buf, dims)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		f.Walk(func(lin int, coord []int) {
			sum += f.Predict(lin, coord)
		})
		_ = sum
	}
}

func TestIntField2DPlane(t *testing.T) {
	// Integer Lorenzo is exact on integer planes v = 2x + 3y + 1.
	dims := []int{5, 6}
	buf := make([]int64, 30)
	for y := 0; y < 5; y++ {
		for x := 0; x < 6; x++ {
			buf[y*6+x] = int64(2*x + 3*y + 1)
		}
	}
	f, err := NewIntField(buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	f.Walk(func(lin int, coord []int) {
		if coord[0] == 0 || coord[1] == 0 {
			return
		}
		if p := f.Predict(lin, coord); p != buf[lin] {
			t.Fatalf("2D int prediction at %v = %d, want %d", coord, p, buf[lin])
		}
	})
}

func TestIntField1DBorder(t *testing.T) {
	f, err := NewIntField([]int64{7, 9, 11}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Predict(0, []int{0}); p != 0 {
		t.Fatalf("border = %d", p)
	}
	if p := f.Predict(2, []int{2}); p != 9 {
		t.Fatalf("Predict(2) = %d", p)
	}
}

func TestIntFieldWalkOrder(t *testing.T) {
	f, err := NewIntField(make([]int64, 8), []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	f.Walk(func(lin int, coord []int) {
		if lin != next {
			t.Fatalf("lin %d want %d", lin, next)
		}
		next++
	})
	if next != 8 {
		t.Fatalf("visited %d", next)
	}
}

func TestIntField4DMatchesFloat(t *testing.T) {
	dims := []int{3, 3, 3, 3}
	n := 81
	rng := rand.New(rand.NewSource(6))
	fbuf := make([]float64, n)
	ibuf := make([]int64, n)
	for i := range fbuf {
		v := int64(rng.Intn(2000) - 1000)
		fbuf[i] = float64(v)
		ibuf[i] = v
	}
	ff, err := NewField(fbuf, dims)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewIntField(ibuf, dims)
	if err != nil {
		t.Fatal(err)
	}
	ff.Walk(func(lin int, coord []int) {
		if int64(ff.Predict(lin, coord)) != fi.Predict(lin, coord) {
			t.Fatalf("4D int/float mismatch at %v", coord)
		}
	})
}

func TestFieldDims(t *testing.T) {
	f, err := NewField(make([]float64, 6), []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	d := f.Dims()
	if len(d) != 2 || d[0] != 2 || d[1] != 3 {
		t.Fatalf("Dims = %v", d)
	}
}

func TestPredict2DBorders(t *testing.T) {
	buf := []float64{1, 2, 3, 4, 5, 6}
	f, err := NewField(buf, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Top row: only left neighbor.
	if p := f.Predict(1, []int{0, 1}); p != 1 {
		t.Fatalf("top row = %v", p)
	}
	// Left column: only up neighbor.
	if p := f.Predict(3, []int{1, 0}); p != 1 {
		t.Fatalf("left col = %v", p)
	}
	// Origin: zero.
	if p := f.Predict(0, []int{0, 0}); p != 0 {
		t.Fatalf("origin = %v", p)
	}
}
