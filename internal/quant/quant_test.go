package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTripWithinBound(t *testing.T) {
	q := New(0.01, 65536)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		pred := rng.NormFloat64() * 10
		val := pred + rng.NormFloat64() // residual mostly within range
		code, recon, ok := q.Quantize(val, pred)
		if !ok {
			continue
		}
		if code == Unpredictable {
			t.Fatal("ok result must not use the reserved code")
		}
		if math.Abs(recon-val) > q.Bound() {
			t.Fatalf("recon error %g > bound", math.Abs(recon-val))
		}
		if r2 := q.Reconstruct(code, pred); r2 != recon {
			t.Fatalf("Reconstruct mismatch: %v vs %v", r2, recon)
		}
	}
}

func TestQuantizeExactResidual(t *testing.T) {
	q := New(0.5, 1024)
	code, recon, ok := q.Quantize(10.0, 10.0)
	if !ok || math.Abs(recon-10.0) > 0.5 {
		t.Fatalf("zero residual: code=%d recon=%v ok=%v", code, recon, ok)
	}
	if code != 1024/2+1 {
		t.Fatalf("zero residual code = %d, want center %d", code, 1024/2+1)
	}
}

func TestQuantizeOutOfRange(t *testing.T) {
	q := New(1e-6, 64)
	_, _, ok := q.Quantize(100.0, 0.0) // residual 1e8 bins away
	if ok {
		t.Fatal("expected unpredictable for huge residual")
	}
}

func TestQuantizeNegativeResidualSymmetric(t *testing.T) {
	q := New(0.1, 256)
	cPos, _, ok1 := q.Quantize(1.0+0.35, 1.0)
	cNeg, _, ok2 := q.Quantize(1.0-0.35, 1.0)
	if !ok1 || !ok2 {
		t.Fatal("residuals should be quantizable")
	}
	center := 256/2 + 1
	if cPos-center != -(cNeg - center) {
		t.Fatalf("asymmetric codes: %d and %d around %d", cPos, cNeg, center)
	}
}

func TestZeroBound(t *testing.T) {
	q := New(0, 1024)
	if _, _, ok := q.Quantize(1, 1); ok {
		t.Fatal("zero bound must mark everything unpredictable")
	}
}

func TestTinyIntervals(t *testing.T) {
	q := New(0.5, 1) // clamped to 2
	if q.Alphabet() < 3 {
		t.Fatalf("alphabet = %d", q.Alphabet())
	}
}

func TestQuickBoundInvariant(t *testing.T) {
	f := func(val, pred float64, boundSel uint8) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		bound := math.Pow(10, float64(boundSel%12)-6)
		q := New(bound, 65536)
		_, recon, ok := q.Quantize(val, pred)
		if !ok {
			return true
		}
		return math.Abs(recon-val) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodesWithinAlphabet(t *testing.T) {
	q := New(0.01, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		code, _, ok := q.Quantize(rng.NormFloat64(), rng.NormFloat64())
		if !ok {
			continue
		}
		if code < 1 || code >= q.Alphabet() {
			t.Fatalf("code %d outside alphabet %d", code, q.Alphabet())
		}
	}
}

func BenchmarkQuantize(b *testing.B) {
	q := New(1e-3, 65536)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 4096)
	preds := make([]float64, 4096)
	for i := range vals {
		preds[i] = rng.NormFloat64()
		vals[i] = preds[i] + rng.NormFloat64()*0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 4095
		q.Quantize(vals[j], preds[j])
	}
}
