// Package quant implements SZ's linear-scaling quantization: prediction
// errors are mapped to integer codes on a uniform grid of bin width
// 2×(absolute error bound), so that reconstruction from the code keeps the
// point within the bound. Code 0 is reserved for "unpredictable" points
// whose error falls outside the representable code range.
package quant

import "math"

// Unpredictable is the reserved code for points that cannot be represented
// within the quantization range and are stored verbatim instead.
const Unpredictable = 0

// Quantizer maps prediction residuals to codes in [0, Radius*2] with the
// zero residual at the center code; code 0 stays reserved.
type Quantizer struct {
	bound  float64 // absolute error bound
	bin    float64 // 2*bound
	radius int     // half the number of intervals
}

// New returns a Quantizer with the given absolute error bound and interval
// count (the SZ default is 65536; must be >= 2 and even).
func New(bound float64, intervals int) *Quantizer {
	if intervals < 2 {
		intervals = 2
	}
	return &Quantizer{bound: bound, bin: 2 * bound, radius: intervals / 2}
}

// Alphabet returns the code alphabet size (codes are in [0, Alphabet)).
func (q *Quantizer) Alphabet() int { return 2*q.radius + 1 }

// Bound returns the absolute error bound.
func (q *Quantizer) Bound() float64 { return q.bound }

// Quantize returns the code for reconstructing value from prediction, plus
// the reconstructed value. ok is false (code Unpredictable) when the
// residual exceeds the code range or the reconstruction would violate the
// bound due to floating-point rounding — the caller must then store the
// value verbatim.
func (q *Quantizer) Quantize(value, prediction float64) (code int, recon float64, ok bool) {
	if q.bound <= 0 {
		return Unpredictable, value, false
	}
	diff := value - prediction
	// A NaN/Inf prediction (e.g. a neighbor was an unpredictable NaN) must
	// not reach the int conversion below: NaN comparisons would silently
	// pass the bound check.
	if math.IsNaN(diff) || math.IsInf(diff, 0) {
		return Unpredictable, value, false
	}
	var idx int
	if diff >= 0 {
		idx = int(diff/q.bin + 0.5)
	} else {
		idx = -int(-diff/q.bin + 0.5)
	}
	if idx > q.radius-1 || idx < -(q.radius-1) {
		return Unpredictable, value, false
	}
	recon = prediction + float64(idx)*q.bin
	// Verify the bound survived rounding; SZ performs the same check.
	if d := recon - value; d > q.bound || d < -q.bound {
		return Unpredictable, value, false
	}
	return idx + q.radius + 1, recon, true
}

// Reconstruct inverts Quantize for a non-Unpredictable code.
func (q *Quantizer) Reconstruct(code int, prediction float64) float64 {
	return prediction + float64(code-q.radius-1)*q.bin
}
