// Package bspline implements uniform cubic B-spline evaluation and banded
// least-squares fitting. It is the curve-approximation substrate of the
// ISABELA baseline, which fits a cubic B-spline to each sorted window of
// data (Lakshminarasimhan et al., CCPE 2013).
package bspline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/floatbits"
)

// ErrSingular is returned when the normal-equation system cannot be solved,
// e.g. with fewer samples than control points.
var ErrSingular = errors.New("bspline: singular fitting system")

// Curve is a uniform cubic B-spline over the parameter range [0, 1] with
// len(Ctrl) control points (minimum 4).
type Curve struct {
	Ctrl []float64
}

// basis evaluates the four cubic B-spline basis functions at local
// parameter u in [0,1).
func basis(u float64) (b0, b1, b2, b3 float64) {
	v := 1 - u
	b0 = v * v * v / 6
	b1 = (3*u*u*u - 6*u*u + 4) / 6
	b2 = (-3*u*u*u + 3*u*u + 3*u + 1) / 6
	b3 = u * u * u / 6
	return
}

// segment maps global parameter t in [0,1] to a segment index and local u,
// for a spline with c control points (c-3 segments).
func segment(t float64, c int) (seg int, u float64) {
	nseg := c - 3
	x := t * float64(nseg)
	seg = int(x)
	if seg >= nseg {
		seg = nseg - 1
	}
	if seg < 0 {
		seg = 0
	}
	u = x - float64(seg)
	return
}

// Eval evaluates the curve at t in [0, 1].
func (c *Curve) Eval(t float64) float64 {
	seg, u := segment(t, len(c.Ctrl))
	b0, b1, b2, b3 := basis(u)
	return b0*c.Ctrl[seg] + b1*c.Ctrl[seg+1] + b2*c.Ctrl[seg+2] + b3*c.Ctrl[seg+3]
}

// EvalAll evaluates the curve at n uniformly spaced parameters t_i =
// i/(n-1) (or t_0 = 0 when n == 1), filling dst and returning it.
func (c *Curve) EvalAll(n int, dst []float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		dst[i] = c.Eval(t)
	}
	return dst
}

// Fit computes the least-squares cubic B-spline with nctrl control points
// through the samples y (taken at uniform parameters). nctrl must be >= 4
// and len(y) >= nctrl for a well-posed system.
func Fit(y []float64, nctrl int) (*Curve, error) {
	n := len(y)
	if nctrl < 4 {
		return nil, fmt.Errorf("bspline: need >= 4 control points, got %d", nctrl)
	}
	if n < nctrl {
		return nil, fmt.Errorf("%w: %d samples < %d control points", ErrSingular, n, nctrl)
	}
	// Normal equations A^T A x = A^T y. Each row of A has 4 consecutive
	// nonzeros, so A^T A is banded with half-bandwidth 3.
	const hb = 3
	ata := make([][7]float64, nctrl) // ata[i][j-i+3] = (A^T A)[i][j]
	aty := make([]float64, nctrl)
	for r := 0; r < n; r++ {
		t := 0.0
		if n > 1 {
			t = float64(r) / float64(n-1)
		}
		seg, u := segment(t, nctrl)
		var b [4]float64
		b[0], b[1], b[2], b[3] = basis(u)
		for i := 0; i < 4; i++ {
			ci := seg + i
			aty[ci] += b[i] * y[r]
			for j := 0; j < 4; j++ {
				cj := seg + j
				d := cj - ci + hb
				if d >= 0 && d < 7 {
					ata[ci][d] += b[i] * b[j]
				}
			}
		}
	}
	// Tiny Tikhonov ridge keeps the system well-conditioned when samples
	// cluster (e.g. long constant runs in sorted data).
	for i := 0; i < nctrl; i++ {
		ata[i][hb] += 1e-12
	}
	x, err := solveBanded(ata, aty, hb)
	if err != nil {
		return nil, err
	}
	return &Curve{Ctrl: x}, nil
}

// solveBanded performs in-place Gaussian elimination (no pivoting — the
// normal matrix is symmetric positive definite) on a banded system.
func solveBanded(a [][7]float64, b []float64, hb int) ([]float64, error) {
	n := len(a)
	for k := 0; k < n; k++ {
		piv := a[k][hb]
		if floatbits.IsZero(piv) || math.IsNaN(piv) {
			return nil, ErrSingular
		}
		for i := k + 1; i <= k+hb && i < n; i++ {
			d := k - i + hb // column k in row i's band
			f := a[i][d] / piv
			if floatbits.IsZero(f) {
				continue
			}
			a[i][d] = 0
			for j := k + 1; j <= k+hb && j < n; j++ {
				a[i][j-i+hb] -= f * a[k][j-k+hb]
			}
			b[i] -= f * b[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j <= i+hb && j < n; j++ {
			s -= a[i][j-i+hb] * x[j]
		}
		piv := a[i][hb]
		if floatbits.IsZero(piv) || math.IsNaN(piv) {
			return nil, ErrSingular
		}
		x[i] = s / piv
	}
	return x, nil
}
