package bspline

import (
	"math"
	"math/rand"
	"testing"
)

func TestBasisPartitionOfUnity(t *testing.T) {
	for u := 0.0; u < 1.0; u += 0.01 {
		b0, b1, b2, b3 := basis(u)
		if s := b0 + b1 + b2 + b3; math.Abs(s-1) > 1e-12 {
			t.Fatalf("basis sum at u=%g is %g", u, s)
		}
		for _, b := range []float64{b0, b1, b2, b3} {
			if b < 0 {
				t.Fatalf("negative basis value at u=%g", u)
			}
		}
	}
}

func TestFitConstant(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		y[i] = 7.5
	}
	c, err := Fit(y, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := c.EvalAll(100, nil)
	for i, v := range out {
		if math.Abs(v-7.5) > 1e-8 {
			t.Fatalf("constant fit at %d = %g", i, v)
		}
	}
}

func TestFitLine(t *testing.T) {
	n := 200
	y := make([]float64, n)
	for i := range y {
		y[i] = 3*float64(i)/float64(n-1) - 1
	}
	c, err := Fit(y, 12)
	if err != nil {
		t.Fatal(err)
	}
	out := c.EvalAll(n, nil)
	for i := range y {
		if math.Abs(out[i]-y[i]) > 1e-6 {
			t.Fatalf("line fit at %d: %g vs %g", i, out[i], y[i])
		}
	}
}

func TestFitSmoothCurve(t *testing.T) {
	n := 1024
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = math.Sin(2*math.Pi*x) + 0.5*math.Cos(6*math.Pi*x)
	}
	c, err := Fit(y, 40)
	if err != nil {
		t.Fatal(err)
	}
	out := c.EvalAll(n, nil)
	maxErr := 0.0
	for i := range y {
		if d := math.Abs(out[i] - y[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.01 {
		t.Fatalf("smooth fit max error %g", maxErr)
	}
}

func TestFitMonotoneSortedData(t *testing.T) {
	// The ISABELA use case: sorted (monotone) data fits very well.
	rng := rand.New(rand.NewSource(1))
	n := 1024
	y := make([]float64, n)
	v := 0.0
	for i := range y {
		v += rng.Float64()
		y[i] = v
	}
	c, err := Fit(y, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := c.EvalAll(n, nil)
	rng2 := 0.0
	for i := range y {
		if d := math.Abs(out[i] - y[i]); d > rng2 {
			rng2 = d
		}
	}
	span := y[n-1] - y[0]
	if rng2 > span*0.01 {
		t.Fatalf("sorted-data fit error %g of span %g", rng2, span)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(make([]float64, 10), 3); err == nil {
		t.Fatal("nctrl<4 accepted")
	}
	if _, err := Fit(make([]float64, 3), 8); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

func TestFitExactSamplesEqualsCtrl(t *testing.T) {
	// n == nctrl is admissible (square system).
	y := []float64{0, 1, 2, 3}
	c, err := Fit(y, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := c.EvalAll(4, nil)
	for i := range y {
		if math.Abs(out[i]-y[i]) > 1e-6 {
			t.Fatalf("square fit at %d: %g vs %g", i, out[i], y[i])
		}
	}
}

func TestEvalAllSingle(t *testing.T) {
	c := &Curve{Ctrl: []float64{1, 1, 1, 1}}
	out := c.EvalAll(1, nil)
	if len(out) != 1 || math.Abs(out[0]-1) > 1e-12 {
		t.Fatalf("single eval = %v", out)
	}
}

func TestEvalEndpointsClamped(t *testing.T) {
	c := &Curve{Ctrl: []float64{0, 1, 2, 3, 4, 5}}
	// t slightly out of range must not panic or index out of bounds.
	_ = c.Eval(0)
	_ = c.Eval(1)
	_ = c.Eval(1.0000001)
	_ = c.Eval(-0.0000001)
}

func BenchmarkFit1024x30(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	y := make([]float64, 1024)
	v := 0.0
	for i := range y {
		v += rng.Float64()
		y[i] = v
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(y, 30); err != nil {
			b.Fatal(err)
		}
	}
}
