// Package codecerr defines the module's shared decode-error taxonomy.
// The sentinels live in an internal leaf package so that both the root
// repro package and the internal container parsers (streamfmt, and any
// future format package) can wrap the same identities with %w; the root
// package re-exports them as repro.ErrCorrupted et al. so callers use
// errors.Is against one well-known set.
//
// Taxonomy:
//
//   - ErrCorrupted: the input is structurally damaged — bad framing, a
//     checksum mismatch, an impossible geometry. The bytes are wrong.
//   - ErrTruncated: the input ends before the container's structure
//     does. ErrTruncated wraps ErrCorrupted, so errors.Is(err,
//     ErrCorrupted) also holds: truncation is a species of damage, but
//     one a caller may want to distinguish (an interrupted transfer can
//     be resumed; bit rot cannot).
//   - ErrLimitExceeded: the input is well-formed but declares resources
//     beyond the caller's configured DecodeLimits. The bytes may be
//     fine; the caller refused to decode them at this size.
//   - ErrUnsupportedFormat: the input does not start with a container
//     this module knows (wrong magic or version) — not damage, just not
//     ours.
//
// Genuine I/O failures from the underlying reader are never folded into
// these sentinels: they are propagated wrapped, so errors.Is against
// the reader's own error keeps working.
package codecerr

import (
	"errors"
	"fmt"
)

var (
	// ErrCorrupted reports a structurally damaged container.
	ErrCorrupted = errors.New("repro: corrupt stream")

	// ErrTruncated reports input that ends mid-structure. It wraps
	// ErrCorrupted.
	ErrTruncated = fmt.Errorf("%w: truncated input", ErrCorrupted)

	// ErrLimitExceeded reports input that declares resources beyond the
	// configured decode limits.
	ErrLimitExceeded = errors.New("repro: decode limit exceeded")

	// ErrUnsupportedFormat reports input whose magic/version is not a
	// container this module decodes.
	ErrUnsupportedFormat = errors.New("repro: unsupported container format")
)
