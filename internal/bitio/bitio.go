// Package bitio provides MSB-first bit-level readers and writers plus
// variable-length integer encodings. It is the substrate shared by the
// entropy-coding stages of every compressor in this repository (Huffman,
// ZFP's embedded bit-plane coder, FPZIP's residual coder and ISABELA's
// index/correction streams).
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the
// underlying buffer.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of stream")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within the low `n` positions
	n    uint   // number of pending bits in cur (0..63)
	bits uint64 // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b uint) {
	v := uint64(0)
	if b != 0 {
		v = 1
	}
	w.cur = w.cur<<1 | v
	w.n++
	w.bits++
	if w.n == 64 {
		w.flushWord()
	}
}

// WriteBool appends a single bit from a bool.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		// Invariant: widths are compile-time constants or coder-derived
		// values ≤ 64; encode-side only, never reached by stream content.
		panic(fmt.Sprintf("bitio: WriteBits width %d > 64", width)) //lint:allow nopanic caller invariant, not input-driven
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	// Split across the 64-bit accumulator boundary if needed.
	if w.n+width <= 64 {
		w.cur = w.cur<<width | v
		w.n += width
		w.bits += uint64(width)
		if w.n == 64 {
			w.flushWord()
		}
		return
	}
	hi := 64 - w.n
	lo := width - hi
	w.cur = w.cur<<hi | v>>lo
	w.n = 64
	w.bits += uint64(hi)
	w.flushWord()
	w.cur = v & ((1 << lo) - 1)
	w.n = lo
	w.bits += uint64(lo)
}

func (w *Writer) flushWord() {
	w.buf = binary.BigEndian.AppendUint64(w.buf, w.cur)
	w.cur = 0
	w.n = 0
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() uint64 { return w.bits }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// accumulated buffer. The Writer remains usable; subsequent writes continue
// appending after the flushed content only if the bit count was a multiple
// of 8, so callers normally call Bytes exactly once at the end.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.n > 0 {
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], w.cur<<(64-w.n)) // left-align
		out = append(out, tmp[:(w.n+7)/8]...)
	}
	return out
}

// Reset discards all written data, retaining the underlying capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.n = 0
	w.bits = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // loaded bits, consumed from the MSB side of the low n bits
	n    uint   // bits available in cur
	read uint64 // total bits consumed
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// fill loads as many whole bytes as fit into the accumulator.
func (r *Reader) fill() {
	for r.n <= 56 && r.pos < len(r.buf) {
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
}

// ReadBit reads one bit, returning 0 or 1.
func (r *Reader) ReadBit() (uint, error) {
	if r.n == 0 {
		r.fill()
		if r.n == 0 {
			return 0, ErrUnexpectedEOF
		}
	}
	r.n--
	r.read++
	return uint(r.cur>>r.n) & 1, nil
}

// ReadBool reads one bit as a bool.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b == 1, err
}

// ReadBits reads `width` bits (MSB-first) into the low bits of the result.
// width must be in [0, 64].
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		// Invariant: decoders request widths from compile-time constants or
		// validated code lengths (≤ huffman.MaxCodeLen = 58); a corrupt
		// stream can change *which* bits are read, never the width bound.
		panic(fmt.Sprintf("bitio: ReadBits width %d > 64", width)) //lint:allow nopanic caller invariant, not input-driven
	}
	if width == 0 {
		return 0, nil
	}
	if r.n < width {
		r.fill()
	}
	if r.n >= width {
		r.n -= width
		r.read += uint64(width)
		v := r.cur >> r.n
		if width < 64 {
			v &= (1 << width) - 1
		}
		return v, nil
	}
	// Accumulator short (can only happen near EOF or width>56): read in two parts.
	have := r.n
	if have == 0 && r.pos >= len(r.buf) {
		return 0, ErrUnexpectedEOF
	}
	hi, err := r.ReadBits(have)
	if err != nil {
		return 0, err
	}
	rest := width - have
	lo, err := r.ReadBits(rest)
	if err != nil {
		return 0, err
	}
	return hi<<rest | lo, nil
}

// BitsRead reports the total number of bits consumed so far.
func (r *Reader) BitsRead() uint64 { return r.read }

// PeekBits returns up to `width` bits (MSB-first, right-aligned) without
// consuming them. got reports how many bits were actually available; when
// got < width the stream is near its end. width must be ≤ 56 so the
// accumulator can always hold a full peek.
func (r *Reader) PeekBits(width uint) (v uint64, got uint) {
	if width > 56 {
		// Invariant: the only peeking decoder is the Huffman LUT, whose
		// width is capped at lutMaxBits = 12; not reachable from input.
		panic(fmt.Sprintf("bitio: PeekBits width %d > 56", width)) //lint:allow nopanic caller invariant, not input-driven
	}
	if r.n < width {
		r.fill()
	}
	got = width
	if r.n < width {
		got = r.n
	}
	if got == 0 {
		return 0, 0
	}
	v = r.cur >> (r.n - got)
	if got < 64 {
		v &= (1 << got) - 1
	}
	return v, got
}

// Skip consumes exactly `count` bits that a prior PeekBits reported
// available.
func (r *Reader) Skip(count uint) {
	if count > r.n {
		// Invariant: callers only Skip counts that the immediately preceding
		// PeekBits reported available (r.n can only grow in between).
		panic("bitio: Skip beyond peeked bits") //lint:allow nopanic caller invariant, not input-driven
	}
	r.n -= count
	r.read += uint64(count)
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	rem := r.n % 8
	r.n -= rem
	r.read += uint64(rem)
}

// AppendUvarint appends x to dst using the standard LEB128-style base-128
// varint used throughout the container formats, and returns the extended
// slice.
func AppendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x&0x7f)|0x80)
		x >>= 7
	}
	return append(dst, byte(x&0x7f))
}

// Uvarint decodes a base-128 varint from buf, returning the value and the
// number of bytes consumed. n == 0 signals truncated or invalid input.
func Uvarint(buf []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range buf {
		if i == 10 {
			return 0, 0 // overflow
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, 0
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

// ZigZag maps a signed integer to an unsigned one with small absolute
// values mapping to small results: 0,-1,1,-2,2 → 0,1,2,3,4.
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
