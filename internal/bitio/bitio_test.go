package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.BitsWritten(), uint64(len(pattern)); got != want {
		t.Fatalf("BitsWritten = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	w := NewWriter(64)
	vals := []struct {
		v uint64
		n uint
	}{
		{0x1, 1}, {0x3, 2}, {0x7f, 7}, {0xff, 8}, {0x1234, 16},
		{0xdeadbeef, 32}, {0x0123456789abcdef, 64}, {0, 0}, {0x15, 5},
		{1<<63 | 1, 64}, {0x3ffff, 18},
	}
	for _, tc := range vals {
		w.WriteBits(tc.v, tc.n)
	}
	r := NewReader(w.Bytes())
	for i, tc := range vals {
		got, err := r.ReadBits(tc.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		want := tc.v
		if tc.n < 64 {
			want &= (1 << tc.n) - 1
		}
		if got != want {
			t.Fatalf("field %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestWriterBytesPadding(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len = %d, want 1", len(b))
	}
	if b[0] != 0b10100000 {
		t.Fatalf("byte = %#08b, want 10100000", b[0])
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("ReadBits(8): %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestReaderAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xab, 8) // crosses into second byte
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if got := r.BitsRead(); got != 8 {
		t.Fatalf("BitsRead after align = %d, want 8", got)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xffff, 16)
	w.Reset()
	if w.BitsWritten() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("Reset did not clear state")
	}
	w.WriteBits(0xa, 4)
	if b := w.Bytes(); len(b) != 1 || b[0] != 0xa0 {
		t.Fatalf("post-reset bytes = %x", b)
	}
}

// Property: any sequence of (value,width) fields round-trips.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%200) + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.Intn(65))
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mixed bit/field writes round-trip.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			bit   bool
			v     uint64
			width uint
		}
		ops := make([]op, rng.Intn(300)+1)
		w := NewWriter(0)
		for i := range ops {
			if rng.Intn(2) == 0 {
				ops[i] = op{bit: true, v: uint64(rng.Intn(2)), width: 1}
				w.WriteBit(uint(ops[i].v))
			} else {
				wd := uint(rng.Intn(64) + 1)
				v := rng.Uint64() & ((1 << wd) - 1)
				if wd == 64 {
					v = rng.Uint64()
				}
				ops[i] = op{v: v, width: wd}
				w.WriteBits(v, wd)
			}
		}
		r := NewReader(w.Bytes())
		for _, o := range ops {
			if o.bit {
				b, err := r.ReadBit()
				if err != nil || uint64(b) != o.v {
					return false
				}
			} else {
				v, err := r.ReadBits(o.width)
				if err != nil || v != o.v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		got, n := Uvarint(buf)
		if n != len(buf) || got != v {
			t.Fatalf("Uvarint(%d): got %d, n=%d len=%d", v, got, n, len(buf))
		}
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := AppendUvarint(nil, 1<<40)
	if _, n := Uvarint(buf[:2]); n != 0 {
		t.Fatalf("truncated varint should return n=0, got %d", n)
	}
	if _, n := Uvarint(nil); n != 0 {
		t.Fatalf("empty varint should return n=0, got %d", n)
	}
}

func TestUvarintOverflow(t *testing.T) {
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, n := Uvarint(buf); n != 0 {
		t.Fatalf("overflowing varint should return n=0, got %d", n)
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 1<<62 - 1: 1<<63 - 2}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
		if back := UnZigZag(want); back != v {
			t.Errorf("UnZigZag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestQuickZigZag(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 100000; i++ {
		w.WriteBits(uint64(i), 17)
	}
	data := w.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			r = NewReader(data)
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekAndSkip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011001110001111, 16)
	r := NewReader(w.Bytes())
	v, got := r.PeekBits(6)
	if got != 6 || v != 0b101100 {
		t.Fatalf("peek = %b (%d bits)", v, got)
	}
	// Peek must not consume.
	v2, got2 := r.PeekBits(6)
	if v2 != v || got2 != got {
		t.Fatal("peek consumed bits")
	}
	r.Skip(6)
	rest, err := r.ReadBits(10)
	if err != nil || rest != 0b1110001111 {
		t.Fatalf("rest = %b, %v", rest, err)
	}
	// Near EOF: fewer bits available than requested.
	v, got = r.PeekBits(8)
	if got != 0 || v != 0 {
		t.Fatalf("empty peek = %b (%d bits)", v, got)
	}
}

func TestPeekNearEOF(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes())
	// The writer padded to a byte, so 8 bits exist.
	if _, got := r.PeekBits(16); got != 8 {
		t.Fatalf("got %d bits", got)
	}
}

func TestQuickPeekMatchesRead(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(0)
		n := rng.Intn(100) + 10
		for i := 0; i < n; i++ {
			w.WriteBits(rng.Uint64(), uint(rng.Intn(33)))
		}
		r := NewReader(w.Bytes())
		for {
			width := uint(rng.Intn(24) + 1)
			v, got := r.PeekBits(width)
			if got == 0 {
				return true
			}
			rv, err := r.ReadBits(got)
			if err != nil || rv != v {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
