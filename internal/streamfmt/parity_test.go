package streamfmt

// Parity-layer unit tests: v2 framing round trip, frame-order
// discipline, salvage repair, and the seekable path's parity-aware
// offset table and chunk reconstruction.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func parityHeader(k int) Header {
	return Header{Algo: 3, Dims: []int{10, 4}, ChunkRows: 2, ParityK: k}
}

// parityPayloads returns 5 chunk payloads of deliberately unequal
// lengths so parity zero-padding is exercised.
func parityPayloads() [][]byte {
	return [][]byte{
		[]byte("chunk-zero"),
		[]byte("c1"),
		[]byte("chunk-two-is-much-longer-than-the-rest"),
		[]byte("chunk-3"),
		[]byte("z"),
	}
}

func TestParityRoundTrip(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	if stream[1] != VersionParity {
		t.Fatalf("version byte = 0x%02x, want 0x%02x", stream[1], VersionParity)
	}

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	h := r.Header()
	if h.ParityK != 2 {
		t.Fatalf("ParityK = %d, want 2", h.ParityK)
	}
	if got := h.Groups(); got != 3 {
		t.Fatalf("Groups() = %d, want 3 (groups {0,1},{2,3},{4})", got)
	}
	if lo, hi := h.GroupRange(2); lo != 4 || hi != 5 {
		t.Fatalf("GroupRange(2) = [%d,%d), want [4,5)", lo, hi)
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := r.Next(scratch)
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: got %q want %q", i, got, want)
		}
		scratch = got
	}
	if _, err := r.Next(scratch); err != io.EOF {
		t.Fatalf("after index: err = %v, want io.EOF", err)
	}
	if r.ParityRead() != 3 {
		t.Fatalf("ParityRead = %d, want 3", r.ParityRead())
	}
	if r.Consumed() != int64(len(stream)) {
		t.Fatalf("Consumed = %d, stream is %d bytes", r.Consumed(), len(stream))
	}
}

// TestParityDisabledStaysV1 pins the compatibility guarantee: a
// parity-free writer emits the version 0x01 layout with no parity
// frames and no v2 index extension, byte-compatible with pre-parity
// readers.
func TestParityDisabledStaysV1(t *testing.T) {
	payloads := parityPayloads()
	h := parityHeader(0)
	stream := buildStream(t, h, payloads)
	if stream[1] != Version {
		t.Fatalf("version byte = 0x%02x, want v1 0x%02x", stream[1], Version)
	}
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().ParityK != 0 {
		t.Fatalf("ParityK = %d on a v1 container", r.Header().ParityK)
	}
	// A v1 container of the same payloads differs from the v2 container
	// only by the parity layer; sanity-check that enabling parity
	// actually grows the stream (frames + index extension).
	v2 := buildStream(t, parityHeader(2), payloads)
	if len(v2) <= len(stream) {
		t.Fatalf("v2 container (%d bytes) not larger than v1 (%d bytes)", len(v2), len(stream))
	}
}

// parityFrameRegions parses a built container and returns the [off,end)
// extent of every chunk frame and parity frame, via the salvage scan
// (which reports exact extents from the verified index).
func parityFrameRegions(t *testing.T, stream []byte) (chunks, parity [][2]int64) {
	t.Helper()
	rep, err := ScanSalvage(stream, Limits{})
	if err != nil {
		t.Fatalf("ScanSalvage on clean container: %v", err)
	}
	if !rep.IndexOK {
		t.Fatal("clean container's index did not verify")
	}
	for _, f := range rep.Frames {
		chunks = append(chunks, [2]int64{f.Offset, f.End})
	}
	for _, p := range rep.Parity {
		parity = append(parity, [2]int64{p.Offset, p.End})
	}
	return chunks, parity
}

// TestParityFrameOrdering rejects structurally misplaced parity frames:
// a missing parity frame (chunk where parity is due), a parity frame in
// a parity-free container, and an index arriving before the final
// group's parity frame.
func TestParityFrameOrdering(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(1), payloads) // parity after every chunk
	chunks, parity := parityFrameRegions(t, stream)

	t.Run("chunk-where-parity-due", func(t *testing.T) {
		// Remove the first parity frame: c0 is then followed by c1 while
		// group 0's parity is still owed.
		mut := append([]byte(nil), stream[:parity[0][0]]...)
		mut = append(mut, stream[parity[0][1]:]...)
		readAllExpectCorrupt(t, mut, "parity frame is due")
	})
	t.Run("parity-in-parity-free-container", func(t *testing.T) {
		v1 := buildStream(t, parityHeader(0), payloads)
		// Splice a well-formed parity frame (from the v2 container) in
		// front of the v1 container's first chunk frame.
		hdrLen := headerLen(t, v1)
		mut := append([]byte(nil), v1[:hdrLen]...)
		mut = append(mut, stream[parity[0][0]:parity[0][1]]...)
		mut = append(mut, v1[hdrLen:]...)
		readAllExpectCorrupt(t, mut, "parity-free")
	})
	t.Run("parity-before-any-chunk", func(t *testing.T) {
		hdrLen := headerLen(t, stream)
		mut := append([]byte(nil), stream[:hdrLen]...)
		mut = append(mut, stream[parity[0][0]:parity[0][1]]...)
		mut = append(mut, stream[hdrLen:]...)
		readAllExpectCorrupt(t, mut, "without preceding")
	})
	t.Run("index-before-final-parity", func(t *testing.T) {
		// Drop the last group's parity frame so the index follows the
		// final chunk directly.
		last := len(parity) - 1
		mut := append([]byte(nil), stream[:parity[last][0]]...)
		mut = append(mut, stream[parity[last][1]:]...)
		readAllExpectCorrupt(t, mut, "before the final group")
	})
	_ = chunks
}

// headerLen returns the parsed header's length for a container.
func headerLen(t *testing.T, stream []byte) int64 {
	t.Helper()
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	return r.Consumed()
}

// readAllExpectCorrupt drains a container and requires a typed
// ErrCorrupt mentioning wantSub before any clean EOF.
func readAllExpectCorrupt(t *testing.T, stream []byte, wantSub string) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("header rejected: %v", err)
	}
	for {
		_, err := r.Next(nil)
		if err == io.EOF {
			t.Fatal("malformed container reached verified EOF")
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			if wantSub != "" && !bytes.Contains([]byte(err.Error()), []byte(wantSub)) {
				t.Fatalf("err = %q, want substring %q", err, wantSub)
			}
			return
		}
	}
}

// TestParityTamperAndTruncate runs the v1 integrity sweeps over a v2
// container: no byte flip silently alters a payload, and no truncation
// reaches a verified EOF.
func TestParityTamperAndTruncate(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	for pos := 0; pos < len(stream); pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0xFF
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for i := 0; ; i++ {
			p, err := r.Next(nil)
			if err != nil {
				break
			}
			if i >= len(payloads) || !bytes.Equal(p, payloads[i]) {
				t.Fatalf("flip at %d: chunk %d silently altered", pos, i)
			}
		}
	}
	for cut := len(stream) - 1; cut >= 0; cut-- {
		r, err := NewReader(bytes.NewReader(stream[:cut]))
		if err != nil {
			continue
		}
		for {
			_, err := r.Next(nil)
			if err == io.EOF {
				t.Fatalf("truncation at %d/%d reached verified EOF", cut, len(stream))
			}
			if err != nil {
				break
			}
		}
	}
}

// TestParitySalvageRepair sweeps single-chunk damage across every chunk
// of a parity container: the salvage scan must reconstruct the lost
// payload byte-identically from parity and siblings.
func TestParitySalvageRepair(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, _ := parityFrameRegions(t, stream)

	for i, ext := range chunks {
		mut := append([]byte(nil), stream...)
		mut[ext[1]-1] ^= 0xA5 // last payload byte of chunk i
		rep, err := ScanSalvage(mut, Limits{})
		if err != nil {
			t.Fatalf("chunk %d damaged: ScanSalvage: %v", i, err)
		}
		if !rep.IndexOK {
			t.Fatalf("chunk %d damaged: index should still verify", i)
		}
		f := rep.Frames[i]
		if f.Damaged || !f.Repaired {
			t.Fatalf("chunk %d: Damaged=%v Repaired=%v (reason %q), want repaired", i, f.Damaged, f.Repaired, f.Reason)
		}
		if !bytes.Equal(f.Payload, payloads[i]) {
			t.Fatalf("chunk %d: repaired payload %q != original %q", i, f.Payload, payloads[i])
		}
		for j, g := range rep.Frames {
			if g.Damaged {
				t.Fatalf("chunk %d damaged: chunk %d reported lost", i, j)
			}
		}
	}
}

// TestParitySalvageMultiLoss damages two chunks of the same group: both
// must stay lost (repair covers exactly one loss per group), and a
// damaged chunk in a *different* group must still repair.
func TestParitySalvageMultiLoss(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, _ := parityFrameRegions(t, stream)

	mut := append([]byte(nil), stream...)
	mut[chunks[0][1]-1] ^= 0xA5 // group 0, chunk 0
	mut[chunks[1][1]-1] ^= 0xA5 // group 0, chunk 1
	mut[chunks[4][1]-1] ^= 0xA5 // group 2, chunk 4 (singleton group)
	rep, err := ScanSalvage(mut, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Frames[0].Damaged || !rep.Frames[1].Damaged {
		t.Fatal("double loss in group 0 was repaired: XOR parity cannot cover two losses")
	}
	if rep.Frames[4].Damaged || !rep.Frames[4].Repaired {
		t.Fatalf("chunk 4 (sole loss of its group) not repaired: %+v", rep.Frames[4])
	}
	if !bytes.Equal(rep.Frames[4].Payload, payloads[4]) {
		t.Fatal("chunk 4 repaired payload differs")
	}
}

// TestParitySalvageDamagedParity damages a parity frame together with a
// chunk of its group: repair must degrade to skip (the chunk stays
// lost) while other groups are unaffected; a damaged parity frame alone
// must cost no data.
func TestParitySalvageDamagedParity(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, parity := parityFrameRegions(t, stream)

	t.Run("with-chunk-loss", func(t *testing.T) {
		mut := append([]byte(nil), stream...)
		mut[chunks[2][1]-1] ^= 0xA5 // group 1, chunk 2
		mut[parity[1][1]-1] ^= 0xA5 // group 1's parity
		rep, err := ScanSalvage(mut, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Frames[2].Damaged {
			t.Fatal("chunk 2 repaired without an intact parity frame")
		}
		if !rep.Parity[1].Damaged {
			t.Fatal("damaged parity frame not reported")
		}
		for _, j := range []int{0, 1, 3, 4} {
			if rep.Frames[j].Damaged {
				t.Fatalf("chunk %d lost collaterally", j)
			}
		}
	})
	t.Run("parity-only", func(t *testing.T) {
		mut := append([]byte(nil), stream...)
		mut[parity[0][1]-1] ^= 0xA5
		rep, err := ScanSalvage(mut, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		for j, f := range rep.Frames {
			if f.Damaged {
				t.Fatalf("chunk %d lost to a parity-frame flip", j)
			}
		}
		if !rep.Parity[0].Damaged {
			t.Fatal("damaged parity frame not reported")
		}
	})
}

// TestParitySalvageNoIndexNoRepair destroys the index of a parity
// container with one damaged chunk: the forward scan must still recover
// the other chunks but cannot repair (no trusted CRC to prove a
// reconstruction against).
func TestParitySalvageNoIndexNoRepair(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, _ := parityFrameRegions(t, stream)

	mut := append([]byte(nil), stream...)
	mut[chunks[1][1]-1] ^= 0xA5
	mut[len(mut)-1] ^= 0xFF // index CRC
	rep, err := ScanSalvage(mut, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IndexOK {
		t.Fatal("damaged index verified")
	}
	if !rep.Frames[1].Damaged || rep.Frames[1].Repaired {
		t.Fatalf("forward scan repaired without an index: %+v", rep.Frames[1])
	}
	for _, j := range []int{0, 2, 3, 4} {
		f := rep.Frames[j]
		if f.Damaged || !bytes.Equal(f.Payload, payloads[j]) {
			t.Fatalf("chunk %d not recovered by forward scan", j)
		}
	}
}

// TestOpenIndexParity proves the seekable path's offset table tiles a
// parity container exactly and that FrameReader skips interior parity
// frames while returning every chunk payload.
func TestOpenIndexParity(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, parity := parityFrameRegions(t, stream)

	ix, err := OpenIndex(bytes.NewReader(stream), Limits{})
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if ix.ParityK() != 2 || len(ix.PLens) != 3 || len(ix.CRCs) != len(payloads) {
		t.Fatalf("parity metadata: K=%d plens=%d crcs=%d", ix.ParityK(), len(ix.PLens), len(ix.CRCs))
	}
	for i := range payloads {
		off, end := ix.FrameExtent(i)
		if off != chunks[i][0] || end != chunks[i][1] {
			t.Fatalf("FrameExtent(%d) = [%d,%d), scan says [%d,%d)", i, off, end, chunks[i][0], chunks[i][1])
		}
	}
	for g := range parity {
		off, end := ix.ParityExtent(g)
		if off != parity[g][0] || end != parity[g][1] {
			t.Fatalf("ParityExtent(%d) = [%d,%d), scan says [%d,%d)", g, off, end, parity[g][0], parity[g][1])
		}
	}

	// Read all chunks through the FrameReader; the two interior parity
	// frames (after chunks 1 and 3) must be skipped, the trailing one
	// never fetched.
	span := ix.ExtentBytes(0, len(payloads))
	r := bytes.NewReader(stream[ix.offsets[0] : ix.offsets[0]+span])
	fr := ix.Frames(r, 0, len(payloads))
	var scratch []byte
	for i, want := range payloads {
		p, frame, seq, err := fr.Next(scratch)
		if err != nil || seq != i || !bytes.Equal(p, want) {
			t.Fatalf("Frames.Next(%d): seq=%d err=%v", i, seq, err)
		}
		scratch = frame
	}
	if _, _, _, err := fr.Next(scratch); err != io.EOF {
		t.Fatalf("after last chunk: %v, want io.EOF", err)
	}
	if fr.ParitySkipped() != 2 {
		t.Fatalf("ParitySkipped = %d, want 2", fr.ParitySkipped())
	}
	if fr.BytesRead() != span {
		t.Fatalf("BytesRead = %d, extent says %d", fr.BytesRead(), span)
	}
}

// TestRepairChunk damages each chunk in turn and repairs it through the
// seekable path: FrameReader must surface a typed ErrFrameDamaged and
// stay usable, and RepairChunk must reconstruct byte-identically.
func TestRepairChunk(t *testing.T) {
	payloads := parityPayloads()
	stream := buildStream(t, parityHeader(2), payloads)
	chunks, _ := parityFrameRegions(t, stream)

	for i := range payloads {
		mut := append([]byte(nil), stream...)
		mut[chunks[i][1]-1] ^= 0xA5
		rs := bytes.NewReader(mut)
		ix, err := OpenIndex(rs, Limits{})
		if err != nil {
			t.Fatalf("chunk %d damaged: OpenIndex: %v", i, err)
		}
		if _, err := rs.Seek(ix.offsets[0], io.SeekStart); err != nil {
			t.Fatal(err)
		}
		fr := ix.Frames(rs, 0, len(payloads))
		var damaged []int
		for {
			p, _, seq, err := fr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrFrameDamaged) {
					t.Fatalf("chunk %d damaged: Next: %v, want ErrFrameDamaged", i, err)
				}
				damaged = append(damaged, seq)
				continue
			}
			if !bytes.Equal(p, payloads[seq]) {
				t.Fatalf("chunk %d damaged: intact chunk %d altered", i, seq)
			}
		}
		if len(damaged) != 1 || damaged[0] != i {
			t.Fatalf("chunk %d damaged: reader flagged %v", i, damaged)
		}
		got, fetched, err := ix.RepairChunk(rs, i)
		if err != nil {
			t.Fatalf("RepairChunk(%d): %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("RepairChunk(%d): payload differs", i)
		}
		if fetched <= 0 {
			t.Fatalf("RepairChunk(%d): fetched = %d", i, fetched)
		}
	}

	// A second loss in the group defeats repair with a typed error.
	mut := append([]byte(nil), stream...)
	mut[chunks[0][1]-1] ^= 0xA5
	mut[chunks[1][1]-1] ^= 0xA5
	rs := bytes.NewReader(mut)
	ix, err := OpenIndex(rs, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.RepairChunk(rs, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double-loss repair: %v, want ErrCorrupt", err)
	}

	// K == 0 containers cannot repair anything.
	v1 := buildStream(t, parityHeader(0), payloads)
	rs1 := bytes.NewReader(v1)
	ix1, err := OpenIndex(rs1, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix1.RepairChunk(rs1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 repair: %v, want ErrCorrupt", err)
	}
}
