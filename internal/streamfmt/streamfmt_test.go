package streamfmt

// Container-layer unit tests: framing round trip, header validation,
// and frame-level tamper detection — independent of the codecs the
// payloads normally carry.

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{Algo: 3, Dims: []int{10, 4}, ChunkRows: 4}
}

func buildStream(t *testing.T, h Header, payloads [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, p := range payloads {
		if err := w.WriteChunk(p); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("chunk-zero"),
		[]byte("chunk-one-longer-payload"),
		[]byte("z"),
	}
	stream := buildStream(t, testHeader(), payloads)

	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	h := r.Header()
	if h.Algo != 3 || h.ChunkRows != 4 || len(h.Dims) != 2 || h.Dims[0] != 10 || h.Dims[1] != 4 {
		t.Fatalf("header round trip: %+v", h)
	}
	if got := h.Chunks(); got != 3 {
		t.Fatalf("Chunks() = %d, want 3", got)
	}
	if got := h.ChunkRowCount(2); got != 2 {
		t.Fatalf("tail chunk rows = %d, want 2", got)
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := r.Next(scratch)
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: got %q want %q", i, got, want)
		}
		scratch = got
	}
	if _, err := r.Next(scratch); err != io.EOF {
		t.Fatalf("after index: err = %v, want io.EOF", err)
	}
	if r.ChunksRead() != 3 {
		t.Fatalf("ChunksRead = %d", r.ChunksRead())
	}
	if r.Consumed() != int64(len(stream)) {
		t.Fatalf("Consumed = %d, stream is %d bytes", r.Consumed(), len(stream))
	}
}

func TestHeaderValidation(t *testing.T) {
	cases := []struct {
		name string
		h    Header
	}{
		{"no-dims", Header{Algo: 1, ChunkRows: 1}},
		{"zero-dim", Header{Algo: 1, Dims: []int{0, 4}, ChunkRows: 1}},
		{"zero-chunk-rows", Header{Algo: 1, Dims: []int{8}, ChunkRows: 0}},
		{"chunk-rows-exceed", Header{Algo: 1, Dims: []int{8}, ChunkRows: 9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := NewWriter(&buf, c.h); err == nil {
				t.Fatalf("NewWriter accepted invalid header %+v", c.h)
			}
		})
	}
}

func TestWriterFrameDiscipline(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(nil); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if err := w.Finish(); err == nil {
		t.Fatal("Finish accepted before all chunks written")
	}
}

// TestTamperDetection flips each byte of a valid stream in turn; every
// mutation must either fail (header parse, CRC, index mismatch) or —
// never — silently change a payload.
func TestTamperDetection(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("beta-2"), []byte("g")}
	stream := buildStream(t, testHeader(), payloads)
	for pos := 0; pos < len(stream); pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0xFF
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		clean := true
		for i := 0; ; i++ {
			p, err := r.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				clean = false
				break
			}
			if i >= len(payloads) || !bytes.Equal(p, payloads[i]) {
				t.Fatalf("flip at %d: chunk %d silently altered", pos, i)
			}
		}
		_ = clean // a fully-clean read can only happen if the flip never survived framing
	}
}

// TestTruncationDetected removes the tail of the stream byte by byte;
// a reader must never reach a verified EOF on a truncated stream.
func TestTruncationDetected(t *testing.T) {
	stream := buildStream(t, testHeader(), [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cc")})
	for cut := len(stream) - 1; cut >= 0; cut-- {
		r, err := NewReader(bytes.NewReader(stream[:cut]))
		if err != nil {
			continue
		}
		sawEOF := false
		for {
			_, err := r.Next(nil)
			if err == io.EOF {
				sawEOF = true
				break
			}
			if err != nil {
				break
			}
		}
		if sawEOF {
			t.Fatalf("truncation at %d/%d reached verified EOF", cut, len(stream))
		}
	}
}

func TestUnknownTagRejected(t *testing.T) {
	stream := buildStream(t, testHeader(), [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cc")})
	// The first frame tag follows the header; find it by parsing a
	// fresh reader's consumed count.
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := int(r.Consumed())
	mut := append([]byte(nil), stream...)
	mut[hdrLen] = 0x7E // neither tagChunk nor tagIndex
	r2, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(nil); err == nil || !strings.Contains(err.Error(), "tag") {
		t.Fatalf("unknown tag: err = %v", err)
	}
}
