// Package streamfmt defines the framed on-disk container used by the
// bounded-memory streaming pipeline (repro.CompressStream): a fixed
// header describing the field geometry and chunking, a sequence of
// length-prefixed chunk frames each carrying its own CRC, and a final
// index frame that seals the stream. The layout is specified in
// DESIGN.md §7.
//
//	stream := header chunk* index
//	header := magic(0xC8) version(0x01) algo(1B)
//	          uvarint(rank) uvarint(dim)... uvarint(chunkRows)
//	chunk  := tag(0x01) uvarint(len) crc32be(payload) payload
//	index  := tag(0x02) uvarint(count) uvarint(len_i)... crc32be(index body)
//
// Version 0x02 adds an optional erasure-coding layer: the header gains
// uvarint(parityK), every K consecutive chunks form a parity group, and
// the group's chunk frames are followed by one parity frame whose
// payload is the byte-wise XOR of the group's chunk payloads, each
// zero-padded to the longest payload in the group (the final group may
// hold fewer than K chunks). The sealed index records the parity frame
// lengths and each chunk payload's CRC, so a reader that loses exactly
// one chunk per group can reconstruct it byte-identically from the
// parity frame and the surviving siblings, and verify the result:
//
//	stream_v2 := header group* index
//	header    := magic(0xC8) version(0x02) algo(1B)
//	             uvarint(rank) uvarint(dim)... uvarint(chunkRows) uvarint(parityK)
//	group     := chunk{1..K} parity
//	parity    := tag(0x03) uvarint(plen) crc32be(ppayload) ppayload
//	index     := tag(0x02) uvarint(count) uvarint(len_i)...
//	             uvarint(pcount) uvarint(plen_g)... crc32be(chunkcrc_i)...
//	             crc32be(index body)
//
// Parity-free output (ParityK == 0) stays version 0x01 and bit-identical
// to the pre-parity format, so readers that predate parity keep reading
// everything a parity-free writer emits.
//
// Every multi-byte integer is an unsigned varint except the CRCs, which
// are big-endian uint32 over the bytes they cover. The chunk payloads
// are standard self-describing repro.Compress streams; the container
// does not look inside them. The index makes truncation detectable: a
// stream without a matching index frame is corrupt by definition.
package streamfmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/codecerr"
	"repro/internal/grid"
)

const (
	// Magic is the container's first byte (0xC5 plain, 0xC6 parallel,
	// 0xC7 archive, 0xC8 stream, 0xC9 archive v2).
	Magic = 0xC8
	// Version is the parity-free container version byte.
	Version = 0x01
	// VersionParity is the container version carrying XOR parity frames.
	VersionParity = 0x02

	tagChunk  = 0x01
	tagIndex  = 0x02
	tagParity = 0x03

	// MaxParityK bounds the parity group size; beyond this a single
	// parity frame protects so many chunks that repair is nominal.
	MaxParityK = 1 << 20

	// MaxFrameLen bounds a single chunk frame's payload so a hostile
	// length prefix cannot demand an absurd allocation up front.
	MaxFrameLen = 1 << 31

	// maxDim mirrors the parallel container's per-dimension cap.
	maxDim = 1 << 40
)

// Error identities are the module-wide taxonomy from internal/codecerr
// (re-exported by the root package as repro.ErrCorrupted et al.).
var (
	// ErrCorrupt reports a malformed stream container.
	ErrCorrupt = codecerr.ErrCorrupted
	// ErrTruncated reports a container that ends mid-structure; it
	// wraps ErrCorrupt.
	ErrTruncated = codecerr.ErrTruncated
	// ErrLimit reports a container that declares resources beyond the
	// caller's Limits.
	ErrLimit = codecerr.ErrLimitExceeded
	// ErrUnsupported reports bytes that are not a stream container.
	ErrUnsupported = codecerr.ErrUnsupportedFormat
)

// Limits bounds what a Reader will agree to decode, enforced before any
// input-derived allocation. The zero value means "no limit".
type Limits struct {
	// MaxElements caps the total field elements the header may declare.
	MaxElements int64
	// MaxChunkBytes caps a single chunk frame's compressed payload.
	MaxChunkBytes int64
}

// chunkCap returns the effective per-frame payload cap.
func (l Limits) chunkCap() uint64 {
	if l.MaxChunkBytes > 0 && l.MaxChunkBytes < MaxFrameLen {
		return uint64(l.MaxChunkBytes)
	}
	return MaxFrameLen
}

// checkHeader applies the element limit to a validated header.
func (l Limits) checkHeader(h *Header) error {
	if l.MaxElements > 0 && int64(grid.Size(h.Dims)) > l.MaxElements {
		return fmt.Errorf("%w: header declares %d elements, limit %d",
			ErrLimit, grid.Size(h.Dims), l.MaxElements)
	}
	return nil
}

// readErr classifies an I/O failure encountered mid-structure: EOF
// means the container ended early (truncation); any other error is the
// reader's own failure and is propagated wrapped, not relabeled as
// corruption.
func readErr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w (%s)", ErrTruncated, what)
	}
	return fmt.Errorf("streamfmt: reading %s: %w", what, err)
}

// Header describes the streamed field: which algorithm compressed the
// chunks, the full field dimensions (row-major, dims[0] slowest), and
// how many dims[0]-rows each full chunk covers (the last chunk may be
// shorter).
type Header struct {
	Algo      byte
	Dims      []int
	ChunkRows int
	// ParityK is the parity group size: every K consecutive chunks are
	// followed by one XOR parity frame (the final group may be shorter).
	// Zero means no parity layer (version 0x01 container).
	ParityK int
}

// Rows returns the extent of the chunked dimension.
func (h *Header) Rows() int { return h.Dims[0] }

// RowStride returns the number of elements in one dims[0]-row.
func (h *Header) RowStride() int { return grid.Size(h.Dims) / h.Dims[0] }

// Chunks returns the number of chunk frames the header implies.
func (h *Header) Chunks() int {
	return (h.Dims[0] + h.ChunkRows - 1) / h.ChunkRows
}

// ChunkRowCount returns the number of rows in chunk i (the tail chunk
// is clipped at the field boundary).
func (h *Header) ChunkRowCount(i int) int {
	lo := i * h.ChunkRows
	n := h.ChunkRows
	if h.Dims[0]-lo < n {
		n = h.Dims[0] - lo
	}
	return n
}

// Groups returns the number of parity groups (zero without parity).
func (h *Header) Groups() int {
	if h.ParityK <= 0 {
		return 0
	}
	return (h.Chunks() + h.ParityK - 1) / h.ParityK
}

// GroupRange returns the chunk range [lo, hi) covered by parity group g.
func (h *Header) GroupRange(g int) (lo, hi int) {
	lo = g * h.ParityK
	hi = lo + h.ParityK
	if n := h.Chunks(); hi > n {
		hi = n
	}
	return lo, hi
}

func (h *Header) validate() error {
	if err := grid.Validate(h.Dims, -1); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if h.Algo == 0 {
		return fmt.Errorf("%w: zero algorithm byte", ErrCorrupt)
	}
	if h.ChunkRows < 1 || h.ChunkRows > h.Dims[0] {
		return fmt.Errorf("%w: chunk rows %d out of [1,%d]", ErrCorrupt, h.ChunkRows, h.Dims[0])
	}
	if h.ParityK < 0 || h.ParityK > MaxParityK {
		return fmt.Errorf("%w: parity group size %d out of [0,%d]", ErrCorrupt, h.ParityK, MaxParityK)
	}
	return nil
}

// Writer emits a stream container: header up front, one frame per
// WriteChunk, and the index on Finish. With parity enabled it keeps one
// running XOR accumulator — a single extra chunk-sized buffer, so the
// pipeline's bounded-memory guarantee survives — and flushes it as a
// parity frame after every K chunks and after the final partial group.
type Writer struct {
	w        io.Writer
	lens     []uint64
	plens    []uint64
	crcs     []uint32
	parity   []byte
	parityK  int
	groupN   int
	scratch  []byte
	expect   int
	finished bool
}

// NewWriter validates the header, writes it to w, and returns a Writer
// for the chunk frames. ParityK == 0 emits the version 0x01 layout,
// byte-identical to the pre-parity format.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	ver := byte(Version)
	if h.ParityK > 0 {
		ver = VersionParity
	}
	buf := []byte{Magic, ver, h.Algo}
	buf = binary.AppendUvarint(buf, uint64(len(h.Dims)))
	for _, d := range h.Dims {
		buf = binary.AppendUvarint(buf, uint64(d))
	}
	buf = binary.AppendUvarint(buf, uint64(h.ChunkRows))
	if h.ParityK > 0 {
		buf = binary.AppendUvarint(buf, uint64(h.ParityK))
	}
	if _, err := w.Write(buf); err != nil {
		return nil, err
	}
	return &Writer{w: w, expect: h.Chunks(), parityK: h.ParityK, lens: make([]uint64, 0, h.Chunks())}, nil
}

// WriteChunk emits one chunk frame. Chunks must be written in field
// order; the Writer only checks the count against the header.
func (sw *Writer) WriteChunk(payload []byte) error {
	if sw.finished {
		return errors.New("streamfmt: WriteChunk after Finish")
	}
	if len(sw.lens) >= sw.expect {
		return fmt.Errorf("streamfmt: chunk %d exceeds header's %d chunks", len(sw.lens), sw.expect)
	}
	if len(payload) == 0 || len(payload) > MaxFrameLen {
		return fmt.Errorf("streamfmt: chunk payload length %d out of (0,%d]", len(payload), MaxFrameLen)
	}
	crc := crc32.ChecksumIEEE(payload)
	sw.scratch = sw.scratch[:0]
	sw.scratch = append(sw.scratch, tagChunk)
	sw.scratch = binary.AppendUvarint(sw.scratch, uint64(len(payload)))
	sw.scratch = binary.BigEndian.AppendUint32(sw.scratch, crc)
	if _, err := sw.w.Write(sw.scratch); err != nil {
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	sw.lens = append(sw.lens, uint64(len(payload)))
	if sw.parityK > 0 {
		sw.crcs = append(sw.crcs, crc)
		sw.xorParity(payload)
		sw.groupN++
		if sw.groupN == sw.parityK {
			return sw.writeParity()
		}
	}
	return nil
}

// xorParity folds payload into the group accumulator, zero-extending the
// accumulator when this payload is the longest seen in the group.
func (sw *Writer) xorParity(payload []byte) {
	if len(payload) > len(sw.parity) {
		old := len(sw.parity)
		if len(payload) > cap(sw.parity) {
			grown := make([]byte, len(payload))
			copy(grown, sw.parity)
			sw.parity = grown
		} else {
			sw.parity = sw.parity[:len(payload)]
			for i := old; i < len(sw.parity); i++ {
				sw.parity[i] = 0
			}
		}
	}
	for i, b := range payload {
		sw.parity[i] ^= b
	}
}

// writeParity flushes the group accumulator as one parity frame and
// resets it for the next group.
func (sw *Writer) writeParity() error {
	sw.scratch = sw.scratch[:0]
	sw.scratch = append(sw.scratch, tagParity)
	sw.scratch = binary.AppendUvarint(sw.scratch, uint64(len(sw.parity)))
	sw.scratch = binary.BigEndian.AppendUint32(sw.scratch, crc32.ChecksumIEEE(sw.parity))
	if _, err := sw.w.Write(sw.scratch); err != nil {
		return err
	}
	if _, err := sw.w.Write(sw.parity); err != nil {
		return err
	}
	sw.plens = append(sw.plens, uint64(len(sw.parity)))
	sw.groupN = 0
	sw.parity = sw.parity[:0]
	return nil
}

// Written returns the number of chunk frames emitted so far.
func (sw *Writer) Written() int { return len(sw.lens) }

// ParityWritten returns the number of parity frames emitted so far.
func (sw *Writer) ParityWritten() int { return len(sw.plens) }

// Finish writes the index frame and seals the container. It fails if
// the chunk count does not match the header.
func (sw *Writer) Finish() error {
	if sw.finished {
		return errors.New("streamfmt: double Finish")
	}
	if len(sw.lens) != sw.expect {
		return fmt.Errorf("streamfmt: wrote %d chunks, header promised %d", len(sw.lens), sw.expect)
	}
	if sw.parityK > 0 && sw.groupN > 0 {
		// Seal the final partial group so every chunk is parity-covered.
		if err := sw.writeParity(); err != nil {
			return err
		}
	}
	sw.finished = true
	body := binary.AppendUvarint(nil, uint64(len(sw.lens)))
	for _, l := range sw.lens {
		body = binary.AppendUvarint(body, l)
	}
	if sw.parityK > 0 {
		body = binary.AppendUvarint(body, uint64(len(sw.plens)))
		for _, l := range sw.plens {
			body = binary.AppendUvarint(body, l)
		}
		for _, c := range sw.crcs {
			body = binary.BigEndian.AppendUint32(body, c)
		}
	}
	sw.scratch = sw.scratch[:0]
	sw.scratch = append(sw.scratch, tagIndex)
	sw.scratch = append(sw.scratch, body...)
	sw.scratch = binary.BigEndian.AppendUint32(sw.scratch, crc32.ChecksumIEEE(body))
	_, err := sw.w.Write(sw.scratch)
	return err
}

// Reader parses a stream container incrementally: NewReader consumes
// the header, Next returns chunk payloads until the index frame, which
// it verifies before reporting io.EOF.
type Reader struct {
	br       *bufio.Reader
	hdr      Header
	lim      Limits
	lens     []uint64
	plens    []uint64
	crcs     []uint32
	groupN   int
	groupMax uint64
	pbuf     []byte
	consumed int64
	done     bool
}

// NewReader wraps r (buffered internally) and parses the header.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderLimits(r, Limits{})
}

// NewReaderLimits is NewReader with decode limits enforced before any
// input-derived allocation.
func NewReaderLimits(r io.Reader, lim Limits) (*Reader, error) {
	sr := &Reader{br: bufio.NewReader(r), lim: lim}
	if err := sr.readHeader(); err != nil {
		return nil, err
	}
	return sr, nil
}

func (sr *Reader) readHeader() error {
	var fixed [3]byte
	if _, err := io.ReadFull(sr.br, fixed[:]); err != nil {
		return readErr(err, "stream header")
	}
	sr.consumed += 3
	if fixed[0] != Magic || (fixed[1] != Version && fixed[1] != VersionParity) {
		return fmt.Errorf("%w: magic/version % x is not a stream container", ErrUnsupported, fixed[:2])
	}
	rank, err := sr.uvarint()
	if err != nil {
		return err
	}
	if rank == 0 || rank > grid.MaxDims {
		return fmt.Errorf("%w: rank %d", ErrCorrupt, rank)
	}
	dims := make([]int, rank)
	for i := range dims {
		d, err := sr.uvarint()
		if err != nil {
			return err
		}
		if d == 0 || d > maxDim {
			return fmt.Errorf("%w: dimension %d", ErrCorrupt, d)
		}
		dims[i] = int(d)
	}
	cr, err := sr.uvarint()
	if err != nil {
		return err
	}
	if cr == 0 || cr > uint64(dims[0]) {
		return fmt.Errorf("%w: chunk rows %d", ErrCorrupt, cr)
	}
	parityK := 0
	if fixed[1] == VersionParity {
		pk, err := sr.uvarint()
		if err != nil {
			return err
		}
		if pk == 0 || pk > MaxParityK {
			return fmt.Errorf("%w: parity group size %d out of [1,%d]", ErrCorrupt, pk, MaxParityK)
		}
		parityK = int(pk)
	}
	sr.hdr = Header{Algo: fixed[2], Dims: dims, ChunkRows: int(cr), ParityK: parityK}
	if err := sr.hdr.validate(); err != nil {
		return err
	}
	if err := sr.lim.checkHeader(&sr.hdr); err != nil {
		return err
	}
	sr.lens = make([]uint64, 0, sr.hdr.Chunks())
	return nil
}

// Header returns the parsed stream header. The returned struct shares
// its Dims slice with the Reader; callers must not mutate it.
func (sr *Reader) Header() Header { return sr.hdr }

// Consumed returns the number of container bytes read so far.
func (sr *Reader) Consumed() int64 { return sr.consumed }

// ChunksRead returns the number of chunk frames returned by Next.
func (sr *Reader) ChunksRead() int { return len(sr.lens) }

// ParityRead returns the number of parity frames verified so far.
func (sr *Reader) ParityRead() int { return len(sr.plens) }

// Next returns the payload of the next chunk frame, reusing scratch
// when it is large enough. Parity frames are verified and consumed
// transparently — the linear path has every chunk's own CRC, so parity
// carries no extra information for it. It returns io.EOF after the
// index frame has been read and verified; any malformed frame, CRC
// mismatch, or truncation yields an error wrapping ErrCorrupt.
func (sr *Reader) Next(scratch []byte) ([]byte, error) {
	if sr.done {
		return nil, io.EOF
	}
	for {
		tag, err := sr.br.ReadByte()
		if err != nil {
			return nil, readErr(err, fmt.Sprintf("frame tag (want %d more chunks + index)",
				sr.hdr.Chunks()-len(sr.lens)))
		}
		sr.consumed++
		switch tag {
		case tagChunk:
			return sr.readChunk(scratch)
		case tagParity:
			if err := sr.readParity(); err != nil {
				return nil, err
			}
		case tagIndex:
			if err := sr.readIndex(); err != nil {
				return nil, err
			}
			sr.done = true
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("%w: unknown frame tag 0x%02x", ErrCorrupt, tag)
		}
	}
}

func (sr *Reader) readChunk(scratch []byte) ([]byte, error) {
	if len(sr.lens) >= sr.hdr.Chunks() {
		return nil, fmt.Errorf("%w: more chunk frames than the header's %d", ErrCorrupt, sr.hdr.Chunks())
	}
	if sr.hdr.ParityK > 0 && sr.groupN == sr.hdr.ParityK {
		return nil, fmt.Errorf("%w: chunk frame where the group's parity frame is due", ErrCorrupt)
	}
	plen, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	if plen == 0 || plen > MaxFrameLen {
		return nil, fmt.Errorf("%w: chunk payload length %d", ErrCorrupt, plen)
	}
	if plen > sr.lim.chunkCap() {
		return nil, fmt.Errorf("%w: chunk payload of %d bytes, limit %d", ErrLimit, plen, sr.lim.chunkCap())
	}
	var crcb [4]byte
	if _, err := io.ReadFull(sr.br, crcb[:]); err != nil {
		return nil, readErr(err, "chunk CRC")
	}
	sr.consumed += 4
	want := binary.BigEndian.Uint32(crcb[:])
	payload, err := sr.readPayload(scratch, plen)
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: chunk %d checksum mismatch", ErrCorrupt, len(sr.lens))
	}
	sr.lens = append(sr.lens, plen)
	if sr.hdr.ParityK > 0 {
		sr.crcs = append(sr.crcs, want)
		sr.groupN++
		if plen > sr.groupMax {
			sr.groupMax = plen
		}
	}
	return payload, nil
}

// readParity verifies one parity frame in place. The payload is
// streamed through the CRC in a small fixed buffer — the linear path
// never uses parity content, so it is not materialized — but its length
// still counts toward the chunk limit like any other frame.
func (sr *Reader) readParity() error {
	k := sr.hdr.ParityK
	if k == 0 {
		return fmt.Errorf("%w: parity frame in a parity-free container", ErrCorrupt)
	}
	if sr.groupN == 0 {
		return fmt.Errorf("%w: parity frame without preceding group chunks", ErrCorrupt)
	}
	if sr.groupN < k && len(sr.lens) != sr.hdr.Chunks() {
		return fmt.Errorf("%w: parity frame after %d of the group's %d chunks", ErrCorrupt, sr.groupN, k)
	}
	plen, err := sr.uvarint()
	if err != nil {
		return err
	}
	if plen > sr.lim.chunkCap() {
		return fmt.Errorf("%w: parity frame of %d bytes, limit %d", ErrLimit, plen, sr.lim.chunkCap())
	}
	if plen != sr.groupMax {
		return fmt.Errorf("%w: parity frame length %d, longest group chunk %d", ErrCorrupt, plen, sr.groupMax)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(sr.br, crcb[:]); err != nil {
		return readErr(err, "parity CRC")
	}
	sr.consumed += 4
	if sr.pbuf == nil {
		sr.pbuf = make([]byte, 32<<10)
	}
	h := crc32.NewIEEE()
	for left := plen; left > 0; {
		grab := uint64(len(sr.pbuf))
		if left < grab {
			grab = left
		}
		m, err := io.ReadFull(sr.br, sr.pbuf[:grab])
		sr.consumed += int64(m)
		if err != nil {
			return readErr(err, "parity payload")
		}
		_, _ = h.Write(sr.pbuf[:grab]) // hash.Hash.Write never errors
		left -= grab
	}
	if h.Sum32() != binary.BigEndian.Uint32(crcb[:]) {
		return fmt.Errorf("%w: parity frame %d checksum mismatch", ErrCorrupt, len(sr.plens))
	}
	sr.plens = append(sr.plens, plen)
	sr.groupN, sr.groupMax = 0, 0
	return nil
}

// readPayload reads n declared bytes without trusting n for the initial
// allocation: the buffer grows geometrically as data actually arrives,
// so a hostile length prefix on a short stream cannot force a large
// allocation.
func (sr *Reader) readPayload(scratch []byte, n uint64) ([]byte, error) {
	if n <= uint64(cap(scratch)) {
		buf := scratch[:n]
		if _, err := io.ReadFull(sr.br, buf); err != nil {
			return nil, readErr(err, "chunk payload")
		}
		sr.consumed += int64(n)
		return buf, nil
	}
	const step = 64 << 10
	buf := make([]byte, 0, step)
	for uint64(len(buf)) < n {
		grab := n - uint64(len(buf))
		if grab > step {
			grab = step
		}
		lo := len(buf)
		//lint:allow allochot geometric growth bounded by bytes actually read, not by the declared length
		buf = append(buf, make([]byte, grab)...)
		m, err := io.ReadFull(sr.br, buf[lo:])
		sr.consumed += int64(m)
		if err != nil {
			return nil, readErr(err, "chunk payload")
		}
	}
	return buf, nil
}

func (sr *Reader) readIndex() error {
	if sr.hdr.ParityK > 0 && sr.groupN != 0 {
		return fmt.Errorf("%w: index frame before the final group's parity frame", ErrCorrupt)
	}
	count, err := sr.uvarint()
	if err != nil {
		return err
	}
	if count != uint64(len(sr.lens)) || count != uint64(sr.hdr.Chunks()) {
		return fmt.Errorf("%w: index counts %d chunks, read %d, header promised %d",
			ErrCorrupt, count, len(sr.lens), sr.hdr.Chunks())
	}
	body := binary.AppendUvarint(nil, count)
	for i := range sr.lens {
		l, err := sr.uvarint()
		if err != nil {
			return err
		}
		if l != sr.lens[i] {
			return fmt.Errorf("%w: index length %d disagrees with chunk %d frame (%d)", ErrCorrupt, l, i, sr.lens[i])
		}
		body = binary.AppendUvarint(body, l)
	}
	if sr.hdr.ParityK > 0 {
		pc, err := sr.uvarint()
		if err != nil {
			return err
		}
		if pc != uint64(len(sr.plens)) || pc != uint64(sr.hdr.Groups()) {
			return fmt.Errorf("%w: index counts %d parity frames, read %d, header implies %d",
				ErrCorrupt, pc, len(sr.plens), sr.hdr.Groups())
		}
		body = binary.AppendUvarint(body, pc)
		for g := range sr.plens {
			l, err := sr.uvarint()
			if err != nil {
				return err
			}
			if l != sr.plens[g] {
				return fmt.Errorf("%w: index parity length %d disagrees with group %d frame (%d)",
					ErrCorrupt, l, g, sr.plens[g])
			}
			body = binary.AppendUvarint(body, l)
		}
		var cb [4]byte
		for i := range sr.crcs {
			if _, err := io.ReadFull(sr.br, cb[:]); err != nil {
				return readErr(err, "index chunk CRC")
			}
			sr.consumed += 4
			if binary.BigEndian.Uint32(cb[:]) != sr.crcs[i] {
				return fmt.Errorf("%w: index CRC for chunk %d disagrees with its frame", ErrCorrupt, i)
			}
			body = append(body, cb[:]...)
		}
	}
	var crcb [4]byte
	if _, err := io.ReadFull(sr.br, crcb[:]); err != nil {
		return readErr(err, "index CRC")
	}
	sr.consumed += 4
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(crcb[:]) {
		return fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	return nil
}

// uvarint reads one varint byte by byte, bounding its size and tracking
// consumption. Reading manually (rather than binary.ReadUvarint) keeps
// the error classification exact: truncation and genuine I/O errors go
// through readErr, only an over-long encoding is corruption.
func (sr *Reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := sr.br.ReadByte()
		if err != nil {
			return 0, readErr(err, "varint")
		}
		sr.consumed++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				break
			}
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrCorrupt)
}
