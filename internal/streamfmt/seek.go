package streamfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Seekable access: the sealing index frame at the container tail records
// every chunk's payload length, so with an io.ReadSeeker the whole chunk
// offset table can be reconstructed from the header plus the last few
// hundred bytes — no chunk payload is ever touched. OpenIndex is the
// trust boundary for that path: it accepts only a container whose index
// frame verifies (CRC) AND whose implied frame offsets tile the byte
// range between header and index exactly. Anything less — a missing,
// truncated, or unverifiable index — is a typed ErrTruncated/ErrCorrupt,
// never a silent fallback to a prefix scan (that permissive mode exists,
// but only as the explicit salvage path in ScanSalvage).

// StreamIndex is the parsed header plus the chunk→offset table derived
// from a verified tail index frame.
type StreamIndex struct {
	// Hdr is the container header (shared Dims slice; do not mutate).
	Hdr Header
	// HeaderLen is the container offset where chunk frames begin.
	HeaderLen int64
	// Size is the total container length in bytes.
	Size int64
	// IndexOff is the offset of the index frame's tag byte; chunk frames
	// occupy [HeaderLen, IndexOff) exactly.
	IndexOff int64
	// Lens holds each chunk's payload length, from the verified index.
	Lens []uint64

	// offsets[i] is chunk i's frame (tag byte) offset; offsets[Chunks()]
	// is IndexOff, so extents are offsets[i] through offsets[i+1].
	offsets []int64
}

// minFrameLen is the smallest possible chunk frame: tag, one-byte length
// prefix, CRC, one payload byte.
const minFrameLen = 7

// minIndexLen is the smallest possible index frame: tag, count varint,
// CRC (a zero-chunk container is invalid, but the bound stays safe).
const minIndexLen = 6

// OpenIndex parses the header and the tail index frame of the container
// in rs — never the chunk payloads — and returns the offset table for
// random chunk access. The limits are enforced before any input-derived
// allocation: MaxElements against the header geometry, MaxChunkBytes
// against every index-declared chunk length. rs is left positioned at an
// unspecified offset; callers must seek before reading.
func OpenIndex(rs io.ReadSeeker, lim Limits) (*StreamIndex, error) {
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("streamfmt: seeking container end: %w", err)
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("streamfmt: seeking container start: %w", err)
	}
	hr, err := NewReaderLimits(rs, lim)
	if err != nil {
		return nil, err
	}
	ix := &StreamIndex{Hdr: hr.Header(), HeaderLen: hr.Consumed(), Size: size}
	chunks := ix.Hdr.Chunks()
	// Cheapest possible sanity bound, checked before the index window is
	// even read: the declared chunk count must physically fit.
	if size-ix.HeaderLen < int64(chunks)*minFrameLen+minIndexLen {
		return nil, fmt.Errorf("%w: %d-byte container cannot hold %d chunk frames and an index",
			ErrTruncated, size, chunks)
	}
	lens, idxOff, err := ix.findTailIndex(rs, chunks)
	if err != nil {
		return nil, err
	}
	ix.Lens, ix.IndexOff = lens, idxOff

	// Rebuild the offset table and prove it tiles [HeaderLen, IndexOff)
	// exactly; the index is not trusted until the arithmetic closes.
	ix.offsets = make([]int64, chunks+1)
	off := ix.HeaderLen
	for i, l := range lens {
		if l > lim.chunkCap() {
			return nil, fmt.Errorf("%w: index declares chunk %d of %d bytes, limit %d",
				ErrLimit, i, l, lim.chunkCap())
		}
		ix.offsets[i] = off
		off += int64(1+uvarintLen(l)+4) + int64(l)
		if off > idxOff {
			return nil, fmt.Errorf("%w: index lengths overrun the index frame (chunk %d ends at %d, index at %d)",
				ErrCorrupt, i, off, idxOff)
		}
	}
	if off != idxOff {
		return nil, fmt.Errorf("%w: chunk frames end at %d but the index frame begins at %d",
			ErrCorrupt, off, idxOff)
	}
	ix.offsets[chunks] = idxOff
	return ix, nil
}

// findTailIndex reads a bounded window off the container tail and
// locates the sealing index frame in it: a tagIndex byte whose body
// parses to exactly `chunks` lengths, whose CRC verifies, and whose
// frame ends exactly at the end of the container.
func (ix *StreamIndex) findTailIndex(rs io.ReadSeeker, chunks int) ([]uint64, int64, error) {
	maxIndex := int64(1+binary.MaxVarintLen64+4) + int64(chunks)*binary.MaxVarintLen64
	winStart := ix.Size - maxIndex
	if winStart < ix.HeaderLen {
		winStart = ix.HeaderLen
	}
	// The window is bounded by the post-header region of the real file,
	// whatever the (input-derived, possibly hostile) chunk count says:
	// an overflowed maxIndex must fail typed, not size an allocation.
	winLen := ix.Size - winStart
	if winLen < minIndexLen || winLen > ix.Size-ix.HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d-chunk index window of %d bytes is impossible in a %d-byte container",
			ErrCorrupt, chunks, winLen, ix.Size)
	}
	if _, err := rs.Seek(winStart, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("streamfmt: seeking container tail: %w", err)
	}
	win := make([]byte, winLen)
	if _, err := io.ReadFull(rs, win); err != nil {
		return nil, 0, readErr(err, "index window")
	}
	if lens, start, ok := findIndex(win, 0, chunks); ok {
		return lens, winStart + start, nil
	}
	return nil, 0, fmt.Errorf("%w: no verifiable index frame at the container tail (unsealed, truncated, or corrupt; salvage can attempt recovery)",
		ErrCorrupt)
}

// Chunks returns the number of chunk frames in the container.
func (ix *StreamIndex) Chunks() int { return len(ix.Lens) }

// FrameExtent returns chunk i's frame byte range [off, end) — tag byte
// through the end of the payload.
func (ix *StreamIndex) FrameExtent(i int) (off, end int64) {
	return ix.offsets[i], ix.offsets[i+1]
}

// ExtentBytes returns the total container bytes spanned by the chunk
// frames [c0, c1) — the exact amount a range read must fetch.
func (ix *StreamIndex) ExtentBytes(c0, c1 int) int64 {
	return ix.offsets[c1] - ix.offsets[c0]
}

// FrameReader reads a contiguous run of chunk frames [c0, c1) whose
// extents are known from the index, CRC-verifying each frame. r must be
// positioned at chunk c0's frame offset; the reader consumes exactly
// ExtentBytes(c0, c1) bytes from it on a clean pass.
type FrameReader struct {
	ix   *StreamIndex
	br   *bufio.Reader
	next int
	end  int
	read int64
}

// Frames returns a FrameReader over chunks [c0, c1) of r.
func (ix *StreamIndex) Frames(r io.Reader, c0, c1 int) *FrameReader {
	return &FrameReader{ix: ix, br: bufio.NewReader(r), next: c0, end: c1}
}

// Next returns the next chunk's CRC-verified payload and its field-order
// sequence number, reusing scratch when it is large enough. The payload
// aliases frame, which is the full frame buffer (scratch or a fresh
// allocation) — callers recycle frame, not payload, so buffer capacity
// is not lost to the frame header prefix. It returns io.EOF after chunk
// end-1. Allocating up front from the index length is safe here, unlike
// the forward path's grow-as-bytes-arrive discipline: OpenIndex has
// already proven the bytes exist inside the container and capped every
// length against the limits.
func (fr *FrameReader) Next(scratch []byte) (payload, frame []byte, seq int, err error) {
	if fr.next >= fr.end {
		return nil, nil, fr.next, io.EOF
	}
	i := fr.next
	off, end := fr.ix.FrameExtent(i)
	n := int(end - off)
	frame = scratch
	if n > cap(frame) {
		frame = make([]byte, n)
	}
	frame = frame[:n]
	if _, err := io.ReadFull(fr.br, frame); err != nil {
		return nil, nil, i, readErr(err, fmt.Sprintf("chunk %d frame", i))
	}
	fr.read += int64(n)
	payload, reason := verifyFrame(frame, fr.ix.Lens[i])
	if payload == nil {
		return nil, nil, i, fmt.Errorf("%w: chunk %d: %s", ErrCorrupt, i, reason)
	}
	fr.next++
	return payload, frame, i, nil
}

// BytesRead returns the container bytes consumed so far.
func (fr *FrameReader) BytesRead() int64 { return fr.read }
