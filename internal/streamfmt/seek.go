package streamfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Seekable access: the sealing index frame at the container tail records
// every chunk's payload length, so with an io.ReadSeeker the whole chunk
// offset table can be reconstructed from the header plus the last few
// hundred bytes — no chunk payload is ever touched. OpenIndex is the
// trust boundary for that path: it accepts only a container whose index
// frame verifies (CRC) AND whose implied frame offsets tile the byte
// range between header and index exactly. Anything less — a missing,
// truncated, or unverifiable index — is a typed ErrTruncated/ErrCorrupt,
// never a silent fallback to a prefix scan (that permissive mode exists,
// but only as the explicit salvage path in ScanSalvage).

// ErrFrameDamaged reports a single frame that failed verification on
// the seekable read path; it wraps ErrCorrupt. Callers that know the
// container carries parity can catch it per frame, keep fetching, and
// attempt a RepairChunk instead of aborting the whole range read.
var ErrFrameDamaged = fmt.Errorf("%w: damaged frame", ErrCorrupt)

// StreamIndex is the parsed header plus the chunk→offset table derived
// from a verified tail index frame.
type StreamIndex struct {
	// Hdr is the container header (shared Dims slice; do not mutate).
	Hdr Header
	// HeaderLen is the container offset where chunk frames begin.
	HeaderLen int64
	// Size is the total container length in bytes.
	Size int64
	// IndexOff is the offset of the index frame's tag byte; chunk and
	// parity frames occupy [HeaderLen, IndexOff) exactly.
	IndexOff int64
	// Lens holds each chunk's payload length, from the verified index.
	Lens []uint64
	// PLens holds each parity group's payload length (v2 only).
	PLens []uint64
	// CRCs holds each chunk payload's CRC from the index (v2 only).
	CRCs []uint32

	// offsets[i] is chunk i's frame (tag byte) offset; offsets[Chunks()]
	// is IndexOff. Without parity, extents are offsets[i] through
	// offsets[i+1]; with parity interleaved, a chunk's extent ends at
	// offsets[i] + frameLen(Lens[i]) instead (use FrameExtent).
	offsets []int64
	// parityOffs[g] is parity group g's frame offset (v2 only).
	parityOffs []int64
}

// minFrameLen is the smallest possible chunk frame: tag, one-byte length
// prefix, CRC, one payload byte.
const minFrameLen = 7

// minIndexLen is the smallest possible index frame: tag, count varint,
// CRC (a zero-chunk container is invalid, but the bound stays safe).
const minIndexLen = 6

// OpenIndex parses the header and the tail index frame of the container
// in rs — never the chunk payloads — and returns the offset table for
// random chunk access. The limits are enforced before any input-derived
// allocation: MaxElements against the header geometry, MaxChunkBytes
// against every index-declared chunk length. rs is left positioned at an
// unspecified offset; callers must seek before reading.
func OpenIndex(rs io.ReadSeeker, lim Limits) (*StreamIndex, error) {
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("streamfmt: seeking container end: %w", err)
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("streamfmt: seeking container start: %w", err)
	}
	hr, err := NewReaderLimits(rs, lim)
	if err != nil {
		return nil, err
	}
	ix := &StreamIndex{Hdr: hr.Header(), HeaderLen: hr.Consumed(), Size: size}
	chunks := ix.Hdr.Chunks()
	// Cheapest possible sanity bound, checked before the index window is
	// even read: the declared chunk count must physically fit.
	if size-ix.HeaderLen < int64(chunks)*minFrameLen+minIndexLen {
		return nil, fmt.Errorf("%w: %d-byte container cannot hold %d chunk frames and an index",
			ErrTruncated, size, chunks)
	}
	ib, idxOff, err := ix.findTailIndex(rs, chunks)
	if err != nil {
		return nil, err
	}
	ix.Lens, ix.PLens, ix.CRCs, ix.IndexOff = ib.lens, ib.plens, ib.crcs, idxOff

	// Rebuild the offset table — chunk frames interleaved with one
	// parity frame per group on the v2 layout — and prove it tiles
	// [HeaderLen, IndexOff) exactly; the index is not trusted until the
	// arithmetic closes.
	k := ix.Hdr.ParityK
	ix.offsets = make([]int64, chunks+1)
	if k > 0 {
		ix.parityOffs = make([]int64, ix.Hdr.Groups())
	}
	off := ix.HeaderLen
	g := 0
	for i, l := range ib.lens {
		if l > lim.chunkCap() {
			return nil, fmt.Errorf("%w: index declares chunk %d of %d bytes, limit %d",
				ErrLimit, i, l, lim.chunkCap())
		}
		ix.offsets[i] = off
		off += frameLen(l)
		if off > idxOff {
			return nil, fmt.Errorf("%w: index lengths overrun the index frame (chunk %d ends at %d, index at %d)",
				ErrCorrupt, i, off, idxOff)
		}
		if k > 0 && (i%k == k-1 || i == chunks-1) {
			pl := ib.plens[g]
			if pl > lim.chunkCap() {
				return nil, fmt.Errorf("%w: index declares parity frame %d of %d bytes, limit %d",
					ErrLimit, g, pl, lim.chunkCap())
			}
			ix.parityOffs[g] = off
			off += frameLen(pl)
			if off > idxOff {
				return nil, fmt.Errorf("%w: index lengths overrun the index frame (parity %d ends at %d, index at %d)",
					ErrCorrupt, g, off, idxOff)
			}
			g++
		}
	}
	if off != idxOff {
		return nil, fmt.Errorf("%w: chunk frames end at %d but the index frame begins at %d",
			ErrCorrupt, off, idxOff)
	}
	ix.offsets[chunks] = idxOff
	return ix, nil
}

// findTailIndex reads a bounded window off the container tail and
// locates the sealing index frame in it: a tagIndex byte whose body
// parses to exactly `chunks` lengths (plus parity lengths and chunk
// CRCs on the v2 layout), whose CRC verifies, and whose frame ends
// exactly at the end of the container.
func (ix *StreamIndex) findTailIndex(rs io.ReadSeeker, chunks int) (*indexBody, int64, error) {
	maxIndex := int64(1+binary.MaxVarintLen64+4) + int64(chunks)*binary.MaxVarintLen64
	if ix.Hdr.ParityK > 0 {
		maxIndex += int64(1+ix.Hdr.Groups())*binary.MaxVarintLen64 + 4*int64(chunks)
	}
	winStart := ix.Size - maxIndex
	if winStart < ix.HeaderLen {
		winStart = ix.HeaderLen
	}
	// The window is bounded by the post-header region of the real file,
	// whatever the (input-derived, possibly hostile) chunk count says:
	// an overflowed maxIndex must fail typed, not size an allocation.
	winLen := ix.Size - winStart
	if winLen < minIndexLen || winLen > ix.Size-ix.HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d-chunk index window of %d bytes is impossible in a %d-byte container",
			ErrCorrupt, chunks, winLen, ix.Size)
	}
	if _, err := rs.Seek(winStart, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("streamfmt: seeking container tail: %w", err)
	}
	win := make([]byte, winLen)
	if _, err := io.ReadFull(rs, win); err != nil {
		return nil, 0, readErr(err, "index window")
	}
	if ib, start, ok := findIndex(win, 0, &ix.Hdr); ok {
		return ib, winStart + start, nil
	}
	return nil, 0, fmt.Errorf("%w: no verifiable index frame at the container tail (unsealed, truncated, or corrupt; salvage can attempt recovery)",
		ErrCorrupt)
}

// Chunks returns the number of chunk frames in the container.
func (ix *StreamIndex) Chunks() int { return len(ix.Lens) }

// ParityK returns the parity group size (zero without parity).
func (ix *StreamIndex) ParityK() int { return ix.Hdr.ParityK }

// FrameExtent returns chunk i's frame byte range [off, end) — tag byte
// through the end of the payload.
func (ix *StreamIndex) FrameExtent(i int) (off, end int64) {
	off = ix.offsets[i]
	//lint:allow wrapreach OpenIndex proved every Lens entry ≤ MaxFrameLen and tiling the file span, so frameLen cannot wrap
	return off, off + frameLen(ix.Lens[i])
}

// ParityExtent returns parity group g's frame byte range [off, end).
func (ix *StreamIndex) ParityExtent(g int) (off, end int64) {
	off = ix.parityOffs[g]
	return off, off + frameLen(ix.PLens[g])
}

// ExtentBytes returns the total container bytes spanned by the chunk
// frames [c0, c1) — the exact amount a range read must fetch. With
// parity interleaved the span includes interior parity frames (they sit
// between the chunks) but never a parity frame trailing chunk c1-1.
func (ix *StreamIndex) ExtentBytes(c0, c1 int) int64 {
	if c1 <= c0 {
		return 0
	}
	_, end := ix.FrameExtent(c1 - 1)
	return end - ix.offsets[c0]
}

// FrameReader reads a contiguous run of chunk frames [c0, c1) whose
// extents are known from the index, CRC-verifying each frame; parity
// frames interleaved in the run are skipped (they are counted in
// BytesRead but never verified — the chunk CRCs already cover the
// data). r must be positioned at chunk c0's frame offset; the reader
// consumes exactly ExtentBytes(c0, c1) bytes from it on a clean pass.
type FrameReader struct {
	ix     *StreamIndex
	br     *bufio.Reader
	next   int
	end    int
	pos    int64
	read   int64
	parity int
}

// Frames returns a FrameReader over chunks [c0, c1) of r.
func (ix *StreamIndex) Frames(r io.Reader, c0, c1 int) *FrameReader {
	return &FrameReader{ix: ix, br: bufio.NewReader(r), next: c0, end: c1, pos: ix.offsets[c0]}
}

// Next returns the next chunk's CRC-verified payload and its field-order
// sequence number, reusing scratch when it is large enough. The payload
// aliases frame, which is the full frame buffer (scratch or a fresh
// allocation) — callers recycle frame, not payload, so buffer capacity
// is not lost to the frame header prefix. It returns io.EOF after chunk
// end-1. Allocating up front from the index length is safe here, unlike
// the forward path's grow-as-bytes-arrive discipline: OpenIndex has
// already proven the bytes exist inside the container and capped every
// length against the limits.
//
// A frame that fails verification yields an error wrapping
// ErrFrameDamaged, and the reader stays usable: the damaged frame's
// bytes are already consumed, so the next call moves on to the
// following chunk. Callers with parity available can record the
// sequence number and repair it after the pass.
func (fr *FrameReader) Next(scratch []byte) (payload, frame []byte, seq int, err error) {
	if fr.next >= fr.end {
		return nil, nil, fr.next, io.EOF
	}
	i := fr.next
	off, end := fr.ix.FrameExtent(i)
	if skip := off - fr.pos; skip > 0 {
		// Interior parity frame(s) sit between the previous chunk and
		// this one; discard them unread.
		if _, err := fr.br.Discard(int(skip)); err != nil {
			return nil, nil, i, readErr(err, fmt.Sprintf("parity frame before chunk %d", i))
		}
		fr.pos = off
		fr.read += skip
		fr.parity++
	}
	n := int(end - off)
	frame = scratch
	if n > cap(frame) {
		frame = make([]byte, n)
	}
	frame = frame[:n]
	if _, err := io.ReadFull(fr.br, frame); err != nil {
		return nil, nil, i, readErr(err, fmt.Sprintf("chunk %d frame", i))
	}
	fr.pos = end
	fr.read += int64(n)
	fr.next++
	payload, reason := verifyFrame(frame, fr.ix.Lens[i])
	if payload == nil {
		return nil, nil, i, fmt.Errorf("%w: chunk %d: %s", ErrFrameDamaged, i, reason)
	}
	return payload, frame, i, nil
}

// BytesRead returns the container bytes consumed so far.
func (fr *FrameReader) BytesRead() int64 { return fr.read }

// ParitySkipped returns the number of interior parity frames discarded.
func (fr *FrameReader) ParitySkipped() int { return fr.parity }

// RepairChunk reconstructs chunk seq of a parity container from rs by
// XOR-combining the group's parity frame with the surviving sibling
// chunk frames, each fetched with its own seek and CRC-verified. The
// result is truncated to the index length and proven against the chunk
// CRC the sealed index recorded. It returns the payload and the
// container bytes fetched; any second loss in the group (a damaged
// sibling or parity frame) is a typed ErrCorrupt — repair covers
// exactly one loss per group. rs is left at an unspecified offset.
func (ix *StreamIndex) RepairChunk(rs io.ReadSeeker, seq int) (payload []byte, fetched int64, err error) {
	k := ix.Hdr.ParityK
	if k == 0 {
		return nil, 0, fmt.Errorf("%w: chunk %d: no parity frames to repair from", ErrCorrupt, seq)
	}
	g := seq / k
	pOff, pEnd := ix.ParityExtent(g)
	acc, err := fetchVerified(rs, pOff, pEnd, tagParity, ix.PLens[g],
		fmt.Sprintf("parity frame for group %d", g))
	fetched = pEnd - pOff
	if err != nil {
		return nil, fetched, err
	}
	lo, hi := ix.Hdr.GroupRange(g)
	for i := lo; i < hi; i++ {
		if i == seq {
			continue
		}
		off, end := ix.FrameExtent(i)
		sib, err := fetchVerified(rs, off, end, tagChunk, ix.Lens[i],
			fmt.Sprintf("sibling chunk %d needed to repair chunk %d", i, seq))
		fetched += end - off
		if err != nil {
			return nil, fetched, err
		}
		xorInto(acc, sib)
	}
	rec := acc[:ix.Lens[seq]]
	if crc32.ChecksumIEEE(rec) != ix.CRCs[seq] {
		return nil, fetched, fmt.Errorf("%w: chunk %d: parity reconstruction failed its recorded CRC", ErrCorrupt, seq)
	}
	return rec, fetched, nil
}

// fetchVerified seeks to one frame, reads its full extent, and verifies
// it, returning a payload that owns its backing array.
func fetchVerified(rs io.ReadSeeker, off, end int64, tag byte, want uint64, what string) ([]byte, error) {
	if _, err := rs.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("streamfmt: seeking %s: %w", what, err)
	}
	//lint:allow allochot repair path is cold: it runs once per damaged frame, never on clean reads
	//lint:allow limitreach extents come from an OpenIndex whose lengths passed the caller's Limits and the tiling proof — the bytes exist inside the container
	frame := make([]byte, end-off)
	if _, err := io.ReadFull(rs, frame); err != nil {
		return nil, readErr(err, what)
	}
	payload, reason := verifyTaggedFrame(frame, tag, want)
	if payload == nil {
		return nil, fmt.Errorf("%w: %s: %s", ErrCorrupt, what, reason)
	}
	return payload, nil
}
