package streamfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Salvage scan: structural recovery of a damaged stream container.
//
// A normal Reader aborts at the first malformed frame because it cannot
// trust anything downstream of damage. With the whole container in
// memory the geometry can be re-derived from two redundant sources —
// the per-frame length prefixes and the sealing index frame — so
// undamaged chunks on both sides of a corrupted frame are still
// recoverable:
//
//   - If the tail index frame verifies (its own CRC), it fixes every
//     chunk frame's offset exactly, so a chunk whose length prefix was
//     destroyed does not desynchronize the frames after it.
//   - Without the index (damaged or truncated away), the scan walks
//     frames forward trusting each length prefix; a chunk that fails
//     its CRC but has a plausible extent is skipped in place, and the
//     scan stops at the first structural break (everything after is
//     lost).
//
// The scan assumes in-place corruption (bit rot, zero-fill, torn
// writes) — inserted or deleted bytes shift all downstream offsets and
// degrade to the forward-scan behavior.
//
// Parity containers (version 0x02) upgrade the index-anchored scan from
// damage-tolerant to damage-repairing: a group that lost exactly one
// chunk, with its parity frame and all sibling chunks intact, gets that
// chunk reconstructed byte-identically by XOR and re-verified against
// the chunk CRC recorded in the sealed index. The forward scan cannot
// repair — without the index there is no trusted per-chunk CRC to prove
// a reconstruction against — so index loss degrades to skip-and-report.

// FrameInfo describes one chunk frame's salvage outcome.
type FrameInfo struct {
	// Seq is the chunk's field-order index.
	Seq int
	// Offset and End delimit the frame (tag byte through payload) in
	// the container, when known; End == 0 means the extent is unknown
	// (structure lost before this frame).
	Offset, End int64
	// Len is the frame's payload length (from the index when available,
	// else the frame's own prefix); zero when unknown.
	Len uint64
	// Payload is the CRC-verified chunk payload, nil when damaged.
	Payload []byte
	// Damaged reports that the frame could not be verified.
	Damaged bool
	// Repaired reports that the payload was reconstructed from the
	// group's parity frame and siblings (and re-verified) rather than
	// read intact.
	Repaired bool
	// Reason says why a damaged frame was rejected.
	Reason string
}

// ScanReport is the result of a salvage scan.
type ScanReport struct {
	Header Header
	// HeaderLen is the container offset where frames begin.
	HeaderLen int64
	// Frames has exactly Header.Chunks() entries, in field order.
	Frames []FrameInfo
	// Parity has one entry per parity group (nil for parity-free
	// containers); a parity frame's Payload is only kept while repair
	// runs and is nil in the returned report.
	Parity []FrameInfo
	// ChunkCRCs holds the per-chunk payload CRCs recorded in a verified
	// v2 index, nil otherwise.
	ChunkCRCs []uint32
	// IndexOK reports whether the tail index frame verified; when true,
	// frame offsets come from the index and a damaged frame cannot
	// desynchronize its successors.
	IndexOK bool
	// Truncated reports that the container ended before its structure
	// did (the failure shape of an interrupted dump).
	Truncated bool
}

// ScanSalvage scans an in-memory stream container, verifying what it
// can and repairing single-loss parity groups when the container
// carries parity frames and a verified index. It fails only when the
// header itself is unusable (no geometry to salvage against) or
// violates lim; any damage past the header is reported per frame
// instead.
func ScanSalvage(buf []byte, lim Limits) (*ScanReport, error) {
	sr, err := NewReaderLimits(bytes.NewReader(buf), lim)
	if err != nil {
		return nil, err
	}
	hdr := sr.Header()
	rep := &ScanReport{
		Header:    hdr,
		HeaderLen: sr.Consumed(),
		Frames:    make([]FrameInfo, hdr.Chunks()),
		Parity:    make([]FrameInfo, hdr.Groups()),
	}
	if hdr.ParityK == 0 {
		rep.Parity = nil
	}
	for i := range rep.Frames {
		rep.Frames[i].Seq = i
	}
	for g := range rep.Parity {
		rep.Parity[g].Seq = g
	}
	if ib, _, ok := findIndex(buf, rep.HeaderLen, &hdr); ok {
		rep.IndexOK = true
		rep.ChunkCRCs = ib.crcs
		scanWithIndex(buf, rep, ib, lim)
		repairGroups(rep)
		for g := range rep.Parity {
			rep.Parity[g].Payload = nil
		}
		return rep, nil
	}
	scanForward(buf, rep, lim)
	return rep, nil
}

// indexBody is a parsed, CRC-verified sealing index.
type indexBody struct {
	// lens holds each chunk frame's payload length.
	lens []uint64
	// plens holds each parity frame's payload length (v2 only).
	plens []uint64
	// crcs holds each chunk payload's CRC (v2 only).
	crcs []uint32
}

// findIndex locates and verifies the sealing index frame near the tail:
// a tagIndex byte whose body parses to exactly the header's chunk (and,
// for parity containers, group) geometry, whose CRC verifies, and whose
// frame ends exactly at the end of the buffer. The CRC makes a false
// positive on payload bytes vanishingly unlikely. The returned start is
// the tag byte's offset in buf (the seekable path checks it against the
// offsets the lengths imply; the salvage path does not need it).
func findIndex(buf []byte, headerLen int64, hdr *Header) (*indexBody, int64, bool) {
	// The smallest index frame is tag + count varint + CRC.
	for start := int64(len(buf)) - 6; start >= headerLen; start-- {
		if buf[start] != tagIndex {
			continue
		}
		if ib, ok := parseIndexAt(buf[start+1:], hdr); ok {
			return ib, start, true
		}
	}
	return nil, 0, false
}

// parseIndexAt parses an index body + CRC that must consume body exactly.
func parseIndexAt(body []byte, hdr *Header) (*indexBody, bool) {
	chunks := hdr.Chunks()
	off := 0
	count, k := binary.Uvarint(body)
	// Each length is at least one varint byte, so a count the remaining
	// body cannot possibly hold is rejected before the lengths slice is
	// allocated (a header declaring 2^40 chunks must not cost 8 TiB here).
	if k <= 0 || count != uint64(chunks) || count > uint64(len(body)) {
		return nil, false
	}
	off += k
	ib := &indexBody{lens: make([]uint64, chunks)}
	for i := range ib.lens {
		l, k := binary.Uvarint(body[off:])
		if k <= 0 || l == 0 || l > MaxFrameLen {
			return nil, false
		}
		ib.lens[i] = l
		off += k
	}
	if hdr.ParityK > 0 {
		groups := hdr.Groups()
		pc, k := binary.Uvarint(body[off:])
		if k <= 0 || pc != uint64(groups) {
			return nil, false
		}
		off += k
		ib.plens = make([]uint64, groups)
		for g := range ib.plens {
			l, k := binary.Uvarint(body[off:])
			// A parity payload is exactly as long as the group's longest
			// chunk payload; anything else is not this container's index.
			if k <= 0 || l != groupParityLen(ib.lens, hdr, g) {
				return nil, false
			}
			ib.plens[g] = l
			off += k
		}
		if len(body)-off < 4*chunks {
			return nil, false
		}
		ib.crcs = make([]uint32, chunks)
		for i := range ib.crcs {
			ib.crcs[i] = binary.BigEndian.Uint32(body[off:])
			off += 4
		}
	}
	if len(body)-off != 4 {
		return nil, false
	}
	if crc32.ChecksumIEEE(body[:off]) != binary.BigEndian.Uint32(body[off:]) {
		return nil, false
	}
	return ib, true
}

// groupParityLen returns the parity payload length group g must have:
// the longest chunk payload in the group.
func groupParityLen(lens []uint64, hdr *Header, g int) uint64 {
	lo, hi := hdr.GroupRange(g)
	var max uint64
	for i := lo; i < hi; i++ {
		if lens[i] > max {
			max = lens[i]
		}
	}
	return max
}

// frameLen returns the full on-disk frame size for a payload of l
// bytes: tag, length varint, CRC, payload.
func frameLen(l uint64) int64 {
	return int64(1+uvarintLen(l)+4) + int64(l)
}

// scanWithIndex verifies each frame at the offset the index implies,
// walking the interleaved chunk/parity layout; a frame that disagrees
// with the index in any way is damaged, but its successors keep their
// known offsets.
func scanWithIndex(buf []byte, rep *ScanReport, ib *indexBody, lim Limits) {
	k := rep.Header.ParityK
	off := rep.HeaderLen
	g := 0
	for i := range rep.Frames {
		f := &rep.Frames[i]
		f.Offset = off
		f.Len = ib.lens[i]
		f.End = off + frameLen(ib.lens[i])
		off = f.End
		scanOneFrame(buf, rep, f, tagChunk, ib.lens[i], lim)
		if k > 0 && (i%k == k-1 || i == len(rep.Frames)-1) {
			p := &rep.Parity[g]
			p.Offset = off
			p.Len = ib.plens[g]
			p.End = off + frameLen(ib.plens[g])
			off = p.End
			scanOneFrame(buf, rep, p, tagParity, ib.plens[g], lim)
			g++
		}
	}
}

// scanOneFrame verifies one frame (chunk or parity) whose extent is
// already recorded in f, filling Payload or Damaged/Reason.
func scanOneFrame(buf []byte, rep *ScanReport, f *FrameInfo, tag byte, want uint64, lim Limits) {
	if want > lim.chunkCap() {
		f.Damaged = true
		f.Reason = fmt.Sprintf("chunk of %d bytes exceeds limit %d", want, lim.chunkCap())
		return
	}
	if f.End > int64(len(buf)) {
		f.Damaged = true
		f.Reason = "frame extends past the container"
		rep.Truncated = true
		return
	}
	payload, reason := verifyTaggedFrame(buf[f.Offset:f.End], tag, want)
	if payload == nil {
		f.Damaged = true
		f.Reason = reason
		return
	}
	f.Payload = payload
}

// repairGroups reconstructs single-loss parity groups in place: for each
// group with exactly one damaged chunk, an intact parity frame, and all
// sibling chunks intact, the lost payload is the XOR of parity and
// siblings, truncated to the index length and proven against the chunk
// CRC the sealed index recorded.
func repairGroups(rep *ScanReport) {
	k := rep.Header.ParityK
	if k == 0 || !rep.IndexOK {
		return
	}
	for g := range rep.Parity {
		pf := &rep.Parity[g]
		if pf.Damaged || pf.Payload == nil {
			continue
		}
		lo, hi := rep.Header.GroupRange(g)
		victim := -1
		multi := false
		for i := lo; i < hi; i++ {
			if rep.Frames[i].Damaged {
				if victim >= 0 {
					multi = true
					break
				}
				victim = i
			}
		}
		if multi || victim < 0 {
			continue
		}
		acc := append([]byte(nil), pf.Payload...)
		for i := lo; i < hi; i++ {
			if i == victim {
				continue
			}
			xorInto(acc, rep.Frames[i].Payload)
		}
		f := &rep.Frames[victim]
		rec := acc[:f.Len]
		if crc32.ChecksumIEEE(rec) != rep.ChunkCRCs[victim] {
			// Reconstruction does not prove out (e.g. the index region
			// that survived its CRC is stale); the chunk stays lost.
			continue
		}
		f.Payload = rec
		f.Damaged = false
		f.Repaired = true
		f.Reason = ""
	}
}

// xorInto folds src into acc; src is never longer than acc (parity
// payloads span the group's longest chunk).
func xorInto(acc, src []byte) {
	for i, b := range src {
		acc[i] ^= b
	}
}

// verifyFrame checks one complete chunk frame region against the
// index's length for it, returning the payload or a rejection reason.
func verifyFrame(frame []byte, want uint64) ([]byte, string) {
	return verifyTaggedFrame(frame, tagChunk, want)
}

// verifyTaggedFrame is verifyFrame for an arbitrary expected tag.
func verifyTaggedFrame(frame []byte, tag byte, want uint64) ([]byte, string) {
	if frame[0] != tag {
		return nil, fmt.Sprintf("frame tag 0x%02x", frame[0])
	}
	plen, k := binary.Uvarint(frame[1:])
	if k <= 0 || plen != want {
		return nil, fmt.Sprintf("length prefix %d disagrees with index (%d)", plen, want)
	}
	// A corrupted, non-canonically-wide varint can claim the right value
	// in too many bytes; the CRC and payload must still fit the extent
	// the index implies.
	crcOff := 1 + k
	if crcOff+4+int(want) != len(frame) {
		return nil, "length prefix width disagrees with index extent"
	}
	crc := binary.BigEndian.Uint32(frame[crcOff:])
	payload := frame[crcOff+4:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// scanForward walks frames trusting per-frame length prefixes (the
// no-index fallback). A CRC-failed frame with a plausible extent is
// skipped in place; the first structural break loses the rest. No
// repair is attempted on this path — without the index there is no
// trusted chunk CRC to prove a reconstruction against.
func scanForward(buf []byte, rep *ScanReport, lim Limits) {
	pk := rep.Header.ParityK
	off := rep.HeaderLen
	g := 0
	for i := range rep.Frames {
		f := &rep.Frames[i]
		ok, next := scanForwardFrame(buf, rep, f, tagChunk, i, off, lim)
		if !ok {
			return
		}
		off = next
		if pk > 0 && (i%pk == pk-1 || i == len(rep.Frames)-1) && f.End != 0 {
			p := &rep.Parity[g]
			ok, next := scanForwardFrame(buf, rep, p, tagParity, i+1, off, lim)
			if !ok {
				return
			}
			off = next
			g++
		}
	}
	for ; g < len(rep.Parity); g++ {
		p := &rep.Parity[g]
		if p.End == 0 && !p.Damaged {
			p.Damaged, p.Reason = true, "container ended"
		}
	}
}

// scanForwardFrame parses one frame at off trusting its own length
// prefix. It returns false when the structure is lost (everything from
// chunk restAt on has been marked), else the offset past the frame. A
// frame that merely fails its CRC keeps a valid extent and is skipped
// in place.
func scanForwardFrame(buf []byte, rep *ScanReport, f *FrameInfo, tag byte, restAt int, off int64, lim Limits) (bool, int64) {
	f.Offset = off
	if off >= int64(len(buf)) {
		f.Damaged, f.Reason, f.Offset = true, "container ended", 0
		rep.Truncated = true
		return true, off
	}
	if buf[off] != tag {
		// Unknown tag with no index to resync against: the frame
		// boundary is lost for good.
		markRest(rep, restAt, fmt.Sprintf("cannot resync past frame tag 0x%02x without an index", buf[off]))
		return false, 0
	}
	plen, k := binary.Uvarint(buf[off+1:])
	if k <= 0 || plen == 0 || plen > MaxFrameLen {
		markRest(rep, restAt, "unparseable length prefix and no index to resync against")
		return false, 0
	}
	if plen > lim.chunkCap() {
		markRest(rep, restAt, fmt.Sprintf("chunk of %d bytes exceeds limit %d", plen, lim.chunkCap()))
		return false, 0
	}
	f.Len = plen
	f.End = off + int64(1+k+4) + int64(plen)
	if f.End > int64(len(buf)) {
		f.Damaged, f.Reason = true, "frame extends past the container"
		rep.Truncated = true
		markRest(rep, restAt+1, "container ended")
		return false, 0
	}
	crcOff := off + int64(1+k)
	crc := binary.BigEndian.Uint32(buf[crcOff:])
	payload := buf[crcOff+4 : f.End]
	if crc32.ChecksumIEEE(payload) == crc {
		if tag == tagChunk {
			f.Payload = payload
		}
	} else {
		f.Damaged, f.Reason = true, "checksum mismatch"
	}
	return true, f.End
}

// markRest damages every chunk frame from i on — and, for parity
// containers, every parity frame from i's group on — with reason
// (offsets unknown).
func markRest(rep *ScanReport, i int, reason string) {
	for j := i; j < len(rep.Frames); j++ {
		f := &rep.Frames[j]
		f.Damaged, f.Reason = true, reason
		f.End = 0
	}
	if k := rep.Header.ParityK; k > 0 {
		for g := i / k; g < len(rep.Parity); g++ {
			p := &rep.Parity[g]
			if p.Payload == nil && !p.Damaged {
				p.Damaged, p.Reason, p.End = true, reason, 0
			}
		}
	}
	rep.Truncated = true
}

// uvarintLen returns the encoded width of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
