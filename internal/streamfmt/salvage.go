package streamfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Salvage scan: structural recovery of a damaged stream container.
//
// A normal Reader aborts at the first malformed frame because it cannot
// trust anything downstream of damage. With the whole container in
// memory the geometry can be re-derived from two redundant sources —
// the per-frame length prefixes and the sealing index frame — so
// undamaged chunks on both sides of a corrupted frame are still
// recoverable:
//
//   - If the tail index frame verifies (its own CRC), it fixes every
//     chunk frame's offset exactly, so a chunk whose length prefix was
//     destroyed does not desynchronize the frames after it.
//   - Without the index (damaged or truncated away), the scan walks
//     frames forward trusting each length prefix; a chunk that fails
//     its CRC but has a plausible extent is skipped in place, and the
//     scan stops at the first structural break (everything after is
//     lost).
//
// The scan assumes in-place corruption (bit rot, zero-fill, torn
// writes) — inserted or deleted bytes shift all downstream offsets and
// degrade to the forward-scan behavior.

// FrameInfo describes one chunk frame's salvage outcome.
type FrameInfo struct {
	// Seq is the chunk's field-order index.
	Seq int
	// Offset and End delimit the frame (tag byte through payload) in
	// the container, when known; End == 0 means the extent is unknown
	// (structure lost before this frame).
	Offset, End int64
	// Payload is the CRC-verified chunk payload, nil when damaged.
	Payload []byte
	// Damaged reports that the frame could not be verified.
	Damaged bool
	// Reason says why a damaged frame was rejected.
	Reason string
}

// ScanReport is the result of a salvage scan.
type ScanReport struct {
	Header Header
	// HeaderLen is the container offset where frames begin.
	HeaderLen int64
	// Frames has exactly Header.Chunks() entries, in field order.
	Frames []FrameInfo
	// IndexOK reports whether the tail index frame verified; when true,
	// frame offsets come from the index and a damaged frame cannot
	// desynchronize its successors.
	IndexOK bool
	// Truncated reports that the container ended before its structure
	// did (the failure shape of an interrupted dump).
	Truncated bool
}

// ScanSalvage scans an in-memory stream container, verifying what it
// can. It fails only when the header itself is unusable (no geometry to
// salvage against) or violates lim; any damage past the header is
// reported per frame instead.
func ScanSalvage(buf []byte, lim Limits) (*ScanReport, error) {
	sr, err := NewReaderLimits(bytes.NewReader(buf), lim)
	if err != nil {
		return nil, err
	}
	hdr := sr.Header()
	rep := &ScanReport{
		Header:    hdr,
		HeaderLen: sr.Consumed(),
		Frames:    make([]FrameInfo, hdr.Chunks()),
	}
	for i := range rep.Frames {
		rep.Frames[i].Seq = i
	}
	if lens, _, ok := findIndex(buf, rep.HeaderLen, hdr.Chunks()); ok {
		rep.IndexOK = true
		scanWithIndex(buf, rep, lens, lim)
		return rep, nil
	}
	scanForward(buf, rep, lim)
	return rep, nil
}

// findIndex locates and verifies the sealing index frame near the tail:
// a tagIndex byte whose body parses to exactly `chunks` lengths, whose
// CRC verifies, and whose frame ends exactly at the end of the buffer.
// The CRC makes a false positive on payload bytes vanishingly unlikely.
// The returned start is the tag byte's offset in buf (the seekable path
// checks it against the offsets the lengths imply; the salvage path does
// not need it).
func findIndex(buf []byte, headerLen int64, chunks int) ([]uint64, int64, bool) {
	// The smallest index frame is tag + count varint + CRC.
	for start := int64(len(buf)) - 6; start >= headerLen; start-- {
		if buf[start] != tagIndex {
			continue
		}
		if lens, ok := parseIndexAt(buf[start+1:], chunks); ok {
			return lens, start, true
		}
	}
	return nil, 0, false
}

// parseIndexAt parses an index body + CRC that must consume body exactly.
func parseIndexAt(body []byte, chunks int) ([]uint64, bool) {
	off := 0
	count, k := binary.Uvarint(body)
	// Each length is at least one varint byte, so a count the remaining
	// body cannot possibly hold is rejected before the lengths slice is
	// allocated (a header declaring 2^40 chunks must not cost 8 TiB here).
	if k <= 0 || count != uint64(chunks) || count > uint64(len(body)) {
		return nil, false
	}
	off += k
	lens := make([]uint64, chunks)
	for i := range lens {
		l, k := binary.Uvarint(body[off:])
		if k <= 0 || l == 0 || l > MaxFrameLen {
			return nil, false
		}
		lens[i] = l
		off += k
	}
	if len(body)-off != 4 {
		return nil, false
	}
	if crc32.ChecksumIEEE(body[:off]) != binary.BigEndian.Uint32(body[off:]) {
		return nil, false
	}
	return lens, true
}

// scanWithIndex verifies each chunk frame at the offset the index
// implies; a frame that disagrees with the index in any way is damaged,
// but its successors keep their known offsets.
func scanWithIndex(buf []byte, rep *ScanReport, lens []uint64, lim Limits) {
	off := rep.HeaderLen
	for i := range rep.Frames {
		f := &rep.Frames[i]
		f.Offset = off
		frameLen := int64(1+uvarintLen(lens[i])+4) + int64(lens[i])
		f.End = off + frameLen
		off = f.End
		if lens[i] > lim.chunkCap() {
			f.Damaged = true
			f.Reason = fmt.Sprintf("chunk of %d bytes exceeds limit %d", lens[i], lim.chunkCap())
			continue
		}
		if f.End > int64(len(buf)) {
			f.Damaged = true
			f.Reason = "frame extends past the container"
			rep.Truncated = true
			continue
		}
		payload, reason := verifyFrame(buf[f.Offset:f.End], lens[i])
		if payload == nil {
			f.Damaged = true
			f.Reason = reason
			continue
		}
		f.Payload = payload
	}
}

// verifyFrame checks one complete frame region against the index's
// length for it, returning the payload or a rejection reason.
func verifyFrame(frame []byte, want uint64) ([]byte, string) {
	if frame[0] != tagChunk {
		return nil, fmt.Sprintf("frame tag 0x%02x", frame[0])
	}
	plen, k := binary.Uvarint(frame[1:])
	if k <= 0 || plen != want {
		return nil, fmt.Sprintf("length prefix %d disagrees with index (%d)", plen, want)
	}
	// A corrupted, non-canonically-wide varint can claim the right value
	// in too many bytes; the CRC and payload must still fit the extent
	// the index implies.
	crcOff := 1 + k
	if crcOff+4+int(want) != len(frame) {
		return nil, "length prefix width disagrees with index extent"
	}
	crc := binary.BigEndian.Uint32(frame[crcOff:])
	payload := frame[crcOff+4:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, "checksum mismatch"
	}
	return payload, ""
}

// scanForward walks frames trusting per-frame length prefixes (the
// no-index fallback). A CRC-failed chunk with a plausible extent is
// skipped in place; the first structural break loses the rest.
func scanForward(buf []byte, rep *ScanReport, lim Limits) {
	off := rep.HeaderLen
	for i := range rep.Frames {
		f := &rep.Frames[i]
		f.Offset = off
		if off >= int64(len(buf)) {
			f.Damaged, f.Reason, f.Offset = true, "container ended", 0
			rep.Truncated = true
			continue
		}
		if buf[off] != tagChunk {
			// Unknown tag with no index to resync against: the frame
			// boundary is lost for good.
			markRest(rep, i, fmt.Sprintf("cannot resync past frame tag 0x%02x without an index", buf[off]))
			return
		}
		plen, k := binary.Uvarint(buf[off+1:])
		if k <= 0 || plen == 0 || plen > MaxFrameLen {
			markRest(rep, i, "unparseable length prefix and no index to resync against")
			return
		}
		if plen > lim.chunkCap() {
			markRest(rep, i, fmt.Sprintf("chunk of %d bytes exceeds limit %d", plen, lim.chunkCap()))
			return
		}
		f.End = off + int64(1+k+4) + int64(plen)
		if f.End > int64(len(buf)) {
			f.Damaged, f.Reason = true, "frame extends past the container"
			rep.Truncated = true
			markRest(rep, i+1, "container ended")
			return
		}
		crcOff := off + int64(1+k)
		crc := binary.BigEndian.Uint32(buf[crcOff:])
		payload := buf[crcOff+4 : f.End]
		if crc32.ChecksumIEEE(payload) == crc {
			f.Payload = payload
		} else {
			f.Damaged, f.Reason = true, "checksum mismatch"
		}
		off = f.End
	}
}

// markRest damages every frame from i on with reason (offsets unknown).
func markRest(rep *ScanReport, i int, reason string) {
	for ; i < len(rep.Frames); i++ {
		f := &rep.Frames[i]
		f.Damaged, f.Reason = true, reason
		f.End = 0
	}
	rep.Truncated = true
}

// uvarintLen returns the encoded width of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
