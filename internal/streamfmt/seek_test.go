package streamfmt

// Index-layer unit tests for the seekable path: OpenIndex must derive
// the exact offset table from the tail index frame alone, refuse any
// container whose index does not verify or whose arithmetic does not
// close, and FrameReader must verify each fetched frame against it.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func seekPayloads() [][]byte {
	return [][]byte{
		[]byte("chunk-zero"),
		[]byte("chunk-one-longer-payload"),
		[]byte("z"),
	}
}

func TestOpenIndexOffsets(t *testing.T) {
	payloads := seekPayloads()
	stream := buildStream(t, testHeader(), payloads)
	ix, err := OpenIndex(bytes.NewReader(stream), Limits{})
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	if ix.Chunks() != len(payloads) || ix.Size != int64(len(stream)) {
		t.Fatalf("chunks=%d size=%d", ix.Chunks(), ix.Size)
	}
	for i, p := range payloads {
		if ix.Lens[i] != uint64(len(p)) {
			t.Errorf("len[%d] = %d, want %d", i, ix.Lens[i], len(p))
		}
		lo, hi := ix.FrameExtent(i)
		if stream[lo] != tagChunk {
			t.Errorf("chunk %d offset %d is not a chunk tag", i, lo)
		}
		// The payload occupies the tail of the frame extent.
		if !bytes.Equal(stream[hi-int64(len(p)):hi], p) {
			t.Errorf("chunk %d payload not at [%d,%d)", i, hi-int64(len(p)), hi)
		}
	}
	if _, last := ix.FrameExtent(len(payloads) - 1); last != ix.IndexOff {
		t.Errorf("frames end at %d, index at %d", last, ix.IndexOff)
	}
}

func TestOpenIndexFrameReader(t *testing.T) {
	payloads := seekPayloads()
	stream := buildStream(t, testHeader(), payloads)
	ix, err := OpenIndex(bytes.NewReader(stream), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Read chunks [1,3) from a reader positioned at chunk 1.
	off, _ := ix.FrameExtent(1)
	fr := ix.Frames(bytes.NewReader(stream[off:]), 1, 3)
	var scratch []byte
	for want := 1; want < 3; want++ {
		payload, frame, seq, err := fr.Next(scratch)
		if err != nil {
			t.Fatalf("Next(%d): %v", want, err)
		}
		if seq != want || !bytes.Equal(payload, payloads[want]) {
			t.Fatalf("Next returned seq %d payload %q", seq, payload)
		}
		scratch = frame
	}
	if _, _, _, err := fr.Next(scratch); err != io.EOF {
		t.Fatalf("after last chunk: err = %v, want io.EOF", err)
	}
	if fr.BytesRead() != ix.ExtentBytes(1, 3) {
		t.Fatalf("BytesRead = %d, want %d", fr.BytesRead(), ix.ExtentBytes(1, 3))
	}
}

func TestOpenIndexRejectsDamage(t *testing.T) {
	payloads := seekPayloads()
	stream := buildStream(t, testHeader(), payloads)

	// Truncation anywhere in the container kills the tail index.
	for _, cut := range []int{len(stream) - 1, len(stream) - 3, len(stream) / 2} {
		if _, err := OpenIndex(bytes.NewReader(stream[:cut]), Limits{}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("trunc@%d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// A flipped index CRC byte must not be trusted.
	mut := append([]byte(nil), stream...)
	mut[len(mut)-2] ^= 0x40
	if _, err := OpenIndex(bytes.NewReader(mut), Limits{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("index CRC flip: err = %v", err)
	}
	// A byte inserted before the index frame shifts the frame offsets:
	// the index still verifies, but the arithmetic no longer closes.
	ix, err := OpenIndex(bytes.NewReader(stream), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ins := append([]byte(nil), stream[:ix.IndexOff]...)
	ins = append(ins, 0x00)
	ins = append(ins, stream[ix.IndexOff:]...)
	if _, err := OpenIndex(bytes.NewReader(ins), Limits{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("inserted byte: err = %v, want ErrCorrupt", err)
	}
	// Too short to hold the declared chunk count at all: ErrTruncated.
	short := append([]byte(nil), stream[:10]...)
	if _, err := OpenIndex(bytes.NewReader(short), Limits{}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short container: err = %v, want ErrTruncated", err)
	}
}

func TestOpenIndexLimits(t *testing.T) {
	stream := buildStream(t, testHeader(), seekPayloads())
	if _, err := OpenIndex(bytes.NewReader(stream), Limits{MaxElements: 4}); !errors.Is(err, ErrLimit) {
		t.Errorf("MaxElements: err = %v", err)
	}
	if _, err := OpenIndex(bytes.NewReader(stream), Limits{MaxChunkBytes: 8}); !errors.Is(err, ErrLimit) {
		t.Errorf("MaxChunkBytes: err = %v", err)
	}
	if _, err := OpenIndex(bytes.NewReader(stream), Limits{MaxElements: 1 << 20, MaxChunkBytes: 1 << 20}); err != nil {
		t.Errorf("generous limits: %v", err)
	}
}

func TestFrameReaderDetectsPayloadDamage(t *testing.T) {
	payloads := seekPayloads()
	stream := buildStream(t, testHeader(), payloads)
	ix, err := OpenIndex(bytes.NewReader(stream), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ix.FrameExtent(1)
	for pos := lo; pos < hi; pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0x10
		// Chunk 0 is untouched and must still verify.
		fr := ix.Frames(bytes.NewReader(mut[ix.HeaderLen:]), 0, 2)
		if _, _, seq, err := fr.Next(nil); err != nil || seq != 0 {
			t.Fatalf("flip@%d: chunk 0 rejected: %v", pos, err)
		}
		// Chunk 1 carries the damage and must fail its CRC/extent check.
		if _, _, _, err := fr.Next(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip@%d: chunk 1 accepted (err = %v)", pos, err)
		}
	}
}
