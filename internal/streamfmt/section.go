package streamfmt

import (
	"fmt"
	"io"
	"sync"
)

// Section is an io.ReadSeeker over one byte extent of a shared
// ReadSeeker — the view a streaming archive hands OpenStream so one
// field's container can be indexed and range-read without the handle
// ever observing sibling fields' bytes. Each section carries its own
// logical position; the underlying seeker's position is re-established
// under the shared mutex on every read, so sections over the same
// source are safe to use from concurrent goroutines (reads serialize on
// the mutex, positions never interleave).
type Section struct {
	mu  *sync.Mutex
	src io.ReadSeeker
	off int64 // extent start in the underlying source
	n   int64 // extent length
	pos int64 // logical position within the extent
}

// NewSection returns a section over src's bytes [off, off+n). mu guards
// src's position and must be shared by every section (and any other
// reader) over the same source.
func NewSection(mu *sync.Mutex, src io.ReadSeeker, off, n int64) *Section {
	return &Section{mu: mu, src: src, off: off, n: n}
}

// Size returns the extent length in bytes.
func (s *Section) Size() int64 { return s.n }

// Read reads from the section at its logical position, returning io.EOF
// at the extent end. The underlying seek+read pair runs under the
// shared mutex.
func (s *Section) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= s.n {
		return 0, io.EOF
	}
	if rem := s.n - s.pos; int64(len(p)) > rem {
		p = p[:rem]
	}
	if _, err := s.src.Seek(s.off+s.pos, io.SeekStart); err != nil {
		return 0, fmt.Errorf("streamfmt: seeking section offset %d: %w", s.pos, err)
	}
	n, err := s.src.Read(p)
	s.pos += int64(n)
	if err == io.EOF && s.pos < s.n {
		// The source ended inside the extent the caller promised exists.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// Seek sets the logical position, with io.SeekEnd relative to the
// extent end. Seeking beyond the extent end is allowed (a subsequent
// Read returns io.EOF), matching bytes.Reader semantics; seeking before
// the start is an error.
func (s *Section) Seek(offset int64, whence int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = s.pos + offset
	case io.SeekEnd:
		abs = s.n + offset
	default:
		return 0, fmt.Errorf("streamfmt: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("streamfmt: seek to %d before section start", abs)
	}
	s.pos = abs
	return abs, nil
}
