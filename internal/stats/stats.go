// Package stats summarizes scalar fields with the statistics that predict
// lossy-compression behaviour: value distribution (range, zero fraction,
// sign mix, dynamic range in decades), information content (quantized
// entropy) and spatial smoothness (how well a neighbor predicts a point).
// cmd/fieldstats prints these for raw files so users can pick sensible
// error bounds and compressors.
package stats

import (
	"errors"
	"math"
	"sort"

	"repro/internal/floatbits"
	"repro/internal/grid"
)

// ErrEmpty is returned for fields with no finite values.
var ErrEmpty = errors.New("stats: no finite values")

// Summary describes a scalar field.
type Summary struct {
	N         int
	Finite    int // count of finite values
	NaNs      int
	Infs      int
	Zeros     int
	Negatives int
	Positives int

	Min, Max, Mean, Std float64
	// MinAbsNonzero is the smallest nonzero magnitude.
	MinAbsNonzero float64
	// DynamicRangeDecades is log10(max|v| / min nonzero |v|).
	DynamicRangeDecades float64
	// Percentiles at 1, 25, 50, 75, 99%.
	P1, P25, P50, P75, P99 float64

	// EntropyBits estimates the per-value information content after
	// quantizing to 256 uniform bins over the value range.
	EntropyBits float64
	// Smoothness is 1 − mean|Δ neighbor| / (2·std): ~1 for smooth fields,
	// ~0 for white noise, along the fastest-varying dimension.
	Smoothness float64
}

// Compute summarizes data with the given dimensions (dims may be nil for a
// flat series).
func Compute(data []float64, dims []int) (Summary, error) {
	s := Summary{N: len(data)}
	if dims == nil {
		dims = []int{len(data)}
	}
	if err := grid.Validate(dims, len(data)); err != nil {
		return s, err
	}

	var finite []float64
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	s.MinAbsNonzero = math.Inf(1)
	var sum float64
	for _, v := range data {
		switch {
		case math.IsNaN(v):
			s.NaNs++
			continue
		case math.IsInf(v, 0):
			s.Infs++
			continue
		}
		s.Finite++
		finite = append(finite, v)
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		switch {
		case floatbits.IsZero(v):
			s.Zeros++
		case v < 0:
			s.Negatives++
		default:
			s.Positives++
		}
		if !floatbits.IsZero(v) {
			if a := math.Abs(v); a < s.MinAbsNonzero {
				s.MinAbsNonzero = a
			}
		}
	}
	if s.Finite == 0 {
		return s, ErrEmpty
	}
	s.Mean = sum / float64(s.Finite)
	var varAcc float64
	for _, v := range finite {
		d := v - s.Mean
		varAcc += d * d
	}
	s.Std = math.Sqrt(varAcc / float64(s.Finite))

	if math.IsInf(s.MinAbsNonzero, 1) {
		s.MinAbsNonzero = 0
		s.DynamicRangeDecades = 0
	} else {
		maxAbs := math.Max(math.Abs(s.Min), math.Abs(s.Max))
		s.DynamicRangeDecades = math.Log10(maxAbs / s.MinAbsNonzero)
	}

	sorted := append([]float64(nil), finite...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P1, s.P25, s.P50, s.P75, s.P99 = pct(0.01), pct(0.25), pct(0.50), pct(0.75), pct(0.99)

	s.EntropyBits = entropy256(finite, s.Min, s.Max)
	s.Smoothness = smoothness(data, dims, s.Std)
	return s, nil
}

// entropy256 estimates Shannon entropy after 8-bit uniform quantization.
func entropy256(vals []float64, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	var hist [256]int
	scale := 255.9999 / (hi - lo)
	for _, v := range vals {
		hist[int((v-lo)*scale)]++
	}
	var h float64
	n := float64(len(vals))
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// smoothness measures neighbor predictability along the last dimension.
func smoothness(data []float64, dims []int, std float64) float64 {
	if floatbits.IsZero(std) {
		return 1
	}
	nx := dims[len(dims)-1]
	var sum float64
	cnt := 0
	for start := 0; start+nx <= len(data); start += nx {
		for i := 1; i < nx; i++ {
			a, b := data[start+i-1], data[start+i]
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				continue
			}
			sum += math.Abs(b - a)
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	sm := 1 - sum/float64(cnt)/(2*std)
	if sm < 0 {
		sm = 0
	}
	if sm > 1 {
		sm = 1
	}
	return sm
}

// SuggestRelBound recommends a point-wise relative bound: tight enough to
// keep the quantized entropy meaningful, looser for noisy fields. This is
// a heuristic starting point, not a guarantee of downstream analysis
// quality.
func (s Summary) SuggestRelBound() float64 {
	switch {
	case s.Smoothness > 0.9:
		return 1e-4
	case s.Smoothness > 0.6:
		return 1e-3
	default:
		return 1e-2
	}
}
