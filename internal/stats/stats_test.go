package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeBasic(t *testing.T) {
	data := []float64{-2, -1, 0, 1, 2, 4}
	s, err := Compute(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 6 || s.Finite != 6 {
		t.Fatalf("counts %+v", s)
	}
	if s.Min != -2 || s.Max != 4 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
	if s.Zeros != 1 || s.Negatives != 2 || s.Positives != 3 {
		t.Fatalf("sign counts %+v", s)
	}
	if math.Abs(s.Mean-4.0/6) > 1e-12 {
		t.Fatalf("mean %g", s.Mean)
	}
	if s.MinAbsNonzero != 1 {
		t.Fatalf("MinAbsNonzero %g", s.MinAbsNonzero)
	}
}

func TestComputeSpecials(t *testing.T) {
	data := []float64{1, math.NaN(), math.Inf(1), 2, math.Inf(-1)}
	s, err := Compute(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NaNs != 1 || s.Infs != 2 || s.Finite != 2 {
		t.Fatalf("special counts %+v", s)
	}
}

func TestComputeEmpty(t *testing.T) {
	if _, err := Compute([]float64{math.NaN()}, nil); err == nil {
		t.Fatal("all-NaN accepted")
	}
}

func TestDynamicRange(t *testing.T) {
	data := []float64{1e-3, 1, 1e3}
	s, err := Compute(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.DynamicRangeDecades-6) > 1e-9 {
		t.Fatalf("decades %g, want 6", s.DynamicRangeDecades)
	}
}

func TestEntropyExtremes(t *testing.T) {
	constant := make([]float64, 1000)
	for i := range constant {
		constant[i] = 5
	}
	s, err := Compute(constant, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.EntropyBits != 0 {
		t.Fatalf("constant entropy %g", s.EntropyBits)
	}

	rng := rand.New(rand.NewSource(1))
	uniform := make([]float64, 100000)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	s, err = Compute(uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.EntropyBits < 7.5 {
		t.Fatalf("uniform entropy %g, want ~8", s.EntropyBits)
	}
}

func TestSmoothness(t *testing.T) {
	n := 10000
	smooth := make([]float64, n)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) * 0.01)
	}
	s, err := Compute(smooth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Smoothness < 0.9 {
		t.Fatalf("sine smoothness %g", s.Smoothness)
	}

	rng := rand.New(rand.NewSource(2))
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	s, err = Compute(noise, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Smoothness > 0.6 {
		t.Fatalf("noise smoothness %g", s.Smoothness)
	}
}

func TestSuggestRelBound(t *testing.T) {
	if (Summary{Smoothness: 0.95}).SuggestRelBound() != 1e-4 {
		t.Fatal("smooth suggestion")
	}
	if (Summary{Smoothness: 0.7}).SuggestRelBound() != 1e-3 {
		t.Fatal("medium suggestion")
	}
	if (Summary{Smoothness: 0.1}).SuggestRelBound() != 1e-2 {
		t.Fatal("noisy suggestion")
	}
}

func TestPercentilesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	s, err := Compute(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.P1 <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 && s.P75 <= s.P99) {
		t.Fatalf("percentiles out of order: %+v", s)
	}
}

func TestDimsValidation(t *testing.T) {
	if _, err := Compute([]float64{1, 2, 3}, []int{2, 2}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}
