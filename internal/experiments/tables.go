package experiments

import (
	"fmt"
	"io"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fpzip"
)

// TableIIBounds are the six point-wise relative bounds of Table II.
var TableIIBounds = []float64{1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.3}

// Bases are the three logarithm bases of the base study.
var Bases = []repro.LogBase{repro.Base2, repro.BaseE, repro.Base10}

func baseName(b repro.LogBase) string {
	switch b {
	case repro.BaseE:
		return "e"
	case repro.Base10:
		return "10"
	default:
		return "2"
	}
}

// TableIIResult is the compression ratio of SZ_T per (field, bound, base).
type TableIIResult struct {
	Fields []string
	Bounds []float64
	// Ratio[fieldIdx][boundIdx][baseIdx]
	Ratio [][][]float64
}

// TableII reproduces Table II: the influence of the logarithm base on
// SZ_T's compression ratio over two NYX fields.
func TableII(cfg Config) (*TableIIResult, error) {
	density, velocity := nyxPair(cfg)
	fields := []datagen.Field{density, velocity}
	res := &TableIIResult{Bounds: TableIIBounds}
	for _, f := range fields {
		res.Fields = append(res.Fields, f.Name)
		perBound := make([][]float64, 0, len(TableIIBounds))
		for _, eb := range TableIIBounds {
			perBase := make([]float64, 0, len(Bases))
			for _, base := range Bases {
				m, err := run(&f, eb, repro.SZT, &repro.Options{Base: base})
				if err != nil {
					return nil, err
				}
				if m.Stats.Max > eb {
					return nil, fmt.Errorf("TableII: bound violated (%g > %g)", m.Stats.Max, eb)
				}
				perBase = append(perBase, m.Ratio())
			}
			perBound = append(perBound, perBase)
		}
		res.Ratio = append(res.Ratio, perBound)
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (r *TableIIResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II: compression ratio of different bases for SZ_T (NYX)")
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "fields")
	for _, f := range r.Fields {
		fmt.Fprintf(tw, "\t%s\t\t", f)
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "log bases")
	for range r.Fields {
		fmt.Fprintf(tw, "\t2\te\t10")
	}
	fmt.Fprintln(tw)
	for bi, eb := range r.Bounds {
		fmt.Fprintf(tw, "%g", eb)
		for fi := range r.Fields {
			for _, cr := range r.Ratio[fi][bi] {
				fmt.Fprintf(tw, "\t%.3f", cr)
			}
		}
		fmt.Fprintln(tw)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}

// TableIIIResult holds the transform overhead per base (Table III).
type TableIIIResult struct {
	Fields []string
	// PreSeconds and PostSeconds are indexed [fieldIdx][baseIdx].
	PreSeconds  [][]float64
	PostSeconds [][]float64
}

// TableIII reproduces Table III: forward (pre-processing) and inverse
// (post-processing) transform time per logarithm base. Base 10's inverse
// requires Pow(10, x), which the paper found (and this reproduces) to be
// far slower than Exp2/Exp.
func TableIII(cfg Config) (*TableIIIResult, error) {
	density, velocity := nyxPair(cfg)
	fields := []datagen.Field{density, velocity}
	const eb = 1e-3
	res := &TableIIIResult{}
	reps := 3
	for _, f := range fields {
		res.Fields = append(res.Fields, f.Name)
		var pre, post []float64
		for _, base := range Bases {
			opts := &core.Options{Base: coreBase(base)}
			var preBest, postBest time.Duration
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				tr, err := core.Forward(f.Data, eb, opts)
				if err != nil {
					return nil, err
				}
				dPre := time.Since(t0)

				hdr := tr.AppendHeader(nil)
				si, _, err := core.ParseHeader(hdr)
				if err != nil {
					return nil, err
				}
				t0 = time.Now()
				if _, err := si.Inverse(tr.Log, nil); err != nil {
					return nil, err
				}
				dPost := time.Since(t0)
				if rep == 0 || dPre < preBest {
					preBest = dPre
				}
				if rep == 0 || dPost < postBest {
					postBest = dPost
				}
			}
			pre = append(pre, preBest.Seconds())
			post = append(post, postBest.Seconds())
		}
		res.PreSeconds = append(res.PreSeconds, pre)
		res.PostSeconds = append(res.PostSeconds, post)
	}
	return res, nil
}

func coreBase(b repro.LogBase) core.Base {
	switch b {
	case repro.BaseE:
		return core.BaseE
	case repro.Base10:
		return core.Base10
	default:
		return core.Base2
	}
}

// Print renders Table III.
func (r *TableIIIResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Table III: transform overhead of different bases (NYX)")
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "fields")
	for _, f := range r.Fields {
		fmt.Fprintf(tw, "\t%s\t\t", f)
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "log bases")
	for range r.Fields {
		fmt.Fprintf(tw, "\t2\te\t10")
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "pre-processing time(s)")
	for fi := range r.Fields {
		for _, s := range r.PreSeconds[fi] {
			fmt.Fprintf(tw, "\t%.4f", s)
		}
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "post-processing time(s)")
	for fi := range r.Fields {
		for _, s := range r.PostSeconds[fi] {
			fmt.Fprintf(tw, "\t%.4f", s)
		}
	}
	fmt.Fprintln(tw)
	_ = tw.Flush() // display path: errors on w are not recoverable here
}

// TableIVBounds are the three bounds of the strict error-bound test.
var TableIVBounds = []float64{1e-3, 1e-2, 1e-1}

// TableIVRow is one compressor × field × bound entry of Table IV.
type TableIVRow struct {
	Bound    float64
	Type     string // "prediction" or "transform"
	Algo     repro.Algorithm
	Field    string
	Settings string
	Bounded  string
	AvgE     float64
	MaxE     float64
	Ratio    float64
}

// TableIV reproduces the strict error-bound test on the two NYX fields:
// which compressors respect the requested point-wise relative bound, with
// what average/maximum error and at what ratio.
func TableIV(cfg Config) ([]TableIVRow, error) {
	density, velocity := nyxPair(cfg)
	fields := []datagen.Field{density, velocity}
	type entry struct {
		algo repro.Algorithm
		typ  string
	}
	entries := []entry{
		{repro.ISABELA, "prediction"},
		{repro.FPZIP, "prediction"},
		{repro.SZPWR, "prediction"},
		{repro.SZT, "prediction"},
		{repro.ZFPP, "transform"},
		{repro.ZFPT, "transform"},
	}
	var rows []TableIVRow
	for _, eb := range TableIVBounds {
		for _, e := range entries {
			for _, f := range fields {
				m, err := run(&f, eb, e.algo, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, TableIVRow{
					Bound:    eb,
					Type:     e.typ,
					Algo:     e.algo,
					Field:    f.Name,
					Settings: settingsFor(e.algo, eb),
					Bounded:  fmtPct(m.Stats.BoundedFrac, m.Stats.ZeroPerturbed),
					AvgE:     m.Stats.Avg,
					MaxE:     m.Stats.Max,
					Ratio:    m.Ratio(),
				})
			}
		}
	}
	return rows, nil
}

func settingsFor(algo repro.Algorithm, eb float64) string {
	switch algo {
	case repro.FPZIP:
		p, _ := fpzip.PrecisionForRelBound(eb)
		return fmt.Sprintf("-p %d", p)
	case repro.ZFPP:
		return fmt.Sprintf("-p auto(%g)", eb)
	case repro.ISABELA:
		return fmt.Sprintf("%g", eb)
	default:
		return fmt.Sprintf("-P %g", eb)
	}
}

// PrintTableIV renders Table IV.
func PrintTableIV(w io.Writer, rows []TableIVRow) {
	fmt.Fprintln(w, "Table IV: point-wise relative error bound on 2 NYX fields")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "pwr_eb\ttype\tname\tfield\tsettings\tbounded\tAvg E\tMax E\tCR")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%s\t%s\t%s\t%s\t%s\t%.2e\t%.2e\t%.2f\n",
			r.Bound, r.Type, r.Algo, r.Field, r.Settings, r.Bounded, r.AvgE, r.MaxE, r.Ratio)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}
