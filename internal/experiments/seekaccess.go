package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro"
	"repro/internal/datagen"
)

// SeekAccessResult measures the seekable read path (repro.OpenStream +
// ReadRows) against the sequential decoder on a many-chunk container:
// the random-access claim is that a small row range costs bytes and time
// proportional to the chunks it touches, not to the container.
type SeekAccessResult struct {
	Rows, Stride int
	Chunks       int
	Container    int // container bytes

	Entries []SeekAccessEntry
}

// SeekAccessEntry is one access pattern's measured cost.
type SeekAccessEntry struct {
	Name         string
	RowsRead     uint64
	ChunksRead   int
	BytesFetched int64
	Seconds      float64
}

type countingSeeker struct {
	r *bytes.Reader
	n int64
}

func (c *countingSeeker) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingSeeker) Seek(offset int64, whence int) (int64, error) {
	return c.r.Seek(offset, whence)
}

// SeekAccess builds a one-row-per-chunk container (10k chunks at bench
// scale) and compares a sequential full decode, a seekable full-span
// read, and a seekable 1% range read.
func SeekAccess(cfg Config) (*SeekAccessResult, error) {
	rows := 10000
	if cfg.Scale == datagen.ScaleTest {
		rows = 1000
	}
	const stride = 4
	res := &SeekAccessResult{Rows: rows, Stride: stride, Chunks: rows}

	raw := make([]byte, rows*stride*8)
	for i := 0; i < rows*stride; i++ {
		v := 40*math.Cos(float64(i)/7) + 90
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	var comp bytes.Buffer
	if _, err := repro.CompressStream(bytes.NewReader(raw), &comp, []int{rows, stride},
		1e-2, repro.SZT, &repro.StreamOptions{ChunkRows: 1}); err != nil {
		return nil, err
	}
	stream := comp.Bytes()
	res.Container = len(stream)

	// Sequential baseline: the pre-seekable way to serve any range.
	src := &countingSeeker{r: bytes.NewReader(stream)}
	t0 := time.Now()
	st, err := repro.DecompressStream(src, io.Discard)
	if err != nil {
		return nil, err
	}
	res.Entries = append(res.Entries, SeekAccessEntry{
		Name: "sequential full decode", RowsRead: uint64(rows),
		ChunksRead: st.Chunks, BytesFetched: src.n, Seconds: time.Since(t0).Seconds(),
	})

	ranges := []struct {
		name         string
		start, count uint64
	}{
		{"seek full span", 0, uint64(rows)},
		{"seek 1% range", uint64(rows) * 2 / 5, uint64(rows) / 100},
	}
	for _, r := range ranges {
		src := &countingSeeker{r: bytes.NewReader(stream)}
		h, err := repro.OpenStream(src)
		if err != nil {
			return nil, err
		}
		src.n = 0 // charge only the range read, not the open
		dst := make([]float64, r.count*stride)
		t0 := time.Now()
		if err := h.ReadRows(dst, r.start, r.count); err != nil {
			return nil, err
		}
		el := time.Since(t0).Seconds()
		hs := h.Stats()
		res.Entries = append(res.Entries, SeekAccessEntry{
			Name: r.name, RowsRead: r.count,
			ChunksRead: hs.Chunks, BytesFetched: src.n, Seconds: el,
		})
	}
	return res, nil
}

// Print renders the access-pattern comparison.
func (r *SeekAccessResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Seekable random access (OpenStream/ReadRows) on a %d-chunk container (%d×%d field, %d bytes)\n",
		r.Chunks, r.Rows, r.Stride, r.Container)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "access\trows\tchunks\tbytes fetched\t% of container\tms")
	for _, e := range r.Entries {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
			e.Name, e.RowsRead, e.ChunksRead, e.BytesFetched,
			100*float64(e.BytesFetched)/float64(r.Container), e.Seconds*1e3)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}
