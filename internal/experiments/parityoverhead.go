package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro"
	"repro/internal/datagen"
)

// ParityOverheadResult measures what the self-healing layer costs: for
// each parity group size K, encode throughput relative to the
// parity-free container and the size overhead of the XOR frames. The
// expected shape is ~1/K size overhead (one parity frame of max-chunk
// length per K chunks) with a small, K-independent XOR cost on encode.
type ParityOverheadResult struct {
	Rows, Stride int
	Chunks       int
	RawBytes     int

	Entries []ParityOverheadEntry
}

// ParityOverheadEntry is one K's measured cost.
type ParityOverheadEntry struct {
	K            int
	Container    int
	ParityFrames int
	Seconds      float64
}

// ParityOverhead encodes the same field at K = 0 (baseline) and
// K ∈ {4, 16, 64} and reports encode throughput and container growth.
func ParityOverhead(cfg Config) (*ParityOverheadResult, error) {
	rows := 4096
	if cfg.Scale == datagen.ScaleTest {
		rows = 512
	}
	const stride = 16
	res := &ParityOverheadResult{Rows: rows, Stride: stride, RawBytes: rows * stride * 8}

	raw := make([]byte, rows*stride*8)
	for i := 0; i < rows*stride; i++ {
		v := 40*math.Cos(float64(i)/7) + 90
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}

	for _, k := range []int{0, 4, 16, 64} {
		var comp bytes.Buffer
		t0 := time.Now()
		st, err := repro.CompressStream(bytes.NewReader(raw), &comp, []int{rows, stride},
			1e-2, repro.SZT, &repro.StreamOptions{ChunkRows: 4, ParityK: k})
		if err != nil {
			return nil, err
		}
		res.Chunks = st.Chunks
		res.Entries = append(res.Entries, ParityOverheadEntry{
			K: k, Container: comp.Len(), ParityFrames: st.ParityFrames,
			Seconds: time.Since(t0).Seconds(),
		})
	}
	return res, nil
}

// Print renders the K sweep against the K=0 baseline.
func (r *ParityOverheadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parity-frame overhead (XOR group size K) on a %d-chunk container (%d×%d field, %d raw bytes)\n",
		r.Chunks, r.Rows, r.Stride, r.RawBytes)
	base := r.Entries[0]
	baseTput := float64(r.RawBytes) / base.Seconds / 1e6
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "K\tparity frames\tcontainer bytes\tsize overhead %\tencode MB/s\tthroughput delta %")
	for _, e := range r.Entries {
		tput := float64(r.RawBytes) / e.Seconds / 1e6
		fmt.Fprintf(tw, "%d\t%d\t%d\t%+.2f\t%.1f\t%+.1f\n",
			e.K, e.ParityFrames, e.Container,
			100*float64(e.Container-base.Container)/float64(base.Container),
			tput, 100*(tput-baseTput)/baseTput)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}
