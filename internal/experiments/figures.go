package experiments

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

// Figure1Point is one (bit-rate, relative-error PSNR) sample of a
// rate-distortion curve.
type Figure1Point struct {
	RelBound float64
	BitRate  float64
	RelPSNR  float64
}

// Figure1Result holds per-field, per-base rate-distortion series.
type Figure1Result struct {
	Fields []string
	// Series[fieldIdx][baseIdx] is the curve for one base.
	Series [][][]Figure1Point
}

// Figure1Bounds sweeps the bounds that trace the rate-distortion curves.
var Figure1Bounds = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}

// Figure1 reproduces Figure 1: point-wise-relative rate distortion of
// ZFP_T under logarithm bases 2, e and 10 on the two NYX fields. The
// curves for the three bases should nearly coincide (Lemma 4).
func Figure1(cfg Config) (*Figure1Result, error) {
	density, velocity := nyxPair(cfg)
	fields := []datagen.Field{density, velocity}
	res := &Figure1Result{}
	for _, f := range fields {
		res.Fields = append(res.Fields, f.Name)
		perBase := make([][]Figure1Point, 0, len(Bases))
		for _, base := range Bases {
			var curve []Figure1Point
			for _, eb := range Figure1Bounds {
				buf, err := repro.Compress(f.Data, f.Dims, eb, repro.ZFPT, &repro.Options{Base: base})
				if err != nil {
					return nil, err
				}
				dec, _, err := repro.Decompress(buf)
				if err != nil {
					return nil, err
				}
				psnr, err := metrics.RelPSNR(f.Data, dec)
				if err != nil {
					return nil, err
				}
				curve = append(curve, Figure1Point{
					RelBound: eb,
					BitRate:  metrics.BitRate(len(buf), f.Size()),
					RelPSNR:  psnr,
				})
			}
			perBase = append(perBase, curve)
		}
		res.Series = append(res.Series, perBase)
	}
	return res, nil
}

// Print renders the curves as aligned columns (bit-rate, PSNR per base).
func (r *Figure1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: rate distortion of different bases for ZFP_T (NYX)")
	for fi, field := range r.Fields {
		fmt.Fprintf(w, "(%c) %s\n", 'a'+fi, field)
		tw := newTabWriter(w)
		fmt.Fprintln(tw, "pwr_eb\tBR(base2)\tPSNR(base2)\tBR(base_e)\tPSNR(base_e)\tBR(base10)\tPSNR(base10)")
		for pi := range r.Series[fi][0] {
			fmt.Fprintf(tw, "%g", r.Series[fi][0][pi].RelBound)
			for bi := range Bases {
				p := r.Series[fi][bi][pi]
				fmt.Fprintf(tw, "\t%.3f\t%.2f", p.BitRate, p.RelPSNR)
			}
			fmt.Fprintln(tw)
		}
		_ = tw.Flush() // display path: errors on w are not recoverable here
	}
}

// Figure23Bounds are the bounds swept in Figures 2 and 3.
var Figure23Bounds = []float64{1e-4, 1e-3, 1e-2, 1e-1}

// Figure23Algos are the five compressors in Figures 2 and 3.
var Figure23Algos = []repro.Algorithm{repro.SZPWR, repro.FPZIP, repro.ISABELA, repro.ZFPT, repro.SZT}

// Figure2Result holds per-application compression ratios.
type Figure2Result struct {
	Apps []string
	// Ratio[appIdx][algoIdx][boundIdx] is the application-aggregate
	// compression ratio (total raw bytes / total compressed bytes).
	Ratio [][][]float64
}

// Figure2 reproduces the compression-ratio sweep over the four application
// datasets and five point-wise-relative compressors.
func Figure2(cfg Config) (*Figure2Result, error) {
	r2, _, err := figure23(cfg)
	return r2, err
}

// Figure3Result holds per-application compression/decompression rates.
type Figure3Result struct {
	Apps []string
	// CompressMBs[appIdx][algoIdx][boundIdx] and likewise DecompressMBs.
	CompressMBs   [][][]float64
	DecompressMBs [][][]float64
}

// Figure3 reproduces the throughput sweep of Figure 3.
func Figure3(cfg Config) (*Figure3Result, error) {
	_, r3, err := figure23(cfg)
	return r3, err
}

// Figure23 runs the shared sweep once and returns both results (the paper
// derives Figures 2 and 3 from the same runs).
func Figure23(cfg Config) (*Figure2Result, *Figure3Result, error) {
	return figure23(cfg)
}

func figure23(cfg Config) (*Figure2Result, *Figure3Result, error) {
	byApp := datagen.ByApp(datagen.Suite(cfg.Scale, cfg.Seed))
	apps := sortedApps(byApp)
	r2 := &Figure2Result{Apps: apps}
	r3 := &Figure3Result{Apps: apps}
	for _, app := range apps {
		fields := byApp[app]
		ratios := make([][]float64, len(Figure23Algos))
		crate := make([][]float64, len(Figure23Algos))
		drate := make([][]float64, len(Figure23Algos))
		for ai, algo := range Figure23Algos {
			for _, eb := range Figure23Bounds {
				totalRaw, totalComp := 0, 0
				var compSec, decSec float64
				for i := range fields {
					m, err := run(&fields[i], eb, algo, nil)
					if err != nil {
						return nil, nil, err
					}
					if m.Stats.Max > eb && algo != repro.ZFPP {
						return nil, nil, fmt.Errorf("figure2: %v violated bound on %s (%g > %g)",
							algo, fields[i].String(), m.Stats.Max, eb)
					}
					totalRaw += m.RawSize
					totalComp += m.CompressedSize
					compSec += m.CompressTime.Seconds()
					decSec += m.DecompressTime.Seconds()
				}
				ratios[ai] = append(ratios[ai], metrics.CompressionRatio(totalRaw, totalComp))
				crate[ai] = append(crate[ai], float64(totalRaw)/1e6/compSec)
				drate[ai] = append(drate[ai], float64(totalRaw)/1e6/decSec)
			}
		}
		r2.Ratio = append(r2.Ratio, ratios)
		r3.CompressMBs = append(r3.CompressMBs, crate)
		r3.DecompressMBs = append(r3.DecompressMBs, drate)
	}
	return r2, r3, nil
}

// Print renders Figure 2's series.
func (r *Figure2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: compression ratio vs point-wise relative error bound")
	for ai, app := range r.Apps {
		fmt.Fprintf(w, "(%c) %s\n", 'a'+ai, app)
		tw := newTabWriter(w)
		fmt.Fprint(tw, "pwr_eb")
		for _, algo := range Figure23Algos {
			fmt.Fprintf(tw, "\t%s", algo)
		}
		fmt.Fprintln(tw)
		for bi, eb := range Figure23Bounds {
			fmt.Fprintf(tw, "%g", eb)
			for algoIdx := range Figure23Algos {
				fmt.Fprintf(tw, "\t%.2f", r.Ratio[ai][algoIdx][bi])
			}
			fmt.Fprintln(tw)
		}
		_ = tw.Flush() // display path: errors on w are not recoverable here
	}
}

// Print renders Figure 3's series.
func (r *Figure3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: compression/decompression rate (MB/s)")
	dump := func(title string, series [][][]float64) {
		for ai, app := range r.Apps {
			fmt.Fprintf(w, "%s — %s\n", app, title)
			tw := newTabWriter(w)
			fmt.Fprint(tw, "pwr_eb")
			for _, algo := range Figure23Algos {
				fmt.Fprintf(tw, "\t%s", algo)
			}
			fmt.Fprintln(tw)
			for bi, eb := range Figure23Bounds {
				fmt.Fprintf(tw, "%g", eb)
				for algoIdx := range Figure23Algos {
					fmt.Fprintf(tw, "\t%.1f", series[ai][algoIdx][bi])
				}
				fmt.Fprintln(tw)
			}
			_ = tw.Flush() // display path: errors on w are not recoverable here
		}
	}
	dump("compression rate", r.CompressMBs)
	dump("decompression rate", r.DecompressMBs)
}
