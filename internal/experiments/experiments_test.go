package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/datagen"
	"repro/internal/pfs"
)

func testConfig() Config {
	return Config{Scale: datagen.ScaleTest, Seed: 7}
}

func TestTableII(t *testing.T) {
	res, err := TableII(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fields) != 2 || len(res.Ratio) != 2 {
		t.Fatalf("fields %v", res.Fields)
	}
	// Lemma 3: bases agree within a few percent for every bound/field.
	for fi := range res.Fields {
		for bi := range res.Bounds {
			base2 := res.Ratio[fi][bi][0]
			if base2 <= 1 {
				t.Fatalf("%s at %g: CR %.2f <= 1", res.Fields[fi], res.Bounds[bi], base2)
			}
			for baseIdx := 1; baseIdx < len(Bases); baseIdx++ {
				dev := (res.Ratio[fi][bi][baseIdx] - base2) / base2
				if dev > 0.15 || dev < -0.15 {
					t.Fatalf("%s at %g: base %s deviates %.1f%%",
						res.Fields[fi], res.Bounds[bi], baseName(Bases[baseIdx]), dev*100)
				}
			}
		}
	}
	// CR must grow with the bound (monotone in eb for base 2).
	for fi := range res.Fields {
		for bi := 1; bi < len(res.Bounds); bi++ {
			if res.Ratio[fi][bi][0] < res.Ratio[fi][bi-1][0]*0.95 {
				t.Fatalf("%s: CR not increasing with bound: %v",
					res.Fields[fi], res.Ratio[fi])
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "dark_matter_density") {
		t.Fatal("print output missing field name")
	}
}

func TestTableIII(t *testing.T) {
	res, err := TableIII(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for fi := range res.Fields {
		for bi := range Bases {
			if res.PreSeconds[fi][bi] <= 0 || res.PostSeconds[fi][bi] <= 0 {
				t.Fatalf("non-positive timing at field %d base %d", fi, bi)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "post-processing") {
		t.Fatal("print output incomplete")
	}
}

func TestTableIV(t *testing.T) {
	rows, err := TableIV(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TableIVBounds)*6*2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		switch r.Algo {
		case repro.SZT, repro.ZFPT, repro.FPZIP, repro.ISABELA:
			if r.MaxE > r.Bound {
				t.Fatalf("%v violated bound %g (max %g) on %s", r.Algo, r.Bound, r.MaxE, r.Field)
			}
			if !strings.HasPrefix(r.Bounded, "100%") {
				t.Fatalf("%v bounded = %q", r.Algo, r.Bounded)
			}
		case repro.SZPWR:
			if r.MaxE > r.Bound*(1+1e-9) {
				t.Fatalf("SZ_PWR violated bound: %g > %g", r.MaxE, r.Bound)
			}
		}
		if r.Ratio <= 0 {
			t.Fatalf("%v ratio %g", r.Algo, r.Ratio)
		}
	}
	// SZ_T must have the best ratio among prediction-based compressors for
	// the density field at every bound (the paper's headline).
	for _, eb := range TableIVBounds {
		best := ""
		bestCR := 0.0
		var szt float64
		for _, r := range rows {
			if r.Bound != eb || r.Field != "dark_matter_density" || r.Type != "prediction" {
				continue
			}
			if r.Ratio > bestCR {
				bestCR, best = r.Ratio, r.Algo.String()
			}
			if r.Algo == repro.SZT {
				szt = r.Ratio
			}
		}
		if best != "SZ_T" && bestCR > szt*1.05 {
			t.Fatalf("at %g, %s (%.2f) clearly beats SZ_T (%.2f) on density", eb, best, bestCR, szt)
		}
	}
	var buf bytes.Buffer
	PrintTableIV(&buf, rows)
	if !strings.Contains(buf.String(), "SZ_T") {
		t.Fatal("print output incomplete")
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for fi := range res.Fields {
		for bi := range Bases {
			curve := res.Series[fi][bi]
			if len(curve) != len(Figure1Bounds) {
				t.Fatalf("curve length %d", len(curve))
			}
			// Tighter bounds → higher bit rate and higher PSNR.
			for pi := 1; pi < len(curve); pi++ {
				if curve[pi].BitRate > curve[pi-1].BitRate*1.05 {
					t.Fatalf("bit rate should shrink as bound loosens: %+v", curve)
				}
			}
			if curve[0].RelPSNR < curve[len(curve)-1].RelPSNR {
				t.Fatalf("PSNR should be higher at tight bounds: %+v", curve)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "PSNR") {
		t.Fatal("print output incomplete")
	}
}

func TestFigure23(t *testing.T) {
	r2, r3, err := Figure23(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Apps) != 4 {
		t.Fatalf("apps %v", r2.Apps)
	}
	sztIdx, isaIdx := -1, -1
	for i, a := range Figure23Algos {
		switch a {
		case repro.SZT:
			sztIdx = i
		case repro.ISABELA:
			isaIdx = i
		}
	}
	wins := 0
	cells := 0
	for ai := range r2.Apps {
		for bi := range Figure23Bounds {
			cells++
			best := true
			for algoIdx := range Figure23Algos {
				if algoIdx != sztIdx && r2.Ratio[ai][algoIdx][bi] > r2.Ratio[ai][sztIdx][bi] {
					best = false
				}
			}
			if best {
				wins++
			}
			// ISABELA must never dominate (paper: lowest ratios).
			if r2.Ratio[ai][isaIdx][bi] > r2.Ratio[ai][sztIdx][bi]*1.2 {
				t.Fatalf("ISABELA beats SZ_T by >20%% in %s at %g",
					r2.Apps[ai], Figure23Bounds[bi])
			}
		}
	}
	if wins*2 < cells {
		t.Fatalf("SZ_T wins only %d of %d cells", wins, cells)
	}
	// Rates must be positive everywhere.
	for ai := range r3.Apps {
		for algoIdx := range Figure23Algos {
			for bi := range Figure23Bounds {
				if r3.CompressMBs[ai][algoIdx][bi] <= 0 || r3.DecompressMBs[ai][algoIdx][bi] <= 0 {
					t.Fatal("nonpositive rate")
				}
			}
		}
	}
	var buf bytes.Buffer
	r2.Print(&buf)
	r3.Print(&buf)
	if !strings.Contains(buf.String(), "NYX") {
		t.Fatal("print output incomplete")
	}
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries %d", len(res.Entries))
	}
	byName := map[string]Figure4Entry{}
	for _, e := range res.Entries {
		byName[e.Name] = e
		if len(e.Slice) != res.SliceDims[0]*res.SliceDims[1] {
			t.Fatalf("%s slice size", e.Name)
		}
		if e.Ratio < res.TargetRatio*0.5 || e.Ratio > res.TargetRatio*2 {
			t.Fatalf("%s ratio %.2f far from target %.0f", e.Name, e.Ratio, res.TargetRatio)
		}
	}
	// SZ_T needs the tightest relative bound to reach the ratio, hence the
	// smallest max relative error of the PWR compressors; SZ_ABS distorts
	// the small-value window most.
	if byName["SZ_T"].MaxRel >= byName["FPZIP"].MaxRel {
		t.Fatalf("SZ_T max rel %.3g should beat FPZIP %.3g",
			byName["SZ_T"].MaxRel, byName["FPZIP"].MaxRel)
	}
	if byName["SZ_ABS"].MaxRel <= byName["SZ_T"].MaxRel {
		t.Fatalf("SZ_ABS should have the worst relative distortion")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "SZ_ABS") {
		t.Fatal("print output incomplete")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries %d", len(res.Entries))
	}
	byName := map[string]Figure5Entry{}
	for _, e := range res.Entries {
		byName[e.Name] = e
	}
	// Paper's ordering: SZ_T < FPZIP < SZ_ABS in average skew angle.
	if !(byName["SZ_T"].Skew.Avg < byName["FPZIP"].Skew.Avg) {
		t.Fatalf("SZ_T avg skew %.4f should beat FPZIP %.4f",
			byName["SZ_T"].Skew.Avg, byName["FPZIP"].Skew.Avg)
	}
	if !(byName["SZ_T"].Skew.Avg < byName["SZ_ABS"].Skew.Avg) {
		t.Fatalf("SZ_T avg skew %.4f should beat SZ_ABS %.4f",
			byName["SZ_T"].Skew.Avg, byName["SZ_ABS"].Skew.Avg)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "skew") {
		t.Fatal("print output incomplete")
	}
}

func TestFigure6(t *testing.T) {
	// Inject deterministic per-core rates (MB/s magnitudes from the
	// paper's single-core measurements) so the dump/load ordering below
	// does not depend on live wall-clock throughput — under the race
	// detector the compressors slow down non-uniformly, which used to
	// flip the compute-time ordering. Ratios are still measured by
	// actually running each compressor.
	cfg := testConfig()
	cfg.FixedRates = map[repro.Algorithm]pfs.MeasuredRates{
		repro.SZPWR: {CompressRate: 120e6, DecompressRate: 250e6},
		repro.FPZIP: {CompressRate: 420e6, DecompressRate: 560e6},
		repro.SZT:   {CompressRate: 180e6, DecompressRate: 380e6},
	}
	res, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 9 { // 3 algos × 3 scales
		t.Fatalf("entries %d", len(res.Entries))
	}
	// SZ_T must dump and load fastest at 4,096 cores (best ratio wins in
	// the I/O-bound regime).
	best := map[int]Figure6Entry{}
	var szt Figure6Entry
	for _, e := range res.Entries {
		if e.Cores != 4096 {
			continue
		}
		if b, ok := best[e.Cores]; !ok || e.Dump.Total() < b.Dump.Total() {
			best[e.Cores] = e
		}
		if e.Algo == repro.SZT {
			szt = e
		}
	}
	if best[4096].Algo != repro.SZT {
		t.Fatalf("fastest dump at 4096 cores is %v, want SZ_T (szt=%v best=%v)",
			best[4096].Algo, szt.Dump, best[4096].Dump)
	}
	// Raw dump must be slower than every compressed dump.
	for _, e := range res.Entries {
		if raw, ok := res.RawDump[e.Cores]; ok && raw.Total() <= e.Dump.Total() {
			t.Fatalf("raw dump %v not slower than %v at %d cores",
				raw.Total(), e.Dump.Total(), e.Cores)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "4096") {
		t.Fatal("print output incomplete")
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With the guard, the bound holds strictly.
	if res.GuardOnMaxRel > res.GuardBound {
		t.Fatalf("guard on: max %g > bound %g", res.GuardOnMaxRel, res.GuardBound)
	}
	// Without it, the bound may be grazed but not smashed.
	if res.GuardOffMaxRel > res.GuardBound*1.001 {
		t.Fatalf("guard off: max %g way beyond bound %g", res.GuardOffMaxRel, res.GuardBound)
	}
	// Block-minimum design: CR must degrade monotonically with block side,
	// and SZ_T must beat every setting.
	for i := 1; i < len(res.BlockSides); i++ {
		if res.BlockSideRatio[i] > res.BlockSideRatio[i-1]*1.02 {
			t.Fatalf("block-side sweep not degrading: %v", res.BlockSideRatio)
		}
	}
	for i, r := range res.BlockSideRatio {
		if res.TransformRatio <= r {
			t.Fatalf("SZ_T %.2f not better than SZ_PWR side %d (%.2f)",
				res.TransformRatio, res.BlockSides[i], r)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "round-off guard") {
		t.Fatal("print output incomplete")
	}
}

func TestParityOverhead(t *testing.T) {
	res, err := ParityOverhead(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 || res.Entries[0].K != 0 {
		t.Fatalf("entries %+v", res.Entries)
	}
	base := res.Entries[0]
	if base.ParityFrames != 0 {
		t.Fatalf("K=0 emitted %d parity frames", base.ParityFrames)
	}
	for _, e := range res.Entries[1:] {
		// One parity frame per (possibly partial) group of K chunks.
		want := (res.Chunks + e.K - 1) / e.K
		if e.ParityFrames != want {
			t.Fatalf("K=%d: %d parity frames, want %d for %d chunks", e.K, e.ParityFrames, want, res.Chunks)
		}
		if e.Container <= base.Container {
			t.Fatalf("K=%d container %d not larger than baseline %d", e.K, e.Container, base.Container)
		}
	}
	// Larger groups amortize better: overhead must shrink with K.
	for i := 2; i < len(res.Entries); i++ {
		if res.Entries[i].Container >= res.Entries[i-1].Container {
			t.Fatalf("overhead not shrinking with K: %+v", res.Entries)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "size overhead") {
		t.Fatal("print output incomplete")
	}
}
