package experiments

import (
	"fmt"
	"io"
	"math"

	"repro"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/pfs"
)

// Figure4Entry is one compressor's matched-ratio distortion summary.
type Figure4Entry struct {
	Name string
	// BoundUsed is the error bound found by the ratio search (absolute for
	// SZ_ABS, relative for the others).
	BoundUsed float64
	Ratio     float64
	// MaxRel is the maximum point-wise relative error over the field.
	MaxRel float64
	// WindowRMSE is the RMSE restricted to the high-precision window
	// [0, 0.1] that Figure 4's zoomed views show.
	WindowRMSE float64
	// Slice holds the reconstructed middle z-slice for rendering.
	Slice []float64
}

// Figure4Result compares SZ_ABS, FPZIP and SZ_T at one matched ratio.
type Figure4Result struct {
	TargetRatio float64
	SliceDims   []int // (ny, nx) of the extracted slice
	Original    []float64
	Entries     []Figure4Entry
}

// Figure4 reproduces the multiprecision-distortion experiment: at a fixed
// compression ratio (the paper uses 7), the absolute-error mode distorts
// the dense [0, 0.1] region badly, FPZIP needs a loose relative bound, and
// SZ_T needs the tightest bound — hence the least distortion.
func Figure4(cfg Config) (*Figure4Result, error) {
	density, _ := nyxPair(cfg)
	const target = 7.0
	res := &Figure4Result{TargetRatio: target}

	nz, ny, nx := density.Dims[0], density.Dims[1], density.Dims[2]
	mid := nz / 2
	slice := func(vals []float64) []float64 {
		out := make([]float64, ny*nx)
		copy(out, vals[mid*ny*nx:(mid+1)*ny*nx])
		return out
	}
	res.SliceDims = []int{ny, nx}
	res.Original = slice(density.Data)

	windowRMSE := func(dec []float64) float64 {
		var sum float64
		n := 0
		for i, o := range density.Data {
			if o < 0 || o > 0.1 {
				continue
			}
			d := dec[i] - o
			sum += d * d
			n++
		}
		if n == 0 {
			return 0
		}
		return math.Sqrt(sum / float64(n))
	}
	maxRel := func(dec []float64) float64 {
		st, _ := metrics.RelError(density.Data, dec, 1)
		return st.Max
	}

	// SZ_ABS at matched ratio.
	absBound, absSize, absDec, err := searchAbsBoundForRatio(&density, repro.SZABS, target, 0.05)
	if err != nil {
		return nil, err
	}
	res.Entries = append(res.Entries, Figure4Entry{
		Name: "SZ_ABS", BoundUsed: absBound,
		Ratio:  metrics.CompressionRatio(density.Bytes(), absSize),
		MaxRel: maxRel(absDec), WindowRMSE: windowRMSE(absDec), Slice: slice(absDec),
	})

	// FPZIP and SZ_T at matched ratio.
	for _, algo := range []repro.Algorithm{repro.FPZIP, repro.SZT} {
		bound, m, err := searchBoundForRatio(&density, algo, target, 0.05)
		if err != nil {
			return nil, err
		}
		buf, err := repro.Compress(density.Data, density.Dims, bound, algo, nil)
		if err != nil {
			return nil, err
		}
		dec, _, err := repro.Decompress(buf)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, Figure4Entry{
			Name: algo.String(), BoundUsed: bound, Ratio: m.Ratio(),
			MaxRel: maxRel(dec), WindowRMSE: windowRMSE(dec), Slice: slice(dec),
		})
	}
	return res, nil
}

// Print summarizes Figure 4 (the slices themselves are rendered by
// examples/nyx-multiprecision).
func (r *Figure4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: multiprecision distortion at CR≈%.0f (NYX dark_matter_density, middle slice)\n", r.TargetRatio)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "compressor\tbound used\tachieved CR\tmax point-wise rel err\tRMSE in [0,0.1]")
	for _, e := range r.Entries {
		fmt.Fprintf(tw, "%s\t%.4g\t%.2f\t%.3g\t%.3g\n", e.Name, e.BoundUsed, e.Ratio, e.MaxRel, e.WindowRMSE)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}

// Figure5Entry is one compressor's angle-skew summary.
type Figure5Entry struct {
	Name      string
	BoundUsed float64
	Ratio     float64
	Skew      metrics.SkewAngleStats
}

// Figure5Result compares velocity direction preservation at matched ratio.
type Figure5Result struct {
	TargetRatio float64
	Entries     []Figure5Entry
}

// Figure5 reproduces the HACC angle-skew experiment: at a fixed ratio (the
// paper uses 8), the reconstructed 3D velocity direction skews most under
// the absolute-error mode and least under SZ_T.
func Figure5(cfg Config) (*Figure5Result, error) {
	n := 1 << 18
	switch cfg.Scale {
	case datagen.ScaleTest:
		n = 1 << 14
	case datagen.ScaleLarge:
		n = 1 << 22
	}
	fields := datagen.HACC(n, cfg.Seed)
	vx, vy, vz := fields[0], fields[1], fields[2]
	const target = 8.0
	res := &Figure5Result{TargetRatio: target}

	rawBytes := vx.Bytes() + vy.Bytes() + vz.Bytes()

	// Generic matched-ratio search over the velocity triple.
	type compressFn func(bound float64) (size int, dx, dy, dz []float64, err error)
	search := func(name string, lo, hi float64, fn compressFn) error {
		bestGap := math.Inf(1)
		var best Figure5Entry
		for iter := 0; iter < 20; iter++ {
			mid := math.Sqrt(lo * hi)
			size, dx, dy, dz, err := fn(mid)
			if err != nil {
				return err
			}
			ratio := metrics.CompressionRatio(rawBytes, size)
			gap := math.Abs(ratio - target)
			if gap < bestGap {
				skew, err := metrics.SkewAngles(vx.Data, vy.Data, vz.Data, dx, dy, dz)
				if err != nil {
					return err
				}
				bestGap = gap
				best = Figure5Entry{Name: name, BoundUsed: mid, Ratio: ratio, Skew: skew}
			}
			if gap <= 0.05*target {
				break
			}
			if ratio < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.Entries = append(res.Entries, best)
		return nil
	}

	// SZ_ABS: one absolute bound shared by the three components.
	maxAbs := 0.0
	for _, f := range []datagen.Field{vx, vy, vz} {
		for _, v := range f.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	err := search("SZ_ABS", maxAbs*1e-9, maxAbs, func(bound float64) (int, []float64, []float64, []float64, error) {
		size := 0
		var outs [][]float64
		for _, f := range []datagen.Field{vx, vy, vz} {
			buf, err := repro.CompressAbs(f.Data, f.Dims, bound, repro.SZABS, nil)
			if err != nil {
				return 0, nil, nil, nil, err
			}
			dec, _, err := repro.Decompress(buf)
			if err != nil {
				return 0, nil, nil, nil, err
			}
			size += len(buf)
			outs = append(outs, dec)
		}
		return size, outs[0], outs[1], outs[2], nil
	})
	if err != nil {
		return nil, err
	}

	for _, algo := range []repro.Algorithm{repro.FPZIP, repro.SZT} {
		algo := algo
		err := search(algo.String(), 1e-5, 0.9, func(bound float64) (int, []float64, []float64, []float64, error) {
			size := 0
			var outs [][]float64
			for _, f := range []datagen.Field{vx, vy, vz} {
				buf, err := repro.Compress(f.Data, f.Dims, bound, algo, nil)
				if err != nil {
					return 0, nil, nil, nil, err
				}
				dec, _, err := repro.Decompress(buf)
				if err != nil {
					return 0, nil, nil, nil, err
				}
				size += len(buf)
				outs = append(outs, dec)
			}
			return size, outs[0], outs[1], outs[2], nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Print renders Figure 5's summary.
func (r *Figure5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: HACC velocity angle skew at CR≈%.0f\n", r.TargetRatio)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "compressor\tbound used\tachieved CR\tavg skew(deg)\tp99 skew\tmax skew")
	for _, e := range r.Entries {
		fmt.Fprintf(tw, "%s\t%.4g\t%.2f\t%.4f\t%.4f\t%.4f\n",
			e.Name, e.BoundUsed, e.Ratio, e.Skew.Avg, e.Skew.P99, e.Skew.Max)
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}

// Figure6Algos are the three compressors of the parallel experiment.
var Figure6Algos = []repro.Algorithm{repro.SZPWR, repro.FPZIP, repro.SZT}

// Figure6Entry is one (cores, compressor) bar pair of Figure 6.
type Figure6Entry struct {
	Cores     int
	Algo      repro.Algorithm
	Ratio     float64
	Dump      pfs.Breakdown
	Load      pfs.Breakdown
	RatesMBps [2]float64 // measured compress/decompress MB/s per core
}

// Figure6Result also records the uncompressed baseline.
type Figure6Result struct {
	BytesPerRank int64
	RawDump      map[int]pfs.Breakdown
	Entries      []Figure6Entry
}

// Figure6 reproduces the parallel dumping/loading experiment: compression
// and decompression rates are measured with the real Go compressors on
// local cores; writes and reads go through the analytic GPFS bandwidth
// model at 1,024 / 2,048 / 4,096 cores with 3 GB per rank (matching the
// paper's 3–12 TB totals).
func Figure6(cfg Config) (*Figure6Result, error) {
	const eb = 1e-2
	fields := datagen.NYX(benchNYXSide(cfg), cfg.Seed+2)
	res := &Figure6Result{BytesPerRank: 3 << 30, RawDump: map[int]pfs.Breakdown{}}

	coresList := []int{1024, 2048, 4096}
	for _, cores := range coresList {
		sys := pfs.DefaultSystem(cores)
		raw, err := sys.RawDumpTime(res.BytesPerRank)
		if err != nil {
			return nil, err
		}
		res.RawDump[cores] = raw
	}

	for _, algo := range Figure6Algos {
		algo := algo
		fixed, haveFixed := cfg.FixedRates[algo]
		if cfg.FixedRates != nil && !haveFixed {
			return nil, fmt.Errorf("experiments: FixedRates set but missing entry for %s", algo)
		}
		// Measure aggregate rate and ratio over the NYX fields. With
		// FixedRates the compressors still run once each (the ratio is a
		// deterministic function of the data), but throughput comes from
		// the injected rates instead of the wall clock.
		var totalRaw, totalComp int
		var compSec, decSec float64
		for i := range fields {
			f := &fields[i]
			if haveFixed {
				buf, err := repro.Compress(f.Data, f.Dims, eb, algo, nil)
				if err != nil {
					return nil, err
				}
				totalRaw += f.Bytes()
				totalComp += len(buf)
				continue
			}
			rates, err := pfs.Measure(f.Bytes(),
				func() ([]byte, error) { return repro.Compress(f.Data, f.Dims, eb, algo, nil) },
				func(buf []byte) error { _, _, err := repro.Decompress(buf); return err })
			if err != nil {
				return nil, err
			}
			totalRaw += f.Bytes()
			totalComp += int(float64(f.Bytes()) / rates.Ratio)
			compSec += float64(f.Bytes()) / rates.CompressRate
			decSec += float64(f.Bytes()) / rates.DecompressRate
		}
		ratio := float64(totalRaw) / float64(totalComp)
		var compressRate, decompressRate float64
		if haveFixed {
			compressRate = fixed.CompressRate
			decompressRate = fixed.DecompressRate
		} else {
			compressRate = float64(totalRaw) / compSec
			decompressRate = float64(totalRaw) / decSec
		}
		compressedPerRank := int64(float64(res.BytesPerRank) / ratio)

		for _, cores := range coresList {
			sys := pfs.DefaultSystem(cores)
			dump, err := sys.DumpTime(res.BytesPerRank, compressedPerRank, compressRate)
			if err != nil {
				return nil, err
			}
			load, err := sys.LoadTime(res.BytesPerRank, compressedPerRank, decompressRate)
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, Figure6Entry{
				Cores: cores, Algo: algo, Ratio: ratio, Dump: dump, Load: load,
				RatesMBps: [2]float64{compressRate / 1e6, decompressRate / 1e6},
			})
		}
	}
	return res, nil
}

func benchNYXSide(cfg Config) int {
	switch cfg.Scale {
	case datagen.ScaleTest:
		return 24
	case datagen.ScaleLarge:
		return 128
	default:
		return 64
	}
}

// Print renders Figure 6's bars.
func (r *Figure6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: parallel dumping/loading of NYX (3 GB per rank, pwr_eb=1e-2)\n")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "cores\tcompressor\tCR\tcomp MB/s\tdecomp MB/s\tdump compute(s)\tdump IO(s)\tdump total(s)\tload IO(s)\tload compute(s)\tload total(s)")
	for _, e := range r.Entries {
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			e.Cores, e.Algo, e.Ratio, e.RatesMBps[0], e.RatesMBps[1],
			e.Dump.Compute.Seconds(), e.Dump.IO.Seconds(), e.Dump.Total().Seconds(),
			e.Load.IO.Seconds(), e.Load.Compute.Seconds(), e.Load.Total().Seconds())
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
	fmt.Fprintln(w, "uncompressed baseline:")
	tw = newTabWriter(w)
	fmt.Fprintln(tw, "cores\traw dump total(s)")
	for _, cores := range []int{1024, 2048, 4096} {
		if b, ok := r.RawDump[cores]; ok {
			fmt.Fprintf(tw, "%d\t%.0f\n", cores, b.Total().Seconds())
		}
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}
