// Package experiments contains one runner per table and figure in the
// paper's evaluation (Section VI). Each runner generates its workload from
// internal/datagen, executes the relevant compressors, and returns
// structured results that cmd/benchtables prints and bench_test.go reports.
//
// Experiment index (see DESIGN.md §4):
//
//	TableII  — compression ratio of log bases {2, e, 10} for SZ_T
//	Figure1  — rate distortion (rel-PSNR vs bit-rate) of bases for ZFP_T
//	TableIII — pre-/post-processing time per base
//	TableIV  — strict error-bound test across all six compressors
//	Figure2  — compression ratio vs relative bound, four applications
//	Figure3  — compression / decompression rate, four applications
//	Figure4  — multiprecision slice distortion at matched ratio
//	Figure5  — HACC velocity angle skew at matched ratio
//	Figure6  — parallel dumping / loading time model
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/floatbits"
	"repro/internal/metrics"
	"repro/internal/pfs"
)

// Config controls workload sizes shared by the runners.
type Config struct {
	// Scale selects the synthetic dataset size.
	Scale datagen.Scale
	// Seed makes all workloads deterministic.
	Seed int64
	// FixedRates, when non-nil, replaces Figure6's live per-core
	// compress/decompress rate measurement with the given rates (bytes
	// per second of raw data). Compression ratios are still computed by
	// running each compressor once, which is deterministic; only the
	// timing is injected. Tests use this so ordering assertions do not
	// depend on wall-clock throughput, which the race detector skews
	// non-uniformly across compressors.
	FixedRates map[repro.Algorithm]pfs.MeasuredRates
}

// DefaultConfig is used by cmd/benchtables and the benchmarks.
func DefaultConfig() Config {
	return Config{Scale: datagen.ScaleBench, Seed: 20180704}
}

// Measurement is one compressor run on one field.
type Measurement struct {
	Algo           repro.Algorithm
	Field          string
	RelBound       float64
	CompressedSize int
	RawSize        int
	CompressTime   time.Duration
	DecompressTime time.Duration
	Stats          metrics.RelErrorStats
}

// Ratio returns the compression ratio.
func (m Measurement) Ratio() float64 {
	return metrics.CompressionRatio(m.RawSize, m.CompressedSize)
}

// CompressRateMBs returns the compression rate in MB/s of raw data.
func (m Measurement) CompressRateMBs() float64 {
	if m.CompressTime <= 0 {
		return 0
	}
	return float64(m.RawSize) / 1e6 / m.CompressTime.Seconds()
}

// DecompressRateMBs returns the decompression rate in MB/s of raw data.
func (m Measurement) DecompressRateMBs() float64 {
	if m.DecompressTime <= 0 {
		return 0
	}
	return float64(m.RawSize) / 1e6 / m.DecompressTime.Seconds()
}

// run executes one compressor on one field under a relative bound.
func run(f *datagen.Field, rel float64, algo repro.Algorithm, opts *repro.Options) (Measurement, error) {
	t0 := time.Now()
	buf, err := repro.Compress(f.Data, f.Dims, rel, algo, opts)
	if err != nil {
		return Measurement{}, fmt.Errorf("%v on %s: %w", algo, f.String(), err)
	}
	ct := time.Since(t0)
	t0 = time.Now()
	dec, _, err := repro.Decompress(buf)
	if err != nil {
		return Measurement{}, fmt.Errorf("%v on %s: %w", algo, f.String(), err)
	}
	dt := time.Since(t0)
	st, err := metrics.RelError(f.Data, dec, rel)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Algo:           algo,
		Field:          f.String(),
		RelBound:       rel,
		CompressedSize: len(buf),
		RawSize:        f.Bytes(),
		CompressTime:   ct,
		DecompressTime: dt,
		Stats:          st,
	}, nil
}

// nyxPair returns the two representative NYX fields the paper uses in
// Tables II–IV (dark_matter_density and velocity_x).
func nyxPair(cfg Config) (density, velocity datagen.Field) {
	side := 64
	switch cfg.Scale {
	case datagen.ScaleTest:
		side = 24
	case datagen.ScaleLarge:
		side = 192
	}
	fields := datagen.NYX(side, cfg.Seed+2)
	for _, f := range fields {
		switch f.Name {
		case "dark_matter_density":
			density = f
		case "velocity_x":
			velocity = f
		}
	}
	return density, velocity
}

// newTabWriter returns the aligned-text writer the runners print with.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// fmtPct renders a bounded fraction the way Table IV does.
func fmtPct(frac float64, zeroPerturbed int) string {
	s := ""
	switch {
	case frac >= 1:
		s = "100%"
	case frac >= 0.99999:
		s = "~100%"
	default:
		s = fmt.Sprintf("%.3f%%", frac*100)
	}
	if zeroPerturbed > 0 {
		s += "*"
	}
	return s
}

// searchBoundForRatio bisects the relative error bound until the
// compressor reaches targetRatio within tol (used by Figures 4/5, which
// compare compressors at a matched compression ratio).
func searchBoundForRatio(f *datagen.Field, algo repro.Algorithm, targetRatio, tol float64) (bound float64, m Measurement, err error) {
	lo, hi := 1e-6, 0.9
	var best Measurement
	bestBound := math.NaN()
	bestGap := math.Inf(1)
	for iter := 0; iter < 24; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		mm, rerr := run(f, mid, algo, nil)
		if rerr != nil {
			return 0, Measurement{}, rerr
		}
		r := mm.Ratio()
		if gap := math.Abs(r - targetRatio); gap < bestGap {
			bestGap, best, bestBound = gap, mm, mid
		}
		if math.Abs(r-targetRatio) <= tol*targetRatio {
			return mid, mm, nil
		}
		if r < targetRatio {
			lo = mid // need looser bound
		} else {
			hi = mid
		}
	}
	return bestBound, best, nil
}

// searchAbsBoundForRatio does the same for the absolute-bound compressors.
func searchAbsBoundForRatio(f *datagen.Field, algo repro.Algorithm, targetRatio, tol float64) (bound float64, size int, dec []float64, err error) {
	// Range the absolute bound across the data's magnitude scale.
	maxAbs := 0.0
	for _, v := range f.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if floatbits.IsZero(maxAbs) {
		maxAbs = 1
	}
	lo, hi := maxAbs*1e-12, maxAbs
	var bestBound float64
	bestGap := math.Inf(1)
	var bestSize int
	var bestDec []float64
	for iter := 0; iter < 24; iter++ {
		mid := math.Sqrt(lo * hi)
		buf, cerr := repro.CompressAbs(f.Data, f.Dims, mid, algo, nil)
		if cerr != nil {
			return 0, 0, nil, cerr
		}
		d, _, derr := repro.Decompress(buf)
		if derr != nil {
			return 0, 0, nil, derr
		}
		r := metrics.CompressionRatio(f.Bytes(), len(buf))
		if gap := math.Abs(r - targetRatio); gap < bestGap {
			bestGap, bestBound, bestSize, bestDec = gap, mid, len(buf), d
		}
		if math.Abs(r-targetRatio) <= tol*targetRatio {
			return mid, len(buf), d, nil
		}
		if r < targetRatio {
			lo = mid
		} else {
			hi = mid
		}
	}
	return bestBound, bestSize, bestDec, nil
}

// appOrder fixes the application display order used by Figures 2/3.
var appOrder = []string{"HACC", "CESM-ATM", "NYX", "Hurricane"}

// sortedApps returns the present apps in canonical order.
func sortedApps(byApp map[string][]datagen.Field) []string {
	var out []string
	for _, a := range appOrder {
		if len(byApp[a]) > 0 {
			out = append(out, a)
		}
	}
	var rest []string
	for a := range byApp {
		found := false
		for _, b := range appOrder {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			rest = append(rest, a)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
