package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro"
	"repro/internal/metrics"
)

// AblationResult collects the design-choice studies DESIGN.md §5 calls
// for, beyond the paper's own base study.
type AblationResult struct {
	// Round-off guard study (Lemma 2): max observed relative error over an
	// extreme-log-range workload with and without the adjustment, as a
	// multiple of the requested bound.
	GuardOnMaxRel, GuardOffMaxRel float64
	GuardBound                    float64

	// SZ quantization capacity sweep: intervals → (ratio, MB/s).
	Intervals     []int
	IntervalRatio []float64
	IntervalRate  []float64

	// SZ_PWR block-side sweep: side → ratio (the block-minimum design's
	// sensitivity that the transform removes).
	BlockSides      []int
	BlockSideRatio  []float64
	TransformRatio  float64 // SZ_T at the same bound, for reference
	BlockSweepBound float64
}

// Ablations runs the three studies on NYX-like data.
func Ablations(cfg Config) (*AblationResult, error) {
	res := &AblationResult{}

	// 1. Round-off guard on extreme magnitudes (log₂|x| up to ~±700).
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	extreme := make([]float64, 20000)
	for i := range extreme {
		extreme[i] = math.Exp(rng.NormFloat64()*200) * 1e-50
	}
	res.GuardBound = 1e-4
	for _, disable := range []bool{false, true} {
		buf, err := repro.Compress(extreme, []int{len(extreme)}, res.GuardBound,
			repro.SZT, &repro.Options{DisableRoundoffGuard: disable})
		if err != nil {
			return nil, err
		}
		dec, _, err := repro.Decompress(buf)
		if err != nil {
			return nil, err
		}
		st, err := metrics.RelError(extreme, dec, res.GuardBound)
		if err != nil {
			return nil, err
		}
		if disable {
			res.GuardOffMaxRel = st.Max
		} else {
			res.GuardOnMaxRel = st.Max
		}
	}

	// 2. SZ interval-capacity sweep.
	density, _ := nyxPair(cfg)
	res.Intervals = []int{64, 256, 4096, 65536}
	for _, iv := range res.Intervals {
		t0 := time.Now()
		buf, err := repro.Compress(density.Data, density.Dims, 1e-2, repro.SZT,
			&repro.Options{Intervals: iv})
		if err != nil {
			return nil, err
		}
		el := time.Since(t0)
		res.IntervalRatio = append(res.IntervalRatio, metrics.CompressionRatio(density.Bytes(), len(buf)))
		res.IntervalRate = append(res.IntervalRate, float64(density.Bytes())/1e6/el.Seconds())
	}

	// 3. SZ_PWR block-side sweep vs SZ_T.
	res.BlockSweepBound = 1e-2
	res.BlockSides = []int{4, 8, 16, 32}
	for _, side := range res.BlockSides {
		buf, err := repro.Compress(density.Data, density.Dims, res.BlockSweepBound,
			repro.SZPWR, &repro.Options{BlockSide: side})
		if err != nil {
			return nil, err
		}
		res.BlockSideRatio = append(res.BlockSideRatio, metrics.CompressionRatio(density.Bytes(), len(buf)))
	}
	buf, err := repro.Compress(density.Data, density.Dims, res.BlockSweepBound, repro.SZT, nil)
	if err != nil {
		return nil, err
	}
	res.TransformRatio = metrics.CompressionRatio(density.Bytes(), len(buf))
	return res, nil
}

// Print renders the ablation studies.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablations (design choices from DESIGN.md §5)")
	fmt.Fprintf(w, "1. Lemma-2 round-off guard @bound %g on extreme-magnitude data:\n", r.GuardBound)
	fmt.Fprintf(w, "   guard on : max rel err %.6g (%.4f of bound)\n", r.GuardOnMaxRel, r.GuardOnMaxRel/r.GuardBound)
	fmt.Fprintf(w, "   guard off: max rel err %.6g (%.4f of bound)\n", r.GuardOffMaxRel, r.GuardOffMaxRel/r.GuardBound)
	fmt.Fprintln(w, "2. SZ quantization capacity (NYX density @1e-2):")
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "   intervals\tCR\tMB/s")
	for i, iv := range r.Intervals {
		fmt.Fprintf(tw, "   %d\t%.2f\t%.0f\n", iv, r.IntervalRatio[i], r.IntervalRate[i])
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
	fmt.Fprintf(w, "3. SZ_PWR block side (NYX density @%g) vs SZ_T %.2f:\n", r.BlockSweepBound, r.TransformRatio)
	tw = newTabWriter(w)
	fmt.Fprintln(tw, "   side\tCR")
	for i, s := range r.BlockSides {
		fmt.Fprintf(tw, "   %d\t%.2f\n", s, r.BlockSideRatio[i])
	}
	_ = tw.Flush() // display path: errors on w are not recoverable here
}
