// Package atomicio provides atomic output-file commits: bytes are
// written to a temporary file in the destination's directory and only
// an explicit Commit — fsync, close, rename — publishes them under the
// destination name. A writer interrupted at any point (crash, kill,
// full disk, injected fault) leaves either the old destination or
// nothing, never a torn file: exactly the property a container format
// with a sealing tail index needs from the filesystem underneath it.
package atomicio

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an uncommitted output file. Write into it, then either
// Commit (publish atomically) or Abort (remove the temporary). The
// zero value is not usable; obtain one from Create.
type File struct {
	f    *os.File
	dst  string
	perm fs.FileMode
	done bool
}

// Create opens a temporary file in dst's directory. The temporary is
// invisible under dst until Commit renames it into place.
func Create(dst string) (*File, error) {
	dir, base := filepath.Split(dst)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: creating temporary for %s: %w", dst, err)
	}
	return &File{f: f, dst: dst, perm: 0o644}, nil
}

// Write implements io.Writer on the temporary file.
func (a *File) Write(p []byte) (int, error) {
	if a.done {
		return 0, errors.New("atomicio: Write after Commit or Abort")
	}
	return a.f.Write(p)
}

// Commit publishes the written bytes under the destination name:
// fsync so the rename cannot outrun the data, close, chmod to a
// regular output mode, and an atomic rename. On any failure the
// temporary is removed and the destination is untouched.
func (a *File) Commit() error {
	if a.done {
		return errors.New("atomicio: double Commit")
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		_ = a.f.Close() // best-effort cleanup; the sync error is the answer
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicio: syncing %s: %w", a.dst, err)
	}
	if err := a.f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicio: closing %s: %w", a.dst, err)
	}
	// CreateTemp opens 0600; published output gets the usual file mode.
	if err := os.Chmod(tmp, a.perm); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicio: chmod %s: %w", a.dst, err)
	}
	if err := os.Rename(tmp, a.dst); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicio: publishing %s: %w", a.dst, err)
	}
	return nil
}

// Abort discards the temporary file. It is safe to call after Commit
// (a no-op), so callers can `defer f.Abort()` and Commit on success.
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	_ = a.f.Close() // Abort is best-effort by contract
	_ = os.Remove(tmp)
}

// WriteFile is the os.WriteFile shape with an atomic commit: dst
// either keeps its previous content (or absence) or holds exactly
// data, never a prefix.
func WriteFile(dst string, data []byte, perm fs.FileMode) error {
	f, err := Create(dst)
	if err != nil {
		return err
	}
	defer f.Abort()
	f.perm = perm
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", dst, err)
	}
	return f.Commit()
}
