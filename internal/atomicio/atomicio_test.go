package atomicio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultio"
)

// leftovers returns every entry in dir except the named destination —
// after Commit or Abort there must be none (no orphaned temporaries).
func leftovers(t *testing.T, dir, dst string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var extra []string
	for _, e := range entries {
		if e.Name() != dst {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

func TestCommitPublishes(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	f, err := Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination visible before Commit: %v", err)
	}
	if _, err := io.Copy(f, strings.NewReader("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "payload" {
		t.Fatalf("published %q, err %v", got, err)
	}
	info, err := os.Stat(dst)
	if err != nil || info.Mode().Perm() != 0o644 {
		t.Fatalf("published mode %v, err %v; want 0644", info.Mode(), err)
	}
	if extra := leftovers(t, dir, "out.bin"); extra != nil {
		t.Fatalf("orphaned temporaries after Commit: %v", extra)
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	f, err := Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	f.Abort() // idempotent
	if extra := leftovers(t, dir, "out.bin"); extra != nil {
		t.Fatalf("Abort left files behind: %v", extra)
	}
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Abort published the destination: %v", err)
	}
}

func TestWriteAfterDone(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "out.bin")
	f, err := Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("late")); err == nil {
		t.Fatal("Write after Commit succeeded")
	}
	if err := f.Commit(); err == nil {
		t.Fatal("double Commit succeeded")
	}
	// Abort after Commit is the documented defer pattern: a no-op that
	// must not disturb the published file.
	f.Abort()
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("Abort after Commit removed the destination: %v", err)
	}
}

func TestCommitKeepsPreviousOnAbort(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(dst, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("replacement that never lands")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "previous" {
		t.Fatalf("previous content lost: %q, err %v", got, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if err := WriteFile(dst, data, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %d bytes, err %v", len(got), err)
	}
	info, _ := os.Stat(dst)
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("mode %v, want 0600", info.Mode())
	}
	if extra := leftovers(t, dir, "out.bin"); extra != nil {
		t.Fatalf("orphaned temporaries: %v", extra)
	}
}

// TestInjectedCutNeverPublishes is the regression the package exists
// for: a producer cut mid-stream by an injected write fault aborts,
// and the destination directory shows no trace — not a torn file, not
// a temporary.
func TestInjectedCutNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	f, err := Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Abort()
	w := faultio.FailWriter(f, 100)
	_, err = io.Copy(w, bytes.NewReader(bytes.Repeat([]byte{0x55}, 1024)))
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("copy err = %v, want ErrInjected", err)
	}
	f.Abort()
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cut producer published the destination: %v", err)
	}
	if extra := leftovers(t, dir, "out.bin"); extra != nil {
		t.Fatalf("cut producer left temporaries: %v", extra)
	}
}
