// Package grid provides N-dimensional array geometry shared by all
// compressors: dimension validation, strides, and iteration over fixed-size
// blocks (SZ_PWR error-bound blocks and ZFP's 4^d transform blocks).
//
// Throughout the repository, dims follow C (row-major) order: dims[0] is the
// slowest-varying dimension and dims[len-1] the fastest. A scalar field of
// shape (nz, ny, nx) stores point (z, y, x) at index (z*ny+y)*nx+x.
package grid

import (
	"errors"
	"fmt"
)

// MaxDims is the highest dimensionality supported by the compressors here
// (the paper evaluates 1D particle data and 2D/3D meshes).
const MaxDims = 4

var (
	// ErrBadDims indicates an invalid dimension vector.
	ErrBadDims = errors.New("grid: invalid dimensions")
)

// Validate checks that dims is non-empty, within MaxDims, has only positive
// extents, and that the total element count matches n when n >= 0.
func Validate(dims []int, n int) error {
	if len(dims) == 0 || len(dims) > MaxDims {
		return fmt.Errorf("%w: rank %d", ErrBadDims, len(dims))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("%w: extent %d", ErrBadDims, d)
		}
		if total > (1<<62)/d {
			return fmt.Errorf("%w: element count overflow", ErrBadDims)
		}
		total *= d
	}
	if n >= 0 && total != n {
		return fmt.Errorf("%w: dims product %d != data length %d", ErrBadDims, total, n)
	}
	return nil
}

// Size returns the total number of elements implied by dims.
func Size(dims []int) int {
	total := 1
	for _, d := range dims {
		total *= d
	}
	return total
}

// Strides returns row-major strides for dims: strides[i] is the linear
// distance between consecutive indices along dimension i.
func Strides(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

// Block describes one axis-aligned block of a blocked traversal.
type Block struct {
	Origin []int // first index along each dimension
	Extent []int // size along each dimension (clipped at the boundary)
}

// Blocks enumerates all blocks of edge length `side` covering dims, in
// row-major block order, calling fn for each. Boundary blocks are clipped.
func Blocks(dims []int, side int, fn func(b Block) error) error {
	if side <= 0 {
		return fmt.Errorf("grid: nonpositive block side %d", side)
	}
	rank := len(dims)
	counts := make([]int, rank)
	for i, d := range dims {
		counts[i] = (d + side - 1) / side
	}
	idx := make([]int, rank)
	for {
		//lint:allow allochot each Block is handed to fn, which may retain it; fresh slices are the contract
		b := Block{Origin: make([]int, rank), Extent: make([]int, rank)}
		for i := 0; i < rank; i++ {
			b.Origin[i] = idx[i] * side
			ext := side
			if b.Origin[i]+ext > dims[i] {
				ext = dims[i] - b.Origin[i]
			}
			b.Extent[i] = ext
		}
		if err := fn(b); err != nil {
			return err
		}
		// Odometer increment.
		i := rank - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < counts[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// ForEach visits every point of block b over a field with the given strides,
// calling fn with the linear index. Iteration is row-major within the block.
func (b Block) ForEach(strides []int, fn func(linear int)) {
	rank := len(b.Origin)
	idx := make([]int, rank)
	base := 0
	for i := 0; i < rank; i++ {
		base += b.Origin[i] * strides[i]
	}
	lin := base
	for {
		fn(lin)
		i := rank - 1
		for ; i >= 0; i-- {
			idx[i]++
			lin += strides[i]
			if idx[i] < b.Extent[i] {
				break
			}
			lin -= idx[i] * strides[i]
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// Size returns the number of points in the block.
func (b Block) Size() int {
	n := 1
	for _, e := range b.Extent {
		n *= e
	}
	return n
}

// EqualDims reports whether two dimension vectors are identical.
func EqualDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
