package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		dims []int
		n    int
		ok   bool
	}{
		{[]int{10}, 10, true},
		{[]int{2, 5}, 10, true},
		{[]int{2, 5, 3}, 30, true},
		{[]int{2, 5}, 11, false},
		{[]int{}, 0, false},
		{[]int{0}, 0, false},
		{[]int{-3}, -3, false},
		{[]int{1, 2, 3, 4, 5}, 120, false}, // rank > MaxDims
		{[]int{7}, -1, true},               // n < 0 skips length check
	}
	for _, tc := range cases {
		err := Validate(tc.dims, tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v, %d) = %v, want ok=%v", tc.dims, tc.n, err, tc.ok)
		}
	}
}

func TestValidateOverflow(t *testing.T) {
	if err := Validate([]int{1 << 31, 1 << 31, 1 << 31}, -1); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestStrides(t *testing.T) {
	s := Strides([]int{4, 3, 5})
	want := []int{15, 5, 1}
	if !EqualDims(s, want) {
		t.Fatalf("Strides = %v, want %v", s, want)
	}
	if !EqualDims(Strides([]int{9}), []int{1}) {
		t.Fatal("1D strides wrong")
	}
}

func TestBlocksCoverExactly(t *testing.T) {
	dims := []int{7, 10, 5}
	seen := make([]int, Size(dims))
	strides := Strides(dims)
	err := Blocks(dims, 4, func(b Block) error {
		b.ForEach(strides, func(lin int) { seen[lin]++ })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestBlocksClipping(t *testing.T) {
	var blocks []Block
	if err := Blocks([]int{5}, 4, func(b Block) error {
		blocks = append(blocks, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[1].Extent[0] != 1 || blocks[1].Origin[0] != 4 {
		t.Fatalf("boundary block = %+v", blocks[1])
	}
	if blocks[0].Size() != 4 || blocks[1].Size() != 1 {
		t.Fatal("block sizes wrong")
	}
}

func TestBlocksBadSide(t *testing.T) {
	if err := Blocks([]int{4}, 0, func(Block) error { return nil }); err == nil {
		t.Fatal("expected error for side=0")
	}
}

// Property: blocked iteration visits each linear index exactly once for
// random shapes and block sides.
func TestQuickBlocksPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := rng.Intn(3) + 1
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = rng.Intn(13) + 1
		}
		side := rng.Intn(5) + 1
		seen := make([]int, Size(dims))
		strides := Strides(dims)
		if err := Blocks(dims, side, func(b Block) error {
			b.ForEach(strides, func(lin int) { seen[lin]++ })
			return nil
		}); err != nil {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrderRowMajor(t *testing.T) {
	dims := []int{2, 3}
	strides := Strides(dims)
	b := Block{Origin: []int{0, 1}, Extent: []int{2, 2}}
	var got []int
	b.ForEach(strides, func(lin int) { got = append(got, lin) })
	want := []int{1, 2, 4, 5}
	if !EqualDims(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}
