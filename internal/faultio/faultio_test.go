package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func src(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestFailAfter(t *testing.T) {
	data := src(100)
	for _, cut := range []int64{0, 1, 37, 99, 100, 150} {
		r := FailAfter(bytes.NewReader(data), cut)
		got, err := io.ReadAll(r)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("cut %d: err = %v, want ErrInjected", cut, err)
		}
		want := cut
		if want > 100 {
			want = 100
		}
		if !bytes.Equal(got, data[:want]) {
			t.Fatalf("cut %d: delivered %d bytes, want %d intact", cut, len(got), want)
		}
	}
}

func TestTruncateAfter(t *testing.T) {
	data := src(64)
	got, err := io.ReadAll(TruncateAfter(bytes.NewReader(data), 10))
	if err != nil || !bytes.Equal(got, data[:10]) {
		t.Fatalf("got %d bytes, err %v; want 10 clean bytes", len(got), err)
	}
}

func TestShortReads(t *testing.T) {
	data := src(1000)
	r := ShortReads(bytes.NewReader(data), 3)
	buf := make([]byte, 64)
	var got []byte
	for {
		n, err := r.Read(buf)
		if n > 3 {
			t.Fatalf("Read returned %d > max 3", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("short reads corrupted the data")
	}
}

func TestFlipByte(t *testing.T) {
	data := src(50)
	// Flip across a short-read boundary to exercise offset tracking.
	r := FlipByte(ShortReads(bytes.NewReader(data), 7), 33, 0x80)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	want[33] ^= 0x80
	if !bytes.Equal(got, want) {
		t.Fatal("flip landed on the wrong byte")
	}
	// Past-the-end flip is a no-op.
	got, _ = io.ReadAll(FlipByte(bytes.NewReader(data), 1000, 0xFF))
	if !bytes.Equal(got, data) {
		t.Fatal("past-end flip modified data")
	}
}

func TestZeroFill(t *testing.T) {
	data := src(40)
	got, err := io.ReadAll(ZeroFill(ShortReads(bytes.NewReader(data), 5), 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := data[i]
		if i >= 10 && i < 18 {
			want = 0
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestStallThenFail(t *testing.T) {
	data := src(20)
	start := time.Now()
	r := StallThenFail(bytes.NewReader(data), 5, 20*time.Millisecond)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, data[:5]) {
		t.Fatalf("delivered %d bytes before stall, want 5", len(got))
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stall lasted %v, want >= 20ms", d)
	}
}

func TestTransientFailRecovers(t *testing.T) {
	data := src(30)
	r := TransientFail(bytes.NewReader(data), 2)
	buf := make([]byte, 8)
	for i := 0; i < 2; i++ {
		n, err := r.Read(buf)
		if n != 0 || !errors.Is(err, ErrInjected) {
			t.Fatalf("flaky read %d: n=%d err=%v, want 0, ErrInjected", i, n, err)
		}
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("after recovery got %d bytes, err %v; want all 30 clean", len(got), err)
	}
}

func TestRetryMasksTransient(t *testing.T) {
	data := src(50)
	got, err := io.ReadAll(Retry(TransientFail(bytes.NewReader(data), 3), 3))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("retry over 3 transient faults: %d bytes, err %v", len(got), err)
	}
}

func TestRetryExhaustedPropagatesWrapped(t *testing.T) {
	// 5 transient failures against a budget of 2: the final error must
	// still satisfy errors.Is(err, ErrInjected) through the retry wrap.
	_, err := io.ReadAll(Retry(TransientFail(bytes.NewReader(src(10)), 5), 2))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	// Persistent mid-stream faults are not masked either.
	_, err = io.ReadAll(Retry(FailAfter(bytes.NewReader(src(10)), 4), 3))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("persistent fault: err = %v, want wrapped ErrInjected", err)
	}
}

func TestRetryPassesEOFAndProgress(t *testing.T) {
	data := src(20)
	r := Retry(ShortReads(bytes.NewReader(data), 3), 4)
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("progress reads: %d bytes, err %v", len(got), err)
	}
	// io.EOF must come back untouched or io.ReadAll would spin forever;
	// prove it directly on a drained reader.
	n, err := Retry(bytes.NewReader(nil), 3).Read(make([]byte, 4))
	if n != 0 || err != io.EOF {
		t.Fatalf("drained read: n=%d err=%v, want 0, io.EOF", n, err)
	}
}

func TestFailWriter(t *testing.T) {
	var sink bytes.Buffer
	w := FailWriter(&sink, 10)
	n, err := w.Write(src(7))
	if n != 7 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write(src(7))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write: n=%d err=%v, want 3, ErrInjected", n, err)
	}
	if n, err = w.Write(src(1)); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write: n=%d err=%v", n, err)
	}
	if sink.Len() != 10 {
		t.Fatalf("sink got %d bytes, want exactly 10", sink.Len())
	}
}
