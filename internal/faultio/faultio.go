// Package faultio provides deterministic fault-injecting readers and
// writers for exercising decoder robustness: I/O failure at an exact
// byte offset, short reads, bit flips, zero-fill runs, stalls, and
// truncation. Everything is stdlib-only and allocation-light so the
// fault harness can sweep every byte offset of a container without
// dominating test time.
//
// All injected failures return (or wrap) ErrInjected, so a test can
// assert both that a decode failed and that the failure it saw is the
// one it injected rather than an unrelated bug.
//
// The package also carries the one remedy that pairs with its faults:
// Retry, a bounded-retry reader wrapper that absorbs transient failures
// (see TransientFail) while guaranteeing persistent ones still
// propagate wrapped.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrInjected is the error every injected fault returns.
var ErrInjected = errors.New("faultio: injected fault")

// offsetReader tracks how many bytes have been delivered downstream.
type offsetReader struct {
	r   io.Reader
	off int64
}

// FailAfter returns a reader that delivers the first n bytes of r
// intact, then fails every subsequent Read with ErrInjected — the shape
// of a device error mid-transfer. n = 0 fails the first Read.
func FailAfter(r io.Reader, n int64) io.Reader {
	return &failReader{offsetReader{r: r}, n}
}

type failReader struct {
	offsetReader
	limit int64
}

func (f *failReader) Read(p []byte) (int, error) {
	if f.off >= f.limit {
		return 0, ErrInjected
	}
	if rem := f.limit - f.off; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := f.r.Read(p)
	f.off += int64(n)
	if err == io.EOF {
		// The source ended before the fault offset; the fault wins so
		// the harness sees a uniform failure mode.
		err = ErrInjected
	}
	return n, err
}

// TruncateAfter returns a reader that ends cleanly (io.EOF) after the
// first n bytes of r — the shape of a torn-off download or an
// interrupted dump. Unlike io.LimitReader it is explicit about intent.
func TruncateAfter(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// ShortReads returns a reader that delivers at most max bytes per Read
// call, exercising every resumption path in downstream buffering. The
// data is unmodified.
func ShortReads(r io.Reader, max int) io.Reader {
	if max < 1 {
		max = 1
	}
	return &shortReader{r: r, max: max}
}

type shortReader struct {
	r   io.Reader
	max int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > s.max {
		p = p[:s.max]
	}
	return s.r.Read(p)
}

// FlipByte returns a reader that XORs the byte at absolute offset off
// with mask as it passes through — a single-bit mask models bit rot,
// 0xFF a torn byte. Offsets past the end of the stream flip nothing.
func FlipByte(r io.Reader, off int64, mask byte) io.Reader {
	return &flipReader{offsetReader{r: r}, off, mask}
}

type flipReader struct {
	offsetReader
	target int64
	mask   byte
}

func (f *flipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if i := f.target - f.off; i >= 0 && i < int64(n) {
		p[i] ^= f.mask
	}
	f.off += int64(n)
	return n, err
}

// ZeroFill returns a reader that replaces n bytes starting at absolute
// offset off with zeros — the shape of a hole punched by a failed
// storage block.
func ZeroFill(r io.Reader, off, n int64) io.Reader {
	return &zeroReader{offsetReader{r: r}, off, off + n}
}

type zeroReader struct {
	offsetReader
	lo, hi int64
}

func (z *zeroReader) Read(p []byte) (int, error) {
	n, err := z.r.Read(p)
	for i := 0; i < n; i++ {
		if pos := z.off + int64(i); pos >= z.lo && pos < z.hi {
			p[i] = 0
		}
	}
	z.off += int64(n)
	return n, err
}

// StallThenFail returns a reader that delivers the first n bytes, then
// blocks for delay before failing with ErrInjected — a hung device that
// eventually times out. Tests use a small delay and an outer timeout to
// prove the consumer neither spins nor deadlocks while an I/O is
// pending.
func StallThenFail(r io.Reader, n int64, delay time.Duration) io.Reader {
	return &stallReader{failReader{offsetReader{r: r}, n}, delay, false}
}

type stallReader struct {
	failReader
	delay   time.Duration
	stalled bool
}

func (s *stallReader) Read(p []byte) (int, error) {
	if s.off >= s.limit && !s.stalled {
		s.stalled = true
		time.Sleep(s.delay)
	}
	return s.failReader.Read(p)
}

// TransientFail returns a reader whose first n Read calls fail with a
// wrapped ErrInjected before touching r, after which reads pass
// through untouched — the shape of a flaky network mount that recovers
// on retry. Pair with Retry to prove bounded-retry consumers survive
// transient faults while persistent ones still propagate.
func TransientFail(r io.Reader, n int) io.Reader {
	return &transientReader{r: r, left: n}
}

type transientReader struct {
	r    io.Reader
	left int
}

func (t *transientReader) Read(p []byte) (int, error) {
	if t.left > 0 {
		t.left--
		return 0, fmt.Errorf("faultio: transient failure (%d more): %w", t.left, ErrInjected)
	}
	return t.r.Read(p)
}

// Retry wraps r with a bounded per-call retry budget: a Read that
// fails with a non-EOF error and zero progress is retried up to budget
// more times before the last error propagates — wrapped, never
// relabeled, so errors.Is against the original failure keeps working.
// A Read that delivered bytes is returned as-is (the consumer already
// made progress); io.EOF is never retried.
func Retry(r io.Reader, budget int) io.Reader {
	if budget < 0 {
		budget = 0
	}
	return &retryReader{r: r, budget: budget}
}

type retryReader struct {
	r      io.Reader
	budget int
}

func (rr *retryReader) Read(p []byte) (int, error) {
	n, err := rr.r.Read(p)
	for attempt := 0; attempt < rr.budget && err != nil && err != io.EOF && n == 0; attempt++ {
		n, err = rr.r.Read(p)
	}
	if err != nil && err != io.EOF && n == 0 && rr.budget > 0 {
		return 0, fmt.Errorf("faultio: read failed after %d retries: %w", rr.budget, err)
	}
	return n, err
}

// FailWriter returns a writer that accepts the first n bytes and fails
// every Write after that with ErrInjected, reporting the partial count
// of the write that crossed the boundary — the shape of a full disk or
// a dropped pipe on the output side.
func FailWriter(w io.Writer, n int64) io.Writer {
	return &failWriter{w: w, limit: n}
}

type failWriter struct {
	w     io.Writer
	off   int64
	limit int64
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.off >= f.limit {
		return 0, ErrInjected
	}
	take := len(p)
	injected := false
	if rem := f.limit - f.off; int64(take) > rem {
		take, injected = int(rem), true
	}
	n, err := f.w.Write(p[:take])
	f.off += int64(n)
	if err == nil && injected {
		err = ErrInjected
	}
	return n, err
}
