package datagen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/grid"
)

func TestDeterministic(t *testing.T) {
	a := NYX(16, 42)
	b := NYX(16, 42)
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("field %s not deterministic at %d", a[i].Name, j)
			}
		}
	}
	c := NYX(16, 43)
	same := true
	for j := range a[0].Data {
		if a[0].Data[j] != c[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDimsMatchData(t *testing.T) {
	for _, f := range Suite(ScaleTest, 1) {
		if err := grid.Validate(f.Dims, len(f.Data)); err != nil {
			t.Errorf("%s: %v", f.String(), err)
		}
		if f.Bytes() != len(f.Data)*8 {
			t.Errorf("%s: Bytes() mismatch", f.Name)
		}
	}
}

func TestNYXDensityDistribution(t *testing.T) {
	fields := NYX(32, 7)
	var den *Field
	for i := range fields {
		if fields[i].Name == "dark_matter_density" {
			den = &fields[i]
		}
	}
	if den == nil {
		t.Fatal("no density field")
	}
	vals := append([]float64(nil), den.Data...)
	sort.Float64s(vals)
	n := len(vals)
	// All strictly positive.
	if vals[0] <= 0 {
		t.Fatalf("density has nonpositive value %g", vals[0])
	}
	// Most of the mass below 1 (paper: 84%); accept a broad band.
	below1 := sort.SearchFloat64s(vals, 1.0)
	frac := float64(below1) / float64(n)
	if frac < 0.6 || frac > 0.95 {
		t.Fatalf("density fraction below 1 = %.2f, want ~0.84", frac)
	}
	// Heavy tail: max at least 1e2 above the median.
	if vals[n-1] < 100*vals[n/2] {
		t.Fatalf("density tail too light: max %g median %g", vals[n-1], vals[n/2])
	}
}

func TestHACCVelocityCharacter(t *testing.T) {
	fields := HACC(1<<14, 3)
	if len(fields) != 3 {
		t.Fatalf("want 3 velocity fields, got %d", len(fields))
	}
	for _, f := range fields {
		pos, neg := 0, 0
		maxAbs := 0.0
		for _, v := range f.Data {
			if v > 0 {
				pos++
			} else if v < 0 {
				neg++
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if pos == 0 || neg == 0 {
			t.Fatalf("%s: not mixed-sign (pos=%d neg=%d)", f.Name, pos, neg)
		}
		if maxAbs < 1000 {
			t.Fatalf("%s: max |v| = %g, want large velocities", f.Name, maxAbs)
		}
	}
}

func TestCESMCloudFieldsInRangeWithZeros(t *testing.T) {
	fields := CESMATM(60, 120, 4)
	for _, f := range fields {
		if f.Name != "CLDHGH" && f.Name != "CLDLOW" {
			continue
		}
		zeros := 0
		for _, v := range f.Data {
			if v < 0 || v > 1 {
				t.Fatalf("%s: value %g outside [0,1]", f.Name, v)
			}
			if v == 0 {
				zeros++
			}
		}
		if zeros == 0 {
			t.Fatalf("%s: expected exact-zero clear-sky regions", f.Name)
		}
	}
}

func TestHurricaneCloudSparse(t *testing.T) {
	fields := Hurricane(10, 40, 40, 5)
	for _, f := range fields {
		if f.Name != "CLOUDf48" && f.Name != "PRECIPf48" {
			continue
		}
		zeros := 0
		for _, v := range f.Data {
			if v < 0 {
				t.Fatalf("%s: negative value %g", f.Name, v)
			}
			if v == 0 {
				zeros++
			}
		}
		if frac := float64(zeros) / float64(len(f.Data)); frac < 0.1 {
			t.Fatalf("%s: zero fraction %.2f too low", f.Name, frac)
		}
	}
}

func TestSmoothFieldIsSmooth(t *testing.T) {
	// Spatial correlation: mean |∇| should be far below the value range.
	dims := []int{48, 48}
	f := smoothField(dims, 3, 5, rand.New(rand.NewSource(9)))
	var sumDiff float64
	cnt := 0
	for y := 0; y < 48; y++ {
		for x := 1; x < 48; x++ {
			sumDiff += math.Abs(f[y*48+x] - f[y*48+x-1])
			cnt++
		}
	}
	meanDiff := sumDiff / float64(cnt)
	if meanDiff > 0.15 {
		t.Fatalf("mean gradient %.3f too high for smooth field", meanDiff)
	}
}

func TestSuiteScales(t *testing.T) {
	small := Suite(ScaleTest, 1)
	if len(small) != 3+4+4+4 {
		t.Fatalf("suite has %d fields", len(small))
	}
	apps := ByApp(small)
	for _, app := range []string{"HACC", "CESM-ATM", "NYX", "Hurricane"} {
		if len(apps[app]) == 0 {
			t.Fatalf("missing app %s", app)
		}
	}
}

func TestAllFinite(t *testing.T) {
	for _, f := range Suite(ScaleTest, 2) {
		for i, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite at %d", f.String(), i)
			}
		}
	}
}
