// Package datagen synthesizes scalar fields with the statistical character
// of the four applications in the paper's evaluation (Table I): HACC
// cosmology particle velocities, CESM-ATM 2D climate fields, NYX 3D
// cosmology fields and Hurricane-ISABEL 3D storm fields.
//
// The real snapshots (3.1/1.9/1.2/3 GB per time step) are not
// redistributable, so each generator reproduces the properties that drive
// relative-error-bounded compression behaviour instead: value distribution
// (heavy lognormal tails, sign mixes, zero fraction), dynamic range, and
// spatial smoothness (via correlated random fields). All generators are
// deterministic in their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/floatbits"
	"repro/internal/grid"
)

// Field is a named scalar field with row-major data.
type Field struct {
	App  string // application name ("NYX", "HACC", ...)
	Name string // field name ("dark_matter_density", ...)
	Data []float64
	Dims []int
}

// Size returns the number of points in the field.
func (f *Field) Size() int { return len(f.Data) }

// Bytes returns the uncompressed size in bytes (float64 storage).
func (f *Field) Bytes() int { return len(f.Data) * 8 }

// String describes the field.
func (f *Field) String() string {
	return fmt.Sprintf("%s/%s%v", f.App, f.Name, f.Dims)
}

// smoothField returns a spatially correlated random field in roughly
// [-1, 1]: white noise repeatedly box-blurred along each axis (periodic),
// which converges to a Gaussian-correlated field.
func smoothField(dims []int, passes, radius int, rng *rand.Rand) []float64 {
	n := grid.Size(dims)
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	tmp := make([]float64, n)
	strides := grid.Strides(dims)
	for p := 0; p < passes; p++ {
		for d := range dims {
			boxBlurAxis(data, tmp, dims, strides, d, radius)
			data, tmp = tmp, data
		}
	}
	// Normalize to unit-ish amplitude.
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		inv := 1 / maxAbs
		for i := range data {
			data[i] *= inv
		}
	}
	return data
}

// boxBlurAxis applies a periodic box blur of the given radius along axis d.
func boxBlurAxis(src, dst []float64, dims, strides []int, d, radius int) {
	length := dims[d]
	stride := strides[d]
	lines := len(src) / length
	window := float64(2*radius + 1)
	// Enumerate all 1D lines along axis d.
	lineStart := make([]int, 0, lines)
	var rec func(axis, base int)
	rec = func(axis, base int) {
		if axis == len(dims) {
			lineStart = append(lineStart, base)
			return
		}
		if axis == d {
			rec(axis+1, base)
			return
		}
		for i := 0; i < dims[axis]; i++ {
			rec(axis+1, base+i*strides[axis])
		}
	}
	rec(0, 0)
	for _, s := range lineStart {
		// Periodic prefix trick per line.
		var sum float64
		for k := -radius; k <= radius; k++ {
			sum += src[s+mod(k, length)*stride]
		}
		for i := 0; i < length; i++ {
			dst[s+i*stride] = sum / window
			sum -= src[s+mod(i-radius, length)*stride]
			sum += src[s+mod(i+radius+1, length)*stride]
		}
	}
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// standardize returns the z-scores of data (zero mean, unit variance).
func standardize(data []float64) []float64 {
	n := float64(len(data))
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= n
	variance := 0.0
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	variance /= n
	std := math.Sqrt(variance)
	if floatbits.IsZero(std) {
		std = 1
	}
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = (v - mean) / std
	}
	return out
}

// HACC generates the three 1D particle velocity fields. Particle order is
// not spatially coherent, so the fields combine slow bulk-flow structure
// with strong per-particle dispersion — the "sharply varying" behaviour
// that hurts block-minimum PWR designs on HACC (Section VI-D).
func HACC(n int, seed int64) []Field {
	rng := rand.New(rand.NewSource(seed))
	// Per-particle velocity dispersion, shared by the three components
	// (particles live in a common environment): lognormal across ~2 orders
	// of magnitude, so a large population of slow particles coexists with
	// fast halo members. Slow particles are the ones whose *direction* an
	// absolute error bound destroys (Figure 5) while a relative bound
	// preserves it.
	sigma := make([]float64, n)
	for i := range sigma {
		sigma[i] = 150 * math.Exp(rng.NormFloat64()*1.1)
	}
	fields := make([]Field, 0, 3)
	for _, name := range []string{"velocity_x", "velocity_y", "velocity_z"} {
		data := make([]float64, n)
		phase := rng.Float64() * 2 * math.Pi
		freq := 1e-5 * (1 + rng.Float64())
		for i := range data {
			bulk := 50 * math.Sin(float64(i)*freq+phase)
			data[i] = bulk + rng.NormFloat64()*sigma[i]
		}
		fields = append(fields, Field{App: "HACC", Name: name, Data: data, Dims: []int{n}})
	}
	return fields
}

// CESMATM generates 2D climate fields on a (lat, lon) grid. Cloud-fraction
// fields are smooth in [0, 1] with exact-zero clear-sky regions; the "HGH"
// variant has larger clear areas. FLNS-like fields are smooth with a
// latitudinal gradient and moderate dynamic range.
func CESMATM(nlat, nlon int, seed int64) []Field {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{nlat, nlon}
	var fields []Field

	cloud := func(name string, clearCut float64) Field {
		f := smoothField(dims, 3, 6, rng)
		data := make([]float64, len(f))
		for i, v := range f {
			c := (v + 1) / 2      // [0,1]
			c = c * c * (3 - 2*c) // smoothstep sharpens fronts
			if c < clearCut {
				c = 0 // exact clear sky
			}
			data[i] = c
		}
		return Field{App: "CESM-ATM", Name: name, Data: data, Dims: dims}
	}
	fields = append(fields, cloud("CLDHGH", 0.35), cloud("CLDLOW", 0.2))

	// Surface flux: smooth, positive, latitude gradient, range ~ [20, 400].
	flux := smoothField(dims, 3, 8, rng)
	fdata := make([]float64, len(flux))
	for i, v := range flux {
		lat := float64(i/nlon) / float64(nlat-1) // 0..1
		base := 80 + 250*math.Sin(lat*math.Pi)
		fdata[i] = base * (1 + 0.3*v)
	}
	fields = append(fields, Field{App: "CESM-ATM", Name: "FLNS", Data: fdata, Dims: dims})

	// Humidity-like field: positive, 4 orders of magnitude vertical-ish
	// variation across latitude (stresses relative bounds).
	hum := smoothField(dims, 3, 6, rng)
	hdata := make([]float64, len(hum))
	for i, v := range hum {
		lat := float64(i/nlon) / float64(nlat-1)
		hdata[i] = 1e-6 * math.Pow(10, 3*lat) * (1 + 0.4*v) * 20
	}
	fields = append(fields, Field{App: "CESM-ATM", Name: "QREFHT", Data: hdata, Dims: dims})
	return fields
}

// NYX generates 3D cosmology fields on a side³ grid. dark_matter_density
// reproduces the distribution the paper describes in Section VI-B: ~84% of
// the mass in [0, 1] with a heavy tail up to ~1.4e4. velocity_x is signed
// with large magnitudes; temperature is positive with a wide range.
func NYX(side int, seed int64) []Field {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{side, side, side}
	var fields []Field

	// Density: exponentiated correlated Gaussian — lognormal marginals.
	// Standardizing before exp() places ~84% of the mass below 1 (one
	// standard deviation) with a tail reaching ~1e3–1e4, matching the
	// distribution described in Section VI-B.
	g := smoothField(dims, 2, 3, rng)
	z := standardize(g)
	den := make([]float64, len(g))
	for i, v := range z {
		den[i] = math.Exp(2.2*v - 2.2)
	}
	fields = append(fields, Field{App: "NYX", Name: "dark_matter_density", Data: den, Dims: dims})

	// Velocity: signed, ±~1e7, smooth.
	vg := smoothField(dims, 3, 4, rng)
	vel := make([]float64, len(vg))
	for i, v := range vg {
		vel[i] = v * 8e6
	}
	fields = append(fields, Field{App: "NYX", Name: "velocity_x", Data: vel, Dims: dims})

	// Temperature: positive, 1e2..1e7 K.
	tg := smoothField(dims, 2, 4, rng)
	temp := make([]float64, len(tg))
	for i, v := range tg {
		temp[i] = 1e4 * math.Pow(10, 2.2*v)
	}
	fields = append(fields, Field{App: "NYX", Name: "temperature", Data: temp, Dims: dims})

	// Baryon density: correlated with dark matter, positive.
	bg := smoothField(dims, 2, 3, rng)
	mix := make([]float64, len(bg))
	for i := range bg {
		mix[i] = 0.7*z[i] + 0.3*bg[i]
	}
	zb := standardize(mix)
	bar := make([]float64, len(bg))
	for i := range zb {
		bar[i] = math.Exp(1.8*zb[i] - 1.2)
	}
	fields = append(fields, Field{App: "NYX", Name: "baryon_density", Data: bar, Dims: dims})
	return fields
}

// Hurricane generates 3D storm fields on an (nz, ny, nx) grid mimicking the
// Hurricane-ISABEL benchmark: a cloud field with many exact zeros and a
// vortex-structured wind field.
func Hurricane(nz, ny, nx int, seed int64) []Field {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{nz, ny, nx}
	var fields []Field

	// CLOUDf48: nonnegative, sparse (mostly zero), concentrated in a band.
	cg := smoothField(dims, 2, 4, rng)
	cloud := make([]float64, len(cg))
	i := 0
	for z := 0; z < nz; z++ {
		zf := float64(z) / float64(nz-1+1)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := cg[i] - 0.45 + 0.3*math.Sin(zf*math.Pi)
				if v < 0 {
					cloud[i] = 0
				} else {
					cloud[i] = v * 2e-3
				}
				i++
			}
		}
	}
	fields = append(fields, Field{App: "Hurricane", Name: "CLOUDf48", Data: cloud, Dims: dims})

	// Uf48: horizontal wind with a vortex around the eye, range ±80 m/s.
	ug := smoothField(dims, 3, 5, rng)
	wind := make([]float64, len(ug))
	cy, cx := float64(ny)/2, float64(nx)/2
	i = 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				dy, dx := float64(y)-cy, float64(x)-cx
				r := math.Hypot(dx, dy) + 1
				// Rankine-like vortex tangential speed.
				vt := 60 * r / 20 * math.Exp(1-r/20)
				wind[i] = vt*(-dy/r) + 10*ug[i] + 5
				i++
			}
		}
	}
	fields = append(fields, Field{App: "Hurricane", Name: "Uf48", Data: wind, Dims: dims})

	// TCf48: temperature, smooth, 200..300 K with altitude gradient.
	tg := smoothField(dims, 3, 5, rng)
	temp := make([]float64, len(tg))
	i = 0
	for z := 0; z < nz; z++ {
		lapse := 300 - 70*float64(z)/float64(nz)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				temp[i] = lapse + 5*tg[i]
				i++
			}
		}
	}
	fields = append(fields, Field{App: "Hurricane", Name: "TCf48", Data: temp, Dims: dims})

	// PRECIPf48: nonnegative, very heavy-tailed, many zeros.
	pg := smoothField(dims, 2, 3, rng)
	precip := make([]float64, len(pg))
	for i, v := range pg {
		if v < 0.2 {
			precip[i] = 0
		} else {
			precip[i] = 1e-4 * math.Expm1(6*(v-0.2))
		}
	}
	fields = append(fields, Field{App: "Hurricane", Name: "PRECIPf48", Data: precip, Dims: dims})
	return fields
}

// Scale selects the evaluation problem size.
type Scale int

const (
	// ScaleTest is small, for unit tests (sub-second everything).
	ScaleTest Scale = iota
	// ScaleBench matches the benchmark harness (a few hundred MB across
	// all apps, minutes for the full table sweep).
	ScaleBench
	// ScaleLarge approaches the shape of one real snapshot per app.
	ScaleLarge
)

// Suite generates the full four-application field suite used across the
// experiments, at the given scale, deterministically from seed.
func Suite(s Scale, seed int64) []Field {
	var fields []Field
	switch s {
	case ScaleLarge:
		fields = append(fields, HACC(1<<24, seed)...)
		fields = append(fields, CESMATM(900, 1800, seed+1)...)
		fields = append(fields, NYX(192, seed+2)...)
		fields = append(fields, Hurricane(50, 250, 250, seed+3)...)
	case ScaleBench:
		fields = append(fields, HACC(1<<20, seed)...)
		fields = append(fields, CESMATM(300, 600, seed+1)...)
		fields = append(fields, NYX(64, seed+2)...)
		fields = append(fields, Hurricane(25, 125, 125, seed+3)...)
	default:
		fields = append(fields, HACC(1<<14, seed)...)
		fields = append(fields, CESMATM(60, 120, seed+1)...)
		fields = append(fields, NYX(24, seed+2)...)
		fields = append(fields, Hurricane(10, 40, 40, seed+3)...)
	}
	return fields
}

// ByApp groups fields by application name preserving order.
func ByApp(fields []Field) map[string][]Field {
	m := make(map[string][]Field)
	for _, f := range fields {
		m[f.App] = append(m[f.App], f)
	}
	return m
}
