package pfs

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
	"time"
)

func TestAggregateSaturates(t *testing.T) {
	if bw := aggregate(10, 100e6, 8e9); bw != 1e9 {
		t.Fatalf("unsaturated bw = %g", bw)
	}
	if bw := aggregate(1000, 100e6, 8e9); bw != 8e9 {
		t.Fatalf("saturated bw = %g", bw)
	}
}

func TestDumpTimeScalesWithCompressedSize(t *testing.T) {
	s := DefaultSystem(4096)
	perRank := int64(3 << 30) // 3 GB, paper's per-rank load
	// Better-compressing (smaller output) must dump faster at saturation.
	good, err := s.DumpTime(perRank, perRank/13, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.DumpTime(perRank, perRank/2, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if good.Total() >= bad.Total() {
		t.Fatalf("higher CR should dump faster: %v vs %v", good, bad)
	}
	if good.IO >= bad.IO/6 {
		// IO scales linearly with compressed size at saturation: 13/2 ≈ 6.5x.
		t.Fatalf("IO scaling wrong: %v vs %v", good.IO, bad.IO)
	}
}

func TestDumpDominatedByIOAtScale(t *testing.T) {
	// At 4,096 cores and 8 GB/s the write is the bottleneck even for a
	// moderate compressor — the core insight behind Figure 6.
	s := DefaultSystem(4096)
	perRank := int64(3 << 30)
	br, err := s.DumpTime(perRank, perRank/5, 150e6)
	if err != nil {
		t.Fatal(err)
	}
	if br.IO < br.Compute {
		t.Fatalf("expected I/O-bound at scale: %v", br)
	}
}

func TestRawDumpSlower(t *testing.T) {
	s := DefaultSystem(1024)
	perRank := int64(3 << 30)
	raw, err := s.RawDumpTime(perRank)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := s.DumpTime(perRank, perRank/10, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Total() <= comp.Total() {
		t.Fatalf("raw dump should be slower: %v vs %v", raw, comp)
	}
	// Paper: original data takes ~0.7-2.8 hours to dump.
	if raw.Total() < 5*time.Minute {
		t.Fatalf("raw dump implausibly fast: %v", raw)
	}
}

func TestLoadTime(t *testing.T) {
	s := DefaultSystem(2048)
	perRank := int64(3 << 30)
	br, err := s.LoadTime(perRank, perRank/10, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if br.Compute <= 0 || br.IO <= 0 {
		t.Fatalf("breakdown %v", br)
	}
}

func TestValidation(t *testing.T) {
	var s System
	if _, err := s.DumpTime(1, 1, 1); err == nil {
		t.Fatal("zero system accepted")
	}
	good := DefaultSystem(64)
	if _, err := good.DumpTime(1, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := good.LoadTime(1, 1, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMeasureWithRealCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]byte, 1<<18)
	for i := range raw {
		raw[i] = byte(rng.Intn(16)) // compressible
	}
	rates, err := Measure(len(raw),
		func() ([]byte, error) {
			var buf bytes.Buffer
			zw, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err != nil {
				return nil, err
			}
			if _, err := zw.Write(raw); err != nil {
				return nil, err
			}
			if err := zw.Close(); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		func(buf []byte) error {
			zr := flate.NewReader(bytes.NewReader(buf))
			_, err := io.Copy(io.Discard, zr)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if rates.CompressRate <= 0 || rates.DecompressRate <= 0 {
		t.Fatalf("rates %+v", rates)
	}
	if rates.Ratio <= 1 {
		t.Fatalf("ratio %g should exceed 1 for compressible data", rates.Ratio)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Compute: 90 * time.Second, IO: 30 * time.Second}
	if b.Total() != 2*time.Minute {
		t.Fatalf("Total = %v", b.Total())
	}
	if s := b.String(); s == "" {
		t.Fatal("empty string")
	}
}
