// Package pfs models the parallel-I/O side of the paper's Figure 6
// experiment: data dumping (compression + parallel write) and loading
// (parallel read + decompression) on a GPFS-class parallel file system at
// 1,024–4,096 cores.
//
// The original experiment ran on the Bebop supercomputer with
// file-per-process POSIX I/O. That hardware is substituted by a two-part
// model:
//
//   - Compression/decompression rates are *measured* by running the actual
//     Go compressors on this machine's cores (a worker pool saturating
//     GOMAXPROCS), so relative compressor speeds are real.
//   - The file system is an analytic shared-bandwidth model: aggregate
//     bandwidth grows with the number of writers until it saturates at the
//     system peak (the regime in which compression ratio, not compute,
//     decides dump time — the effect Figure 6 demonstrates).
//
// All returned times are deterministic functions of byte counts and the
// measured rates; nothing sleeps.
package pfs

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// System describes the modeled parallel file system and cluster.
type System struct {
	// Cores is the modeled core count (ranks), e.g. 4096.
	Cores int
	// PeakWrite and PeakRead are the saturated aggregate bandwidths in
	// bytes/s. Defaults model the paper's I/O system: 8 GB/s write with
	// burst buffers, slightly faster read.
	PeakWrite, PeakRead float64
	// PerProcWrite and PerProcRead cap a single rank's streaming bandwidth
	// (bytes/s) before aggregate saturation.
	PerProcWrite, PerProcRead float64
	// MetadataLatency is the per-file open/close overhead of
	// file-per-process POSIX I/O.
	MetadataLatency time.Duration
	// CoreRate derates a modeled core's compression speed relative to a
	// local core (1.0 = identical).
	CoreRate float64
}

// DefaultSystem models the paper's Bebop/GPFS setup at the given scale.
func DefaultSystem(cores int) System {
	return System{
		Cores:           cores,
		PeakWrite:       8e9,  // 8 GB/s (Section I's burst-buffer figure)
		PeakRead:        10e9, // reads slightly faster than writes on GPFS
		PerProcWrite:    150e6,
		PerProcRead:     200e6,
		MetadataLatency: 30 * time.Millisecond,
		CoreRate:        1.0,
	}
}

// aggregate returns the effective aggregate bandwidth for n concurrent
// streams with per-stream cap `per` and system peak `peak`.
func aggregate(n int, per, peak float64) float64 {
	b := float64(n) * per
	if b > peak {
		return peak
	}
	return b
}

// Breakdown is one bar of Figure 6: the compute and I/O components of a
// dump or load.
type Breakdown struct {
	Compute time.Duration // compression or decompression
	IO      time.Duration // write or read
}

// Total returns the end-to-end time.
func (b Breakdown) Total() time.Duration { return b.Compute + b.IO }

func (b Breakdown) String() string {
	return fmt.Sprintf("compute %.1fs + io %.1fs = %.1fs",
		b.Compute.Seconds(), b.IO.Seconds(), b.Total().Seconds())
}

// DumpTime models dumping bytesPerRank of raw data per rank when the
// compressor emits compressedPerRank bytes at compressRate raw-bytes/s per
// core.
func (s System) DumpTime(bytesPerRank, compressedPerRank int64, compressRate float64) (Breakdown, error) {
	if err := s.validate(); err != nil {
		return Breakdown{}, err
	}
	if compressRate <= 0 {
		return Breakdown{}, errors.New("pfs: nonpositive compression rate")
	}
	comp := time.Duration(float64(bytesPerRank) / (compressRate * s.CoreRate) * float64(time.Second))
	bw := aggregate(s.Cores, s.PerProcWrite, s.PeakWrite)
	io := time.Duration(float64(compressedPerRank)*float64(s.Cores)/bw*float64(time.Second)) + s.MetadataLatency
	return Breakdown{Compute: comp, IO: io}, nil
}

// LoadTime models loading: parallel read of compressedPerRank bytes then
// decompression at decompressRate raw-bytes/s per core (rate measured
// against the *reconstructed* byte count, matching the paper's MB/s).
func (s System) LoadTime(bytesPerRank, compressedPerRank int64, decompressRate float64) (Breakdown, error) {
	if err := s.validate(); err != nil {
		return Breakdown{}, err
	}
	if decompressRate <= 0 {
		return Breakdown{}, errors.New("pfs: nonpositive decompression rate")
	}
	bw := aggregate(s.Cores, s.PerProcRead, s.PeakRead)
	io := time.Duration(float64(compressedPerRank)*float64(s.Cores)/bw*float64(time.Second)) + s.MetadataLatency
	comp := time.Duration(float64(bytesPerRank) / (decompressRate * s.CoreRate) * float64(time.Second))
	return Breakdown{Compute: comp, IO: io}, nil
}

// RawDumpTime models dumping the uncompressed data (the paper's "original
// data needs 0.7–2.8 hours" comparison point).
func (s System) RawDumpTime(bytesPerRank int64) (Breakdown, error) {
	if err := s.validate(); err != nil {
		return Breakdown{}, err
	}
	bw := aggregate(s.Cores, s.PerProcWrite, s.PeakWrite)
	io := time.Duration(float64(bytesPerRank)*float64(s.Cores)/bw*float64(time.Second)) + s.MetadataLatency
	return Breakdown{IO: io}, nil
}

func (s System) validate() error {
	if s.Cores <= 0 || s.PeakWrite <= 0 || s.PeakRead <= 0 ||
		s.PerProcWrite <= 0 || s.PerProcRead <= 0 || s.CoreRate <= 0 {
		return fmt.Errorf("pfs: invalid system %+v", s)
	}
	return nil
}

// MeasuredRates holds compressor throughput measured on local cores.
type MeasuredRates struct {
	// CompressRate and DecompressRate are raw-bytes/s per core.
	CompressRate, DecompressRate float64
	// Ratio is the measured compression ratio.
	Ratio float64
}

// Measure runs compress/decompress concurrently on up to GOMAXPROCS
// workers (each worker performs the same work, modeling file-per-process
// ranks contending for memory bandwidth) and returns per-core rates.
// rawBytes is the uncompressed size one invocation of compress covers.
func Measure(rawBytes int,
	compress func() ([]byte, error),
	decompress func(buf []byte) error) (MeasuredRates, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}

	// Compression pass.
	var wg sync.WaitGroup
	bufs := make([][]byte, workers)
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bufs[w], errs[w] = compress()
		}(w)
	}
	wg.Wait()
	compElapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MeasuredRates{}, err
		}
	}

	// Decompression pass.
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = decompress(bufs[w])
		}(w)
	}
	wg.Wait()
	decElapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MeasuredRates{}, err
		}
	}

	totalRaw := float64(rawBytes) * float64(workers)
	r := MeasuredRates{
		CompressRate:   totalRaw / compElapsed.Seconds() / float64(workers),
		DecompressRate: totalRaw / decElapsed.Seconds() / float64(workers),
		Ratio:          float64(rawBytes) / float64(len(bufs[0])),
	}
	return r, nil
}
