package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func smooth3D(nz, ny, nx int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				data[i] = 10*math.Sin(float64(x)*0.2)*math.Cos(float64(y)*0.15) +
					5*math.Sin(float64(z)*0.1) + rng.NormFloat64()*0.01
				i++
			}
		}
	}
	return data, []int{nz, ny, nx}
}

func checkAbs(t *testing.T, orig, dec []float64, tol float64) {
	t.Helper()
	for i := range orig {
		if d := math.Abs(dec[i] - orig[i]); d > tol {
			t.Fatalf("index %d: |%g - %g| = %g > tol %g", i, dec[i], orig[i], d, tol)
		}
	}
}

func TestAccuracyRoundTrip3D(t *testing.T) {
	data, dims := smooth3D(17, 19, 23, 1) // deliberately non-multiple-of-4
	for _, tol := range []float64{1e-6, 1e-3, 1e-1} {
		buf, err := CompressAccuracy(data, dims, tol)
		if err != nil {
			t.Fatalf("tol %g: %v", tol, err)
		}
		dec, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("tol %g: %v", tol, err)
		}
		if !grid.EqualDims(gotDims, dims) {
			t.Fatalf("dims %v, want %v", gotDims, dims)
		}
		checkAbs(t, data, dec, tol)
	}
}

func TestAccuracyRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 4099)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64() * 0.1
		data[i] = v
	}
	tol := 1e-4
	buf, err := CompressAccuracy(data, []int{len(data)}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbs(t, data, dec, tol)
}

func TestAccuracyRoundTrip2D(t *testing.T) {
	ny, nx := 53, 61
	data := make([]float64, ny*nx)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			data[y*nx+x] = math.Sin(float64(x)*0.1) * math.Cos(float64(y)*0.1) * 100
		}
	}
	tol := 1e-3
	buf, err := CompressAccuracy(data, []int{ny, nx}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbs(t, data, dec, tol)
}

func TestAccuracyWideDynamicRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(16)-8))
	}
	tol := 1e-5
	buf, err := CompressAccuracy(data, []int{4096}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbs(t, data, dec, tol)
}

func TestAccuracyExtremeMagnitudes(t *testing.T) {
	data := []float64{1e300, -1e300, 1e-300, 0, 5e-324, math.MaxFloat64 / 4, -3, 7}
	tol := 1e290
	buf, err := CompressAccuracy(data, []int{8}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbs(t, data, dec, tol)
}

func TestAllZeroBlockCompact(t *testing.T) {
	data := make([]float64, 4096)
	buf, err := CompressAccuracy(data, []int{16, 16, 16}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("index %d: %g != 0", i, v)
		}
	}
	if len(buf) > 128 {
		t.Fatalf("all-zero stream is %d bytes", len(buf))
	}
}

func TestSubToleranceBlocksDecodeZero(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = 1e-12
	}
	tol := 1.0
	buf, err := CompressAccuracy(data, []int{64}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	checkAbs(t, data, dec, tol)
}

func TestPrecisionModeRoundTrip(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 4)
	for _, p := range []int{8, 16, 26, 52} {
		buf, err := CompressPrecision(data, dims, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Precision mode: error shrinks as p grows; at p=52 it should be
		// tiny relative to the block magnitudes.
		if p == 52 {
			for i := range data {
				if math.Abs(dec[i]-data[i]) > 1e-9*math.Max(1, math.Abs(data[i])) {
					t.Fatalf("p=52 error too large at %d: %g vs %g", i, dec[i], data[i])
				}
			}
		}
	}
}

func TestPrecisionModeMonotone(t *testing.T) {
	data, dims := smooth3D(12, 12, 12, 5)
	var prevMax float64 = math.Inf(1)
	for _, p := range []int{6, 12, 24, 48} {
		buf, err := CompressPrecision(data, dims, p)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := 0.0
		for i := range data {
			if d := math.Abs(dec[i] - data[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > prevMax*1.001 {
			t.Fatalf("p=%d error %g worse than lower precision %g", p, maxErr, prevMax)
		}
		prevMax = maxErr
	}
}

func TestPrecisionUnboundedRelativeError(t *testing.T) {
	// A block mixing large and tiny values: precision mode cannot bound the
	// relative error of the tiny values (the ZFP_P deficiency in Table IV).
	data := make([]float64, 64)
	for i := range data {
		data[i] = 1e-9
	}
	data[0] = 1e9
	buf, err := CompressPrecision(data, []int{64}, 20)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	worstRel := 0.0
	for i := 1; i < 64; i++ {
		rel := math.Abs(dec[i]-data[i]) / data[i]
		if rel > worstRel {
			worstRel = rel
		}
	}
	if worstRel < 1 {
		t.Fatalf("expected unbounded relative error in mixed block, got %g", worstRel)
	}
}

func TestCompressionRatioSmooth(t *testing.T) {
	data, dims := smooth3D(32, 32, 32, 6)
	buf, err := CompressAccuracy(data, dims, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(len(data)*8) / float64(len(buf))
	if cr < 3 {
		t.Fatalf("compression ratio %.2f too low", cr)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := CompressAccuracy([]float64{1}, []int{1}, 0); err == nil {
		t.Fatal("tol=0 accepted")
	}
	if _, err := CompressAccuracy([]float64{1}, []int{1}, math.NaN()); err == nil {
		t.Fatal("NaN tol accepted")
	}
	if _, err := CompressPrecision([]float64{1}, []int{1}, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := CompressPrecision([]float64{1}, []int{1}, 65); err == nil {
		t.Fatal("p=65 accepted")
	}
	if _, err := CompressAccuracy([]float64{1, 2}, []int{3}, 0.1); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if _, err := CompressAccuracy([]float64{math.NaN()}, []int{1}, 0.1); err == nil {
		t.Fatal("NaN data accepted")
	}
	if _, err := CompressAccuracy([]float64{math.Inf(1)}, []int{1}, 0.1); err == nil {
		t.Fatal("Inf data accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data, dims := smooth3D(8, 8, 8, 7)
	buf, err := CompressAccuracy(data, dims, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 4, 8, len(buf) / 2} {
		if _, _, err := Decompress(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress(mut) // must not panic
	}
}

func TestLiftInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		orig := make([]int64, 4)
		for i := range orig {
			orig[i] = rng.Int63n(1<<60) - 1<<59
		}
		p := append([]int64(nil), orig...)
		fwdLift(p, 0, 1)
		invLift(p, 0, 1)
		for i := range orig {
			// The lifting pair loses at most low-order bits.
			if d := p[i] - orig[i]; d > 4 || d < -4 {
				t.Fatalf("lift inverse error %d at %d (orig %d)", d, i, orig[i])
			}
		}
	}
}

func TestTransformInverse3D(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		orig := make([]int64, 64)
		for i := range orig {
			orig[i] = rng.Int63n(1<<59) - 1<<58
		}
		p := append([]int64(nil), orig...)
		forwardTransform(p, 3)
		inverseTransform(p, 3)
		for i := range orig {
			if d := p[i] - orig[i]; d > 64 || d < -64 {
				t.Fatalf("3D transform inverse error %d at %d", d, i)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64 / 2, math.MinInt64 / 2}
	for _, v := range vals {
		if got := uint2int(int2uint(v)); got != v {
			t.Fatalf("negabinary round trip %d -> %d", v, got)
		}
	}
}

func TestQuickNegabinary(t *testing.T) {
	f := func(v int64) bool { return uint2int(int2uint(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAccuracyBound(t *testing.T) {
	f := func(seed int64, tolSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5))
		}
		tol := math.Pow(10, -float64(tolSel%10))
		buf, err := CompressAccuracy(data, []int{n}, tol)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range data {
			if math.Abs(dec[i]-data[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAccuracyBound2D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ny, nx := rng.Intn(20)+1, rng.Intn(20)+1
		data := make([]float64, ny*nx)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		tol := 1e-3
		buf, err := CompressAccuracy(data, []int{ny, nx}, tol)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(dec[i]-data[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	for rank := 1; rank <= 3; rank++ {
		perm := permTable(rank)
		n := blockSize(rank)
		if len(perm) != n {
			t.Fatalf("rank %d: perm length %d", rank, len(perm))
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("rank %d: invalid permutation", rank)
			}
			seen[p] = true
		}
		// DC coefficient (index 0) must come first.
		if perm[0] != 0 {
			t.Fatalf("rank %d: perm[0] = %d", rank, perm[0])
		}
	}
}

func BenchmarkCompressAccuracy3D(b *testing.B) {
	data, dims := smooth3D(32, 32, 32, 11)
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompressAccuracy(data, dims, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress3D(b *testing.B) {
	data, dims := smooth3D(32, 32, 32, 12)
	buf, err := CompressAccuracy(data, dims, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRateModeExactSize(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 30)
	for _, rate := range []float64{2, 4, 8, 16} {
		buf, err := CompressRate(data, dims, rate)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		dec, gotDims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		if !grid.EqualDims(gotDims, dims) {
			t.Fatalf("dims %v", gotDims)
		}
		// Payload is exactly rate bits per value (all blocks full 4^3 here).
		nblocks := (16 / 4) * (16 / 4) * (16 / 4)
		wantBits := int(rate) * 64 * nblocks
		wantBytes := (wantBits + 7) / 8
		// Header adds a small constant.
		if len(buf) < wantBytes || len(buf) > wantBytes+64 {
			t.Fatalf("rate %g: stream %d bytes, want ~%d", rate, len(buf), wantBytes)
		}
		// Higher rates must reduce error.
		_ = dec
	}
}

func TestRateModeErrorShrinksWithRate(t *testing.T) {
	data, dims := smooth3D(16, 16, 16, 31)
	prev := math.Inf(1)
	for _, rate := range []float64{2, 6, 12, 24} {
		buf, err := CompressRate(data, dims, rate)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := 0.0
		for i := range data {
			if d := math.Abs(dec[i] - data[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > prev*1.01 {
			t.Fatalf("rate %g: error %g worse than lower rate %g", rate, maxErr, prev)
		}
		prev = maxErr
	}
	if prev > 1e-3 {
		t.Fatalf("24 bits/value should be quite accurate, got max err %g", prev)
	}
}

func TestRateModePartialBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := make([]float64, 17*19) // non-multiple-of-4 dims
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	buf, err := CompressRate(data, []int{17, 19}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(data) {
		t.Fatal("length mismatch")
	}
}

func TestRateModeBadParams(t *testing.T) {
	if _, err := CompressRate([]float64{1}, []int{1}, 0.5); err == nil {
		t.Fatal("rate<1 accepted")
	}
	if _, err := CompressRate([]float64{1}, []int{1}, 65); err == nil {
		t.Fatal("rate>64 accepted")
	}
}

func TestRateModeAllZeroBlocks(t *testing.T) {
	data := make([]float64, 256)
	buf, err := CompressRate(data, []int{256}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("index %d: %g", i, v)
		}
	}
}
