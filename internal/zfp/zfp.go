// Package zfp is a clean-room Go re-implementation of the ZFP fixed-point
// block-transform compressor (Lindstrom, TVCG 2014), the transform-based
// absolute-error-bound backend used by the paper's transformation scheme.
//
// Each 4^d block goes through ZFP's pipeline:
//
//  1. Block floating-point alignment: all values are scaled by a common
//     power of two derived from the block's maximum exponent and cast to
//     62-bit fixed point.
//  2. An invertible integer lifting transform applied along each dimension
//     (the near-orthogonal decorrelating transform analyzed in Section
//     IV-B of the paper).
//  3. Total-sequency coefficient reordering.
//  4. Two's-complement → negabinary mapping.
//  5. Embedded (group-tested) bit-plane coding from the most significant
//     plane down, stopping at a per-block precision derived either from the
//     absolute error tolerance (fixed-accuracy mode) or from a fixed bit
//     count (precision mode, the ZFP_P baseline of the paper).
//
// Fixed-accuracy mode guarantees |decompressed − original| ≤ tolerance;
// precision mode does not bound the error for all data, which is exactly
// the deficiency Table IV of the paper demonstrates.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/floatbits"
	"repro/internal/grid"
)

const (
	magic    = 0x5A465031 // "ZFP1"
	modeAcc  = 1
	modePrec = 2
	modeRate = 3
	maxRank  = 3
	intprec  = 64
	// fpBits is the fixed-point magnitude budget: values scale to
	// |x| < 2^fpBits. Two bits below ZFP's intprec−2 buy headroom so the
	// lifting transform's range expansion (≤ ~1.25× per pass, with
	// intermediate sums up to ~3.2× over three passes) can never overflow
	// int64; the lost precision is compensated in blockPrecision.
	fpBits     = intprec - 4
	ebias      = 1100 // exponent bias for serialized emax (covers denormals)
	ebitsField = 12   // bits used to store the biased block exponent
	// nbmask is the negabinary conversion mask (alternating bits).
	nbmask = 0xaaaaaaaaaaaaaaaa
)

var (
	// ErrCorrupt reports a malformed or truncated stream.
	ErrCorrupt = errors.New("zfp: corrupt stream")
	// ErrBadParam reports an invalid tolerance or precision.
	ErrBadParam = errors.New("zfp: invalid parameter")
	// ErrNonFinite reports NaN or Inf in the input, which the ZFP pipeline
	// cannot represent.
	ErrNonFinite = errors.New("zfp: non-finite values unsupported")
)

// CompressAccuracy compresses data under an absolute error tolerance
// (ZFP's fixed-accuracy mode).
func CompressAccuracy(data []float64, dims []int, tolerance float64) ([]byte, error) {
	if !(tolerance > 0) || math.IsInf(tolerance, 0) || math.IsNaN(tolerance) {
		return nil, fmt.Errorf("%w: tolerance %v", ErrBadParam, tolerance)
	}
	return compress(data, dims, modeAcc, tolerance, 0)
}

// CompressPrecision compresses data keeping `precision` bit planes per
// block (ZFP's fixed-precision mode, the paper's ZFP_P baseline). The
// pointwise error is *not* uniformly bounded in this mode.
func CompressPrecision(data []float64, dims []int, precision int) ([]byte, error) {
	if precision < 1 || precision > intprec {
		return nil, fmt.Errorf("%w: precision %d", ErrBadParam, precision)
	}
	return compress(data, dims, modePrec, 0, precision)
}

// CompressRate compresses data at a fixed rate of `bitsPerValue` bits per
// value (ZFP's fixed-rate mode): every block occupies exactly the same
// number of bits, enabling random block access at an exactly predictable
// size, with neither an absolute nor a relative error guarantee.
func CompressRate(data []float64, dims []int, bitsPerValue float64) ([]byte, error) {
	if !(bitsPerValue >= 1) || bitsPerValue > 64 {
		return nil, fmt.Errorf("%w: rate %v bits/value", ErrBadParam, bitsPerValue)
	}
	// Encoded as "prec" = block bit budget.
	rank := len(dims)
	if rank == 0 || rank > maxRank {
		return nil, fmt.Errorf("zfp: rank %d unsupported", rank)
	}
	budget := int(bitsPerValue * float64(blockSize(rank)))
	if budget < 1+ebitsField+1 {
		budget = 1 + ebitsField + 1
	}
	return compress(data, dims, modeRate, 0, budget)
}

func compress(data []float64, dims []int, mode int, tol float64, prec int) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	if len(dims) > maxRank {
		return nil, fmt.Errorf("zfp: rank %d unsupported", len(dims))
	}
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrNonFinite
		}
	}
	rank := len(dims)
	bs := blockSize(rank)
	minexp := 0
	if mode == modeAcc {
		minexp = math.Ilogb(tol)
	}

	head := make([]byte, 0, 64)
	head = binary.BigEndian.AppendUint32(head, magic)
	//lint:allow intnarrow mode is one of the three small mode constants
	head = append(head, byte(mode))
	head = bitio.AppendUvarint(head, uint64(rank))
	for _, d := range dims {
		head = bitio.AppendUvarint(head, uint64(d))
	}
	if mode == modeAcc {
		head = binary.BigEndian.AppendUint64(head, math.Float64bits(tol))
	} else {
		head = bitio.AppendUvarint(head, uint64(prec))
	}

	w := bitio.NewWriter(len(data)) // rough hint
	strides := grid.Strides(dims)
	block := make([]float64, bs)
	iblock := make([]int64, bs)
	ublock := make([]uint64, bs)
	err := grid.Blocks(dims, 4, func(b grid.Block) error {
		gatherBlock(data, strides, b, rank, block)
		encodeBlock(w, block, rank, mode, minexp, prec, iblock, ublock)
		return nil
	})
	if err != nil {
		return nil, err
	}
	payload := w.Bytes()
	out := head
	out = bitio.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...), nil
}

// Decompress decodes a stream produced by CompressAccuracy or
// CompressPrecision.
func Decompress(buf []byte) ([]float64, []int, error) {
	if len(buf) < 5 || binary.BigEndian.Uint32(buf) != magic {
		return nil, nil, ErrCorrupt
	}
	mode := int(buf[4])
	if mode != modeAcc && mode != modePrec && mode != modeRate {
		return nil, nil, ErrCorrupt
	}
	off := 5
	rankU, k := bitio.Uvarint(buf[off:])
	if k == 0 || rankU == 0 || rankU > maxRank {
		return nil, nil, ErrCorrupt
	}
	off += k
	//lint:allow intnarrow guarded above: rankU <= maxRank
	rank := int(rankU)
	dims := make([]int, rank)
	for i := range dims {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 || d == 0 || d > 1<<40 {
			return nil, nil, ErrCorrupt
		}
		//lint:allow intnarrow guarded above: d <= 1<<40
		dims[i] = int(d)
		off += k
	}
	if err := grid.Validate(dims, -1); err != nil {
		return nil, nil, ErrCorrupt
	}
	minexp, prec := 0, 0
	if mode == modeAcc {
		if off+8 > len(buf) {
			return nil, nil, ErrCorrupt
		}
		tol := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		if !(tol > 0) || math.IsNaN(tol) || math.IsInf(tol, 0) {
			return nil, nil, ErrCorrupt
		}
		minexp = math.Ilogb(tol)
	} else {
		maxP := uint64(intprec)
		if mode == modeRate {
			maxP = 1 + ebitsField + 64*64 // header + all planes of a 3D block
		}
		p, k := bitio.Uvarint(buf[off:])
		if k == 0 || p < 1 || p > maxP {
			return nil, nil, ErrCorrupt
		}
		//lint:allow intnarrow guarded above: p <= maxP
		prec = int(p)
		off += k
	}
	plen, k := bitio.Uvarint(buf[off:])
	// Compare in uint64: int(plen) of a near-2^64 length would wrap
	// negative and slip past an int comparison.
	if k == 0 || plen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	//lint:allow intnarrow guarded above: plen <= len(buf)
	r := bitio.NewReader(buf[off : off+int(plen)])

	n := grid.Size(dims)
	out := make([]float64, n)
	strides := grid.Strides(dims)
	bs := blockSize(rank)
	block := make([]float64, bs)
	iblock := make([]int64, bs)
	ublock := make([]uint64, bs)
	err := grid.Blocks(dims, 4, func(b grid.Block) error {
		if err := decodeBlock(r, block, rank, mode, minexp, prec, iblock, ublock); err != nil {
			return err
		}
		scatterBlock(out, strides, b, rank, block)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, dims, nil
}

func blockSize(rank int) int {
	n := 1
	for i := 0; i < rank; i++ {
		n *= 4
	}
	return n
}

// gatherBlock copies block b into dst (length 4^rank), padding partial
// blocks by edge replication along each dimension, as ZFP does.
func gatherBlock(data []float64, strides []int, b grid.Block, rank int, dst []float64) {
	// idx[d] runs over the full 4-cube; clamp to extent-1 for padding.
	switch rank {
	case 1:
		for i := 0; i < 4; i++ {
			ii := i
			if ii >= b.Extent[0] {
				ii = b.Extent[0] - 1
			}
			dst[i] = data[(b.Origin[0]+ii)*strides[0]]
		}
	case 2:
		for j := 0; j < 4; j++ {
			jj := j
			if jj >= b.Extent[0] {
				jj = b.Extent[0] - 1
			}
			for i := 0; i < 4; i++ {
				ii := i
				if ii >= b.Extent[1] {
					ii = b.Extent[1] - 1
				}
				dst[j*4+i] = data[(b.Origin[0]+jj)*strides[0]+(b.Origin[1]+ii)*strides[1]]
			}
		}
	case 3:
		for kk := 0; kk < 4; kk++ {
			k := kk
			if k >= b.Extent[0] {
				k = b.Extent[0] - 1
			}
			for j := 0; j < 4; j++ {
				jj := j
				if jj >= b.Extent[1] {
					jj = b.Extent[1] - 1
				}
				for i := 0; i < 4; i++ {
					ii := i
					if ii >= b.Extent[2] {
						ii = b.Extent[2] - 1
					}
					dst[(kk*4+j)*4+i] = data[(b.Origin[0]+k)*strides[0]+(b.Origin[1]+jj)*strides[1]+(b.Origin[2]+ii)*strides[2]]
				}
			}
		}
	}
}

// scatterBlock writes the real (non-padded) portion of a decoded block back
// into the output array.
func scatterBlock(out []float64, strides []int, b grid.Block, rank int, src []float64) {
	switch rank {
	case 1:
		for i := 0; i < b.Extent[0]; i++ {
			out[(b.Origin[0]+i)*strides[0]] = src[i]
		}
	case 2:
		for j := 0; j < b.Extent[0]; j++ {
			for i := 0; i < b.Extent[1]; i++ {
				out[(b.Origin[0]+j)*strides[0]+(b.Origin[1]+i)*strides[1]] = src[j*4+i]
			}
		}
	case 3:
		for k := 0; k < b.Extent[0]; k++ {
			for j := 0; j < b.Extent[1]; j++ {
				for i := 0; i < b.Extent[2]; i++ {
					out[(b.Origin[0]+k)*strides[0]+(b.Origin[1]+j)*strides[1]+(b.Origin[2]+i)*strides[2]] = src[(k*4+j)*4+i]
				}
			}
		}
	}
}

// blockPrecision computes the number of bit planes to encode for a block
// with maximum exponent emax (ZFP's precision() helper): fixed-precision
// mode uses prec directly; fixed-accuracy mode keeps emax − minexp planes
// plus guard bits covering transform range growth, inverse-transform error
// amplification and the extra fixed-point headroom. The conservatism this
// introduces is the "over-preserved bound" behaviour the paper reports for
// ZFP in Section VI-C.
func blockPrecision(mode, emax, minexp, prec, rank int) int {
	if mode == modePrec {
		return prec
	}
	if mode == modeRate {
		// All planes admissible; the bit budget does the truncation.
		return intprec
	}
	// Guard-bit budget: 2·rank bits for inverse-transform error
	// amplification, 2 bits for the extra fixed-point headroom above, and
	// 4 bits so the negabinary truncation granularity (≤ 2^(kmin+1) fixed
	// units) lands at ≤ tol/4 before the inverse gain is applied.
	p := emax - minexp + 2*rank + 6
	if p < 0 {
		p = 0
	}
	if p > intprec {
		p = intprec
	}
	return p
}

func encodeBlock(w *bitio.Writer, block []float64, rank, mode, minexp, prec int, iblock []int64, ublock []uint64) {
	n := blockSize(rank)
	start := w.BitsWritten()
	blockBudget := 0 // 0 = variable-length block
	if mode == modeRate {
		blockBudget = prec
	}
	maxAbs := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(block[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if floatbits.IsZero(maxAbs) {
		w.WriteBit(0) // empty (all-zero) block
		padBlock(w, start, blockBudget)
		return
	}
	emax := math.Ilogb(maxAbs)
	maxprec := blockPrecision(mode, emax, minexp, prec, rank)
	if maxprec == 0 {
		// Everything below tolerance: decodes as zero.
		w.WriteBit(0)
		padBlock(w, start, blockBudget)
		return
	}
	w.WriteBit(1)
	w.WriteBits(uint64(emax+ebias), ebitsField)

	// Block floating-point: scale so |x| < 2^fpBits+1 before the transform.
	scale := math.Ldexp(1, fpBits-1-emax)
	for i := 0; i < n; i++ {
		iblock[i] = int64(block[i] * scale)
	}
	forwardTransform(iblock, rank)
	perm := permTable(rank)
	for i := 0; i < n; i++ {
		ublock[i] = int2uint(iblock[perm[i]])
	}
	planeBudget := unlimitedBits
	if mode == modeRate {
		planeBudget = blockBudget - 1 - ebitsField
	}
	encodeInts(w, ublock, maxprec, planeBudget)
	padBlock(w, start, blockBudget)
}

// padBlock zero-fills a fixed-rate block to exactly `budget` bits.
func padBlock(w *bitio.Writer, start uint64, budget int) {
	if budget <= 0 {
		return
	}
	for w.BitsWritten()-start < uint64(budget) {
		w.WriteBit(0)
	}
}

func decodeBlock(r *bitio.Reader, block []float64, rank, mode, minexp, prec int, iblock []int64, ublock []uint64) error {
	n := blockSize(rank)
	start := r.BitsRead()
	blockBudget := 0
	if mode == modeRate {
		blockBudget = prec
	}
	bit, err := r.ReadBit()
	if err != nil {
		return err
	}
	if bit == 0 {
		for i := 0; i < n; i++ {
			block[i] = 0
		}
		return skipPad(r, start, blockBudget)
	}
	e, err := r.ReadBits(ebitsField)
	if err != nil {
		return err
	}
	//lint:allow intnarrow e < 2^ebitsField by the ReadBits contract
	emax := int(e) - ebias
	if emax < -1090 || emax > 1030 {
		return ErrCorrupt
	}
	maxprec := blockPrecision(mode, emax, minexp, prec, rank)
	planeBudget := unlimitedBits
	if mode == modeRate {
		planeBudget = blockBudget - 1 - ebitsField
	}
	if err := decodeInts(r, ublock[:n], maxprec, planeBudget); err != nil {
		return err
	}
	if err := skipPad(r, start, blockBudget); err != nil {
		return err
	}
	perm := permTable(rank)
	for i := 0; i < n; i++ {
		iblock[perm[i]] = uint2int(ublock[i])
	}
	inverseTransform(iblock, rank)
	scale := math.Ldexp(1, emax+1-fpBits)
	for i := 0; i < n; i++ {
		block[i] = float64(iblock[i]) * scale
	}
	return nil
}

// skipPad consumes the zero padding of a fixed-rate block.
func skipPad(r *bitio.Reader, start uint64, budget int) error {
	if budget <= 0 {
		return nil
	}
	for r.BitsRead()-start < uint64(budget) {
		if _, err := r.ReadBit(); err != nil {
			return err
		}
	}
	return nil
}

func int2uint(x int64) uint64 { return (uint64(x) + nbmask) ^ nbmask }

//lint:allow intnarrow intentional negabinary reinterpretation across the full 64-bit width
func uint2int(u uint64) int64 { return int64((u ^ nbmask) - nbmask) }

// fwdLift applies ZFP's forward lifting step to four values at stride s.
func fwdLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift inverts fwdLift.
func invLift(p []int64, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

func forwardTransform(p []int64, rank int) {
	switch rank {
	case 1:
		fwdLift(p, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift(p, y*4, 1)
		}
		for x := 0; x < 4; x++ {
			fwdLift(p, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(p, (z*4+y)*4, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, z*16+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, y*4+x, 16)
			}
		}
	}
}

func inverseTransform(p []int64, rank int) {
	switch rank {
	case 1:
		invLift(p, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(p, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(p, y*4, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(p, y*4+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(p, z*16+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(p, (z*4+y)*4, 1)
			}
		}
	}
}

var permTables [maxRank + 1][]int

func init() {
	for rank := 1; rank <= maxRank; rank++ {
		permTables[rank] = makePerm(rank)
	}
}

// makePerm orders block coefficients by total sequency (sum of per-axis
// frequencies), which groups low-frequency — typically large — coefficients
// first so the embedded coder finds significance early.
func makePerm(rank int) []int {
	n := blockSize(rank)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	key := func(lin int) int {
		s := 0
		for d := 0; d < rank; d++ {
			s += lin % 4
			lin /= 4
		}
		return s
	}
	// Stable insertion sort by sequency (n ≤ 64).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(perm[j]) < key(perm[j-1]); j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}

func permTable(rank int) []int { return permTables[rank] }

// unlimitedBits is the budget used by the accuracy and precision modes,
// which never exhaust it (a block holds at most 64 values × 64 planes plus
// group-test bits).
const unlimitedBits = 1 << 30

// encodeInts is ZFP's embedded bit-plane coder: each plane from the MSB
// down is emitted as (a) verbatim bits for values already known to be
// significant, then (b) a unary-coded group test discovering newly
// significant values. At most `budget` bits are written (the fixed-rate
// truncation point); the count written is returned.
func encodeInts(w *bitio.Writer, data []uint64, maxprec, budget int) int {
	size := len(data)
	kmin := 0
	if intprec > maxprec {
		kmin = intprec - maxprec
	}
	bits := budget
	n := 0
	for k := intprec - 1; bits > 0 && k >= kmin; k-- {
		// Step 1: extract bit plane k.
		var x uint64
		for i := 0; i < size; i++ {
			x += ((data[i] >> uint(k)) & 1) << uint(i)
		}
		// Step 2: verbatim bits for the first n (known significant) values.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		for i := 0; i < m; i++ {
			w.WriteBit(uint(x & 1))
			x >>= 1
		}
		if m < n {
			x = 0 // plane truncated; nothing further decodable this plane
			continue
		}
		// Step 3: group-test the remainder.
		for n < size && bits > 0 {
			bits--
			if x != 0 {
				w.WriteBit(1)
			} else {
				w.WriteBit(0)
				break
			}
			// Unary-search the next significant value.
			stop := false
			for n < size-1 && bits > 0 {
				bits--
				if x&1 == 1 {
					w.WriteBit(1)
					stop = true
					break
				}
				w.WriteBit(0)
				x >>= 1
				n++
			}
			_ = stop
			x >>= 1
			n++
		}
	}
	return budget - bits
}

// decodeInts mirrors encodeInts with the identical budget accounting, so
// it consumes exactly the bits the encoder produced.
func decodeInts(r *bitio.Reader, data []uint64, maxprec, budget int) error {
	size := len(data)
	for i := range data {
		data[i] = 0
	}
	kmin := 0
	if intprec > maxprec {
		kmin = intprec - maxprec
	}
	bits := budget
	n := 0
	for k := intprec - 1; bits > 0 && k >= kmin; k-- {
		var x uint64
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		for i := 0; i < m; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return err
			}
			x |= uint64(b) << uint(i)
		}
		if m < n {
			// Truncated plane: deposit what we have and stop reading more
			// of this plane (mirrors the encoder's continue).
			//lint:allow decodebound x only has bits below size set, so this runs < size iterations
			for i := 0; x != 0; i, x = i+1, x>>1 {
				data[i] += (x & 1) << uint(k)
			}
			continue
		}
		for n < size && bits > 0 {
			bits--
			b, err := r.ReadBit()
			if err != nil {
				return err
			}
			if b == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				b, err := r.ReadBit()
				if err != nil {
					return err
				}
				if b == 1 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		//lint:allow decodebound x only has bits below size set, so this runs < size iterations
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] += (x & 1) << uint(k)
		}
	}
	return nil
}
