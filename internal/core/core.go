// Package core implements the paper's contribution: the logarithmic
// transformation scheme that converts a point-wise relative-error-bounded
// compression problem into an absolute-error-bounded one (Liang et al.,
// CLUSTER 2018).
//
// Theorem 2 of the paper shows f(x) = log_a(x) + C is the *unique*
// continuous bijection with this property, with the error bound mapping
// b_a = log_a(1 + b_r). This package implements Algorithm 1:
//
//  1. Compute the adjusted absolute bound b'_a = log_a(1+b_r) −
//     max_x|log_a x|·ε₀ (Lemma 2's round-off guard).
//  2. Extract signs into a bitmap (losslessly DEFLATE-compressed) when the
//     data is not single-signed.
//  3. Map zeros to a sentinel placed below the representable logarithm
//     range so they decompress back to exact zeros.
//  4. Transform d_i = log_a|x_i| and hand the transformed field to any
//     absolute-error-bounded backend (SZ or ZFP here).
//
// Decompression inverts: backend decode → exp_a → sign restore → exact
// zeros. The paper fixes a = 2 after the base study in Section IV/VI-B;
// bases e and 10 are implemented for that study (Tables II/III, Figure 1).
package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/bitio"
	"repro/internal/floatbits"
	"repro/internal/grid"
)

// Base selects the logarithm base of the transform.
type Base int

const (
	// Base2 is the paper's choice: fastest forward (Log2) and inverse
	// (Exp2) on every platform's math library.
	Base2 Base = iota
	// BaseE uses the natural logarithm.
	BaseE
	// Base10 uses the decimal logarithm; its inverse requires Pow(10, x),
	// which is why Table III finds it slow in post-processing.
	Base10
)

// String returns the conventional name of the base.
func (b Base) String() string {
	switch b {
	case Base2:
		return "2"
	case BaseE:
		return "e"
	case Base10:
		return "10"
	default:
		return fmt.Sprintf("Base(%d)", int(b))
	}
}

func (b Base) log(x float64) float64 {
	switch b {
	case BaseE:
		return math.Log(x) //lint:allow logbase base-study dispatch (Tables II/III)
	case Base10:
		return math.Log10(x) //lint:allow logbase base-study dispatch (Tables II/III)
	default:
		return math.Log2(x)
	}
}

func (b Base) exp(x float64) float64 {
	switch b {
	case BaseE:
		return math.Exp(x) //lint:allow logbase base-study dispatch (Tables II/III)
	case Base10:
		return math.Pow(10, x) //lint:allow logbase base-study dispatch (Tables II/III)
	default:
		return math.Exp2(x)
	}
}

// log2of returns log2(a) for base a, so that log_a|x| = log2|x| / log2of().
func (b Base) log2of() float64 {
	switch b {
	case BaseE:
		return math.Log2E
	case Base10:
		return math.Ln10 / math.Ln2
	default:
		return 1
	}
}

// sentinelLog is the base-2 logarithm below which a transformed value is
// treated as an encoded zero. Real float64 values (including denormals)
// have log2|x| ≥ −1074, so −1200 can never collide (the paper uses the
// lower-bound exponent of the value range for the same purpose).
const sentinelLog2 = -1200

// machineEps is ε₀ in Lemma 2 (double-precision unit round-off).
const machineEps = 0x1p-52

// isDenormal reports a nonzero value below the smallest positive normal
// float64.
func isDenormal(v float64) bool {
	a := math.Abs(v)
	return a > 0 && a < 0x1p-1022
}

// roundoffFactor scales Lemma 2's guard: one ε₀ for the forward log, one
// for the backend's arithmetic on the mapped value, and two for the inverse
// exponential (math.Exp2/Exp/Pow are faithful to ~1 ulp).
const roundoffFactor = 4

var (
	// ErrCorrupt reports a malformed container.
	ErrCorrupt = errors.New("core: corrupt stream")
	// ErrBadBound reports a relative bound outside (0, 1).
	ErrBadBound = errors.New("core: relative bound must be in (0, 1)")
	// ErrUnknownBackend reports a container whose backend is not registered
	// with the decompressor.
	ErrUnknownBackend = errors.New("core: unknown backend")
)

// Backend abstracts any absolute-error-bounded lossy compressor usable
// under the transform scheme.
type Backend interface {
	// Name identifies the backend inside containers (e.g. "sz", "zfp").
	Name() string
	// CompressAbs compresses data so every value is within bound of the
	// original.
	CompressAbs(data []float64, dims []int, bound float64) ([]byte, error)
	// Decompress decodes a stream produced by CompressAbs.
	Decompress(buf []byte) ([]float64, []int, error)
}

// Options tunes the transform.
type Options struct {
	// Base is the logarithm base (default Base2, the paper's choice).
	Base Base
	// DisableRoundoffGuard skips Lemma 2's bound adjustment. Ablation use
	// only: without the guard, values can exceed the relative bound by a
	// few ulps.
	DisableRoundoffGuard bool
}

func (o *Options) withDefaults() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

// Transformed is the output of Forward: the log-domain field plus the side
// information needed to invert it.
type Transformed struct {
	// Log is the transformed field (log_a|x|, with zeros/non-finite values
	// at the sentinel).
	Log []float64
	// AbsBound is b'_a, the absolute bound to compress Log with.
	AbsBound float64

	base        Base
	relBound    float64
	allPositive bool
	signs       []byte   // packed bitmap, 1 = negative (nil if allPositive)
	excIdx      []uint64 // positions of non-finite values (delta-encoded at serialization)
	excVal      []uint64 // their raw IEEE bits
	n           int
}

// Forward applies the logarithmic transform (Algorithm 1, lines 1–17).
func Forward(data []float64, relBound float64, opts *Options) (*Transformed, error) {
	if !(relBound > 0) || relBound >= 1 {
		return nil, ErrBadBound
	}
	opt := opts.withDefaults()
	base := opt.Base
	n := len(data)

	tr := &Transformed{
		Log:         make([]float64, n),
		base:        base,
		relBound:    relBound,
		allPositive: true,
		n:           n,
	}

	// Pass 1: signs, exceptions, max |log|.
	maxLog := 0.0
	negSeen := false
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) || isDenormal(v) {
			continue
		}
		if v < 0 {
			negSeen = true
		}
		if !floatbits.IsZero(v) {
			if l := math.Abs(base.log(math.Abs(v))); l > maxLog {
				maxLog = l
			}
		}
	}

	ba := base.log(1 + relBound)
	if !opt.DisableRoundoffGuard {
		ba -= roundoffFactor * maxLog * machineEps
	}
	if !(ba > 0) {
		return nil, fmt.Errorf("core: bound %g too small for data magnitude (log range %g)", relBound, maxLog)
	}
	// The compound `ba -=` above IS the Lemma-2 tightening, but the
	// analyzer deliberately does not credit compound subtraction (it
	// cannot tell the round-off margin from any other subtrahend, and
	// DisableRoundoffGuard makes the raw store real on the ablation
	// path). This directive is the audited waiver for every sink this
	// field reaches; the ablation path is covered by the error-bound
	// harness asserting the guarantee only when the guard is on.
	//lint:allow boundconst tightened two lines up unless DisableRoundoffGuard, which trades the guarantee away knowingly
	tr.AbsBound = ba

	sentinel := base.sentinelValue()
	var signs []byte
	if negSeen {
		signs = make([]byte, (n+7)/8)
		tr.allPositive = false
	}
	for i, v := range data {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0) || isDenormal(v):
			// Denormals join NaN/Inf in the exact-exception list: with only
			// a handful of mantissa ulps, the inverse exponential's rounding
			// alone can exceed any relative bound, which Lemma 2's guard
			// (sized for normal values) does not cover.
			tr.excIdx = append(tr.excIdx, uint64(i))
			tr.excVal = append(tr.excVal, math.Float64bits(v))
			tr.Log[i] = sentinel
		case floatbits.IsZero(v):
			tr.Log[i] = sentinel
		default:
			if v < 0 {
				signs[i/8] |= 1 << uint(i%8)
			}
			tr.Log[i] = base.log(math.Abs(v))
		}
	}
	tr.signs = signs
	return tr, nil
}

// zeroThreshold returns the decode threshold: transformed values at or
// below it reconstruct to exact zero. It sits 60 binary orders above the
// sentinel (so any bound b'_a < log_a 2·60 keeps the sentinel below it) and
// 66 binary orders below the smallest representable logarithm (−1074).
func (b Base) zeroThreshold() float64 {
	return (float64(sentinelLog2) + 60) / b.log2of()
}

// sentinelValue returns the encode-side sentinel, safely below the
// threshold by many multiples of any admissible bound.
func (b Base) sentinelValue() float64 {
	return float64(sentinelLog2) / b.log2of()
}

// Inverse maps a decompressed log-domain field back to the original domain
// (Algorithm 1's decompression side), writing into dst (allocated if nil).
func (tr *SideInfo) Inverse(logData []float64, dst []float64) ([]float64, error) {
	n := len(logData)
	if n != tr.N {
		return nil, fmt.Errorf("%w: length %d != %d", ErrCorrupt, n, tr.N)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	thr := tr.Base.zeroThreshold()
	for i, d := range logData {
		if d <= thr {
			dst[i] = 0
			continue
		}
		v := tr.Base.exp(d)
		if !tr.AllPositive && tr.Signs[i/8]&(1<<uint(i%8)) != 0 {
			v = -v
		}
		dst[i] = v
	}
	// Exceptions override whatever the backend reconstructed.
	for k, idx := range tr.ExcIdx {
		if idx >= uint64(n) {
			return nil, ErrCorrupt
		}
		dst[idx] = math.Float64frombits(tr.ExcVal[k])
	}
	return dst, nil
}

// SideInfo is the deserialized transform metadata needed by Inverse.
type SideInfo struct {
	Base        Base
	RelBound    float64
	AbsBound    float64
	AllPositive bool
	Signs       []byte
	ExcIdx      []uint64
	ExcVal      []uint64
	N           int
}

// header layout: magic | base | flags | relBound | absBound | n |
// [signs: flate | raw] | exceptions.
const headerMagic = 0x54505731 // "TPW1"

const (
	flagAllPositive = 1 << 0
	flagSignsFlate  = 1 << 1
)

// AppendHeader serializes the transform side information.
func (tr *Transformed) AppendHeader(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, headerMagic)
	dst = append(dst, byte(tr.base))
	flags := byte(0)
	var signBlob []byte
	if tr.allPositive {
		flags |= flagAllPositive
	} else {
		// Compress the sign bitmap losslessly (Algorithm 1 line 16).
		var zbuf bytes.Buffer
		zw, err := flate.NewWriter(&zbuf, flate.BestSpeed)
		if err == nil {
			if _, werr := zw.Write(tr.signs); werr == nil && zw.Close() == nil &&
				zbuf.Len() < len(tr.signs) {
				signBlob = zbuf.Bytes()
				flags |= flagSignsFlate
			}
		}
		if signBlob == nil {
			signBlob = tr.signs
		}
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(tr.relBound))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(tr.AbsBound))
	dst = bitio.AppendUvarint(dst, uint64(tr.n))
	if !tr.allPositive {
		dst = bitio.AppendUvarint(dst, uint64(len(signBlob)))
		dst = append(dst, signBlob...)
	}
	dst = bitio.AppendUvarint(dst, uint64(len(tr.excIdx)))
	prev := uint64(0)
	for k, idx := range tr.excIdx {
		dst = bitio.AppendUvarint(dst, idx-prev)
		prev = idx
		dst = binary.BigEndian.AppendUint64(dst, tr.excVal[k])
	}
	return dst
}

// ParseHeader deserializes side information, returning it and the number of
// bytes consumed.
func ParseHeader(buf []byte) (*SideInfo, int, error) {
	if len(buf) < 4+1+1+8+8 || binary.BigEndian.Uint32(buf) != headerMagic {
		return nil, 0, ErrCorrupt
	}
	off := 4
	base := Base(buf[off])
	off++
	if base != Base2 && base != BaseE && base != Base10 {
		return nil, 0, ErrCorrupt
	}
	flags := buf[off]
	off++
	relBound := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	absBound := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	if !(relBound > 0) || relBound >= 1 || !(absBound > 0) {
		return nil, 0, ErrCorrupt
	}
	nU, k := bitio.Uvarint(buf[off:])
	if k == 0 || nU > 1<<40 {
		return nil, 0, ErrCorrupt
	}
	off += k
	si := &SideInfo{
		Base:        base,
		RelBound:    relBound,
		AbsBound:    absBound,
		AllPositive: flags&flagAllPositive != 0,
		N:           int(nU),
	}
	if !si.AllPositive {
		blobLen, k := bitio.Uvarint(buf[off:])
		// Compare in uint64: int(blobLen) would wrap negative for
		// blobLen >= 2^63 and slip past the guard into the slice below.
		if k == 0 || blobLen > uint64(len(buf)-off-k) {
			return nil, 0, ErrCorrupt
		}
		off += k
		blob := buf[off : off+int(blobLen)]
		off += int(blobLen)
		want := (si.N + 7) / 8
		if flags&flagSignsFlate != 0 {
			zr := flate.NewReader(bytes.NewReader(blob))
			dec, err := io.ReadAll(io.LimitReader(zr, int64(want)+16))
			_ = zr.Close() // nothing to report: dec is length-validated below
			if err != nil || len(dec) != want {
				return nil, 0, ErrCorrupt
			}
			si.Signs = dec
		} else {
			if len(blob) != want {
				return nil, 0, ErrCorrupt
			}
			si.Signs = blob
		}
	}
	excN, k := bitio.Uvarint(buf[off:])
	if k == 0 || excN > nU {
		return nil, 0, ErrCorrupt
	}
	off += k
	prev := uint64(0)
	for i := uint64(0); i < excN; i++ {
		d, k := bitio.Uvarint(buf[off:])
		if k == 0 {
			return nil, 0, ErrCorrupt
		}
		off += k
		prev += d
		if off+8 > len(buf) {
			return nil, 0, ErrCorrupt
		}
		si.ExcIdx = append(si.ExcIdx, prev)
		si.ExcVal = append(si.ExcVal, binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	return si, off, nil
}

// Compress runs the full pipeline: Forward transform, then the backend's
// absolute-error-bounded compression, producing a self-describing stream.
func Compress(data []float64, dims []int, relBound float64, backend Backend, opts *Options) ([]byte, error) {
	if err := grid.Validate(dims, len(data)); err != nil {
		return nil, err
	}
	tr, err := Forward(data, relBound, opts)
	if err != nil {
		return nil, err
	}
	inner, err := backend.CompressAbs(tr.Log, dims, tr.AbsBound)
	if err != nil {
		return nil, err
	}
	out := tr.AppendHeader(nil)
	name := backend.Name()
	out = bitio.AppendUvarint(out, uint64(len(name)))
	out = append(out, name...)
	out = bitio.AppendUvarint(out, uint64(len(inner)))
	return append(out, inner...), nil
}

// Decompress inverts Compress. resolve maps a backend name from the
// container to the Backend that can decode it.
func Decompress(buf []byte, resolve func(name string) Backend) ([]float64, []int, error) {
	si, off, err := ParseHeader(buf)
	if err != nil {
		return nil, nil, err
	}
	nameLen, k := bitio.Uvarint(buf[off:])
	if k == 0 || nameLen > 64 || nameLen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	name := string(buf[off : off+int(nameLen)])
	off += int(nameLen)
	innerLen, k := bitio.Uvarint(buf[off:])
	// uint64 compare: int(innerLen) wraps negative for huge values.
	if k == 0 || innerLen > uint64(len(buf)-off-k) {
		return nil, nil, ErrCorrupt
	}
	off += k
	backend := resolve(name)
	if backend == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownBackend, name)
	}
	logData, dims, err := backend.Decompress(buf[off : off+int(innerLen)])
	if err != nil {
		return nil, nil, err
	}
	out, err := si.Inverse(logData, nil)
	if err != nil {
		return nil, nil, err
	}
	return out, dims, nil
}
