package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/sz"
)

// lognormalField mimics the NYX dark-matter-density distribution: heavy
// tail, wide dynamic range, strictly positive.
func lognormalField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64()*2 - 1)
	}
	return data
}

// velocityField mimics HACC velocities: signed, large magnitudes, smooth
// with noise.
func velocityField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = 3000*math.Sin(float64(i)*0.001) + rng.NormFloat64()*500
	}
	return data
}

func checkRel(t *testing.T, orig, dec []float64, rel float64) float64 {
	t.Helper()
	maxRel := 0.0
	for i := range orig {
		o := orig[i]
		if math.IsNaN(o) {
			if !math.IsNaN(dec[i]) {
				t.Fatalf("index %d: NaN not preserved", i)
			}
			continue
		}
		if math.IsInf(o, 0) {
			if dec[i] != o {
				t.Fatalf("index %d: Inf not preserved", i)
			}
			continue
		}
		if o == 0 {
			if dec[i] != 0 {
				t.Fatalf("index %d: zero perturbed to %g", i, dec[i])
			}
			continue
		}
		r := math.Abs(dec[i]-o) / math.Abs(o)
		if r > rel {
			t.Fatalf("index %d: rel err %g > %g (orig %g dec %g)", i, r, rel, o, dec[i])
		}
		if r > maxRel {
			maxRel = r
		}
	}
	return maxRel
}

func TestForwardInverseIdentityNoCompression(t *testing.T) {
	// Forward→Inverse without a lossy backend must respect the bound
	// trivially (only round-off), for every base.
	data := velocityField(2000, 1)
	data[0], data[10], data[100] = 0, 0, 0
	for _, base := range []Base{Base2, BaseE, Base10} {
		tr, err := Forward(data, 1e-3, &Options{Base: base})
		if err != nil {
			t.Fatalf("base %v: %v", base, err)
		}
		hdr := tr.AppendHeader(nil)
		si, used, err := ParseHeader(hdr)
		if err != nil {
			t.Fatalf("base %v: %v", base, err)
		}
		if used != len(hdr) {
			t.Fatalf("base %v: consumed %d of %d", base, used, len(hdr))
		}
		out, err := si.Inverse(tr.Log, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkRel(t, data, out, 1e-9) // round-off only
	}
}

func TestCompressSZT(t *testing.T) {
	data := lognormalField(4096, 2)
	dims := []int{16, 16, 16}
	for _, rel := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		buf, err := Compress(data, dims, rel, SZBackend{}, nil)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		dec, gotDims, err := Decompress(buf, DefaultResolve)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		if !grid.EqualDims(gotDims, dims) {
			t.Fatalf("dims %v", gotDims)
		}
		checkRel(t, data, dec, rel)
	}
}

func TestCompressZFPT(t *testing.T) {
	data := lognormalField(4096, 3)
	dims := []int{16, 16, 16}
	for _, rel := range []float64{1e-3, 1e-2, 1e-1} {
		buf, err := Compress(data, dims, rel, ZFPBackend{}, nil)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		dec, _, err := Decompress(buf, DefaultResolve)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		checkRel(t, data, dec, rel)
	}
}

func TestMixedSignsWithZeros(t *testing.T) {
	data := velocityField(5000, 4)
	for i := 0; i < len(data); i += 97 {
		data[i] = 0
	}
	rel := 1e-2
	buf, err := Compress(data, []int{len(data)}, rel, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf, DefaultResolve)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, rel)
}

func TestNaNInfPreserved(t *testing.T) {
	data := velocityField(256, 5)
	data[3] = math.NaN()
	data[77] = math.Inf(1)
	data[200] = math.Inf(-1)
	buf, err := Compress(data, []int{256}, 1e-2, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf, DefaultResolve)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, 1e-2)
}

func TestAllBasesRespectBound(t *testing.T) {
	data := lognormalField(2048, 6)
	for _, base := range []Base{Base2, BaseE, Base10} {
		for _, backend := range []Backend{SZBackend{}, ZFPBackend{}} {
			buf, err := Compress(data, []int{2048}, 1e-3, backend, &Options{Base: base})
			if err != nil {
				t.Fatalf("base %v backend %s: %v", base, backend.Name(), err)
			}
			dec, _, err := Decompress(buf, DefaultResolve)
			if err != nil {
				t.Fatalf("base %v backend %s: %v", base, backend.Name(), err)
			}
			checkRel(t, data, dec, 1e-3)
		}
	}
}

func TestBaseSelectionSimilarRatio(t *testing.T) {
	// Lemma 3: different bases must give nearly identical SZ compression
	// ratios (the paper measures 1–3% variation).
	data := lognormalField(32768, 7)
	sizes := map[Base]int{}
	for _, base := range []Base{Base2, BaseE, Base10} {
		buf, err := Compress(data, []int{32768}, 1e-2, SZBackend{}, &Options{Base: base})
		if err != nil {
			t.Fatal(err)
		}
		sizes[base] = len(buf)
	}
	ref := float64(sizes[Base2])
	for base, s := range sizes {
		if dev := math.Abs(float64(s)-ref) / ref; dev > 0.10 {
			t.Fatalf("base %v size deviates %.1f%% from base 2 (%d vs %d)",
				base, dev*100, s, sizes[Base2])
		}
	}
}

func TestTransformBeatsBlockwisePWROnSpiky(t *testing.T) {
	// The headline result: on data with spiky local ranges, SZ_T (transform)
	// compresses much better than SZ_PWR (block minimum design).
	rng := rand.New(rand.NewSource(8))
	n := 32768
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64() * 3) // very wide dynamic range
	}
	rel := 1e-2
	szT, err := Compress(data, []int{n}, rel, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Blockwise baseline from the sz package.
	szPWR, err := sz.CompressPWR(data, []int{n}, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(szT) >= len(szPWR) {
		t.Fatalf("SZ_T (%d bytes) should beat SZ_PWR (%d bytes) on spiky data",
			len(szT), len(szPWR))
	}
}

func TestRoundoffGuardAblation(t *testing.T) {
	// With the guard disabled the bound can only be exceeded by round-off
	// scale amounts; with it enabled the bound must hold exactly.
	data := make([]float64, 1000)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64()*50) * 1e-30 // extreme log range
	}
	rel := 1e-4
	buf, err := Compress(data, []int{1000}, rel, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf, DefaultResolve)
	if err != nil {
		t.Fatal(err)
	}
	checkRel(t, data, dec, rel)

	// Ablation: must still round-trip (bound may be grazed, not smashed).
	buf2, err := Compress(data, []int{1000}, rel, SZBackend{}, &Options{DisableRoundoffGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	dec2, _, err := Decompress(buf2, DefaultResolve)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		r := math.Abs(dec2[i]-data[i]) / math.Abs(data[i])
		if r > rel*1.001 {
			t.Fatalf("ablation: error %g catastrophically exceeds bound", r)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Compress([]float64{1}, []int{1}, 0, SZBackend{}, nil); err == nil {
		t.Fatal("rel=0 accepted")
	}
	if _, err := Compress([]float64{1}, []int{1}, 1, SZBackend{}, nil); err == nil {
		t.Fatal("rel=1 accepted")
	}
	if _, err := Compress([]float64{1, 2}, []int{3}, 0.1, SZBackend{}, nil); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if _, err := Forward([]float64{1}, math.NaN(), nil); err == nil {
		t.Fatal("NaN bound accepted")
	}
}

func TestDecompressUnknownBackend(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	buf, err := Compress(data, []int{4}, 0.1, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Decompress(buf, func(string) Backend { return nil })
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := velocityField(512, 10)
	buf, err := Compress(data, []int{512}, 1e-2, SZBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 6, 20, len(buf) / 2} {
		if _, _, err := Decompress(buf[:cut], DefaultResolve); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = Decompress(mut, DefaultResolve) // must not panic
	}
}

func TestQuickPWRBoundInvariantSZT(t *testing.T) {
	f := func(seed int64, relSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(800) + 1
		data := make([]float64, n)
		for i := range data {
			switch rng.Intn(10) {
			case 0:
				data[i] = 0
			case 1:
				data[i] = -math.Exp(rng.NormFloat64() * 5)
			default:
				data[i] = math.Exp(rng.NormFloat64() * 5)
			}
		}
		rel := math.Pow(10, -float64(relSel%4)-1)
		buf, err := Compress(data, []int{n}, rel, SZBackend{}, nil)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(buf, DefaultResolve)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range data {
			if data[i] == 0 {
				if dec[i] != 0 {
					return false
				}
				continue
			}
			if math.Abs(dec[i]-data[i])/math.Abs(data[i]) > rel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelGeometry(t *testing.T) {
	for _, base := range []Base{Base2, BaseE, Base10} {
		s := base.sentinelValue()
		thr := base.zeroThreshold()
		minReal := -1074.0 / base.log2of()
		if !(s < thr && thr < minReal) {
			t.Fatalf("base %v: sentinel %g, threshold %g, min real log %g out of order",
				base, s, thr, minReal)
		}
		// Sentinel ± any admissible bound stays below the threshold.
		maxBound := base.log(2)
		if s+maxBound >= thr {
			t.Fatalf("base %v: sentinel too close to threshold", base)
		}
	}
}
