package core

import (
	"repro/internal/sz"
	"repro/internal/zfp"
)

// SZBackend adapts the SZ compressor (absolute-error mode) as a transform
// backend; the combination is the paper's SZ_T.
type SZBackend struct {
	// Opts tunes the underlying SZ compressor (nil = defaults).
	Opts *sz.Options
}

// Name implements Backend.
func (SZBackend) Name() string { return "sz" }

// CompressAbs implements Backend.
func (b SZBackend) CompressAbs(data []float64, dims []int, bound float64) ([]byte, error) {
	return sz.CompressAbs(data, dims, bound, b.Opts)
}

// Decompress implements Backend.
func (SZBackend) Decompress(buf []byte) ([]float64, []int, error) {
	return sz.Decompress(buf)
}

// ZFPBackend adapts the ZFP compressor (fixed-accuracy mode) as a transform
// backend; the combination is the paper's ZFP_T.
type ZFPBackend struct{}

// Name implements Backend.
func (ZFPBackend) Name() string { return "zfp" }

// CompressAbs implements Backend.
func (ZFPBackend) CompressAbs(data []float64, dims []int, bound float64) ([]byte, error) {
	return zfp.CompressAccuracy(data, dims, bound)
}

// Decompress implements Backend.
func (ZFPBackend) Decompress(buf []byte) ([]float64, []int, error) {
	return zfp.Decompress(buf)
}

// DefaultResolve maps the built-in backend names for Decompress.
func DefaultResolve(name string) Backend {
	switch name {
	case "sz":
		return SZBackend{}
	case "zfp":
		return ZFPBackend{}
	default:
		return nil
	}
}
