// Package testutil holds small helpers shared by tests, most importantly
// the race-detector shim: RaceEnabled is a compile-time constant selected
// by the `race` build tag (the pattern the Go runtime itself uses), so
// tests can derate or skip wall-clock-sensitive assertions when the race
// detector's non-uniform slowdown would make them flake.
//
// The benchclock lint check (internal/lint, cmd/pwrvet) recognizes
// RaceEnabled as one of the accepted guards for live-throughput ordering
// assertions.
package testutil
