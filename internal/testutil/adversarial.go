package testutil

// Adversarial field generation and the point-wise-relative-bound
// checker behind the property-based harness (pwr_property_test.go at
// the repository root): deterministic seeded fields engineered to
// stress Theorem 2's guarantee — sign flips, exact zeros, constant
// blocks, subnormals, and magnitude skews spanning 12+ orders — plus
// CheckPWR, which asserts the bound element by element.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/floatbits"
)

// SameFloat reports bit-identity of two float64s (NaN-safe, signed-zero
// aware) — the comparison for "element-wise identical" assertions.
func SameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// AdversarialField is one generated stress case.
type AdversarialField struct {
	Name string
	Dims []int
	Data []float64
	// Extreme marks fields (e.g. subnormal-heavy) a compressor may
	// legitimately refuse with an error instead of compressing; when it
	// does compress, the bound must still hold on checkable points.
	Extreme bool
}

// Size returns the element count.
func (f *AdversarialField) Size() int { return len(f.Data) }

// AdversarialFields returns the deterministic stress suite for the
// given seed: every run with the same seed yields bit-identical data.
func AdversarialFields(seed int64) []AdversarialField {
	rng := rand.New(rand.NewSource(seed))
	var out []AdversarialField

	// 1D sign flips: smooth magnitude, alternating sign — the log
	// transform must handle the sign bitmap, not fold signs together.
	{
		data := make([]float64, 512)
		for i := range data {
			mag := 10 + 5*math.Sin(float64(i)/7)
			if i%2 == 1 {
				mag = -mag
			}
			data[i] = mag
		}
		out = append(out, AdversarialField{Name: "signflip-1d", Dims: []int{512}, Data: data})
	}

	// 1D zeros and constant blocks: runs of exact zeros (which must
	// decode to exact zeros for the zero-preserving algorithms) between
	// constant plateaus and jittered ramps.
	{
		data := make([]float64, 600)
		i := 0
		for i < len(data) {
			run := 20 + rng.Intn(30)
			kind := rng.Intn(3)
			level := (rng.Float64() - 0.5) * 200
			for j := 0; j < run && i < len(data); j, i = j+1, i+1 {
				switch kind {
				case 0:
					data[i] = 0
				case 1:
					data[i] = level
				default:
					data[i] = level + float64(j)*0.3 + rng.Float64()*0.01
				}
			}
		}
		out = append(out, AdversarialField{Name: "zeros-blocks-1d", Dims: []int{600}, Data: data})
	}

	// 2D magnitude skew: 13 orders of magnitude across the field, the
	// regime where a single value-range absolute bound collapses and
	// only a point-wise relative bound is meaningful (Section II).
	{
		const ny, nx = 24, 32
		data := make([]float64, ny*nx)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				frac := float64(y*nx+x) / float64(ny*nx-1)
				exp := -6.5 + 13*frac // 1e-6.5 .. 1e+6.5
				v := math.Pow(10, exp) * (1 + 0.4*rng.Float64())
				if rng.Intn(5) == 0 {
					v = -v
				}
				data[y*nx+x] = v
			}
		}
		out = append(out, AdversarialField{Name: "magnitude-skew-2d", Dims: []int{24, 32}, Data: data})
	}

	// 3D mixed: zeros, sign flips and a 6-order skew together.
	{
		const nz, ny, nx = 8, 10, 12
		data := make([]float64, nz*ny*nx)
		for i := range data {
			switch rng.Intn(6) {
			case 0:
				data[i] = 0
			case 1:
				data[i] = -math.Pow(10, -3+6*rng.Float64())
			default:
				data[i] = math.Pow(10, -3+6*rng.Float64())
			}
		}
		out = append(out, AdversarialField{Name: "mixed-3d", Dims: []int{8, 10, 12}, Data: data})
	}

	// Tiny normals: values down at 1e-305..1e-290, just above the
	// subnormal range — the smallest magnitudes for which a relative
	// bound is representable with full mantissa precision.
	{
		data := make([]float64, 256)
		for i := range data {
			data[i] = math.Pow(10, -305+15*rng.Float64())
			if i%3 == 0 {
				data[i] = -data[i]
			}
		}
		out = append(out, AdversarialField{Name: "tiny-normal-1d", Dims: []int{256}, Data: data})
	}

	// Subnormals: below 2^-1022 the float64 quantum is absolute, so a
	// point-wise relative bound tighter than the local ULP spacing is
	// unsatisfiable in principle; compressors may refuse, and CheckPWR
	// callers skip subnormal originals (SkipSubnormals).
	{
		data := make([]float64, 192)
		for i := range data {
			switch i % 4 {
			case 0:
				data[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(1000))
			case 1:
				data[i] = -math.SmallestNonzeroFloat64 * float64(1+rng.Intn(1000))
			default:
				data[i] = math.Pow(10, -2+4*rng.Float64())
			}
		}
		out = append(out, AdversarialField{Name: "subnormal-1d", Dims: []int{192}, Data: data, Extreme: true})
	}

	// Constant field: zero entropy, nonzero level.
	{
		data := make([]float64, 128)
		for i := range data {
			data[i] = 42.125
		}
		out = append(out, AdversarialField{Name: "constant-1d", Dims: []int{128}, Data: data})
	}

	return out
}

// PWRSpec parameterizes CheckPWRSpec for algorithm-specific guarantees.
type PWRSpec struct {
	// RelBound is the point-wise relative error bound to assert.
	RelBound float64
	// PreserveZeros requires exact zeros to decode to exact zeros
	// (Table IV's "*" column: SZ_T, ZFP_T, FPZIP and ISABELA hold it).
	PreserveZeros bool
	// SkipSubnormals skips points whose original is subnormal, where
	// the float64 quantum makes tight relative bounds unsatisfiable.
	SkipSubnormals bool
	// MinBoundedFrac, when positive, replaces the hard per-element
	// assertion with a bounded-fraction one (ZFP_P's documented
	// deficiency: it does not guarantee the bound).
	MinBoundedFrac float64
	// MaxReport caps the number of per-element failures reported
	// before the check aborts (default 5).
	MaxReport int
}

// CheckPWR asserts the strict point-wise relative guarantee of
// Theorem 2 on a reconstruction: every finite nonzero original is
// reproduced within relBound, exact zeros decode to exact zeros, and
// NaN/Inf survive.
func CheckPWR(t testing.TB, orig, dec []float64, relBound float64) {
	t.Helper()
	CheckPWRSpec(t, orig, dec, PWRSpec{RelBound: relBound, PreserveZeros: true})
}

// CheckPWRSpec asserts the point-wise relative guarantee under the
// given spec.
func CheckPWRSpec(t testing.TB, orig, dec []float64, spec PWRSpec) {
	t.Helper()
	if len(orig) != len(dec) {
		t.Errorf("pwr: length mismatch: orig %d dec %d", len(orig), len(dec))
		return
	}
	maxReport := spec.MaxReport
	if maxReport <= 0 {
		maxReport = 5
	}
	reported := 0
	failf := func(format string, args ...interface{}) bool {
		t.Helper()
		t.Errorf(format, args...)
		reported++
		return reported < maxReport
	}
	checked, bounded := 0, 0
	for i := range orig {
		o, d := orig[i], dec[i]
		switch {
		case math.IsNaN(o):
			if !math.IsNaN(d) {
				if !failf("pwr: NaN at %d decoded to %g", i, d) {
					return
				}
			}
		case math.IsInf(o, 0):
			if !SameFloat(o, d) {
				if !failf("pwr: Inf at %d decoded to %g", i, d) {
					return
				}
			}
		case floatbits.IsZero(o):
			if spec.PreserveZeros && !floatbits.IsZero(d) {
				if !failf("pwr: zero at %d perturbed to %g", i, d) {
					return
				}
			}
		case spec.SkipSubnormals && math.Abs(o) < 2.2250738585072014e-308: // < 2^-1022
			continue
		default:
			checked++
			r := math.Abs(d-o) / math.Abs(o)
			within := r <= spec.RelBound*(1+1e-9)
			if within {
				bounded++
			}
			if spec.MinBoundedFrac > 0 {
				continue // judged in aggregate below
			}
			if !within {
				if !failf("pwr: bound %g violated at %d: orig %g dec %g (rel %g)",
					spec.RelBound, i, o, d, r) {
					return
				}
			}
		}
	}
	if spec.MinBoundedFrac > 0 && checked > 0 {
		frac := float64(bounded) / float64(checked)
		if frac < spec.MinBoundedFrac {
			t.Errorf("pwr: only %.3f of %d points within %g (want >= %.2f)",
				frac, checked, spec.RelBound, spec.MinBoundedFrac)
		}
	}
}
