// Package testutil holds shared test helpers. It is imported only from
// _test.go files.
package testutil

import (
	"runtime"
	"time"
)

// NoLeak returns a check that fails the test if the process has more
// goroutines at test end than at the call, after allowing in-flight
// goroutines a settle window. Use it first thing in a test:
//
//	defer testutil.NoLeak(t)()
//
// The count is process-global, so tests using NoLeak must not run in
// parallel with tests that start goroutines.
func NoLeak(t interface {
	Helper()
	Errorf(format string, args ...any)
}) func() {
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines at test end, %d at start\n%s", n, base, buf)
	}
}
