package lint

import (
	"go/ast"
	"go/types"
)

// goroleakCheck verifies the worker-pool discipline of the parallel
// dump/load path (§V.C of the paper): WaitGroup Add/Done pairing around
// every go statement, and close-on-all-paths for every channel a
// goroutine ranges over. A missed Add, a non-deferred Done, or a channel
// that stays open on an error path deadlocks Wait or leaks the ranging
// goroutine — exactly the failure the Figure-6 parallel model cannot
// tolerate mid-dump.
//
// Three rules, all per function declaration:
//
//	R1 (syntactic)   wg.Done() inside a go-routine literal must be
//	                 deferred, so a panicking worker cannot deadlock
//	                 Wait.
//	R2 (must-flow)   a go statement whose literal defers wg.Done() on a
//	                 locally-declared WaitGroup must be preceded by
//	                 wg.Add on every path.
//	R3 (must-flow)   a locally-made channel that any code ranges over
//	                 must be closed: by a defer, inside some goroutine,
//	                 or on every path to the function's exit.
type goroleakCheck struct{}

func (goroleakCheck) Name() string { return "goroleak" }
func (goroleakCheck) Doc() string {
	return "flag WaitGroup Add/Done mispairing and ranged channels not closed on all paths"
}

func (goroleakCheck) Run(pkg *Package) []Finding {
	var out []Finding
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) {
			return
		}
		ga := &goroAnalysis{pkg: pkg, info: pkg.Info}
		ga.run(d, &out)
	})
	return out
}

type goroAnalysis struct {
	pkg  *Package
	info *types.Info
}

func (ga *goroAnalysis) run(d *ast.FuncDecl, out *[]Finding) {
	ga.checkDeferredDone(d, out)

	g := buildCFG(d.Body)
	// Must-available facts: "wg.Add was called" / "close(ch) was called"
	// (a registered defer counts — it is guaranteed to run by exit).
	in := g.forwardFlow(objSet{}, false, func(b *cfgBlock, s objSet) objSet {
		for _, n := range b.nodes {
			ga.mustStep(s, n)
		}
		return s
	})

	// R2: every reachable go statement re-checked with statement-order
	// precision inside its block.
	for _, b := range g.reversePostorder() {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = s.clone()
		for _, n := range b.nodes {
			if gs, ok := n.(*ast.GoStmt); ok {
				ga.checkAddBeforeGo(d, s, gs, out)
			}
			ga.mustStep(s, n)
		}
	}

	ga.checkRangedClosed(d, g, in, out)
}

// checkDeferredDone implements R1 over the whole body, closures included.
func (ga *goroAnalysis) checkDeferredDone(d *ast.FuncDecl, out *[]Finding) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if ds, ok := m.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
			}
			return true
		})
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && ga.isWaitGroupCall(c, "Done") != nil && !deferred[c] {
				*out = append(*out, ga.pkg.Module.newFinding("goroleak", c.Pos(),
					"wg.Done() in a goroutine must be deferred: a panic between here and the end of the worker deadlocks Wait"))
			}
			return true
		})
		return true
	})
}

// checkAddBeforeGo implements R2 for one go statement, given the must
// state just before it.
func (ga *goroAnalysis) checkAddBeforeGo(d *ast.FuncDecl, s objSet, gs *ast.GoStmt, out *[]Finding) {
	fl, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(m ast.Node) bool {
		ds, ok := m.(*ast.DeferStmt)
		if !ok {
			return true
		}
		obj := ga.isWaitGroupCall(ds.Call, "Done")
		if obj == nil {
			return true
		}
		// Only WaitGroups declared inside this function body: for a
		// parameter or captured variable the matching Add may be in the
		// caller.
		if obj.Pos() < d.Body.Pos() || obj.Pos() >= d.Body.End() {
			return true
		}
		if !s[obj] {
			*out = append(*out, ga.pkg.Module.newFinding("goroleak", gs.Pos(),
				"goroutine defers %s.Done() but %s.Add() is not guaranteed on every path before the go statement",
				obj.Name(), obj.Name()))
		}
		return true
	})
}

// checkRangedClosed implements R3.
func (ga *goroAnalysis) checkRangedClosed(d *ast.FuncDecl, g *cfg, in map[*cfgBlock]objSet, out *[]Finding) {
	// Locally-made channels, found outside closures.
	chans := map[types.Object]ast.Node{}
	inspectNoFuncLit(d.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range a.Lhs {
			if i >= len(a.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if !isMakeChan(ga.info, a.Rhs[i]) {
				continue
			}
			if obj := objOf(ga.info, id); obj != nil {
				chans[obj] = a
			}
		}
		return true
	})
	if len(chans) == 0 {
		return
	}

	// Who ranges, and who closes inside a closure?
	ranged := map[types.Object]bool{}
	closedInLit := map[types.Object]bool{}
	var litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(n.Body, walk)
			litDepth--
			return false
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := objOf(ga.info, id); obj != nil {
					ranged[obj] = true
				}
			}
		case *ast.CallExpr:
			if obj := closeTarget(ga.info, n); obj != nil && litDepth > 0 {
				closedInLit[obj] = true
			}
		}
		return true
	}
	ast.Inspect(d.Body, walk)

	exitState := in[g.exit]
	for obj, site := range chans {
		if !ranged[obj] || closedInLit[obj] || (exitState != nil && exitState[obj]) {
			continue
		}
		*out = append(*out, ga.pkg.Module.newFinding("goroleak", site.Pos(),
			"channel %s is ranged over but close(%s) is not guaranteed on every path to return; the ranging goroutine leaks",
			obj.Name(), obj.Name()))
	}
}

// mustStep adds the facts node n establishes: wg.Add called, close(ch)
// called (deferred calls count — they are guaranteed by exit).
func (ga *goroAnalysis) mustStep(s objSet, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		c, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := ga.isWaitGroupCall(c, "Add"); obj != nil {
			s[obj] = true
		}
		if obj := closeTarget(ga.info, c); obj != nil {
			s[obj] = true
		}
		return true
	})
}

// isWaitGroupCall returns the root variable when c is a method call named
// method on a sync.WaitGroup value or pointer.
func (ga *goroAnalysis) isWaitGroupCall(c *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	t := typeOf(ga.info, sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "WaitGroup" {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return objOf(ga.info, id)
	}
	return nil
}

// closeTarget returns the channel variable when c is close(ch) on an
// identifier.
func closeTarget(info *types.Info, c *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil
	}
	if _, builtin := objOf(info, id).(*types.Builtin); !builtin || len(c.Args) != 1 {
		return nil
	}
	arg, ok := ast.Unparen(c.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(info, arg)
}

// isMakeChan reports whether e is make(chan ...).
func isMakeChan(info *types.Info, e ast.Expr) bool {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(c.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, builtin := objOf(info, id).(*types.Builtin); !builtin {
		return false
	}
	t := typeOf(info, c.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
