package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file drives the summary analysis (summary.go) to a module-wide
// fixed point and exposes the result to the interprocedural checks
// (limitreach, wrapreach).
//
// The propagation is bottom-up over the call graph: functions are first
// analyzed in reverse topological order (callees before callers) so each
// caller sees its callees' summaries, then re-enqueued along reverse
// edges whenever a callee's observable summary grows — recursion and
// mutual-recursion cycles iterate to a fixed point, which exists because
// the summary lattice (parameter key sets, return masks) only grows and
// is finite.
//
// Findings come from two sources, matching the "any interprocedural path
// from an exported decode entry" rule:
//
//   - events in an entry function whose mask includes an untrusted entry
//     parameter (the buffer/reader the caller hands in), which carry the
//     full call chain from the entry down to the sink; and
//   - seed events (decode-read-derived taint) in any function reachable
//     from an entry — the seed is attacker data no matter who calls.

// ipEntryRe names the exported decode entry points whose byte-slice and
// reader parameters are untrusted.
var ipEntryRe = regexp.MustCompile(`^(Decompress|Decode|ScanSalvage|Open|Parse|Unmarshal|Read|Next)`)

// ipResult is the module-wide interprocedural analysis result.
type ipResult struct {
	units map[string]*funcUnit
	sums  map[string]*ipSummary
	// entries maps each decode entry's funcID to the mask of its
	// untrusted parameters.
	entries map[string]uint64
	// reachable marks every function reachable from some entry.
	reachable map[string]bool
}

// interproc builds (once) and returns the module's interprocedural
// summaries.
func (m *Module) interproc() *ipResult {
	m.ipOnce.Do(func() { m.ip = buildInterproc(m) })
	return m.ip
}

func buildInterproc(m *Module) *ipResult {
	units := ipUnits(m)
	g := m.Graph()

	// Reverse edges restricted to summarized functions, deduplicated.
	callers := map[string][]string{}
	for from, tos := range g.edges {
		if units[from] == nil {
			continue
		}
		seen := map[string]bool{}
		for _, to := range tos {
			if units[to] != nil && !seen[to] {
				seen[to] = true
				callers[to] = append(callers[to], from)
			}
		}
	}
	for _, cs := range callers {
		sort.Strings(cs)
	}

	sums := map[string]*ipSummary{}
	queue := bottomUpOrder(g, units)
	inQueue := map[string]bool{}
	for _, id := range queue {
		inQueue[id] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false
		ns := ipAnalyze(units[id], sums)
		changed := !ipEqual(sums[id], ns)
		sums[id] = ns
		if changed {
			for _, c := range callers[id] {
				if !inQueue[c] {
					inQueue[c] = true
					queue = append(queue, c)
				}
			}
		}
	}

	r := &ipResult{units: units, sums: sums, entries: map[string]uint64{}}
	for id, u := range units {
		name := u.decl.Name.Name
		if !ipEntryRe.MatchString(name) || !ast.IsExported(name) {
			continue
		}
		var mask uint64
		for i, p := range u.params {
			if p != nil && untrustedParamType(p.Type()) {
				mask |= paramBit(i)
			}
		}
		r.entries[id] = mask
	}
	entryIDs := make([]string, 0, len(r.entries))
	for id := range r.entries {
		entryIDs = append(entryIDs, id)
	}
	sort.Strings(entryIDs)
	r.reachable = g.reachableFrom(entryIDs)
	return r
}

// bottomUpOrder returns the summarized functions callees-first (reverse
// topological order of the call graph's intra-module edges; cycles fall
// out in DFS finish order and converge by re-queuing).
func bottomUpOrder(g *callGraph, units map[string]*funcUnit) []string {
	ids := make([]string, 0, len(units))
	for id := range units {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	seen := map[string]bool{}
	var order []string
	var dfs func(id string)
	dfs = func(id string) {
		seen[id] = true
		for _, to := range g.edges[id] {
			if units[to] != nil && !seen[to] {
				dfs(to)
			}
		}
		order = append(order, id)
	}
	for _, id := range ids {
		if !seen[id] {
			dfs(id)
		}
	}
	return order
}

// untrustedParamType reports whether a decode entry parameter of this
// type carries attacker-controlled bytes: byte slices and io.Reader-like
// interfaces.
func untrustedParamType(t types.Type) bool {
	if isByteSeq(t) {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
	}
	return false
}

// ipHit is one deduplicated interprocedural finding site.
type ipHit struct {
	sink  token.Pos
	chain []*ipSite // entry/top function first, sink last
	seed  bool      // reached via decode-read taint (vs an entry parameter)
}

// hits extracts the module's findings of one kind, deduplicated by sink
// position (keeping the longest witness chain). When directSeed is false,
// single-function seed-only events are dropped — those are intraprocedural
// facts already owned by decodebound.
func (r *ipResult) hits(kind ipKind, directSeed bool) []ipHit {
	ids := make([]string, 0, len(r.units))
	for id := range r.units {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	byPos := map[token.Pos]ipHit{}
	for _, id := range ids {
		sum := r.sums[id]
		if sum == nil {
			continue
		}
		entryMask, isEntry := r.entries[id]
		var tEff uint64
		if isEntry {
			tEff |= entryMask
		}
		if r.reachable[id] {
			tEff |= ipSeedBit
		}
		if tEff == 0 {
			continue
		}
		for _, e := range sum.events {
			if e.kind != kind || e.mask&tEff == 0 {
				continue
			}
			var chain []*ipSite
			for s := e.site; s != nil; s = s.next {
				chain = append(chain, s)
			}
			seedOnly := e.mask&tEff&^ipSeedBit == 0
			if seedOnly && len(chain) == 1 && !directSeed {
				continue
			}
			h := ipHit{sink: chain[len(chain)-1].pos, chain: chain, seed: seedOnly}
			if prev, ok := byPos[h.sink]; !ok || len(h.chain) > len(prev.chain) {
				byPos[h.sink] = h
			}
		}
	}
	out := make([]ipHit, 0, len(byPos))
	for _, h := range byPos {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sink < out[j].sink })
	return out
}

// chainStrings renders the witness chain for a Finding, one hop per
// entry, with positions relative to the module.
func (h ipHit) chainStrings(m *Module) []string {
	out := make([]string, 0, len(h.chain))
	for _, s := range h.chain {
		p := m.Fset.Position(s.pos)
		out = append(out, fmt.Sprintf("%s (%s:%d)", m.shortID(s.fn), shortFile(p.Filename), p.Line))
	}
	return out
}

// chainPath renders "f → g → h" for finding messages.
func (h ipHit) chainPath(m *Module) string {
	names := make([]string, 0, len(h.chain))
	for _, s := range h.chain {
		n := m.shortID(s.fn)
		if len(names) == 0 || names[len(names)-1] != n {
			names = append(names, n)
		}
	}
	return strings.Join(names, " → ")
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
