package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file drives the summary analysis (summary.go) to a module-wide
// fixed point and exposes the result to the interprocedural checks
// (limitreach, wrapreach).
//
// The propagation is bottom-up over the call graph: functions are first
// analyzed in reverse topological order (callees before callers) so each
// caller sees its callees' summaries, then re-enqueued along reverse
// edges whenever a callee's observable summary grows — recursion and
// mutual-recursion cycles iterate to a fixed point, which exists because
// the summary lattice (parameter key sets, return masks) only grows and
// is finite.
//
// Findings come from two sources, matching the "any interprocedural path
// from an exported decode entry" rule:
//
//   - events in an entry function whose mask includes an untrusted entry
//     parameter (the buffer/reader the caller hands in), which carry the
//     full call chain from the entry down to the sink; and
//   - seed events (decode-read-derived taint) in any function reachable
//     from an entry — the seed is attacker data no matter who calls.

// ipEntryRe names the exported decode entry points whose byte-slice and
// reader parameters are untrusted.
var ipEntryRe = regexp.MustCompile(`^(Decompress|Decode|ScanSalvage|Open|Parse|Unmarshal|Read|Next)`)

// ipResult is the module-wide interprocedural analysis result.
type ipResult struct {
	units map[string]*funcUnit
	sums  map[string]*ipSummary
	// entries maps each decode entry's funcID to the mask of its
	// untrusted parameters.
	entries map[string]uint64
	// reachable marks every function reachable from some entry.
	reachable map[string]bool
	// fields is the module-global field table: a field key maps to
	// ipSeedBit when some entry-reachable function stores decode-derived
	// (or entry-parameter) data into it.
	fields *fieldFacts
}

// interproc builds (once) and returns the module's interprocedural
// summaries.
func (m *Module) interproc() *ipResult {
	m.ipOnce.Do(func() { m.ip = buildInterproc(m) })
	return m.ip
}

func buildInterproc(m *Module) *ipResult {
	units := ipUnits(m)
	g := m.Graph()

	// Entries and entry-reachability are derived from the declarations
	// and the call graph alone, so they are computed before the fixpoint:
	// the field-fact globalization below needs to know, per writer,
	// whether a stored mask is attacker-equivalent.
	r := &ipResult{units: units, entries: map[string]uint64{}, fields: newFieldFacts()}
	for id, u := range units {
		name := u.decl.Name.Name
		if !ipEntryRe.MatchString(name) || !ast.IsExported(name) {
			continue
		}
		var mask uint64
		for i, p := range u.params {
			if p != nil && untrustedParamType(p.Type()) {
				mask |= paramBit(i)
			}
		}
		r.entries[id] = mask
	}
	entryIDs := make([]string, 0, len(r.entries))
	for id := range r.entries {
		entryIDs = append(entryIDs, id)
	}
	sort.Strings(entryIDs)
	r.reachable = g.reachableFrom(entryIDs)

	// Reverse edges restricted to summarized functions, deduplicated.
	callers := map[string][]string{}
	for from, tos := range g.edges {
		if units[from] == nil {
			continue
		}
		seen := map[string]bool{}
		for _, to := range tos {
			if units[to] != nil && !seen[to] {
				seen[to] = true
				callers[to] = append(callers[to], from)
			}
		}
	}
	for _, cs := range callers {
		sort.Strings(cs)
	}

	sums := map[string]*ipSummary{}
	var queue []string
	inQueue := map[string]bool{}
	enqueue := func(id string) {
		if !inQueue[id] && units[id] != nil {
			inQueue[id] = true
			queue = append(queue, id)
		}
	}
	// enqueueReaders re-queues every summarized function whose analysis
	// consulted fid's fact, now that the fact has grown. Functions not
	// yet analyzed will read the grown fact on their first pass.
	enqueueReaders := func(fid string) {
		ids := make([]string, 0, len(sums))
		for id := range sums {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if s := sums[id]; s != nil && s.fieldReads[fid] {
				enqueue(id)
			}
		}
	}
	// globalize reduces one function's field writes to module facts: a
	// store is attacker-equivalent (seed) when it carries decode-read
	// taint in an entry-reachable function, or one of the writer's own
	// untrusted entry parameters.
	globalize := func(id string, sum *ipSummary) {
		emask := r.entries[id]
		fids := make([]string, 0, len(sum.fieldWrites))
		for fid := range sum.fieldWrites {
			fids = append(fids, fid)
		}
		sort.Strings(fids)
		for _, fid := range fids {
			fm := sum.fieldWrites[fid]
			var gl uint64
			if fm&ipSeedBit != 0 && r.reachable[id] {
				gl |= ipSeedBit
			}
			if fm&emask != 0 {
				gl |= ipSeedBit
			}
			if gl != 0 && r.fields.add(fid, gl, nil) {
				enqueueReaders(fid)
			}
		}
	}

	// Prime unchanged functions from the incremental cache, then seed
	// the worklist with everything that still needs analysis.
	if pr := m.prime; pr != nil {
		primed := make([]string, 0, len(pr.ip))
		for id := range pr.ip {
			primed = append(primed, id)
		}
		sort.Strings(primed)
		for _, id := range primed {
			if units[id] == nil {
				continue
			}
			sums[id] = pr.ip[id]
			m.Stats.FuncsReused++
			globalize(id, sums[id])
		}
	}
	m.Stats.FuncsTotal += len(units)
	for _, id := range bottomUpOrder(g, units) {
		if sums[id] == nil {
			enqueue(id)
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false
		ns := ipAnalyze(units[id], sums, r.fields)
		changed := !ipEqual(sums[id], ns)
		sums[id] = ns
		globalize(id, ns)
		if changed {
			for _, c := range callers[id] {
				enqueue(c)
			}
		}
	}
	r.sums = sums
	return r
}

// bottomUpOrder returns the summarized functions callees-first (reverse
// topological order of the call graph's intra-module edges; cycles fall
// out in DFS finish order and converge by re-queuing).
func bottomUpOrder(g *callGraph, units map[string]*funcUnit) []string {
	ids := make([]string, 0, len(units))
	for id := range units {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	seen := map[string]bool{}
	var order []string
	var dfs func(id string)
	dfs = func(id string) {
		seen[id] = true
		for _, to := range g.edges[id] {
			if units[to] != nil && !seen[to] {
				dfs(to)
			}
		}
		order = append(order, id)
	}
	for _, id := range ids {
		if !seen[id] {
			dfs(id)
		}
	}
	return order
}

// untrustedParamType reports whether a decode entry parameter of this
// type carries attacker-controlled bytes: byte slices and io.Reader-like
// interfaces.
func untrustedParamType(t types.Type) bool {
	if isByteSeq(t) {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
	}
	return false
}

// ipHit is one deduplicated interprocedural finding site.
type ipHit struct {
	sink  token.Pos
	chain []*ipSite // entry/top function first, sink last
	seed  bool      // reached via decode-read taint (vs an entry parameter)
}

// hits extracts the module's findings of one kind, deduplicated by sink
// position (keeping the longest witness chain). When directSeed is false,
// single-function seed-only events are dropped — those are intraprocedural
// facts already owned by decodebound — except when the flow crossed a
// struct field or lives inside a closure, which decodebound cannot see.
func (r *ipResult) hits(kind ipKind, directSeed bool) []ipHit {
	ids := make([]string, 0, len(r.units))
	for id := range r.units {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	byPos := map[token.Pos]ipHit{}
	for _, id := range ids {
		sum := r.sums[id]
		if sum == nil {
			continue
		}
		entryMask, isEntry := r.entries[id]
		var tEff uint64
		if isEntry {
			tEff |= entryMask
		}
		if r.reachable[id] {
			tEff |= ipSeedBit
		}
		if tEff == 0 {
			continue
		}
		for _, e := range sum.events {
			if e.kind != kind || e.mask&tEff == 0 {
				continue
			}
			var chain []*ipSite
			for s := e.site; s != nil; s = s.next {
				chain = append(chain, s)
			}
			seedOnly := e.mask&tEff&^ipSeedBit == 0
			if seedOnly && len(chain) == 1 && !directSeed &&
				!e.closure && e.mask&ipFieldBit == 0 {
				continue
			}
			h := ipHit{sink: chain[len(chain)-1].pos, chain: chain, seed: seedOnly}
			if prev, ok := byPos[h.sink]; !ok || len(h.chain) > len(prev.chain) {
				byPos[h.sink] = h
			}
		}
	}
	out := make([]ipHit, 0, len(byPos))
	for _, h := range byPos {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sink < out[j].sink })
	return out
}

// decorate attaches the witness chain to a finding: the rendered hops
// for display, and the hop positions so a //lint:allow directive at any
// chain site (the seed store, an intermediate call, the sink) suppresses
// the finding.
func (h ipHit) decorate(f *Finding, m *Module) {
	f.Chain = h.chainStrings(m)
	for _, s := range h.chain {
		f.ChainPos = append(f.ChainPos, m.Fset.Position(s.pos))
	}
}

// chainStrings renders the witness chain for a Finding, one hop per
// entry, with positions relative to the module.
func (h ipHit) chainStrings(m *Module) []string {
	out := make([]string, 0, len(h.chain))
	for _, s := range h.chain {
		p := m.Fset.Position(s.pos)
		out = append(out, fmt.Sprintf("%s (%s:%d)", m.shortID(s.fn), shortFile(p.Filename), p.Line))
	}
	return out
}

// chainPath renders "f → g → h" for finding messages.
func (h ipHit) chainPath(m *Module) string {
	names := make([]string, 0, len(h.chain))
	for _, s := range h.chain {
		n := m.shortID(s.fn)
		if len(names) == 0 || names[len(names)-1] != n {
			names = append(names, n)
		}
	}
	return strings.Join(names, " → ")
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
