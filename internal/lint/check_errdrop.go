package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropCheck flags calls whose error result is silently discarded in
// non-test code: a call used as a bare statement (also behind defer/go)
// when its signature returns an error. Buffered writers are the classic
// trap in this codebase — (*tabwriter.Writer).Flush, (*flate.Writer).Close
// and (*bitio.Writer)-style sinks report the write failure only at the
// dropped call. Assigning the error to _ is accepted as an explicit,
// greppable discard.
type errdropCheck struct{}

func (errdropCheck) Name() string { return "errdrop" }
func (errdropCheck) Doc() string {
	return "flag discarded error returns in non-test code (assign to _ to discard explicitly)"
}

// errdropExempt lists callees whose error is conventionally ignored:
// terminal/printf-style display output and in-memory writers that are
// documented never to fail.
var errdropExempt = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// errdropExemptRecv lists receiver types whose methods never return a
// non-nil error (per their documentation).
var errdropExemptRecv = map[string]bool{
	"*bytes.Buffer":    true,
	"*strings.Builder": true,
}

func (errdropCheck) Run(pkg *Package) []Finding {
	var out []Finding
	check := func(call *ast.CallExpr) *Finding {
		// Skip conversions and builtins.
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || tv.IsType() || tv.IsBuiltin() {
			return nil
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return nil
		}
		res := sig.Results()
		errAt := -1
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				errAt = i
				break
			}
		}
		if errAt < 0 {
			return nil
		}
		name := calleeName(pkg, call)
		if errdropExempt[name] {
			return nil
		}
		if fn := calleeFunc(pkg, call); fn != nil {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
				errdropExemptRecv[recv.Type().String()] {
				return nil
			}
		}
		disp := name
		if disp == "" {
			disp = "call"
		}
		f := pkg.Module.newFinding("errdrop", call.Pos(),
			"error returned by %s is silently discarded; handle it or assign it to _ explicitly", disp)
		return &f
	}

	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if f := check(call); f != nil {
				out = append(out, *f)
			}
			return true
		})
	}
	return out
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the called *types.Func, if statically known.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders a short, stable name for exemption matching and
// messages: "fmt.Fprintf", "(*tabwriter.Writer).Flush", "w.Flush", ...
func calleeName(pkg *Package, call *ast.CallExpr) string {
	if fn := calleeFunc(pkg, call); fn != nil {
		return shortenPath(fn.FullName())
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// shortenPath removes directory components from import paths embedded in
// a function's full name.
func shortenPath(full string) string {
	var b strings.Builder
	start := 0
	for i := 0; i < len(full); i++ {
		switch full[i] {
		case '/':
			start = i + 1
		case '(', '*', ')', '.':
			b.WriteString(full[start : i+1])
			start = i + 1
		}
	}
	b.WriteString(full[start:])
	return b.String()
}
