package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// boundconstCheck verifies the Lemma-2 plumbing: an error-bound value
// that reaches a quantizer sink (internal/quant, internal/sz,
// internal/zfp bound parameters) must not be the raw mapped bound
// log2(1+b_r) — it has to pass through the round-off tightening
// b'_a = log2(1+b_r) − c·max|log2 x|·ε₀ first, or the quantizer's
// guarantee is off by exactly the floating-point error Lemma 2 accounts
// for.
//
// The analysis is a constant-provenance lattice over the same mask
// machinery as summary.go: a value is classified RAW when it is the
// result of a log(1+x) pattern, TIGHT once a subtraction (or a
// multiplication by a constant below 1, the slack form) is applied, and
// parameter bits track a bound flowing through helper functions so the
// check works across calls — a helper that forwards its parameter into a
// quantizer makes every caller passing a raw bound a finding, with the
// call chain in the message. A value that is RAW on one path and TIGHT
// on another joins to both bits and is not reported (the ablation knob
// DisableRoundoffGuard deliberately creates such joins).
//
// Struct fields are tracked field-sensitively (fields.go): a bound
// stored into a named type's field (core.Transformed.AbsBound) keeps its
// class, the store's site becomes the head of the witness chain, and a
// read anywhere in the module joins the global fact back in. Compound
// assignments (b -= margin) deliberately do NOT tighten the field or
// variable: the evaluator cannot tell the Lemma-2 margin from any other
// subtrahend there, and the DisableRoundoffGuard ablation makes the raw
// store real — the audited //lint:allow at the store site is the signed
// waiver for that path.
type boundconstCheck struct{}

func (boundconstCheck) Name() string { return "boundconst" }
func (boundconstCheck) Doc() string {
	return "flag raw log2(1+b) error bounds reaching quantizer sinks without the Lemma-2 round-off tightening"
}

// Class bits live above the parameter bits, like ipSeedBit.
const (
	bcRawBit   = uint64(1) << 62
	bcTightBit = uint64(1) << 63
)

// bcLogRe names the logarithm callees whose log(1+x) result is the raw
// mapped bound.
var bcLogRe = regexp.MustCompile(`^([Ll]og2|[Ll]og10|[Ll]og)$`)

// bcSinkPkgs are the packages whose exported bound parameters are sinks.
var bcSinkPkgs = map[string]bool{"quant": true, "sz": true, "zfp": true}

// bcSinkNameRe makes fixture (and future helper) sinks recognizable by
// name when they live outside the quantizer packages.
var bcSinkNameRe = regexp.MustCompile(`^(Quantize|NewQuantizer|CompressAbs|CompressAccuracy)`)

// bcParamRe matches the bound-carrying parameter names at a sink.
var bcParamRe = regexp.MustCompile(`(?i)bound|tol|eps|acc`)

// bcSummary is the bound-provenance abstract of one function: retMask
// carries the class bits and untightened parameter bits of the return
// value, sinkVia maps a parameter index to a witness chain showing the
// parameter reaching a bound sink untightened. fieldWrites carries the
// class and parameter bits stored into each struct field, fieldSites the
// first store site per field (the head of field-origin witness chains),
// and fieldReads which module-global field facts this analysis consulted
// (for fixpoint re-enqueueing, not part of the observable summary).
type bcSummary struct {
	retMask     uint64
	sinkVia     map[int]*ipSite
	events      []*ipSite // raw-bound-reaches-sink witnesses, sink last
	fieldWrites map[string]uint64
	fieldSites  map[string]*ipSite
	fieldReads  map[string]bool
}

func bcEqual(a, b *bcSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.retMask != b.retMask || len(a.sinkVia) != len(b.sinkVia) {
		return false
	}
	for i := range a.sinkVia {
		if b.sinkVia[i] == nil {
			return false
		}
	}
	return masksEqual(a.fieldWrites, b.fieldWrites)
}

// boundconst builds (once) and returns the module's bound-provenance
// result.
func (m *Module) boundconst() map[string]*bcSummary {
	m.bcOnce.Do(func() { m.bc = buildBoundconst(m) })
	return m.bc
}

func buildBoundconst(m *Module) map[string]*bcSummary {
	r := m.interproc() // reuse the function index
	g := m.Graph()

	callers := map[string][]string{}
	for from, tos := range g.edges {
		if r.units[from] == nil {
			continue
		}
		seen := map[string]bool{}
		for _, to := range tos {
			if r.units[to] != nil && !seen[to] {
				seen[to] = true
				callers[to] = append(callers[to], from)
			}
		}
	}
	for _, cs := range callers {
		sort.Strings(cs)
	}

	// fields is the module-global bound-class table: the class bits
	// stored into each struct field anywhere, with the first store's
	// witness site. Unlike the taint layer, class bits globalize
	// directly — a raw bound in a field is raw no matter who wrote it.
	fields := newFieldFacts()
	sums := map[string]*bcSummary{}
	var queue []string
	inQueue := map[string]bool{}
	enqueue := func(id string) {
		if !inQueue[id] && r.units[id] != nil {
			inQueue[id] = true
			queue = append(queue, id)
		}
	}
	enqueueReaders := func(fid string) {
		ids := make([]string, 0, len(sums))
		for id := range sums {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if s := sums[id]; s != nil && s.fieldReads[fid] {
				enqueue(id)
			}
		}
	}
	globalize := func(id string, sum *bcSummary) {
		fids := make([]string, 0, len(sum.fieldWrites))
		for fid := range sum.fieldWrites {
			fids = append(fids, fid)
		}
		sort.Strings(fids)
		for _, fid := range fids {
			gl := sum.fieldWrites[fid] & (bcRawBit | bcTightBit)
			if gl != 0 && fields.add(fid, gl, sum.fieldSites[fid]) {
				enqueueReaders(fid)
			}
		}
	}

	if pr := m.prime; pr != nil {
		primed := make([]string, 0, len(pr.bc))
		for id := range pr.bc {
			primed = append(primed, id)
		}
		sort.Strings(primed)
		for _, id := range primed {
			if r.units[id] == nil {
				continue
			}
			sums[id] = pr.bc[id]
			m.Stats.FuncsReused++
			globalize(id, sums[id])
		}
	}
	m.Stats.FuncsTotal += len(r.units)
	for _, id := range bottomUpOrder(g, r.units) {
		if sums[id] == nil {
			enqueue(id)
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false
		ns := bcAnalyze(r.units[id], sums, fields)
		changed := !bcEqual(sums[id], ns)
		sums[id] = ns
		globalize(id, ns)
		if changed {
			for _, c := range callers[id] {
				enqueue(c)
			}
		}
	}
	return sums
}

func (boundconstCheck) Run(pkg *Package) []Finding {
	sums := pkg.Module.boundconst()
	ids := make([]string, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	byPos := map[token.Pos][]*ipSite{}
	for _, id := range ids {
		for _, site := range sums[id].events {
			var chain []*ipSite
			for s := site; s != nil; s = s.next {
				chain = append(chain, s)
			}
			sink := chain[len(chain)-1].pos
			if prev, ok := byPos[sink]; !ok || len(chain) > len(prev) {
				byPos[sink] = chain
			}
		}
	}
	var sinks []token.Pos
	for p := range byPos {
		sinks = append(sinks, p)
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })

	var out []Finding
	for _, sink := range sinks {
		if !pkg.ownsPos(sink) {
			continue
		}
		h := ipHit{sink: sink, chain: byPos[sink]}
		f := pkg.Module.newFinding("boundconst", sink,
			"raw log2(1+b) bound reaches a quantizer sink on the path %s without the Lemma-2 round-off tightening; subtract the max|log2 x|·ε₀ margin (core.Forward's roundoff guard) first",
			h.chainPath(pkg.Module))
		h.decorate(&f, pkg.Module)
		out = append(out, f)
	}
	return out
}

// --- per-function analysis ----------------------------------------------

type bcEval struct {
	u      *funcUnit
	info   *types.Info
	sums   map[string]*bcSummary
	fields *fieldFacts
	sum    *bcSummary
	seen   map[token.Pos]bool
	// noFields disables field reads in maskOf, so checkSinks can tell a
	// field-borne raw bound (whose witness chain starts at the store)
	// from one computed locally.
	noFields bool
}

func bcAnalyze(u *funcUnit, sums map[string]*bcSummary, fields *fieldFacts) *bcSummary {
	ev := &bcEval{
		u:      u,
		info:   u.pkg.Info,
		sums:   sums,
		fields: fields,
		sum: &bcSummary{
			sinkVia:     map[int]*ipSite{},
			fieldWrites: map[string]uint64{},
			fieldSites:  map[string]*ipSite{},
			fieldReads:  map[string]bool{},
		},
	}
	// Field writes discovered late in a pass feed field reads earlier in
	// the same function (flow-insensitively), so iterate the whole
	// propagate+report pipeline until the local field table stops
	// growing. Everything except fieldWrites/fieldSites/fieldReads is
	// recomputed from scratch each round; the final round's view wins.
	for iter := 0; iter < 8; iter++ {
		before := cloneMasks(ev.sum.fieldWrites)
		ev.sum.retMask = 0
		ev.sum.events = nil
		ev.sum.sinkVia = map[int]*ipSite{}
		ev.seen = map[token.Pos]bool{}
		boundary := maskState{}
		for i, p := range u.params {
			if p != nil && paramBit(i) != 0 && isFloat(p.Type()) {
				boundary[p] = paramBit(i)
			}
		}
		g := u.cfgOf()
		in := g.maskFlow(boundary, func(b *cfgBlock, s maskState) maskState {
			for _, n := range b.nodes {
				ev.step(s, n, false)
			}
			return s
		})
		for _, b := range g.reversePostorder() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = s.clone()
			for _, n := range b.nodes {
				ev.step(s, n, true)
			}
		}
		if masksEqual(before, ev.sum.fieldWrites) {
			break
		}
	}
	return ev.sum
}

func (ev *bcEval) step(s maskState, n ast.Node, report bool) {
	if report {
		ev.checkSinks(s, n)
	} else {
		ev.callFieldEffects(s, n)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		fieldStores(ev.info, s, n, ev.maskOf, ev.recordFieldWrite)
		maskAssign(ev.info, s, n, ev.maskOf)
	case *ast.DeclStmt:
		maskDeclare(ev.info, s, n, ev.maskOf)
	case *ast.ReturnStmt:
		if report {
			ev.collectReturn(s, n)
		}
	}
	// Guard conditions do not sanitize here: comparing a bound leaves it
	// just as raw as before.
}

// recordFieldWrite folds one field store into the local table, keeping
// the first store site as the witness-chain head for field-origin
// findings (and for the //lint:allow seed-site suppression rule).
func (ev *bcEval) recordFieldWrite(fid string, m uint64, pos token.Pos) {
	if m == 0 {
		return
	}
	ev.sum.fieldWrites[fid] |= m
	if ev.sum.fieldSites[fid] == nil {
		ev.sum.fieldSites[fid] = &ipSite{fn: ev.u.id, pos: pos}
	}
}

// callFieldEffects translates a summarized callee's field writes into
// this caller's table: callee parameter bits become the argument masks
// the caller passed (receiver first), class bits carry over unchanged,
// and the witness chain gains the call site ahead of the callee's store.
func (ev *bcEval) callFieldEffects(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || isConversion(ev.info, call) || builtinName(ev.info, call) != "" {
			return true
		}
		fn := staticCallee(ev.info, call)
		if fn == nil {
			return true
		}
		cs := ev.sums[funcID(fn)]
		if cs == nil || len(cs.fieldWrites) == 0 {
			return true
		}
		am := callArgMasks(ev.info, s, call, fn, ev.maskOf)
		fids := make([]string, 0, len(cs.fieldWrites))
		for fid := range cs.fieldWrites {
			fids = append(fids, fid)
		}
		sort.Strings(fids)
		for _, fid := range fids {
			fm := cs.fieldWrites[fid]
			t := fm &^ ipParamMask
			for j, a := range am {
				if a != 0 && fm&paramBit(j) != 0 {
					t |= a
				}
			}
			if t == 0 {
				continue
			}
			ev.sum.fieldWrites[fid] |= t
			if ev.sum.fieldSites[fid] == nil {
				ev.sum.fieldSites[fid] = &ipSite{fn: ev.u.id, pos: call.Pos(), next: cs.fieldSites[fid]}
			}
		}
		return true
	})
}

func (ev *bcEval) collectReturn(s maskState, n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		for _, o := range ev.u.results {
			ev.sum.retMask |= s[o]
		}
		return
	}
	for _, e := range n.Results {
		ev.sum.retMask |= ev.maskOf(s, e)
	}
}

// maskOf evaluates a float expression's bound provenance: parameter bits
// for untightened flows, bcRawBit for log(1+x) results, bcTightBit once a
// subtraction or sub-unit scaling is applied.
func (ev *bcEval) maskOf(s maskState, e ast.Expr) uint64 {
	if tv, ok := ev.info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.maskOf(s, e.X)
	case *ast.Ident:
		if o := objOf(ev.info, e); o != nil {
			return s[o]
		}
	case *ast.UnaryExpr:
		return ev.maskOf(s, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return 0
		case token.SUB:
			// The Lemma-2 shape: subtracting the round-off margin
			// tightens whatever was raw (or parameter-fresh).
			m := ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
			if m&^bcTightBit != 0 {
				return bcTightBit
			}
			return m
		case token.MUL:
			// Multiplying by a constant below 1 is the slack form of the
			// tightening (e.g. the 0.999 derating in the ISABELA path).
			if (bcSubUnitConst(ev.info, e.X) && ev.maskOf(s, e.Y) != 0) ||
				(bcSubUnitConst(ev.info, e.Y) && ev.maskOf(s, e.X) != 0) {
				return bcTightBit
			}
			return ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
		default:
			// ADD, QUO, ...: log2(1+b)/log2(a) rebases but stays raw.
			return ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
		}
	case *ast.IndexExpr:
		return ev.maskOf(s, e.X)
	case *ast.StarExpr:
		return ev.maskOf(s, e.X)
	case *ast.SelectorExpr:
		m := ev.maskOf(s, e.X) & (bcRawBit | bcTightBit)
		if fid := fieldIDOf(ev.info, e); fid != "" && !ev.noFields {
			ev.sum.fieldReads[fid] = true
			m |= (ev.sum.fieldWrites[fid] | ev.fields.masks[fid]) & (bcRawBit | bcTightBit)
		}
		return m
	case *ast.CompositeLit:
		compositeFieldStores(ev.info, s, e, ev.maskOf, ev.recordFieldWrite)
		return 0
	case *ast.CallExpr:
		return ev.callMask(s, e)
	}
	return 0
}

// maskOfNoFields evaluates e with field reads disabled, to attribute a
// raw classification to either local computation or a field flow.
func (ev *bcEval) maskOfNoFields(s maskState, e ast.Expr) uint64 {
	ev.noFields = true
	m := ev.maskOf(s, e)
	ev.noFields = false
	return m
}

// fieldRawSite finds the store-site witness chain for the raw-not-tight
// field fact that classified e, scanning its selector reads.
func (ev *bcEval) fieldRawSite(e ast.Expr) *ipSite {
	var found *ipSite
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fid := fieldIDOf(ev.info, sel)
		if fid == "" {
			return true
		}
		fm := ev.sum.fieldWrites[fid] | ev.fields.masks[fid]
		if fm&bcRawBit != 0 && fm&bcTightBit == 0 {
			if fs := ev.sum.fieldSites[fid]; fs != nil {
				found = fs
			} else {
				found = ev.fields.sites[fid]
			}
		}
		return true
	})
	return found
}

func (ev *bcEval) callMask(s maskState, call *ast.CallExpr) uint64 {
	if isConversion(ev.info, call) && len(call.Args) == 1 {
		return ev.maskOf(s, call.Args[0])
	}
	if builtinName(ev.info, call) != "" {
		return 0
	}
	if bcLogRe.MatchString(calleeBaseName(call)) && len(call.Args) == 1 && bcIsOnePlus(ev.info, call.Args[0]) {
		return bcRawBit
	}
	fn := staticCallee(ev.info, call)
	if fn == nil {
		return 0
	}
	cs := ev.sums[funcID(fn)]
	if cs == nil {
		return 0
	}
	m := cs.retMask & (bcRawBit | bcTightBit)
	for j, am := range callArgMasks(ev.info, s, call, fn, ev.maskOf) {
		if am != 0 && cs.retMask&paramBit(j) != 0 {
			m |= am
		}
	}
	return m
}

// checkSinks records raw bounds entering sink parameters, and parameter
// flows into sinks (directly or through a summarized callee).
func (ev *bcEval) checkSinks(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || isConversion(ev.info, call) || builtinName(ev.info, call) != "" {
			return true
		}
		fn := staticCallee(ev.info, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		nRecv := 0
		if sig.Recv() != nil {
			nRecv = 1
		}
		cs := ev.sums[funcID(fn)]
		direct := bcIsSinkFunc(fn)
		for i, a := range call.Args {
			j := nRecv + i
			if sig.Variadic() && j >= nRecv+sig.Params().Len()-1 {
				j = nRecv + sig.Params().Len() - 1
			}
			am := ev.maskOf(s, a)
			if am == 0 {
				continue
			}
			var site *ipSite
			if direct && bcIsBoundParam(sig, j-nRecv) {
				site = &ipSite{fn: ev.u.id, pos: a.Pos()}
			} else if cs != nil && cs.sinkVia[j] != nil {
				site = &ipSite{fn: ev.u.id, pos: call.Pos(), next: cs.sinkVia[j]}
			}
			if site == nil {
				continue
			}
			if am&bcRawBit != 0 && am&bcTightBit == 0 {
				full := site
				if ev.maskOfNoFields(s, a)&bcRawBit == 0 {
					// The raw class came from a field read: the witness
					// chain starts at the store that made the field raw.
					if fs := ev.fieldRawSite(a); fs != nil {
						full = prependChain(fs, site)
					}
				}
				ev.event(full)
			}
			for pi := range ev.u.params {
				if am&paramBit(pi) != 0 && ev.sum.sinkVia[pi] == nil {
					ev.sum.sinkVia[pi] = site
				}
			}
		}
		return true
	})
}

func (ev *bcEval) event(site *ipSite) {
	sink := site.sink().pos
	if ev.seen[sink] {
		return
	}
	ev.seen[sink] = true
	ev.sum.events = append(ev.sum.events, site)
}

// bcIsSinkFunc reports whether fn's bound parameters are quantizer sinks.
func bcIsSinkFunc(fn *types.Func) bool {
	if fn.Pkg() != nil && bcSinkPkgs[fn.Pkg().Name()] {
		return true
	}
	return bcSinkNameRe.MatchString(fn.Name())
}

// bcIsBoundParam reports whether signature parameter i is a float64
// error-bound parameter by name.
func bcIsBoundParam(sig *types.Signature, i int) bool {
	if i < 0 || i >= sig.Params().Len() {
		return false
	}
	p := sig.Params().At(i)
	b, ok := p.Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return false
	}
	return bcParamRe.MatchString(p.Name())
}

// bcIsOnePlus matches the 1+x / x+1 argument shape of the mapped bound.
func bcIsOnePlus(info *types.Info, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	one := func(x ast.Expr) bool {
		tv, ok := info.Types[x]
		if !ok || tv.Value == nil {
			return false
		}
		f := constant.ToFloat(tv.Value)
		return f.Kind() == constant.Float &&
			constant.Compare(f, token.EQL, constant.MakeFloat64(1))
	}
	return one(be.X) || one(be.Y)
}

// bcSubUnitConst reports whether e is a constant with |value| < 1.
func bcSubUnitConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	f := constant.ToFloat(tv.Value)
	if f.Kind() != constant.Float {
		return false
	}
	v, _ := constant.Float64Val(f)
	return v > -1 && v < 1
}
