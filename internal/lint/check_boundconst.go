package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// boundconstCheck verifies the Lemma-2 plumbing: an error-bound value
// that reaches a quantizer sink (internal/quant, internal/sz,
// internal/zfp bound parameters) must not be the raw mapped bound
// log2(1+b_r) — it has to pass through the round-off tightening
// b'_a = log2(1+b_r) − c·max|log2 x|·ε₀ first, or the quantizer's
// guarantee is off by exactly the floating-point error Lemma 2 accounts
// for.
//
// The analysis is a constant-provenance lattice over the same mask
// machinery as summary.go: a value is classified RAW when it is the
// result of a log(1+x) pattern, TIGHT once a subtraction (or a
// multiplication by a constant below 1, the slack form) is applied, and
// parameter bits track a bound flowing through helper functions so the
// check works across calls — a helper that forwards its parameter into a
// quantizer makes every caller passing a raw bound a finding, with the
// call chain in the message. A value that is RAW on one path and TIGHT
// on another joins to both bits and is not reported (the ablation knob
// DisableRoundoffGuard deliberately creates such joins).
//
// Struct fields are untracked here as everywhere in the engine, so a
// bound stashed in a struct (core.Transform.AbsBound) leaves the lattice;
// the core transform's own tightening is covered by its unit tests.
type boundconstCheck struct{}

func (boundconstCheck) Name() string { return "boundconst" }
func (boundconstCheck) Doc() string {
	return "flag raw log2(1+b) error bounds reaching quantizer sinks without the Lemma-2 round-off tightening"
}

// Class bits live above the parameter bits, like ipSeedBit.
const (
	bcRawBit   = uint64(1) << 62
	bcTightBit = uint64(1) << 63
)

// bcLogRe names the logarithm callees whose log(1+x) result is the raw
// mapped bound.
var bcLogRe = regexp.MustCompile(`^([Ll]og2|[Ll]og10|[Ll]og)$`)

// bcSinkPkgs are the packages whose exported bound parameters are sinks.
var bcSinkPkgs = map[string]bool{"quant": true, "sz": true, "zfp": true}

// bcSinkNameRe makes fixture (and future helper) sinks recognizable by
// name when they live outside the quantizer packages.
var bcSinkNameRe = regexp.MustCompile(`^(Quantize|NewQuantizer|CompressAbs|CompressAccuracy)`)

// bcParamRe matches the bound-carrying parameter names at a sink.
var bcParamRe = regexp.MustCompile(`(?i)bound|tol|eps|acc`)

// bcSummary is the bound-provenance abstract of one function: retMask
// carries the class bits and untightened parameter bits of the return
// value, sinkVia maps a parameter index to a witness chain showing the
// parameter reaching a bound sink untightened.
type bcSummary struct {
	retMask uint64
	sinkVia map[int]*ipSite
	events  []*ipSite // raw-bound-reaches-sink witnesses, sink last
}

func bcEqual(a, b *bcSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.retMask != b.retMask || len(a.sinkVia) != len(b.sinkVia) {
		return false
	}
	for i := range a.sinkVia {
		if b.sinkVia[i] == nil {
			return false
		}
	}
	return true
}

// boundconst builds (once) and returns the module's bound-provenance
// result.
func (m *Module) boundconst() map[string]*bcSummary {
	m.bcOnce.Do(func() { m.bc = buildBoundconst(m) })
	return m.bc
}

func buildBoundconst(m *Module) map[string]*bcSummary {
	r := m.interproc() // reuse the function index
	g := m.Graph()

	callers := map[string][]string{}
	for from, tos := range g.edges {
		if r.units[from] == nil {
			continue
		}
		seen := map[string]bool{}
		for _, to := range tos {
			if r.units[to] != nil && !seen[to] {
				seen[to] = true
				callers[to] = append(callers[to], from)
			}
		}
	}
	for _, cs := range callers {
		sort.Strings(cs)
	}

	sums := map[string]*bcSummary{}
	queue := bottomUpOrder(g, r.units)
	inQueue := map[string]bool{}
	for _, id := range queue {
		inQueue[id] = true
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		inQueue[id] = false
		ns := bcAnalyze(r.units[id], sums)
		changed := !bcEqual(sums[id], ns)
		sums[id] = ns
		if changed {
			for _, c := range callers[id] {
				if !inQueue[c] {
					inQueue[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	return sums
}

func (boundconstCheck) Run(pkg *Package) []Finding {
	sums := pkg.Module.boundconst()
	ids := make([]string, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	byPos := map[token.Pos][]*ipSite{}
	for _, id := range ids {
		for _, site := range sums[id].events {
			var chain []*ipSite
			for s := site; s != nil; s = s.next {
				chain = append(chain, s)
			}
			sink := chain[len(chain)-1].pos
			if prev, ok := byPos[sink]; !ok || len(chain) > len(prev) {
				byPos[sink] = chain
			}
		}
	}
	var sinks []token.Pos
	for p := range byPos {
		sinks = append(sinks, p)
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })

	var out []Finding
	for _, sink := range sinks {
		if !pkg.ownsPos(sink) {
			continue
		}
		h := ipHit{sink: sink, chain: byPos[sink]}
		f := pkg.Module.newFinding("boundconst", sink,
			"raw log2(1+b) bound reaches a quantizer sink on the path %s without the Lemma-2 round-off tightening; subtract the max|log2 x|·ε₀ margin (core.Forward's roundoff guard) first",
			h.chainPath(pkg.Module))
		f.Chain = h.chainStrings(pkg.Module)
		out = append(out, f)
	}
	return out
}

// --- per-function analysis ----------------------------------------------

type bcEval struct {
	u    *funcUnit
	info *types.Info
	sums map[string]*bcSummary
	sum  *bcSummary
	seen map[token.Pos]bool
}

func bcAnalyze(u *funcUnit, sums map[string]*bcSummary) *bcSummary {
	ev := &bcEval{
		u:    u,
		info: u.pkg.Info,
		sums: sums,
		sum:  &bcSummary{sinkVia: map[int]*ipSite{}},
		seen: map[token.Pos]bool{},
	}
	boundary := maskState{}
	for i, p := range u.params {
		if p != nil && paramBit(i) != 0 && isFloat(p.Type()) {
			boundary[p] = paramBit(i)
		}
	}
	g := u.cfgOf()
	in := g.maskFlow(boundary, func(b *cfgBlock, s maskState) maskState {
		for _, n := range b.nodes {
			ev.step(s, n, false)
		}
		return s
	})
	for _, b := range g.reversePostorder() {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = s.clone()
		for _, n := range b.nodes {
			ev.step(s, n, true)
		}
	}
	return ev.sum
}

func (ev *bcEval) step(s maskState, n ast.Node, report bool) {
	if report {
		ev.checkSinks(s, n)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		maskAssign(ev.info, s, n, ev.maskOf)
	case *ast.DeclStmt:
		maskDeclare(ev.info, s, n, ev.maskOf)
	case *ast.ReturnStmt:
		if report {
			ev.collectReturn(s, n)
		}
	}
	// Guard conditions do not sanitize here: comparing a bound leaves it
	// just as raw as before.
}

func (ev *bcEval) collectReturn(s maskState, n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		for _, o := range ev.u.results {
			ev.sum.retMask |= s[o]
		}
		return
	}
	for _, e := range n.Results {
		ev.sum.retMask |= ev.maskOf(s, e)
	}
}

// maskOf evaluates a float expression's bound provenance: parameter bits
// for untightened flows, bcRawBit for log(1+x) results, bcTightBit once a
// subtraction or sub-unit scaling is applied.
func (ev *bcEval) maskOf(s maskState, e ast.Expr) uint64 {
	if tv, ok := ev.info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.maskOf(s, e.X)
	case *ast.Ident:
		if o := objOf(ev.info, e); o != nil {
			return s[o]
		}
	case *ast.UnaryExpr:
		return ev.maskOf(s, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return 0
		case token.SUB:
			// The Lemma-2 shape: subtracting the round-off margin
			// tightens whatever was raw (or parameter-fresh).
			m := ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
			if m&^bcTightBit != 0 {
				return bcTightBit
			}
			return m
		case token.MUL:
			// Multiplying by a constant below 1 is the slack form of the
			// tightening (e.g. the 0.999 derating in the ISABELA path).
			if (bcSubUnitConst(ev.info, e.X) && ev.maskOf(s, e.Y) != 0) ||
				(bcSubUnitConst(ev.info, e.Y) && ev.maskOf(s, e.X) != 0) {
				return bcTightBit
			}
			return ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
		default:
			// ADD, QUO, ...: log2(1+b)/log2(a) rebases but stays raw.
			return ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
		}
	case *ast.IndexExpr:
		return ev.maskOf(s, e.X)
	case *ast.CallExpr:
		return ev.callMask(s, e)
	}
	return 0
}

func (ev *bcEval) callMask(s maskState, call *ast.CallExpr) uint64 {
	if isConversion(ev.info, call) && len(call.Args) == 1 {
		return ev.maskOf(s, call.Args[0])
	}
	if builtinName(ev.info, call) != "" {
		return 0
	}
	if bcLogRe.MatchString(calleeBaseName(call)) && len(call.Args) == 1 && bcIsOnePlus(ev.info, call.Args[0]) {
		return bcRawBit
	}
	fn := staticCallee(ev.info, call)
	if fn == nil {
		return 0
	}
	cs := ev.sums[funcID(fn)]
	if cs == nil {
		return 0
	}
	m := cs.retMask & (bcRawBit | bcTightBit)
	for j, am := range callArgMasks(ev.info, s, call, fn, ev.maskOf) {
		if am != 0 && cs.retMask&paramBit(j) != 0 {
			m |= am
		}
	}
	return m
}

// checkSinks records raw bounds entering sink parameters, and parameter
// flows into sinks (directly or through a summarized callee).
func (ev *bcEval) checkSinks(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || isConversion(ev.info, call) || builtinName(ev.info, call) != "" {
			return true
		}
		fn := staticCallee(ev.info, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		nRecv := 0
		if sig.Recv() != nil {
			nRecv = 1
		}
		cs := ev.sums[funcID(fn)]
		direct := bcIsSinkFunc(fn)
		for i, a := range call.Args {
			j := nRecv + i
			if sig.Variadic() && j >= nRecv+sig.Params().Len()-1 {
				j = nRecv + sig.Params().Len() - 1
			}
			am := ev.maskOf(s, a)
			if am == 0 {
				continue
			}
			var site *ipSite
			if direct && bcIsBoundParam(sig, j-nRecv) {
				site = &ipSite{fn: ev.u.id, pos: a.Pos()}
			} else if cs != nil && cs.sinkVia[j] != nil {
				site = &ipSite{fn: ev.u.id, pos: call.Pos(), next: cs.sinkVia[j]}
			}
			if site == nil {
				continue
			}
			if am&bcRawBit != 0 && am&bcTightBit == 0 {
				ev.event(site)
			}
			for pi := range ev.u.params {
				if am&paramBit(pi) != 0 && ev.sum.sinkVia[pi] == nil {
					ev.sum.sinkVia[pi] = site
				}
			}
		}
		return true
	})
}

func (ev *bcEval) event(site *ipSite) {
	sink := site.sink().pos
	if ev.seen[sink] {
		return
	}
	ev.seen[sink] = true
	ev.sum.events = append(ev.sum.events, site)
}

// bcIsSinkFunc reports whether fn's bound parameters are quantizer sinks.
func bcIsSinkFunc(fn *types.Func) bool {
	if fn.Pkg() != nil && bcSinkPkgs[fn.Pkg().Name()] {
		return true
	}
	return bcSinkNameRe.MatchString(fn.Name())
}

// bcIsBoundParam reports whether signature parameter i is a float64
// error-bound parameter by name.
func bcIsBoundParam(sig *types.Signature, i int) bool {
	if i < 0 || i >= sig.Params().Len() {
		return false
	}
	p := sig.Params().At(i)
	b, ok := p.Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return false
	}
	return bcParamRe.MatchString(p.Name())
}

// bcIsOnePlus matches the 1+x / x+1 argument shape of the mapped bound.
func bcIsOnePlus(info *types.Info, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	one := func(x ast.Expr) bool {
		tv, ok := info.Types[x]
		if !ok || tv.Value == nil {
			return false
		}
		f := constant.ToFloat(tv.Value)
		return f.Kind() == constant.Float &&
			constant.Compare(f, token.EQL, constant.MakeFloat64(1))
	}
	return one(be.X) || one(be.Y)
}

// bcSubUnitConst reports whether e is a constant with |value| < 1.
func bcSubUnitConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	f := constant.ToFloat(tv.Value)
	if f.Kind() != constant.Float {
		return false
	}
	v, _ := constant.Float64Val(f)
	return v > -1 && v < 1
}
