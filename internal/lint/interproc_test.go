package lint

import (
	"testing"
)

// wantChain asserts the single finding carries a witness chain of n hops.
func wantChain(t *testing.T, findings []Finding, n int) {
	t.Helper()
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if len(findings[0].Chain) != n {
		t.Errorf("chain has %d hops, want %d: %v", len(findings[0].Chain), n, findings[0].Chain)
	}
}

// --- limitreach ----------------------------------------------------------

// The acceptance fixture: an unguarded decode-side make([]T, n) two calls
// below the exported entry, reported with the full call chain.
func TestLimitreachUnguardedMakeTwoCallsDown(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecompressStream(buf []byte) []float64 {
	n := int(buf[0])
	return readBody(buf, n)
}

func readBody(buf []byte, n int) []float64 {
	return grow(n)
}

func grow(n int) []float64 {
	return make([]float64, n)
}
`,
	})
	wantOne(t, findings, 13, "fixture.DecompressStream → fixture.readBody → fixture.grow")
	wantChain(t, findings, 3)
}

func TestLimitreachAppendGrowthOneCallDown(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecodeFrames(buf []byte) []byte {
	return gather(nil, buf)
}

func gather(dst, src []byte) []byte {
	return append(dst, src...)
}
`,
	})
	wantOne(t, findings, 8, "fixture.DecodeFrames → fixture.gather")
}

// A named guard call (the DecodeLimits convention) sanitizes the size for
// the rest of the entry, including the callee allocation.
func TestLimitreachGuardCallClean(t *testing.T) {
	findings, suppressed := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecompressChecked(buf []byte) []float64 {
	n := int(buf[0])
	err := checkElements(n)
	if err != nil {
		return nil
	}
	return grow(n)
}

func grow(n int) []float64 {
	return make([]float64, n)
}

type limitErr string

func (e limitErr) Error() string { return string(e) }

func checkElements(n int) error {
	if n > 1024 {
		return limitErr("too large")
	}
	return nil
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// An ordinary range guard against the remaining payload also sanitizes.
func TestLimitreachRangeGuardClean(t *testing.T) {
	findings, suppressed := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecompressRanged(buf []byte) []float64 {
	n := int(buf[0])
	if n > len(buf)-1 {
		return nil
	}
	return grow(n)
}

func grow(n int) []float64 {
	return make([]float64, n)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// Taint in a function no decode entry reaches is not limitreach's business.
func TestLimitreachUnreachableFromEntriesClean(t *testing.T) {
	findings, suppressed := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func helper(buf []byte) []float64 {
	return grow(int(buf[0]))
}

func grow(n int) []float64 {
	return make([]float64, n)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- wrapreach -----------------------------------------------------------

// A callee that narrows a width the caller never validated: the conversion
// is diagnosed at the callee with the cross-function chain.
func TestWrapreachNarrowingInTrustingCallee(t *testing.T) {
	findings, _ := runCheck(t, "wrapreach", map[string]string{
		"a.go": `package fixture

func DecompressStream(buf []byte) int {
	v := be64(buf)
	return toInt(v)
}

func be64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}

func toInt(v uint64) int {
	return int(v)
}
`,
	})
	wantOne(t, findings, 17, "fixture.DecompressStream → fixture.toInt")
	wantChain(t, findings, 2)
}

func TestWrapreachDirectNarrowingInEntry(t *testing.T) {
	findings, _ := runCheck(t, "wrapreach", map[string]string{
		"a.go": `package fixture

func ParseCount(buf []byte) int {
	v := uint64(buf[0]) | uint64(buf[1])<<8
	return int(v)
}
`,
	})
	wantOne(t, findings, 5, "narrowing conversion of unvalidated decoder input")
}

func TestWrapreachRangeGuardClean(t *testing.T) {
	findings, suppressed := runCheck(t, "wrapreach", map[string]string{
		"a.go": `package fixture

func DecodeLen(buf []byte) int {
	v := uint64(buf[0])<<32 | uint64(buf[1])
	if v > 1<<20 {
		return 0
	}
	return int(v)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// Masking to the target width bounds the value: no wrap possible.
func TestWrapreachMaskedConversionClean(t *testing.T) {
	findings, suppressed := runCheck(t, "wrapreach", map[string]string{
		"a.go": `package fixture

func DecodeTag(buf []byte) int {
	v := uint64(buf[0]) << 8
	return int(v & 0xffff)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// A caller-side guard protects the callee's narrowing: the entry's
// argument is sanitized, and the callee's own event carries no entry taint.
func TestWrapreachGuardedCallerClean(t *testing.T) {
	findings, suppressed := runCheck(t, "wrapreach", map[string]string{
		"a.go": `package fixture

func DecompressSafe(buf []byte) int {
	v := wide(buf)
	if v > 4096 {
		return 0
	}
	return narrow(v)
}

func wide(b []byte) uint64 {
	return uint64(b[0])
}

func narrow(v uint64) int {
	return int(v)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- boundconst ----------------------------------------------------------

func TestBoundconstRawLogBoundAtSink(t *testing.T) {
	findings, _ := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

func Quantize(vals []float64, bound float64) {
	_ = vals
	_ = bound
}

func log2(x float64) float64 {
	return x
}

func Setup(b float64) {
	m := log2(1 + b)
	Quantize(nil, m)
}
`,
	})
	wantOne(t, findings, 14, "raw log2(1+b) bound reaches a quantizer sink")
}

// A helper forwarding its parameter into the quantizer makes every caller
// passing a raw bound a finding, with the call chain.
func TestBoundconstRawBoundThroughHelper(t *testing.T) {
	findings, _ := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

func Quantize(vals []float64, bound float64) {
	_ = vals
	_ = bound
}

func log2(x float64) float64 {
	return x
}

func apply(tol float64) {
	Quantize(nil, tol)
}

func SetupVia(b float64) {
	apply(log2(1 + b))
}
`,
	})
	wantOne(t, findings, 13, "fixture.SetupVia → fixture.apply")
	wantChain(t, findings, 2)
}

// Subtracting the round-off margin (or scaling by a sub-unit constant)
// tightens the bound: both Lemma-2 shapes are clean.
func TestBoundconstTightenedClean(t *testing.T) {
	findings, suppressed := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

func Quantize(vals []float64, bound float64) {
	_ = vals
	_ = bound
}

func log2(x float64) float64 {
	return x
}

func SetupTight(b float64) {
	m := log2(1+b) - 0.001
	Quantize(nil, m)
}

func SetupScaled(b float64) {
	Quantize(nil, log2(1+b)*0.5)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// A value raw on one path and tightened on another joins to both classes
// and is not reported — the DisableRoundoffGuard ablation pattern.
func TestBoundconstAblationJoinClean(t *testing.T) {
	findings, suppressed := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

func Quantize(vals []float64, bound float64) {
	_ = vals
	_ = bound
}

func log2(x float64) float64 {
	return x
}

func SetupAblate(b float64, tighten bool) {
	m := log2(1 + b)
	if tighten {
		m = m - 0.001
	}
	Quantize(nil, m)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- purity --------------------------------------------------------------

func TestPurityGoroutineCalleeWritesGlobal(t *testing.T) {
	findings, _ := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

var counter int

func work(i int) {
	counter += i
}

func Run() {
	done := make(chan struct{})
	go func() {
		work(1)
		close(done)
	}()
	<-done
}
`,
	})
	wantOne(t, findings, 6, "writes package-level counter")
}

// A function handed to a pool runner roots the worker set, and the write
// two calls down is attributed to that root.
func TestPurityPoolArgTransitiveWrite(t *testing.T) {
	findings, _ := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

var total float64

func runPool(fn func(int)) {
	fn(0)
}

func tally(i int) {
	bump(i)
}

func bump(i int) {
	total += float64(i)
}

func Launch() {
	runPool(tally)
}
`,
	})
	wantOne(t, findings, 14, "via fixture.tally")
}

// Writes into caller-owned storage (parameters, locals) are fine.
func TestPurityParamWriteClean(t *testing.T) {
	findings, suppressed := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

func fill(dst []float64, i int) {
	dst[i] = float64(i)
}

func Spawn() []float64 {
	dst := make([]float64, 4)
	done := make(chan struct{})
	go func() {
		fill(dst, 0)
		close(done)
	}()
	<-done
	return dst
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// Global writes outside any worker-reachable function are not purity's
// concern.
func TestPurityNonWorkerGlobalWriteClean(t *testing.T) {
	findings, suppressed := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

var mode int

func SetMode(m int) {
	mode = m
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- summary-level facts -------------------------------------------------

func TestSummaryReturnLoopAndSeedFacts(t *testing.T) {
	m, err := LoadSources(map[string]string{"a.go": `package fixture

func passthrough(a, b int) int {
	return b
}

func loopy(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

func readHeader(buf []byte) uint64 {
	return uint64(buf[0])
}
`})
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	r := m.interproc()

	pt := r.sums["fixture.passthrough"]
	if pt == nil {
		t.Fatal("no summary for passthrough")
	}
	if pt.retMask != paramBit(1) {
		t.Errorf("passthrough retMask = %b, want param bit 1 only", pt.retMask)
	}
	if pt.retSeed {
		t.Error("passthrough retSeed = true, want false")
	}

	lp := r.sums["fixture.loopy"]
	if lp == nil {
		t.Fatal("no summary for loopy")
	}
	if lp.loopVia[0] == nil {
		t.Error("loopy: parameter 0 does not reach a loop bound, want loopVia[0] set")
	}
	if lp.retMask != 0 {
		t.Errorf("loopy retMask = %b, want 0", lp.retMask)
	}

	rh := r.sums["fixture.readHeader"]
	if rh == nil {
		t.Fatal("no summary for readHeader")
	}
	if !rh.retSeed {
		t.Error("readHeader retSeed = false, want true (decode-context byte load)")
	}
	if rh.retMask != paramBit(0) {
		t.Errorf("readHeader retMask = %b, want param bit 0", rh.retMask)
	}
}

// The entry set must cover the stream decoders — including the float32
// variant — with both byte slices and Read-method interfaces untrusted;
// unexported and non-decode names stay out.
func TestEntryDetectionCoversStreamDecoders(t *testing.T) {
	m, err := LoadSources(map[string]string{"a.go": `package fixture

type byteSource interface {
	Read(p []byte) (int, error)
}

func DecompressStream32(r byteSource, buf []byte) int {
	_ = r
	return len(buf)
}

func ScanSalvage(buf []byte) int { return len(buf) }

func Compress(buf []byte) int { return len(buf) }

func helper(buf []byte) int { return len(buf) }
`})
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	r := m.interproc()
	if mask := r.entries["fixture.DecompressStream32"]; mask != paramBit(0)|paramBit(1) {
		t.Errorf("DecompressStream32 entry mask = %b, want reader and buffer params untrusted", mask)
	}
	if _, ok := r.entries["fixture.ScanSalvage"]; !ok {
		t.Error("ScanSalvage not registered as a decode entry")
	}
	if _, ok := r.entries["fixture.Compress"]; ok {
		t.Error("Compress registered as a decode entry, want encode side excluded")
	}
	if _, ok := r.entries["fixture.helper"]; ok {
		t.Error("unexported helper registered as a decode entry")
	}
}

// Recursive and mutually-recursive summaries reach a fixed point, and the
// taint still crosses the cycle.
func TestSummaryFixpointOnRecursion(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecodeNest(buf []byte) []float64 {
	return descend(int(buf[0]), 3)
}

func descend(n, depth int) []float64 {
	if depth == 0 {
		return alloc(n)
	}
	return descend(n, depth-1)
}

func alloc(n int) []float64 {
	return make([]float64, n)
}
`,
	})
	// depth is guarded (the == comparison sanitizes it) but n is not: the
	// cycle must still deliver n's taint to the allocation.
	wantOne(t, findings, 15, "fixture.DecodeNest → fixture.descend → fixture.alloc")
}
