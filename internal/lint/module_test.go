package lint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testutil"
)

// TestModuleIsClean is the meta-test: the real module must lint clean.
// Any new raw float comparison, dropped error, decode-path panic,
// non-base-2 math in internal/core, or unguarded timing assertion fails
// this test until fixed or explicitly annotated with //lint:allow.
func TestModuleIsClean(t *testing.T) {
	if testutil.RaceEnabled {
		// Type-checking the whole module from source is several times
		// slower under the race detector and races are impossible here
		// (single goroutine); ci/check.sh runs pwrvet separately.
		t.Skip("skipping whole-module lint under -race")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("FindModuleRoot returned %s without go.mod: %v", root, err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	if len(m.Packages) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, suppressed := m.Run(AllChecks())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("module has %d unsuppressed lint findings (run cmd/pwrvet for details)", len(findings))
	}
	if suppressed == 0 {
		t.Error("expected some suppressed findings (the audited panics and base-study dispatch are annotated)")
	}
}

// TestFindModuleRootFailsAtFilesystemRoot pins the error path.
func TestFindModuleRootFailsAtFilesystemRoot(t *testing.T) {
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatal("want error when no go.mod exists above dir")
	}
}
