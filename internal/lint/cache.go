package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Incremental summary cache: the per-function summaries of the two
// fixed-point layers (summary.go, check_boundconst.go) serialized next
// to a content-hash manifest of every tracked source file, so a
// module-wide pwrvet run can skip re-analysis of everything whose
// sources did not change.
//
// Invalidation is per function, driven by the manifest diff: a function
// is stale when its file changed, when it can reach a stale function
// through the call graph (its summary folded the callee's), or when it
// reads a struct-field fact some stale function may have written (field
// facts flow writer→reader without a call edge, so caller-reachability
// alone would miss them; growth of a fact during the warm fixpoint is
// handled by the drivers' reader re-enqueueing, shrinkage by this
// invalidation). Everything else is primed into Module.prime and reused
// verbatim by the drivers.
//
// Positions are serialized as (slash-relative file, byte offset) and
// rebound against the fresh FileSet on load; any site that no longer
// resolves — file gone, offset out of range — silently drops that
// function from the prime set, which costs a re-analysis, never
// correctness. The internal/lint sources are themselves part of the
// manifest, so changing the analyzer invalidates its own cache.

// CacheSchema versions the cache file format; a mismatch discards the
// cache wholesale.
const CacheSchema = "pwrvet-cache-v1"

// CacheStats counts cache reuse for -stats reporting.
type CacheStats struct {
	FilesTotal  int `json:"files_total"`
	FilesReused int `json:"files_reused"`
	FuncsTotal  int `json:"funcs_total"`
	FuncsReused int `json:"funcs_reused"`
}

// primedState holds deserialized summaries the fixed-point drivers seed
// themselves with instead of analyzing from scratch.
type primedState struct {
	ip map[string]*ipSummary
	bc map[string]*bcSummary
}

// CacheFile is the on-disk cache: the manifest, the previous run's
// outcome (for full-hit replay), and the per-function summaries.
type CacheFile struct {
	Schema string `json:"schema"`
	// Checks names the check set the cached findings were produced with;
	// replay is only valid for the same set.
	Checks   []string `json:"checks"`
	Packages int      `json:"packages"`
	// Files maps slash-relative path -> sha256 hex of every tracked file.
	Files map[string]string `json:"files"`
	// Findings/Suppressed are the previous run's module-wide results,
	// with Finding.File relative to the module root.
	Findings   []Finding              `json:"findings"`
	Suppressed int                    `json:"suppressed"`
	Funcs      map[string]*cachedFunc `json:"funcs"`
}

// cachedFunc is one function's serialized summaries.
type cachedFunc struct {
	// File is the slash-relative path of the declaring file (the
	// invalidation key).
	File string    `json:"file"`
	IP   *cachedIP `json:"ip,omitempty"`
	BC   *cachedBC `json:"bc,omitempty"`
}

// jsonMask round-trips a uint64 mask as a decimal string: the class bits
// (1<<62, 1<<63) exceed float64's integer precision, so a plain JSON
// number would corrupt them.
type jsonMask uint64

func (m jsonMask) MarshalJSON() ([]byte, error) {
	return json.Marshal(strconv.FormatUint(uint64(m), 10))
}

func (m *jsonMask) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return err
	}
	*m = jsonMask(v)
	return nil
}

// cachedSite is one witness-chain hop as (function, file, byte offset).
type cachedSite struct {
	Fn   string `json:"fn"`
	File string `json:"file"`
	Off  int    `json:"off"`
}

// cachedEvent is one serialized ipEvent; Chain runs entry-hop first,
// sink last.
type cachedEvent struct {
	Kind    int          `json:"kind"`
	Mask    jsonMask     `json:"mask"`
	Closure bool         `json:"closure,omitempty"`
	Chain   []cachedSite `json:"chain"`
}

type cachedIP struct {
	RetMask     jsonMask            `json:"ret_mask"`
	RetSeed     bool                `json:"ret_seed,omitempty"`
	Events      []cachedEvent       `json:"events,omitempty"`
	FieldWrites map[string]jsonMask `json:"field_writes,omitempty"`
	FieldReads  []string            `json:"field_reads,omitempty"`
}

type cachedBC struct {
	RetMask jsonMask `json:"ret_mask"`
	// SinkVia keys are decimal parameter indices (JSON objects cannot
	// have int keys).
	SinkVia     map[string][]cachedSite `json:"sink_via,omitempty"`
	Events      [][]cachedSite          `json:"events,omitempty"`
	FieldWrites map[string]jsonMask     `json:"field_writes,omitempty"`
	FieldSites  map[string][]cachedSite `json:"field_sites,omitempty"`
	FieldReads  []string                `json:"field_reads,omitempty"`
}

// HashTree hashes every file LoadModule would read under root: go.mod
// plus all .go files, honoring the same directory and file-name skip
// rules (dot/underscore prefixes, testdata, vendor).
func HashTree(root string) (map[string]string, error) {
	files := map[string]string{}
	hash := func(path, rel string) error {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		h := sha256.Sum256(b)
		files[rel] = hex.EncodeToString(h[:])
		return nil
	}
	if err := hash(filepath.Join(root, "go.mod"), "go.mod"); err != nil {
		return nil, err
	}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		return hash(path, filepath.ToSlash(rel))
	})
	if err != nil {
		return nil, err
	}
	return files, nil
}

// DiffFiles returns the sorted symmetric difference of two manifests:
// files added, removed, or whose hash changed.
func DiffFiles(cached, current map[string]string) []string {
	var out []string
	for f, h := range current {
		if cached[f] != h {
			out = append(out, f)
		}
	}
	for f := range cached {
		if _, ok := current[f]; !ok {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// LoadCacheFile reads and schema-checks a cache file.
func LoadCacheFile(path string) (*CacheFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c CacheFile
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("cache %s: %w", path, err)
	}
	if c.Schema != CacheSchema {
		return nil, fmt.Errorf("cache %s: schema %q, want %q", path, c.Schema, CacheSchema)
	}
	return &c, nil
}

// WriteCacheFile writes the cache with stable formatting (sorted keys,
// tab indentation) so the committed artifact diffs cleanly.
func WriteCacheFile(path string, c *CacheFile) error {
	b, err := json.MarshalIndent(c, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// relFile converts an absolute FileSet filename to the cache's
// slash-relative form ("" when outside the module root).
func (m *Module) relFile(name string) string {
	rel, err := filepath.Rel(m.Root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	return filepath.ToSlash(rel)
}

// BuildCache serializes the module's analysis state after a run: the
// manifest, the run's findings (paths relativized), and both layers'
// per-function summaries.
func (m *Module) BuildCache(files map[string]string, checkNames []string, findings []Finding, suppressed int) *CacheFile {
	c := &CacheFile{
		Schema:     CacheSchema,
		Checks:     append([]string(nil), checkNames...),
		Packages:   len(m.Packages),
		Files:      files,
		Suppressed: suppressed,
		Funcs:      map[string]*cachedFunc{},
	}
	for _, f := range findings {
		f.ChainPos = nil
		if rel := m.relFile(f.File); rel != "" {
			f.File = rel
		}
		c.Findings = append(c.Findings, f)
	}
	if c.Findings == nil {
		c.Findings = []Finding{}
	}

	r := m.interproc()
	bc := m.boundconst()
	for id, u := range r.units {
		rel := m.relFile(m.Fset.Position(u.decl.Pos()).Filename)
		if rel == "" {
			continue
		}
		cf := &cachedFunc{File: rel}
		if sum := r.sums[id]; sum != nil {
			cf.IP = m.encodeIP(sum)
		}
		if sum := bc[id]; sum != nil {
			cf.BC = m.encodeBC(sum)
		}
		c.Funcs[id] = cf
	}
	return c
}

func (m *Module) encodeSite(s *ipSite) (cachedSite, bool) {
	p := m.Fset.Position(s.pos)
	rel := m.relFile(p.Filename)
	if rel == "" {
		return cachedSite{}, false
	}
	return cachedSite{Fn: s.fn, File: rel, Off: p.Offset}, true
}

func (m *Module) encodeChain(s *ipSite) []cachedSite {
	var out []cachedSite
	for ; s != nil; s = s.next {
		cs, ok := m.encodeSite(s)
		if !ok {
			return nil
		}
		out = append(out, cs)
	}
	return out
}

func encodeMasks(src map[string]uint64) map[string]jsonMask {
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]jsonMask, len(src))
	for k, v := range src {
		out[k] = jsonMask(v)
	}
	return out
}

func encodeReads(src map[string]bool) []string {
	if len(src) == 0 {
		return nil
	}
	out := make([]string, 0, len(src))
	for k := range src {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (m *Module) encodeIP(sum *ipSummary) *cachedIP {
	ci := &cachedIP{
		RetMask:     jsonMask(sum.retMask),
		RetSeed:     sum.retSeed,
		FieldWrites: encodeMasks(sum.fieldWrites),
		FieldReads:  encodeReads(sum.fieldReads),
	}
	for _, e := range sum.events {
		chain := m.encodeChain(e.site)
		if chain == nil {
			continue
		}
		ci.Events = append(ci.Events, cachedEvent{
			Kind: int(e.kind), Mask: jsonMask(e.mask), Closure: e.closure, Chain: chain,
		})
	}
	return ci
}

func (m *Module) encodeBC(sum *bcSummary) *cachedBC {
	cb := &cachedBC{
		RetMask:     jsonMask(sum.retMask),
		FieldWrites: encodeMasks(sum.fieldWrites),
		FieldReads:  encodeReads(sum.fieldReads),
	}
	for i, s := range sum.sinkVia {
		if chain := m.encodeChain(s); chain != nil {
			if cb.SinkVia == nil {
				cb.SinkVia = map[string][]cachedSite{}
			}
			cb.SinkVia[strconv.Itoa(i)] = chain
		}
	}
	for _, s := range sum.events {
		if chain := m.encodeChain(s); chain != nil {
			cb.Events = append(cb.Events, chain)
		}
	}
	for fid, s := range sum.fieldSites {
		if chain := m.encodeChain(s); chain != nil {
			if cb.FieldSites == nil {
				cb.FieldSites = map[string][]cachedSite{}
			}
			cb.FieldSites[fid] = chain
		}
	}
	return cb
}

// ApplyCache primes the module's fixed-point drivers with every cached
// function summary that is still valid given the changed files. It must
// run before the first check does (the drivers consult Module.prime once,
// inside their sync.Once builders).
func (m *Module) ApplyCache(c *CacheFile, changed []string) {
	changedSet := map[string]bool{}
	for _, f := range changed {
		changedSet[f] = true
	}
	var stale []string
	ids := make([]string, 0, len(c.Funcs))
	for id := range c.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if changedSet[c.Funcs[id].File] {
			stale = append(stale, id)
		}
	}
	// Transitive callers of stale functions folded those summaries.
	invalid := m.Graph().reaches(stale)
	// Field facts cross writer→reader without a call edge: a reader of
	// any field a stale-or-caller-invalid function wrote must also be
	// re-analyzed (its events may rest on a store that no longer exists).
	wrote := map[string]bool{}
	for _, id := range ids {
		if !invalid[id] {
			continue
		}
		cf := c.Funcs[id]
		if cf.IP != nil {
			for fid := range cf.IP.FieldWrites {
				wrote[fid] = true
			}
		}
		if cf.BC != nil {
			for fid := range cf.BC.FieldWrites {
				wrote[fid] = true
			}
		}
	}
	readsInvalid := func(reads []string) bool {
		for _, fid := range reads {
			if wrote[fid] {
				return true
			}
		}
		return false
	}

	fileOf := map[string]*token.File{}
	m.Fset.Iterate(func(f *token.File) bool {
		fileOf[f.Name()] = f
		return true
	})
	pr := &primedState{ip: map[string]*ipSummary{}, bc: map[string]*bcSummary{}}
	for _, id := range ids {
		cf := c.Funcs[id]
		if invalid[id] {
			continue
		}
		if (cf.IP != nil && readsInvalid(cf.IP.FieldReads)) ||
			(cf.BC != nil && readsInvalid(cf.BC.FieldReads)) {
			continue
		}
		if cf.IP != nil {
			if sum, ok := m.decodeIP(cf.IP, fileOf); ok {
				pr.ip[id] = sum
			}
		}
		if cf.BC != nil {
			if sum, ok := m.decodeBC(cf.BC, fileOf); ok {
				pr.bc[id] = sum
			}
		}
	}
	m.prime = pr
}

func (m *Module) decodeSite(cs cachedSite, fileOf map[string]*token.File) (*ipSite, bool) {
	f := fileOf[filepath.Join(m.Root, filepath.FromSlash(cs.File))]
	if f == nil || cs.Off < 0 || cs.Off > f.Size() {
		return nil, false
	}
	return &ipSite{fn: cs.Fn, pos: f.Pos(cs.Off)}, true
}

func (m *Module) decodeChain(chain []cachedSite, fileOf map[string]*token.File) (*ipSite, bool) {
	var head, tail *ipSite
	for _, cs := range chain {
		s, ok := m.decodeSite(cs, fileOf)
		if !ok {
			return nil, false
		}
		if head == nil {
			head = s
		} else {
			tail.next = s
		}
		tail = s
	}
	return head, head != nil
}

func decodeMasks(src map[string]jsonMask) map[string]uint64 {
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = uint64(v)
	}
	return out
}

func decodeReads(src []string) map[string]bool {
	out := make(map[string]bool, len(src))
	for _, k := range src {
		out[k] = true
	}
	return out
}

func (m *Module) decodeIP(ci *cachedIP, fileOf map[string]*token.File) (*ipSummary, bool) {
	sum := &ipSummary{
		retMask:     uint64(ci.RetMask),
		retSeed:     ci.RetSeed,
		allocVia:    map[int]*ipSite{},
		narrowVia:   map[int]*ipSite{},
		loopVia:     map[int]*ipSite{},
		fieldWrites: decodeMasks(ci.FieldWrites),
		fieldReads:  decodeReads(ci.FieldReads),
	}
	for _, e := range ci.Events {
		if e.Kind < int(ipAlloc) || e.Kind > int(ipLoop) {
			return nil, false
		}
		site, ok := m.decodeChain(e.Chain, fileOf)
		if !ok {
			return nil, false
		}
		sum.events = append(sum.events, ipEvent{
			kind: ipKind(e.Kind), mask: uint64(e.Mask), closure: e.Closure, site: site,
		})
	}
	finishIPSummary(sum)
	return sum, true
}

func (m *Module) decodeBC(cb *cachedBC, fileOf map[string]*token.File) (*bcSummary, bool) {
	sum := &bcSummary{
		retMask:     uint64(cb.RetMask),
		sinkVia:     map[int]*ipSite{},
		fieldWrites: decodeMasks(cb.FieldWrites),
		fieldSites:  map[string]*ipSite{},
		fieldReads:  decodeReads(cb.FieldReads),
	}
	for k, chain := range cb.SinkVia {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= ipMaxParams {
			return nil, false
		}
		site, ok := m.decodeChain(chain, fileOf)
		if !ok {
			return nil, false
		}
		sum.sinkVia[i] = site
	}
	for _, chain := range cb.Events {
		site, ok := m.decodeChain(chain, fileOf)
		if !ok {
			return nil, false
		}
		sum.events = append(sum.events, site)
	}
	for fid, chain := range cb.FieldSites {
		site, ok := m.decodeChain(chain, fileOf)
		if !ok {
			return nil, false
		}
		sum.fieldSites[fid] = site
	}
	return sum, true
}
