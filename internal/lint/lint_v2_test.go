package lint

import (
	"strings"
	"testing"
)

// Fixture tests for the dataflow checks (intnarrow, decodebound,
// goroleak, allochot, encdecpair). Each check gets at least one seeded
// violation, one clean variant exercising the analysis that clears it,
// and — where the module relies on it — a suppression test.

// --- intnarrow ---------------------------------------------------------

func TestIntnarrowConversion(t *testing.T) {
	findings, _ := runCheck(t, "intnarrow", map[string]string{
		"a.go": `package fixture

func Narrow(x uint64) uint32 {
	return uint32(x)
}
`,
	})
	wantOne(t, findings, 4, "may truncate")
}

func TestIntnarrowSignFlip(t *testing.T) {
	// uint64 -> int: 64 value bits do not fit int's 63; the top bit would
	// land in the sign.
	findings, _ := runCheck(t, "intnarrow", map[string]string{
		"a.go": `package fixture

func ToInt(x uint64) int {
	return int(x)
}
`,
	})
	wantOne(t, findings, 4, "may truncate")
}

func TestIntnarrowOverWideShift(t *testing.T) {
	findings, _ := runCheck(t, "intnarrow", map[string]string{
		"a.go": `package fixture

func Fill(x uint32) uint32 {
	return x << 32
}
`,
	})
	wantOne(t, findings, 4, "fill value")
}

func TestIntnarrowBoundedOperandsClean(t *testing.T) {
	findings, suppressed := runCheck(t, "intnarrow", map[string]string{
		"a.go": `package fixture

func Pack(x uint64, b byte) uint64 {
	lo := uint32(x & 0xFFFFFFFF) // mask bounds the operand
	hi := uint16(x >> 48)        // shift leaves 16 value bits
	m := byte(x % 256)           // remainder bounds the operand
	w := uint64(b)               // widening is always safe
	s := x >> 31                 // shift below the width is fine
	return uint64(lo) + uint64(hi) + uint64(m) + w + s
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestIntnarrowSuppressed(t *testing.T) {
	findings, suppressed := runCheck(t, "intnarrow", map[string]string{
		"a.go": `package fixture

func Trunc(x uint64) byte {
	return byte(x) //lint:allow intnarrow caller guarantees x < 256
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

// --- decodebound -------------------------------------------------------

func TestDecodeboundTaintedIndex(t *testing.T) {
	findings, _ := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func Decode(buf []byte) byte {
	n := int(buf[0])
	return buf[n]
}
`,
	})
	wantOne(t, findings, 5, "without a prior range guard")
}

func TestDecodeboundTaintedMakeSize(t *testing.T) {
	findings, _ := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func Uvarint(b []byte) (uint64, int) {
	return 0, 0
}

func Parse(buf []byte) []byte {
	n, _ := Uvarint(buf)
	return make([]byte, n)
}
`,
	})
	wantOne(t, findings, 9, "allocation bomb")
}

func TestDecodeboundTaintedLoopBound(t *testing.T) {
	findings, _ := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func ParseCount(buf []byte) int {
	n := int(buf[0])
	t := 0
	for i := 0; i < n; i++ {
		t++
	}
	return t
}
`,
	})
	wantOne(t, findings, 6, "iteration count")
}

func TestDecodeboundGuardSanitizes(t *testing.T) {
	findings, suppressed := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func Decode(buf []byte) byte {
	n := int(buf[0])
	if n >= len(buf) {
		return 0
	}
	return buf[n]
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestDecodeboundMixedLoopBoundPasses(t *testing.T) {
	// The rangecoder symbol-search shape: one comparison is tainted but
	// another bounds the loop by untainted terms, so the iteration count
	// stays under the decoder's control.
	findings, suppressed := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func DecodeSym(buf []byte, freq []uint32) int {
	f := uint32(buf[0])
	var cum uint32
	s := 0
	for s < len(freq) && cum+freq[s] <= f {
		cum += freq[s]
		s++
	}
	return s
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestDecodeboundNonDecodeFunctionExempt(t *testing.T) {
	findings, suppressed := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func Transform(buf []byte) byte {
	n := int(buf[0])
	return buf[n]
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestDecodeboundSuppressed(t *testing.T) {
	findings, suppressed := runCheck(t, "decodebound", map[string]string{
		"a.go": `package fixture

func Decode(buf []byte) byte {
	n := int(buf[0])
	//lint:allow decodebound n < 256 and buf is at least 4 KiB by contract
	return buf[n]
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

// --- goroleak ----------------------------------------------------------

func TestGoroleakDoneNotDeferred(t *testing.T) {
	findings, _ := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

import "sync"

func Run() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Done()
	}()
	wg.Wait()
}
`,
	})
	wantOne(t, findings, 9, "must be deferred")
}

func TestGoroleakAddMissing(t *testing.T) {
	findings, _ := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

import "sync"

func Run() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`,
	})
	wantOne(t, findings, 7, "not guaranteed on every path")
}

func TestGoroleakPairedClean(t *testing.T) {
	findings, suppressed := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

import "sync"

func Run(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestGoroleakRangedChannelNotClosed(t *testing.T) {
	findings, _ := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

func Drain() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	t := 0
	for v := range ch {
		t += v
	}
	return t
}
`,
	})
	wantOne(t, findings, 4, "ranged over")
}

func TestGoroleakChannelClosedInGoroutine(t *testing.T) {
	findings, suppressed := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

func Drain() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
		close(ch)
	}()
	t := 0
	for v := range ch {
		t += v
	}
	return t
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestGoroleakDeferredCloseClean(t *testing.T) {
	findings, suppressed := runCheck(t, "goroleak", map[string]string{
		"a.go": `package fixture

func Produce(xs []int) []int {
	ch := make(chan int, len(xs))
	defer close(ch)
	for _, x := range xs {
		ch <- x
	}
	out := make([]int, 0, len(xs))
	go func() {
		for v := range ch {
			out = append(out, v)
		}
	}()
	return out
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- allochot ----------------------------------------------------------

func TestAllochotMakeInLoop(t *testing.T) {
	findings, _ := runCheck(t, "allochot", map[string]string{
		"a.go": `package fixture

func Sum(rows [][]int) int {
	t := 0
	for _, r := range rows {
		buf := make([]int, len(r))
		copy(buf, r)
		t += buf[0]
	}
	return t
}
`,
	})
	wantOne(t, findings, 6, "hoist the buffer")
}

func TestAllochotAppendFromEmpty(t *testing.T) {
	findings, _ := runCheck(t, "allochot", map[string]string{
		"a.go": `package fixture

func Double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
`,
	})
	wantOne(t, findings, 6, "preallocate")
}

func TestAllochotPreallocatedClean(t *testing.T) {
	findings, suppressed := runCheck(t, "allochot", map[string]string{
		"a.go": `package fixture

func Double(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestAllochotSuppressed(t *testing.T) {
	findings, suppressed := runCheck(t, "allochot", map[string]string{
		"a.go": `package fixture

func Headers(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		//lint:allow allochot each header is retained by the caller
		h := make([]byte, 8)
		out = append(out, h)
	}
	return out
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

// --- encdecpair --------------------------------------------------------

func TestEncdecpairMissingMirror(t *testing.T) {
	findings, _ := runCheck(t, "encdecpair", map[string]string{
		"a.go": `package fixture

func CompressBlock(b []byte) []byte {
	return b
}
`,
	})
	wantOne(t, findings, 3, "no mirrored DecompressBlock")
}

func TestEncdecpairBareDecoderFallback(t *testing.T) {
	// A self-describing stream decodes through the package's bare
	// Decompress even when the encoder name is qualified.
	findings, suppressed := runCheck(t, "encdecpair", map[string]string{
		"a.go": `package fixture

func CompressBlock(b []byte) []byte {
	return b
}

func Decompress(b []byte) ([]byte, error) {
	return b, nil
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestEncdecpairWordBoundary(t *testing.T) {
	// Encoder and CompressionRatio are words of their own, not
	// Encode/Compress prefixes.
	findings, suppressed := runCheck(t, "encdecpair", map[string]string{
		"a.go": `package fixture

type Encoder struct{}

func NewEncoder() *Encoder {
	return &Encoder{}
}

func CompressionRatio(raw, packed int) float64 {
	return float64(raw) / float64(packed)
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestEncdecpairOptionsMismatch(t *testing.T) {
	findings, _ := runCheck(t, "encdecpair", map[string]string{
		"a.go": `package fixture

type EncodeOptions struct {
	Level int
	Fast  bool
}

type DecodeOptions struct {
	Level int
}

func EncodeFrame(b []byte, o *EncodeOptions) []byte {
	return b
}

func DecodeFrame(b []byte, o *DecodeOptions) []byte {
	return b
}
`,
	})
	wantOne(t, findings, 12, "field Fast missing on the decode side")
}

func TestEncdecpairMatchingOptionsClean(t *testing.T) {
	findings, suppressed := runCheck(t, "encdecpair", map[string]string{
		"a.go": `package fixture

type FrameOptions struct {
	Level int
}

func EncodeFrame(b []byte, o *FrameOptions) []byte {
	return b
}

func DecodeFrame(b []byte, o *FrameOptions) []byte {
	return b
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- ctxflow -----------------------------------------------------------

func TestCtxflowBareSend(t *testing.T) {
	findings, _ := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(jobs chan int) {
	go func() {
		jobs <- 1
	}()
}
`,
	})
	wantOne(t, findings, 5, "bare channel send")
}

func TestCtxflowSelectOnlySends(t *testing.T) {
	findings, _ := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(a, b chan int) {
	go func() {
		select {
		case a <- 1:
		case b <- 2:
		}
	}()
}
`,
	})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (one per send case): %v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.Message, "only send cases") {
			t.Errorf("message %q missing %q", f.Message, "only send cases")
		}
	}
}

func TestCtxflowStopReceiveClean(t *testing.T) {
	findings, suppressed := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(jobs chan int, stop chan struct{}) {
	go func() {
		select {
		case jobs <- 1:
		case <-stop:
			return
		}
	}()
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestCtxflowDefaultClean(t *testing.T) {
	findings, suppressed := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(results chan int) {
	go func() {
		select {
		case results <- 1:
		default:
		}
	}()
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestCtxflowSendOutsideGoroutineClean(t *testing.T) {
	findings, suppressed := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Feed(jobs chan int) {
	jobs <- 1
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestCtxflowNestedGoIsItsOwnSite(t *testing.T) {
	findings, _ := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(jobs chan int, stop chan struct{}) {
	go func() {
		go func() {
			jobs <- 2
		}()
		select {
		case jobs <- 1:
		case <-stop:
		}
	}()
}
`,
	})
	wantOne(t, findings, 6, "bare channel send")
}

func TestCtxflowSuppressed(t *testing.T) {
	findings, suppressed := runCheck(t, "ctxflow", map[string]string{
		"a.go": `package fixture

func Pool(sem chan struct{}) {
	go func() {
		//lint:allow ctxflow semaphore sized to the pool; send cannot block
		sem <- struct{}{}
	}()
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}
