package lint

import (
	"testing"
)

func graphOf(t *testing.T, src string) (*Module, *callGraph) {
	t.Helper()
	m, err := LoadSources(map[string]string{"a.go": src})
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	return m, m.Graph()
}

func hasEdge(g *callGraph, from, to string) bool {
	for _, e := range g.edges[from] {
		if e == to {
			return true
		}
	}
	return false
}

// Direct method calls produce edges; a method value bound to a variable
// and called through it does not (the callee is a *types.Var at the call
// site) — the graph under-approximates there, which the interprocedural
// layer inherits knowingly.
func TestGraphMethodValues(t *testing.T) {
	_, g := graphOf(t, `package fixture

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func direct(c *counter) {
	c.bump()
}

func viaValue(c *counter) {
	f := c.bump
	f()
}
`)
	bump := "(*fixture.counter).bump"
	if !hasEdge(g, "fixture.direct", bump) {
		t.Errorf("direct method call: no edge fixture.direct -> %s; edges: %v", bump, g.edges["fixture.direct"])
	}
	if hasEdge(g, "fixture.viaValue", bump) {
		t.Errorf("method-value call unexpectedly produced an edge (update this test and the summary-layer docs if the graph learned to track func values)")
	}
}

// An interface-method call expands to every module type implementing the
// interface — the deliberate over-approximation nopanic and the summary
// layer rely on.
func TestGraphInterfaceDispatchOverApproximates(t *testing.T) {
	_, g := graphOf(t, `package fixture

type codec interface {
	Encode([]float64) []byte
}

type fast struct{}

func (fast) Encode(v []float64) []byte { return nil }

type exact struct{}

func (exact) Encode(v []float64) []byte { return nil }

type unrelated struct{}

func (unrelated) Decode(b []byte) []float64 { return nil }

func run(c codec) {
	c.Encode(nil)
}
`)
	for _, want := range []string{"(fixture.fast).Encode", "(fixture.exact).Encode"} {
		if !hasEdge(g, "fixture.run", want) {
			t.Errorf("interface call did not expand to %s; edges: %v", want, g.edges["fixture.run"])
		}
	}
	if hasEdge(g, "fixture.run", "(fixture.unrelated).Decode") {
		t.Error("interface expansion reached a type that does not implement the interface")
	}
}

// Recursion and mutual recursion must not hang the reachability walks, and
// every cycle member must be reachable.
func TestGraphRecursionCycles(t *testing.T) {
	_, g := graphOf(t, `package fixture

func selfRec(n int) int {
	if n == 0 {
		return 0
	}
	return selfRec(n - 1)
}

func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	return ping(n)
}

func Entry(n int) int {
	return selfRec(n) + ping(n)
}
`)
	reach := g.reachableFrom([]string{"fixture.Entry"})
	for _, want := range []string{"fixture.Entry", "fixture.selfRec", "fixture.ping", "fixture.pong"} {
		if !reach[want] {
			t.Errorf("%s not reachable from fixture.Entry", want)
		}
	}
	rev := g.reaches([]string{"fixture.pong"})
	for _, want := range []string{"fixture.pong", "fixture.ping", "fixture.Entry"} {
		if !rev[want] {
			t.Errorf("%s does not reach fixture.pong", want)
		}
	}
	if rev["fixture.selfRec"] {
		t.Error("fixture.selfRec reaches fixture.pong, want no path")
	}
}
