// Package lint is a standard-library-only static-analysis framework with
// domain-specific checks for this repository's compression pipeline. It
// parses and type-checks every package in the module (go/parser + go/types)
// and runs registered checks over the typed ASTs.
//
// The checks encode invariants the paper's guarantee depends on (see
// DESIGN.md §6):
//
//	floatcmp   — no raw ==/!= between floating-point operands in library
//	             code; exact comparisons go through internal/floatbits
//	             helpers so intent is explicit.
//	nopanic    — no panic reachable from decode/decompress entry points;
//	             corrupted input must error, not panic.
//	errdrop    — no silently discarded error returns in library code.
//	logbase    — internal/core's hot paths use base-2 only (math.Log2 /
//	             math.Exp2); Log/Log10/Exp/Pow appear only in the audited
//	             base-study dispatch.
//	benchclock — tests must not assert orderings of wall-clock-derived
//	             durations without a race-detector/CI guard.
//	ctxflow    — goroutine channel sends must select against a
//	             cancellation receive (stop channel, ctx.Done()) or a
//	             default, so worker pools can be torn down.
//	optsflow   — exported entry points accepting a context.Context or
//	             *DecodeLimits must actually use it (thread it into the
//	             shared options core); a dropped parameter silently
//	             voids the caller's cancellation or decode ceiling.
//
// Five further checks run on a per-function dataflow engine (cfg.go): a
// statement-level control-flow graph with reaching definitions and
// forward may/must set analyses:
//
//	intnarrow   — no possibly-truncating integer conversion or over-wide
//	              shift in the bit-level codec packages.
//	decodebound — taint: input-derived values must pass a range guard
//	              before indexing, sizing an allocation, or bounding a
//	              loop in decode paths.
//	goroleak    — WaitGroup Add/Done pairing around every go statement
//	              and close-on-all-paths for ranged channels.
//	allochot    — no per-iteration make()/grow-from-empty append() in
//	              hot codec loops.
//	encdecpair  — every exported Encode/Compress has a mirrored
//	              Decode/Decompress with matching option structs.
//
// Four checks run on the interprocedural summary layer (summary.go,
// interproc.go): per-function taint/provenance summaries propagated
// bottom-up over the call graph with fixed-point iteration:
//
//	limitreach  — allocations sized by decoder input on any call path
//	              from an exported decode entry must pass a DecodeLimits
//	              or range guard first.
//	boundconst  — error bounds reaching the quantizer packages must be
//	              the Lemma-2 tightened value, not raw log2(1+b).
//	purity      — functions invoked from worker pools must not write
//	              package-level state (chunk-order determinism).
//	wrapreach   — narrowing conversions of unvalidated decoder input,
//	              including a callee narrowing what its caller trusts.
//
// Findings can be suppressed with an inline comment on the same line or
// the line above:
//
//	//lint:allow <check>[,<check>...] <one-line justification>
//
// cmd/pwrvet is the command-line front end.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Finding is one reported violation. Interprocedural checks attach the
// witness call chain (entry first, sink last).
type Finding struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
	Chain   []string       `json:"chain,omitempty"`
	// ChainPos carries the witness chain's source positions (entry
	// first, sink last) so a //lint:allow directive can live at any hop
	// of an interprocedural finding — in particular at the seed site
	// (the store or entry that makes the flow real) rather than only at
	// the sink.
	ChainPos []token.Position `json:"-"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Check is one analysis pass over a type-checked package.
type Check interface {
	// Name is the flag/suppression identifier (lower-case, no spaces).
	Name() string
	// Doc is a one-line description shown by pwrvet -list.
	Doc() string
	// Run reports findings for one package unit. Suppression filtering is
	// applied by the framework afterwards.
	Run(pkg *Package) []Finding
}

// AllChecks returns a fresh instance of every registered check, in
// deterministic order.
func AllChecks() []Check {
	return []Check{
		floatcmpCheck{},
		nopanicCheck{},
		errdropCheck{},
		logbaseCheck{},
		benchclockCheck{},
		intnarrowCheck{},
		decodeboundCheck{},
		goroleakCheck{},
		ctxflowCheck{},
		optsflowCheck{},
		allochotCheck{},
		encdecpairCheck{},
		limitreachCheck{},
		boundconstCheck{},
		purityCheck{},
		wrapreachCheck{},
	}
}

// Package is one lint unit: a package's files (plus its in-package test
// files) type-checked together, or an external _test package.
type Package struct {
	// ImportPath is the package's import path; external test packages get
	// a "_test" suffix.
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Module     *Module
}

// Fset returns the module-wide file set.
func (p *Package) Fset() *token.FileSet { return p.Module.Fset }

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Module.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Module is a loaded, type-checked module.
type Module struct {
	// Root is the directory containing go.mod ("" for source fixtures).
	Root string
	// Path is the module path from go.mod.
	Path string
	Fset *token.FileSet
	// Packages are the lint units in deterministic order.
	Packages []*Package

	allowed map[string]map[int][]string // filename -> line -> allowed checks

	graphOnce sync.Once
	graph     *callGraph

	ipOnce sync.Once
	ip     *ipResult

	bcOnce sync.Once
	bc     map[string]*bcSummary

	purityOnce sync.Once
	pur        *purityData

	// prime holds summaries deserialized from an incremental cache
	// (cache.go), consulted by the fixed-point drivers; Stats counts
	// their reuse for -stats reporting.
	prime *primedState
	Stats CacheStats
}

// FindModuleRoot ascends from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and type-checks every package under root (which must
// contain go.mod). Test files are included in each package's unit;
// external _test packages become their own units.
func LoadModule(root string) (*Module, error) {
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := modulePathRe.FindSubmatch(gomod)
	if m == nil {
		return nil, fmt.Errorf("lint: no module path in %s/go.mod", root)
	}
	ld := newLoader(root, string(m[1]))

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := ld.mod.Path
		if rel != "." {
			ip = ld.mod.Path + "/" + filepath.ToSlash(rel)
		}
		if err := ld.addUnits(dir, ip); err != nil {
			return nil, err
		}
	}
	return ld.mod, nil
}

// LoadSources builds a single-package module from in-memory sources,
// keyed by file name; files ending in _test.go are treated as test files.
// Intended for fixture tests.
func LoadSources(files map[string]string) (*Module, error) {
	ld := newLoader("", "fixture")
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var lib, tests []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.mod.Fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ld.recordAllows(name, f)
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			lib = append(lib, f)
		}
	}
	all := append(append([]*ast.File{}, lib...), tests...)
	pkg, info, err := ld.typecheck("fixture", all)
	if err != nil {
		return nil, err
	}
	ld.mod.Packages = append(ld.mod.Packages, &Package{
		ImportPath: "fixture", Files: all, Pkg: pkg, Info: info, Module: ld.mod,
	})
	return ld.mod, nil
}

// Run executes the checks over every package, returning unsuppressed
// findings sorted by position, plus the count of suppressed findings.
// Identical findings (same check, position and message — e.g. one a
// module-wide pass attributes to a package that a per-function pass also
// reported) are collapsed to one.
func (m *Module) Run(checks []Check) (findings []Finding, suppressed int) {
	findings, suppressed, _ = m.RunTimed(checks)
	return findings, suppressed
}

// CheckTime is one check's wall-clock cost over the whole module. The
// lazily built shared analyses (call graph, interprocedural and
// bound-provenance fixpoints) are attributed to whichever check triggers
// them first, in AllChecks order.
type CheckTime struct {
	Name string
	Wall time.Duration
}

// RunTimed is Run with per-check wall-time accounting for -stats.
func (m *Module) RunTimed(checks []Check) (findings []Finding, suppressed int, times []CheckTime) {
	wall := make([]time.Duration, len(checks))
	for _, pkg := range m.Packages {
		for ci, c := range checks {
			start := time.Now()
			fs := c.Run(pkg)
			wall[ci] += time.Since(start)
			for _, f := range fs {
				if m.isAllowed(f) {
					suppressed++
					continue
				}
				findings = append(findings, f)
			}
		}
	}
	for i, c := range checks {
		times = append(times, CheckTime{Name: c.Name(), Wall: wall[i]})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	dedup := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := findings[i-1]
			if p.Check == f.Check && p.File == f.File && p.Line == f.Line &&
				p.Col == f.Col && p.Message == f.Message {
				continue
			}
		}
		dedup = append(dedup, f)
	}
	return dedup, suppressed, times
}

// allowRe matches the suppression directive.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z0-9_,]+)(\s|$)`)

// isAllowed reports whether a //lint:allow directive names the finding's
// check (or "all") at the finding's own line — or at any hop of its
// witness chain, so interprocedural findings can be suppressed where the
// flow starts (the seed store or entry) instead of at every sink it
// reaches.
func (m *Module) isAllowed(f Finding) bool {
	if m.allowedAt(f.Check, f.File, f.Line) {
		return true
	}
	for _, p := range f.ChainPos {
		if m.allowedAt(f.Check, p.Filename, p.Line) {
			return true
		}
	}
	return false
}

// allowedAt reports whether file:line (or the line directly above)
// carries a //lint:allow directive naming check.
func (m *Module) allowedAt(check, file string, line int) bool {
	lines := m.allowed[file]
	for _, l := range []int{line, line - 1} {
		for _, name := range lines[l] {
			if name == check || name == "all" {
				return true
			}
		}
	}
	return false
}

// newFinding builds a Finding at pos.
func (m *Module) newFinding(check string, pos token.Pos, format string, args ...interface{}) Finding {
	p := m.Fset.Position(pos)
	return Finding{
		Check:   check,
		Pos:     p,
		File:    p.Filename,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// --- loading internals -------------------------------------------------

type loader struct {
	mod *Module
	// depCache holds module-internal dependency packages type-checked
	// without test files, as seen by importers.
	depCache map[string]*types.Package
	building map[string]bool
	stdGC    types.Importer
	stdSrc   types.ImporterFrom
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		mod: &Module{
			Root:    root,
			Path:    modPath,
			Fset:    fset,
			allowed: map[string]map[int][]string{},
		},
		depCache: map[string]*types.Package{},
		building: map[string]bool{},
		stdGC:    importer.Default(),
		stdSrc:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer, resolving module-internal paths from
// source and everything else through the toolchain importers.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.depCache[path]; ok {
		return pkg, nil
	}
	if ld.mod.Root != "" &&
		(path == ld.mod.Path || strings.HasPrefix(path, ld.mod.Path+"/")) {
		if ld.building[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		ld.building[path] = true
		defer delete(ld.building, path)
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.mod.Path), "/")
		dir := filepath.Join(ld.mod.Root, filepath.FromSlash(rel))
		lib, _, _, err := ld.parseDir(dir, false)
		if err != nil {
			return nil, err
		}
		if len(lib) == 0 {
			return nil, fmt.Errorf("lint: no buildable Go files for %q in %s", path, dir)
		}
		pkg, _, err := ld.typecheck(path, lib)
		if err != nil {
			return nil, err
		}
		ld.depCache[path] = pkg
		return pkg, nil
	}
	// Standard library (or toolchain-visible) package: prefer compiled
	// export data, fall back to type-checking GOROOT source.
	pkg, err := ld.stdGC.Import(path)
	if err != nil {
		pkg, err = ld.stdSrc.Import(path)
	}
	if err == nil {
		ld.depCache[path] = pkg
	}
	return pkg, err
}

// parseDir parses dir's .go files honoring build constraints, returning
// library files, in-package test files and external (_test package) test
// files.
func (ld *loader) parseDir(dir string, wantTests bool) (lib, tests, xtests []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !wantTests {
			continue
		}
		path := filepath.Join(dir, name)
		f, perr := parser.ParseFile(ld.mod.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		if !buildable(f) {
			continue
		}
		ld.recordAllows(path, f)
		switch {
		case isTest && strings.HasSuffix(f.Name.Name, "_test"):
			xtests = append(xtests, f)
		case isTest:
			tests = append(tests, f)
		default:
			lib = append(lib, f)
		}
	}
	return lib, tests, xtests, nil
}

// addUnits type-checks dir's package (with its in-package tests) and any
// external test package, appending them to the module's lint units.
func (ld *loader) addUnits(dir, importPath string) error {
	lib, tests, xtests, err := ld.parseDir(dir, true)
	if err != nil {
		return err
	}
	if len(lib)+len(tests) > 0 {
		files := append(append([]*ast.File{}, lib...), tests...)
		pkg, info, err := ld.typecheck(importPath, files)
		if err != nil {
			return fmt.Errorf("%s: %w", importPath, err)
		}
		ld.mod.Packages = append(ld.mod.Packages, &Package{
			ImportPath: importPath, Dir: dir, Files: files,
			Pkg: pkg, Info: info, Module: ld.mod,
		})
	}
	if len(xtests) > 0 {
		pkg, info, err := ld.typecheck(importPath+"_test", xtests)
		if err != nil {
			return fmt.Errorf("%s_test: %w", importPath, err)
		}
		ld.mod.Packages = append(ld.mod.Packages, &Package{
			ImportPath: importPath + "_test", Dir: dir, Files: xtests,
			Pkg: pkg, Info: info, Module: ld.mod,
		})
	}
	return nil
}

// typecheck runs go/types over files as package path.
func (ld *loader) typecheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var terrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, err := conf.Check(path, ld.mod.Fset, files, info)
	if len(terrs) > 0 {
		return nil, nil, fmt.Errorf("type errors: %v", terrs[0])
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// recordAllows indexes //lint:allow directives by file and line.
func (ld *loader) recordAllows(filename string, f *ast.File) {
	var lines map[int][]string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			if lines == nil {
				lines = map[int][]string{}
				ld.mod.allowed[filename] = lines
			}
			line := ld.mod.Fset.Position(c.Pos()).Line
			lines[line] = append(lines[line], strings.Split(m[1], ",")...)
		}
	}
}

// buildable evaluates a file's //go:build constraint for the host
// platform with no extra tags (in particular, race is off).
func buildable(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "unix", "cgo":
					return tag != "unix" || unixGOOS[runtime.GOOS]
				}
				return strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}

var unixGOOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true,
	"openbsd": true, "solaris": true, "aix": true, "dragonfly": true,
}
