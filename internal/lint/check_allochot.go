package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allochotCheck flags per-iteration heap allocations inside the loops of
// the hot codec kernels: a make() at loop depth >= 1, and append() into a
// slice that is empty on every path into the loop (classic
// grow-from-nothing, which reallocates log(n) times instead of once).
// Table-V-style throughput depends on the encode/decode inner loops not
// allocating; a finding is fixed by hoisting the buffer or preallocating
// capacity before the loop, or annotated with //lint:allow allochot when
// the loop provably runs O(1) times.
//
// The append rule uses reaching definitions (see cfg.go): the target's
// definitions reaching the append — ignoring the append's own def from
// the previous iteration and other appends to the same slice — must all
// be empty initializers (var decl, nil, empty literal, make with zero
// length and no capacity) for the site to be flagged; any reaching
// definition that preallocates or is unknown clears it.
type allochotCheck struct{}

func (allochotCheck) Name() string { return "allochot" }
func (allochotCheck) Doc() string {
	return "flag per-iteration make() and grow-from-empty append() in hot codec loops"
}

// allochotScope is keyed by package name: the codec kernels and the
// public API package.
var allochotScope = map[string]bool{
	"repro": true, "bitio": true, "huffman": true, "rangecoder": true,
	"zfp": true, "sz": true, "fpzip": true, "isabela": true,
	"quant": true, "predictor": true, "core": true, "grid": true,
	"floatbits": true, "fixture": true,
}

func (allochotCheck) Run(pkg *Package) []Finding {
	if !allochotScope[pkg.Pkg.Name()] {
		return nil
	}
	var out []Finding
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) {
			return
		}
		g := buildCFG(d.Body)
		rd := newReachingDefs(g, pkg.Info, boundaryObjects(pkg.Info, d))
		for _, blk := range g.blocks {
			if blk.loopDepth == 0 {
				continue
			}
			for _, n := range blk.nodes {
				checkMakeInLoop(pkg, n, &out)
				checkAppendGrowth(pkg, rd, blk, n, &out)
			}
		}
	})
	return out
}

// checkMakeInLoop flags make(slice|map|chan, ...) evaluated inside a
// loop body.
func checkMakeInLoop(pkg *Package, n ast.Node, out *[]Finding) {
	inspectEvaluated(n, func(x ast.Node) bool {
		c, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(c.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, builtin := objOf(pkg.Info, id).(*types.Builtin); !builtin {
			return true
		}
		*out = append(*out, pkg.Module.newFinding("allochot", c.Pos(),
			"make() inside a hot loop allocates every iteration; hoist the buffer outside the loop or annotate with //lint:allow allochot if the loop is O(1)"))
		return true
	})
}

// checkAppendGrowth flags x = append(x, ...) in a loop when every
// definition of x reaching the loop is an empty initializer.
func checkAppendGrowth(pkg *Package, rd *reachingDefs, blk *cfgBlock, n ast.Node, out *[]Finding) {
	obj, call := selfAppend(pkg.Info, n)
	if obj == nil {
		return
	}
	sites := rd.defsBefore(blk, n, obj)
	sawEmpty := false
	for _, site := range sites {
		if site.node == n {
			continue // this append's own def from a previous iteration
		}
		if o, _ := selfAppend(pkg.Info, site.node); o == obj {
			continue // another append to the same slice
		}
		switch classifyInit(pkg.Info, site) {
		case initEmpty:
			sawEmpty = true
		default:
			return // preallocated or unknown: not our pattern
		}
	}
	if !sawEmpty {
		return
	}
	*out = append(*out, pkg.Module.newFinding("allochot", call.Pos(),
		"append() in a loop grows %s from empty, reallocating as it goes; preallocate capacity (make(..., 0, n)) before the loop", obj.Name()))
}

// selfAppend matches the statement form x = append(x, ...) and returns
// x's object and the append call.
func selfAppend(info *types.Info, n ast.Node) (types.Object, *ast.CallExpr) {
	a, ok := n.(*ast.AssignStmt)
	if !ok || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return nil, nil
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return nil, nil
	}
	c, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok || len(c.Args) == 0 {
		return nil, nil
	}
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, nil
	}
	if _, builtin := objOf(info, id).(*types.Builtin); !builtin {
		return nil, nil
	}
	lhs, ok := ast.Unparen(a.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	arg0, ok := ast.Unparen(c.Args[0]).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	lo, ao := objOf(info, lhs), objOf(info, arg0)
	if lo == nil || lo != ao {
		return nil, nil
	}
	return lo, c
}

type initKind int

const (
	initUnknown initKind = iota
	initEmpty
)

// classifyInit decides whether a reaching definition leaves the slice
// empty with no preallocated capacity.
func classifyInit(info *types.Info, site *defSite) initKind {
	if site.node == nil {
		return initUnknown // parameter/result: caller decides
	}
	if site.rhs == nil {
		if _, ok := site.node.(*ast.DeclStmt); ok {
			return initEmpty // var x []T
		}
		return initUnknown // multi-value assignment, range binding, ...
	}
	switch rhs := ast.Unparen(site.rhs).(type) {
	case *ast.Ident:
		if rhs.Name == "nil" {
			return initEmpty
		}
	case *ast.CompositeLit:
		if len(rhs.Elts) == 0 {
			return initEmpty
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return initUnknown
		}
		if _, builtin := objOf(info, id).(*types.Builtin); !builtin {
			return initUnknown
		}
		if len(rhs.Args) == 2 {
			// make(T, n): empty only when n is the constant 0 (and then
			// there is no capacity either).
			if v, ok := intConstOf(info, rhs.Args[1]); ok && v == 0 {
				return initEmpty
			}
		}
		// make with a capacity argument (or nonzero length) counts as
		// preallocated.
		return initUnknown
	}
	return initUnknown
}
