package lint

import (
	"go/ast"
	"go/types"
)

// optsflowCheck audits the options plumbing at exported entry points: a
// function that accepts a context.Context or a *DecodeLimits has
// promised its caller cancellation (or a decode ceiling) — if the
// parameter is never referenced in the body, the promise is silently
// broken. The streaming API routes every such knob through the shared
// StreamConfig core (WithContext / WithLimits), so a dropped parameter
// is almost always a wrapper that forgot to thread it through, exactly
// the regression the Ctx-variant collapse could reintroduce.
//
// A parameter named _ is an explicit statement that the value is
// unused and is not flagged; a deliberately ignored named parameter
// (an interface-mandated signature, say) carries //lint:allow optsflow
// with the justification.
type optsflowCheck struct{}

func (optsflowCheck) Name() string { return "optsflow" }
func (optsflowCheck) Doc() string {
	return "flag exported functions whose context.Context or *DecodeLimits parameter is never used (dropped instead of threaded into the options core)"
}

func (optsflowCheck) Run(pkg *Package) []Finding {
	var out []Finding
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) || !d.Name.IsExported() || d.Type.Params == nil {
			return
		}
		for _, field := range d.Type.Params.List {
			t := pkg.Info.Types[field.Type].Type
			kind := ""
			switch {
			case isContextType(t):
				kind = "context.Context"
			case isDecodeLimitsType(t):
				kind = "*DecodeLimits"
			default:
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[name]
				if obj == nil || paramUsed(pkg, d.Body, obj) {
					continue
				}
				out = append(out, pkg.Module.newFinding("optsflow", name.Pos(),
					"exported %s accepts %s %q but never uses it; thread it into the shared options core (WithContext/WithLimits) or the caller's cancellation/ceiling is silently dropped",
					d.Name.Name, kind, name.Name))
			}
		}
	})
	return out
}

// paramUsed reports whether obj is referenced anywhere in body.
func paramUsed(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isDecodeLimitsType reports whether t is a pointer to a named
// DecodeLimits type (matched by name so source fixtures work).
func isDecodeLimitsType(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Name() == "DecodeLimits"
}
