package lint

import (
	"go/ast"
)

// logbaseCheck enforces the paper's base-2 policy (Section IV / Table III)
// inside the transform package: internal/core's forward/inverse mapping
// must use math.Log2 / math.Exp2, whose hardware-friendly implementations
// are why base 2 wins the pre-/post-processing time comparison. Raw
// math.Log, math.Log10, math.Exp and math.Pow may appear only in the
// audited base-study dispatch (Tables II/III compare bases e and 10),
// each annotated with //lint:allow logbase.
type logbaseCheck struct{}

func (logbaseCheck) Name() string { return "logbase" }
func (logbaseCheck) Doc() string {
	return "flag math.Log/Log10/Exp/Pow in the transform hot path (internal/core is base-2 only: Log2/Exp2)"
}

// logbaseScope reports whether the base-2 policy applies to a package.
// Fixture modules (path "fixture") are always in scope so the check is
// testable.
func logbaseScope(importPath string) bool {
	return importPath == "fixture" ||
		importPath == "repro/internal/core"
}

// logbaseBanned are the non-base-2 math functions.
var logbaseBanned = map[string]bool{
	"math.Log":   true,
	"math.Log10": true,
	"math.Exp":   true,
	"math.Pow":   true,
}

func (logbaseCheck) Run(pkg *Package) []Finding {
	if !logbaseScope(pkg.ImportPath) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || !logbaseBanned[fn.FullName()] {
				return true
			}
			out = append(out, pkg.Module.newFinding("logbase", call.Pos(),
				"%s in the transform hot path violates the base-2 policy (Table III); use math.Log2/math.Exp2, or annotate the base-study dispatch with //lint:allow logbase",
				fn.FullName()))
			return true
		})
	}
	return out
}
