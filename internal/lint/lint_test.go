package lint

import (
	"strings"
	"testing"
)

// runCheck loads an in-memory fixture and runs the named check over it.
func runCheck(t *testing.T, check string, files map[string]string) (findings []Finding, suppressed int) {
	t.Helper()
	m, err := LoadSources(files)
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	for _, c := range AllChecks() {
		if c.Name() == check {
			return m.Run([]Check{c})
		}
	}
	t.Fatalf("no check named %q", check)
	return nil, 0
}

// wantOne asserts exactly one unsuppressed finding, on the given line, whose
// message contains substr.
func wantOne(t *testing.T, findings []Finding, line int, substr string) {
	t.Helper()
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Line != line {
		t.Errorf("finding on line %d, want %d: %v", f.Line, line, f)
	}
	if !strings.Contains(f.Message, substr) {
		t.Errorf("message %q does not contain %q", f.Message, substr)
	}
}

func wantClean(t *testing.T, findings []Finding, suppressed, wantSuppressed int) {
	t.Helper()
	if len(findings) != 0 {
		t.Fatalf("got findings, want none: %v", findings)
	}
	if suppressed != wantSuppressed {
		t.Errorf("suppressed = %d, want %d", suppressed, wantSuppressed)
	}
}

func TestFloatcmp(t *testing.T) {
	findings, _ := runCheck(t, "floatcmp", map[string]string{
		"a.go": `package fixture

func Same(a, b float64) bool {
	return a == b
}
`,
	})
	wantOne(t, findings, 4, "floatbits.IsZero")
}

func TestFloatcmpConstantAndNonFloatSkipped(t *testing.T) {
	findings, suppressed := runCheck(t, "floatcmp", map[string]string{
		"a.go": `package fixture

const eps = 1e-9

func Classify(n int) bool {
	if eps == 1e-9 { // both operands constant: exact by definition
		return n == 0
	}
	return false
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestFloatcmpTestFilesExempt(t *testing.T) {
	findings, suppressed := runCheck(t, "floatcmp", map[string]string{
		"a_test.go": `package fixture

import "testing"

func TestExact(t *testing.T) {
	var got, want float64
	if got != want {
		t.Fail()
	}
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestFloatcmpSuppressed(t *testing.T) {
	findings, suppressed := runCheck(t, "floatcmp", map[string]string{
		"a.go": `package fixture

func IsZero(v float64) bool {
	return v == 0 //lint:allow floatcmp exact zero is this helper's contract
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

func TestNopanicReachable(t *testing.T) {
	findings, _ := runCheck(t, "nopanic", map[string]string{
		"a.go": `package fixture

func Decompress(b []byte) byte {
	return first(b)
}

func first(b []byte) byte {
	if len(b) == 0 {
		panic("empty stream")
	}
	return b[0]
}
`,
	})
	wantOne(t, findings, 9, "decode path")
}

func TestNopanicUnreachableFromEntries(t *testing.T) {
	findings, suppressed := runCheck(t, "nopanic", map[string]string{
		"a.go": `package fixture

func Compress(b []byte) []byte {
	if b == nil {
		panic("nil input") // encode side: not a decode entry point
	}
	return b
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestNopanicSuppressedWithInvariant(t *testing.T) {
	findings, suppressed := runCheck(t, "nopanic", map[string]string{
		"a.go": `package fixture

func ReadBits(width uint) uint64 {
	if width > 64 {
		panic("width > 64") //lint:allow nopanic caller invariant, not input-driven
	}
	return 0
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

func TestNopanicInterfaceDispatch(t *testing.T) {
	// A panic inside a concrete implementation must be found through an
	// interface-method call on the decode path.
	findings, _ := runCheck(t, "nopanic", map[string]string{
		"a.go": `package fixture

type source interface {
	next() byte
}

type fixed struct{}

func (fixed) next() byte {
	panic("no more bytes")
}

func Decode(s source) byte {
	return s.next()
}
`,
	})
	wantOne(t, findings, 10, "decode path")
}

func TestErrdrop(t *testing.T) {
	findings, _ := runCheck(t, "errdrop", map[string]string{
		"a.go": `package fixture

import "os"

func Touch(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Close()
}
`,
	})
	wantOne(t, findings, 10, "silently discarded")
}

func TestErrdropExplicitDiscardAndExemptions(t *testing.T) {
	findings, suppressed := runCheck(t, "errdrop", map[string]string{
		"a.go": `package fixture

import (
	"bytes"
	"fmt"
	"os"
)

func Show(path string) {
	fmt.Println("opening", path) // exempt: display output
	var buf bytes.Buffer
	buf.WriteByte('x') // exempt: documented never to fail
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close() // explicit discard is accepted
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestErrdropDefer(t *testing.T) {
	findings, _ := runCheck(t, "errdrop", map[string]string{
		"a.go": `package fixture

import "os"

func Read(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
}
`,
	})
	wantOne(t, findings, 10, "silently discarded")
}

func TestLogbase(t *testing.T) {
	findings, _ := runCheck(t, "logbase", map[string]string{
		"a.go": `package fixture

import "math"

func Forward(v float64) float64 {
	return math.Log(v)
}
`,
	})
	wantOne(t, findings, 6, "base-2 policy")
}

func TestLogbaseBase2AllowedAndSuppression(t *testing.T) {
	findings, suppressed := runCheck(t, "logbase", map[string]string{
		"a.go": `package fixture

import "math"

func Forward(v float64) float64 {
	return math.Log2(v)
}

func baseStudy(v float64) float64 {
	return math.Log10(v) //lint:allow logbase base-study dispatch
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

func TestBenchclock(t *testing.T) {
	findings, _ := runCheck(t, "benchclock", map[string]string{
		"a.go": `package fixture

import "time"

func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`,
		"a_test.go": `package fixture

import "testing"

func TestFaster(t *testing.T) {
	a := measure()
	b := measure()
	if a > b {
		t.Fatal("ordering flipped")
	}
}
`,
	})
	wantOne(t, findings, 8, "non-uniform")
}

func TestBenchclockGuardedAndUntainted(t *testing.T) {
	findings, suppressed := runCheck(t, "benchclock", map[string]string{
		"a.go": `package fixture

import "time"

const RaceEnabled = false

func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`,
		"a_test.go": `package fixture

import (
	"testing"
	"time"
)

func TestGuarded(t *testing.T) {
	if RaceEnabled {
		t.Skip("timing is skewed under the race detector")
	}
	a := measure()
	b := measure()
	if a > b {
		t.Fatal("ordering flipped")
	}
}

func TestThreshold(t *testing.T) {
	// Comparison against a constant bound is not an ordering between
	// two live measurements.
	if measure() > 10*time.Second {
		t.Fatal("way too slow")
	}
}

func TestUntainted(t *testing.T) {
	// No wall-clock taint: durations from pure arithmetic.
	a := time.Duration(3)
	b := time.Duration(5)
	if a > b {
		t.Fatal("math broke")
	}
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

func TestRunSortsAndCountsAcrossChecks(t *testing.T) {
	m, err := LoadSources(map[string]string{
		"a.go": `package fixture

import "math"

func Forward(v float64) float64 {
	if v == 0 {
		return 0
	}
	return math.Log(v)
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	findings, suppressed := m.Run(AllChecks())
	if suppressed != 0 {
		t.Fatalf("suppressed = %d, want 0", suppressed)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if findings[0].Check != "floatcmp" || findings[1].Check != "logbase" {
		t.Fatalf("findings not sorted by position: %v", findings)
	}
	if findings[0].Line >= findings[1].Line {
		t.Fatalf("lines out of order: %v", findings)
	}
}

func TestAllowWildcard(t *testing.T) {
	findings, suppressed := runCheck(t, "floatcmp", map[string]string{
		"a.go": `package fixture

func Same(a, b float64) bool {
	//lint:allow all legacy code pending cleanup
	return a == b
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

func TestFindingString(t *testing.T) {
	findings, _ := runCheck(t, "floatcmp", map[string]string{
		"a.go": "package fixture\n\nfunc Same(a, b float64) bool { return a == b }\n",
	})
	if len(findings) != 1 {
		t.Fatalf("findings: %v", findings)
	}
	s := findings[0].String()
	if !strings.HasPrefix(s, "a.go:3:") || !strings.Contains(s, "[floatcmp]") {
		t.Errorf("String() = %q", s)
	}
}

func TestOptsflowDroppedContext(t *testing.T) {
	findings, _ := runCheck(t, "optsflow", map[string]string{
		"a.go": `package fixture

import "context"

func process() {}

// DecompressCtx promises cancellation but never consults ctx.
func DecompressCtx(ctx context.Context, n int) int {
	process()
	return n
}
`,
	})
	wantOne(t, findings, 8, "never uses it")
}

func TestOptsflowDroppedLimits(t *testing.T) {
	findings, _ := runCheck(t, "optsflow", map[string]string{
		"a.go": `package fixture

type DecodeLimits struct{ MaxElements int64 }

func OpenLimits(buf []byte, lim *DecodeLimits) int {
	return len(buf)
}
`,
	})
	wantOne(t, findings, 5, "*DecodeLimits")
}

func TestOptsflowThreadedAndExemptForms(t *testing.T) {
	findings, suppressed := runCheck(t, "optsflow", map[string]string{
		"a.go": `package fixture

import "context"

type DecodeLimits struct{ MaxElements int64 }

type config struct {
	ctx context.Context
	lim *DecodeLimits
}

// Threaded: both parameters reach the options core.
func DecodeCtx(ctx context.Context, lim *DecodeLimits) config {
	return config{ctx: ctx, lim: lim}
}

// Blank parameter: explicitly unused, not flagged.
func Probe(_ context.Context) {}

// Unexported: internal plumbing is out of scope.
func drop(ctx context.Context) {}

// Audited: interface-mandated signature.
func Shim(ctx context.Context) {} //lint:allow optsflow satisfies handler interface
`,
		"a_test.go": `package fixture

import "context"

// Test files are exempt even for exported helpers.
func HelperForTests(ctx context.Context) {}
`,
	})
	wantClean(t, findings, suppressed, 1)
}
