package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callGraph is a static, name-keyed call graph over every lint unit in the
// module. Nodes are function IDs (types.Func.FullName, stable across the
// per-unit type-check instances); edges are direct calls plus a
// conservative expansion of interface-method calls to every module type
// implementing the interface.
type callGraph struct {
	// edges maps caller ID -> callee IDs.
	edges map[string][]string
	// panics maps the ID of each function containing a panic(...) call to
	// the positions of those calls.
	panics map[string][]token.Pos
	// decls maps function ID -> declaration position (for reporting).
	decls map[string]token.Pos
}

// Graph builds (once) and returns the module's call graph.
func (m *Module) Graph() *callGraph {
	m.graphOnce.Do(func() { m.graph = buildGraph(m) })
	return m.graph
}

// funcID returns the stable identifier for fn.
func funcID(fn *types.Func) string { return fn.FullName() }

func buildGraph(m *Module) *callGraph {
	g := &callGraph{
		edges:  map[string][]string{},
		panics: map[string][]token.Pos{},
		decls:  map[string]token.Pos{},
	}

	// Collect every named type declared in the module, for interface-call
	// expansion.
	var namedTypes []*types.Named
	for _, pkg := range m.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					namedTypes = append(namedTypes, n)
				}
			}
		}
	}

	// expandIface returns the IDs of all module methods that an abstract
	// interface-method call could dispatch to.
	expandIface := func(iface *types.Interface, name string) []string {
		var out []string
		for _, n := range namedTypes {
			if types.IsInterface(n) {
				continue
			}
			impl := types.Implements(n, iface) || types.Implements(types.NewPointer(n), iface)
			if !impl {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, funcID(fn))
			}
		}
		return out
	}

	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				def, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcID(def)
				g.decls[id] = fd.Name.Pos()
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						if fun.Name == "panic" {
							if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
								g.panics[id] = append(g.panics[id], call.Pos())
								return true
							}
						}
						if callee, ok := pkg.Info.Uses[fun].(*types.Func); ok {
							g.edges[id] = append(g.edges[id], funcID(callee))
						}
					case *ast.SelectorExpr:
						callee, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
						if !ok {
							return true
						}
						g.edges[id] = append(g.edges[id], funcID(callee))
						if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
							if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
								g.edges[id] = append(g.edges[id], expandIface(iface, callee.Name())...)
							}
						}
					}
					return true
				})
			}
		}
	}
	return g
}

// reachableFrom returns every node reachable from the given entry IDs
// (including the entries themselves).
func (g *callGraph) reachableFrom(entries []string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string{}, entries...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, g.edges[id]...)
	}
	return seen
}

// reaches returns every node from which some target ID is reachable
// (reverse reachability, including the targets themselves).
func (g *callGraph) reaches(targets []string) map[string]bool {
	rev := map[string][]string{}
	for from, tos := range g.edges {
		for _, to := range tos {
			rev[to] = append(rev[to], from)
		}
	}
	seen := map[string]bool{}
	stack := append([]string{}, targets...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, rev[id]...)
	}
	return seen
}

// shortID trims the module path prefix for readable messages.
func (m *Module) shortID(id string) string {
	return strings.ReplaceAll(id, m.Path+"/", "")
}
