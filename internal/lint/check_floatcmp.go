package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpCheck flags == and != between floating-point operands in
// non-test code. The paper's guarantee rests on carefully placed exact
// comparisons (zero sentinels, bound checks); those must go through the
// named helpers in internal/floatbits (IsZero, Equal) or math.IsNaN so a
// reader can tell a deliberate exact comparison from an accidental one.
type floatcmpCheck struct{}

func (floatcmpCheck) Name() string { return "floatcmp" }
func (floatcmpCheck) Doc() string {
	return "flag ==/!= between floating-point operands in non-test code (use floatbits.IsZero/Equal or math.IsNaN)"
}

func (floatcmpCheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			// Two compile-time constants compare exactly by definition.
			if x.Value != nil && y.Value != nil {
				return true
			}
			out = append(out, pkg.Module.newFinding("floatcmp", be.OpPos,
				"raw floating-point %s comparison; use floatbits.IsZero/floatbits.Equal (or math.IsNaN) to make the exact comparison explicit", be.Op))
			return true
		})
	}
	return out
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
