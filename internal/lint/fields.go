package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Field sensitivity support shared by the taint (summary.go) and
// bound-provenance (check_boundconst.go) layers.
//
// Struct fields are tracked by a module-stable string key
// ("pkgpath.Type.Field") rather than by types.Object: each lint unit is
// type-checked separately, so the same field has one object identity in
// its package's own unit and another in the dependency instance other
// units import. String keys are identical across both.
//
// Within one function the evaluators accumulate flow-insensitive
// per-field masks (a store anywhere in the body reaches a read anywhere
// in the body — fields live in heap objects the engine does not
// disambiguate); the fixed-point drivers reduce each function's field
// writes to a module-global fieldFacts table that every field read
// consults, so a store in one function is visible to reads in every
// other.

// fieldKey builds the stable key for field name of struct type t
// (pointers are dereferenced). Fields of unnamed struct types return ""
// and stay untracked.
func fieldKey(t types.Type, name string) string {
	for {
		t = types.Unalias(t)
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name() + "." + name
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + name
}

// fieldIDOf returns the key of the struct field a selector expression
// reads or writes, or "" when sel is not a field selection. A field
// promoted through embedding is keyed by the outermost named type — one
// key per access path, which is sound for a may-analysis.
func fieldIDOf(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	return fieldKey(s.Recv(), s.Obj().Name())
}

// lhsFieldSel unwraps an assignment target down to the struct-field
// selector whose storage the write lands in (x.f, x.f[i], (*p).f, ...),
// or nil when the target is not a field.
func lhsFieldSel(l ast.Expr) *ast.SelectorExpr {
	for {
		switch e := ast.Unparen(l).(type) {
		case *ast.SelectorExpr:
			return e
		case *ast.IndexExpr:
			l = e.X
		case *ast.SliceExpr:
			l = e.X
		case *ast.StarExpr:
			l = e.X
		default:
			return nil
		}
	}
}

// fieldStores feeds the masks an assignment stores into struct fields to
// record. Field slots are flow-insensitive, so every store is a weak
// (OR) update; compound assignments join their right-hand side like
// plain stores and keep whatever class the field already carried.
func fieldStores(info *types.Info, s maskState, n *ast.AssignStmt, maskOf func(maskState, ast.Expr) uint64, record func(fid string, m uint64, pos token.Pos)) {
	rhsMask := func(i int) uint64 {
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			return maskOf(s, n.Rhs[0])
		}
		if i < len(n.Rhs) {
			return maskOf(s, n.Rhs[i])
		}
		return 0
	}
	for i, l := range n.Lhs {
		sel := lhsFieldSel(l)
		if sel == nil {
			continue
		}
		fid := fieldIDOf(info, sel)
		if fid == "" {
			continue
		}
		if m := rhsMask(i); m != 0 {
			record(fid, m, l.Pos())
		}
	}
}

// compositeFieldStores records the masks a struct composite literal
// stores into its fields (T{F: v} and positional T{v} forms).
func compositeFieldStores(info *types.Info, s maskState, lit *ast.CompositeLit, maskOf func(maskState, ast.Expr) uint64, record func(fid string, m uint64, pos token.Pos)) {
	t := typeOf(info, lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var name string
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			name, val = id.Name, kv.Value
		} else {
			if i >= st.NumFields() {
				break
			}
			name, val = st.Field(i).Name(), elt
		}
		fid := fieldKey(t, name)
		if fid == "" {
			continue
		}
		if m := maskOf(s, val); m != 0 {
			record(fid, m, elt.Pos())
		}
	}
}

// fieldFacts is a module-global field table built by a fixed-point
// driver: for each field key, the joined fact mask stored into it
// anywhere in the module (the seed bit for the taint layer, class bits
// for the bound-provenance layer), plus the first witness store site.
type fieldFacts struct {
	masks map[string]uint64
	sites map[string]*ipSite
}

func newFieldFacts() *fieldFacts {
	return &fieldFacts{masks: map[string]uint64{}, sites: map[string]*ipSite{}}
}

// add joins mask m into fid's fact and reports whether the fact grew.
func (ft *fieldFacts) add(fid string, m uint64, site *ipSite) bool {
	old := ft.masks[fid]
	if old|m == old {
		return false
	}
	ft.masks[fid] = old | m
	if ft.sites[fid] == nil && site != nil {
		ft.sites[fid] = site
	}
	return true
}

// prependChain returns a copy of chain pre with its sink hop linked to
// next (used to graft a field store's witness onto a sink's chain).
func prependChain(pre, next *ipSite) *ipSite {
	if pre == nil {
		return next
	}
	head := &ipSite{fn: pre.fn, pos: pre.pos}
	tail := head
	for p := pre.next; p != nil; p = p.next {
		tail.next = &ipSite{fn: p.fn, pos: p.pos}
		tail = tail.next
	}
	tail.next = next
	return head
}

// cloneMasks / masksEqual support the per-function stabilization loop
// over the flow-insensitive field slots.
func cloneMasks(m map[string]uint64) map[string]uint64 {
	c := make(map[string]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func masksEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
