package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// decodeboundCheck is the taint analysis: in decode-side functions, any
// value derived from the encoded input (bit reads, varints, raw buffer
// bytes) must pass through a guard condition before it is used as a slice
// index, slice bound, make size, or loop bound. DESIGN.md §6's rule is
// that corrupt input must produce a typed error — an unvalidated
// header-derived length that reaches an allocation or an index is either
// a panic or an allocation bomb waiting for a fuzzer.
//
// The analysis is a forward may-taint dataflow over the function's CFG
// (see cfg.go). Seeds are the results of decode-read calls and loads from
// byte slices; every variable mentioned in an if/switch condition is
// considered validated on both branches (the check enforces *that* a
// bound check happens, not that its direction is right — that is what the
// fuzz targets are for). Masking with an untainted operand and remainder
// by an untainted bound also sanitize. Struct fields and closures are not
// tracked (documented limitation); findings there need a manual guard or
// a //lint:allow decodebound annotation.
type decodeboundCheck struct{}

func (decodeboundCheck) Name() string { return "decodebound" }
func (decodeboundCheck) Doc() string {
	return "flag input-derived values used as index/size/bound without a prior range guard in decode paths"
}

// decodeCtxRe names the functions whose bodies consume untrusted encoded
// input.
var decodeCtxRe = regexp.MustCompile(`^(Decompress|decompress|Decode|decode|Parse|parse|Open|open|Read|read|Load|load|Peek|peek|Unmarshal|unmarshal|next|Uvarint|Varint)`)

// seedCallRe names the callee methods/functions whose results carry raw
// decoded input.
var seedCallRe = regexp.MustCompile(`^(Uvarint|Varint|ReadBit|ReadBits|ReadBool|ReadByte|ReadFull|ReadUvarint|ReadVarint|PeekBits|DecodeBits|DecodeSymbol|Uint16|Uint32|Uint64|next)$`)

func (decodeboundCheck) Run(pkg *Package) []Finding {
	var out []Finding
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) || !decodeCtxRe.MatchString(d.Name.Name) {
			return
		}
		g := buildCFG(d.Body)
		ta := &taintState{pkg: pkg, info: pkg.Info}
		in := g.forwardFlow(objSet{}, true, func(b *cfgBlock, s objSet) objSet {
			for _, n := range b.nodes {
				ta.step(s, n, nil)
			}
			return s
		})
		for _, b := range g.reversePostorder() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = s.clone()
			for _, n := range b.nodes {
				ta.step(s, n, &out)
			}
		}
	})
	return out
}

// taintState implements the transfer function and the sink checks.
type taintState struct {
	pkg  *Package
	info *types.Info
}

// step applies node n to taint set s; when report is non-nil it first
// checks n's expressions for sinks using the pre-state.
func (ta *taintState) step(s objSet, n ast.Node, report *[]Finding) {
	switch n := n.(type) {
	case guardCond:
		if report != nil {
			ta.checkSinks(s, n.Expr, report)
		}
		ta.sanitize(s, n.Expr)
	case loopCond:
		if report != nil {
			ta.checkLoopBound(s, n.Expr, report)
			ta.checkSinks(s, n.Expr, report)
		}
		ta.sanitize(s, n.Expr)
	case *ast.AssignStmt:
		if report != nil {
			ta.checkSinks(s, n, report)
		}
		ta.assign(s, n)
	case *ast.DeclStmt:
		if report != nil {
			ta.checkSinks(s, n, report)
		}
		ta.declare(s, n)
	case *ast.RangeStmt:
		if report != nil {
			ta.checkSinks(s, n.X, report)
		}
		ta.rangeBind(s, n)
	default:
		// ExprStmt, IncDecStmt, ReturnStmt, SendStmt, GoStmt,
		// DeferStmt: sinks possible, no taint-state effect.
		if report != nil {
			ta.checkSinks(s, n, report)
		}
	}
}

// sanitize marks every variable the guard expression mentions validated.
func (ta *taintState) sanitize(s objSet, e ast.Expr) {
	inspectNoFuncLit(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := objOf(ta.info, id); o != nil {
				delete(s, o)
			}
		}
		return true
	})
}

// assign transfers an assignment statement.
func (ta *taintState) assign(s objSet, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// x op= y taints x if y is tainted (and keeps x's own taint).
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 && ta.tainted(s, n.Rhs[0]) {
			ta.setLHS(s, n.Lhs[0], true, true)
		}
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value: a call, type assertion, or map read.
		t := ta.tainted(s, n.Rhs[0])
		for _, l := range n.Lhs {
			ta.setLHS(s, l, t, false)
		}
		return
	}
	for i, l := range n.Lhs {
		if i < len(n.Rhs) {
			ta.setLHS(s, l, ta.tainted(s, n.Rhs[i]), false)
		}
	}
}

// setLHS records taint for one assignment target. keep prevents clearing
// an already-tainted target (compound assignment).
func (ta *taintState) setLHS(s objSet, l ast.Expr, tainted, keep bool) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		o := objOf(ta.info, l)
		v, ok := o.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if tainted {
			s[o] = true
		} else if !keep {
			delete(s, o)
		}
	case *ast.IndexExpr:
		// Storing a tainted value into a slice taints the whole slice
		// (weak update).
		if tainted {
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				if o := objOf(ta.info, id); o != nil {
					s[o] = true
				}
			}
		}
	}
}

// declare transfers a var declaration statement.
func (ta *taintState) declare(s objSet, n *ast.DeclStmt) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		for i, name := range vs.Names {
			var t bool
			if len(vs.Values) == len(vs.Names) {
				t = ta.tainted(s, vs.Values[i])
			} else {
				t = ta.tainted(s, vs.Values[0])
			}
			ta.setLHS(s, name, t, false)
		}
	}
}

// rangeBind transfers the binding part of a range statement.
func (ta *taintState) rangeBind(s objSet, n *ast.RangeStmt) {
	t := isByteSeq(typeOf(ta.info, n.X)) || ta.tainted(s, n.X)
	if n.Value != nil {
		ta.setLHS(s, n.Value, t, false)
	}
	if n.Key != nil {
		ta.setLHS(s, n.Key, false, false)
	}
}

// tainted evaluates an expression's taint under state s.
func (ta *taintState) tainted(s objSet, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ta.tainted(s, e.X)
	case *ast.Ident:
		if o := objOf(ta.info, e); o != nil {
			return s[o]
		}
		return false
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return false // boolean results carry no index-range taint
		case token.AND, token.REM:
			// Masking / remainder with an untainted operand bounds the
			// value: sanitized.
			return ta.tainted(s, e.X) && ta.tainted(s, e.Y)
		default:
			return ta.tainted(s, e.X) || ta.tainted(s, e.Y)
		}
	case *ast.UnaryExpr:
		return ta.tainted(s, e.X)
	case *ast.CallExpr:
		if ta.isSeedCall(e) {
			return true
		}
		if len(e.Args) == 1 {
			if tv, ok := ta.info.Types[e.Fun]; ok && tv.IsType() {
				return ta.tainted(s, e.Args[0]) // conversion
			}
		}
		return false // unknown calls: intraprocedural analysis
	case *ast.IndexExpr:
		if isByteSeq(typeOf(ta.info, e.X)) {
			return true // raw load from the encoded buffer
		}
		return ta.tainted(s, e.X)
	case *ast.SliceExpr:
		return ta.tainted(s, e.X)
	case *ast.TypeAssertExpr:
		return ta.tainted(s, e.X)
	}
	return false
}

// isSeedCall reports whether the call reads raw decoded input.
func (ta *taintState) isSeedCall(e *ast.CallExpr) bool {
	if tv, ok := ta.info.Types[e.Fun]; ok && tv.IsType() {
		return false
	}
	switch f := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		return seedCallRe.MatchString(f.Name)
	case *ast.SelectorExpr:
		return seedCallRe.MatchString(f.Sel.Name)
	}
	return false
}

// checkSinks walks node n (without entering closures) and reports tainted
// indexes, slice bounds, and make sizes.
func (ta *taintState) checkSinks(s objSet, n ast.Node, out *[]Finding) {
	inspectNoFuncLit(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IndexExpr:
			if ta.indexable(x.X) && ta.tainted(s, x.Index) {
				*out = append(*out, ta.pkg.Module.newFinding("decodebound", x.Index.Pos(),
					"input-derived value used as index without a prior range guard; corrupt input must error, not panic"))
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
				if b != nil && ta.tainted(s, b) {
					*out = append(*out, ta.pkg.Module.newFinding("decodebound", b.Pos(),
						"input-derived value used as slice bound without a prior range guard"))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := objOf(ta.info, id).(*types.Builtin); isBuiltin {
					for _, a := range x.Args[1:] {
						if ta.tainted(s, a) {
							*out = append(*out, ta.pkg.Module.newFinding("decodebound", a.Pos(),
								"make size comes from unvalidated input: an attacker-chosen length is an allocation bomb; range-check it against the remaining payload first"))
						}
					}
				}
			}
		}
		return true
	})
}

// indexable reports whether indexing e can panic on an out-of-range
// index (slices, arrays, strings — not maps).
func (ta *taintState) indexable(e ast.Expr) bool {
	t := typeOf(ta.info, e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// checkLoopBound flags a for-condition in which some comparison involves
// tainted data and no comparison is bounded purely by untainted terms.
// `for i < n` with header-derived n loops an attacker-chosen number of
// times; `for s < len(t) && cum <= f` stays bounded by len(t) even though
// f is tainted, so it passes.
func (ta *taintState) checkLoopBound(s objSet, cond ast.Expr, out *[]Finding) {
	var cmps []*ast.BinaryExpr
	var flatten func(e ast.Expr)
	flatten = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND, token.LOR:
				flatten(e.X)
				flatten(e.Y)
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
				cmps = append(cmps, e)
			}
		}
	}
	flatten(cond)
	var firstTainted ast.Expr
	anyClean := false
	for _, c := range cmps {
		xt, yt := ta.tainted(s, c.X), ta.tainted(s, c.Y)
		if xt || yt {
			if firstTainted == nil {
				// Anchor the diagnostic at the offending comparison, not
				// the whole (possibly multi-line) condition.
				firstTainted = c
			}
		} else {
			anyClean = true
		}
	}
	if firstTainted != nil && !anyClean {
		*out = append(*out, ta.pkg.Module.newFinding("decodebound", firstTainted.Pos(),
			"loop bound comes from unvalidated input: corrupt input controls the iteration count; guard it against the payload size first"))
	}
}

// isByteSeq reports whether t is a byte slice or byte array.
func isByteSeq(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
