package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// intnarrowCheck flags integer conversions that can silently truncate and
// shifts by amounts at or beyond the operand's width, in the bit-level
// codec packages (bitio, huffman, rangecoder, zfp, floatbits). Lemma 2's
// round-off guarantee survives only if quantization indices and code
// words never lose high bits on their way through the bit stream; a
// narrowing conversion that is actually safe must carry an audited
// //lint:allow intnarrow annotation stating the width invariant.
//
// The check bounds each operand's possible magnitude with a conservative
// "maximum value bits" inference (constants, masks, shifts, remainders
// and nested conversions tighten the bound; anything else falls back to
// the type's width, counting signed types as width-1 value bits), and
// flags a conversion only when the target type cannot represent that
// bound.
type intnarrowCheck struct{}

func (intnarrowCheck) Name() string { return "intnarrow" }
func (intnarrowCheck) Doc() string {
	return "flag possibly-truncating integer conversions and over-wide shifts in bit-level codec packages"
}

// intnarrowScope is keyed by package name: only the packages doing
// bit-level index math are held to this rule.
var intnarrowScope = map[string]bool{
	"bitio": true, "huffman": true, "rangecoder": true,
	"zfp": true, "floatbits": true, "fixture": true,
}

func (c intnarrowCheck) Run(pkg *Package) []Finding {
	if !intnarrowScope[pkg.Pkg.Name()] {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fd := c.checkConversion(pkg, n); fd != nil {
					out = append(out, *fd)
				}
			case *ast.BinaryExpr:
				if fd := c.checkShift(pkg, n); fd != nil {
					out = append(out, *fd)
				}
			}
			return true
		})
	}
	return out
}

// checkConversion flags T(x) when T cannot hold every value x can have.
func (intnarrowCheck) checkConversion(pkg *Package, call *ast.CallExpr) *Finding {
	if len(call.Args) != 1 {
		return nil
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	dst := intValueBits(tv.Type)
	if dst < 0 {
		return nil
	}
	arg := call.Args[0]
	atv, ok := pkg.Info.Types[arg]
	if !ok || atv.Value != nil || intValueBits(atv.Type) < 0 {
		// Non-integer or constant operand: constant overflow is a
		// compile error already.
		return nil
	}
	src := maxBitsOf(pkg.Info, arg)
	if src <= dst {
		return nil
	}
	fd := pkg.Module.newFinding("intnarrow", call.Pos(),
		"conversion to %s may truncate: operand can need %d value bits, %s holds %d; mask the operand or annotate the audited width invariant with //lint:allow intnarrow",
		types.TypeString(tv.Type, types.RelativeTo(pkg.Pkg)), src,
		types.TypeString(tv.Type, types.RelativeTo(pkg.Pkg)), dst)
	return &fd
}

// checkShift flags x << c / x >> c with constant c >= the full bit width
// of x's type (the result is always 0 or the sign fill — almost certainly
// a mis-computed shift distance).
func (intnarrowCheck) checkShift(pkg *Package, e *ast.BinaryExpr) *Finding {
	if e.Op != token.SHL && e.Op != token.SHR {
		return nil
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return nil // constant expression, compiler-checked
	}
	c, ok := intConstOf(pkg.Info, e.Y)
	if !ok {
		return nil
	}
	w := intFullBits(typeOf(pkg.Info, e.X))
	if w < 0 || c < int64(w) {
		return nil
	}
	fd := pkg.Module.newFinding("intnarrow",
		e.OpPos, "shift by %d on a %d-bit operand always yields the fill value", c, w)
	return &fd
}

// --- width inference ---------------------------------------------------

// intValueBits returns the number of value bits type t can represent, or
// -1 when t is not an integer type. Signed types count width-1 bits: a
// conversion that can only be fed non-negative values fitting the value
// bits is safe, anything wider may flip the sign.
func intValueBits(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return -1
	}
	switch b.Kind() {
	case types.Int, types.Int64:
		return 63
	case types.Int32, types.UntypedRune:
		return 31
	case types.Int16:
		return 15
	case types.Int8:
		return 7
	case types.Uint, types.Uint64, types.Uintptr:
		return 64
	case types.Uint32:
		return 32
	case types.Uint16:
		return 16
	case types.Uint8:
		return 8
	case types.UntypedInt:
		return 64
	}
	return -1
}

// intFullBits is the storage width of integer type t (signed included),
// or -1 for non-integers.
func intFullBits(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return -1
	}
	switch b.Kind() {
	case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr:
		return 64
	case types.Int32, types.Uint32, types.UntypedRune:
		return 32
	case types.Int16, types.Uint16:
		return 16
	case types.Int8, types.Uint8:
		return 8
	case types.UntypedInt:
		return 64
	}
	return -1
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isUnsignedInt(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// intConstOf returns e's non-negative integer constant value.
func intConstOf(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int || constant.Sign(v) < 0 {
		return 0, false
	}
	n, exact := constant.Int64Val(v)
	if !exact {
		return 1 << 62, true // huge constant: treat as "very large"
	}
	return n, true
}

// maxBitsOf conservatively bounds the number of value bits expression e
// can need. Masks, right shifts, remainders by constants and nested
// conversions tighten the bound; everything else returns the type width.
func maxBitsOf(info *types.Info, e ast.Expr) int {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		v := constant.ToInt(tv.Value)
		if v.Kind() == constant.Int && constant.Sign(v) >= 0 {
			return constant.BitLen(v)
		}
		return 64
	}
	fallback := func() int {
		if w := intValueBits(typeOf(info, e)); w >= 0 {
			return w
		}
		return 64
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.AND:
			// x & c is in [0, c] for non-negative constant c regardless
			// of x's sign (two's complement); for two unknowns the min
			// rule needs both unsigned.
			if c, ok := intConstOf(info, x.X); ok {
				return minInt(bitLen64(c), maxBitsOf(info, x.Y))
			}
			if c, ok := intConstOf(info, x.Y); ok {
				return minInt(maxBitsOf(info, x.X), bitLen64(c))
			}
			if isUnsignedInt(info, x.X) && isUnsignedInt(info, x.Y) {
				return minInt(maxBitsOf(info, x.X), maxBitsOf(info, x.Y))
			}
		case token.SHR:
			if c, ok := intConstOf(info, x.Y); ok && isUnsignedInt(info, x.X) {
				b := maxBitsOf(info, x.X) - int(minInt64(c, 64))
				if b < 0 {
					b = 0
				}
				return b
			}
		case token.SHL:
			if c, ok := intConstOf(info, x.Y); ok {
				return minInt(fallback(), maxBitsOf(info, x.X)+int(minInt64(c, 64)))
			}
		case token.REM:
			// x % c < c for unsigned x and positive constant c.
			if c, ok := intConstOf(info, x.Y); ok && c > 0 && isUnsignedInt(info, x.X) {
				return minInt(maxBitsOf(info, x.X), bitLen64(c-1))
			}
		case token.OR, token.XOR:
			return minInt(fallback(), maxInt(maxBitsOf(info, x.X), maxBitsOf(info, x.Y)))
		case token.ADD:
			return minInt(fallback(), maxInt(maxBitsOf(info, x.X), maxBitsOf(info, x.Y))+1)
		}
		return fallback()
	case *ast.CallExpr:
		// A nested conversion bounds the value by the intermediate type.
		if len(x.Args) == 1 {
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				if w := intValueBits(tv.Type); w >= 0 {
					inner := maxBitsOf(info, x.Args[0])
					if iw := intValueBits(typeOf(info, x.Args[0])); iw < 0 {
						inner = w // float/string source: only the type bound
					}
					return minInt(w, inner)
				}
			}
		}
		return fallback()
	}
	return fallback()
}

func bitLen64(v int64) int {
	n := 0
	for u := uint64(v); u != 0; u >>= 1 {
		n++
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
