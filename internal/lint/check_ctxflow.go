package lint

import (
	"go/ast"
)

// ctxflowCheck audits cancellation flow at goroutine launch sites: a
// worker goroutine that blocks on a channel send with no escape route
// cannot be torn down when the pipeline fails or its context is
// cancelled — the send blocks forever once the consumer stops receiving,
// and the pool leaks (exactly the shutdown bug the streaming pipeline's
// stop channel exists to prevent).
//
// Two rules, applied to every channel send lexically inside a
// go-statement function literal:
//
//	R1  a bare send statement is flagged: there is no way for
//	    cancellation to reach it.
//	R2  a send that is a select case is flagged when the select has
//	    neither a default case nor any receive case (a stop channel,
//	    ctx.Done(), an error channel): a select of only sends still
//	    blocks forever.
//
// A send on a buffered channel can be legitimately non-blocking by
// construction (a semaphore with capacity == pool size, a result slot
// per worker); such audited sites carry //lint:allow ctxflow with the
// capacity invariant.
type ctxflowCheck struct{}

func (ctxflowCheck) Name() string { return "ctxflow" }
func (ctxflowCheck) Doc() string {
	return "flag goroutine channel sends that select on neither a cancellation receive nor default"
}

func (ctxflowCheck) Run(pkg *Package) []Finding {
	var out []Finding
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) {
			return
		}
		ast.Inspect(d.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				ctxflowSends(pkg, fl.Body, &out)
			}
			// Keep descending: a nested go statement is its own launch
			// site and is visited by this same Inspect.
			return true
		})
	})
	return out
}

// ctxflowSends walks one goroutine body, flagging sends per R1/R2.
// Nested go statements are skipped (they are separate launch sites).
func ctxflowSends(pkg *Package, body *ast.BlockStmt, out *[]Finding) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			escape := false
			for _, c := range n.Body.List {
				switch c.(*ast.CommClause).Comm.(type) {
				case nil: // default case
					escape = true
				case *ast.ExprStmt, *ast.AssignStmt: // receive case
					escape = true
				}
			}
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if send, ok := cc.Comm.(*ast.SendStmt); ok && !escape {
					*out = append(*out, pkg.Module.newFinding("ctxflow", send.Pos(),
						"select has only send cases; add a stop/ctx.Done() receive or a default so cancellation can reach this goroutine"))
				}
				for _, s := range cc.Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.SendStmt:
			*out = append(*out, pkg.Module.newFinding("ctxflow", n.Pos(),
				"goroutine blocks on a bare channel send; select it against a stop/ctx.Done() receive or a default so the pool can be torn down"))
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}
