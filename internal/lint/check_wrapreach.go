package lint

// wrapreachCheck is the interprocedural companion to intnarrow: a
// narrowing integer conversion (typically uint64 → int) fed by decoder
// input that was never range-guarded on the way in — including the case
// where the narrowing happens in a callee that blindly trusts its
// caller, which the per-package intnarrow scope cannot see. The classic
// instance is `int(lengthFromHeader)` going negative for lengths above
// 2^63 and flipping a `>` bounds guard into a pass.
//
// Unlike limitreach, single-function seed events are reported too: the
// width-sensitive intnarrow check only covers the bit-level codec
// packages, so an unguarded narrowing in, say, a header parser is not
// otherwise diagnosed. Packages already under intnarrow's unconditional
// rule are excluded to avoid double findings.
type wrapreachCheck struct{}

func (wrapreachCheck) Name() string { return "wrapreach" }
func (wrapreachCheck) Doc() string {
	return "flag narrowing conversions of unvalidated decoder input across call boundaries (interprocedural intnarrow)"
}

// wrapreachExclude lists the packages whose conversions intnarrow already
// polices unconditionally (taint or not), where a wrapreach finding would
// always be a duplicate.
var wrapreachExclude = map[string]bool{
	"bitio": true, "huffman": true, "rangecoder": true,
	"zfp": true, "floatbits": true,
}

func (wrapreachCheck) Run(pkg *Package) []Finding {
	if wrapreachExclude[pkg.Pkg.Name()] {
		return nil
	}
	r := pkg.Module.interproc()
	var out []Finding
	for _, h := range r.hits(ipNarrow, true) {
		if !pkg.ownsPos(h.sink) {
			continue
		}
		f := pkg.Module.newFinding("wrapreach", h.sink,
			"narrowing conversion of unvalidated decoder input on the path %s; a length above the target width wraps (possibly negative) and defeats later bounds checks — guard the wide value first",
			h.chainPath(pkg.Module))
		h.decorate(&f, pkg.Module)
		out = append(out, f)
	}
	return out
}
