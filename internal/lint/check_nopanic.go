package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// nopanicCheck flags panic(...) calls reachable from decode/decompress
// entry points. DESIGN.md §6's failure-injection rule is "corrupted
// streams must error, not panic": any panic that attacker-controlled
// input can trigger is a denial-of-service bug. Panics that guard
// caller-side invariants (impossible argument values) stay, but each must
// be audited and annotated with //lint:allow nopanic plus a one-line
// invariant statement.
type nopanicCheck struct{}

func (nopanicCheck) Name() string { return "nopanic" }
func (nopanicCheck) Doc() string {
	return "flag panic() reachable from decode/decompress entry points (corrupt input must error, not panic)"
}

// entryRe matches the names of functions that consume untrusted encoded
// input: every decompression, decoding and parsing entry point in the
// module.
var entryRe = regexp.MustCompile(`^(Decompress|Decode|Parse|Read|Peek|Open|Load|Inverse|Unmarshal|Uvarint)`)

func (nopanicCheck) Run(pkg *Package) []Finding {
	// The call graph is module-wide; report only the panic sites whose
	// position falls inside this unit's files so findings stay attributed.
	g := pkg.Module.Graph()
	var entries []string
	for id := range g.decls {
		name := id
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		if entryRe.MatchString(name) {
			entries = append(entries, id)
		}
	}
	reachable := g.reachableFrom(entries)

	var out []Finding
	for id, positions := range g.panics {
		if !reachable[id] {
			continue
		}
		for _, pos := range positions {
			if !pkg.ownsPos(pos) {
				continue
			}
			out = append(out, pkg.Module.newFinding("nopanic", pos,
				"panic reachable from decode path via %s; return an error for corrupt input, or annotate the audited caller invariant with //lint:allow nopanic",
				pkg.Module.shortID(id)))
		}
	}
	return out
}

// ownsPos reports whether pos falls inside one of the unit's files.
// Library files belong to exactly one unit, so this attributes each
// module-wide call-graph position to a single package.
func (p *Package) ownsPos(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
