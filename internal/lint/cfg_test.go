package lint

import (
	"go/ast"
	"go/token"
	"testing"
)

// loadFunc type-checks src as a fixture package and returns the named
// function's declaration together with its package.
func loadFunc(t *testing.T, src, name string) (*Package, *ast.FuncDecl) {
	t.Helper()
	m, err := LoadSources(map[string]string{"a.go": src})
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	pkg := m.Packages[0]
	var fd *ast.FuncDecl
	forEachFuncDecl(pkg, func(_ *ast.File, d *ast.FuncDecl) {
		if d.Name.Name == name {
			fd = d
		}
	})
	if fd == nil {
		t.Fatalf("no function %q in fixture", name)
	}
	return pkg, fd
}

// blockOf returns the block holding a node satisfying pred.
func blockOf(t *testing.T, g *cfg, pred func(ast.Node) bool) *cfgBlock {
	t.Helper()
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if pred(n) {
				return b
			}
		}
	}
	t.Fatal("no block holds the wanted node")
	return nil
}

// incDecOf matches the statement `<name>++` / `<name>--`.
func incDecOf(name string, tok token.Token) func(ast.Node) bool {
	return func(n ast.Node) bool {
		s, ok := n.(*ast.IncDecStmt)
		if !ok || s.Tok != tok {
			return false
		}
		id, ok := s.X.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGLoopDepth(t *testing.T) {
	_, fd := loadFunc(t, `package fixture

func Nested(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t++
		}
		t--
	}
	return t
}
`, "Nested")
	g := buildCFG(fd.Body)

	pre := blockOf(t, g, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Tok != token.DEFINE {
			return false
		}
		id, ok := a.Lhs[0].(*ast.Ident)
		return ok && id.Name == "t"
	})
	inner := blockOf(t, g, incDecOf("t", token.INC))
	outer := blockOf(t, g, incDecOf("t", token.DEC))
	ret := blockOf(t, g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })

	for _, c := range []struct {
		what string
		blk  *cfgBlock
		want int
	}{
		{"pre-loop init", pre, 0},
		{"inner loop body", inner, 2},
		{"outer loop body", outer, 1},
		{"return", ret, 0},
	} {
		if c.blk.loopDepth != c.want {
			t.Errorf("%s: loopDepth = %d, want %d", c.what, c.blk.loopDepth, c.want)
		}
	}
}

func TestCFGReversePostorder(t *testing.T) {
	_, fd := loadFunc(t, `package fixture

func Branch(c bool) int {
	if c {
		return 1
	}
	for i := 0; i < 3; i++ {
		c = !c
	}
	return 0
}
`, "Branch")
	g := buildCFG(fd.Body)
	order := g.reversePostorder()
	if len(order) == 0 || order[0] != g.entry {
		t.Fatalf("reverse postorder must start at entry")
	}
	seen := map[*cfgBlock]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("block %d appears twice in RPO", b.index)
		}
		seen[b] = true
	}
	if !seen[g.exit] {
		t.Errorf("exit block unreachable in RPO")
	}
	// Edge consistency: every successor lists the block as a predecessor.
	for _, b := range g.blocks {
		for _, s := range b.succs {
			found := false
			for _, p := range s.preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("block %d -> %d edge missing the back-reference", b.index, s.index)
			}
		}
	}
}

func TestForwardFlowMayVsMust(t *testing.T) {
	pkg, fd := loadFunc(t, `package fixture

func Branch(c bool) {
	if c {
		println(1)
	} else {
		println(2)
	}
	println(3)
}
`, "Branch")
	g := buildCFG(fd.Body)
	target := boundaryObjects(pkg.Info, fd)[0] // c: any object works as a fact token

	// The transfer establishes the fact only in the block that calls
	// println(1) — i.e. on the then-branch.
	marks := func(b *cfgBlock) bool {
		for _, n := range b.nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == "1" {
				return true
			}
		}
		return false
	}
	transfer := func(b *cfgBlock, s objSet) objSet {
		if marks(b) {
			s[target] = true
		}
		return s
	}

	may := g.forwardFlow(objSet{}, true, transfer)
	must := g.forwardFlow(objSet{}, false, transfer)
	if !may[g.exit][target] {
		t.Errorf("may-analysis should carry a fact established on one branch to exit")
	}
	if must[g.exit][target] {
		t.Errorf("must-analysis must drop a fact established on only one branch")
	}
}

func TestReachingDefsMergeAndBoundary(t *testing.T) {
	pkg, fd := loadFunc(t, `package fixture

func Pick(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`, "Pick")
	g := buildCFG(fd.Body)
	rd := newReachingDefs(g, pkg.Info, boundaryObjects(pkg.Info, fd))

	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	blk := blockOf(t, g, func(n ast.Node) bool { return n == ret })

	// Both definitions of x (the init and the conditional overwrite) reach
	// the return.
	xobj := objOf(pkg.Info, ret.Results[0].(*ast.Ident))
	sites := rd.defsBefore(blk, ret, xobj)
	if len(sites) != 2 {
		t.Fatalf("got %d reaching defs of x at return, want 2", len(sites))
	}
	for _, s := range sites {
		if s.node == nil {
			t.Errorf("x has a boundary definition; it is a local")
		}
	}

	// The parameter keeps its single boundary definition.
	cobj := boundaryObjects(pkg.Info, fd)[0]
	csites := rd.defsBefore(blk, ret, cobj)
	if len(csites) != 1 || csites[0].node != nil {
		t.Errorf("parameter c: got %d defs (nil-node=%v), want the one boundary def",
			len(csites), len(csites) > 0 && csites[0].node == nil)
	}
}

func TestReachingDefsKill(t *testing.T) {
	pkg, fd := loadFunc(t, `package fixture

func Overwrite() int {
	x := 1
	x = 2
	return x
}
`, "Overwrite")
	g := buildCFG(fd.Body)
	rd := newReachingDefs(g, pkg.Info, boundaryObjects(pkg.Info, fd))

	var ret *ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	blk := blockOf(t, g, func(n ast.Node) bool { return n == ret })
	xobj := objOf(pkg.Info, ret.Results[0].(*ast.Ident))
	sites := rd.defsBefore(blk, ret, xobj)
	if len(sites) != 1 {
		t.Fatalf("got %d reaching defs after an unconditional overwrite, want 1", len(sites))
	}
	if lit, ok := sites[0].rhs.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Errorf("surviving def is %v, want the overwrite x = 2", sites[0].rhs)
	}
}
