package lint

import (
	"strings"
	"testing"
)

// Field-sensitivity and closure-analysis fixtures for the summary layer
// (summary.go / fields.go) and its consumers.

// --- boundconst through struct fields ------------------------------------

// The acceptance shape: a raw log2(1+b) bound stored into a struct field
// in one function reaches a quantizer sink through a field read in
// another. The witness chain must include the store site.
func TestBoundconstFieldStoreToSink(t *testing.T) {
	findings, _ := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

type tr struct {
	AbsBound float64
}

func log2(x float64) float64 { return x }

func Forward(b float64) *tr {
	t := &tr{}
	t.AbsBound = log2(1 + b)
	return t
}

func Run(b float64) {
	t := Forward(b)
	Quantize(nil, t.AbsBound)
}

func Quantize(data []float64, bound float64) {}
`,
	})
	wantOne(t, findings, 17, "raw log2(1+b) bound reaches a quantizer sink")
	if len(findings[0].Chain) < 2 {
		t.Errorf("chain has %d hops, want at least 2 (store site + sink): %v",
			len(findings[0].Chain), findings[0].Chain)
	}
}

// A //lint:allow at the seed site — the field store, not the sink —
// suppresses the finding (the chain-site suppression rule).
func TestBoundconstAllowAtStoreSite(t *testing.T) {
	findings, suppressed := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

type tr struct {
	AbsBound float64
}

func log2(x float64) float64 { return x }

func Forward(b float64) *tr {
	t := &tr{}
	//lint:allow boundconst audited: tightening happens at the sink package
	t.AbsBound = log2(1 + b)
	return t
}

func Run(b float64) {
	t := Forward(b)
	Quantize(nil, t.AbsBound)
}

func Quantize(data []float64, bound float64) {}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

// A store through a setter method: the callee's receiver-field write
// translates to the caller's argument mask.
func TestBoundconstFieldStoreViaReceiverMethod(t *testing.T) {
	findings, _ := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

type tr struct {
	AbsBound float64
}

func (t *tr) SetBound(b float64) { t.AbsBound = b }

func log2(x float64) float64 { return x }

func Apply(b float64) {
	t := &tr{}
	t.SetBound(log2(1 + b))
	Quantize(nil, t.AbsBound)
}

func Quantize(data []float64, bound float64) {}
`,
	})
	wantOne(t, findings, 14, "raw log2(1+b) bound")
}

// A store via composite literal: tr{AbsBound: log2(1+b)}.
func TestBoundconstFieldStoreViaCompositeLit(t *testing.T) {
	findings, _ := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

type tr struct {
	AbsBound float64
}

func log2(x float64) float64 { return x }

func Build(b float64) {
	t := tr{AbsBound: log2(1 + b)}
	Quantize(nil, t.AbsBound)
}

func Quantize(data []float64, bound float64) {}
`,
	})
	wantOne(t, findings, 11, "raw log2(1+b) bound")
}

// The tightened value stored into a field stays clean: subtraction before
// the store classifies the field TIGHT, not RAW.
func TestBoundconstTightenedFieldClean(t *testing.T) {
	findings, suppressed := runCheck(t, "boundconst", map[string]string{
		"a.go": `package fixture

type tr struct {
	AbsBound float64
}

func log2(x float64) float64 { return x }

func Forward(b, margin float64) *tr {
	t := &tr{}
	t.AbsBound = log2(1+b) - margin
	return t
}

func Run(b float64) {
	t := Forward(b, 1e-9)
	Quantize(nil, t.AbsBound)
}

func Quantize(data []float64, bound float64) {}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- limitreach through struct fields ------------------------------------

// A length parsed into a header field in the entry taints an allocation
// sized by a read of that field in a callee.
func TestLimitreachFieldCarriedLength(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

type header struct {
	N int
}

func Decode(buf []byte) []byte {
	h := &header{}
	h.N = int(buf[0])
	return alloc(h)
}

func alloc(h *header) []byte {
	return make([]byte, h.N)
}
`,
	})
	wantOne(t, findings, 14, "allocation size derives from decoder input")
}

// A //lint:allow at an intermediate chain hop (the entry's call site)
// suppresses an interprocedural finding reported at the sink.
func TestLimitreachAllowAtChainHop(t *testing.T) {
	findings, suppressed := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func DecompressStream(buf []byte) []float64 {
	n := int(buf[0])
	//lint:allow limitreach audited: n is bounded by the framing layer
	return readBody(buf, n)
}

func readBody(buf []byte, n int) []float64 {
	return grow(n)
}

func grow(n int) []float64 {
	return make([]float64, n)
}
`,
	})
	wantClean(t, findings, suppressed, 1)
}

// --- closures -------------------------------------------------------------

// A func literal handed to pool-style plumbing is analyzed inline: the
// captured tainted length sizing a make inside the literal is the
// enclosing entry's event.
func TestLimitreachClosureCapturedLength(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func runPool(f func()) { f() }

func Decompress(buf []byte) []byte {
	n := int(buf[0])
	var out []byte
	runPool(func() {
		out = make([]byte, n)
	})
	return out
}
`,
	})
	wantOne(t, findings, 9, "allocation size derives from decoder input")
}

// Field taint read through a captured struct pointer inside a worker
// literal: the field store in the entry reaches the closure's make.
func TestLimitreachClosureCapturedFieldTaint(t *testing.T) {
	findings, _ := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

type header struct {
	N int
}

func runPool(f func()) { f() }

func Decode(buf []byte) []byte {
	h := &header{}
	h.N = int(buf[0])
	var out []byte
	runPool(func() {
		out = make([]byte, h.N)
	})
	return out
}
`,
	})
	wantOne(t, findings, 14, "allocation size derives from decoder input")
}

// A guard inside the literal sanitizes the captured variable for the
// literal's own body.
func TestLimitreachClosureGuardedClean(t *testing.T) {
	findings, suppressed := runCheck(t, "limitreach", map[string]string{
		"a.go": `package fixture

func runPool(f func()) { f() }

func Decompress(buf []byte) []byte {
	n := int(buf[0])
	var out []byte
	runPool(func() {
		if n > 1024 {
			return
		}
		out = make([]byte, n)
	})
	return out
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}

// --- purity closures ------------------------------------------------------

// A pool-run literal writing package-level state is reported directly,
// naming the enclosing function and the pool callee.
func TestPurityClosureWritesPackageState(t *testing.T) {
	findings, _ := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

var counter int

func runPool(fns ...func()) {}

func Process() {
	runPool(func() {
		counter++
	})
}
`,
	})
	wantOne(t, findings, 9, "func literal in fixture.Process runs on a worker pool (runPool)")
	if !strings.Contains(findings[0].Message, "counter") {
		t.Errorf("message %q does not name the written variable", findings[0].Message)
	}
}

// A literal that only writes captured locals stays clean.
func TestPurityClosureLocalWritesClean(t *testing.T) {
	findings, suppressed := runCheck(t, "purity", map[string]string{
		"a.go": `package fixture

func runPool(fns ...func()) {}

func Process(out []float64) {
	sum := 0.0
	runPool(func() {
		sum += 1
		out[0] = sum
	})
}
`,
	})
	wantClean(t, findings, suppressed, 0)
}
