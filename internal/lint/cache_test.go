package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Cache round-trip tests over a real on-disk module (HashTree and
// LoadModule share the same walk, so fixtures must live on disk).

const cacheFixtureA = `package cachefix

func Decompress(buf []byte) []float64 {
	n := int(buf[0])
	return grow(n)
}

func grow(n int) []float64 {
	return make([]float64, n)
}
`

const cacheFixtureB = `package cachefix

func DecodeAll(buf []byte) []byte {
	m := int(buf[1])
	return out(m)
}

func out(m int) []byte {
	return make([]byte, m)
}
`

func writeCacheFixture(t *testing.T, root, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func sameFindings(t *testing.T, got, want []Finding, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d findings, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Check != w.Check || g.File != w.File || g.Line != w.Line ||
			g.Col != w.Col || g.Message != w.Message {
			t.Errorf("%s: finding %d differs\ngot:  %v\nwant: %v", label, i, g, w)
		}
	}
}

func TestCacheRoundTripAndWarmRun(t *testing.T) {
	root := t.TempDir()
	writeCacheFixture(t, root, "go.mod", "module cachefix\n\ngo 1.22\n")
	writeCacheFixture(t, root, "a.go", cacheFixtureA)

	checks := AllChecks()
	names := make([]string, 0, len(checks))
	for _, c := range checks {
		names = append(names, c.Name())
	}

	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cold, coldSup := mod.Run(checks)
	if len(cold) == 0 {
		t.Fatal("fixture produced no findings; the equality checks below would be vacuous")
	}

	files, err := HashTree(root)
	if err != nil {
		t.Fatalf("HashTree: %v", err)
	}
	path := filepath.Join(root, "cache.json")
	if err := WriteCacheFile(path, mod.BuildCache(files, names, cold, coldSup)); err != nil {
		t.Fatalf("WriteCacheFile: %v", err)
	}
	cache, err := LoadCacheFile(path)
	if err != nil {
		t.Fatalf("LoadCacheFile: %v", err)
	}
	if d := DiffFiles(cache.Files, files); len(d) != 0 {
		t.Fatalf("manifest did not round-trip, diff %v", d)
	}
	if len(cache.Findings) != len(cold) {
		t.Fatalf("cache replay state has %d findings, want %d", len(cache.Findings), len(cold))
	}
	for i, f := range cache.Findings {
		if filepath.IsAbs(f.File) {
			t.Errorf("cached finding %d has absolute path %q, want module-relative", i, f.File)
		}
		if f.Message != cold[i].Message {
			t.Errorf("cached finding %d message %q, want %q", i, f.Message, cold[i].Message)
		}
	}

	// Warm run, nothing changed: every summary primes, results identical.
	mod2, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(2): %v", err)
	}
	mod2.ApplyCache(cache, nil)
	warm, warmSup := mod2.Run(checks)
	sameFindings(t, warm, cold, "warm-unchanged")
	if warmSup != coldSup {
		t.Errorf("warm suppressed = %d, want %d", warmSup, coldSup)
	}
	if mod2.Stats.FuncsReused == 0 || mod2.Stats.FuncsReused != mod2.Stats.FuncsTotal {
		t.Errorf("unchanged warm run reused %d/%d summaries, want full reuse",
			mod2.Stats.FuncsReused, mod2.Stats.FuncsTotal)
	}

	// Add a file: the old summaries stay valid, the new entry's finding
	// appears, and the warm result equals a cold run over the new tree.
	writeCacheFixture(t, root, "b.go", cacheFixtureB)
	files3, err := HashTree(root)
	if err != nil {
		t.Fatalf("HashTree(3): %v", err)
	}
	changed := DiffFiles(cache.Files, files3)
	if len(changed) != 1 || changed[0] != "b.go" {
		t.Fatalf("diff after adding b.go = %v, want [b.go]", changed)
	}
	mod3, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(3): %v", err)
	}
	mod3.ApplyCache(cache, changed)
	warm3, warm3Sup := mod3.Run(checks)
	if mod3.Stats.FuncsReused == 0 {
		t.Error("warm run after adding a file reused no summaries")
	}
	mod4, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(4): %v", err)
	}
	cold3, cold3Sup := mod4.Run(checks)
	sameFindings(t, warm3, cold3, "warm-vs-cold after add")
	if warm3Sup != cold3Sup {
		t.Errorf("warm suppressed = %d, want %d", warm3Sup, cold3Sup)
	}
	if len(cold3) <= len(cold) {
		t.Errorf("adding b.go did not add findings (%d -> %d); warm path untested for new code",
			len(cold), len(cold3))
	}

	// Modify a.go so the finding disappears (guard added): stale summaries
	// must not resurrect it.
	writeCacheFixture(t, root, "a.go", `package cachefix

func Decompress(buf []byte) []float64 {
	n := int(buf[0])
	if err := checkElements(n); err != nil {
		return nil
	}
	return grow(n)
}

func checkElements(n int) error { return nil }

func grow(n int) []float64 {
	return make([]float64, n)
}
`)
	files5, err := HashTree(root)
	if err != nil {
		t.Fatalf("HashTree(5): %v", err)
	}
	mod5, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(5): %v", err)
	}
	mod5.ApplyCache(cache, DiffFiles(cache.Files, files5))
	warm5, _ := mod5.Run(checks)
	mod6, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(6): %v", err)
	}
	cold5, _ := mod6.Run(checks)
	sameFindings(t, warm5, cold5, "warm-vs-cold after guard fix")
	for _, f := range warm5 {
		if f.Check == "limitreach" && filepath.Base(f.File) == "a.go" {
			t.Errorf("stale cached finding survived the guard fix: %v", f)
		}
	}
}

func TestCacheSchemaMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(`{"schema":"pwrvet-cache-v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCacheFile(path); err == nil {
		t.Error("LoadCacheFile accepted a wrong schema, want error")
	}
}

func TestJSONMaskRoundTripsHighBits(t *testing.T) {
	// 1<<63 | 1<<62 | 1 exceeds float64 integer precision; a plain JSON
	// number would corrupt it.
	for _, v := range []uint64{0, 1, 1<<62 | 1, 1<<63 | 1<<62 | 1, ^uint64(0)} {
		b, err := json.Marshal(jsonMask(v))
		if err != nil {
			t.Fatalf("marshal %d: %v", v, err)
		}
		var back jsonMask
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if uint64(back) != v {
			t.Errorf("mask %d round-tripped to %d via %s", v, back, b)
		}
	}
}

func TestHashTreeSkipsUntrackedDirs(t *testing.T) {
	root := t.TempDir()
	writeCacheFixture(t, root, "go.mod", "module cachefix\n")
	writeCacheFixture(t, root, "a.go", "package cachefix\n")
	for _, d := range []string{"testdata", "vendor", ".git", "_scratch"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
		writeCacheFixture(t, root, filepath.Join(d, "x.go"), "package x\n")
	}
	files, err := HashTree(root)
	if err != nil {
		t.Fatalf("HashTree: %v", err)
	}
	if len(files) != 2 {
		t.Errorf("manifest = %v, want only go.mod and a.go", files)
	}
}
