package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow engine behind the flow-sensitive checks
// (intnarrow, decodebound, goroleak, allochot): a per-function
// control-flow graph at statement granularity over go/ast, plus two
// generic solvers — an iterative forward set analysis (may or must) and
// reaching definitions. Everything is intraprocedural and deliberately
// conservative: function literals are opaque to the graph (their bodies
// are not split into blocks), goto is approximated as "may reach exit",
// and a switch fallthrough ends its case at the join like a normal case.

// guardCond wraps the condition of an if statement, a switch tag, or a
// case expression. Its presence in a block means execution of the block's
// successors is conditional on the expression; the taint analysis treats
// every variable the guard mentions as validated on both branches.
type guardCond struct{ ast.Expr }

// loopCond wraps a for-statement condition. Unlike guardCond it is a
// taint sink first (decodebound flags unvalidated loop bounds) and a
// sanitizer second.
type loopCond struct{ ast.Expr }

// cfgBlock is a basic block: a straight-line sequence of statement-level
// nodes. Besides ordinary ast.Stmt values a block can hold guardCond and
// loopCond wrappers and, for range loops, the *ast.RangeStmt itself
// (meaning "evaluate the range operands and bind key/value" — its Body is
// in successor blocks, so walkers must not descend into it).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
	// loopDepth is the number of enclosing loops; blocks executed once
	// per iteration (header, body, latch) count the loop, the after
	// block does not.
	loopDepth int
}

// cfg is one function body's control-flow graph.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type branchFrame struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select frames
}

type cfgBuilder struct {
	g         *cfg
	cur       *cfgBlock
	depth     int
	frames    []branchFrame
	nextLabel string
}

// buildCFG constructs the control-flow graph of a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmt(body)
	b.edge(b.cur, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock { return b.newBlockAt(b.depth) }

func (b *cfgBuilder) newBlockAt(depth int) *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks), loopDepth: depth}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.nodes = append(b.cur.nodes, n) }

// takeLabel consumes the pending label from an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// findFrame resolves a break/continue target; label may be nil.
func (b *cfgBuilder) findFrame(label *ast.Ident, needContinue bool) *branchFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(guardCond{s.Cond})
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlockAt(b.depth + 1)
		b.edge(b.cur, header)
		if s.Cond != nil {
			header.nodes = append(header.nodes, loopCond{s.Cond})
		}
		after := b.newBlockAt(b.depth)
		latch := b.newBlockAt(b.depth + 1)
		if s.Post != nil {
			latch.nodes = append(latch.nodes, s.Post)
		}
		b.edge(latch, header)
		if s.Cond != nil {
			b.edge(header, after)
		}
		body := b.newBlockAt(b.depth + 1)
		b.edge(header, body)
		b.cur = body
		b.depth++
		b.frames = append(b.frames, branchFrame{label: label, breakTo: after, continueTo: latch})
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.depth--
		b.edge(b.cur, latch)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlockAt(b.depth + 1)
		b.edge(b.cur, header)
		header.nodes = append(header.nodes, s)
		after := b.newBlockAt(b.depth)
		b.edge(header, after)
		body := b.newBlockAt(b.depth + 1)
		b.edge(header, body)
		b.cur = body
		b.depth++
		b.frames = append(b.frames, branchFrame{label: label, breakTo: after, continueTo: header})
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.depth--
		b.edge(b.cur, header)
		b.cur = after
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(guardCond{s.Tag})
		}
		condBlk := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, branchFrame{label: label, breakTo: join})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(condBlk, blk)
			b.cur = blk
			for _, e := range cc.List {
				b.add(guardCond{e})
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !hasDefault {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		condBlk := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, branchFrame{label: label, breakTo: join})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(condBlk, blk)
			b.cur = blk
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !hasDefault {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.SelectStmt:
		label := b.takeLabel()
		condBlk := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, branchFrame{label: label, breakTo: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(condBlk, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			b.edge(condBlk, join)
		}
		b.cur = join
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = b.newBlock()
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.cur, f.breakTo)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.cur, f.continueTo)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			// Conservative: a goto may reach anywhere; treat as exiting.
			b.edge(b.cur, b.g.exit)
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Approximated: the case ends at the switch join like any
			// other. Fallthrough is not used in this module's code.
		}
	case nil, *ast.EmptyStmt:
		// nothing
	default:
		// Leaf statements: assignments, declarations, expression
		// statements, inc/dec, send, defer, go. Stored whole.
		b.add(s)
	}
}

// reversePostorder returns the blocks reachable from entry in reverse
// postorder — the natural iteration order for a forward analysis.
func (g *cfg) reversePostorder() []*cfgBlock {
	seen := make([]bool, len(g.blocks))
	var order []*cfgBlock
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		seen[b.index] = true
		for _, s := range b.succs {
			if !seen[s.index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// --- forward set analysis ---------------------------------------------

// objSet is the lattice element of the simple solvers: a set of variables
// (tainted variables, available facts, ...).
type objSet map[types.Object]bool

func (s objSet) clone() objSet {
	c := make(objSet, len(s))
	for o := range s {
		c[o] = true
	}
	return c
}

func (s objSet) equal(t objSet) bool {
	if len(s) != len(t) {
		return false
	}
	for o := range s {
		if !t[o] {
			return false
		}
	}
	return true
}

// forwardFlow runs an iterative forward dataflow analysis to fixpoint and
// returns each reachable block's entry state. boundary is the entry
// block's state. If union is true the join is set-union (may-analysis);
// otherwise it is intersection over already-computed predecessors
// (optimistic must-analysis). transfer receives a private copy of the
// entry state and returns the exit state; it must be monotone or the
// iteration may not terminate.
func (g *cfg) forwardFlow(boundary objSet, union bool, transfer func(b *cfgBlock, in objSet) objSet) map[*cfgBlock]objSet {
	rpo := g.reversePostorder()
	in := map[*cfgBlock]objSet{}
	out := map[*cfgBlock]objSet{}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			var s objSet
			if blk == g.entry {
				s = boundary.clone()
			} else {
				first := true
				for _, p := range blk.preds {
					po, ok := out[p]
					if !ok {
						continue
					}
					if first {
						s = po.clone()
						first = false
					} else if union {
						for o := range po {
							s[o] = true
						}
					} else {
						for o := range s {
							if !po[o] {
								delete(s, o)
							}
						}
					}
				}
				if s == nil {
					s = objSet{}
				}
			}
			prev, seen := in[blk]
			if seen && prev.equal(s) {
				continue
			}
			in[blk] = s
			out[blk] = transfer(blk, s.clone())
			changed = true
		}
	}
	return in
}

// --- reaching definitions ---------------------------------------------

// defSite is one definition of a local variable. node == nil marks the
// boundary definition (parameter, receiver, named result). rhs is the
// assigned expression when the assignment is syntactically one-to-one,
// else nil (multi-value assignments, range bindings, inc/dec).
type defSite struct {
	obj  types.Object
	node ast.Node
	rhs  ast.Expr
}

// defState maps each variable to the set of its reaching definitions.
type defState map[types.Object]map[*defSite]bool

func (s defState) clone() defState {
	c := make(defState, len(s))
	for o, sites := range s {
		m := make(map[*defSite]bool, len(sites))
		for site := range sites {
			m[site] = true
		}
		c[o] = m
	}
	return c
}

func (s defState) equal(t defState) bool {
	if len(s) != len(t) {
		return false
	}
	for o, sites := range s {
		ts, ok := t[o]
		if !ok || len(ts) != len(sites) {
			return false
		}
		for site := range sites {
			if !ts[site] {
				return false
			}
		}
	}
	return true
}

// reachingDefs is the classic gen/kill reaching-definitions analysis over
// a function's CFG, tracking only simple local variables (assignments
// through pointers, fields or indexing do not kill).
type reachingDefs struct {
	g     *cfg
	info  *types.Info
	sites map[ast.Node][]*defSite
	in    map[*cfgBlock]defState
}

// newReachingDefs builds and solves reaching definitions. boundary lists
// the variables defined at function entry (parameters, receiver, named
// results).
func newReachingDefs(g *cfg, info *types.Info, boundary []types.Object) *reachingDefs {
	rd := &reachingDefs{g: g, info: info, sites: map[ast.Node][]*defSite{}}
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if defs := rd.collectDefs(n); len(defs) > 0 {
				rd.sites[n] = defs
			}
		}
	}
	entryState := defState{}
	for _, o := range boundary {
		entryState[o] = map[*defSite]bool{{obj: o}: true}
	}

	rpo := g.reversePostorder()
	in := map[*cfgBlock]defState{}
	out := map[*cfgBlock]defState{}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			var s defState
			if blk == g.entry {
				s = entryState.clone()
			} else {
				s = defState{}
				for _, p := range blk.preds {
					po, ok := out[p]
					if !ok {
						continue
					}
					for o, sites := range po {
						m := s[o]
						if m == nil {
							m = map[*defSite]bool{}
							s[o] = m
						}
						for site := range sites {
							m[site] = true
						}
					}
				}
			}
			prev, seen := in[blk]
			if seen && prev.equal(s) {
				continue
			}
			in[blk] = s
			o := s.clone()
			for _, n := range blk.nodes {
				rd.apply(o, n)
			}
			out[blk] = o
			changed = true
		}
	}
	rd.in = in
	return rd
}

// collectDefs returns the definitions a stored CFG node generates.
func (rd *reachingDefs) collectDefs(n ast.Node) []*defSite {
	var defs []*defSite
	addIdent := func(e ast.Expr, rhs ast.Expr, node ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := rd.info.Defs[id]
		if obj == nil {
			obj = rd.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			defs = append(defs, &defSite{obj: obj, node: node, rhs: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if oneToOne {
				rhs = n.Rhs[i]
			}
			addIdent(lhs, rhs, n)
		}
	case *ast.IncDecStmt:
		addIdent(n.X, nil, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			oneToOne := len(vs.Values) == len(vs.Names)
			for i, name := range vs.Names {
				var rhs ast.Expr
				if oneToOne {
					rhs = vs.Values[i]
				}
				addIdent(name, rhs, n)
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			addIdent(n.Key, nil, n)
		}
		if n.Value != nil {
			addIdent(n.Value, nil, n)
		}
	}
	return defs
}

// apply mutates s with node n's gen/kill effect.
func (rd *reachingDefs) apply(s defState, n ast.Node) {
	for _, site := range rd.sites[n] {
		s[site.obj] = map[*defSite]bool{site: true}
	}
}

// defsBefore returns the definitions of obj that reach the program point
// just before target, which must be a node of block blk. It returns nil
// when the block is unreachable.
func (rd *reachingDefs) defsBefore(blk *cfgBlock, target ast.Node, obj types.Object) []*defSite {
	entry, ok := rd.in[blk]
	if !ok {
		return nil
	}
	s := entry.clone()
	for _, n := range blk.nodes {
		if n == target {
			break
		}
		rd.apply(s, n)
	}
	var out []*defSite
	for site := range s[obj] {
		out = append(out, site)
	}
	return out
}

// --- shared helpers ----------------------------------------------------

// boundaryObjects returns the variables live at function entry: the
// receiver, parameters, and named results.
func boundaryObjects(info *types.Info, d *ast.FuncDecl) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					out = append(out, o)
				}
			}
		}
	}
	addFields(d.Recv)
	addFields(d.Type.Params)
	addFields(d.Type.Results)
	return out
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// function literal bodies — the engine treats closures as opaque.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}

// unwrapCond strips the guardCond/loopCond wrappers so a node can be
// walked with ast.Inspect (which rejects foreign node types).
func unwrapCond(n ast.Node) ast.Node {
	switch n := n.(type) {
	case guardCond:
		return n.Expr
	case loopCond:
		return n.Expr
	}
	return n
}

// inspectEvaluated walks the expressions node n itself evaluates:
// guard/loop condition wrappers are unwrapped, a stored *ast.RangeStmt
// contributes only its range operand (its body lives in successor
// blocks), and function literal bodies are skipped.
func inspectEvaluated(n ast.Node, fn func(ast.Node) bool) {
	n = unwrapCond(n)
	if r, ok := n.(*ast.RangeStmt); ok {
		inspectNoFuncLit(r.X, fn)
		return
	}
	inspectNoFuncLit(n, fn)
}

// forEachFuncDecl invokes fn for every function or method declaration
// with a body in the package, together with its enclosing file.
func forEachFuncDecl(p *Package, fn func(f *ast.File, d *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if d, ok := decl.(*ast.FuncDecl); ok && d.Body != nil {
				fn(f, d)
			}
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
