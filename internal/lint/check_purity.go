package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// purityCheck guards chunk-order determinism: a function invoked from a
// parallel/stream worker pool (a `go` statement's closure, or a function
// value handed to a pool runner like runPool) must not write
// package-level state. Workers execute chunks in whatever order the
// scheduler picks; a shared-state write makes the output — or worse, the
// compressed bytes — depend on that order, breaking the "same input,
// same archive" property the round-trip and fault-injection suites rely
// on. Writes to locals, parameters and by-index writes into a results
// slice the caller owns are fine; package-level variables are not.
//
// Worker roots are collected syntactically (go statements and func-typed
// arguments to pool-like callees), then expanded over the module call
// graph. Closure bodies are checked directly: a func literal handed to a
// pool runner (or launched by a go statement) is itself worker code, so
// its package-level writes are findings in their own right — attributed
// to the enclosing function, with the pool callee named as the root.
type purityCheck struct{}

func (purityCheck) Name() string { return "purity" }
func (purityCheck) Doc() string {
	return "flag package-level state writes in functions reachable from parallel/stream worker pools (chunk-order determinism)"
}

// purityPoolRe names the callees whose function-typed arguments run on a
// worker pool.
var purityPoolRe = regexp.MustCompile(`(?i)pool|parallel|worker`)

// purityClosureHit is one package-level write inside a worker closure.
type purityClosureHit struct {
	pos       token.Pos
	enclosing string // funcID of the function the literal appears in
	root      string // pool callee base name or "go statement"
	varName   string
}

// purityData is the module-wide analysis, built once.
type purityData struct {
	// workerOf maps each worker-reachable function to a witness root.
	workerOf map[string]string
	// closure holds the direct findings from worker func literals.
	closure []purityClosureHit
}

func (m *Module) purity() *purityData {
	m.purityOnce.Do(func() { m.pur = buildPurity(m) })
	return m.pur
}

func buildPurity(m *Module) *purityData {
	g := m.Graph()
	pd := &purityData{}
	rootSet := map[string]bool{}
	addCalleeRoots := func(pkg *Package, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := staticCallee(pkg.Info, call); fn != nil {
				rootSet[funcID(fn)] = true
			}
			return true
		})
	}
	addFuncValue := func(pkg *Package, enclosing, root string, e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.FuncLit:
			// The literal itself is worker code: its package-level
			// writes are findings, and its callees are worker roots.
			for _, w := range packageLevelWrites(pkg.Info, e.Body) {
				pd.closure = append(pd.closure, purityClosureHit{
					pos: w.pos, enclosing: enclosing, root: root, varName: w.name,
				})
			}
			addCalleeRoots(pkg, e.Body)
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				rootSet[funcID(fn)] = true
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				rootSet[funcID(fn)] = true
			}
		}
	}
	scan := func(pkg *Package, enclosing string, body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				addFuncValue(pkg, enclosing, "go statement", n.Call.Fun)
			case *ast.CallExpr:
				if purityPoolRe.MatchString(calleeBaseName(n)) {
					for _, a := range n.Args {
						if isFuncValue(pkg.Info, a) {
							addFuncValue(pkg, enclosing, calleeBaseName(n), a)
						}
					}
				}
			}
			return true
		})
	}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			if pkg.IsTestFile(file) {
				continue
			}
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if fd.Body == nil {
						continue
					}
					enclosing := "package " + pkg.Pkg.Name()
					if def, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						enclosing = m.shortID(funcID(def))
					}
					scan(pkg, enclosing, fd.Body)
				} else {
					scan(pkg, "package "+pkg.Pkg.Name()+" init", d)
				}
			}
		}
	}

	roots := make([]string, 0, len(rootSet))
	for id := range rootSet {
		roots = append(roots, id)
	}
	sort.Strings(roots)

	// BFS with parent tracking so findings can name the worker root.
	workerOf := map[string]string{}
	queue := make([]string, 0, len(roots))
	for _, id := range roots {
		workerOf[id] = id
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		callees := append([]string(nil), g.edges[id]...)
		sort.Strings(callees)
		for _, to := range callees {
			if _, ok := workerOf[to]; !ok {
				workerOf[to] = workerOf[id]
				queue = append(queue, to)
			}
		}
	}
	pd.workerOf = workerOf
	return pd
}

// pkgWrite is one package-level variable write found in a node.
type pkgWrite struct {
	pos  token.Pos
	name string
}

// packageLevelWrites collects the package-level variable writes
// (assignments and ++/--) anywhere under n, nested literals included.
func packageLevelWrites(info *types.Info, n ast.Node) []pkgWrite {
	var out []pkgWrite
	ast.Inspect(n, func(x ast.Node) bool {
		var lhs []ast.Expr
		switch x := x.(type) {
		case *ast.AssignStmt:
			lhs = x.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{x.X}
		default:
			return true
		}
		for _, l := range lhs {
			if v := rootWrittenVar(info, l); v != nil && isPackageLevel(v) {
				out = append(out, pkgWrite{pos: l.Pos(), name: v.Name()})
			}
		}
		return true
	})
	return out
}

// isFuncValue reports whether expression e has function type (and is not
// a call's own result being passed along as data).
func isFuncValue(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func (purityCheck) Run(pkg *Package) []Finding {
	pd := pkg.Module.purity()
	var out []Finding
	for _, h := range pd.closure {
		if !pkg.ownsPos(h.pos) {
			continue
		}
		out = append(out, pkg.Module.newFinding("purity", h.pos,
			"func literal in %s runs on a worker pool (%s) but writes package-level %s; shared-state writes make output depend on chunk scheduling order",
			h.enclosing, h.root, h.varName))
	}
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) {
			return
		}
		def, ok := pkg.Info.Defs[d.Name].(*types.Func)
		if !ok {
			return
		}
		root, isWorker := pd.workerOf[funcID(def)]
		if !isWorker {
			return
		}
		for _, w := range packageLevelWrites(pkg.Info, d.Body) {
			out = append(out, pkg.Module.newFinding("purity", w.pos,
				"%s runs on a worker pool (via %s) but writes package-level %s; shared-state writes make output depend on chunk scheduling order",
				pkg.Module.shortID(funcID(def)), pkg.Module.shortID(root), w.name))
		}
	})
	return out
}

// rootWrittenVar resolves an assignment target to the variable whose
// storage the write lands in: the base identifier of index/field/deref
// chains, or a package-qualified variable.
func rootWrittenVar(info *types.Info, l ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(l).(type) {
		case *ast.Ident:
			v, _ := objOf(info, e).(*types.Var)
			return v
		case *ast.SelectorExpr:
			// pkg.Var = ... writes the qualified package-level variable.
			if _, ok := objOf(info, e.Sel).(*types.Var); ok {
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					if _, isPkg := objOf(info, id).(*types.PkgName); isPkg {
						v, _ := objOf(info, e.Sel).(*types.Var)
						return v
					}
				}
			}
			l = e.X
		case *ast.IndexExpr:
			l = e.X
		case *ast.SliceExpr:
			l = e.X
		case *ast.StarExpr:
			l = e.X
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether v is a package-scope variable.
func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
