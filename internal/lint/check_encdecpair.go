package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// encdecpairCheck enforces API symmetry: every exported Encode*/Compress*
// function or method must have a mirrored Decode*/Decompress* in the same
// package — either the exact counterpart name, or a bare exported
// Decode/Decompress when the stream is self-describing (this module's
// containers carry their own algorithm tag, so repro.CompressAbs decodes
// through repro.Decompress). When an exact pair exists and both sides
// take a named *Options struct, the structs must match field-for-field:
// an option the decoder cannot see is a stream the decoder cannot read.
type encdecpairCheck struct{}

func (encdecpairCheck) Name() string { return "encdecpair" }
func (encdecpairCheck) Doc() string {
	return "flag exported Encode/Compress without a mirrored Decode/Decompress (or with mismatched option structs)"
}

func (encdecpairCheck) Run(pkg *Package) []Finding {
	if pkg.Pkg.Name() == "main" || strings.HasSuffix(pkg.ImportPath, "_test") {
		return nil
	}
	// Index every exported function/method declared in library files.
	decls := map[string][]*ast.FuncDecl{}
	forEachFuncDecl(pkg, func(f *ast.File, d *ast.FuncDecl) {
		if pkg.IsTestFile(f) || !d.Name.IsExported() {
			return
		}
		decls[d.Name.Name] = append(decls[d.Name.Name], d)
	})

	var out []Finding
	for name, list := range decls {
		var mirror string
		switch {
		case strings.HasPrefix(name, "Encode") && wordBoundary(name[len("Encode"):]):
			mirror = "Decode" + name[len("Encode"):]
		case strings.HasPrefix(name, "Compress") && wordBoundary(name[len("Compress"):]):
			mirror = "Decompress" + name[len("Compress"):]
		default:
			continue
		}
		for _, d := range list {
			counterparts := decls[mirror]
			if len(counterparts) == 0 {
				// Self-describing-stream fallback: a bare decoder reads
				// any of the package's encoded forms.
				if bare := firstWord(mirror); len(decls[bare]) > 0 {
					continue
				}
				out = append(out, pkg.Module.newFinding("encdecpair", d.Name.Pos(),
					"exported %s has no mirrored %s in this package: every encoder needs a decoder", name, mirror))
				continue
			}
			if msg := optionsMismatch(pkg, d, counterparts); msg != "" {
				out = append(out, pkg.Module.newFinding("encdecpair", d.Name.Pos(),
					"option structs of %s and %s disagree: %s — a knob the decoder cannot see is a stream it cannot read", name, mirror, msg))
			}
		}
	}
	return out
}

// wordBoundary reports whether suffix starts a new camel-case word, so
// that Encode/Compress prefixes match EncodeAll and Compress32 but not
// Encoder or CompressionRatio.
func wordBoundary(suffix string) bool {
	if suffix == "" {
		return true
	}
	c := suffix[0]
	return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// firstWord reduces DecodeAll/DecompressParallel to the bare fallback
// name (Decode/Decompress).
func firstWord(mirror string) string {
	if strings.HasPrefix(mirror, "Decompress") {
		return "Decompress"
	}
	return "Decode"
}

// optionsMismatch compares the encoder's *Options-style struct parameter
// with its counterpart's, field-for-field. Both sides must have one for
// the comparison to apply; the same named type trivially matches.
func optionsMismatch(pkg *Package, enc *ast.FuncDecl, decs []*ast.FuncDecl) string {
	encOpt := optionsParam(pkg, enc)
	if encOpt == nil {
		return ""
	}
	var msg string
	for _, dec := range decs {
		decOpt := optionsParam(pkg, dec)
		if decOpt == nil {
			return "" // decoder takes no options: nothing to compare
		}
		if types.Identical(encOpt, decOpt) {
			return ""
		}
		if m := structFieldDiff(encOpt, decOpt); m == "" {
			return ""
		} else {
			msg = m
		}
	}
	return msg
}

// optionsParam returns the underlying struct of the first parameter whose
// named type ends in "Options" (pointer dereferenced), or nil.
func optionsParam(pkg *Package, d *ast.FuncDecl) *types.Struct {
	obj := pkg.Info.Defs[d.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || !strings.HasSuffix(named.Obj().Name(), "Options") {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			return st
		}
	}
	return nil
}

// structFieldDiff describes the first field-level difference between two
// option structs ("" when they match field-for-field).
func structFieldDiff(a, b *types.Struct) string {
	fields := func(s *types.Struct) map[string]types.Type {
		m := make(map[string]types.Type, s.NumFields())
		for i := 0; i < s.NumFields(); i++ {
			m[s.Field(i).Name()] = s.Field(i).Type()
		}
		return m
	}
	af, bf := fields(a), fields(b)
	for name, at := range af {
		bt, ok := bf[name]
		if !ok {
			return "field " + name + " missing on the decode side"
		}
		if !types.Identical(at, bt) {
			return "field " + name + " has type " + at.String() + " vs " + bt.String()
		}
	}
	for name := range bf {
		if _, ok := af[name]; !ok {
			return "field " + name + " missing on the encode side"
		}
	}
	return ""
}
