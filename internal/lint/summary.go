package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// This file is the per-function half of the interprocedural layer (see
// interproc.go for the fixed-point driver): a bit-mask taint analysis over
// the cfg.go engine that produces one ipSummary per module function. The
// mask lattice assigns bit i to parameter i (receiver first) and a
// dedicated seed bit to values read from the encoded input (decode-read
// calls, raw byte-slice loads — same seeds as decodebound). Joins are
// bitwise OR, so the per-function analysis and the bottom-up propagation
// over the call graph are both monotone and terminate.
//
// A summary records, for each parameter, whether it can reach an
// unguarded allocation size, a narrowing integer conversion, or a loop
// bound — directly or through a callee whose summary says so — plus
// which parameters flow into the return value. Guard facts follow the
// decodebound convention: any if/switch condition mentioning a variable
// sanitizes it, and so does passing it to a recognizably-named guard
// call (checkElements, checkChunkBytes, Validate, ...), which is how
// DecodeLimits enforcement is recognized across call boundaries.
//
// Struct fields are tracked field-sensitively (fields.go): stores into a
// named type's field accumulate per-function fieldWrites, the driver
// reduces them to a module-global fact table, and reads join the global
// fact back in — so a length parsed into Header.N in one function taints
// make(..., h.N) in another. Closure bodies are analyzed inline with the
// enclosing function's state as the captured-variable boundary (a literal
// handed to pool/stream plumbing executes with those variables), and
// their sinks are recorded as the enclosing function's events. Remaining
// opaque, by design: interface-method calls without a concrete target
// have no body to summarize (nopanic's conservative interface expansion
// does not apply here — a may-taint analysis expanding to every
// implementation would drown real findings in impossible ones).

// Mask layout: bits [0, ipMaxParams) are parameter bits, ipSeedBit marks
// decode-input-derived values, ipFieldBit marks values that flowed
// through a struct-field read (so the driver can tell field-mediated
// facts from the purely local ones decodebound already owns). Parameters
// beyond ipMaxParams get no bit (they silently lose interprocedural
// tracking; no module function comes close).
const ipMaxParams = 60

const (
	ipSeedBit  = uint64(1) << 62
	ipFieldBit = uint64(1) << 61
)

// ipParamMask covers every parameter bit.
const ipParamMask = uint64(1)<<ipMaxParams - 1

// ipMaxClosureDepth bounds nested closure inlining.
const ipMaxClosureDepth = 4

type ipKind uint8

const (
	ipAlloc ipKind = iota
	ipNarrow
	ipLoop
)

// ipSite is one hop of a witness chain: a call site (next != nil) or the
// offending sink expression itself (next == nil), inside function fn.
type ipSite struct {
	fn   string
	pos  token.Pos
	next *ipSite
}

// sink returns the chain's final site (the allocation/conversion/bound).
func (s *ipSite) sink() *ipSite {
	for s.next != nil {
		s = s.next
	}
	return s
}

// ipEvent is one sink reached by tainted data inside a function: mask
// says which taints can reach it (parameter bits and/or the seed bit),
// site is the witness chain from this function down to the sink, and
// closure marks sinks found inside an inlined function literal.
type ipEvent struct {
	kind    ipKind
	mask    uint64
	site    *ipSite
	closure bool
}

// ipSummary is the interprocedural abstract of one function.
type ipSummary struct {
	// retMask has parameter bit i set when parameter i may flow,
	// unsanitized, into a return value; retSeed marks returns carrying
	// decode-read input.
	retMask uint64
	retSeed bool
	// allocVia/narrowVia/loopVia map a parameter index to a witness
	// chain showing the parameter reaching an unguarded make/append
	// size, narrowing conversion, or loop bound.
	allocVia  map[int]*ipSite
	narrowVia map[int]*ipSite
	loopVia   map[int]*ipSite
	// events are all taint-reaches-sink facts observed in the body.
	events []ipEvent
	// fieldWrites joins, per module-stable field key (fields.go), the
	// masks this function may store into that field — directly, through
	// a composite literal, or through a callee (the callee's parameter
	// bits translated to this function's argument masks).
	fieldWrites map[string]uint64
	// fieldReads records the fields whose fact this function's analysis
	// consulted, so the driver can re-enqueue readers when a fact grows.
	fieldReads map[string]bool
}

func (s *ipSummary) via(k ipKind) map[int]*ipSite {
	switch k {
	case ipAlloc:
		return s.allocVia
	case ipNarrow:
		return s.narrowVia
	default:
		return s.loopVia
	}
}

// ipEqual reports whether two summaries agree on everything callers can
// observe (the fixed-point termination test). Witness chains are
// deliberately not compared: once a parameter's key is present any
// recorded chain is a valid witness. fieldReads is bookkeeping for the
// driver, not caller-observable, and is not compared either.
func ipEqual(a, b *ipSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.retMask != b.retMask || a.retSeed != b.retSeed {
		return false
	}
	if !masksEqual(a.fieldWrites, b.fieldWrites) {
		return false
	}
	for _, k := range []ipKind{ipAlloc, ipNarrow, ipLoop} {
		am, bm := a.via(k), b.via(k)
		if len(am) != len(bm) {
			return false
		}
		for i := range am {
			if bm[i] == nil {
				return false
			}
		}
	}
	return true
}

// funcUnit is one analyzable function declaration.
type funcUnit struct {
	id   string
	pkg  *Package
	decl *ast.FuncDecl
	// params lists receiver-then-parameters in signature order; an
	// unnamed parameter holds nil (its index still counts).
	params []types.Object
	// results lists the named result objects (for bare returns).
	results []types.Object
	// seedOK marks decode-context functions, in which decode-read calls
	// and byte-slice loads seed taint.
	seedOK bool

	cfg *cfg
}

func (u *funcUnit) cfgOf() *cfg {
	if u.cfg == nil {
		u.cfg = buildCFG(u.decl.Body)
	}
	return u.cfg
}

// paramBit returns parameter i's mask bit (0 when out of range).
func paramBit(i int) uint64 {
	if i < 0 || i >= ipMaxParams {
		return 0
	}
	return uint64(1) << i
}

// ipUnits indexes every library (non-test) function declaration in the
// module by its stable funcID.
func ipUnits(m *Module) map[string]*funcUnit {
	units := map[string]*funcUnit{}
	for _, pkg := range m.Packages {
		if strings.HasSuffix(pkg.ImportPath, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				def, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				u := &funcUnit{
					id:     funcID(def),
					pkg:    pkg,
					decl:   fd,
					seedOK: decodeCtxRe.MatchString(fd.Name.Name),
				}
				addParams := func(fl *ast.FieldList) {
					if fl == nil {
						return
					}
					for _, field := range fl.List {
						if len(field.Names) == 0 {
							u.params = append(u.params, nil)
							continue
						}
						for _, name := range field.Names {
							u.params = append(u.params, pkg.Info.Defs[name])
						}
					}
				}
				addParams(fd.Recv)
				addParams(fd.Type.Params)
				if fd.Type.Results != nil {
					for _, field := range fd.Type.Results.List {
						for _, name := range field.Names {
							if o := pkg.Info.Defs[name]; o != nil {
								u.results = append(u.results, o)
							}
						}
					}
				}
				units[u.id] = u
			}
		}
	}
	return units
}

// --- mask dataflow ------------------------------------------------------

// maskState maps each local variable to the taint masks that may have
// flowed into it.
type maskState map[types.Object]uint64

func (s maskState) clone() maskState {
	c := make(maskState, len(s))
	for o, m := range s {
		c[o] = m
	}
	return c
}

func (s maskState) equal(t maskState) bool {
	if len(s) != len(t) {
		return false
	}
	for o, m := range s {
		if t[o] != m {
			return false
		}
	}
	return true
}

// maskFlow runs the iterative forward may-analysis (join = per-variable
// bitwise OR) to fixpoint and returns each reachable block's entry state.
func (g *cfg) maskFlow(boundary maskState, transfer func(b *cfgBlock, in maskState) maskState) map[*cfgBlock]maskState {
	rpo := g.reversePostorder()
	in := map[*cfgBlock]maskState{}
	out := map[*cfgBlock]maskState{}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			var s maskState
			if blk == g.entry {
				s = boundary.clone()
			} else {
				s = maskState{}
				for _, p := range blk.preds {
					for o, m := range out[p] {
						s[o] |= m
					}
				}
			}
			prev, seen := in[blk]
			if seen && prev.equal(s) {
				continue
			}
			in[blk] = s
			out[blk] = transfer(blk, s.clone())
			changed = true
		}
	}
	return in
}

// --- shared transfer plumbing (used by ip and boundconst evaluators) ----

// maskSetLHS records mask m for one assignment target: strong update for
// plain assignments to simple locals, weak (OR) update for compound
// assignments and stores through an index expression.
func maskSetLHS(info *types.Info, s maskState, l ast.Expr, m uint64, keep bool) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		o := objOf(info, l)
		v, ok := o.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		switch {
		case keep:
			s[o] |= m
		case m != 0:
			s[o] = m
		default:
			delete(s, o)
		}
	case *ast.IndexExpr:
		if m != 0 {
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				if o := objOf(info, id); o != nil {
					s[o] |= m
				}
			}
		}
	}
}

// maskAssign transfers an assignment statement.
func maskAssign(info *types.Info, s maskState, n *ast.AssignStmt, maskOf func(maskState, ast.Expr) uint64) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if m := maskOf(s, n.Rhs[0]); m != 0 {
				maskSetLHS(info, s, n.Lhs[0], m, true)
			}
		}
		return
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		m := maskOf(s, n.Rhs[0])
		for _, l := range n.Lhs {
			maskSetLHS(info, s, l, m, false)
		}
		return
	}
	for i, l := range n.Lhs {
		if i < len(n.Rhs) {
			maskSetLHS(info, s, l, maskOf(s, n.Rhs[i]), false)
		}
	}
}

// maskDeclare transfers a var declaration statement.
func maskDeclare(info *types.Info, s maskState, n *ast.DeclStmt, maskOf func(maskState, ast.Expr) uint64) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		for i, name := range vs.Names {
			var m uint64
			if len(vs.Values) == len(vs.Names) {
				m = maskOf(s, vs.Values[i])
			} else {
				m = maskOf(s, vs.Values[0])
			}
			maskSetLHS(info, s, name, m, false)
		}
	}
}

// staticCallee resolves a call's target to a *types.Func when the callee
// is an identifier or selector (direct calls and method calls); function
// values and interface methods without a concrete target return the
// abstract method, func-typed variables return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeBaseName is the bare callee name used for the seed/guard regexps.
func calleeBaseName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of a builtin callee ("" otherwise).
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
		return id.Name
	}
	return ""
}

// ipGuardRe names the calls whose arguments count as range-validated:
// the DecodeLimits checkers (checkElements, checkChunkBytes, checkFields,
// CheckHeader, ...) and Validate-style helpers. The leading capital after
// the prefix keeps crc32.Checksum and friends out.
var ipGuardRe = regexp.MustCompile(`^[Cc]heck[A-Z0-9_]|^[Vv]alid(ate)?([A-Z0-9_]|$)`)

// --- per-function analysis ----------------------------------------------

// ipEval computes one function's summary.
type ipEval struct {
	u      *funcUnit
	info   *types.Info
	sums   map[string]*ipSummary
	fields *fieldFacts
	sum    *ipSummary
	evIdx  map[uint64]int // (kind, sink pos) -> index into sum.events
	depth  int            // closure nesting depth (0 = the declared body)
}

// ipAnalyze runs the mask-taint analysis over u's body using the current
// callee summaries and the module-global field facts, and returns a
// fresh summary.
func ipAnalyze(u *funcUnit, sums map[string]*ipSummary, fields *fieldFacts) *ipSummary {
	ev := &ipEval{
		u:      u,
		info:   u.pkg.Info,
		sums:   sums,
		fields: fields,
		sum: &ipSummary{
			allocVia:    map[int]*ipSite{},
			narrowVia:   map[int]*ipSite{},
			loopVia:     map[int]*ipSite{},
			fieldWrites: map[string]uint64{},
			fieldReads:  map[string]bool{},
		},
		evIdx: map[uint64]int{},
	}
	boundary := maskState{}
	for i, p := range u.params {
		if p != nil && paramBit(i) != 0 {
			boundary[p] = paramBit(i)
		}
	}
	g := u.cfgOf()
	// Field slots are flow-insensitive, so a read the pass visits early
	// can depend on a store it has not reached yet: iterate the whole
	// propagate+report pipeline until the function's field-write set
	// stops growing. Masks only grow, so this terminates (the cap is a
	// backstop). Events deduplicate by sink, so re-reporting only joins
	// masks.
	for iter := 0; iter < 8; iter++ {
		before := cloneMasks(ev.sum.fieldWrites)
		in := g.maskFlow(boundary, func(b *cfgBlock, s maskState) maskState {
			for _, n := range b.nodes {
				ev.step(s, n, false)
			}
			return s
		})
		for _, b := range g.reversePostorder() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = s.clone()
			for _, n := range b.nodes {
				ev.step(s, n, true)
			}
		}
		if masksEqual(before, ev.sum.fieldWrites) {
			break
		}
	}
	finishIPSummary(ev.sum)
	return ev.sum
}

// finishIPSummary derives the per-parameter witness maps from the
// recorded events (shared with cache deserialization). Event masks only
// carry bits of parameters that exist, so iterating the full bit range
// is equivalent to iterating the parameter list.
func finishIPSummary(sum *ipSummary) {
	for _, e := range sum.events {
		via := sum.via(e.kind)
		for i := 0; i < ipMaxParams; i++ {
			if e.mask&paramBit(i) != 0 && via[i] == nil {
				via[i] = e.site
			}
		}
	}
}

// step applies node n to state s; in the report pass it first records
// sink events against the pre-state (mirroring decodebound's two-pass
// structure) and then inlines any function literals the node evaluates.
func (ev *ipEval) step(s maskState, n ast.Node, report bool) {
	if !report {
		ev.callFieldEffects(s, n)
	}
	switch n := n.(type) {
	case guardCond:
		if report {
			ev.checkSinks(s, n)
		}
		ev.sanitize(s, n.Expr)
	case loopCond:
		if report {
			ev.checkLoopBound(s, n.Expr)
			ev.checkSinks(s, n)
		}
		ev.sanitize(s, n.Expr)
	case *ast.AssignStmt:
		if report {
			ev.checkSinks(s, n)
			ev.closures(s, n)
		}
		ev.guardCalls(s, n)
		fieldStores(ev.info, s, n, ev.maskOf, ev.recordFieldWrite)
		maskAssign(ev.info, s, n, ev.maskOf)
	case *ast.DeclStmt:
		if report {
			ev.checkSinks(s, n)
			ev.closures(s, n)
		}
		ev.guardCalls(s, n)
		maskDeclare(ev.info, s, n, ev.maskOf)
	case *ast.RangeStmt:
		if report {
			ev.checkSinks(s, n)
		}
		ev.rangeBind(s, n)
	case *ast.ReturnStmt:
		if report {
			ev.checkSinks(s, n)
			ev.closures(s, n)
			ev.collectReturn(s, n)
		}
		ev.guardCalls(s, n)
	default:
		if report {
			ev.checkSinks(s, n)
			ev.closures(s, n)
		}
		ev.guardCalls(s, n)
	}
}

// recordFieldWrite joins mask m into the summary's slot for field fid.
// The field-read marker is stripped: it tags read origins, not stored
// values.
func (ev *ipEval) recordFieldWrite(fid string, m uint64, pos token.Pos) {
	_ = pos // the taint layer does not keep store sites; boundconst does
	if m &= ^ipFieldBit; m != 0 {
		ev.sum.fieldWrites[fid] |= m
	}
}

// callFieldEffects folds a summarized callee's field writes into the
// caller: the callee's parameter bits translate through the call's
// argument masks, so a setter that stores its argument into a struct
// field taints that field with whatever each caller passes (method
// receivers translate the same way, as parameter 0).
func (ev *ipEval) callFieldEffects(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || isConversion(ev.info, call) || builtinName(ev.info, call) != "" {
			return true
		}
		fn := staticCallee(ev.info, call)
		if fn == nil {
			return true
		}
		cs := ev.sums[funcID(fn)]
		if cs == nil || len(cs.fieldWrites) == 0 {
			return true
		}
		am := ev.argMasks(s, call, fn)
		for fid, fm := range cs.fieldWrites {
			t := fm &^ ipParamMask // seed and class bits pass through as-is
			for j, a := range am {
				if fm&paramBit(j) != 0 {
					t |= a
				}
			}
			ev.recordFieldWrite(fid, t, call.Pos())
		}
		return true
	})
}

// closures analyzes the function literals node n evaluates, with the
// current state as the captured-variable boundary: a literal handed to
// pool/stream plumbing (or started by go/defer, or invoked in place)
// executes with the enclosing function's variables, so its sinks are the
// enclosing function's sinks. Parameters of immediately invoked literals
// (including go/defer calls) bind to the call's argument masks; literals
// passed as values get unbound parameters.
func (ev *ipEval) closures(s maskState, n ast.Node) {
	var visit func(x ast.Node) bool
	visit = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				args := make([]uint64, len(x.Args))
				for i, a := range x.Args {
					args[i] = ev.maskOf(s, a)
					ast.Inspect(a, visit)
				}
				ev.analyzeFuncLit(s, lit, args)
				return false
			}
		case *ast.FuncLit:
			ev.analyzeFuncLit(s, x, nil)
			return false
		}
		return true
	}
	n = unwrapCond(n)
	if r, ok := n.(*ast.RangeStmt); ok {
		// Only the range operand is evaluated here; the body lives in
		// successor blocks.
		ast.Inspect(r.X, visit)
		return
	}
	ast.Inspect(n, visit)
}

// analyzeFuncLit runs the full propagate+report pipeline over a function
// literal's body. Captured variables keep their masks from the enclosing
// state (object identities hold across the closure boundary within one
// unit); the literal's own parameters bind to args when provided.
func (ev *ipEval) analyzeFuncLit(s maskState, lit *ast.FuncLit, args []uint64) {
	if ev.depth >= ipMaxClosureDepth || lit.Body == nil {
		return
	}
	boundary := s.clone()
	i := 0
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, name := range f.Names {
				if o := ev.info.Defs[name]; o != nil {
					var m uint64
					if i < len(args) {
						m = args[i]
					}
					if m != 0 {
						boundary[o] = m
					} else {
						delete(boundary, o)
					}
				}
				i++
			}
		}
	}
	ev.depth++
	defer func() { ev.depth-- }()
	g := buildCFG(lit.Body)
	in := g.maskFlow(boundary, func(b *cfgBlock, st maskState) maskState {
		for _, nd := range b.nodes {
			ev.step(st, nd, false)
		}
		return st
	})
	for _, b := range g.reversePostorder() {
		st, ok := in[b]
		if !ok {
			continue
		}
		st = st.clone()
		for _, nd := range b.nodes {
			ev.step(st, nd, true)
		}
	}
}

// sanitize clears every variable the guard expression mentions.
func (ev *ipEval) sanitize(s maskState, e ast.Expr) {
	inspectNoFuncLit(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := objOf(ev.info, id); o != nil {
				delete(s, o)
			}
		}
		return true
	})
}

// guardCalls sanitizes the arguments of recognized guard calls appearing
// anywhere in n: `if err := limits.checkElements(n); ...` validates n for
// the rest of the function, which is how the DecodeLimits methods and
// grid.Validate register as guards.
func (ev *ipEval) guardCalls(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || isConversion(ev.info, call) {
			return true
		}
		if !ipGuardRe.MatchString(calleeBaseName(call)) {
			return true
		}
		for _, a := range call.Args {
			ev.sanitize(s, a)
		}
		return true
	})
}

// rangeBind transfers a range statement's key/value binding.
func (ev *ipEval) rangeBind(s maskState, n *ast.RangeStmt) {
	m := ev.maskOf(s, n.X)
	if ev.u.seedOK && isByteSeq(typeOf(ev.info, n.X)) {
		m |= ipSeedBit
	}
	if n.Value != nil {
		maskSetLHS(ev.info, s, n.Value, m, false)
	}
	if n.Key != nil {
		maskSetLHS(ev.info, s, n.Key, 0, false)
	}
}

// collectReturn folds a return statement into retMask/retSeed. Returns
// inside an inlined closure are the literal's, not the enclosing
// function's, and are skipped.
func (ev *ipEval) collectReturn(s maskState, n *ast.ReturnStmt) {
	if ev.depth > 0 {
		return
	}
	var m uint64
	if len(n.Results) == 0 {
		for _, o := range ev.u.results {
			m |= s[o]
		}
	} else {
		for _, e := range n.Results {
			m |= ev.maskOf(s, e)
		}
	}
	ev.sum.retMask |= m &^ (ipSeedBit | ipFieldBit)
	if m&ipSeedBit != 0 {
		ev.sum.retSeed = true
	}
}

// maskOf evaluates an expression's taint mask under state s.
func (ev *ipEval) maskOf(s maskState, e ast.Expr) uint64 {
	if tv, ok := ev.info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.maskOf(s, e.X)
	case *ast.Ident:
		if o := objOf(ev.info, e); o != nil {
			return s[o]
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return 0 // boolean results carry no size/index taint
		case token.AND, token.REM:
			// Masking / remainder with an untainted operand bounds the
			// value: sanitized.
			x, y := ev.maskOf(s, e.X), ev.maskOf(s, e.Y)
			if x != 0 && y != 0 {
				return x | y
			}
			return 0
		default:
			return ev.maskOf(s, e.X) | ev.maskOf(s, e.Y)
		}
	case *ast.UnaryExpr:
		return ev.maskOf(s, e.X)
	case *ast.StarExpr:
		return ev.maskOf(s, e.X)
	case *ast.CallExpr:
		return ev.callMask(s, e)
	case *ast.IndexExpr:
		m := ev.maskOf(s, e.X)
		if ev.u.seedOK && isByteSeq(typeOf(ev.info, e.X)) {
			m |= ipSeedBit // raw load from the encoded buffer
		}
		return m
	case *ast.SliceExpr:
		return ev.maskOf(s, e.X)
	case *ast.TypeAssertExpr:
		return ev.maskOf(s, e.X)
	case *ast.SelectorExpr:
		// Field read: the base value's own taint propagates, joined with
		// everything stored into the field locally or module-wide. The
		// marker bit tells the driver the flow crossed a field.
		m := ev.maskOf(s, e.X)
		if fid := fieldIDOf(ev.info, e); fid != "" {
			ev.sum.fieldReads[fid] = true
			if fm := ev.sum.fieldWrites[fid] | ev.fields.masks[fid]; fm != 0 {
				m |= fm | ipFieldBit
			}
		}
		return m
	case *ast.CompositeLit:
		// The literal's element masks land in the field slots; the
		// struct value itself carries no size/index taint.
		compositeFieldStores(ev.info, s, e, ev.maskOf, ev.recordFieldWrite)
		return 0
	}
	// Anonymous-struct fields and func literals as values: untracked.
	return 0
}

// callMask evaluates a call expression's result mask: conversions pass
// taint through, decode-read calls seed it, and calls with a summarized
// callee map argument masks through the callee's return facts.
func (ev *ipEval) callMask(s maskState, call *ast.CallExpr) uint64 {
	if isConversion(ev.info, call) && len(call.Args) == 1 {
		return ev.maskOf(s, call.Args[0])
	}
	if b := builtinName(ev.info, call); b != "" {
		if b == "append" {
			var m uint64
			for _, a := range call.Args {
				m |= ev.maskOf(s, a)
			}
			return m
		}
		return 0 // len/cap of real memory are trusted sizes
	}
	name := calleeBaseName(call)
	if ipGuardRe.MatchString(name) {
		return 0
	}
	var m uint64
	if ev.u.seedOK && seedCallRe.MatchString(name) {
		m |= ipSeedBit
	}
	fn := staticCallee(ev.info, call)
	if fn == nil {
		return m
	}
	cs := ev.sums[funcID(fn)]
	if cs == nil {
		return m
	}
	if cs.retSeed {
		m |= ipSeedBit
	}
	for j, am := range ev.argMasks(s, call, fn) {
		if am != 0 && cs.retMask&paramBit(j) != 0 {
			m |= am
		}
	}
	return m
}

// argMasks maps the call's argument masks onto the callee's parameter
// indices (receiver first, variadic arguments folded onto the last
// parameter).
func (ev *ipEval) argMasks(s maskState, call *ast.CallExpr, fn *types.Func) []uint64 {
	return callArgMasks(ev.info, s, call, fn, ev.maskOf)
}

// callArgMasks is the evaluator-independent argument-to-parameter mask
// mapping shared by the taint and bound-constant analyses.
func callArgMasks(info *types.Info, s maskState, call *ast.CallExpr, fn *types.Func, maskOf func(maskState, ast.Expr) uint64) []uint64 {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	nRecv := 0
	if sig.Recv() != nil {
		nRecv = 1
	}
	n := nRecv + sig.Params().Len()
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	if nRecv == 1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodVal {
				out[0] = maskOf(s, sel.X)
			}
		}
	}
	for i, a := range call.Args {
		j := nRecv + i
		if sig.Variadic() && j >= n-1 {
			j = n - 1
		}
		if j < n {
			out[j] |= maskOf(s, a)
		}
	}
	return out
}

// here starts a witness chain at pos inside the current function.
func (ev *ipEval) here(pos token.Pos, next *ipSite) *ipSite {
	return &ipSite{fn: ev.u.id, pos: pos, next: next}
}

// event records a taint-reaches-sink fact, merging masks for events that
// share a sink.
func (ev *ipEval) event(kind ipKind, mask uint64, site *ipSite) {
	if mask == 0 || site == nil {
		return
	}
	key := uint64(site.sink().pos)<<2 | uint64(kind)
	if i, ok := ev.evIdx[key]; ok {
		ev.sum.events[i].mask |= mask
		ev.sum.events[i].closure = ev.sum.events[i].closure || ev.depth > 0
		return
	}
	ev.evIdx[key] = len(ev.sum.events)
	ev.sum.events = append(ev.sum.events, ipEvent{kind: kind, mask: mask, site: site, closure: ev.depth > 0})
}

// checkSinks walks the expressions node n evaluates and records the taint
// sinks: make/append-growth sizes, narrowing integer conversions, and
// calls whose summarized callee lets an argument reach such a sink.
func (ev *ipEval) checkSinks(s maskState, n ast.Node) {
	inspectEvaluated(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isConversion(ev.info, call) {
			ev.checkNarrowing(s, call)
			return true
		}
		switch builtinName(ev.info, call) {
		case "make":
			for _, a := range call.Args[1:] {
				if m := ev.maskOf(s, a); m != 0 {
					ev.event(ipAlloc, m, ev.here(a.Pos(), nil))
				}
			}
			return true
		case "append":
			// append(s, x...) grows by an input-controlled element count.
			if call.Ellipsis.IsValid() && len(call.Args) > 0 {
				last := call.Args[len(call.Args)-1]
				if m := ev.maskOf(s, last); m != 0 {
					ev.event(ipAlloc, m, ev.here(last.Pos(), nil))
				}
			}
			return true
		case "":
		default:
			return true
		}
		fn := staticCallee(ev.info, call)
		if fn == nil {
			return true
		}
		cs := ev.sums[funcID(fn)]
		if cs == nil {
			return true
		}
		for j, am := range ev.argMasks(s, call, fn) {
			if am == 0 {
				continue
			}
			for _, k := range []ipKind{ipAlloc, ipNarrow, ipLoop} {
				if st := cs.via(k)[j]; st != nil {
					ev.event(k, am, ev.here(call.Pos(), st))
				}
			}
		}
		return true
	})
}

// checkNarrowing records a narrowing integer conversion fed by tainted
// data (the interprocedural intnarrow sink).
func (ev *ipEval) checkNarrowing(s maskState, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := ev.info.Types[call.Fun]
	if !ok {
		return
	}
	dst := intValueBits(tv.Type)
	if dst < 0 {
		return
	}
	arg := call.Args[0]
	atv, ok := ev.info.Types[arg]
	if !ok || atv.Value != nil || intValueBits(atv.Type) < 0 {
		return
	}
	if maxBitsOf(ev.info, arg) <= dst {
		return
	}
	if m := ev.maskOf(s, arg); m != 0 {
		ev.event(ipNarrow, m, ev.here(call.Pos(), nil))
	}
}

// checkLoopBound records a for-condition whose every comparison involves
// tainted data (same rule as decodebound: one clean comparison bounds the
// loop), anchored at the offending comparison.
func (ev *ipEval) checkLoopBound(s maskState, cond ast.Expr) {
	var cmps []*ast.BinaryExpr
	var flatten func(e ast.Expr)
	flatten = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND, token.LOR:
				flatten(e.X)
				flatten(e.Y)
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
				cmps = append(cmps, e)
			}
		}
	}
	flatten(cond)
	var mask uint64
	var first *ast.BinaryExpr
	anyClean := false
	for _, c := range cmps {
		m := ev.maskOf(s, c.X) | ev.maskOf(s, c.Y)
		if m != 0 {
			mask |= m
			if first == nil {
				first = c
			}
		} else {
			anyClean = true
		}
	}
	if first != nil && !anyClean {
		ev.event(ipLoop, mask, ev.here(first.Pos(), nil))
	}
}
