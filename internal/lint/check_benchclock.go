package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// benchclockCheck flags test assertions that order wall-clock-derived
// durations against each other. The race detector (and loaded CI
// machines) slow compressors non-uniformly, so "A must be faster than B"
// assertions on live-measured throughput flake exactly when the race
// detector is on — the bug class behind TestFigure6 failing under
// `go test -race`. A test that measures wall-clock time (directly or
// through any function that transitively calls time.Now/time.Since) and
// then compares two non-constant time.Duration values must either inject
// deterministic rates (experiments.Config.FixedRates) or guard/derate the
// assertion with testutil.RaceEnabled or testing.Short.
type benchclockCheck struct{}

func (benchclockCheck) Name() string { return "benchclock" }
func (benchclockCheck) Doc() string {
	return "flag wall-clock throughput ordering assertions in tests without a race/CI guard (testutil.RaceEnabled, testing.Short, or injected FixedRates)"
}

// benchclockGuards are identifiers whose presence in a test function
// marks the timing assertion as guarded: an explicit race-detector shim,
// the short-mode escape hatch, or deterministic rate injection.
var benchclockGuards = map[string]bool{
	"RaceEnabled": true,
	"Short":       true,
	"FixedRates":  true,
}

// clockSources are the wall-clock measurement roots.
var clockSources = []string{"time.Now", "time.Since"}

func (benchclockCheck) Run(pkg *Package) []Finding {
	g := pkg.Module.Graph()
	tainted := g.reaches(clockSources)

	var out []Finding
	for _, file := range pkg.Files {
		if !pkg.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Test") {
				continue
			}
			def, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !tainted[funcID(def)] {
				continue
			}
			if referencesGuard(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
				default:
					return true
				}
				x, y := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
				if x.Value != nil || y.Value != nil {
					return true // thresholds against constants don't flip under slowdown
				}
				if !isDuration(x.Type) && !isDuration(y.Type) {
					return true
				}
				out = append(out, pkg.Module.newFinding("benchclock", be.OpPos,
					"%s orders wall-clock-derived durations; under -race the slowdown is non-uniform — inject deterministic rates or guard with testutil.RaceEnabled/testing.Short",
					fd.Name.Name))
				return true
			})
		}
	}
	return out
}

// referencesGuard reports whether the function body mentions any
// recognized guard identifier.
func referencesGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && benchclockGuards[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isDuration reports whether t is time.Duration (possibly named via
// alias resolution).
func isDuration(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
