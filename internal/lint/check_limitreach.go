package lint

// limitreachCheck is the interprocedural allocation-bound check: every
// make/append-growth whose size is tainted by decoder input along any
// call path from an exported decode entry (Decompress*, ScanSalvage,
// archive/stream readers) must pass a DecodeLimits check or an ordinary
// range guard before the allocation. The hardened-decode work placed
// limits.checkElements/checkChunkBytes calls by hand; this check is the
// machine proof that no call path — including new ones added later —
// reaches an allocation without one.
//
// The per-function decodebound check already owns purely local events
// (a seed flowing into a make inside one decode function), so limitreach
// reports only facts that need the summary layer: taint crossing at
// least one call boundary, or an entry's own untrusted parameter sizing
// an allocation. Findings carry the full witness chain from the entry to
// the sink.
type limitreachCheck struct{}

func (limitreachCheck) Name() string { return "limitreach" }
func (limitreachCheck) Doc() string {
	return "flag allocations sized by decoder input on any interprocedural path from a decode entry without a DecodeLimits/range guard"
}

func (limitreachCheck) Run(pkg *Package) []Finding {
	r := pkg.Module.interproc()
	var out []Finding
	for _, h := range r.hits(ipAlloc, false) {
		if !pkg.ownsPos(h.sink) {
			continue
		}
		f := pkg.Module.newFinding("limitreach", h.sink,
			"allocation size derives from decoder input with no DecodeLimits or range guard on the path %s; check it against DecodeLimits or the remaining payload before allocating",
			h.chainPath(pkg.Module))
		h.decorate(&f, pkg.Module)
		out = append(out, f)
	}
	return out
}
