// Package metrics computes the error and performance statistics reported in
// the paper's evaluation: point-wise relative error (max/avg, bounded
// fraction — Table IV), compression ratio and bit-rate (Table II, Fig. 2),
// relative-error-based PSNR (Fig. 1), multiprecision slice distortion
// (Fig. 4) and velocity angle skew (Fig. 5).
package metrics

import (
	"errors"
	"math"

	"repro/internal/floatbits"
)

// ErrLengthMismatch reports original/decompressed length disagreement.
var ErrLengthMismatch = errors.New("metrics: length mismatch")

// RelErrorStats summarizes point-wise relative errors of a reconstruction.
type RelErrorStats struct {
	// Max and Avg are the maximum and mean point-wise relative errors over
	// points with nonzero original value.
	Max, Avg float64
	// BoundedFrac is the fraction of points within the bound (Table IV's
	// "bounded" column); 1.0 prints as "100%".
	BoundedFrac float64
	// ZeroPerturbed counts original zeros that did not decompress to zero
	// (Table IV's "*" annotation).
	ZeroPerturbed int
	// MaxAbs is the maximum absolute error (all points).
	MaxAbs float64
	// N is the number of points compared.
	N int
}

// RelError computes relative-error statistics against the given bound.
// Points whose original value is zero contribute to ZeroPerturbed rather
// than the relative aggregates; non-finite originals are skipped.
func RelError(orig, dec []float64, bound float64) (RelErrorStats, error) {
	if len(orig) != len(dec) {
		return RelErrorStats{}, ErrLengthMismatch
	}
	st := RelErrorStats{N: len(orig)}
	counted := 0
	bounded := 0
	var sum float64
	for i := range orig {
		o := orig[i]
		if math.IsNaN(o) || math.IsInf(o, 0) {
			bounded++ // preserved specials count as bounded
			continue
		}
		if a := math.Abs(dec[i] - o); a > st.MaxAbs {
			st.MaxAbs = a
		}
		if floatbits.IsZero(o) {
			if !floatbits.IsZero(dec[i]) {
				st.ZeroPerturbed++
			} else {
				bounded++
			}
			continue
		}
		r := math.Abs(dec[i]-o) / math.Abs(o)
		counted++
		sum += r
		if r > st.Max {
			st.Max = r
		}
		if r <= bound {
			bounded++
		}
	}
	if counted > 0 {
		st.Avg = sum / float64(counted)
	}
	if st.N > 0 {
		st.BoundedFrac = float64(bounded) / float64(st.N)
	}
	return st, nil
}

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns the average number of compressed bits per data point.
func BitRate(compressedBytes, points int) float64 {
	if points <= 0 {
		return 0
	}
	return float64(compressedBytes) * 8 / float64(points)
}

// RelPSNR computes the relative-error-based PSNR of Figure 1: standard
// PSNR formula applied to the point-wise relative errors with the value
// range fixed to 1. Zero originals are skipped.
func RelPSNR(orig, dec []float64) (float64, error) {
	if len(orig) != len(dec) {
		return 0, ErrLengthMismatch
	}
	var mse float64
	n := 0
	for i := range orig {
		o := orig[i]
		if floatbits.IsZero(o) || math.IsNaN(o) || math.IsInf(o, 0) {
			continue
		}
		r := (dec[i] - o) / o
		mse += r * r
		n++
	}
	if n == 0 {
		return math.Inf(1), nil
	}
	mse /= float64(n)
	if floatbits.IsZero(mse) {
		return math.Inf(1), nil
	}
	return -10 * math.Log10(mse), nil
}

// PSNR computes the conventional value-range PSNR.
func PSNR(orig, dec []float64) (float64, error) {
	if len(orig) != len(dec) {
		return 0, ErrLengthMismatch
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var mse float64
	n := 0
	for i := range orig {
		o := orig[i]
		if math.IsNaN(o) || math.IsInf(o, 0) {
			continue
		}
		if o < lo {
			lo = o
		}
		if o > hi {
			hi = o
		}
		d := dec[i] - o
		mse += d * d
		n++
	}
	if n == 0 || hi <= lo {
		return math.Inf(1), nil
	}
	mse /= float64(n)
	if floatbits.IsZero(mse) {
		return math.Inf(1), nil
	}
	return 20*math.Log10(hi-lo) - 10*math.Log10(mse), nil
}

// SkewAngle returns the angle in degrees between the original and
// reconstructed 3D velocity of one particle (Figure 5's metric):
// θ = arccos(v·v_d / (|v||v_d|)).
func SkewAngle(vx, vy, vz, dx, dy, dz float64) float64 {
	no := math.Sqrt(vx*vx + vy*vy + vz*vz)
	nd := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if floatbits.IsZero(no) || floatbits.IsZero(nd) {
		if floatbits.Equal(no, nd) {
			return 0
		}
		return 90
	}
	c := (vx*dx + vy*dy + vz*dz) / (no * nd)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return math.Acos(c) * 180 / math.Pi
}

// SkewAngleStats aggregates the per-particle skew angles of a velocity
// triple reconstruction.
type SkewAngleStats struct {
	Avg, Max float64
	// P99 is the 99th-percentile angle estimated from a fixed histogram.
	P99 float64
}

// SkewAngles computes angle-skew statistics over particle velocity triples.
func SkewAngles(ox, oy, oz, dx, dy, dz []float64) (SkewAngleStats, error) {
	n := len(ox)
	if len(oy) != n || len(oz) != n || len(dx) != n || len(dy) != n || len(dz) != n {
		return SkewAngleStats{}, ErrLengthMismatch
	}
	var st SkewAngleStats
	if n == 0 {
		return st, nil
	}
	// Histogram at 0.01° resolution up to 180°.
	const res = 0.01
	hist := make([]int, int(180/res)+2)
	var sum float64
	for i := 0; i < n; i++ {
		a := SkewAngle(ox[i], oy[i], oz[i], dx[i], dy[i], dz[i])
		sum += a
		if a > st.Max {
			st.Max = a
		}
		b := int(a / res)
		if b >= len(hist) {
			b = len(hist) - 1
		}
		hist[b]++
	}
	st.Avg = sum / float64(n)
	target := int(math.Ceil(float64(n) * 0.99))
	acc := 0
	for b, c := range hist {
		acc += c
		if acc >= target {
			st.P99 = float64(b) * res
			break
		}
	}
	return st, nil
}

// BlockAverages divides a field into side³ spatial blocks and returns the
// per-block mean of values (used for the Figure 5 visualization grid).
func BlockAverages(vals []float64, dims []int, side int) []float64 {
	if len(dims) != 3 || side <= 0 {
		return nil
	}
	nz, ny, nx := dims[0], dims[1], dims[2]
	bz, by, bx := (nz+side-1)/side, (ny+side-1)/side, (nx+side-1)/side
	sums := make([]float64, bz*by*bx)
	counts := make([]int, bz*by*bx)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				b := (z/side*by+y/side)*bx + x/side
				sums[b] += vals[i]
				counts[b]++
				i++
			}
		}
	}
	for b := range sums {
		if counts[b] > 0 {
			sums[b] /= float64(counts[b])
		}
	}
	return sums
}
