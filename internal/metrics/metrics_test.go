package metrics

import (
	"math"
	"testing"
)

func TestRelErrorBasic(t *testing.T) {
	orig := []float64{1, 2, 4, 0, -16}
	dec := []float64{1.01, 2, 4.125, 0, -16.5} // exact binary fractions
	st, err := RelError(orig, dec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Max-0.03125) > 1e-12 {
		t.Fatalf("Max = %g, want 0.03125", st.Max)
	}
	wantAvg := (0.01 + 0 + 0.03125 + 0.03125) / 4
	if math.Abs(st.Avg-wantAvg) > 1e-12 {
		t.Fatalf("Avg = %g, want %g", st.Avg, wantAvg)
	}
	if st.BoundedFrac != 1.0 {
		t.Fatalf("BoundedFrac = %g", st.BoundedFrac)
	}
	if st.ZeroPerturbed != 0 {
		t.Fatalf("ZeroPerturbed = %d", st.ZeroPerturbed)
	}
}

func TestRelErrorViolations(t *testing.T) {
	orig := []float64{1, 1, 0}
	dec := []float64{1.2, 1.0, 0.001}
	st, err := RelError(orig, dec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ZeroPerturbed != 1 {
		t.Fatalf("ZeroPerturbed = %d", st.ZeroPerturbed)
	}
	// 1 of 3 bounded (1.0 exact); 1.2 violates; zero perturbed.
	if math.Abs(st.BoundedFrac-1.0/3) > 1e-12 {
		t.Fatalf("BoundedFrac = %g", st.BoundedFrac)
	}
}

func TestRelErrorLengthMismatch(t *testing.T) {
	if _, err := RelError([]float64{1}, []float64{1, 2}, 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRelErrorNonFinite(t *testing.T) {
	orig := []float64{math.NaN(), math.Inf(1), 2}
	dec := []float64{math.NaN(), math.Inf(1), 2}
	st, err := RelError(orig, dec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundedFrac != 1 || st.Max != 0 {
		t.Fatalf("specials mishandled: %+v", st)
	}
}

func TestCompressionRatioAndBitRate(t *testing.T) {
	if cr := CompressionRatio(800, 100); cr != 8 {
		t.Fatalf("CR = %g", cr)
	}
	if !math.IsInf(CompressionRatio(800, 0), 1) {
		t.Fatal("CR with zero bytes should be +Inf")
	}
	if br := BitRate(100, 100); br != 8 {
		t.Fatalf("BitRate = %g", br)
	}
	if br := BitRate(100, 0); br != 0 {
		t.Fatalf("BitRate(n=0) = %g", br)
	}
}

func TestRelPSNR(t *testing.T) {
	orig := []float64{1, 2, 4}
	dec := []float64{1.01, 2.02, 4.04} // uniform 1% relative error
	p, err := RelPSNR(orig, dec)
	if err != nil {
		t.Fatal(err)
	}
	want := -10 * math.Log10(1e-4) // 40 dB
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("RelPSNR = %g, want %g", p, want)
	}
	exact, err := RelPSNR(orig, orig)
	if err != nil || !math.IsInf(exact, 1) {
		t.Fatalf("exact RelPSNR = %g, %v", exact, err)
	}
}

func TestPSNR(t *testing.T) {
	orig := []float64{0, 1, 2, 3, 4}
	dec := []float64{0.1, 1.1, 2.1, 3.1, 4.1}
	p, err := PSNR(orig, dec)
	if err != nil {
		t.Fatal(err)
	}
	want := 20*math.Log10(4) - 10*math.Log10(0.01)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR = %g, want %g", p, want)
	}
}

func TestSkewAngle(t *testing.T) {
	if a := SkewAngle(1, 0, 0, 1, 0, 0); a != 0 {
		t.Fatalf("parallel = %g", a)
	}
	if a := SkewAngle(1, 0, 0, 0, 1, 0); math.Abs(a-90) > 1e-9 {
		t.Fatalf("orthogonal = %g", a)
	}
	if a := SkewAngle(1, 0, 0, -1, 0, 0); math.Abs(a-180) > 1e-9 {
		t.Fatalf("antiparallel = %g", a)
	}
	if a := SkewAngle(0, 0, 0, 0, 0, 0); a != 0 {
		t.Fatalf("both zero = %g", a)
	}
	if a := SkewAngle(0, 0, 0, 1, 0, 0); a != 90 {
		t.Fatalf("one zero = %g", a)
	}
	// Tiny perturbation: angle scales with relative error.
	a := SkewAngle(1000, 0, 0, 1000, 10, 0)
	if math.Abs(a-math.Atan2(10, 1000)*180/math.Pi) > 1e-6 {
		t.Fatalf("small perturbation angle = %g", a)
	}
}

func TestSkewAngles(t *testing.T) {
	ox := []float64{1, 1, 1}
	oy := []float64{0, 0, 0}
	oz := []float64{0, 0, 0}
	dx := []float64{1, 1, 0}
	dy := []float64{0, 1, 1}
	dz := []float64{0, 0, 0}
	st, err := SkewAngles(ox, oy, oz, dx, dy, dz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Max-90) > 1e-9 {
		t.Fatalf("Max = %g", st.Max)
	}
	wantAvg := (0 + 45 + 90) / 3.0
	if math.Abs(st.Avg-wantAvg) > 1e-9 {
		t.Fatalf("Avg = %g, want %g", st.Avg, wantAvg)
	}
	if st.P99 < 89 || st.P99 > 90.1 {
		t.Fatalf("P99 = %g", st.P99)
	}
	if _, err := SkewAngles(ox, oy, oz, dx, dy, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBlockAverages(t *testing.T) {
	dims := []int{2, 2, 4}
	vals := []float64{
		1, 1, 3, 3,
		1, 1, 3, 3,
		5, 5, 7, 7,
		5, 5, 7, 7,
	}
	avg := BlockAverages(vals, dims, 2)
	want := []float64{3, 5} // blocks along x: mean of {1,1,1,1,5,5,5,5}=3, {3,3,3,3,7,7,7,7}=5
	if len(avg) != 2 {
		t.Fatalf("len = %d", len(avg))
	}
	for i := range want {
		if math.Abs(avg[i]-want[i]) > 1e-12 {
			t.Fatalf("avg[%d] = %g, want %g", i, avg[i], want[i])
		}
	}
	if BlockAverages(vals, []int{16}, 2) != nil {
		t.Fatal("non-3D dims should return nil")
	}
}
