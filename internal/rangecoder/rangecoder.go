// Package rangecoder implements a carry-less (Subbotin-style) range coder
// with adaptive frequency models. It is the entropy stage of the FPZIP
// re-implementation (the original FPZIP uses a fast range coder rather
// than Huffman codes) and is reusable for any small-alphabet adaptive
// coding task.
package rangecoder

import "errors"

const (
	top = 1 << 24
	bot = 1 << 16
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("rangecoder: corrupt stream")

// Encoder writes range-coded symbols into an internal buffer.
type Encoder struct {
	low uint32
	rng uint32
	out []byte
}

// NewEncoder returns an Encoder with capacity preallocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Encoder{rng: 0xFFFFFFFF, out: make([]byte, 0, sizeHint)}
}

// Encode narrows the range to the interval [cum, cum+freq) out of total.
// freq must be nonzero and cum+freq <= total <= 1<<16.
func (e *Encoder) Encode(cum, freq, total uint32) {
	r := e.rng / total
	e.low += r * cum
	e.rng = r * freq
	e.normalize()
}

func (e *Encoder) normalize() {
	for {
		if (e.low ^ (e.low + e.rng)) >= top {
			if e.rng >= bot {
				return
			}
			// Range underflow: force alignment.
			e.rng = -e.low & (bot - 1)
		}
		e.out = append(e.out, byte(e.low>>24))
		e.low <<= 8
		e.rng <<= 8
	}
}

// Finish flushes the coder state and returns the encoded bytes.
func (e *Encoder) Finish() []byte {
	for i := 0; i < 4; i++ {
		e.out = append(e.out, byte(e.low>>24))
		e.low <<= 8
	}
	return e.out
}

// Len returns the current encoded length (before Finish).
func (e *Encoder) Len() int { return len(e.out) }

// Decoder reads range-coded symbols.
type Decoder struct {
	low  uint32
	rng  uint32
	code uint32
	buf  []byte
	pos  int
}

// NewDecoder starts decoding buf.
func NewDecoder(buf []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, buf: buf}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *Decoder) next() byte {
	if d.pos < len(d.buf) {
		b := d.buf[d.pos]
		d.pos++
		return b
	}
	// Reading past the end yields zeros; corrupt streams are caught by the
	// model layer (invalid symbols) or by the caller's length checks.
	d.pos++
	return 0
}

// Overrun reports whether the decoder has consumed more bytes than buf
// held (a sign of truncation).
func (d *Decoder) Overrun() bool { return d.pos > len(d.buf)+4 }

// GetFreq returns the cumulative-frequency slot of the next symbol under a
// model with the given total.
func (d *Decoder) GetFreq(total uint32) uint32 {
	r := d.rng / total
	f := (d.code - d.low) / r
	if f >= total {
		f = total - 1 // clamp: only reachable on corrupt input
	}
	return f
}

// Decode consumes the symbol previously located with GetFreq.
func (d *Decoder) Decode(cum, freq, total uint32) {
	r := d.rng / total
	d.low += r * cum
	d.rng = r * freq
	for {
		if (d.low ^ (d.low + d.rng)) >= top {
			if d.rng >= bot {
				return
			}
			d.rng = -d.low & (bot - 1)
		}
		d.code = d.code<<8 | uint32(d.next())
		d.low <<= 8
		d.rng <<= 8
	}
}

// AdaptiveModel is an order-0 adaptive frequency model over a fixed
// alphabet, suitable for both sides of the coder (they must perform
// identical updates).
type AdaptiveModel struct {
	freq  []uint32
	total uint32
	incr  uint32
	limit uint32
}

// NewAdaptiveModel returns a model over `alphabet` symbols, all starting
// equally likely.
func NewAdaptiveModel(alphabet int) *AdaptiveModel {
	m := &AdaptiveModel{
		freq:  make([]uint32, alphabet),
		incr:  32,
		limit: 1 << 15,
	}
	for i := range m.freq {
		m.freq[i] = 1
	}
	//lint:allow intnarrow alphabet < 2^15 by coder contract: total must stay below limit (1<<15)
	m.total = uint32(alphabet)
	return m
}

// EncodeSymbol range-codes symbol s and updates the model.
func (m *AdaptiveModel) EncodeSymbol(e *Encoder, s int) {
	var cum uint32
	for i := 0; i < s; i++ {
		cum += m.freq[i]
	}
	e.Encode(cum, m.freq[s], m.total)
	m.update(s)
}

// DecodeSymbol decodes the next symbol and updates the model.
func (m *AdaptiveModel) DecodeSymbol(d *Decoder) (int, error) {
	f := d.GetFreq(m.total)
	var cum uint32
	s := 0
	for s < len(m.freq) && cum+m.freq[s] <= f {
		cum += m.freq[s]
		s++
	}
	if s >= len(m.freq) {
		return 0, ErrCorrupt
	}
	d.Decode(cum, m.freq[s], m.total)
	m.update(s)
	return s, nil
}

func (m *AdaptiveModel) update(s int) {
	m.freq[s] += m.incr
	m.total += m.incr
	if m.total >= m.limit {
		var tot uint32
		for i := range m.freq {
			m.freq[i] = (m.freq[i] + 1) / 2
			tot += m.freq[i]
		}
		m.total = tot
	}
}

// EncodeBits writes `width` raw bits (MSB-first) through the coder with a
// uniform model — used for residual magnitude bits whose distribution is
// nearly flat.
func (e *Encoder) EncodeBits(v uint64, width uint) {
	for width > 16 {
		width -= 16
		e.Encode(uint32(v>>width&0xFFFF), 1, 1<<16)
	}
	if width > 0 {
		e.Encode(uint32(v&0xFFFF)&((1<<width)-1), 1, 1<<width)
	}
}

// DecodeBits reads `width` raw bits written by EncodeBits.
func (d *Decoder) DecodeBits(width uint) uint64 {
	var v uint64
	for width > 16 {
		width -= 16
		f := d.GetFreq(1 << 16)
		d.Decode(f, 1, 1<<16)
		v = v<<16 | uint64(f)
	}
	if width > 0 {
		f := d.GetFreq(1 << width)
		d.Decode(f, 1, 1<<width)
		v = v<<width | uint64(f)
	}
	return v
}
