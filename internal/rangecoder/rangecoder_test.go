package rangecoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStaticUniformRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	syms := []uint32{0, 5, 9, 3, 3, 7, 1, 0, 9}
	for _, s := range syms {
		e.Encode(s, 1, 10)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	for i, want := range syms {
		f := d.GetFreq(10)
		if f != want {
			t.Fatalf("symbol %d = %d, want %d", i, f, want)
		}
		d.Decode(f, 1, 10)
	}
}

func TestAdaptiveModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 20000)
	for i := range syms {
		// Skewed distribution to exercise adaptation and rescaling.
		if rng.Float64() < 0.8 {
			syms[i] = 0
		} else {
			syms[i] = 1 + rng.Intn(63)
		}
	}
	e := NewEncoder(0)
	em := NewAdaptiveModel(64)
	for _, s := range syms {
		em.EncodeSymbol(e, s)
	}
	buf := e.Finish()

	d := NewDecoder(buf)
	dm := NewAdaptiveModel(64)
	for i, want := range syms {
		got, err := dm.DecodeSymbol(d)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestAdaptiveBeatsFlatOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50000
	e := NewEncoder(0)
	m := NewAdaptiveModel(256)
	for i := 0; i < n; i++ {
		s := 0
		if rng.Float64() >= 0.95 {
			s = 1 + rng.Intn(255)
		}
		m.EncodeSymbol(e, s)
	}
	buf := e.Finish()
	// 95% zeros: entropy ~ 0.66 bits/sym; anything below 2 bits/sym shows
	// real adaptation.
	if bits := float64(len(buf)) * 8 / float64(n); bits > 2 {
		t.Fatalf("adaptive coder used %.2f bits/symbol on 95%%-skewed data", bits)
	}
}

func TestRawBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type field struct {
		v     uint64
		width uint
	}
	var fields []field
	e := NewEncoder(0)
	for i := 0; i < 5000; i++ {
		w := uint(rng.Intn(64) + 1)
		v := rng.Uint64()
		if w < 64 {
			v &= (1 << w) - 1
		}
		fields = append(fields, field{v, w})
		e.EncodeBits(v, w)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	for i, f := range fields {
		if got := d.DecodeBits(f.width); got != f.v {
			t.Fatalf("field %d = %#x, want %#x (width %d)", i, got, f.v, f.width)
		}
	}
}

func TestMixedModelAndBits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewEncoder(0)
	em := NewAdaptiveModel(65)
	type rec struct {
		sym  int
		bits uint64
	}
	var recs []rec
	for i := 0; i < 10000; i++ {
		s := rng.Intn(20)
		var b uint64
		if s > 0 {
			b = rng.Uint64() & ((1 << s) - 1)
		}
		recs = append(recs, rec{s, b})
		em.EncodeSymbol(e, s)
		if s > 0 {
			e.EncodeBits(b, uint(s))
		}
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	dm := NewAdaptiveModel(65)
	for i, r := range recs {
		s, err := dm.DecodeSymbol(d)
		if err != nil || s != r.sym {
			t.Fatalf("record %d: sym %d err %v, want %d", i, s, err, r.sym)
		}
		if s > 0 {
			if got := d.DecodeBits(uint(s)); got != r.bits {
				t.Fatalf("record %d: bits %#x, want %#x", i, got, r.bits)
			}
		}
	}
}

func TestDecoderTruncatedNoPanics(t *testing.T) {
	e := NewEncoder(0)
	m := NewAdaptiveModel(16)
	for i := 0; i < 100; i++ {
		m.EncodeSymbol(e, i%16)
	}
	buf := e.Finish()
	for cut := 0; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut])
		dm := NewAdaptiveModel(16)
		for i := 0; i < 100; i++ {
			if _, err := dm.DecodeSymbol(d); err != nil {
				break
			}
		}
		// Either errors or decodes garbage — must not panic and Overrun
		// detects deep truncation.
		_ = d.Overrun()
	}
}

func TestQuickSymbolStreams(t *testing.T) {
	f := func(seed int64, alphaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := int(alphaSel%100) + 2
		n := rng.Intn(3000) + 1
		syms := make([]int, n)
		for i := range syms {
			syms[i] = rng.Intn(alphabet)
		}
		e := NewEncoder(0)
		em := NewAdaptiveModel(alphabet)
		for _, s := range syms {
			em.EncodeSymbol(e, s)
		}
		buf := e.Finish()
		d := NewDecoder(buf)
		dm := NewAdaptiveModel(alphabet)
		for _, want := range syms {
			got, err := dm.DecodeSymbol(d)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdaptiveEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	syms := make([]int, 1<<16)
	for i := range syms {
		syms[i] = rng.Intn(8)
	}
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(len(syms) / 2)
		m := NewAdaptiveModel(64)
		for _, s := range syms {
			m.EncodeSymbol(e, s)
		}
		e.Finish()
	}
}
