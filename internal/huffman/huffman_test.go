package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func roundTrip(t *testing.T, symbols []int, alphabet int) {
	t.Helper()
	buf, err := EncodeAll(symbols, alphabet)
	if err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}
	got, n, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(symbols) {
		t.Fatalf("len = %d, want %d", len(got), len(symbols))
	}
	for i := range got {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d = %d, want %d", i, got[i], symbols[i])
		}
	}
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, []int{0, 1, 2, 1, 0, 1, 1, 1, 3}, 4)
}

func TestRoundTripSingleSymbol(t *testing.T) {
	syms := make([]int, 1000)
	for i := range syms {
		syms[i] = 7
	}
	roundTrip(t, syms, 16)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	syms := make([]int, 100)
	for i := range syms {
		syms[i] = i % 2
	}
	roundTrip(t, syms, 2)
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 50000)
	for i := range syms {
		// Geometric-ish distribution centered at 32768, like SZ quant codes.
		v := 32768 + int(rng.NormFloat64()*3)
		if v < 0 {
			v = 0
		}
		if v > 65536 {
			v = 65536
		}
		syms[i] = v
	}
	roundTrip(t, syms, 65537)
}

func TestRoundTripUniformLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]int, 20000)
	for i := range syms {
		syms[i] = rng.Intn(1024)
	}
	roundTrip(t, syms, 1024)
}

func TestCompressionBeatsRaw(t *testing.T) {
	// Highly skewed stream must compress well below 8 bits/symbol.
	rng := rand.New(rand.NewSource(3))
	syms := make([]int, 100000)
	for i := range syms {
		if rng.Float64() < 0.95 {
			syms[i] = 0
		} else {
			syms[i] = 1 + rng.Intn(255)
		}
	}
	buf, err := EncodeAll(syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > len(syms)/2 {
		t.Fatalf("poor compression: %d bytes for %d symbols", len(buf), len(syms))
	}
}

func TestEncodeAbsentSymbol(t *testing.T) {
	c, err := Build([]uint64{5, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := c.Encode(w, 1); err == nil {
		t.Fatal("expected error encoding zero-frequency symbol")
	}
	if err := c.Encode(w, 99); err == nil {
		t.Fatal("expected error encoding out-of-range symbol")
	}
}

func TestEmptyFrequencies(t *testing.T) {
	if _, err := Build([]uint64{0, 0, 0}); err == nil {
		t.Fatal("expected error for empty frequency table")
	}
}

func TestEncodeAllRejectsOutOfRange(t *testing.T) {
	if _, err := EncodeAll([]int{0, 5}, 4); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := EncodeAll([]int{-1}, 4); err == nil {
		t.Fatal("expected range error for negative symbol")
	}
}

func TestParseTableCorrupt(t *testing.T) {
	syms := []int{0, 1, 2, 3, 2, 1}
	buf, err := EncodeAll(syms, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix must error, never panic.
	for i := 0; i < len(buf)-1; i++ {
		if _, _, err := DecodeAll(buf[:i]); err == nil {
			// Some truncations may still decode fewer bytes validly only if
			// the full payload happens to be self-contained; the table or
			// count parse must fail for very short prefixes.
			if i < 4 {
				t.Fatalf("prefix %d decoded without error", i)
			}
		}
	}
	// Bit flips in the table region must not panic.
	for i := 0; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		_, _, _ = DecodeAll(mut)
	}
}

func TestCodeLengthsAreKraftFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	freqs := make([]uint64, 300)
	for i := range freqs {
		freqs[i] = uint64(rng.Intn(1000))
	}
	freqs[0] = 1 << 40 // extreme skew
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var kraft float64
	for s := 0; s < c.Alphabet(); s++ {
		if l := c.Length(s); l > 0 {
			kraft += 1 / float64(uint64(1)<<l)
			if l > MaxCodeLen {
				t.Fatalf("code length %d exceeds max", l)
			}
		}
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1", kraft)
	}
}

func TestLimitDepths(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; verify repair keeps codes
	// decodable.
	n := 80
	freqs := make([]uint64, n)
	a, b := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		freqs[i] = a
		a, b = b, a+b
		if a > 1<<55 {
			a = 1 << 55
		}
		if b > 1<<55 {
			b = 1 << 55
		}
	}
	syms := make([]int, 500)
	rng := rand.New(rand.NewSource(5))
	for i := range syms {
		syms[i] = rng.Intn(n)
	}
	roundTrip(t, syms, n)
}

// Property: random symbol streams round-trip for arbitrary alphabets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, alphaSel uint16, length uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := int(alphaSel%2000) + 1
		n := int(length%5000) + 1
		syms := make([]int, n)
		for i := range syms {
			syms[i] = rng.Intn(alphabet)
		}
		buf, err := EncodeAll(syms, alphabet)
		if err != nil {
			return false
		}
		got, _, err := DecodeAll(buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRoundTripPreservesLengths(t *testing.T) {
	freqs := []uint64{10, 0, 5, 5, 0, 0, 1, 100}
	c, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	table := c.AppendTable(nil)
	c2, n, err := ParseTable(table)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(table) {
		t.Fatalf("consumed %d of %d", n, len(table))
	}
	for s := range freqs {
		if c.Length(s) != c2.Length(s) {
			t.Fatalf("symbol %d length mismatch: %d vs %d", s, c.Length(s), c2.Length(s))
		}
	}
}

func BenchmarkEncode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	syms := make([]int, 1<<16)
	for i := range syms {
		syms[i] = 32768 + int(rng.NormFloat64()*2)
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeAll(syms, 65537); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64K(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]int, 1<<16)
	for i := range syms {
		syms[i] = 32768 + int(rng.NormFloat64()*2)
	}
	buf, err := EncodeAll(syms, 65537)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeAll(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLUTDecodeMatchesSlowPath(t *testing.T) {
	// Random skewed codecs: the fast table path must agree with canonical
	// decoding for every symbol, including codes longer than the table.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		alphabet := rng.Intn(3000) + 2
		freqs := make([]uint64, alphabet)
		for i := range freqs {
			if rng.Float64() < 0.3 {
				freqs[i] = uint64(rng.Intn(1_000_000)) + 1
			}
		}
		freqs[rng.Intn(alphabet)] = 1 << 50 // force long codes for the rare ones
		c, err := Build(freqs)
		if err != nil {
			t.Fatal(err)
		}
		var syms []int
		for s := 0; s < alphabet; s++ {
			if c.Length(s) > 0 {
				syms = append(syms, s, s, s)
			}
		}
		w := bitio.NewWriter(0)
		for _, s := range syms {
			if err := c.Encode(w, s); err != nil {
				t.Fatal(err)
			}
		}
		r := bitio.NewReader(w.Bytes())
		for i, want := range syms {
			got, err := c.Decode(r)
			if err != nil {
				t.Fatalf("trial %d symbol %d: %v", trial, i, err)
			}
			if got != want {
				t.Fatalf("trial %d symbol %d: %d != %d", trial, i, got, want)
			}
		}
	}
}
