// Package huffman implements a canonical Huffman coder over integer symbol
// alphabets. It is the entropy stage of the SZ re-implementation (encoding
// linear-scaling quantization codes, alphabets up to 2^16+1 symbols) and of
// the FPZIP residual coder (bit-length alphabets).
//
// Codes are canonical: only the code lengths are serialized, and both sides
// rebuild identical code books, which keeps headers small and decoding
// table-driven.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// MaxCodeLen is the longest admissible code. Lengths are forced below this
// bound by the package-depth limiting pass, so a length always fits in 6 bits.
const MaxCodeLen = 58

var (
	// ErrInvalidTable indicates a corrupted serialized code table.
	ErrInvalidTable = errors.New("huffman: invalid code table")
	// ErrBadSymbol indicates an attempt to encode a symbol that had zero
	// frequency when the code book was built.
	ErrBadSymbol = errors.New("huffman: symbol absent from code book")
)

// Codec holds a canonical Huffman code book for symbols in [0, alphabet).
type Codec struct {
	alphabet int
	lengths  []uint8  // code length per symbol; 0 = absent
	codes    []uint64 // canonical code per symbol (valid when lengths>0)

	// Decoding acceleration: first code value and first index per length.
	firstCode  [MaxCodeLen + 2]uint64
	firstIndex [MaxCodeLen + 2]int
	symByOrder []uint32 // symbols sorted by (length, symbol)
	maxLen     uint8
	minLen     uint8
	count      int // number of present symbols

	// lut accelerates decoding of codes up to lutBits long: indexed by the
	// next lutBits of the stream, each entry holds symbol<<6 | length
	// (plus 1 so 0 means "no short code here; take the slow path").
	lut     []uint32
	lutBits uint
}

// lutMaxBits caps the fast-path table at 2^12 entries (16 KiB), which
// covers the code lengths that dominate SZ quantization-code streams.
const lutMaxBits = 12

type hnode struct {
	freq   uint64
	symbol int // -1 for internal
	left   *hnode
	right  *hnode
	seq    int // tie-break for determinism
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical code book from the frequency table freqs,
// indexed by symbol. Symbols with zero frequency receive no code.
func Build(freqs []uint64) (*Codec, error) {
	c := &Codec{
		alphabet: len(freqs),
		lengths:  make([]uint8, len(freqs)),
		codes:    make([]uint64, len(freqs)),
	}
	h := make(hheap, 0, len(freqs))
	seq := 0
	for sym, f := range freqs {
		if f > 0 {
			h = append(h, &hnode{freq: f, symbol: sym, seq: seq})
			seq++
			c.count++
		}
	}
	if c.count == 0 {
		return nil, errors.New("huffman: empty frequency table")
	}
	if c.count == 1 {
		// Single symbol: give it a 1-bit code so the stream is decodable.
		c.lengths[h[0].symbol] = 1
	} else {
		heap.Init(&h)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*hnode)
			b := heap.Pop(&h).(*hnode)
			heap.Push(&h, &hnode{freq: a.freq + b.freq, symbol: -1, left: a, right: b, seq: seq})
			seq++
		}
		root := h[0]
		assignDepths(root, 0, c.lengths)
		limitDepths(c.lengths, MaxCodeLen)
	}
	c.finish()
	return c, nil
}

func assignDepths(n *hnode, depth uint8, lengths []uint8) {
	if n.symbol >= 0 {
		lengths[n.symbol] = depth
		return
	}
	assignDepths(n.left, depth+1, lengths)
	assignDepths(n.right, depth+1, lengths)
}

// limitDepths enforces a maximum code length using the standard
// Kraft-inequality repair: overlong codes are clipped and shorter codes are
// lengthened until the Kraft sum is feasible again.
func limitDepths(lengths []uint8, maxLen uint8) {
	over := false
	for _, l := range lengths {
		if l > maxLen {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Kraft budget in units of 2^-maxLen.
	budget := uint64(1) << maxLen
	var used uint64
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		if l > maxLen {
			lengths[i] = maxLen
			l = maxLen
		}
		used += uint64(1) << (maxLen - l)
	}
	// Lengthen the shortest codes until feasible.
	for used > budget {
		// find a symbol with the smallest length < maxLen to demote
		best := -1
		for i, l := range lengths {
			if l > 0 && l < maxLen && (best == -1 || l < lengths[best]) {
				best = i
			}
		}
		if best == -1 {
			// Invariant: with ≤ 2^24 symbols at lengths ≤ MaxCodeLen = 58 the
			// Kraft sum always becomes feasible (used ≤ count ≪ 2^58), so a
			// demotable symbol exists; encode-side only — ParseTable
			// validates Kraft on decode instead of repairing.
			panic("huffman: cannot satisfy Kraft inequality") //lint:allow nopanic caller invariant, not input-driven
		}
		used -= uint64(1) << (maxLen - lengths[best])
		lengths[best]++
		used += uint64(1) << (maxLen - lengths[best])
	}
}

// finish derives canonical codes and decode tables from c.lengths.
func (c *Codec) finish() {
	type ls struct {
		sym int
		l   uint8
	}
	present := make([]ls, 0, c.count)
	c.count = 0
	for sym, l := range c.lengths {
		if l > 0 {
			present = append(present, ls{sym, l})
			c.count++
		}
	}
	sort.Slice(present, func(i, j int) bool {
		if present[i].l != present[j].l {
			return present[i].l < present[j].l
		}
		return present[i].sym < present[j].sym
	})
	c.symByOrder = make([]uint32, len(present))
	if len(present) == 0 {
		return
	}
	c.minLen = present[0].l
	c.maxLen = present[len(present)-1].l
	code := uint64(0)
	prevLen := present[0].l
	for l := uint8(0); l <= prevLen; l++ {
		c.firstIndex[l] = 0
	}
	c.firstCode[prevLen] = 0
	for i, p := range present {
		if p.l != prevLen {
			for l := prevLen + 1; l <= p.l; l++ {
				code <<= 1
				c.firstCode[l] = code
				c.firstIndex[l] = i
			}
			prevLen = p.l
		}
		c.codes[p.sym] = code
		//lint:allow intnarrow sym < alphabet <= 1<<24 (ParseTable/Build bound)
		c.symByOrder[i] = uint32(p.sym)
		code++
	}

	// Fast-path table for short codes.
	c.lutBits = uint(c.maxLen)
	if c.lutBits > lutMaxBits {
		c.lutBits = lutMaxBits
	}
	c.lut = make([]uint32, 1<<c.lutBits)
	for _, p := range present {
		if uint(p.l) > c.lutBits {
			break // present is sorted by length
		}
		//lint:allow intnarrow sym < alphabet <= 1<<24 (ParseTable/Build bound)
		entry := uint32(p.sym)<<6 | (uint32(p.l) + 1)
		base := c.codes[p.sym] << (c.lutBits - uint(p.l))
		span := uint64(1) << (c.lutBits - uint(p.l))
		for off := uint64(0); off < span; off++ {
			c.lut[base+off] = entry
		}
	}
}

// Encode appends the code for symbol to w.
func (c *Codec) Encode(w *bitio.Writer, symbol int) error {
	if symbol < 0 || symbol >= c.alphabet || c.lengths[symbol] == 0 {
		return fmt.Errorf("%w: %d", ErrBadSymbol, symbol)
	}
	w.WriteBits(c.codes[symbol], uint(c.lengths[symbol]))
	return nil
}

// Decode reads one symbol from r using the canonical-code tables: at each
// candidate length l, `code` is a valid code iff it falls in
// [firstCode[l], firstCode[l]+numCodes(l)).
func (c *Codec) Decode(r *bitio.Reader) (int, error) {
	// Fast path: one table lookup resolves any code ≤ lutBits long.
	if peek, got := r.PeekBits(c.lutBits); got == c.lutBits {
		if e := c.lut[peek&(1<<c.lutBits-1)]; e != 0 {
			e--
			r.Skip(uint(e & 63))
			return int(e >> 6), nil
		}
	} else if got > 0 {
		// Near EOF: the remaining bits may still hold a short code.
		if e := c.lut[(peek<<(c.lutBits-got))&(1<<c.lutBits-1)]; e != 0 {
			e--
			if l := uint(e & 63); l <= got {
				r.Skip(l)
				return int(e >> 6), nil
			}
		}
	}
	code, err := r.ReadBits(uint(c.minLen))
	if err != nil {
		return 0, err
	}
	l := c.minLen
	for {
		var count int
		if l < c.maxLen {
			count = c.firstIndex[l+1] - c.firstIndex[l]
		} else {
			count = len(c.symByOrder) - c.firstIndex[l]
		}
		if count > 0 && code >= c.firstCode[l] && code-c.firstCode[l] < uint64(count) {
			//lint:allow intnarrow guarded: code-firstCode[l] < count <= alphabet <= 1<<24
			return int(c.symByOrder[c.firstIndex[l]+int(code-c.firstCode[l])]), nil
		}
		if l >= c.maxLen {
			return 0, ErrInvalidTable
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		l++
	}
}

// Length returns the code length for symbol (0 if absent).
func (c *Codec) Length(symbol int) int {
	if symbol < 0 || symbol >= c.alphabet {
		return 0
	}
	return int(c.lengths[symbol])
}

// Alphabet returns the alphabet size the codec was built for.
func (c *Codec) Alphabet() int { return c.alphabet }

// AppendTable serializes the code book to dst. The format is:
// uvarint(alphabet), uvarint(#present), then for each present symbol in
// increasing order uvarint(delta from previous symbol + 1) and 6 bits of
// length packed two-per-... (kept simple: one byte per length).
func (c *Codec) AppendTable(dst []byte) []byte {
	dst = bitio.AppendUvarint(dst, uint64(c.alphabet))
	dst = bitio.AppendUvarint(dst, uint64(c.count))
	prev := -1
	for sym, l := range c.lengths {
		if l == 0 {
			continue
		}
		dst = bitio.AppendUvarint(dst, uint64(sym-prev))
		dst = append(dst, byte(l))
		prev = sym
	}
	return dst
}

// ParseTable reconstructs a Codec from data produced by AppendTable,
// returning the codec and the number of bytes consumed.
func ParseTable(data []byte) (*Codec, int, error) {
	alpha, n := bitio.Uvarint(data)
	if n == 0 || alpha == 0 || alpha > 1<<24 {
		return nil, 0, ErrInvalidTable
	}
	off := n
	cnt, n := bitio.Uvarint(data[off:])
	if n == 0 || cnt == 0 || cnt > alpha {
		return nil, 0, ErrInvalidTable
	}
	off += n
	c := &Codec{
		//lint:allow intnarrow guarded above: alpha <= 1<<24
		alphabet: int(alpha),
		lengths:  make([]uint8, alpha),
		codes:    make([]uint64, alpha),
	}
	prev := -1
	for i := uint64(0); i < cnt; i++ {
		d, n := bitio.Uvarint(data[off:])
		if n == 0 || d == 0 {
			return nil, 0, ErrInvalidTable
		}
		off += n
		if d > alpha {
			// A delta beyond the alphabet size cannot be valid, and an
			// unchecked int(d) of a near-2^64 delta would wrap negative
			// and index lengths[] out of range below.
			return nil, 0, ErrInvalidTable
		}
		//lint:allow intnarrow guarded above: d <= alpha <= 1<<24
		sym := prev + int(d)
		if sym >= c.alphabet {
			return nil, 0, ErrInvalidTable
		}
		if off >= len(data) {
			return nil, 0, ErrInvalidTable
		}
		l := data[off]
		off++
		if l == 0 || l > MaxCodeLen {
			return nil, 0, ErrInvalidTable
		}
		c.lengths[sym] = l
		prev = sym
	}
	// Validate Kraft inequality to reject corrupt tables that would make
	// Decode loop or misbehave.
	var kraft uint64
	for _, l := range c.lengths {
		if l > 0 {
			kraft += uint64(1) << (MaxCodeLen - l)
		}
	}
	if kraft > 1<<MaxCodeLen {
		return nil, 0, ErrInvalidTable
	}
	c.finish()
	return c, off, nil
}

// EncodeAll is a convenience that Huffman-encodes all symbols into a fresh
// writer and returns (table || bit padding-aligned payload) with a uvarint
// payload-bit-count between them.
func EncodeAll(symbols []int, alphabet int) ([]byte, error) {
	freqs := make([]uint64, alphabet)
	for _, s := range symbols {
		if s < 0 || s >= alphabet {
			return nil, fmt.Errorf("huffman: symbol %d out of range %d", s, alphabet)
		}
		freqs[s]++
	}
	c, err := Build(freqs)
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(symbols) / 2)
	for _, s := range symbols {
		if err := c.Encode(w, s); err != nil {
			return nil, err
		}
	}
	out := c.AppendTable(nil)
	out = bitio.AppendUvarint(out, uint64(len(symbols)))
	out = append(out, w.Bytes()...)
	return out, nil
}

// DecodeAll inverts EncodeAll, returning the symbols and bytes consumed.
func DecodeAll(data []byte) ([]int, int, error) {
	c, off, err := ParseTable(data)
	if err != nil {
		return nil, 0, err
	}
	n, k := bitio.Uvarint(data[off:])
	if k == 0 || n > uint64(len(data)-off-k)*8 {
		// Every symbol consumes at least one payload bit, so a count
		// beyond the remaining bit budget is corrupt — and rejecting it
		// here also stops attacker-chosen allocation sizes.
		return nil, 0, ErrInvalidTable
	}
	off += k
	r := bitio.NewReader(data[off:])
	out := make([]int, n)
	for i := range out {
		s, err := c.Decode(r)
		if err != nil {
			return nil, 0, err
		}
		out[i] = s
	}
	//lint:allow intnarrow BitsRead <= 8*len(data), fits int
	off += int((r.BitsRead() + 7) / 8)
	return out, off, nil
}
