package repro

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/testutil"
)

// Cancellation tests: every Ctx entry point must return the context's
// error when cancelled (before or during the work) and tear down its
// worker pool completely — zero extra goroutines after settle, which
// testutil.NoLeak asserts at test end.

// cancelAfterReader cancels a context once n bytes have been delivered,
// then keeps serving data — so any further progress is the pipeline's
// choice, not starvation.
type cancelAfterReader struct {
	r      io.Reader
	n      int64
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if c.n > 0 {
		if c.n -= int64(n); c.n <= 0 {
			c.cancel()
		}
	}
	return n, err
}

func bigField() ([]float64, []int) {
	data := make([]float64, 8192)
	for i := range data {
		data[i] = float64(i%613) + 2
	}
	return data, []int{512, 16}
}

func TestCompressStreamCtxPreCancelled(t *testing.T) {
	defer testutil.NoLeak(t)()
	data, dims := bigField()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sink bytes.Buffer
	_, err := CompressStreamCtx(ctx, bytes.NewReader(rawLE(data)), &sink, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompressStreamCtxMidStream(t *testing.T) {
	defer testutil.NoLeak(t)()
	data, dims := bigField()
	raw := rawLE(data)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterReader{r: bytes.NewReader(raw), n: int64(len(raw) / 4), cancel: cancel}
	var sink bytes.Buffer
	stats, err := CompressStreamCtx(ctx, src, &sink, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.BytesIn >= int64(len(raw)) {
		t.Errorf("pipeline consumed the whole input (%d bytes) after cancellation", stats.BytesIn)
	}
}

func TestDecompressStreamCtxMidStream(t *testing.T) {
	defer testutil.NoLeak(t)()
	data, dims := bigField()
	var comp bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &comp, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 8}); err != nil {
		t.Fatal(err)
	}
	stream := comp.Bytes()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecompressStreamCtx(ctx, bytes.NewReader(stream), io.Discard, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterReader{r: bytes.NewReader(stream), n: int64(len(stream) / 4), cancel: cancel}
	stats, err := DecompressStreamCtx(ctx, src, io.Discard, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream: err = %v, want context.Canceled", err)
	}
	if stats.BytesIn >= int64(len(stream)) {
		t.Errorf("pipeline consumed the whole container (%d bytes) after cancellation", stats.BytesIn)
	}
}

func TestParallelCtxCancelled(t *testing.T) {
	defer testutil.NoLeak(t)()
	data, dims := bigField()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompressParallel(data, dims, 1e-2, SZT,
		&ParallelOptions{Chunks: 16, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("compress: err = %v, want context.Canceled", err)
	}
	buf, err := CompressParallel(data, dims, 1e-2, SZT, &ParallelOptions{Chunks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressParallelCtx(ctx, buf, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("decompress: err = %v, want context.Canceled", err)
	}
	// A live context must not disturb the result.
	dec, gotDims, err := DecompressParallelCtx(context.Background(), buf, 0, nil)
	if err != nil || len(dec) != len(data) || len(gotDims) != len(dims) {
		t.Fatalf("live ctx decode: err=%v len=%d", err, len(dec))
	}
}

// TestStreamCtxNilBehavesAsBackground pins the nil-context convenience.
func TestStreamCtxNilBehavesAsBackground(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i + 1)
	}
	var comp bytes.Buffer
	//lint:allow all nil ctx is the documented convenience form under test
	if _, err := CompressStreamCtx(nil, bytes.NewReader(rawLE(data)), &comp, []int{64}, 1e-2, SZT, nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	//lint:allow all nil ctx is the documented convenience form under test
	if _, err := DecompressStreamCtx(nil, bytes.NewReader(comp.Bytes()), &out, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes()[:8], rawLE(data)[:8]) && out.Len() != len(data)*8 {
		t.Fatal("nil-ctx round trip broken")
	}
}

// TestArchiveStreamCtxCancelled extends the cancellation contract to
// the archive path (WithContext is the one way in): a writer default of
// a cancelled context fails AddField; a mid-stream cancellation stops
// the pipeline before the input is consumed; and a handle from
// OpenArchiveStream honors ReadRowsCtx cancellation.
func TestArchiveStreamCtxCancelled(t *testing.T) {
	defer testutil.NoLeak(t)()
	data, dims := bigField()
	raw := rawLE(data)

	// Pre-cancelled context as the writer-wide default.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	var sink bytes.Buffer
	aw, err := NewArchiveStreamWriter(&sink, WithContext(pre), WithChunkRows(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.AddField("f", bytes.NewReader(raw), dims, 1e-2, SZT); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled AddField err = %v, want context.Canceled", err)
	}

	// Mid-stream cancellation via a per-field option.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sink2 bytes.Buffer
	aw2, err := NewArchiveStreamWriter(&sink2, WithChunkRows(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	src := &cancelAfterReader{r: bytes.NewReader(raw), n: int64(len(raw) / 4), cancel: cancel}
	st, err := aw2.AddField("f", src, dims, 1e-2, SZT, WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream AddField err = %v, want context.Canceled", err)
	}
	if st != nil && st.BytesIn >= int64(len(raw)) {
		t.Errorf("archive pipeline consumed the whole input after cancellation")
	}

	// Seekable read path: a cancelled context fails ReadRowsCtx on a
	// healthy archive.
	var ok bytes.Buffer
	aw3, err := NewArchiveStreamWriter(&ok, WithChunkRows(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw3.AddField("f", bytes.NewReader(raw), dims, 1e-2, SZT); err != nil {
		t.Fatal(err)
	}
	if err := aw3.Close(); err != nil {
		t.Fatal(err)
	}
	as, err := OpenArchiveStream(bytes.NewReader(ok.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h, err := as.Field("f")
	if err != nil {
		t.Fatal(err)
	}
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	dst := make([]float64, len(data))
	if err := h.ReadRowsCtx(dead, dst, 0, h.Rows()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadRowsCtx err = %v, want context.Canceled", err)
	}
	if err := h.ReadRows(dst, 0, h.Rows()); err != nil {
		t.Fatalf("handle unusable after a cancelled read: %v", err)
	}
}
