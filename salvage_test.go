package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/streamfmt"
	"repro/internal/testutil"
)

// salvageFixture builds a clean multi-chunk stream container plus its
// clean decoded bytes and per-frame extents.
func salvageFixture(t *testing.T) (stream, clean []byte, frames []streamfmt.FrameInfo, dims []int) {
	t.Helper()
	dims = []int{12, 4}
	data := make([]float64, 48)
	for i := range data {
		data[i] = 40*math.Cos(float64(i)/3) + 90
	}
	var sb bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(rawLE(data)), &sb, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 2}); err != nil {
		t.Fatal(err)
	}
	stream = sb.Bytes()
	clean = rawLEOfDecoded(t, stream)
	rep, err := streamfmt.ScanSalvage(stream, streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IndexOK || len(rep.Frames) != 6 {
		t.Fatalf("fixture: IndexOK=%v frames=%d, want intact index and 6 frames", rep.IndexOK, len(rep.Frames))
	}
	return stream, clean, rep.Frames, dims
}

// salvage runs DecompressStreamSalvage over buf and returns report+output.
func salvage(t *testing.T, buf []byte) (*SalvageReport, []byte) {
	t.Helper()
	var out bytes.Buffer
	rep, err := DecompressStreamSalvage(bytes.NewReader(buf), &out, nil)
	if err != nil {
		t.Fatalf("salvage errored on frame damage: %v", err)
	}
	return rep, out.Bytes()
}

// checkRegions verifies the salvage output: recovered rows byte-equal
// the clean decode, lost rows are all NaN.
func checkRegions(t *testing.T, rep *SalvageReport, got, clean []byte, rowStride int) {
	t.Helper()
	if len(got) != len(clean) {
		t.Fatalf("salvage wrote %d bytes, clean decode is %d", len(got), len(clean))
	}
	lost := make(map[int]bool)
	for _, rr := range rep.LostRows {
		for r := rr.Lo; r < rr.Hi; r++ {
			lost[r] = true
		}
	}
	rows := len(clean) / (rowStride * 8)
	vals := fromLE(got)
	cleanVals := fromLE(clean)
	for r := 0; r < rows; r++ {
		for c := 0; c < rowStride; c++ {
			i := r*rowStride + c
			if lost[r] {
				if !math.IsNaN(vals[i]) {
					t.Fatalf("row %d is reported lost but element %d = %v, want NaN", r, i, vals[i])
				}
			} else if vals[i] != cleanVals[i] {
				t.Fatalf("recovered row %d differs from clean decode at element %d: %v != %v", r, i, vals[i], cleanVals[i])
			}
		}
	}
}

func TestSalvageCleanStream(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, _, _ := salvageFixture(t)
	rep, got := salvage(t, stream)
	if rep.Recovered != rep.Chunks || rep.Lost() != 0 || !rep.IndexOK || rep.Truncated {
		t.Fatalf("clean stream: %+v", rep)
	}
	if !bytes.Equal(got, clean) {
		t.Fatal("clean salvage output differs from DecompressStream")
	}
}

// TestSalvageOneCorruptedChunk is the acceptance case: damage exactly
// one chunk's payload; every other chunk is recovered and the report
// names the exact lost chunk, rows, and byte range.
func TestSalvageOneCorruptedChunk(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _ := salvageFixture(t)
	const victim = 2
	mut := append([]byte(nil), stream...)
	mut[frames[victim].End-1] ^= 0xFF // last payload byte: CRC must catch it

	rep, got := salvage(t, mut)
	if rep.Chunks != 6 || rep.Recovered != 5 {
		t.Fatalf("recovered %d of %d chunks, want 5 of 6", rep.Recovered, rep.Chunks)
	}
	if len(rep.LostChunks) != 1 || rep.LostChunks[0] != victim {
		t.Fatalf("LostChunks = %v, want [%d]", rep.LostChunks, victim)
	}
	if len(rep.LostRows) != 1 || rep.LostRows[0] != (RowRange{4, 6}) {
		t.Fatalf("LostRows = %v, want [{4 6}] (chunk %d covers rows 4-5)", rep.LostRows, victim)
	}
	if len(rep.LostBytes) != 1 ||
		rep.LostBytes[0].Lo != frames[victim].Offset || rep.LostBytes[0].Hi != frames[victim].End {
		t.Fatalf("LostBytes = %v, want [{%d %d}]", rep.LostBytes, frames[victim].Offset, frames[victim].End)
	}
	if !rep.IndexOK || rep.Truncated {
		t.Fatalf("IndexOK=%v Truncated=%v, want intact index, no truncation", rep.IndexOK, rep.Truncated)
	}
	checkRegions(t, rep, got, clean, 4)
}

// TestSalvageDamagedLengthPrefix destroys a chunk's frame header; with
// the index intact, the successors must not desynchronize.
func TestSalvageDamagedLengthPrefix(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _ := salvageFixture(t)
	const victim = 1
	mut := append([]byte(nil), stream...)
	mut[frames[victim].Offset] = 0x7E   // frame tag destroyed
	mut[frames[victim].Offset+1] ^= 0x3 // length prefix garbled

	rep, got := salvage(t, mut)
	if rep.Recovered != 5 || len(rep.LostChunks) != 1 || rep.LostChunks[0] != victim {
		t.Fatalf("recovered=%d lost=%v, want 5 recovered, chunk %d lost", rep.Recovered, rep.LostChunks, victim)
	}
	checkRegions(t, rep, got, clean, 4)
}

// TestSalvageDamagedIndex corrupts the sealing index frame: the forward
// scan must still recover every chunk from the length prefixes alone.
func TestSalvageDamagedIndex(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _ := salvageFixture(t)
	mut := append([]byte(nil), stream...)
	idxStart := frames[len(frames)-1].End
	mut[idxStart+2] ^= 0xFF

	rep, got := salvage(t, mut)
	if rep.IndexOK {
		t.Fatal("index was corrupted but reported intact")
	}
	if rep.Recovered != rep.Chunks || rep.Lost() != 0 {
		t.Fatalf("recovered %d of %d with lost=%v; forward scan should recover all chunks",
			rep.Recovered, rep.Chunks, rep.LostChunks)
	}
	if !bytes.Equal(got, clean) {
		t.Fatal("output differs from clean decode")
	}
}

// TestSalvageTruncated cuts the container mid-chunk: everything before
// the cut is recovered, everything after is reported lost.
func TestSalvageTruncated(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _ := salvageFixture(t)
	cut := frames[4].Offset + 3 // inside chunk 4's frame header
	rep, got := salvage(t, stream[:cut])
	if !rep.Truncated {
		t.Fatal("truncation not reported")
	}
	if rep.Recovered != 4 {
		t.Fatalf("recovered %d chunks, want the 4 before the cut", rep.Recovered)
	}
	if len(rep.LostChunks) != 2 || rep.LostChunks[0] != 4 || rep.LostChunks[1] != 5 {
		t.Fatalf("LostChunks = %v, want [4 5]", rep.LostChunks)
	}
	if len(rep.LostRows) != 1 || rep.LostRows[0] != (RowRange{8, 12}) {
		t.Fatalf("LostRows = %v, want [{8 12}]", rep.LostRows)
	}
	checkRegions(t, rep, got, clean, 4)
}

// TestSalvageDoubleDamageWithIndex loses two non-adjacent chunks; both
// are reported and everything else survives.
func TestSalvageDoubleDamageWithIndex(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _ := salvageFixture(t)
	mut := append([]byte(nil), stream...)
	mut[frames[0].End-1] ^= 0x01
	mut[frames[3].End-1] ^= 0x01
	rep, got := salvage(t, mut)
	if rep.Recovered != 4 || len(rep.LostChunks) != 2 ||
		rep.LostChunks[0] != 0 || rep.LostChunks[1] != 3 {
		t.Fatalf("recovered=%d lost=%v, want 4 recovered, chunks 0 and 3 lost", rep.Recovered, rep.LostChunks)
	}
	if len(rep.LostBytes) != 2 {
		t.Fatalf("LostBytes = %v, want two separate damaged regions", rep.LostBytes)
	}
	checkRegions(t, rep, got, clean, 4)
}
