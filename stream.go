package repro

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/floatbits"
	"repro/internal/grid"
	"repro/internal/streamfmt"
)

// Streaming compression: the same chunked scheme as CompressParallel —
// slices along dims[0], one self-describing Compress stream per chunk —
// but the field flows through a bounded pipeline instead of being
// materialized: a reader goroutine slices rows off an io.Reader of raw
// little-endian float64s, a worker pool compresses chunks concurrently,
// and a writer goroutine emits framed chunks (internal/streamfmt) in
// field order. Peak memory is O(workers × chunk), independent of field
// size, which is what lets a rank open fields larger than its share of
// RAM before dumping to the parallel file system (the paper's §V.C
// deployment shape, as FRaZ and the bit-adaptive particle compressor
// stress for practical pipelines).
//
// Both directions come in a Ctx variant that threads a context.Context
// through the reader/worker/writer stages: cancellation (like a sink
// write error) closes the pipeline's stop channel, after which the
// reader pulls no further frames, the worker pool drains, and every
// pipeline goroutine exits before the call returns. The one blocking
// operation a context cannot interrupt is a Read/Write already in
// flight on the caller's reader or writer — teardown completes when
// that call returns, the same contract as any blocking Go I/O.
//
// The containers this pipeline seals are also randomly addressable:
// OpenStream (seek.go) rebuilds the chunk offset table from the tail
// index frame and serves arbitrary row ranges at O(touched chunks)
// cost through the same worker-pool machinery.

// StreamOptions tunes the deprecated positional CompressStream entry
// points.
//
// Deprecated: use the StreamOption functional options (WithWorkers,
// WithChunkRows, WithParity, WithVerifyOnWrite, WithCompressorOptions,
// WithMemoryBudget) with CompressStreamOpts/DecompressStreamOpts. The
// struct is retained so existing callers keep compiling; it is
// translated into the same options internally, so output is
// bit-identical.
type StreamOptions struct {
	// Workers is the compression worker-pool size (default GOMAXPROCS).
	Workers int
	// ChunkRows is the number of dims[0]-rows per chunk (default: enough
	// rows for ~256Ki elements, clamped to [1, dims[0]]). The last chunk
	// is clipped at the field boundary.
	ChunkRows int
	// ParityK, when positive, emits one XOR parity frame per K data
	// chunks (the final group may be shorter), making the container
	// self-healing: salvage and the seekable read path reconstruct any
	// single lost chunk per group byte-identically. Size overhead is
	// roughly 1/K of the compressed payload; zero keeps today's
	// parity-free format bit-identical.
	ParityK int
	// VerifyOnWrite decode-verifies every sealed chunk against its
	// source rows — shape, NaN/Inf/zero preservation, and the
	// point-wise relative bound where the algorithm guarantees it —
	// before the index commits. A mismatch fails the stream with a
	// typed ErrVerifyFailed, turning silent encoder or memory
	// corruption into a write-time error at the cost of one extra
	// decode per chunk.
	VerifyOnWrite bool
	// Options passes through per-chunk compressor options.
	Options *Options
}

// StreamStats reports per-stream observability counters. All fields are
// totals over the whole stream; wall times are per stage (Codec summed
// across workers, so it can exceed the end-to-end time).
type StreamStats struct {
	// Chunks is the number of chunk frames processed.
	Chunks int
	// BytesIn and BytesOut count the bytes consumed from the source and
	// emitted to the sink, container framing included.
	BytesIn, BytesOut int64
	// ReadWall is time spent reading and unmarshalling input.
	ReadWall time.Duration
	// CodecWall is time spent in Compress/Decompress, summed over workers.
	CodecWall time.Duration
	// WriteWall is time spent marshalling and writing output.
	WriteWall time.Duration
	// MaxInFlight is the peak number of chunks alive in the pipeline.
	MaxInFlight int
	// BuffersAllocated is the number of chunk-sized scratch buffers the
	// pipeline allocated; it is bounded by workers+2 regardless of field
	// size (the bounded-memory guarantee the tests assert).
	BuffersAllocated int
	// ParityFrames counts parity frames handled inline: emitted on
	// compress, verified on linear decompress, skipped during fetch on
	// range reads (parity frames fetched again for a repair are counted
	// in BytesIn, not here).
	ParityFrames int
	// RepairedChunks counts chunks reconstructed from parity on the
	// seekable read path (the salvage path reports repairs in its
	// SalvageReport instead).
	RepairedChunks int
	// VerifiedChunks counts chunks decode-verified by VerifyOnWrite.
	VerifiedChunks int
}

// streamJob carries one chunk through the pipeline.
type streamJob struct {
	seq  int
	data []float64 // chunk input (compress) — freelisted
	rows int
	in   []byte // chunk payload (decompress) — freelisted after decode
	out  []byte // compressed frame payload (compress)
	dec  []float64
	err  error
	done chan struct{}
}

// inflight tracks the live-chunk high-water mark.
type inflight struct {
	cur, max atomic.Int64
}

func (f *inflight) enter() {
	c := f.cur.Add(1)
	for {
		m := f.max.Load()
		if c <= m || f.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (f *inflight) leave() { f.cur.Add(-1) }

// defaultChunkRows targets ~256Ki elements (2 MiB of float64) per
// chunk, shrunk so a chunk's raw bytes stay within maxChunkBytes when
// the caller compresses under DecodeLimits: a container written under
// limits L must round-trip under the same L, and the decoder enforces
// MaxChunkBytes against every frame payload. Raw size is the
// conservative proxy for payload size (the codecs frame their output
// within the raw footprint for all supported algorithms). The floor of
// one row stands even when a single row exceeds the cap — chunks cannot
// split rows — which the decode side then reports per frame.
func defaultChunkRows(rows, rowStride int, maxChunkBytes int64) int {
	targetElems := int64(256 << 10)
	if maxChunkBytes > 0 {
		if byElems := maxChunkBytes / 8; byElems < targetElems {
			targetElems = byElems
		}
	}
	cr := targetElems / int64(rowStride)
	if cr < 1 {
		cr = 1
	}
	if cr > int64(rows) {
		cr = int64(rows)
	}
	return int(cr) // bounded by rows and the 256Ki-element target
}

// orDefault returns ctx, or context.Background for nil.
func orDefault(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// ctxCause labels a context's error for pipeline failure reporting.
func ctxCause(ctx context.Context) error {
	return fmt.Errorf("repro: stream cancelled: %w", context.Cause(ctx))
}

// CompressStreamOpts reads a raw little-endian float field of the given
// dims from r, compresses it chunk by chunk under the point-wise
// relative bound, and writes a framed stream container (decodable by
// DecompressStreamOpts) to w. Peak memory is O(workers × chunk), not
// O(field) — and WithMemoryBudget turns that into an explicit byte
// target by deriving the unset chunk-rows/worker knobs. The chunk
// payloads are ordinary Compress streams, so for matching chunk
// boundaries the decoded field is element-wise identical to Decompress
// of a CompressParallel stream. Elements are float64 unless WithFloat32
// selects the narrow input width (widened exactly, identical container
// bytes).
func CompressStreamOpts(r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm, opts ...StreamOption) (*StreamStats, error) {
	return compressStream(resolveStreamConfig(opts), r, w, dims, relBound, algo)
}

// CompressStream compresses a raw little-endian float64 field from r
// into a stream container on w.
//
// Deprecated: use CompressStreamOpts; this wrapper translates opts into
// the equivalent StreamOption values and delegates, so its output is
// bit-identical.
func CompressStream(r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm, opts *StreamOptions) (*StreamStats, error) {
	return CompressStreamOpts(r, w, dims, relBound, algo, opts.streamOptions()...)
}

// CompressStreamCtx is CompressStream under a context.
//
// Deprecated: use CompressStreamOpts with WithContext.
func CompressStreamCtx(ctx context.Context, r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm, opts *StreamOptions) (*StreamStats, error) {
	return CompressStreamOpts(r, w, dims, relBound, algo, append(opts.streamOptions(), WithContext(ctx))...)
}

// CompressStream32 is CompressStream for a raw little-endian float32
// field: the reader widens each element to float64 (exact) and the rest
// of the pipeline — worker pool, chunk payloads, container framing — is
// the float64 path, so the container is decodable by DecompressStream
// (float64 out) or DecompressStream32 (float32 out). Mirrors Compress32's
// widening semantics: the point-wise relative bound applies to the
// widened values, which equal the float32 inputs exactly.
//
// Deprecated: use CompressStreamOpts with WithFloat32.
func CompressStream32(r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm, opts *StreamOptions) (*StreamStats, error) {
	return CompressStreamOpts(r, w, dims, relBound, algo, append(opts.streamOptions(), WithFloat32())...)
}

// CompressStream32Ctx is CompressStream32 under a context.
//
// Deprecated: use CompressStreamOpts with WithFloat32 and WithContext.
func CompressStream32Ctx(ctx context.Context, r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm, opts *StreamOptions) (*StreamStats, error) {
	return CompressStreamOpts(r, w, dims, relBound, algo, append(opts.streamOptions(), WithFloat32(), WithContext(ctx))...)
}

// compressStream is the pipeline behind every stream-compress entry
// point, driven by a resolved StreamConfig.
func compressStream(cfg *StreamConfig, r io.Reader, w io.Writer, dims []int, relBound float64, algo Algorithm) (*StreamStats, error) {
	ctx := orDefault(cfg.Ctx)
	if err := grid.Validate(dims, -1); err != nil {
		return nil, err
	}
	if algo == SZABS || algo == ZFPACC {
		return nil, ErrNeedsAbsolute
	}
	rows := dims[0]
	rowStride := grid.Size(dims) / rows
	if cfg.ParityK < 0 || cfg.ParityK > streamfmt.MaxParityK {
		return nil, fmt.Errorf("repro: parity group size %d out of [0,%d]", cfg.ParityK, streamfmt.MaxParityK)
	}
	if cfg.MemoryBudget < 0 {
		return nil, fmt.Errorf("repro: negative memory budget %d", cfg.MemoryBudget)
	}
	parityK := cfg.ParityK
	verify := cfg.VerifyOnWrite
	copts := cfg.Compressor
	elemSize := 8
	if cfg.Float32 {
		elemSize = 4
	}
	tune := *cfg // clamp a copy: the caller's config may be reused across fields
	if tune.ChunkRows > rows {
		tune.ChunkRows = rows
	}
	chunkRows, workers := tuneCompressBudget(&tune, rowStride, elemSize, cfg.defaultWorkers())
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows(rows, rowStride, cfg.Limits.maxChunkBytes())
	}
	if chunkRows > rows {
		chunkRows = rows
	}
	chunkElems := chunkRows * rowStride
	if chunkElems > 1<<28 {
		return nil, fmt.Errorf("repro: chunk of %d elements exceeds the 2 GiB chunk budget; reduce ChunkRows", chunkElems)
	}
	maxInFlight := workers + 2

	cw := &countingWriter{w: w}
	sw, err := streamfmt.NewWriter(cw,
		streamfmt.Header{Algo: byte(algo), Dims: dims, ChunkRows: chunkRows, ParityK: parityK})
	if err != nil {
		return nil, err
	}

	stats := &StreamStats{}
	jobs := make(chan *streamJob)
	order := make(chan *streamJob, maxInFlight)
	free := make(chan []float64, maxInFlight)
	stop := make(chan struct{})
	var fl inflight
	var codecNS atomic.Int64
	var verified atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				t0 := time.Now()
				subDims := append([]int{jb.rows}, dims[1:]...)
				jb.out, jb.err = Compress(jb.data[:jb.rows*rowStride], subDims, relBound, algo, copts)
				if jb.err == nil && verify {
					jb.err = verifyChunk(jb.out, jb.data[:jb.rows*rowStride], subDims, relBound, algo)
					if jb.err == nil {
						verified.Add(1)
					}
				}
				codecNS.Add(time.Since(t0).Nanoseconds())
				close(jb.done)
			}
		}()
	}

	var readErr error
	var readWall time.Duration
	var bytesIn int64
	var allocated int
	go func() {
		defer close(order)
		defer close(jobs)
		raw := make([]byte, chunkElems*elemSize)
		for seq, row := 0, 0; row < rows; seq++ {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				readErr = ctxCause(ctx)
				return
			default:
			}
			n := chunkRows
			if rows-row < n {
				n = rows - row
			}
			var data []float64
			select {
			case data = <-free:
			default:
				if allocated < maxInFlight {
					allocated++
					//lint:allow allochot freelist fill: at most maxInFlight chunk buffers ever, the bounded-memory invariant
					data = make([]float64, chunkElems)
				} else {
					select {
					case data = <-free:
					case <-stop:
						return
					}
				}
			}
			t0 := time.Now()
			want := n * rowStride * elemSize
			if _, err := io.ReadFull(r, raw[:want]); err != nil {
				readErr = fmt.Errorf("repro: short stream input at row %d/%d: %w", row, rows, err)
				return
			}
			bytesIn += int64(want)
			if elemSize == 8 {
				for i := 0; i < n*rowStride; i++ {
					data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
				}
			} else {
				for i := 0; i < n*rowStride; i++ {
					data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
				}
			}
			readWall += time.Since(t0)
			//lint:allow allochot per-chunk descriptor; live descriptors are bounded by the in-flight cap
			jb := &streamJob{seq: seq, data: data, rows: n, done: make(chan struct{})}
			fl.enter()
			select {
			case jobs <- jb:
			case <-stop:
				fl.leave()
				return
			}
			select {
			case order <- jb:
			case <-stop:
				fl.leave()
				return
			}
			row += n
		}
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	writeOne := func(jb *streamJob) {
		defer fl.leave()
		<-jb.done
		if firstErr != nil {
			return
		}
		if jb.err != nil {
			fail(fmt.Errorf("chunk %d: %w", jb.seq, jb.err))
			return
		}
		t0 := time.Now()
		err := sw.WriteChunk(jb.out)
		stats.WriteWall += time.Since(t0)
		if err != nil {
			fail(fmt.Errorf("chunk %d: %w", jb.seq, err))
			return
		}
		stats.Chunks++
		select {
		case free <- jb.data:
		default:
		}
	}
drain:
	for {
		select {
		case jb, ok := <-order:
			if !ok {
				break drain
			}
			writeOne(jb)
		case <-ctx.Done():
			fail(ctxCause(ctx))
			for jb := range order {
				writeOne(jb)
			}
			break drain
		}
	}
	wg.Wait()
	if firstErr == nil && readErr != nil {
		firstErr = readErr
	}
	stats.ReadWall = readWall
	stats.CodecWall = time.Duration(codecNS.Load())
	stats.BytesIn = bytesIn
	stats.MaxInFlight = int(fl.max.Load())
	stats.BuffersAllocated = allocated
	stats.VerifiedChunks = int(verified.Load())
	stats.ParityFrames = sw.ParityWritten()
	stats.BytesOut = cw.n
	if firstErr != nil {
		return stats, firstErr
	}
	t0 := time.Now()
	if err := sw.Finish(); err != nil {
		return stats, err
	}
	stats.WriteWall += time.Since(t0)
	stats.ParityFrames = sw.ParityWritten()
	stats.BytesOut = cw.n
	return stats, nil
}

// verifyChunk decode-verifies one sealed chunk payload against the
// source rows it encodes, asserting exactly what the algorithm
// guarantees (Table IV): NaN and ±Inf always survive, exact zeros are
// preserved by the zero-preserving algorithms, and every finite normal
// nonzero original is within the point-wise relative bound unless the
// algorithm (ZFP_P) documents no hard guarantee. Subnormal originals
// are skipped — below 2^-1022 the float64 quantum makes tight relative
// bounds unsatisfiable in principle.
func verifyChunk(payload []byte, src []float64, subDims []int, relBound float64, algo Algorithm) error {
	dec, dims, err := Decompress(payload)
	if err != nil {
		return fmt.Errorf("%w: sealed chunk does not decode: %v", ErrVerifyFailed, err)
	}
	if len(dims) != len(subDims) || len(dec) != len(src) {
		return fmt.Errorf("%w: sealed chunk decodes to shape %v (%d elems), want %v (%d)",
			ErrVerifyFailed, dims, len(dec), subDims, len(src))
	}
	for i := range subDims {
		if dims[i] != subDims[i] {
			return fmt.Errorf("%w: sealed chunk decodes to shape %v, want %v", ErrVerifyFailed, dims, subDims)
		}
	}
	preserveZeros := algo == SZT || algo == ZFPT || algo == FPZIP || algo == ISABELA
	checkBound := algo != ZFPP
	const smallestNormal = 2.2250738585072014e-308 // 2^-1022
	for i, o := range src {
		d := dec[i]
		switch {
		case math.IsNaN(o):
			if !math.IsNaN(d) {
				return fmt.Errorf("%w: NaN at element %d decoded to %g", ErrVerifyFailed, i, d)
			}
		case math.IsInf(o, 0):
			if !floatbits.Equal(d, o) {
				return fmt.Errorf("%w: %g at element %d decoded to %g", ErrVerifyFailed, o, i, d)
			}
		case floatbits.IsZero(o):
			if preserveZeros && !floatbits.IsZero(d) {
				return fmt.Errorf("%w: zero at element %d perturbed to %g", ErrVerifyFailed, i, d)
			}
		case math.Abs(o) < smallestNormal:
			// Subnormal original: no relative guarantee to assert.
		default:
			if checkBound && math.Abs(d-o) > relBound*(1+1e-9)*math.Abs(o) {
				return fmt.Errorf("%w: bound %g violated at element %d: orig %g decoded %g",
					ErrVerifyFailed, relBound, i, o, d)
			}
		}
	}
	return nil
}

// countingWriter counts bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// DecompressStreamOpts decodes a stream container from r, writing the
// field as raw little-endian float bytes (float64, or float32 under
// WithFloat32) to w. Chunks are decompressed by a worker pool and
// emitted in field order; peak memory is O(workers × chunk), and
// WithMemoryBudget caps the worker count against the container's chunk
// geometry. WithLimits is enforced against the header and every chunk
// frame before the corresponding allocation; WithContext cancellation —
// like an error from w — stops the reader from pulling further frames
// beyond those already in flight, drains the worker pool, and returns
// with no goroutines left behind.
func DecompressStreamOpts(r io.Reader, w io.Writer, opts ...StreamOption) (*StreamStats, error) {
	return decompressStream(resolveStreamConfig(opts), r, w)
}

// DecompressStream decodes a stream container from r into raw
// little-endian float64 bytes on w.
//
// Deprecated: use DecompressStreamOpts; this wrapper delegates with the
// equivalent options.
func DecompressStream(r io.Reader, w io.Writer) (*StreamStats, error) {
	return DecompressStreamOpts(r, w)
}

// DecompressStreamCtx is DecompressStream under a context and decode
// limits.
//
// Deprecated: use DecompressStreamOpts with WithContext and WithLimits.
func DecompressStreamCtx(ctx context.Context, r io.Reader, w io.Writer, limits *DecodeLimits) (*StreamStats, error) {
	return DecompressStreamOpts(r, w, WithContext(ctx), WithLimits(limits))
}

// DecompressStream32 is DecompressStream with float32 output: chunks are
// decoded on the float64 worker path and each element is narrowed to a
// raw little-endian float32 at the writer. The element width is the
// caller's choice, exactly as with Decompress vs Decompress32 — narrowing
// adds at most a 2⁻²⁴ relative rounding step on top of the stream's
// point-wise bound.
//
// Deprecated: use DecompressStreamOpts with WithFloat32.
func DecompressStream32(r io.Reader, w io.Writer) (*StreamStats, error) {
	return DecompressStreamOpts(r, w, WithFloat32())
}

// DecompressStream32Ctx is DecompressStream32 under a context and decode
// limits.
//
// Deprecated: use DecompressStreamOpts with WithFloat32, WithContext,
// and WithLimits.
func DecompressStream32Ctx(ctx context.Context, r io.Reader, w io.Writer, limits *DecodeLimits) (*StreamStats, error) {
	return DecompressStreamOpts(r, w, WithFloat32(), WithContext(ctx), WithLimits(limits))
}

// decompressStream is the decode pipeline behind every stream-decode
// entry point, driven by a resolved StreamConfig.
func decompressStream(cfg *StreamConfig, r io.Reader, w io.Writer) (_ *StreamStats, err error) {
	defer recoverDecode(&err)
	ctx := orDefault(cfg.Ctx)
	limits := cfg.Limits
	elemSize := 8
	if cfg.Float32 {
		elemSize = 4
	}
	if cfg.MemoryBudget < 0 {
		return nil, fmt.Errorf("repro: negative memory budget %d", cfg.MemoryBudget)
	}
	sr, err := streamfmt.NewReaderLimits(r, limits.streamLimits())
	if err != nil {
		return nil, err
	}
	hdr := sr.Header()
	dims := hdr.Dims
	rowStride := hdr.RowStride()
	expChunks := hdr.Chunks()
	workers := cfg.defaultWorkers()
	if cfg.Workers <= 0 && cfg.MemoryBudget > 0 {
		// The chunk geometry is the container's, so the budget can only
		// temper the worker count here.
		workers = budgetWorkersFor(cfg.MemoryBudget, hdr.ChunkRows*rowStride, elemSize, workers)
	}
	if workers > expChunks {
		workers = expChunks
	}
	if workers < 1 {
		workers = 1
	}
	maxInFlight := workers + 2

	stats := &StreamStats{}
	jobs := make(chan *streamJob)
	order := make(chan *streamJob, maxInFlight)
	free := make(chan []byte, maxInFlight)
	stop := make(chan struct{})
	var fl inflight
	var codecNS atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				t0 := time.Now()
				dec, subDims, err := Decompress(jb.in)
				codecNS.Add(time.Since(t0).Nanoseconds())
				select {
				case free <- jb.in:
				default:
				}
				jb.in = nil
				if err == nil {
					if len(subDims) != len(dims) || subDims[0] != jb.rows || len(dec) != jb.rows*rowStride {
						err = fmt.Errorf("%w: chunk %d decoded to shape %v, want %d rows of stride %d",
							ErrCorrupt, jb.seq, subDims, jb.rows, rowStride)
					}
					for i := 1; err == nil && i < len(dims); i++ {
						if subDims[i] != dims[i] {
							err = fmt.Errorf("%w: chunk %d dims %v disagree with field %v", ErrCorrupt, jb.seq, subDims, dims)
						}
					}
				}
				jb.dec, jb.err = dec, err
				close(jb.done)
			}
		}()
	}

	var readErr error
	var readWall time.Duration
	var allocated int
	go func() {
		defer close(order)
		defer close(jobs)
		for seq := 0; seq < expChunks; seq++ {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				readErr = ctxCause(ctx)
				return
			default:
			}
			var scratch []byte
			select {
			case scratch = <-free:
			default:
			}
			t0 := time.Now()
			payload, err := sr.Next(scratch)
			readWall += time.Since(t0)
			if err != nil {
				readErr = err
				return
			}
			if len(payload) > cap(scratch) {
				allocated++ // streamfmt grew a fresh payload buffer
			}
			// The payload may alias scratch; hand ownership to the job.
			//lint:allow allochot per-chunk descriptor; live descriptors are bounded by the in-flight cap
			jb := &streamJob{seq: seq, in: payload, rows: hdr.ChunkRowCount(seq), done: make(chan struct{})}
			fl.enter()
			select {
			case jobs <- jb:
			case <-stop:
				fl.leave()
				return
			}
			select {
			case order <- jb:
			case <-stop:
				fl.leave()
				return
			}
		}
		// All chunks read: the next frame must be the index. Skip the
		// read when the pipeline already failed — the writer's error
		// must not race an extra pull from the source.
		select {
		case <-stop:
			return
		case <-ctx.Done():
			readErr = ctxCause(ctx)
			return
		default:
		}
		t0 := time.Now()
		_, err := sr.Next(nil)
		readWall += time.Since(t0)
		if err != io.EOF {
			if err == nil {
				err = fmt.Errorf("%w: extra frame after final chunk", ErrCorrupt)
			}
			readErr = err
		}
	}()

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	var out []byte
	writeOne := func(jb *streamJob) {
		defer fl.leave()
		<-jb.done
		if firstErr != nil {
			return
		}
		if jb.err != nil {
			fail(fmt.Errorf("chunk %d: %w", jb.seq, jb.err))
			return
		}
		t0 := time.Now()
		need := len(jb.dec) * elemSize
		if cap(out) < need {
			//lint:allow allochot grows once to the largest chunk, then reused across all chunks
			out = make([]byte, need)
		}
		out = out[:need]
		if elemSize == 8 {
			for i, v := range jb.dec {
				binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
			}
		} else {
			for i, v := range jb.dec {
				binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
			}
		}
		_, err := w.Write(out)
		stats.WriteWall += time.Since(t0)
		if err != nil {
			fail(fmt.Errorf("chunk %d: %w", jb.seq, err))
			return
		}
		stats.Chunks++
		stats.BytesOut += int64(need)
	}
drain:
	for {
		select {
		case jb, ok := <-order:
			if !ok {
				break drain
			}
			writeOne(jb)
		case <-ctx.Done():
			fail(ctxCause(ctx))
			for jb := range order {
				writeOne(jb)
			}
			break drain
		}
	}
	wg.Wait()
	if firstErr == nil && readErr != nil {
		firstErr = readErr
	}
	stats.ReadWall = readWall
	stats.CodecWall = time.Duration(codecNS.Load())
	stats.BytesIn = sr.Consumed()
	stats.MaxInFlight = int(fl.max.Load())
	stats.BuffersAllocated = allocated
	stats.ParityFrames = sr.ParityRead()
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// IsStreamContainer reports whether buf starts a CompressStream
// container (either the parity-free or the parity-carrying version).
func IsStreamContainer(buf []byte) bool {
	return len(buf) >= 2 && buf[0] == streamfmt.Magic &&
		(buf[1] == streamfmt.Version || buf[1] == streamfmt.VersionParity)
}

// decompressStreamBuf decodes an in-memory stream container (the
// convenience path behind DecompressAny; the streaming path is
// DecompressStream).
func decompressStreamBuf(buf []byte, limits *DecodeLimits) ([]float64, []int, error) {
	hr, err := streamfmt.NewReaderLimits(bytes.NewReader(buf), limits.streamLimits())
	if err != nil {
		return nil, nil, err
	}
	dims := append([]int(nil), hr.Header().Dims...)
	var out bytes.Buffer
	if _, err := DecompressStreamCtx(context.Background(), bytes.NewReader(buf), &out, limits); err != nil {
		return nil, nil, err
	}
	raw := out.Bytes()
	data := make([]float64, len(raw)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return data, dims, nil
}
