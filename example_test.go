package repro_test

import (
	"fmt"
	"math"

	"repro"
)

// ExampleCompress shows the basic point-wise-relative round trip with the
// paper's transform scheme.
func ExampleCompress() {
	data := []float64{1.0, 0.001, 250.0, -3.5, 0.0, 1e-6}
	buf, err := repro.Compress(data, []int{6}, 1e-3, repro.SZT, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dec, dims, err := repro.Decompress(buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	worst := 0.0
	for i, o := range data {
		if o == 0 {
			continue
		}
		if r := math.Abs(dec[i]-o) / math.Abs(o); r > worst {
			worst = r
		}
	}
	fmt.Println("dims:", dims)
	fmt.Println("zero preserved:", dec[4] == 0)
	fmt.Println("within 0.1%:", worst <= 1e-3)
	// Output:
	// dims: [6]
	// zero preserved: true
	// within 0.1%: true
}

// ExampleAlgorithmOf shows stream introspection.
func ExampleAlgorithmOf() {
	buf, _ := repro.Compress([]float64{1, 2, 3, 4}, []int{4}, 0.01, repro.FPZIP, nil)
	algo, _ := repro.AlgorithmOf(buf)
	fmt.Println(algo)
	// Output:
	// FPZIP
}

// ExampleArchiveWriter bundles two fields into one snapshot archive and
// reads one back by name.
func ExampleArchiveWriter() {
	w := repro.NewArchiveWriter()
	_ = w.Add("density", []float64{0.1, 0.2, 0.4, 0.8}, []int{4}, 1e-3, repro.SZT, nil)
	_ = w.Add("velocity", []float64{-10, 20, -30, 40}, []int{4}, 1e-3, repro.SZT, nil)
	archive := w.Bytes()

	r, err := repro.OpenArchive(archive)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fields:", r.Fields())
	dec, _, _ := r.Field("velocity")
	fmt.Println("velocity sign pattern ok:", dec[0] < 0 && dec[1] > 0)
	// Output:
	// fields: [density velocity]
	// velocity sign pattern ok: true
}

// ExampleCompressParallel compresses a field with a worker pool; the
// stream remains self-describing.
func ExampleCompressParallel() {
	data := make([]float64, 64*64)
	for i := range data {
		data[i] = 1 + float64(i%64)*0.01
	}
	buf, err := repro.CompressParallel(data, []int{64, 64}, 1e-3, repro.SZT,
		&repro.ParallelOptions{Workers: 4, Chunks: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dec, dims, err := repro.DecompressAny(buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("dims:", dims, "points:", len(dec))
	// Output:
	// dims: [64 64] points: 4096
}
