package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func testField(t *testing.T) datagen.Field {
	t.Helper()
	fields := datagen.NYX(16, 1)
	return fields[0] // dark_matter_density 16^3
}

func TestAllRelativeAlgorithmsRoundTrip(t *testing.T) {
	f := testField(t)
	rel := 1e-2
	for _, algo := range RelativeAlgorithms() {
		buf, err := Compress(f.Data, f.Dims, rel, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got, err := AlgorithmOf(buf)
		if err != nil || got != algo {
			t.Fatalf("AlgorithmOf = %v, %v", got, err)
		}
		dec, dims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !grid.EqualDims(dims, f.Dims) {
			t.Fatalf("%v: dims %v", algo, dims)
		}
		st, err := metrics.RelError(f.Data, dec, rel)
		if err != nil {
			t.Fatal(err)
		}
		// ZFP_P does not guarantee the bound; everyone else must.
		if algo != ZFPP && st.Max > rel {
			t.Fatalf("%v: max rel error %g > %g", algo, st.Max, rel)
		}
		if algo == SZT || algo == ZFPT || algo == FPZIP || algo == ISABELA {
			if st.ZeroPerturbed != 0 {
				t.Fatalf("%v: %d zeros perturbed", algo, st.ZeroPerturbed)
			}
		}
	}
}

func TestAbsAlgorithms(t *testing.T) {
	f := testField(t)
	bound := 0.05
	for _, algo := range []Algorithm{SZABS, ZFPACC} {
		buf, err := CompressAbs(f.Data, f.Dims, bound, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i := range f.Data {
			if math.Abs(dec[i]-f.Data[i]) > bound {
				t.Fatalf("%v: abs error at %d", algo, i)
			}
		}
	}
}

func TestRelAlgoRejectsAbsAndViceVersa(t *testing.T) {
	f := testField(t)
	if _, err := Compress(f.Data, f.Dims, 0.01, SZABS, nil); err == nil {
		t.Fatal("SZABS accepted relative bound")
	}
	if _, err := CompressAbs(f.Data, f.Dims, 0.01, SZT, nil); err == nil {
		t.Fatal("SZT accepted absolute bound")
	}
}

func TestSZTBeatsBaselinesOnDensity(t *testing.T) {
	// The paper's headline: SZ_T achieves the best ratio on NYX density.
	fields := datagen.NYX(32, 2)
	f := fields[0]
	rel := 1e-2
	sizes := map[Algorithm]int{}
	for _, algo := range []Algorithm{SZT, SZPWR, FPZIP, ISABELA} {
		buf, err := Compress(f.Data, f.Dims, rel, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		sizes[algo] = len(buf)
	}
	for _, algo := range []Algorithm{SZPWR, FPZIP, ISABELA} {
		if sizes[SZT] >= sizes[algo] {
			t.Fatalf("SZ_T (%d) should beat %v (%d) on lognormal density",
				sizes[SZT], algo, sizes[algo])
		}
	}
}

func TestOptionsPlumbed(t *testing.T) {
	f := testField(t)
	// Non-default options must still round-trip within bound.
	opts := &Options{
		Base:          Base10,
		Intervals:     1024,
		BlockSide:     16,
		ISABELAWindow: 256,
		ISABELACoeffs: 12,
	}
	for _, algo := range []Algorithm{SZT, SZPWR, ISABELA} {
		buf, err := Compress(f.Data, f.Dims, 0.05, algo, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		st, err := metrics.RelError(f.Data, dec, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max > 0.05 {
			t.Fatalf("%v with options: max %g", algo, st.Max)
		}
	}
}

func TestFloat32Helpers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, 2000)
	for i := range data {
		data[i] = float32(math.Exp(rng.NormFloat64()))
	}
	buf, err := Compress32(data, []int{2000}, 1e-3, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress32(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] == 0 {
			continue
		}
		rel := math.Abs(float64(dec[i]-data[i])) / math.Abs(float64(data[i]))
		if rel > 1e-3+1e-6 {
			t.Fatalf("index %d: rel %g", i, rel)
		}
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := Decompress([]byte{0x00, 0x01, 0x02}); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := Decompress([]byte{containerMagic, 99, 1, 2, 3}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		SZT: "SZ_T", ZFPT: "ZFP_T", SZABS: "SZ_ABS", SZPWR: "SZ_PWR",
		ZFPACC: "ZFP_ACC", ZFPP: "ZFP_P", FPZIP: "FPZIP", ISABELA: "ISABELA",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestZFPPBoundedFractionHigh(t *testing.T) {
	// ZFP_P should bound *most* points (Table IV shows ~99.9%) even though
	// it cannot bound all.
	fields := datagen.NYX(24, 4)
	f := fields[1] // velocity_x
	rel := 1e-2
	buf, err := Compress(f.Data, f.Dims, rel, ZFPP, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := metrics.RelError(f.Data, dec, rel)
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundedFrac < 0.95 {
		t.Fatalf("ZFP_P bounded fraction %.4f too low", st.BoundedFrac)
	}
}

func TestCompressFixedRate(t *testing.T) {
	f := testField(t)
	for _, rate := range []float64{4, 8, 16} {
		buf, err := CompressFixedRate(f.Data, f.Dims, rate)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		algo, err := AlgorithmOf(buf)
		if err != nil || algo != ZFPRATE {
			t.Fatalf("AlgorithmOf = %v, %v", algo, err)
		}
		dec, dims, err := Decompress(buf)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		if !grid.EqualDims(dims, f.Dims) || len(dec) != len(f.Data) {
			t.Fatal("shape mismatch")
		}
		// Stream size tracks the requested rate (within header slack).
		wantBytes := int(rate * float64(len(f.Data)) / 8)
		if len(buf) < wantBytes || len(buf) > wantBytes*5/4+128 {
			t.Fatalf("rate %g: %d bytes, want ~%d", rate, len(buf), wantBytes)
		}
	}
	if _, err := CompressFixedRate(f.Data, f.Dims, 0.1); err == nil {
		t.Fatal("sub-1 rate accepted")
	}
}

func TestFloat32NativeFPZIP(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	data := make([]float32, 3000)
	for i := range data {
		data[i] = float32(math.Exp(rng.NormFloat64()))
	}
	rel := 1e-2
	buf, err := Compress32(data, []int{3000}, rel, FPZIP, nil)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := AlgorithmOf(buf)
	if err != nil || algo != FPZIP32 {
		t.Fatalf("AlgorithmOf = %v, %v", algo, err)
	}
	dec, dims, err := Decompress32(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 1 || dims[0] != 3000 {
		t.Fatalf("dims %v", dims)
	}
	for i := range data {
		if data[i] == 0 {
			continue
		}
		r := math.Abs(float64(dec[i]-data[i])) / math.Abs(float64(data[i]))
		if r > rel {
			t.Fatalf("index %d: rel %g", i, r)
		}
	}
	// The float64 decoder must also handle the stream (widened).
	wide, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if float32(wide[7]) != dec[7] {
		t.Fatal("widened decode disagrees")
	}
	// Native path should beat the widening path in size.
	szt, err := Compress32(data, []int{3000}, rel, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = szt // both valid; no strict ordering asserted between algorithms
}
