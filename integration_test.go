package repro

// Integration tests: cross-module scenarios over the full synthetic
// application suite, exercising the public API the way the experiment
// harness and a downstream user would.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestFullSuiteAllCompressorsBounded compresses every field of every
// application with every relative-bound algorithm at two bounds and checks
// the advertised guarantees.
func TestFullSuiteAllCompressorsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	fields := datagen.Suite(datagen.ScaleTest, 99)
	for _, rel := range []float64{1e-3, 1e-1} {
		for _, algo := range RelativeAlgorithms() {
			for i := range fields {
				f := &fields[i]
				buf, err := Compress(f.Data, f.Dims, rel, algo, nil)
				if err != nil {
					t.Fatalf("%v %s @%g: %v", algo, f.String(), rel, err)
				}
				dec, _, err := Decompress(buf)
				if err != nil {
					t.Fatalf("%v %s @%g: %v", algo, f.String(), rel, err)
				}
				st, err := metrics.RelError(f.Data, dec, rel)
				if err != nil {
					t.Fatal(err)
				}
				switch algo {
				case ZFPP:
					// ZFP_P neither bounds the error nor preserves zeros
					// (the paper's "*"): on sparse fields like the Hurricane
					// cloud/precipitation data the perturbed zeros alone
					// push the bounded fraction down to ~70%.
					if st.BoundedFrac < 0.5 {
						t.Errorf("%v %s @%g: bounded only %.3f", algo, f.String(), rel, st.BoundedFrac)
					}
				default:
					if st.Max > rel*(1+1e-9) {
						t.Errorf("%v %s @%g: max rel %g", algo, f.String(), rel, st.Max)
					}
				}
				if algo == SZT || algo == ZFPT || algo == FPZIP || algo == ISABELA {
					if st.ZeroPerturbed != 0 {
						t.Errorf("%v %s: %d zeros perturbed", algo, f.String(), st.ZeroPerturbed)
					}
				}
			}
		}
	}
}

// TestDeterministicStreams asserts byte-identical output across repeated
// compressions (required for reproducible archives and caching).
func TestDeterministicStreams(t *testing.T) {
	fields := datagen.NYX(16, 7)
	f := &fields[0]
	for _, algo := range RelativeAlgorithms() {
		a, err := Compress(f.Data, f.Dims, 1e-2, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		b, err := Compress(f.Data, f.Dims, 1e-2, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%v: nondeterministic stream", algo)
		}
	}
	// Parallel streams must be deterministic too (fixed chunking).
	a, err := CompressParallel(f.Data, f.Dims, 1e-2, SZT, &ParallelOptions{Workers: 3, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompressParallel(f.Data, f.Dims, 1e-2, SZT, &ParallelOptions{Workers: 1, Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("parallel stream depends on worker count")
	}
}

// TestRatioOrderingOnSuite verifies the paper's headline ordering on the
// aggregate suite: SZ_T ≥ each baseline in total compressed size.
func TestRatioOrderingOnSuite(t *testing.T) {
	fields := datagen.Suite(datagen.ScaleTest, 5)
	rel := 1e-2
	totals := map[Algorithm]int{}
	for _, algo := range []Algorithm{SZT, SZPWR, FPZIP, ISABELA, ZFPT} {
		for i := range fields {
			buf, err := Compress(fields[i].Data, fields[i].Dims, rel, algo, nil)
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			totals[algo] += len(buf)
		}
	}
	for _, algo := range []Algorithm{SZPWR, FPZIP, ISABELA, ZFPT} {
		if totals[SZT] >= totals[algo] {
			t.Errorf("SZ_T total %d not better than %v total %d", totals[SZT], algo, totals[algo])
		}
	}
}

// TestTighterBoundCostsMoreBits checks monotonicity of size in the bound
// for the guaranteed compressors.
func TestTighterBoundCostsMoreBits(t *testing.T) {
	fields := datagen.NYX(24, 6)
	f := &fields[0]
	for _, algo := range []Algorithm{SZT, ZFPT, FPZIP, SZPWR} {
		var prev int
		for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			buf, err := Compress(f.Data, f.Dims, rel, algo, nil)
			if err != nil {
				t.Fatalf("%v @%g: %v", algo, rel, err)
			}
			if prev > 0 && len(buf) < prev*95/100 {
				t.Errorf("%v: tighter bound %g shrank stream (%d < %d)", algo, rel, len(buf), prev)
			}
			prev = len(buf)
		}
	}
}

// TestArchiveSnapshotWorkflow mirrors a real dump: compress a whole NYX
// snapshot (all fields, mixed algorithms) into one archive, reopen,
// validate each field, and confirm stats survive compression.
func TestArchiveSnapshotWorkflow(t *testing.T) {
	fields := datagen.NYX(24, 44)
	w := NewArchiveWriter()
	for i := range fields {
		f := &fields[i]
		algo := SZT
		if f.Name == "temperature" {
			algo = FPZIP
		}
		if err := w.Add(f.Name, f.Data, f.Dims, 1e-3, algo, nil); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	archive := w.Bytes()

	r, err := OpenArchive(archive)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fields {
		f := &fields[i]
		dec, dims, err := r.Field(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		// Post-decompression statistics must match the original closely:
		// the relative bound preserves distribution shape.
		so, err := stats.Compute(f.Data, dims)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := stats.Compute(dec, dims)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sd.Mean-so.Mean) > 1e-3*math.Abs(so.Mean)+1e-12 {
			t.Errorf("%s: mean drifted %g -> %g", f.Name, so.Mean, sd.Mean)
		}
		if so.Positives != sd.Positives || so.Negatives != sd.Negatives || so.Zeros != sd.Zeros {
			t.Errorf("%s: sign census changed", f.Name)
		}
	}
}

// TestCrossAlgorithmStreamsDontConfuse ensures a stream from one algorithm
// cannot be misparsed as another (magic/algo dispatch).
func TestCrossAlgorithmStreamsDontConfuse(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	streams := map[Algorithm][]byte{}
	for _, algo := range RelativeAlgorithms() {
		buf, err := Compress(data, []int{8}, 0.01, algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		streams[algo] = buf
	}
	for algo, buf := range streams {
		got, err := AlgorithmOf(buf)
		if err != nil || got != algo {
			t.Errorf("%v stream identified as %v (%v)", algo, got, err)
		}
		dec, _, err := Decompress(buf)
		if err != nil || len(dec) != 8 {
			t.Errorf("%v stream failed decode: %v", algo, err)
		}
	}
}

// TestValueRangeRelativeMode exercises CompressValueRange (the SZ-style
// value-range-relative bound, distinct from point-wise relative).
func TestValueRangeRelativeMode(t *testing.T) {
	fields := datagen.NYX(16, 45)
	f := &fields[1] // velocity
	ratio := 1e-4
	buf, err := CompressValueRange(f.Data, f.Dims, ratio, SZABS, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	bound := ratio * (hi - lo)
	for i := range f.Data {
		if math.Abs(dec[i]-f.Data[i]) > bound {
			t.Fatalf("value-range bound violated at %d", i)
		}
	}
	if _, err := CompressValueRange(f.Data, f.Dims, 0, SZABS, nil); err == nil {
		t.Fatal("ratio=0 accepted")
	}
	constant := make([]float64, 16)
	if _, err := CompressValueRange(constant, []int{16}, 1e-3, SZABS, nil); err != nil {
		t.Fatalf("constant field: %v", err)
	}
}
