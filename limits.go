package repro

import (
	"fmt"

	"repro/internal/streamfmt"
)

// DecodeLimits bounds the resources a decoder will commit to an
// input-declared geometry, enforced before any input-derived
// allocation. A service decoding containers it did not produce sets
// limits matched to its memory budget; a hostile or damaged header
// then fails fast with ErrLimitExceeded instead of attempting a huge
// allocation.
//
// The zero value (and a nil *DecodeLimits) means "no limits", which is
// appropriate only for trusted input. Fields left zero are unlimited.
//
// Pass limits to DecompressStreamCtx, DecompressParallelCtx,
// DecompressAnyLimits, OpenArchiveLimits, or — for the seekable read
// path — OpenStream via WithLimits, where MaxElements is checked
// against the header geometry before the tail index is even read and
// MaxChunkBytes against every index-declared length before a frame
// buffer is allocated.
type DecodeLimits struct {
	// MaxElements caps the total number of field elements a container
	// may declare (the decoded size is 8 bytes per element).
	MaxElements int64
	// MaxChunkBytes caps one compressed chunk frame or archive blob;
	// parity frames in a self-healing stream container count against it
	// like any other frame (a parity payload is exactly as long as its
	// group's longest chunk payload).
	MaxChunkBytes int64
	// MaxFields caps the number of fields an archive directory may
	// declare.
	MaxFields int
}

// streamLimits converts to the streaming container's limit set.
func (l *DecodeLimits) streamLimits() streamfmt.Limits {
	if l == nil {
		return streamfmt.Limits{}
	}
	return streamfmt.Limits{MaxElements: l.MaxElements, MaxChunkBytes: l.MaxChunkBytes}
}

// maxChunkBytes returns the chunk/blob byte cap (0 = unlimited),
// nil-safe.
func (l *DecodeLimits) maxChunkBytes() int64 {
	if l == nil {
		return 0
	}
	return l.MaxChunkBytes
}

// checkElements enforces MaxElements against a declared element count.
func (l *DecodeLimits) checkElements(n int64) error {
	if l != nil && l.MaxElements > 0 && n > l.MaxElements {
		return fmt.Errorf("%w: container declares %d elements, limit %d", ErrLimitExceeded, n, l.MaxElements)
	}
	return nil
}

// checkChunkBytes enforces MaxChunkBytes against one chunk/blob length.
func (l *DecodeLimits) checkChunkBytes(n int64) error {
	if l != nil && l.MaxChunkBytes > 0 && n > l.MaxChunkBytes {
		return fmt.Errorf("%w: chunk of %d bytes, limit %d", ErrLimitExceeded, n, l.MaxChunkBytes)
	}
	return nil
}

// checkFields enforces MaxFields against an archive directory count.
func (l *DecodeLimits) checkFields(n int) error {
	if l != nil && l.MaxFields > 0 && n > l.MaxFields {
		return fmt.Errorf("%w: archive declares %d fields, limit %d", ErrLimitExceeded, n, l.MaxFields)
	}
	return nil
}
