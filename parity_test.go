package repro

// End-to-end tests for the self-healing container layer: parity
// round-trip compatibility, salvage repair, seekable-path repair with
// exact stats accounting, and verify-after-encode.

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/streamfmt"
	"repro/internal/testutil"
)

// parityFixture builds a clean parity container (dims {10,4}, ChunkRows
// 2, K=2 → 5 chunks in groups {0,1},{2,3},{4}) plus its clean decoded
// bytes and per-frame extents.
func parityFixture(t *testing.T) (stream, clean []byte, frames, parity []streamfmt.FrameInfo, dims []int) {
	t.Helper()
	dims = []int{10, 4}
	data := make([]float64, 40)
	for i := range data {
		data[i] = 35*math.Sin(float64(i)/4) + 80
	}
	var sb bytes.Buffer
	st, err := CompressStream(bytes.NewReader(rawLE(data)), &sb, dims, 1e-2, SZT,
		&StreamOptions{Workers: 2, ChunkRows: 2, ParityK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ParityFrames != 3 {
		t.Fatalf("encode emitted %d parity frames, want 3", st.ParityFrames)
	}
	stream = sb.Bytes()
	clean = rawLEOfDecoded(t, stream)
	rep, err := streamfmt.ScanSalvage(stream, streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IndexOK || len(rep.Frames) != 5 || len(rep.Parity) != 3 {
		t.Fatalf("fixture: IndexOK=%v frames=%d parity=%d", rep.IndexOK, len(rep.Frames), len(rep.Parity))
	}
	return stream, clean, rep.Frames, rep.Parity, dims
}

// TestStreamParityRoundTrip proves the parity layer is transparent to
// the linear decode path and costs exactly the parity frames in size.
func TestStreamParityRoundTrip(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, _, _, _ := parityFixture(t)

	var out bytes.Buffer
	st, err := DecompressStream(bytes.NewReader(stream), &out)
	if err != nil {
		t.Fatalf("DecompressStream over parity container: %v", err)
	}
	if !bytes.Equal(out.Bytes(), clean) {
		t.Fatal("parity container decodes differently")
	}
	if st.ParityFrames != 3 {
		t.Fatalf("decode stats report %d parity frames, want 3", st.ParityFrames)
	}
	if !IsStreamContainer(stream) {
		t.Fatal("IsStreamContainer rejects a v2 container")
	}
	if data, _, err := DecompressAny(stream); err != nil || len(data) != 40 {
		t.Fatalf("DecompressAny over parity container: %d elements, %v", len(data), err)
	}
}

// TestStreamParityOptionValidated rejects a ParityK outside [0, MaxParityK].
func TestStreamParityOptionValidated(t *testing.T) {
	data := rawLE(make([]float64, 8))
	for _, k := range []int{-1, streamfmt.MaxParityK + 1} {
		var sb bytes.Buffer
		_, err := CompressStream(bytes.NewReader(data), &sb, []int{8}, 1e-2, SZT,
			&StreamOptions{ParityK: k})
		if err == nil {
			t.Fatalf("ParityK=%d accepted", k)
		}
	}
}

// TestStreamParitySalvageRepair damages each chunk in turn: salvage must
// reconstruct it byte-identically (no NaN rows anywhere) and account for
// it as repaired, not lost.
func TestStreamParitySalvageRepair(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _, _ := parityFixture(t)
	for i := range frames {
		mut := append([]byte(nil), stream...)
		mut[frames[i].End-1] ^= 0xA5
		var out bytes.Buffer
		rep, err := DecompressStreamSalvage(bytes.NewReader(mut), &out, nil)
		if err != nil {
			t.Fatalf("chunk %d: salvage errored: %v", i, err)
		}
		if rep.ParityK != 2 {
			t.Fatalf("chunk %d: report ParityK = %d", i, rep.ParityK)
		}
		if rep.Lost() != 0 || rep.Recovered != rep.Chunks {
			t.Fatalf("chunk %d: lost=%v recovered=%d of %d, want full repair",
				i, rep.LostChunks, rep.Recovered, rep.Chunks)
		}
		if rep.Repaired() != 1 || rep.RepairedChunks[0] != i {
			t.Fatalf("chunk %d: RepairedChunks = %v, want [%d]", i, rep.RepairedChunks, i)
		}
		if len(rep.LostRows) != 0 {
			t.Fatalf("chunk %d: LostRows = %v after a successful repair", i, rep.LostRows)
		}
		if !bytes.Equal(out.Bytes(), clean) {
			t.Fatalf("chunk %d: repaired output differs from clean decode", i)
		}
	}
}

// TestStreamParitySalvageMultiLoss loses two chunks of one group: repair
// is impossible there and must degrade to NaN-filled skip-and-report,
// while a single loss in another group still repairs.
func TestStreamParitySalvageMultiLoss(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _, _ := parityFixture(t)
	mut := append([]byte(nil), stream...)
	mut[frames[2].End-1] ^= 0xA5 // group 1
	mut[frames[3].End-1] ^= 0xA5 // group 1: second loss
	mut[frames[4].End-1] ^= 0xA5 // group 2: sole loss, repairable
	var out bytes.Buffer
	rep, err := DecompressStreamSalvage(bytes.NewReader(mut), &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostChunks) != 2 || rep.LostChunks[0] != 2 || rep.LostChunks[1] != 3 {
		t.Fatalf("LostChunks = %v, want [2 3]", rep.LostChunks)
	}
	if rep.Repaired() != 1 || rep.RepairedChunks[0] != 4 {
		t.Fatalf("RepairedChunks = %v, want [4]", rep.RepairedChunks)
	}
	if rep.Recovered+rep.Lost() != rep.Chunks {
		t.Fatalf("books off: %d + %d != %d", rep.Recovered, rep.Lost(), rep.Chunks)
	}
	if len(rep.LostRows) != 1 || rep.LostRows[0] != (RowRange{4, 8}) {
		t.Fatalf("LostRows = %v, want [{4 8}] (chunks 2-3 cover rows 4-7)", rep.LostRows)
	}
	checkRegions(t, rep, out.Bytes(), clean, 4)
}

// TestStreamParitySalvageDamagedParity damages a parity frame along with
// a chunk of its group: the chunk stays lost (clean degrade), the report
// names the damaged group, and a parity-frame flip alone costs nothing.
func TestStreamParitySalvageDamagedParity(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, parity, _ := parityFixture(t)

	mut := append([]byte(nil), stream...)
	mut[frames[0].End-1] ^= 0xA5
	mut[parity[0].End-1] ^= 0xA5
	var out bytes.Buffer
	rep, err := DecompressStreamSalvage(bytes.NewReader(mut), &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostChunks) != 1 || rep.LostChunks[0] != 0 || rep.Repaired() != 0 {
		t.Fatalf("lost=%v repaired=%v, want chunk 0 lost, nothing repaired", rep.LostChunks, rep.RepairedChunks)
	}
	if len(rep.DamagedParity) != 1 || rep.DamagedParity[0] != 0 {
		t.Fatalf("DamagedParity = %v, want [0]", rep.DamagedParity)
	}
	checkRegions(t, rep, out.Bytes(), clean, 4)

	// Parity damage alone: all data chunks intact, nothing lost.
	mut2 := append([]byte(nil), stream...)
	mut2[parity[1].End-1] ^= 0xA5
	var out2 bytes.Buffer
	rep2, err := DecompressStreamSalvage(bytes.NewReader(mut2), &out2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Lost() != 0 || !bytes.Equal(out2.Bytes(), clean) {
		t.Fatalf("parity-only damage lost data: %v", rep2.LostChunks)
	}
	if len(rep2.DamagedParity) != 1 || rep2.DamagedParity[0] != 1 {
		t.Fatalf("DamagedParity = %v, want [1]", rep2.DamagedParity)
	}
}

// TestStreamParityReadRowsRepair damages each chunk and reads the full
// range through the seekable path: the read must succeed byte-identically
// via repair, with the repair accounted once and parity fetches not
// double-counted.
func TestStreamParityReadRowsRepair(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _, dims := parityFixture(t)
	cleanVals := fromLE(clean)
	ix, err := streamfmt.OpenIndex(bytes.NewReader(stream), streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		mut := append([]byte(nil), stream...)
		mut[frames[i].End-1] ^= 0xA5
		h, err := OpenStream(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("chunk %d: OpenStream: %v", i, err)
		}
		dst := make([]float64, len(cleanVals))
		if err := h.ReadRows(dst, 0, uint64(dims[0])); err != nil {
			t.Fatalf("chunk %d: ReadRows did not repair: %v", i, err)
		}
		for j := range dst {
			if math.Float64bits(dst[j]) != math.Float64bits(cleanVals[j]) {
				t.Fatalf("chunk %d: repaired read differs at element %d", i, j)
			}
		}
		st := h.Stats()
		if st.RepairedChunks != 1 {
			t.Fatalf("chunk %d: stats.RepairedChunks = %d, want 1", i, st.RepairedChunks)
		}
		if st.Chunks != len(frames) {
			t.Fatalf("chunk %d: stats.Chunks = %d, want %d (each chunk decoded once)", i, st.Chunks, len(frames))
		}
		// BytesIn must be the sequential extent plus exactly the repair
		// fetches: group parity frame + surviving siblings, each once.
		g := i / 2
		lo, hi := ix.Hdr.GroupRange(g)
		pOff, pEnd := ix.ParityExtent(g)
		wantRepair := pEnd - pOff
		for s := lo; s < hi; s++ {
			if s == i {
				continue
			}
			off, end := ix.FrameExtent(s)
			wantRepair += end - off
		}
		if want := ix.ExtentBytes(0, len(frames)) + wantRepair; st.BytesIn != want {
			t.Fatalf("chunk %d: stats.BytesIn = %d, want %d (extent + repair fetches, no double count)",
				i, st.BytesIn, want)
		}
	}
}

// TestStreamParityReadRowsStats pins the clean-path accounting over a
// parity container: interior parity frames are skipped (counted in
// ParityFrames and BytesIn via the extent) and a range that crosses no
// parity frame counts none.
func TestStreamParityReadRowsStats(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, clean, frames, _, dims := parityFixture(t)
	cleanVals := fromLE(clean)
	ix, err := streamfmt.OpenIndex(bytes.NewReader(stream), streamfmt.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	h, err := OpenStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(cleanVals))
	if err := h.ReadRows(dst, 0, uint64(dims[0])); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.RepairedChunks != 0 {
		t.Fatalf("clean read repaired %d chunks", st.RepairedChunks)
	}
	if st.ParityFrames != 2 {
		t.Fatalf("stats.ParityFrames = %d, want the 2 interior parity frames", st.ParityFrames)
	}
	if want := ix.ExtentBytes(0, len(frames)); st.BytesIn != want {
		t.Fatalf("stats.BytesIn = %d, want extent %d (trailing parity frame never fetched)", st.BytesIn, want)
	}

	// Rows [0,2) live in chunk 0 alone: no parity frame in the span.
	h2, err := OpenStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.ReadRows(dst[:2*4], 0, 2); err != nil {
		t.Fatal(err)
	}
	st2 := h2.Stats()
	if st2.ParityFrames != 0 || st2.Chunks != 1 {
		t.Fatalf("single-chunk read: ParityFrames=%d Chunks=%d", st2.ParityFrames, st2.Chunks)
	}
	if want := ix.ExtentBytes(0, 1); st2.BytesIn != want {
		t.Fatalf("single-chunk read: BytesIn = %d, want %d", st2.BytesIn, want)
	}
}

// TestStreamParityReadRowsMultiLoss proves the seekable path fails typed
// when a group lost two chunks — repair must not fabricate data.
func TestStreamParityReadRowsMultiLoss(t *testing.T) {
	defer testutil.NoLeak(t)()
	stream, _, frames, _, dims := parityFixture(t)
	mut := append([]byte(nil), stream...)
	mut[frames[0].End-1] ^= 0xA5
	mut[frames[1].End-1] ^= 0xA5
	h, err := OpenStream(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, dims[0]*dims[1])
	err = h.ReadRows(dst, 0, uint64(dims[0]))
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("double loss: err = %v, want ErrCorrupted", err)
	}
}

// TestVerifyOnWrite exercises verify-after-encode end to end (clean
// pass with exact accounting) and the negative path at the unit level:
// a payload proven against the wrong source must fail typed.
func TestVerifyOnWrite(t *testing.T) {
	defer testutil.NoLeak(t)()
	dims := []int{10, 4}
	data := make([]float64, 40)
	for i := range data {
		data[i] = 35*math.Sin(float64(i)/4) + 80
	}
	for _, algo := range RelativeAlgorithms() {
		var sb bytes.Buffer
		st, err := CompressStream(bytes.NewReader(rawLE(data)), &sb, dims, 1e-2, algo,
			&StreamOptions{Workers: 2, ChunkRows: 2, VerifyOnWrite: true})
		if err != nil {
			t.Fatalf("%v: VerifyOnWrite compress: %v", algo, err)
		}
		if st.VerifiedChunks != st.Chunks || st.Chunks != 5 {
			t.Fatalf("%v: verified %d of %d chunks", algo, st.VerifiedChunks, st.Chunks)
		}
		if _, err := DecompressStream(bytes.NewReader(sb.Bytes()), bytes.NewBuffer(nil)); err != nil {
			t.Fatalf("%v: verified container does not decode: %v", algo, err)
		}
	}

	// Negative: a chunk compressed from different data must not verify.
	sub := data[:8]
	subDims := []int{2, 4}
	payload, err := Compress(sub, subDims, 1e-2, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := make([]float64, 8)
	for i := range other {
		other[i] = -1000 - float64(i)
	}
	if err := verifyChunk(payload, other, subDims, 1e-2, SZT); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("wrong-source verify: err = %v, want ErrVerifyFailed", err)
	}
	if err := verifyChunk(payload[:len(payload)-1], sub, subDims, 1e-2, SZT); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("truncated-payload verify: err = %v, want ErrVerifyFailed", err)
	}
	if err := verifyChunk(payload, sub, subDims, 1e-2, SZT); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	// Specials survive verification: NaN, ±Inf, zero.
	spec := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, 1, -2, 3, -4}
	sp, err := Compress(spec, []int{8}, 1e-2, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyChunk(sp, spec, []int{8}, 1e-2, SZT); err != nil {
		t.Fatalf("specials verify failed: %v", err)
	}
}

// TestParallelVerify wires ParallelOptions.Verify through the in-memory
// parallel path.
func TestParallelVerify(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := make([]float64, 96)
	for i := range data {
		data[i] = 20*math.Cos(float64(i)/7) + 50
	}
	buf, err := CompressParallel(data, []int{12, 8}, 1e-2, SZT, &ParallelOptions{Chunks: 3, Verify: true})
	if err != nil {
		t.Fatalf("CompressParallel with Verify: %v", err)
	}
	dec, _, err := DecompressParallel(buf, 2)
	if err != nil || len(dec) != len(data) {
		t.Fatalf("verified parallel stream decode: %d elements, %v", len(dec), err)
	}
}
