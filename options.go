package repro

import (
	"context"
	"runtime"
)

// The unified options API. Every concurrent entry point in the module —
// stream compress/decompress, parallel compress/decompress, the
// seekable OpenStream path, and the streaming archive subsystem —
// consumes the same StreamOption functional options resolved into one
// StreamConfig. The older positional-argument variants
// (CompressStreamCtx, DecompressParallelCtx, …) survive as thin
// deprecated wrappers that translate their arguments into options and
// delegate, so their output stays bit-identical.
//
//	stats, err := repro.CompressStreamOpts(src, dst, dims, 1e-3, repro.SZT,
//		repro.WithParity(16), repro.WithMemoryBudget(64<<20))
//
// Options that a given entry point has no use for are ignored by it
// (WithChunks on a stream path, WithParity on a parallel decode); the
// pwrvet optsflow check keeps the ones that matter — context and
// limits — from being silently dropped by future wrappers.

// StreamConfig is the resolved configuration a []StreamOption builds.
// The zero value means "all defaults"; fields left zero are defaulted
// by the entry point that consumes the config. Callers normally never
// construct one — they pass StreamOption values — but the struct is
// exported so tooling and tests can inspect what a set of options
// resolves to.
type StreamConfig struct {
	// Workers is the worker-pool size (default GOMAXPROCS, clamped to
	// the work actually available).
	Workers int
	// ChunkRows is the number of dims[0]-rows per stream chunk
	// (default: derived — see WithChunkRows and WithMemoryBudget).
	ChunkRows int
	// Chunks is the chunk count for the parallel (in-memory) container
	// (default: Workers, clamped to dims[0]).
	Chunks int
	// ParityK, when positive, makes stream containers self-healing with
	// one XOR parity frame per K data chunks.
	ParityK int
	// VerifyOnWrite decode-verifies every sealed chunk against its
	// source before the container commits.
	VerifyOnWrite bool
	// MemoryBudget, when positive, is the target peak resident buffer
	// memory in bytes; unset chunk-rows and worker knobs are derived
	// from it (see WithMemoryBudget).
	MemoryBudget int64
	// Limits bounds decode-side resource commitments; on the compress
	// side MaxChunkBytes also caps the default chunk sizing so the
	// emitted container round-trips under the same limits.
	Limits *DecodeLimits
	// Ctx carries cancellation through every pipeline stage.
	Ctx context.Context
	// Compressor passes through per-chunk compressor options.
	Compressor *Options
	// Float32 selects raw little-endian float32 element I/O (widened to
	// float64 internally; containers stay width-independent).
	Float32 bool
}

// StreamOption configures one entry point of the streaming, parallel,
// archive, or seekable-read API.
type StreamOption func(*StreamConfig)

// resolveStreamConfig folds opts into a fresh config. Nil options are
// tolerated so wrappers can pass conditional slices without filtering.
func resolveStreamConfig(opts []StreamOption) *StreamConfig {
	cfg := &StreamConfig{}
	for _, o := range opts {
		if o != nil {
			o(cfg)
		}
	}
	cfg.Ctx = orDefault(cfg.Ctx)
	return cfg
}

// WithWorkers sets the worker-pool size (default GOMAXPROCS, clamped to
// the available work: touched chunks on reads, field chunks on writes).
func WithWorkers(n int) StreamOption {
	return func(c *StreamConfig) { c.Workers = n }
}

// WithLimits applies DecodeLimits: MaxElements against declared
// geometry and MaxChunkBytes against every chunk frame or archive blob,
// enforced before any input-derived allocation. On the compress side
// MaxChunkBytes additionally caps the default chunk sizing, so a
// container written under limits L decodes under the same L.
func WithLimits(l *DecodeLimits) StreamOption {
	return func(c *StreamConfig) { c.Limits = l }
}

// WithContext threads a context through the pipeline: cancellation
// (like a sink write error) stops the stages after at most the chunks
// already in flight and returns the context's error with no goroutines
// left behind. This is the one way to pass cancellation through the
// options core; the old Ctx-suffixed entry points delegate here.
func WithContext(ctx context.Context) StreamOption {
	return func(c *StreamConfig) { c.Ctx = ctx }
}

// WithChunkRows sets the number of dims[0]-rows per stream chunk; zero
// or negative keeps the default (~256Ki elements per chunk, capped by
// Limits.MaxChunkBytes and the memory budget when set). An explicit
// chunk-rows value always wins over WithMemoryBudget derivation.
func WithChunkRows(n int) StreamOption {
	return func(c *StreamConfig) { c.ChunkRows = n }
}

// WithChunks sets the chunk count for the parallel in-memory container
// (CompressParallelOpts); the streaming paths derive their chunk count
// from ChunkRows instead.
func WithChunks(n int) StreamOption {
	return func(c *StreamConfig) { c.Chunks = n }
}

// WithParity makes stream containers self-healing: one XOR parity frame
// per k data chunks (the final group may be shorter), letting salvage
// and the seekable read path reconstruct any single lost chunk per
// group byte-identically at ~1/k size overhead. k = 0 keeps the
// parity-free format bit-identical to before.
func WithParity(k int) StreamOption {
	return func(c *StreamConfig) { c.ParityK = k }
}

// WithVerifyOnWrite decode-verifies every sealed chunk against its
// source rows — shape, NaN/Inf/zero preservation, and the point-wise
// relative bound where the algorithm guarantees it — before the
// container commits. A mismatch fails the write with a typed
// ErrVerifyFailed, turning silent encoder or memory corruption into a
// write-time error at the cost of one extra decode per chunk.
func WithVerifyOnWrite() StreamOption {
	return func(c *StreamConfig) { c.VerifyOnWrite = true }
}

// WithCompressorOptions passes through per-chunk compressor options
// (base, fixed rates, …) unchanged.
func WithCompressorOptions(o *Options) StreamOption {
	return func(c *StreamConfig) { c.Compressor = o }
}

// WithFloat32 selects raw little-endian float32 element I/O: readers
// widen each element to float64 (exact) on the way in and writers
// narrow on the way out, mirroring Compress32/Decompress32. The
// container bytes are identical to the widened float64 path.
func WithFloat32() StreamOption {
	return func(c *StreamConfig) { c.Float32 = true }
}

// WithMemoryBudget sets a target peak resident buffer memory, in bytes,
// for the pipeline's chunk buffers, and derives whichever of the
// chunk-rows and worker knobs the caller left unset:
//
//	budget ≥ chunkRows × rowStride × (8×(workers+2) + elemSize)
//
// — the freelist holds at most workers+2 float64 chunk buffers plus one
// raw elemSize-wide I/O buffer. Derivation prefers keeping the worker
// count (more cores beat bigger chunks) and shrinks chunk rows first;
// only when the budget cannot fit even one row per chunk at a given
// worker count does it shed workers. Explicitly set WithChunkRows /
// WithWorkers values always win; the budget then sizes only the
// remaining knob. Decode-side paths (DecompressStreamOpts, ReadRows)
// take chunk geometry from the container header, so the budget there
// caps the worker count alone. The budget governs the pipeline's own
// chunk buffers — the O(workers × chunk) term — not the codec's
// transient working memory.
func WithMemoryBudget(bytes int64) StreamOption {
	return func(c *StreamConfig) { c.MemoryBudget = bytes }
}

// budgetMaxChunkElems caps budget-derived chunks well under the 2 GiB
// frame guard so geometry stays valid whatever the budget.
const budgetMaxChunkElems = 1 << 27

// budgetChunkRows returns the largest chunk-rows value whose pipeline
// footprint at w workers fits the budget, or 0 when even one row does
// not fit.
func budgetChunkRows(budget int64, rowStride, elemSize, w int) int {
	perRow := int64(rowStride) * int64(8*(w+2)+elemSize)
	cr := budget / perRow
	if cr < 1 {
		return 0
	}
	if cr > budgetMaxChunkElems/int64(rowStride) {
		cr = budgetMaxChunkElems / int64(rowStride)
		if cr < 1 {
			cr = 1
		}
	}
	return int(cr)
}

// budgetWorkersFor returns the largest worker count in [1, maxW] whose
// pipeline footprint at the given chunk geometry fits the budget.
func budgetWorkersFor(budget int64, chunkElems, elemSize, maxW int) int {
	per := int64(chunkElems) * 8
	fixed := int64(chunkElems)*int64(elemSize) + 2*per
	if per <= 0 {
		return maxW
	}
	w := (budget - fixed) / per
	if w < 1 {
		return 1
	}
	if w > int64(maxW) {
		return maxW
	}
	return int(w) // bounded by maxW above
}

// tuneCompressBudget resolves the chunk-rows and worker knobs of a
// compress pipeline against a memory budget, honoring explicit values.
// workers carries the caller's default (GOMAXPROCS) when unset.
func tuneCompressBudget(cfg *StreamConfig, rowStride, elemSize, workers int) (chunkRows, w int) {
	chunkRows, w = cfg.ChunkRows, workers
	if cfg.MemoryBudget <= 0 {
		return chunkRows, w
	}
	switch {
	case cfg.ChunkRows <= 0 && cfg.Workers <= 0:
		for cand := workers; cand >= 1; cand-- {
			if cr := budgetChunkRows(cfg.MemoryBudget, rowStride, elemSize, cand); cr >= 1 {
				return cr, cand
			}
		}
		return 1, 1 // budget below one row at one worker: best effort at minimum footprint
	case cfg.ChunkRows <= 0:
		cr := budgetChunkRows(cfg.MemoryBudget, rowStride, elemSize, w)
		if cr < 1 {
			cr = 1
		}
		return cr, w
	case cfg.Workers <= 0:
		return chunkRows, budgetWorkersFor(cfg.MemoryBudget, chunkRows*rowStride, elemSize, w)
	}
	return chunkRows, w // both explicit: the budget defers to them
}

// streamOptions converts the legacy struct to the shared options. Only
// set fields are translated, so defaults resolve identically to the old
// positional path (including the error on a negative ParityK).
func (o *StreamOptions) streamOptions() []StreamOption {
	if o == nil {
		return nil
	}
	var out []StreamOption
	if o.Workers > 0 {
		out = append(out, WithWorkers(o.Workers))
	}
	if o.ChunkRows > 0 {
		out = append(out, WithChunkRows(o.ChunkRows))
	}
	if o.ParityK != 0 {
		out = append(out, WithParity(o.ParityK))
	}
	if o.VerifyOnWrite {
		out = append(out, WithVerifyOnWrite())
	}
	if o.Options != nil {
		out = append(out, WithCompressorOptions(o.Options))
	}
	return out
}

// streamOptions converts the legacy parallel struct to the shared
// options (Verify maps onto WithVerifyOnWrite, Ctx onto WithContext).
func (o *ParallelOptions) streamOptions() []StreamOption {
	if o == nil {
		return nil
	}
	var out []StreamOption
	if o.Workers > 0 {
		out = append(out, WithWorkers(o.Workers))
	}
	if o.Chunks != 0 {
		out = append(out, WithChunks(o.Chunks))
	}
	if o.Verify {
		out = append(out, WithVerifyOnWrite())
	}
	if o.Options != nil {
		out = append(out, WithCompressorOptions(o.Options))
	}
	if o.Ctx != nil {
		out = append(out, WithContext(o.Ctx))
	}
	return out
}

// defaultWorkers resolves the configured worker count, falling back to
// GOMAXPROCS.
func (c *StreamConfig) defaultWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
