// Quickstart: compress a scientific field under a point-wise relative
// error bound with the paper's transform scheme (SZ_T), decompress it and
// verify the bound.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	// A wide-dynamic-range positive field (lognormal) — the motivating use
	// case for point-wise relative bounds: small values carry detail an
	// absolute bound would destroy.
	const side = 48
	dims := []int{side, side, side}
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, side*side*side)
	for i := range data {
		data[i] = math.Exp(rng.NormFloat64()*2 - 1)
	}

	// Every decompressed value will be within 0.1% of the original.
	const relBound = 1e-3

	buf, err := repro.Compress(data, dims, relBound, repro.SZT, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values: %d -> %d bytes (ratio %.2f)\n",
		len(data), len(data)*8, len(buf), float64(len(data)*8)/float64(len(buf)))

	dec, decDims, err := repro.Decompress(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decompressed dims: %v\n", decDims)

	maxRel := 0.0
	for i := range data {
		if data[i] == 0 { //lint:allow floatcmp exact zero skip mirrors the bound definition
			continue
		}
		if r := math.Abs(dec[i]-data[i]) / math.Abs(data[i]); r > maxRel {
			maxRel = r
		}
	}
	fmt.Printf("max point-wise relative error: %.3g (bound %.3g)\n", maxRel, relBound)
	if maxRel > relBound {
		log.Fatal("bound violated!")
	}
	fmt.Println("bound respected ✓")

	// Compare against the block-wise baseline at the same bound.
	pwr, err := repro.Compress(data, dims, relBound, repro.SZPWR, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SZ_T %d bytes vs SZ_PWR %d bytes (%.1f%% smaller)\n",
		len(buf), len(pwr), 100*(1-float64(len(buf))/float64(len(pwr))))
}
