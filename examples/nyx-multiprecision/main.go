// nyx-multiprecision reproduces the Figure 4 scenario end to end: it
// compresses a NYX-like dark-matter-density cube with SZ_ABS, FPZIP and
// SZ_T at a matched compression ratio (~7), then renders the middle slice
// of each reconstruction — full range [0, 1] and the zoomed high-precision
// window [0, 0.1] — as PGM images, so the distortion difference is visible
// exactly as in the paper.
//
// Usage: go run ./examples/nyx-multiprecision [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "fig4-out", "output directory for PGM renders")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = datagen.ScaleBench
	res, err := experiments.Figure4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.Print(os.Stdout)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	ny, nx := res.SliceDims[0], res.SliceDims[1]

	write := func(name string, vals []float64, lo, hi float64) {
		path := filepath.Join(*out, name)
		if err := writePGM(path, vals, ny, nx, lo, hi); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("original_full.pgm", res.Original, 0, 1)
	write("original_zoom.pgm", res.Original, 0, 0.1)
	for _, e := range res.Entries {
		write(fmt.Sprintf("%s_full.pgm", e.Name), e.Slice, 0, 1)
		write(fmt.Sprintf("%s_zoom.pgm", e.Name), e.Slice, 0, 0.1)
	}
	fmt.Println("\ncompare the *_zoom.pgm files: SZ_ABS loses the small-value")
	fmt.Println("structure entirely; FPZIP keeps it but adds noise; SZ_T is closest.")
}

// writePGM renders vals (clamped to [lo, hi]) as an 8-bit grayscale PGM.
func writePGM(path string, vals []float64, ny, nx int, lo, hi float64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		// A deferred Close on a written file can report the final flush
		// failure; keep the first error.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", nx, ny); err != nil {
		return err
	}
	buf := make([]byte, len(vals))
	scale := 255 / (hi - lo)
	for i, v := range vals {
		x := (v - lo) * scale
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		buf[i] = byte(x)
	}
	_, err = f.Write(buf)
	return err
}
