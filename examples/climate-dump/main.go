// climate-dump simulates a CESM-ATM ensemble dump: many 2D climate fields
// are compressed concurrently by a worker pool (one worker per core, the
// file-per-process pattern of the paper's parallel evaluation) under a
// point-wise relative bound, and the resulting dump time is compared
// against writing the raw data through the same parallel-file-system
// bandwidth model.
//
// Usage: go run ./examples/climate-dump [-members 8] [-rel 1e-3]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/pfs"
)

func main() {
	members := flag.Int("members", 8, "ensemble members (each contributes one CESM field set)")
	rel := flag.Float64("rel", 1e-3, "point-wise relative error bound")
	flag.Parse()

	// Generate the ensemble: each member is one CESM-ATM field set with a
	// different seed (a different simulation in the ensemble).
	var fields []datagen.Field
	for m := 0; m < *members; m++ {
		fields = append(fields, datagen.CESMATM(300, 600, int64(1000+m))...)
	}
	totalRaw := 0
	for _, f := range fields {
		totalRaw += f.Bytes()
	}
	fmt.Printf("ensemble: %d members, %d fields, %.1f MB raw\n",
		*members, len(fields), float64(totalRaw)/1e6)

	// Worker pool: compress all fields concurrently.
	workers := runtime.GOMAXPROCS(0)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var totalCompressed atomic.Int64
	var failed atomic.Int64
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f := &fields[i]
				buf, err := repro.Compress(f.Data, f.Dims, *rel, repro.SZT, nil)
				if err != nil {
					log.Printf("compress %s: %v", f.String(), err)
					failed.Add(1)
					continue
				}
				totalCompressed.Add(int64(len(buf)))
			}
		}()
	}
	for i := range fields {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() > 0 {
		log.Fatalf("%d fields failed to compress", failed.Load())
	}

	comp := totalCompressed.Load()
	ratio := float64(totalRaw) / float64(comp)
	rate := float64(totalRaw) / 1e6 / elapsed.Seconds()
	fmt.Printf("compressed to %.1f MB (ratio %.1f) with %d workers in %v (%.0f MB/s aggregate)\n",
		float64(comp)/1e6, ratio, workers, elapsed.Round(time.Millisecond), rate)

	// Model the dump at cluster scale: 1,024 ranks, 1 GB of raw fields each.
	sys := pfs.DefaultSystem(1024)
	perRank := int64(1 << 30)
	dump, err := sys.DumpTime(perRank, int64(float64(perRank)/ratio), rate*1e6/float64(workers))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := sys.RawDumpTime(perRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled dump at 1024 cores, 1 GB/rank: %v (raw data would take %v, %.1fx longer)\n",
		dump.Total().Round(time.Second), raw.Total().Round(time.Second),
		raw.Total().Seconds()/dump.Total().Seconds())
}
