// hacc-skew reproduces the Figure 5 scenario: HACC-like particle velocity
// triples are compressed with SZ_ABS, FPZIP and SZ_T at a matched ratio
// (~8), and the direction skew of each reconstructed velocity (the angle
// between original and reconstructed 3D vectors) is reported. Point-wise
// relative bounds preserve direction far better than an absolute bound,
// because slow particles keep proportionally tight error bars.
//
// Usage: go run ./examples/hacc-skew
package main

import (
	"log"
	"os"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Scale = datagen.ScaleBench
	res, err := experiments.Figure5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.Print(os.Stdout)
}
