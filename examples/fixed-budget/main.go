// fixed-budget contrasts the two ways to spend a storage budget: ZFP's
// fixed-rate mode (exact bits per value, no error guarantee) versus SZ_T
// at the relative bound that lands on the same size (guaranteed point-wise
// relative error, variable rate). For heavy-tailed scientific data the
// error-bounded spend preserves small values dramatically better at the
// same cost.
//
// Usage: go run ./examples/fixed-budget [-bits 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

func main() {
	bits := flag.Float64("bits", 8, "storage budget in bits per value")
	flag.Parse()

	fields := datagen.NYX(48, 77)
	f := fields[0] // dark_matter_density: heavy lognormal tail
	rawBits := float64(f.Bytes() * 8)

	// Spend the budget with fixed-rate ZFP.
	rateBuf, err := repro.CompressFixedRate(f.Data, f.Dims, *bits)
	if err != nil {
		log.Fatal(err)
	}
	rateDec, _, err := repro.Decompress(rateBuf)
	if err != nil {
		log.Fatal(err)
	}

	// Find the SZ_T relative bound that produces (at most) the same size.
	lo, hi := 1e-6, 0.5
	var sztBuf []byte
	var sztRel float64
	for i := 0; i < 22; i++ {
		mid := math.Sqrt(lo * hi)
		buf, err := repro.Compress(f.Data, f.Dims, mid, repro.SZT, nil)
		if err != nil {
			log.Fatal(err)
		}
		if len(buf) <= len(rateBuf) {
			sztBuf, sztRel = buf, mid
			hi = mid // can afford a tighter bound
		} else {
			lo = mid
		}
	}
	if sztBuf == nil {
		log.Fatalf("SZ_T could not meet the %g bits/value budget", *bits)
	}
	sztDec, _, err := repro.Decompress(sztBuf)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, buf []byte, dec []float64) {
		st, err := metrics.RelError(f.Data, dec, 1)
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := metrics.RelPSNR(f.Data, dec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %6.2f bits/val  max rel err %10.3g  avg %10.3g  rel-PSNR %6.1f dB\n",
			name, float64(len(buf)*8)/float64(f.Size()), st.Max, st.Avg, psnr)
	}
	fmt.Printf("budget: %.1f bits/value on %s (%.1fx reduction)\n\n",
		*bits, f.String(), rawBits/(float64(len(rateBuf))*8))
	report("ZFP fixed-rate", rateBuf, rateDec)
	report(fmt.Sprintf("SZ_T (rel %.3g)", sztRel), sztBuf, sztDec)
	fmt.Println("\nsame budget — the error-bounded spend caps the worst case;")
	fmt.Println("the fixed-rate spend leaves small values with unbounded relative error.")
}
