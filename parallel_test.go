package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/testutil"
)

func TestParallelRoundTrip(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields := datagen.NYX(24, 11)
	f := fields[0]
	rel := 1e-2
	for _, chunks := range []int{1, 2, 3, 7, 24} {
		buf, err := CompressParallel(f.Data, f.Dims, rel, SZT,
			&ParallelOptions{Workers: 4, Chunks: chunks})
		if err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		if !IsParallelStream(buf) {
			t.Fatal("not detected as parallel stream")
		}
		dec, dims, err := DecompressParallel(buf, 4)
		if err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		if !grid.EqualDims(dims, f.Dims) {
			t.Fatalf("dims %v", dims)
		}
		st, err := metrics.RelError(f.Data, dec, rel)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max > rel {
			t.Fatalf("chunks=%d: max rel %g > %g", chunks, st.Max, rel)
		}
	}
}

func TestParallelMoreChunksThanRows(t *testing.T) {
	defer testutil.NoLeak(t)()
	data := []float64{1, 2, 3, 4, 5, 6}
	buf, err := CompressParallel(data, []int{3, 2}, 0.01, SZT,
		&ParallelOptions{Chunks: 100})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressParallel(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(dec[i]-data[i])/data[i] > 0.01 {
			t.Fatalf("index %d", i)
		}
	}
}

func TestParallelAllAlgorithms(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields := datagen.NYX(16, 12)
	f := fields[0]
	rel := 0.05
	for _, algo := range RelativeAlgorithms() {
		buf, err := CompressParallel(f.Data, f.Dims, rel, algo, &ParallelOptions{Chunks: 4})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		dec, _, err := DecompressAny(buf)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		st, err := metrics.RelError(f.Data, dec, rel)
		if err != nil {
			t.Fatal(err)
		}
		if algo != ZFPP && st.Max > rel {
			t.Fatalf("%v: max rel %g", algo, st.Max)
		}
	}
}

func TestParallelMatchesSerialBound(t *testing.T) {
	// Chunked compression must cost only a modest ratio penalty once the
	// chunks are large enough to amortize their per-chunk code tables.
	fields := datagen.NYX(48, 13)
	f := fields[0]
	rel := 1e-2
	serial, err := Compress(f.Data, f.Dims, rel, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressParallel(f.Data, f.Dims, rel, SZT, &ParallelOptions{Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(par)) > float64(len(serial))*1.25 {
		t.Fatalf("chunking penalty too high: %d vs %d", len(par), len(serial))
	}
}

func TestDecompressAnyPlainStream(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	buf, err := Compress(data, []int{4}, 0.01, SZT, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressAny(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 {
		t.Fatal("wrong length")
	}
}

func TestParallelCorrupt(t *testing.T) {
	defer testutil.NoLeak(t)()
	fields := datagen.NYX(16, 14)
	f := fields[0]
	buf, err := CompressParallel(f.Data, f.Dims, 0.01, SZT, &ParallelOptions{Chunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 3, 10, len(buf) / 2} {
		if _, _, err := DecompressParallel(buf[:cut], 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 100; i++ {
		mut := append([]byte(nil), buf...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_, _, _ = DecompressParallel(mut, 0) // must not panic
	}
}

func TestChunkStarts(t *testing.T) {
	s := chunkStarts(10, 3)
	if s[0] != 0 || s[3] != 10 {
		t.Fatalf("boundaries %v", s)
	}
	total := 0
	for c := 0; c < 3; c++ {
		w := s[c+1] - s[c]
		if w < 3 || w > 4 {
			t.Fatalf("uneven chunk %d: %v", c, s)
		}
		total += w
	}
	if total != 10 {
		t.Fatalf("chunks don't cover: %v", s)
	}
}

func BenchmarkCompressParallel4(b *testing.B) {
	fields := datagen.NYX(48, 16)
	f := fields[0]
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		if _, err := CompressParallel(f.Data, f.Dims, 1e-2, SZT,
			&ParallelOptions{Workers: 4, Chunks: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
