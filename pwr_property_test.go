package repro_test

// Property-based bound-verification harness (ISSUE 3): a deterministic
// adversarial field suite (internal/testutil.AdversarialFields) swept
// across every relative-bound algorithm and three bounds, asserting
// Theorem 2's point-wise relative guarantee element by element — for
// the in-memory path (Compress) and the bounded-memory streaming path
// (CompressStream). Algorithm-specific relaxations mirror the paper's
// Table IV: ZFP_P does not guarantee the bound ("*"), and SZ_PWR does
// not preserve exact zeros.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro"
	"repro/internal/testutil"
)

func putLE(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getLE(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

var propertyBounds = []float64{1e-2, 1e-3, 1e-4}

// specFor returns the guarantee each algorithm actually advertises.
func specFor(algo repro.Algorithm, rel float64, extreme bool) testutil.PWRSpec {
	spec := testutil.PWRSpec{RelBound: rel, SkipSubnormals: extreme}
	switch algo {
	case repro.SZT, repro.ZFPT, repro.FPZIP, repro.ISABELA:
		spec.PreserveZeros = true
	}
	return spec
}

// boundGuaranteed reports whether the algorithm advertises a hard
// point-wise relative bound. ZFP's precision mode does not (the paper's
// "*" and the motivation for the transform scheme) — on the adversarial
// suite it bounds as little as 0% of points, so the harness asserts
// only round-trip shape for it.
func boundGuaranteed(algo repro.Algorithm) bool { return algo != repro.ZFPP }

func streamRoundTrip(t *testing.T, f *testutil.AdversarialField, rel float64, algo repro.Algorithm) ([]float64, error) {
	t.Helper()
	raw := make([]byte, 0, len(f.Data)*8)
	for _, v := range f.Data {
		var b [8]byte
		putLE(b[:], v)
		raw = append(raw, b[:]...)
	}
	var comp bytes.Buffer
	chunkRows := (f.Dims[0] + 2) / 3 // force ≥2 chunks on every field
	if chunkRows < 1 {
		chunkRows = 1
	}
	if _, err := repro.CompressStream(bytes.NewReader(raw), &comp, f.Dims, rel, algo,
		&repro.StreamOptions{Workers: 2, ChunkRows: chunkRows}); err != nil {
		return nil, err
	}
	var dec bytes.Buffer
	if _, err := repro.DecompressStream(bytes.NewReader(comp.Bytes()), &dec); err != nil {
		t.Fatalf("decode of own stream failed: %v", err)
	}
	db := dec.Bytes()
	out := make([]float64, len(db)/8)
	for i := range out {
		out[i] = getLE(db[i*8:])
	}
	return out, nil
}

// TestPWRPropertyHarness is the table sweep: algorithms × bounds ×
// adversarial fields × {in-memory, streaming}.
func TestPWRPropertyHarness(t *testing.T) {
	fields := testutil.AdversarialFields(20180704)
	for _, algo := range repro.RelativeAlgorithms() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for _, rel := range propertyBounds {
				for i := range fields {
					f := &fields[i]
					name := fmt.Sprintf("%s@%g", f.Name, rel)
					spec := specFor(algo, rel, f.Extreme)

					buf, err := repro.Compress(f.Data, f.Dims, rel, algo, nil)
					if err != nil {
						if f.Extreme {
							t.Logf("%s: refused extreme field (ok): %v", name, err)
							continue
						}
						t.Errorf("%s: compress: %v", name, err)
						continue
					}
					dec, dims, err := repro.Decompress(buf)
					if err != nil {
						t.Errorf("%s: decompress: %v", name, err)
						continue
					}
					if len(dims) != len(f.Dims) || len(dec) != len(f.Data) {
						t.Errorf("%s: shape %v/%d", name, dims, len(dec))
						continue
					}
					if boundGuaranteed(algo) {
						testutil.CheckPWRSpec(t, f.Data, dec, spec)
					}

					sdec, err := streamRoundTrip(t, f, rel, algo)
					if err != nil {
						if f.Extreme {
							continue
						}
						t.Errorf("%s: stream compress: %v", name, err)
						continue
					}
					if len(sdec) != len(f.Data) {
						t.Errorf("%s: stream decoded %d values", name, len(sdec))
						continue
					}
					if boundGuaranteed(algo) {
						testutil.CheckPWRSpec(t, f.Data, sdec, spec)
					}
				}
			}
		})
	}
}

// seekRanges enumerates the adversarial range shapes for a field of
// `rows` rows chunked every `chunkRows`: chunk-aligned, chunk-straddling,
// first row, last row, single row, full span, and empty.
func seekRanges(rows, chunkRows uint64) [][2]uint64 {
	ranges := [][2]uint64{
		{0, chunkRows},        // first chunk, aligned
		{0, 1},                // first row
		{rows - 1, 1},         // last row
		{rows / 2, 1},         // single mid row
		{0, rows},             // full span
		{0, 0}, {rows / 2, 0}, // empty
	}
	if chunkRows < rows {
		ranges = append(ranges,
			[2]uint64{chunkRows, chunkRows},     // interior chunk, aligned
			[2]uint64{chunkRows - 1, 2},         // straddles the first boundary
			[2]uint64{chunkRows / 2, chunkRows}) // unaligned straddle
	}
	for i, r := range ranges {
		if r[0]+r[1] > rows {
			ranges[i][1] = rows - r[0]
		}
	}
	return ranges
}

// TestSeekReadRowsEquivalence is the random-access counterpart of the
// property harness: for every RelativeAlgorithm × bound × adversarial
// field, and for both output widths, ReadRows of every adversarial
// range must be byte-identical to the corresponding slice of a full
// DecompressStream / DecompressStream32 pass over the same container.
func TestSeekReadRowsEquivalence(t *testing.T) {
	fields := testutil.AdversarialFields(20180704)
	for _, algo := range repro.RelativeAlgorithms() {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for _, rel := range propertyBounds {
				for i := range fields {
					f := &fields[i]
					name := fmt.Sprintf("%s@%g", f.Name, rel)
					raw := make([]byte, len(f.Data)*8)
					for j, v := range f.Data {
						putLE(raw[j*8:], v)
					}
					chunkRows := (f.Dims[0] + 2) / 3 // ≥2 chunks, same as streamRoundTrip
					if chunkRows < 1 {
						chunkRows = 1
					}
					var comp bytes.Buffer
					if _, err := repro.CompressStream(bytes.NewReader(raw), &comp, f.Dims, rel, algo,
						&repro.StreamOptions{Workers: 2, ChunkRows: chunkRows}); err != nil {
						if f.Extreme {
							continue
						}
						t.Errorf("%s: stream compress: %v", name, err)
						continue
					}
					stream := comp.Bytes()

					var full bytes.Buffer
					if _, err := repro.DecompressStream(bytes.NewReader(stream), &full); err != nil {
						t.Fatalf("%s: full decode: %v", name, err)
					}
					var full32 bytes.Buffer
					if _, err := repro.DecompressStream32(bytes.NewReader(stream), &full32); err != nil {
						t.Fatalf("%s: full float32 decode: %v", name, err)
					}

					h, err := repro.OpenStream(bytes.NewReader(stream))
					if err != nil {
						t.Fatalf("%s: OpenStream: %v", name, err)
					}
					rows := h.Rows()
					stride := uint64(h.RowStride())
					for _, r := range seekRanges(rows, uint64(chunkRows)) {
						start, count := r[0], r[1]
						dst := make([]float64, count*stride)
						if err := h.ReadRows(dst, start, count); err != nil {
							t.Errorf("%s: ReadRows[%d,+%d): %v", name, start, count, err)
							continue
						}
						fb := full.Bytes()
						for j := range dst {
							want := getLE(fb[(start*stride+uint64(j))*8:])
							if math.Float64bits(dst[j]) != math.Float64bits(want) {
								t.Fatalf("%s: ReadRows[%d,+%d) element %d = %x, full decode has %x",
									name, start, count, j, math.Float64bits(dst[j]), math.Float64bits(want))
							}
						}
						dst32 := make([]float32, count*stride)
						if err := h.ReadRows32(dst32, start, count); err != nil {
							t.Errorf("%s: ReadRows32[%d,+%d): %v", name, start, count, err)
							continue
						}
						fb32 := full32.Bytes()
						for j := range dst32 {
							want := math.Float32frombits(binary.LittleEndian.Uint32(fb32[(start*stride+uint64(j))*4:]))
							if math.Float32bits(dst32[j]) != math.Float32bits(want) {
								t.Fatalf("%s: ReadRows32[%d,+%d) element %d = %x, full decode has %x",
									name, start, count, j, math.Float32bits(dst32[j]), math.Float32bits(want))
							}
						}
					}
				}
			}
		})
	}
}

// TestPWRPropertyGeneratorDeterministic guards the harness itself: the
// suite must be reproducible run to run, or failures would not be.
func TestPWRPropertyGeneratorDeterministic(t *testing.T) {
	a := testutil.AdversarialFields(7)
	b := testutil.AdversarialFields(7)
	if len(a) != len(b) {
		t.Fatalf("field counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Data) != len(b[i].Data) {
			t.Fatalf("field %d metadata differs", i)
		}
		for j := range a[i].Data {
			if !testutil.SameFloat(a[i].Data[j], b[i].Data[j]) {
				t.Fatalf("field %s element %d differs", a[i].Name, j)
			}
		}
	}
	// The suite must cover the advertised stressors.
	var hasZero, hasNeg, hasSub bool
	lo, hi := 0.0, 0.0
	for i := range a {
		st := stats(a[i].Data)
		hasZero = hasZero || st.zeros > 0
		hasNeg = hasNeg || st.negs > 0
		hasSub = hasSub || st.subs > 0
		if lo == 0 || (st.minMag > 0 && st.minMag < lo) {
			lo = st.minMag
		}
		if st.maxMag > hi {
			hi = st.maxMag
		}
	}
	if !hasZero || !hasNeg || !hasSub {
		t.Errorf("suite missing stressors: zeros=%v negs=%v subnormals=%v", hasZero, hasNeg, hasSub)
	}
	if hi/lo < 1e12 {
		t.Errorf("magnitude skew only %.1e, want >= 1e12", hi/lo)
	}
	// Cover 1D, 2D and 3D geometries.
	ranks := map[int]bool{}
	for i := range a {
		ranks[len(a[i].Dims)] = true
	}
	for _, r := range []int{1, 2, 3} {
		if !ranks[r] {
			t.Errorf("no rank-%d field in the suite", r)
		}
	}
}

type fieldStats struct {
	zeros, negs, subs int
	minMag, maxMag    float64
}

func stats(data []float64) fieldStats {
	var st fieldStats
	const minNormal = 2.2250738585072014e-308
	for _, v := range data {
		switch {
		case v == 0:
			st.zeros++
			continue
		case v < 0:
			st.negs++
		}
		m := v
		if m < 0 {
			m = -m
		}
		if m < minNormal {
			st.subs++
			continue // subnormals excluded from the normal-range skew
		}
		if st.minMag == 0 || m < st.minMag {
			st.minMag = m
		}
		if m > st.maxMag {
			st.maxMag = m
		}
	}
	return st
}
