package repro

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"repro/internal/bitio"
	"repro/internal/streamfmt"
)

// Streaming archives: the v3 (0xCA) tail-directory layout lets a
// snapshot's fields flow straight from io.Reader sources through the
// bounded-memory chunk pipeline into one archive container on an
// io.Writer — no field, compressed or raw, is ever materialized. Each
// AddField seals one stream container (0xC8) into the blob area as an
// extent; Close writes the directory and trailer. Peak memory is the
// pipeline's O(workers × chunk) — or an explicit byte target under
// WithMemoryBudget — independent of field count and field size, which
// is what lets a rank bundle a simulation snapshot larger than its RAM
// share (the deployment shape FRaZ and the bit-adaptive particle
// compressor treat as table stakes).
//
// Reading back is symmetric: OpenArchiveStream parses trailer and
// directory only, and Field opens a seekable StreamHandle over the
// field's extent through a mutex-guarded section view, so a ReadRows on
// one field fetches no bytes from sibling extents.

// ArchiveStreamWriter streams named fields through the chunk pipeline
// into a v3 archive container. Writer-level options set defaults for
// every field; AddField options override per field. Any failure after
// blob bytes have reached the sink poisons the writer (the container
// cannot be completed around a partial extent); validation failures
// before the first byte leave it usable.
type ArchiveStreamWriter struct {
	w        io.Writer
	defaults []StreamOption
	entries  []dirEntry
	byName   map[string]bool
	written  uint64 // blob-area bytes emitted so far
	crc      uint32 // running CRC over the blob area
	err      error  // sticky: the container is unusable once set
	closed   bool
}

// NewArchiveStreamWriter writes the v3 archive preamble to w and
// returns a writer accepting fields. opts become the default options
// for every AddField (chunk sizing, parity, verify-on-write, memory
// budget, context, …).
func NewArchiveStreamWriter(w io.Writer, opts ...StreamOption) (*ArchiveStreamWriter, error) {
	if _, err := w.Write([]byte{archiveMagicV3, archiveV3Ver}); err != nil {
		return nil, fmt.Errorf("repro: writing archive header: %w", err)
	}
	return &ArchiveStreamWriter{w: w, defaults: opts, byName: make(map[string]bool)}, nil
}

// usable reports whether the writer can accept another field.
func (aw *ArchiveStreamWriter) usable() error {
	if aw.err != nil {
		return aw.err
	}
	if aw.closed {
		return fmt.Errorf("repro: archive already closed")
	}
	return nil
}

// checkName validates a new field name against the directory.
func (aw *ArchiveStreamWriter) checkName(name string) error {
	if name == "" || len(name) > maxFieldName {
		return fmt.Errorf("repro: invalid field name %q", name)
	}
	if aw.byName[name] {
		return fmt.Errorf("repro: duplicate field %q", name)
	}
	if len(aw.entries) >= maxArchiveFields {
		return fmt.Errorf("repro: archive full at %d fields", maxArchiveFields)
	}
	return nil
}

// record seals the last n blob-area bytes as field name's extent.
func (aw *ArchiveStreamWriter) record(name string, n uint64) {
	aw.entries = append(aw.entries, dirEntry{name: name, off: aw.written - n, len: n})
	aw.byName[name] = true
}

// AddField reads a raw little-endian float64 field of the given dims
// from r, compresses it through the bounded-memory chunk pipeline under
// the point-wise relative bound, and seals it into the archive as one
// stream-container extent. opts extend (and override) the writer-level
// defaults for this field only — each field may use its own algorithm,
// bound, chunking, parity, and budget.
func (aw *ArchiveStreamWriter) AddField(name string, r io.Reader, dims []int, relBound float64, algo Algorithm, opts ...StreamOption) (*StreamStats, error) {
	return aw.addField(name, r, dims, relBound, algo, opts, false)
}

// AddField32 is AddField for a raw little-endian float32 source,
// widened exactly as by CompressStreamOpts with WithFloat32.
func (aw *ArchiveStreamWriter) AddField32(name string, r io.Reader, dims []int, relBound float64, algo Algorithm, opts ...StreamOption) (*StreamStats, error) {
	return aw.addField(name, r, dims, relBound, algo, opts, true)
}

func (aw *ArchiveStreamWriter) addField(name string, r io.Reader, dims []int, relBound float64, algo Algorithm, opts []StreamOption, f32 bool) (*StreamStats, error) {
	if err := aw.usable(); err != nil {
		return nil, err
	}
	if err := aw.checkName(name); err != nil {
		return nil, err
	}
	all := make([]StreamOption, 0, len(aw.defaults)+len(opts)+1)
	all = append(all, aw.defaults...)
	all = append(all, opts...)
	if f32 {
		all = append(all, WithFloat32())
	}
	cw := &crcCountingWriter{w: aw.w, crc: aw.crc}
	stats, err := compressStream(resolveStreamConfig(all), r, cw, dims, relBound, algo)
	aw.written += uint64(cw.n)
	aw.crc = cw.crc
	if err != nil {
		err = fmt.Errorf("repro: archive field %q: %w", name, err)
		if cw.n > 0 {
			// Partial blob bytes are already in the sink; the container
			// cannot be sealed around them.
			aw.err = err
		}
		return stats, err
	}
	aw.record(name, uint64(cw.n))
	return stats, nil
}

// AddCompressed seals an already-compressed stream (any container this
// module decodes) into the archive unchanged, for mixing pre-compressed
// blobs into a streamed bundle. Note that Field on the read side serves
// seekable handles only for stream-container (0xC8) blobs; other
// formats are still retrievable through OpenArchive.
func (aw *ArchiveStreamWriter) AddCompressed(name string, stream []byte) error {
	if err := aw.usable(); err != nil {
		return err
	}
	if err := aw.checkName(name); err != nil {
		return err
	}
	if !IsParallelStream(stream) && !IsStreamContainer(stream) {
		if _, err := AlgorithmOf(stream); err != nil {
			return fmt.Errorf("repro: field %q: %w", name, err)
		}
	}
	n, err := aw.w.Write(stream)
	aw.written += uint64(n)
	aw.crc = crc32.Update(aw.crc, crc32.IEEETable, stream[:n])
	if err != nil {
		aw.err = fmt.Errorf("repro: archive field %q: %w", name, err)
		return aw.err
	}
	aw.record(name, uint64(n))
	return nil
}

// Fields returns the names sealed so far, in archive order.
func (aw *ArchiveStreamWriter) Fields() []string {
	out := make([]string, len(aw.entries))
	for i := range aw.entries {
		out[i] = aw.entries[i].name
	}
	return out
}

// Close seals the archive: directory, then trailer (directory CRC,
// blob-area CRC, directory length). Close is idempotent; after a
// successful Close the writer accepts no further fields. It does not
// close the underlying writer.
func (aw *ArchiveStreamWriter) Close() error {
	if aw.err != nil {
		return aw.err
	}
	if aw.closed {
		return nil
	}
	dir := bitio.AppendUvarint(nil, uint64(len(aw.entries)))
	for _, e := range aw.entries {
		dir = bitio.AppendUvarint(dir, uint64(len(e.name)))
		dir = append(dir, e.name...)
		dir = bitio.AppendUvarint(dir, e.off)
		dir = bitio.AppendUvarint(dir, e.len)
	}
	tail := make([]byte, 0, len(dir)+archiveV3TrailerLen)
	tail = append(tail, dir...)
	tail = binary.BigEndian.AppendUint32(tail, crc32.ChecksumIEEE(dir))
	tail = binary.BigEndian.AppendUint32(tail, aw.crc)
	tail = binary.BigEndian.AppendUint64(tail, uint64(len(dir)))
	if _, err := aw.w.Write(tail); err != nil {
		aw.err = fmt.Errorf("repro: sealing archive directory: %w", err)
		return aw.err
	}
	aw.closed = true
	return nil
}

// crcCountingWriter counts bytes and maintains a running IEEE CRC over
// everything written through it.
type crcCountingWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcCountingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// ArchiveStream is a random-access view of a v3 streaming archive: the
// directory is held in memory, blobs stay in the source. Field opens a
// seekable handle on one field; handles share the source's position
// under an internal mutex, so handles on different fields are safe to
// use from concurrent goroutines.
type ArchiveStream struct {
	mu      sync.Mutex
	src     io.ReadSeeker
	opts    []StreamOption
	names   []string
	extents map[string]dirEntry // offsets absolute in the container
}

// OpenArchiveStream opens the v3 archive container in src, reading the
// trailer and directory only — no blob bytes. The directory must pass
// its CRC and the same structural validation as the in-memory path
// (extents inside the blob area, no overlap, no duplicate names,
// bounded count); the blob-area checksum is NOT verified here — that
// would read every blob, defeating random access — so integrity rests
// on the per-chunk CRCs inside each field's stream container, the same
// trust model as OpenStream. opts apply to the directory parse (limits)
// and become the defaults for every Field handle.
func OpenArchiveStream(src io.ReadSeeker, opts ...StreamOption) (_ *ArchiveStream, err error) {
	defer recoverDecode(&err)
	cfg := resolveStreamConfig(opts)
	limits := cfg.Limits
	size, err := src.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("repro: seeking archive end: %w", err)
	}
	if size < 2+1+archiveV3TrailerLen {
		return nil, fmt.Errorf("%w: %d-byte archive", ErrTruncated, size)
	}
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("repro: seeking archive start: %w", err)
	}
	var head [2]byte
	if _, err := io.ReadFull(src, head[:]); err != nil {
		return nil, fmt.Errorf("repro: reading archive header: %w", err)
	}
	if head[0] != archiveMagicV3 {
		return nil, fmt.Errorf("%w: leading byte 0x%02x is not a streaming archive", ErrUnsupportedFormat, head[0])
	}
	if head[1] != archiveV3Ver {
		return nil, fmt.Errorf("%w: archive v3 version 0x%02x", ErrUnsupportedFormat, head[1])
	}
	var trailer [archiveV3TrailerLen]byte
	if _, err := src.Seek(size-archiveV3TrailerLen, io.SeekStart); err != nil {
		return nil, fmt.Errorf("repro: seeking archive trailer: %w", err)
	}
	if _, err := io.ReadFull(src, trailer[:]); err != nil {
		return nil, fmt.Errorf("repro: reading archive trailer: %w", err)
	}
	dirCRC := binary.BigEndian.Uint32(trailer[0:])
	dirLen := binary.BigEndian.Uint64(trailer[8:])
	if dirLen < 1 || dirLen > uint64(size-2-archiveV3TrailerLen) {
		return nil, fmt.Errorf("%w: archive directory of %d bytes in a %d-byte container",
			ErrCorrupt, dirLen, size)
	}
	dirOff := size - archiveV3TrailerLen - int64(dirLen)
	if _, err := src.Seek(dirOff, io.SeekStart); err != nil {
		return nil, fmt.Errorf("repro: seeking archive directory: %w", err)
	}
	// The allocation is bounded by the container's real size, proven by
	// the dirLen check above — the same discipline as the stream index
	// window.
	dir := make([]byte, dirLen)
	if _, err := io.ReadFull(src, dir); err != nil {
		return nil, fmt.Errorf("repro: reading archive directory: %w", err)
	}
	if crc32.ChecksumIEEE(dir) != dirCRC {
		return nil, fmt.Errorf("%w: archive directory checksum mismatch", ErrCorrupt)
	}
	count, off, err := readDirCount(dir, 0, 4, limits)
	if err != nil {
		return nil, err
	}
	entries, off, err := parseDirEntries(dir, off, count, uint64(size), limits)
	if err != nil {
		return nil, err
	}
	if off != len(dir) {
		return nil, fmt.Errorf("%w: %d trailing bytes in the %d-entry archive directory",
			ErrCorrupt, len(dir)-off, count)
	}
	if err := validateExtents(entries, uint64(dirOff-2)); err != nil {
		return nil, err
	}
	a := &ArchiveStream{src: src, opts: opts, extents: make(map[string]dirEntry, count)}
	for _, e := range entries {
		a.names = append(a.names, e.name)
		// Lift blob-area-relative offsets to absolute container offsets.
		a.extents[e.name] = dirEntry{name: e.name, off: e.off + 2, len: e.len}
	}
	return a, nil
}

// Fields returns the field names in archive order.
func (a *ArchiveStream) Fields() []string {
	return append([]string(nil), a.names...)
}

// SortedFields returns the field names sorted lexicographically.
func (a *ArchiveStream) SortedFields() []string {
	out := a.Fields()
	sort.Strings(out)
	return out
}

// Field opens a seekable StreamHandle on one field without touching any
// sibling extent: the handle sees exactly the field's bytes through a
// section view, so its reads — index parse and row ranges alike — can
// never stray outside the extent. The handle inherits the archive's
// options (limits, workers, budget, context); it remains valid for the
// life of the archive's source.
func (a *ArchiveStream) Field(name string) (*StreamHandle, error) {
	ext, ok := a.extents[name]
	if !ok {
		return nil, fmt.Errorf("repro: no field %q in archive", name)
	}
	sec := streamfmt.NewSection(&a.mu, a.src, int64(ext.off), int64(ext.len))
	h, err := OpenStream(sec, a.opts...)
	if err != nil {
		return nil, fmt.Errorf("repro: archive field %q: %w", name, err)
	}
	return h, nil
}
