package repro

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/streamfmt"
)

// Fuzz targets: run with `go test -fuzz=FuzzDecompress` etc.; in a normal
// `go test` run they execute their seed corpus, acting as additional
// regression tests for the parsers' robustness.

func fuzzSeedStreams(f *testing.F) {
	data := []float64{1, 2, 3, 4, 0, -5, 6, 7}
	for _, algo := range RelativeAlgorithms() {
		if buf, err := Compress(data, []int{8}, 0.01, algo, nil); err == nil {
			f.Add(buf)
		}
	}
	if buf, err := CompressAbs(data, []int{2, 4}, 0.01, SZABS, nil); err == nil {
		f.Add(buf)
	}
	if buf, err := CompressFixedRate(data, []int{8}, 8); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{containerMagic})
	f.Add([]byte{containerMagic, byte(SZT), 0, 0, 0, 0})
}

// FuzzDecompress asserts the top-level decoder never panics and that any
// successfully decoded stream has a consistent shape.
func FuzzDecompress(f *testing.F) {
	fuzzSeedStreams(f)
	f.Fuzz(func(t *testing.T, buf []byte) {
		data, dims, err := Decompress(buf)
		if err != nil {
			return
		}
		n := 1
		for _, d := range dims {
			if d <= 0 {
				t.Fatalf("nonpositive dim %v", dims)
			}
			n *= d
		}
		if n != len(data) {
			t.Fatalf("dims %v product %d != len %d", dims, n, len(data))
		}
	})
}

// FuzzDecompressParallel covers the chunked container.
func FuzzDecompressParallel(f *testing.F) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i) + 1
	}
	if buf, err := CompressParallel(data, []int{8, 8}, 0.01, SZT, &ParallelOptions{Chunks: 3}); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{parallelMagic, 1, 8})
	f.Fuzz(func(t *testing.T, buf []byte) {
		data, dims, err := DecompressParallel(buf, 2)
		if err != nil {
			return
		}
		n := 1
		for _, d := range dims {
			n *= d
		}
		if n != len(data) {
			t.Fatalf("shape mismatch")
		}
	})
}

// FuzzOpenArchive covers the archive index parser.
func FuzzOpenArchive(f *testing.F) {
	w := NewArchiveWriter()
	_ = w.Add("a", []float64{1, 2, 3, 4}, []int{4}, 0.1, SZT, nil)
	f.Add(w.Bytes())
	f.Add([]byte{archiveMagic, 0})
	f.Fuzz(func(t *testing.T, buf []byte) {
		r, err := OpenArchive(buf)
		if err != nil {
			return
		}
		for _, name := range r.Fields() {
			_, _, _ = r.Field(name)
		}
	})
}

// FuzzHeaderMutation flips bytes of known-good streams. The input tuple
// (stream, position, xor mask) lets the fuzzer steer mutations into the
// exact header fields the decodebound taint analysis tracks: container
// rank and dims, Huffman table alphabet/length fields, window and block
// sizes, and the payload-length varints (where a continuation-bit flip
// manufactures a near-2^64 length). Every decoder must reject corruption
// with an error or decode to a consistent shape — no panics and no
// unguarded attacker-sized allocations.
func FuzzHeaderMutation(f *testing.F) {
	data := make([]float64, 96)
	for i := range data {
		data[i] = math.Sin(float64(i))*100 + 0.5
	}
	type stream struct {
		buf    []byte
		decode func(t *testing.T, b []byte)
	}
	var streams []stream
	checkShape := func(t *testing.T, vals []float64, dims []int, err error) {
		if err != nil {
			return
		}
		n := 1
		for _, d := range dims {
			if d <= 0 {
				t.Fatalf("nonpositive dim %v", dims)
			}
			n *= d
		}
		if n != len(vals) {
			t.Fatalf("dims %v product %d != len %d", dims, n, len(vals))
		}
	}
	container := func(t *testing.T, b []byte) {
		vals, dims, err := Decompress(b)
		checkShape(t, vals, dims, err)
	}
	for _, algo := range RelativeAlgorithms() {
		if buf, err := Compress(data, []int{96}, 1e-2, algo, nil); err == nil {
			streams = append(streams, stream{buf, container})
		}
	}
	if buf, err := CompressAbs(data, []int{12, 8}, 1e-2, SZABS, nil); err == nil {
		streams = append(streams, stream{buf, container})
	}
	if buf, err := CompressParallel(data, []int{12, 8}, 1e-2, SZT, &ParallelOptions{Chunks: 3}); err == nil {
		streams = append(streams, stream{buf, func(t *testing.T, b []byte) {
			vals, dims, err := DecompressParallel(b, 2)
			checkShape(t, vals, dims, err)
		}})
	}
	w := NewArchiveWriter()
	if err := w.Add("density", data, []int{96}, 1e-2, SZT, nil); err == nil {
		streams = append(streams, stream{w.Bytes(), func(t *testing.T, b []byte) {
			r, err := OpenArchive(b)
			if err != nil {
				return
			}
			for _, name := range r.Fields() {
				vals, dims, err := r.Field(name)
				checkShape(t, vals, dims, err)
			}
		}})
	}

	// Seed the header region of every stream: the magic, rank/dims
	// varints, entropy-table sizes, and the payload-length varints all
	// live in the first few dozen bytes.
	for i := range streams {
		for _, pos := range []uint16{0, 1, 2, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32} {
			f.Add(uint16(i), pos, byte(0xFF))
			f.Add(uint16(i), pos, byte(0x80))
			f.Add(uint16(i), pos, byte(0x01))
		}
	}
	f.Fuzz(func(t *testing.T, which, pos uint16, mask byte) {
		if len(streams) == 0 {
			t.Skip("no seed streams built")
		}
		s := streams[int(which)%len(streams)]
		if len(s.buf) == 0 {
			return
		}
		mut := append([]byte(nil), s.buf...)
		mut[int(pos)%len(mut)] ^= mask
		s.decode(t, mut)
	})
}

// fuzzStreamContainer builds a small valid stream container for seeding.
func fuzzStreamContainer(chunkRows int) []byte {
	return fuzzStreamContainerParity(chunkRows, 0)
}

// fuzzStreamContainerParity is fuzzStreamContainer with a parity layer.
func fuzzStreamContainerParity(chunkRows, parityK int) []byte {
	data := make([]float64, 48)
	for i := range data {
		data[i] = math.Cos(float64(i)/5)*40 + 60
	}
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	var buf bytes.Buffer
	if _, err := CompressStream(bytes.NewReader(raw), &buf, []int{12, 4}, 1e-2, SZT,
		&StreamOptions{ChunkRows: chunkRows, ParityK: parityK}); err != nil {
		return nil
	}
	return buf.Bytes()
}

// parityFuzzSeeds returns the parity-container damage variants every
// stream-consuming fuzz target is seeded with: clean, damaged data
// chunk, damaged parity frame, damaged index, truncated.
func parityFuzzSeeds() [][]byte {
	stream := fuzzStreamContainerParity(2, 2) // 6 chunks, 3 parity groups
	if stream == nil {
		return nil
	}
	seeds := [][]byte{stream}
	if rep, err := streamfmt.ScanSalvage(stream, streamfmt.Limits{}); err == nil && rep.IndexOK {
		chunk := append([]byte(nil), stream...)
		chunk[rep.Frames[2].End-1] ^= 0x20
		seeds = append(seeds, chunk)
		par := append([]byte(nil), stream...)
		par[rep.Parity[0].End-1] ^= 0x20
		seeds = append(seeds, par)
		idx := append([]byte(nil), stream...)
		idx[len(idx)-2] ^= 0x40
		seeds = append(seeds, idx)
	}
	seeds = append(seeds, stream[:len(stream)*3/4])
	return seeds
}

// FuzzDecompressStream asserts the streaming decoder never panics,
// never hangs its pipeline, and never allocates ahead of the bytes it
// has actually received; truncation and corruption of frame headers
// must surface as errors (the decodebound taint discipline, extended to
// the io.Reader path). On success the emitted byte count must agree
// with the container header's geometry.
func FuzzDecompressStream(f *testing.F) {
	if stream := fuzzStreamContainer(3); stream != nil {
		f.Add(stream)
		f.Add(stream[:len(stream)/2])         // truncated mid-frame
		f.Add(stream[:7])                     // truncated header
		mut := append([]byte(nil), stream...) // corrupt a chunk CRC region
		mut[len(mut)/3] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{streamfmt.Magic})
	f.Add([]byte{streamfmt.Magic, streamfmt.Version, byte(SZT), 1, 200, 1})
	// Hostile length prefix: header promising one chunk, frame claiming
	// a near-2^31 payload with no data behind it.
	hostile := []byte{streamfmt.Magic, streamfmt.Version, byte(SZT), 1, 8, 2, 0x01}
	hostile = binary.AppendUvarint(hostile, streamfmt.MaxFrameLen-1)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, buf []byte) {
		cw := &countingWriter{w: io.Discard}
		st, err := DecompressStream(bytes.NewReader(buf), cw)
		if err != nil {
			return
		}
		hr, herr := streamfmt.NewReader(bytes.NewReader(buf))
		if herr != nil {
			t.Fatalf("decoded successfully but header does not re-parse: %v", herr)
		}
		want := int64(grid.Size(hr.Header().Dims)) * 8
		if cw.n != want || st.BytesOut != want {
			t.Fatalf("decoded %d bytes (stats %d), header geometry implies %d", cw.n, st.BytesOut, want)
		}
	})
}

// FuzzOpenStream asserts the seekable open path never panics, never
// allocates past its limits, and that any container it accepts either
// serves its full row range or fails typed — and when the sequential
// streaming decoder accepts the same bytes, the two outputs must agree.
func FuzzOpenStream(f *testing.F) {
	if stream := fuzzStreamContainer(3); stream != nil {
		f.Add(stream)
		f.Add(stream[:len(stream)-3]) // clipped index frame
		crc := append([]byte(nil), stream...)
		crc[len(crc)-2] ^= 0x40 // index CRC flip
		f.Add(crc)
		mid := append([]byte(nil), stream...)
		mid[len(mid)/2] ^= 0x10 // mid-chunk damage: open succeeds, read fails
		f.Add(mid)
	}
	for _, seed := range parityFuzzSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{streamfmt.Magic, streamfmt.Version, byte(SZT), 1, 12, 3})
	f.Fuzz(func(t *testing.T, buf []byte) {
		lim := &DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}
		h, err := OpenStream(bytes.NewReader(buf), WithLimits(lim))
		if err != nil {
			return
		}
		dst := make([]float64, h.Rows()*uint64(h.RowStride()))
		rerr := h.ReadRows(dst, 0, h.Rows())
		var full bytes.Buffer
		_, ferr := DecompressStreamCtx(context.Background(), bytes.NewReader(buf), &full, lim)
		if ferr != nil {
			return // chunk-level damage; the sequential path rejected it too
		}
		if rerr != nil {
			t.Fatalf("sequential decode succeeded but full-range ReadRows failed: %v", rerr)
		}
		fb := full.Bytes()
		if len(fb) != len(dst)*8 {
			t.Fatalf("ReadRows returned %d elements, sequential decode %d bytes", len(dst), len(fb))
		}
		for i := range dst {
			if math.Float64bits(dst[i]) != binary.LittleEndian.Uint64(fb[i*8:]) {
				t.Fatalf("element %d: ReadRows %x, sequential %x",
					i, math.Float64bits(dst[i]), binary.LittleEndian.Uint64(fb[i*8:]))
			}
		}
	})
}

// FuzzReadRows steers arbitrary row ranges (clamped into the container
// geometry) at the seekable reader: any outcome must be a typed error or
// a byte-identical match of the sequential decoder's slice.
func FuzzReadRows(f *testing.F) {
	if stream := fuzzStreamContainer(3); stream != nil { // 12×4 rows, 4 chunks
		f.Add(stream, uint64(0), uint64(12))
		f.Add(stream, uint64(2), uint64(4)) // straddles a chunk boundary
		f.Add(stream, uint64(11), uint64(1))
		f.Add(stream, uint64(5), uint64(0))
		mid := append([]byte(nil), stream...)
		mid[len(mid)/2] ^= 0x10 // damage near the middle chunks
		f.Add(mid, uint64(0), uint64(3))
		f.Add(mid, uint64(4), uint64(6))
	}
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, buf []byte, start, count uint64) {
		lim := &DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}
		h, err := OpenStream(bytes.NewReader(buf), WithLimits(lim))
		if err != nil {
			return
		}
		rows := h.Rows()
		start %= rows + 1 // start == rows is a legal empty tail read
		count %= rows - start + 1
		stride := uint64(h.RowStride())
		dst := make([]float64, count*stride)
		rerr := h.ReadRows(dst, start, count)
		var full bytes.Buffer
		if _, ferr := DecompressStreamCtx(context.Background(), bytes.NewReader(buf), &full, lim); ferr != nil {
			return // damaged chunks; the range may or may not touch them
		}
		if rerr != nil {
			t.Fatalf("sequential decode succeeded but ReadRows[%d,+%d) failed: %v", start, count, rerr)
		}
		fb := full.Bytes()
		for i := range dst {
			want := binary.LittleEndian.Uint64(fb[(start*stride+uint64(i))*8:])
			if math.Float64bits(dst[i]) != want {
				t.Fatalf("ReadRows[%d,+%d) element %d: %x, sequential decode has %x",
					start, count, i, math.Float64bits(dst[i]), want)
			}
		}
	})
}

// FuzzStreamRoundTrip drives the full streaming pipeline with arbitrary
// bytes reinterpreted as floats and a fuzzed chunking, asserting the
// SZ_T bound (and zero/special preservation) through CompressStream →
// DecompressStream.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(append([]byte{1}, make([]byte, 160)...))
	f.Add(append([]byte{7}, bytes.Repeat([]byte{0x3F, 0xF0, 1, 2, 3, 4, 5, 6}, 20)...))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 9 {
			return
		}
		chunkRows := int(raw[0])%8 + 1
		body := raw[1:]
		n := len(body) / 8
		if n == 0 || n > 1<<12 {
			return
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
		const rel = 1e-2
		var comp bytes.Buffer
		_, err := CompressStream(bytes.NewReader(body[:n*8]), &comp, []int{n}, rel, SZT,
			&StreamOptions{Workers: 2, ChunkRows: chunkRows})
		if err != nil {
			return // e.g. log-range too extreme for the bound: a valid refusal
		}
		var dec bytes.Buffer
		if _, err := DecompressStream(bytes.NewReader(comp.Bytes()), &dec); err != nil {
			t.Fatalf("own stream failed to decode: %v", err)
		}
		db := dec.Bytes()
		if len(db) != n*8 {
			t.Fatalf("decoded %d bytes, want %d", len(db), n*8)
		}
		for i := range data {
			o := data[i]
			d := math.Float64frombits(binary.LittleEndian.Uint64(db[i*8:]))
			switch {
			case math.IsNaN(o):
				if !math.IsNaN(d) {
					t.Fatalf("NaN lost at %d", i)
				}
			case math.IsInf(o, 0):
				if d != o {
					t.Fatalf("Inf lost at %d", i)
				}
			case o == 0:
				if d != 0 {
					t.Fatalf("zero perturbed at %d", i)
				}
			default:
				if math.Abs(d-o)/math.Abs(o) > rel {
					t.Fatalf("bound violated at %d: %g vs %g", i, d, o)
				}
			}
		}
	})
}

// FuzzCompressRoundTrip drives the full SZ_T pipeline with arbitrary data
// bytes reinterpreted as floats, asserting the bound on every finite
// nonzero value.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 80))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8
		if n == 0 || n > 1<<14 {
			return
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		const rel = 1e-2
		buf, err := Compress(data, []int{n}, rel, SZT, nil)
		if err != nil {
			return // e.g. log-range too extreme for the bound: a valid refusal
		}
		dec, _, err := Decompress(buf)
		if err != nil {
			t.Fatalf("own stream failed to decode: %v", err)
		}
		for i := range data {
			o := data[i]
			switch {
			case math.IsNaN(o):
				if !math.IsNaN(dec[i]) {
					t.Fatalf("NaN lost at %d", i)
				}
			case math.IsInf(o, 0):
				if dec[i] != o {
					t.Fatalf("Inf lost at %d", i)
				}
			case o == 0:
				if dec[i] != 0 {
					t.Fatalf("zero perturbed at %d", i)
				}
			default:
				if math.Abs(dec[i]-o)/math.Abs(o) > rel {
					t.Fatalf("bound violated at %d: %g vs %g", i, dec[i], o)
				}
			}
		}
	})
}

// FuzzStreamSalvage asserts the salvage decoder never panics and keeps
// its books consistent: every chunk is either recovered or reported
// lost, and on success the output length matches the header geometry.
func FuzzStreamSalvage(f *testing.F) {
	if stream := fuzzStreamContainer(2); stream != nil {
		f.Add(stream)
		mid := append([]byte(nil), stream...) // damaged middle chunk
		mid[len(mid)/2] ^= 0x20
		f.Add(mid)
		if rep, err := streamfmt.ScanSalvage(stream, streamfmt.Limits{}); err == nil && rep.IndexOK {
			idx := append([]byte(nil), stream...) // damaged index frame
			idx[rep.Frames[len(rep.Frames)-1].End+2] ^= 0xFF
			f.Add(idx)
		}
		f.Add(stream[:len(stream)*2/3]) // truncated
	}
	for _, seed := range parityFuzzSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{streamfmt.Magic, streamfmt.Version})
	f.Fuzz(func(t *testing.T, buf []byte) {
		var out bytes.Buffer
		// Salvage honors opt-in DecodeLimits like every decoder; without
		// them a hostile header claiming a huge geometry would make the
		// harness itself buffer unbounded NaN fill.
		lim := &DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20}
		rep, err := DecompressStreamSalvage(bytes.NewReader(buf), &out, lim)
		if err != nil {
			return
		}
		if rep.Recovered+rep.Lost() != rep.Chunks {
			t.Fatalf("books off: recovered %d + lost %d != chunks %d", rep.Recovered, rep.Lost(), rep.Chunks)
		}
		want := int64(grid.Size(rep.Dims)) * 8
		if rep.BytesOut != want || int64(out.Len()) != want {
			t.Fatalf("emitted %d bytes (stats %d), header geometry implies %d", out.Len(), rep.BytesOut, want)
		}
	})
}

// fuzzArchiveV3 builds a small two-field v3 streaming archive for seed
// corpora; nil on any build error.
func fuzzArchiveV3() []byte {
	var buf bytes.Buffer
	aw, err := NewArchiveStreamWriter(&buf, WithChunkRows(4))
	if err != nil {
		return nil
	}
	data := make([]float64, 48)
	for i := range data {
		data[i] = float64(i%7) + 1
	}
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	if _, err := aw.AddField("a", bytes.NewReader(raw), []int{12, 4}, 0.01, SZT); err != nil {
		return nil
	}
	if _, err := aw.AddField("b", bytes.NewReader(raw), []int{12, 4}, 0.01, SZT); err != nil {
		return nil
	}
	if err := aw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// FuzzOpenArchiveStream covers the v3 tail-directory parser on both the
// seekable and the in-memory path: whatever the bytes, opening must
// fail typed or yield handles whose full-range reads agree with the
// in-memory Field decode.
func FuzzOpenArchiveStream(f *testing.F) {
	if arch := fuzzArchiveV3(); arch != nil {
		f.Add(arch)
		f.Add(arch[:len(arch)-5]) // clipped trailer
		dirCRC := append([]byte(nil), arch...)
		dirCRC[len(dirCRC)-16] ^= 0x40 // directory CRC flip
		f.Add(dirCRC)
		blob := append([]byte(nil), arch...)
		blob[len(blob)/3] ^= 0x10 // blob damage: open succeeds, read fails
		f.Add(blob)
		short := append([]byte(nil), arch...)
		short[len(short)-1] ^= 0x01 // dirLen low-byte nudge
		f.Add(short)
	}
	f.Add([]byte{})
	f.Add([]byte{archiveMagicV3, archiveV3Ver})
	f.Fuzz(func(t *testing.T, buf []byte) {
		lim := &DecodeLimits{MaxElements: 1 << 16, MaxChunkBytes: 1 << 20, MaxFields: 64}
		as, err := OpenArchiveStream(bytes.NewReader(buf), WithLimits(lim))
		if err != nil {
			return
		}
		ar, aerr := OpenArchiveLimits(buf, lim)
		for _, name := range as.Fields() {
			h, err := as.Field(name)
			if err != nil {
				continue
			}
			dst := make([]float64, h.Rows()*uint64(h.RowStride()))
			if err := h.ReadRows(dst, 0, h.Rows()); err != nil {
				continue
			}
			// A full-range seekable read that succeeded implies per-chunk
			// CRCs held; the in-memory decode of the same field (when the
			// whole-area CRC also held) must agree bit for bit.
			if aerr != nil {
				continue
			}
			want, _, ferr := ar.Field(name)
			if ferr != nil {
				continue // blob decodes under stream CRCs but not the in-memory path
			}
			if len(want) != len(dst) {
				t.Fatalf("field %q: seekable %d elements, in-memory %d", name, len(dst), len(want))
			}
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
					t.Fatalf("field %q element %d: seekable %x, in-memory %x",
						name, i, math.Float64bits(dst[i]), math.Float64bits(want[i]))
				}
			}
		}
	})
}
